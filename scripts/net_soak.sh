#!/usr/bin/env bash
# Fault-injection soak of the TCP serving stack.
#
# Starts naas_serve in listen mode with deterministic socket and store
# faults armed (short reads/writes, EINTR, write stalls, bounded append
# and refresh failures), then runs the adversarial python client against
# it: deep pipelining, garbage, oversized lines, abortive RSTs, expired
# deadlines, concurrent connections. The server must survive all of it,
# drain cleanly on SIGTERM (exit 0), leave a loadable store behind, and a
# warm stdin-mode restart must answer byte-identically to a cold
# stdin-mode reference.
#
# Usage: scripts/net_soak.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/naas_serve"
CLIENT="scripts/net_soak_client.py"

if [ ! -x "$SERVE" ]; then
  echo "net_soak: $SERVE not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
STORE="$WORK/soak_store.bin"
SERVER_ERR="$WORK/server.err"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Deterministic fault weather: constant low-probability socket faults plus
# bounded store/refresh failures (bounded so the retry/heal paths fire and
# then let the drain flush succeed).
FAULTS="seed=7"
FAULTS="$FAULTS,sock_read_short=0.05,sock_read_eintr=0.02"
FAULTS="$FAULTS,sock_write_short=0.05,sock_write_stall=0.02@50"
FAULTS="$FAULTS,store_append_fail=1.0@2,refresh_fail=1.0@2"

echo "=== soak: starting server with NAAS_FAULTS=$FAULTS ==="
NAAS_FAULTS="$FAULTS" "$SERVE" \
    --listen 127.0.0.1:0 \
    --cache-path "$STORE" \
    --max-line-bytes 4096 \
    2> "$SERVER_ERR" &
SERVER_PID=$!

# The bound port is announced on stderr.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SERVER_ERR" | head -n1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "net_soak: server died before binding:" >&2
    cat "$SERVER_ERR" >&2
    exit 1
  }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "net_soak: no port announced" >&2; exit 1; }
echo "=== soak: server up on port $PORT (pid $SERVER_PID) ==="

python3 "$CLIENT" --port "$PORT" --rounds 3 --max-line-bytes 4096

echo "=== soak: draining server with SIGTERM ==="
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
echo "--- server stderr ---"
cat "$SERVER_ERR"
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "net_soak: server exited $EXIT_CODE under fault weather" >&2
  exit 1
fi

# Queue overflow: a zero-capacity admission queue must shed every request
# with a structured `overloaded` error — and still drain to exit 0.
echo "=== soak: queue-overflow shedding check ==="
"$SERVE" --listen 127.0.0.1:0 --max-queue 0 2> "$WORK/shed.err" &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$WORK/shed.err" | head -n1)"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "net_soak: shed server announced no port" >&2; exit 1; }
python3 - "$PORT" <<'EOF'
import json, socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=30)
sock.sendall(b'{"id":42,"method":"cache_stats"}\n')
resp = json.loads(sock.makefile().readline())
assert resp["id"] == 42 and not resp["ok"], resp
assert resp["error"]["code"] == "overloaded", resp
print("soak: zero-capacity queue shed with structured overloaded",
      file=sys.stderr)
EOF
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
grep -q ' shed' "$WORK/shed.err" || true
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "net_soak: shedding server exited $EXIT_CODE" >&2
  exit 1
fi

# The drain left a loadable store behind: a warm stdin-mode restart (no
# faults) must boot from it and answer byte-identically to a cold
# stdin-mode reference with a fresh store.
echo "=== soak: warm-restart byte-identity check ==="
SESSION="$WORK/session.jsonl"
printf '%s\n' \
  '{"id":1,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":0}}' \
  '{"id":2,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":3}}' \
  '{"id":3,"method":"nonsense"}' > "$SESSION"

"$SERVE" --cache-path "$STORE" < "$SESSION" \
    > "$WORK/warm.out" 2> "$WORK/warm.err"
"$SERVE" --cache-path "$WORK/fresh_store.bin" < "$SESSION" \
    > "$WORK/cold.out" 2> "$WORK/cold.err"

diff "$WORK/cold.out" "$WORK/warm.out" || {
  echo "net_soak: warm restart responses differ from cold reference" >&2
  exit 1
}
# The warm boot really did adopt the soaked store (the soak's queries
# cover the session's layers, so zero new searches are needed).
grep -q 'booted with 0 store entries' "$WORK/warm.err" && {
  echo "net_soak: warm restart did not load the soaked store" >&2
  cat "$WORK/warm.err" >&2
  exit 1
}
grep -q 'mapping searches run: 0;' "$WORK/warm.err" || {
  echo "net_soak: warm restart re-ran searches the store should hold" >&2
  cat "$WORK/warm.err" >&2
  exit 1
}

echo "net_soak: PASS (server drained clean, store survived, warm restart byte-identical)"
