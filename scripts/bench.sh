#!/usr/bin/env bash
# Builds the bench binaries in Release and emits BENCH_*.json artifacts.
#
# Usage: scripts/bench.sh [build-dir]
#   NAAS_BENCH_ALL=1   also run every fig/table reproduction binary
#   NAAS_BENCH_FULL=1  paper-scale search budgets (slow)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ ! -x "$BUILD_DIR/bench_parallel_scaling" ]; then
  echo "bench binaries were not built (google-benchmark missing?)" >&2
  exit 1
fi

run_bench() {
  local name="$1"
  echo "=== $name ==="
  # Each binary reproduces its table/figure, then runs google-benchmark
  # microbenchmarks whose results land in BENCH_<name>_micro.json.
  (cd "$BUILD_DIR" && "./$name" \
      --benchmark_out="BENCH_${name}_micro.json" \
      --benchmark_out_format=json \
      --benchmark_min_time=0.05)
}

# The scaling bench writes BENCH_parallel.json and BENCH_warm_start.json
# itself, the serving bench BENCH_serve.json, the batched-cost-model bench
# BENCH_cost_batch.json, the async-pipeline bench BENCH_async.json, the
# transformer smoke BENCH_transformer.json (batch==scalar and warm
# zero-search asserted on matmul/attention workloads), the surrogate bench
# BENCH_surrogate.json (roofline pruning saves mapping searches with the
# returned best asserted unchanged), the TCP transport bench
# BENCH_net.json, the sharded-fleet bench BENCH_fleet.json (byte identity
# to a single service, failover latency, and zero-search rejoin asserted);
# table4 prints the serial-vs-parallel and cold-vs-warm comparisons.
run_bench bench_cost_batch
run_bench bench_transformer
run_bench bench_async_pipeline
run_bench bench_surrogate
run_bench bench_parallel_scaling
run_bench bench_serve_throughput
run_bench bench_net
run_bench bench_fleet
run_bench table4_search_cost

if [ "${NAAS_BENCH_ALL:-0}" = "1" ]; then
  for b in fig4_convergence fig5_multi_network fig6_single_network \
           fig7_searched_archs fig8_sizing_ablation fig9_encoding_ablation \
           fig10_nas_codesign table3_nasaic ablation_design_choices; do
    run_bench "$b"
  done
fi

echo
echo "artifacts:"
ls -1 "$BUILD_DIR"/BENCH_*.json

# Fold every per-bench reproduction artifact into one BENCH_summary.json so
# trend tooling reads a single file. Keyed by the artifact's basename
# without the BENCH_ prefix; google-benchmark *_micro.json dumps stay
# separate (they are per-machine timings, not tracked properties).
python3 - "$BUILD_DIR" <<'EOF'
import glob, json, os, sys

build = sys.argv[1]
summary = {}
for path in sorted(glob.glob(os.path.join(build, "BENCH_*.json"))):
    base = os.path.basename(path)[len("BENCH_"):-len(".json")]
    if base == "summary" or base.endswith("_micro"):
        continue
    with open(path) as f:
        summary[base] = json.load(f)
out = os.path.join(build, "BENCH_summary.json")
with open(out, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
    f.write("\n")
print("summary:", out, "(%d benches)" % len(summary))
EOF
