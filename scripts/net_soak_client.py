#!/usr/bin/env python3
"""Adversarial TCP client for the naas_serve soak test.

Hammers a running server with the full spectrum of client behaviour the
transport must survive: deep pipelining, garbage lines, oversized lines,
half-written requests followed by an abortive RST, expired deadlines, and
several of those at once from concurrent connections. Every well-formed
request must come back in order with the right id; every malformed one
must earn a structured error without killing the connection (or the
server). Exits 0 only if every assertion held.

Usage: net_soak_client.py --port P [--rounds N] [--max-line-bytes B]
"""

import argparse
import json
import socket
import struct
import sys
import threading

FAILURES = []
FAILURES_LOCK = threading.Lock()


def fail(msg):
    with FAILURES_LOCK:
        FAILURES.append(msg)
    print("FAIL: " + msg, file=sys.stderr)


def search_line(req_id, index):
    return json.dumps(
        {
            "id": req_id,
            "method": "search_mapping",
            "arch": {"preset": "nvdla256"},
            "layer": {"network": "squeezenet", "index": index},
        },
        separators=(",", ":"),
    )


class LineConn:
    """Blocking line-framed connection with a read deadline."""

    def __init__(self, port, timeout=120.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.sock.settimeout(timeout)
        self.buf = b""

    def send(self, data):
        self.sock.sendall(data.encode() if isinstance(data, str) else data)

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def reset(self):
        """Abortive close: RST instead of FIN."""
        self.sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        self.sock.close()

    def close(self):
        self.sock.close()


def expect_response(conn, req_id, what):
    line = conn.read_line()
    if line is None:
        fail(f"{what}: connection closed before response id={req_id}")
        return None
    try:
        resp = json.loads(line)
    except ValueError:
        fail(f"{what}: unparseable response: {line!r}")
        return None
    if resp.get("id") != req_id:
        fail(f"{what}: expected id={req_id}, got {line!r}")
    return resp


def phase_pipelined(port, rounds):
    """Deep pipelining: one write, many requests, in-order responses."""
    conn = LineConn(port)
    ids = []
    burst = []
    for r in range(rounds):
        for index in range(4):
            req_id = r * 100 + index
            ids.append(req_id)
            burst.append(search_line(req_id, index))
    conn.send("\n".join(burst) + "\n")
    for req_id in ids:
        resp = expect_response(conn, req_id, "pipelined")
        if resp is not None and not resp.get("ok"):
            fail(f"pipelined: id={req_id} not ok: {resp}")
    conn.close()


def phase_malformed(port, max_line_bytes):
    """Garbage and oversized lines: structured errors, connection lives."""
    conn = LineConn(port)
    conn.send("this is not json\n")
    resp = expect_response(conn, None, "garbage line")
    if resp is not None and resp.get("ok"):
        fail(f"garbage line was accepted: {resp}")

    conn.send("x" * (max_line_bytes + 10) + "\n")
    resp = expect_response(conn, None, "oversized line")
    if resp is not None and (
        resp.get("ok") or resp.get("error", {}).get("code") != "bad_request"
    ):
        fail(f"oversized line: expected bad_request, got {resp}")

    # The same connection must still serve a valid request afterwards.
    conn.send(search_line(7, 0) + "\n")
    resp = expect_response(conn, 7, "valid-after-oversized")
    if resp is not None and not resp.get("ok"):
        fail(f"valid-after-oversized not ok: {resp}")
    conn.close()


def phase_deadline(port):
    """A pre-expired deadline earns deadline_exceeded, never evaluation."""
    conn = LineConn(port)
    req = json.loads(search_line(9, 0))
    req["deadline_ms"] = 0
    conn.send(json.dumps(req, separators=(",", ":")) + "\n")
    resp = expect_response(conn, 9, "deadline")
    if resp is not None and (
        resp.get("ok")
        or resp.get("error", {}).get("code") != "deadline_exceeded"
    ):
        fail(f"deadline: expected deadline_exceeded, got {resp}")
    conn.close()


def phase_rude(port, rounds):
    """Half-written requests followed by RST; the server must shrug."""
    for _ in range(rounds):
        conn = LineConn(port)
        conn.send('{"id":1,"method":"search_map')  # no newline
        conn.reset()
    # And a clean connection that sends nothing at all.
    LineConn(port).close()


def phase_concurrent(port, rounds):
    """Several pipelining clients at once."""
    threads = [
        threading.Thread(target=phase_pipelined, args=(port, rounds))
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--max-line-bytes", type=int, default=4096)
    args = parser.parse_args()

    phase_pipelined(args.port, args.rounds)
    phase_malformed(args.port, args.max_line_bytes)
    phase_deadline(args.port)
    phase_rude(args.port, args.rounds)
    phase_concurrent(args.port, args.rounds)

    if FAILURES:
        print(f"soak client: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("soak client: all phases passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
