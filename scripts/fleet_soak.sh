#!/usr/bin/env bash
# Crash soak of the sharded evaluator fleet.
#
# Starts three naas_serve workers under deterministic socket fault
# weather and a naas_router in front of them with router-level faults
# armed (failed forwards, a stalled forward that must eat the deadline
# and fail over). A pipelined TCP client then runs the same session three
# times against the router:
#
#   pass 1: all workers up;
#   pass 2: one worker SIGKILLed mid-session (dead-connection detection,
#           group failover, backoff reconnect all on the hot path);
#   pass 3: steady state with the worker still dead.
#
# Every pass must be byte-identical to a fresh single naas_serve
# stdin-mode reference, with zero degraded responses. Then the killed
# worker is "restarted" with an EMPTY store and --peers pointing at the
# survivors: its boot-time segment pull must adopt entries, and replaying
# the full session directly against it must run ZERO mapping searches —
# the rejoin acceptance of the fleet design.
#
# Usage: scripts/fleet_soak.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/naas_serve"
ROUTER="$BUILD_DIR/naas_router"

for bin in "$SERVE" "$ROUTER"; do
  if [ ! -x "$bin" ]; then
    echo "fleet_soak: $bin not built" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Waits for "listening on 127.0.0.1:<port>" in $1 (a stderr file) and
# prints the port; the pid in $2 must stay alive while we wait.
wait_port() {
  local errfile="$1" pid="$2" port=""
  for _ in $(seq 1 200); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$errfile" | head -n1)"
    [ -n "$port" ] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || {
      echo "fleet_soak: process $pid died before binding:" >&2
      cat "$errfile" >&2
      return 1
    }
    sleep 0.1
  done
  echo "fleet_soak: no port announced in $errfile" >&2
  return 1
}

# Deterministic fault weather on every worker's sockets: the router must
# ride through short reads/writes and EINTR without the client noticing.
WORKER_FAULTS="seed=7,sock_read_short=0.05,sock_write_short=0.05,sock_read_eintr=0.02"

echo "=== fleet_soak: starting 3 workers ==="
WPORTS=()
WPIDS=()
for i in 1 2 3; do
  "$SERVE" --listen 127.0.0.1:0 --cache-path "$WORK/store$i.bin" \
      --faults "$WORKER_FAULTS" 2> "$WORK/worker$i.err" &
  pid=$!
  PIDS+=("$pid")
  WPIDS+=("$pid")
  WPORTS+=("$(wait_port "$WORK/worker$i.err" "$pid")")
done
echo "fleet_soak: workers on ports ${WPORTS[*]}"

# Router fault weather: a bounded burst of failed forwards plus one
# stalled forward that must burn the (shortened) deadline and fail over.
ROUTER_FAULTS="seed=11,router_forward_fail=0.1@10,router_forward_stall=1@1"
"$ROUTER" --workers "127.0.0.1:${WPORTS[0]},127.0.0.1:${WPORTS[1]},127.0.0.1:${WPORTS[2]}" \
    --listen 127.0.0.1:0 \
    --forward-timeout-ms 2000 \
    --reconnect-backoff-ms 20 --reconnect-backoff-cap-ms 200 \
    --ping-interval-ms 200 \
    --faults "$ROUTER_FAULTS" 2> "$WORK/router.err" &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
RPORT="$(wait_port "$WORK/router.err" "$ROUTER_PID")"
echo "fleet_soak: router on port $RPORT"

# The session: work-unit-keyed searches over two envelopes, a whole-net
# evaluation, protocol errors, a ping — then the searches again so traffic
# after the mid-session kill is guaranteed to hit every worker's shard.
SESSION="$WORK/session.jsonl"
{
  printf '%s\n' \
    '{"id":1,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":0}}' \
    '{"id":2,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":1}}' \
    '{"id":3,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":2}}' \
    '{"id":4,"method":"search_mapping","arch":{"preset":"edgetpu"},"layer":{"network":"squeezenet","index":0}}' \
    '{"id":5,"method":"search_mapping","arch":{"preset":"edgetpu"},"layer":{"network":"mobilenetv2","index":1}}' \
    '{"id":6,"method":"evaluate_network","arch":{"preset":"nvdla256"},"network":"squeezenet"}' \
    '{"id":7,"method":"ping"}' \
    '{"id":8,"method":"nonsense"}' \
    'this is not json'
  for id in 9 10 11 12 13; do
    layer=$((id - 9))
    printf '{"id":%d,"method":"search_mapping","arch":{"preset":"nvdla256"},"layer":{"network":"squeezenet","index":%d}}\n' \
      "$id" "$((layer % 3))"
  done
} > "$SESSION"

# Fresh single-service stdin reference: responses are pure per line, so
# the fleet must reproduce these bytes exactly, kills and all.
echo "=== fleet_soak: computing single-service reference ==="
"$SERVE" --cache-path "$WORK/ref_store.bin" < "$SESSION" \
    > "$WORK/ref.out" 2> "$WORK/ref.err"

# Pipelined TCP client; optionally SIGKILLs a pid halfway through.
run_session() {
  local port="$1" out="$2" kill_pid="${3:-0}"
  python3 - "$port" "$SESSION" "$out" "$kill_pid" <<'EOF'
import os, signal, socket, sys, time
port, session, out, kill_pid = sys.argv[1:5]
lines = open(session, "rb").read().splitlines()
sock = socket.create_connection(("127.0.0.1", int(port)), timeout=120)
sock.settimeout(120)
reader = sock.makefile("rb")
half = len(lines) // 2
with open(out, "wb") as f:
    def roundtrip(chunk):
        for line in chunk:
            sock.sendall(line + b"\n")
        for _ in chunk:
            response = reader.readline()
            assert response.endswith(b"\n"), "connection died mid-session"
            f.write(response)
    roundtrip(lines[:half])
    if int(kill_pid):
        os.kill(int(kill_pid), signal.SIGKILL)
        time.sleep(0.3)
    roundtrip(lines[half:])
EOF
}

echo "=== fleet_soak: pass 1 (all workers up) ==="
run_session "$RPORT" "$WORK/pass1.out"
diff "$WORK/ref.out" "$WORK/pass1.out" || {
  echo "fleet_soak: pass 1 diverged from single-service reference" >&2
  exit 1
}

echo "=== fleet_soak: pass 2 (worker 1 SIGKILLed mid-session) ==="
run_session "$RPORT" "$WORK/pass2.out" "${WPIDS[0]}"
diff "$WORK/ref.out" "$WORK/pass2.out" || {
  echo "fleet_soak: pass 2 diverged after mid-session worker kill" >&2
  exit 1
}

echo "=== fleet_soak: pass 3 (steady state, worker 1 still dead) ==="
run_session "$RPORT" "$WORK/pass3.out"
diff "$WORK/ref.out" "$WORK/pass3.out" || {
  echo "fleet_soak: pass 3 diverged with a dead worker" >&2
  exit 1
}

echo "=== fleet_soak: rejoin (worker 1 restarts empty, pulls from peers) ==="
"$SERVE" --listen 127.0.0.1:0 --cache-path "$WORK/store1_rejoin.bin" \
    --peers "127.0.0.1:${WPORTS[1]},127.0.0.1:${WPORTS[2]}" \
    2> "$WORK/rejoin.err" &
REJOIN_PID=$!
PIDS+=("$REJOIN_PID")
RJPORT="$(wait_port "$WORK/rejoin.err" "$REJOIN_PID")"
grep -q 'peer pull adopted [1-9]' "$WORK/rejoin.err" || {
  echo "fleet_soak: restarted worker adopted no peer entries" >&2
  cat "$WORK/rejoin.err" >&2
  exit 1
}

# The whole session replayed directly against the rejoined worker: warm
# from peer segments alone, byte-identical, ZERO mapping searches.
run_session "$RJPORT" "$WORK/rejoin.out"
diff "$WORK/ref.out" "$WORK/rejoin.out" || {
  echo "fleet_soak: rejoined worker diverged from reference" >&2
  exit 1
}
kill -TERM "$REJOIN_PID"
EXIT_CODE=0
wait "$REJOIN_PID" || EXIT_CODE=$?
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "fleet_soak: rejoined worker exited $EXIT_CODE" >&2
  exit 1
fi
grep -q 'mapping searches run: 0;' "$WORK/rejoin.err" || {
  echo "fleet_soak: rejoined worker re-ran searches its peers held" >&2
  cat "$WORK/rejoin.err" >&2
  exit 1
}

echo "=== fleet_soak: draining router and surviving workers ==="
kill -TERM "$ROUTER_PID"
EXIT_CODE=0
wait "$ROUTER_PID" || EXIT_CODE=$?
echo "--- router stderr ---"
cat "$WORK/router.err"
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "fleet_soak: router exited $EXIT_CODE under fault weather" >&2
  exit 1
fi
# The weather actually hit: forwards failed over, nothing degraded.
grep -q 'degraded: 0;' "$WORK/router.err" || {
  echo "fleet_soak: router answered degraded responses" >&2
  exit 1
}
grep -Eq 'failovers: [1-9]' "$WORK/router.err" || {
  echo "fleet_soak: no failovers recorded — the soak proved nothing" >&2
  exit 1
}

for i in 1 2; do
  kill -TERM "${WPIDS[$i]}" 2>/dev/null || true
  EXIT_CODE=0
  wait "${WPIDS[$i]}" || EXIT_CODE=$?
  if [ "$EXIT_CODE" -ne 0 ]; then
    echo "fleet_soak: worker $((i + 1)) exited $EXIT_CODE" >&2
    cat "$WORK/worker$((i + 1)).err" >&2
    exit 1
  fi
done

echo "fleet_soak: PASS (3 passes byte-identical under kills and faults," \
     "rejoin warm from peers with zero searches)"
