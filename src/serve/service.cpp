#include "serve/service.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/fault.hpp"
#include "core/log.hpp"
#include "core/serialize.hpp"
#include "nn/model_zoo.hpp"
#include "search/encoding.hpp"
#include "search/eval_pipeline.hpp"
#include "search/result_store.hpp"

namespace naas::serve {
namespace {

/// Batch-dedup key for one (arch, layer) mapping-search work unit. Only
/// used to collapse duplicates within a batch and to key the payload
/// memo; the evaluator's own cache key (which additionally fingerprints
/// the search options) is what the result is stored under.
std::uint64_t task_key(const arch::ArchConfig& arch,
                       const nn::Workload& layer) {
  return core::hash_mix(search::arch_fingerprint(arch),
                        nn::LayerShapeHash{}(layer));
}

}  // namespace

namespace {

/// True for statuses that mean "this file can never load again" (as
/// opposed to transient IO trouble or a normal first cold run).
bool is_damaged(search::StoreStatus status) {
  return status == search::StoreStatus::kBadMagic ||
         status == search::StoreStatus::kBadVersion ||
         status == search::StoreStatus::kCorrupt;
}

/// splitmix64 step for the backoff jitter stream: cheap, stateless beyond
/// one word, and deterministic per service.
std::uint64_t jitter_next(std::uint64_t* state) {
  std::uint64_t x = (*state += 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EvalService::EvalService(const ServeOptions& options)
    : options_(options),
      model_(cost::EnergyModel{},
             options.cost_backend.value_or(cost::default_backend_kind())),
      pool_(options.num_threads),
      evaluator_(model_, options.mapping, &pool_) {
  if (!options_.store_path.empty()) {
    const search::StoreStatus status =
        evaluator_.load_store(options_.store_path);
    search::warn_store_rejected(options_.store_path, status);
    if (is_damaged(status)) rejected_status_ = status;
  }
  known_store_size_ = file_size(options_.store_path);
  // Entries adopted at boot are already on disk: start the flush mark past
  // them so the first refresh appends only work this process performs.
  flush_mark_ = evaluator_.cache_sequence();
  backoff_jitter_state_ =
      core::hash_mix(core::fnv1a64(options_.store_path),
                     options_.mapping.seed);
}

EvalService::~EvalService() {
  try {
    refresh();
  } catch (const std::exception& e) {
    core::log_warn(std::string("serve: final store flush failed: ") +
                   e.what());
  }
}

long long EvalService::file_size(const std::string& path) {
  if (path.empty()) return -1;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long long>(st.st_size);
}

Json EvalService::handle(const Json& request) {
  return handle_batch({request}).front();
}

std::vector<Json> EvalService::handle_batch(const std::vector<Json>& requests) {
  ++stats_.batches;
  stats_.queries += static_cast<long long>(requests.size());

  std::vector<Plan> plans;
  plans.reserve(requests.size());
  for (const Json& request : requests) plans.push_back(plan_request(request));

  // Collapse every mapping-search work unit in the batch — direct
  // search_mapping queries and the unique-layer expansion of
  // evaluate_network queries — into one deduplicated task set. Work shared
  // by several requests (the common case: many clients asking about the
  // same architecture) is paid for once per batch instead of once per
  // request.
  std::vector<std::pair<const arch::ArchConfig*, const nn::Workload*>> tasks;
  std::unordered_set<std::uint64_t> seen;
  const auto add_task = [&](const arch::ArchConfig& arch,
                            const nn::Workload& layer) {
    if (seen.insert(task_key(arch, layer)).second)
      tasks.emplace_back(&arch, &layer);
  };
  // unique_layers() returns by value; keep the expansions alive through the
  // fan-out below.
  std::vector<std::vector<std::pair<nn::Workload, int>>> expansions;
  for (Plan& plan : plans) {
    if (!plan.error_code.empty() || !plan.has_task) continue;
    if (plan.network) {
      expansions.push_back(plan.network->unique_layers());
      for (const auto& [layer, count] : expansions.back())
        add_task(plan.arch, layer);
    } else {
      add_task(plan.arch, plan.layer);
    }
  }

  // Submit the deduplicated work units as mapping-search chains on one
  // task graph: every chain's CMA-generation shards interleave with every
  // other's, so one large layer no longer leaves the pool idle while small
  // ones finish (the old fan-out joined on whole searches). The chains
  // publish into the shared cache; the per-request assembly below then
  // hits it for every task. Mapping search is deterministic per key
  // (seeded by layer shape, not evaluation order), so this produces
  // byte-identical responses to sequential submission.
  search::EvalPipeline pipeline(evaluator_);
  bool any_chain = false;
  for (const auto& [arch, layer] : tasks)
    if (pipeline.request(*arch, *layer, /*speculative=*/false))
      any_chain = true;
  if (any_chain) pipeline.run();

  std::vector<Json> responses;
  responses.reserve(plans.size());
  for (const Plan& plan : plans) responses.push_back(finish(plan));
  return responses;
}

std::string EvalService::handle_line(const std::string& line) {
  return handle_lines({line}).front();
}

std::vector<std::string> EvalService::handle_lines(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out(lines.size());
  std::vector<Json> requests;
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string error;
    Json request = Json::parse(lines[i], &error);
    if (!error.empty()) {
      ++stats_.queries;
      ++stats_.errors;
      out[i] = error_response(Json::null(), kErrParse, error).dump();
    } else {
      requests.push_back(std::move(request));
      slots.push_back(i);
    }
  }
  const std::vector<Json> responses = handle_batch(requests);
  for (std::size_t k = 0; k < responses.size(); ++k)
    out[slots[k]] = responses[k].dump();
  return out;
}

EvalService::Plan EvalService::plan_request(const Json& request) {
  Plan plan;
  const auto fail = [&plan](const char* code, std::string message) {
    plan.error_code = code;
    plan.error = std::move(message);
    return plan;
  };
  if (!request.is_object())
    return fail(kErrBadRequest, "request must be a JSON object");
  if (const Json* id = request.get("id")) plan.id = *id;

  const Json* method = request.get("method");
  if (!method || !method->is_string())
    return fail(kErrBadRequest, "request requires a string 'method'");
  plan.method = method->as_string();

  std::string err;
  const NetworkResolver resolver =
      [this](const std::string& name, std::string* resolve_err) {
        return resolve_network(name, resolve_err);
      };
  if (plan.method == "search_mapping" || plan.method == "evaluate_mapping") {
    const Json* arch = request.get("arch");
    const Json* layer = request.get("layer");
    if (!arch || !layer)
      return fail(kErrBadRequest,
                  "'" + plan.method + "' requires 'arch' and 'layer'");
    if (!arch_from_json(*arch, &plan.arch, &err))
      return fail(kErrBadRequest, err);
    if (!layer_from_json(*layer, &plan.layer, &err, resolver))
      return fail(kErrBadRequest, err);
    if (plan.method == "evaluate_mapping") {
      const Json* map = request.get("mapping");
      if (!map)
        return fail(kErrBadRequest, "'evaluate_mapping' requires 'mapping'");
      if (!mapping_from_json(*map, &plan.map, &err))
        return fail(kErrBadRequest, err);
    } else {
      plan.has_task = true;
    }
    return plan;
  }
  if (plan.method == "evaluate_network") {
    const Json* arch = request.get("arch");
    const Json* network = request.get("network");
    if (!arch || !network || !network->is_string())
      return fail(kErrBadRequest,
                  "'evaluate_network' requires 'arch' and a string "
                  "'network'");
    if (!arch_from_json(*arch, &plan.arch, &err))
      return fail(kErrBadRequest, err);
    plan.network = resolve_network(network->as_string(), &err);
    if (!plan.network) return fail(kErrBadRequest, err);
    plan.has_task = true;
    return plan;
  }
  if (plan.method == "cache_stats" || plan.method == "refresh" ||
      plan.method == "ping" || plan.method == "pull_store")
    return plan;
  return fail(kErrUnknownMethod, "unknown method '" + plan.method + "'");
}

Json EvalService::finish(const Plan& plan) {
  if (!plan.error_code.empty()) {
    ++stats_.errors;
    return error_response(plan.id, plan.error_code, plan.error);
  }
  try {
    if (plan.method == "search_mapping") {
      const std::uint64_t key = task_key(plan.arch, plan.layer);
      auto it = payload_memo_.find(key);
      if (it == payload_memo_.end()) {
        const search::MappingSearchResult& r =
            evaluator_.best_mapping(plan.arch, plan.layer);
        if (payload_memo_.size() >= kMaxPayloadMemoEntries)
          payload_memo_.clear();
        it = payload_memo_
                 .emplace(key, mapping_search_result_to_json(r).dump())
                 .first;
      }
      return ok_response(plan.id, Json::raw(it->second));
    }
    if (plan.method == "evaluate_mapping") {
      const cost::CostReport report =
          model_.evaluate(plan.arch, plan.layer, plan.map);
      return ok_response(plan.id, report_to_json(report));
    }
    if (plan.method == "evaluate_network") {
      const cost::NetworkCost cost =
          evaluator_.evaluate(plan.arch, *plan.network);
      return ok_response(plan.id, network_cost_to_json(cost));
    }
    if (plan.method == "cache_stats")
      return ok_response(plan.id, cache_stats_json());
    if (plan.method == "ping") {
      // Liveness probe for the fleet router's health checks: no locks, no
      // evaluator state, nothing that can stall behind a slow store.
      Json result = Json::object();
      result.set("pong", Json::boolean(true));
      return ok_response(plan.id, std::move(result));
    }
    if (plan.method == "pull_store") {
      // The serve half of pull-based peer replication: a consistent cut of
      // every memoized result, in the on-disk segment format (magic,
      // version, algorithm epoch, checksum), hex-armored for the line
      // protocol. The puller runs the same ResultStore::decode as a disk
      // load, so a torn or damaged transfer is rejected/salvaged at
      // segment granularity — never adopted wrong.
      search::StoreEntries entries = evaluator_.snapshot_since(0);
      const std::size_t count = entries.size();
      const std::string encoded = search::ResultStore::encode(
          std::move(entries));
      Json result = Json::object();
      result.set("entries", Json::integer(static_cast<std::int64_t>(count)));
      result.set("format", Json::string("naasmaps-hex"));
      result.set("data", Json::string(core::to_hex(encoded)));
      return ok_response(plan.id, std::move(result));
    }
    // "refresh"
    const search::StoreStatus status = refresh();
    Json result = Json::object();
    result.set("status", Json::string(search::store_status_name(status)));
    result.set("entries_appended_total",
               Json::integer(stats_.store_entries_appended));
    result.set("entries_reloaded_total",
               Json::integer(stats_.store_entries_reloaded));
    return ok_response(plan.id, std::move(result));
  } catch (const std::exception& e) {
    ++stats_.errors;
    return error_response(plan.id, kErrInternal, e.what());
  }
}

std::size_t EvalService::adopt_entries(search::StoreEntries entries) {
  return evaluator_.adopt_entries(std::move(entries));
}

const nn::Network* EvalService::resolve_network(const std::string& name,
                                                std::string* err) {
  const auto it = network_memo_.find(name);
  if (it != network_memo_.end()) return &it->second;
  try {
    return &network_memo_.emplace(name, nn::make_network(name)).first->second;
  } catch (const std::invalid_argument& e) {
    *err = e.what();
    return nullptr;
  }
}

Json EvalService::cache_stats_json() const {
  Json obj = Json::object();
  obj.set("cache_entries",
          Json::integer(static_cast<std::int64_t>(evaluator_.cache_size())));
  obj.set("mapping_searches", Json::integer(evaluator_.mapping_searches()));
  obj.set("cost_evaluations", Json::integer(evaluator_.cost_evaluations()));
  obj.set("generations_batched",
          Json::integer(evaluator_.generations_batched()));
  obj.set("candidates_batch_evaluated",
          Json::integer(evaluator_.candidates_batch_evaluated()));
  obj.set("tasks_executed", Json::integer(evaluator_.tasks_executed()));
  obj.set("speculative_hits", Json::integer(evaluator_.speculative_hits()));
  obj.set("speculative_wasted",
          Json::integer(evaluator_.speculative_wasted()));
  // Surrogate-pruning meters: the serving path itself consults no bounds
  // (it evaluates every request), so these stay 0 unless a warm-started
  // search driver shares the evaluator; surfaced for parity with the
  // search drivers' stderr summaries.
  obj.set("surrogate_consults",
          Json::integer(evaluator_.surrogate_consults()));
  obj.set("surrogate_pruned", Json::integer(evaluator_.surrogate_pruned()));
  obj.set("store_entries_loaded",
          Json::integer(
              static_cast<std::int64_t>(evaluator_.store_entries_loaded())));
  obj.set("queries", Json::integer(stats_.queries));
  obj.set("batches", Json::integer(stats_.batches));
  obj.set("errors", Json::integer(stats_.errors));
  obj.set("store_appends", Json::integer(stats_.store_appends));
  obj.set("store_entries_appended",
          Json::integer(stats_.store_entries_appended));
  obj.set("store_reloads", Json::integer(stats_.store_reloads));
  obj.set("store_entries_reloaded",
          Json::integer(stats_.store_entries_reloaded));
  obj.set("store_rewrites", Json::integer(stats_.store_rewrites));
  obj.set("store_refresh_retries",
          Json::integer(stats_.store_refresh_retries));
  obj.set("store_refresh_backoff_ms",
          Json::integer(stats_.store_refresh_backoff_ms));
  obj.set("requests_shed", Json::integer(requests_shed()));
  obj.set("requests_timed_out", Json::integer(requests_timed_out()));
  obj.set("protocol_rejects", Json::integer(protocol_rejects()));
  obj.set("pool_threads", Json::integer(pool_.size()));
  obj.set("cost_backend", Json::string(model_.backend_name()));
  return obj;
}

search::StoreStatus EvalService::heal_store() {
  using search::StoreStatus;
  // Appending to a damaged file is pointless (decode stops at the first
  // damaged segment), so rewrite it atomically from the full cache —
  // which includes anything the load salvaged — the same
  // recovery the search CLIs perform at exit. Whatever the damaged file
  // held is unreadable regardless; the rewrite can only restore service.
  const StoreStatus status = evaluator_.save_store(options_.store_path);
  if (status != StoreStatus::kOk) {
    search::warn_store_write_failed(options_.store_path, status);
    return status;
  }
  ++stats_.store_rewrites;
  rejected_status_ = StoreStatus::kOk;
  known_store_size_ = file_size(options_.store_path);
  flush_mark_ = evaluator_.cache_sequence();
  return StoreStatus::kOk;
}

search::StoreStatus EvalService::refresh() {
  using search::StoreStatus;
  // Bounded retry with jittered exponential backoff for *transient*
  // failures (kIoError). Damaged-store statuses are not retried here —
  // they are healed by rewrite on the next pass — and a healthy pass
  // returns immediately. Backoff stays tiny (base 1/2/4 ms): the point is
  // to step over a momentary failure window, not to block the serving
  // loop. The jitter (uniform in [base/2, base], drawn from a per-service
  // deterministic stream) is a thundering-herd guard: N fleet workers
  // sharing one store path that all see the same transient failure retry
  // at decorrelated times instead of colliding again in lockstep. Total
  // sleep time is metered as store_refresh_backoff_ms in cache_stats.
  constexpr int kMaxAttempts = 3;
  StoreStatus status = StoreStatus::kOk;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.store_refresh_retries;
      const long long base_ms = 1LL << (attempt - 1);
      const double unit =
          static_cast<double>(jitter_next(&backoff_jitter_state_) >> 11) *
          0x1.0p-53;
      const long long sleep_ms = std::max<long long>(
          1, static_cast<long long>(
                 static_cast<double>(base_ms) * (0.5 + 0.5 * unit) + 0.5));
      stats_.store_refresh_backoff_ms += sleep_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    status = refresh_once();
    if (status != StoreStatus::kIoError) break;
  }
  return status;
}

search::StoreStatus EvalService::refresh_once() {
  using search::StoreStatus;
  if (options_.store_path.empty()) return StoreStatus::kOk;
  // Deterministic transient-failure seam for the retry/backoff tests and
  // the fault-injection soak.
  if (core::fault("refresh_fail")) return StoreStatus::kIoError;
  if (store_rejected() && !options_.store_readonly) return heal_store();
  // A readonly service cannot heal a damaged store itself; it falls
  // through to the reload-on-change check below so it adopts the store
  // once a writer heals it, and keeps reporting the rejection meanwhile.

  StoreStatus first_problem = StoreStatus::kOk;
  std::size_t appended_bytes = 0;
  bool append_failed = false;
  // The cut the flush mark may advance to: snapshot_since pairs the scan
  // with the sequence it is consistent with, so entries published after
  // the scan can never be skipped by a mark that overshoots them.
  std::uint64_t scan_mark = flush_mark_;
  if (!options_.store_readonly) {
    search::StoreEntries fresh =
        evaluator_.snapshot_since(flush_mark_, &scan_mark);
    if (!fresh.empty()) {
      const auto count = static_cast<long long>(fresh.size());
      const StoreStatus status = search::ResultStore::append(
          options_.store_path, std::move(fresh), &appended_bytes);
      if (status == StoreStatus::kOk) {
        ++stats_.store_appends;
        stats_.store_entries_appended += count;
      } else {
        search::warn_store_write_failed(options_.store_path, status);
        first_problem = status;
        append_failed = true;
      }
    }
  }

  // Reload-on-change: if the file grew beyond what we just wrote (or
  // changed at all when we wrote nothing), another process appended or
  // rewrote it — adopt its entries. Existing keys win in preload, so a
  // reload can only add results, never change an answer.
  const long long expected =
      (known_store_size_ < 0 ? 0 : known_store_size_) +
      static_cast<long long>(appended_bytes);
  const long long size_now = file_size(options_.store_path);
  bool reloaded = false;
  if (size_now >= 0 && size_now != expected) {
    const std::size_t before = evaluator_.store_entries_loaded();
    const StoreStatus status = evaluator_.load_store(options_.store_path);
    if (status == StoreStatus::kOk) {
      ++stats_.store_reloads;
      stats_.store_entries_reloaded += static_cast<long long>(
          evaluator_.store_entries_loaded() - before);
      rejected_status_ = StoreStatus::kOk;  // someone healed it
      reloaded = true;
    } else {
      search::warn_store_rejected(options_.store_path, status);
      // A damaged file is healed (rewritten) on the next refresh.
      if (is_damaged(status)) rejected_status_ = status;
      if (first_problem == StoreStatus::kOk) first_problem = status;
    }
  }
  known_store_size_ = size_now;
  // Advance the flush mark — but only when our own append (if any)
  // landed; after a failed append the mark stays put and the same entries
  // retry next refresh. The mark moves to the snapshot's own consistency
  // cut (scan_mark), never to a bare post-append sequence read, so an
  // entry published after the scan can never be covered without having
  // been flushed. A successful reload additionally advances past the
  // adopted entries (they came *from* the store; re-appending them is
  // pure waste) — exact under the quiescent-refresh service contract,
  // since the preload's insertions are the only ones since the scan.
  if (!append_failed)
    flush_mark_ = reloaded ? evaluator_.cache_sequence() : scan_mark;
  // A still-unusable store is a standing problem, not a healthy refresh.
  if (first_problem == StoreStatus::kOk && store_rejected())
    first_problem = rejected_status_;
  return first_problem;
}

}  // namespace naas::serve
