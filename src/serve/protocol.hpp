#pragma once

#include <functional>
#include <string>

#include "arch/accelerator.hpp"
#include "cost/cost_model.hpp"
#include "cost/network_cost.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "search/mapping_search.hpp"
#include "serve/json.hpp"

namespace naas::serve {

/// The line-oriented query protocol of the evaluator service (full schema
/// with examples in docs/serving.md). One JSON object per line:
///
///   request  {"id": <any>, "method": "<name>", ...params}
///   success  {"id": <echoed>, "ok": true, "result": {...}}
///   failure  {"id": <echoed>, "ok": false,
///             "error": {"code": "<code>", "message": "..."}}
///
/// Methods: "search_mapping", "evaluate_mapping", "evaluate_network",
/// "cache_stats", "refresh", "ping" (liveness probe — the fleet router's
/// health check), "pull_store" (peer replication — a hex-armored
/// result-store snapshot the puller feeds through ResultStore::decode).
/// Success results for the evaluation methods are pure functions of
/// (request, service options), never of cache state or timing — that is
/// what makes a warm response diffable against a cold one, and what lets
/// the fleet router fail a request over to any peer whose options match.
///
/// Error codes, stable for scripting:
inline constexpr const char* kErrParse = "parse_error";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownMethod = "unknown_method";
inline constexpr const char* kErrInternal = "internal_error";
/// Admission queue full — the request was shed *before* evaluation so an
/// overload never stalls the evaluation pool; resubmit later.
inline constexpr const char* kErrOverloaded = "overloaded";
/// The request's deadline ("deadline_ms" field, or the server default)
/// expired while it sat in the admission queue; it was never evaluated.
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
/// Fleet router only: every worker that could own this request's shard is
/// down (or failed within the forward budget). The request was never
/// evaluated and is safe to resubmit — evaluations are pure and
/// idempotent, which is also why the router may silently retry a forward
/// on a peer before ever surfacing this.
inline constexpr const char* kErrDegraded = "degraded";

/// Defensive protocol limits, shared by the stdin driver and the TCP
/// server. A request line longer than the cap is answered with a
/// structured bad_request instead of being fed to the JSON parser; lines
/// past the batch cap in one submission are individually rejected the same
/// way. Both are per-front-end configurable; these are the defaults.
inline constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;
inline constexpr std::size_t kDefaultMaxBatchRequests = 4096;

/// Canonical bad_request responses for the two limits (id is null for an
/// oversized line: extracting the id would mean parsing the very bytes the
/// limit refuses to parse).
Json line_too_long_response(std::size_t max_line_bytes);
Json batch_too_large_response(const Json& id, std::size_t max_batch);

/// --- domain <-> JSON -----------------------------------------------------
/// The *_from_json parsers accept what the matching *_to_json emits plus
/// the documented shorthand forms; they never throw, returning false with a
/// human-readable `*err` instead.

/// Arch spec: {"preset": "nvdla256"} (edgetpu | nvdla1024 | nvdla256 |
/// eyeriss | shidiannao) or an explicit config {"array_dims": [16,16],
/// "parallel_dims": ["C","K"], "l1_bytes": .., "l2_bytes": ..,
/// "noc_bandwidth": .., "dram_bandwidth": .., "name"?: ..}.
Json arch_to_json(const arch::ArchConfig& cfg);
bool arch_from_json(const Json& j, arch::ArchConfig* out, std::string* err);

/// Resolves a model-zoo network name to a (caller-owned) Network, or
/// nullptr with `*err` set. The service installs a memoizing resolver so a
/// hot query loop does not rebuild ResNet50 per request; the default
/// resolver is a plain nn::make_network call.
using NetworkResolver = std::function<const nn::Network*(
    const std::string& name, std::string* err)>;

/// Layer spec: {"network": "resnet50", "index": 3} (model-zoo lookup) or an
/// explicit shape {"kind": "conv"|"dwconv"|"fc"|"matmul"|"attention",
/// "batch": .., "out_channels": .., "in_channels": .., "out_h": ..,
/// "out_w": .., "kernel_h": .., "kernel_w": .., "stride": ..,
/// "name"?: ..}. GEMM kinds (matmul/attention) read out_h as the row count
/// M, in_channels as the reduction depth, out_channels as the output
/// features, and require out_w/kernel_h/kernel_w/stride == 1; attention
/// additionally folds batch x heads into "batch". Unknown kind strings are
/// rejected with a bad_request naming the supported kinds.
Json layer_to_json(const nn::Workload& layer);
bool layer_from_json(const Json& j, nn::Workload* out, std::string* err);
bool layer_from_json(const Json& j, nn::Workload* out, std::string* err,
                     const NetworkResolver& resolver);

/// Mapping spec mirrors mapping::Mapping: {"dram": {"order": [7 dim names,
/// outermost first], "tile": [7 ints in canonical N,K,C,Y',X',R,S order]},
/// "pe": {...}, "pe_order": [...]}.
Json mapping_to_json(const mapping::Mapping& m);
bool mapping_from_json(const Json& j, mapping::Mapping* out,
                       std::string* err);

/// Full per-layer cost report. Non-finite metrics (illegal mappings carry
/// +inf EDP) serialize as null.
Json report_to_json(const cost::CostReport& report);

/// Whole-network cost summary with the per-unique-layer breakdown.
Json network_cost_to_json(const cost::NetworkCost& cost);

/// search_mapping result payload: mapping + report + best_edp +
/// evaluations (the search cost *when the entry was first computed* — a
/// property of the stored result, so warm answers echo it unchanged).
Json mapping_search_result_to_json(const search::MappingSearchResult& r);

/// --- response envelopes --------------------------------------------------

/// {"id": id, "ok": true, "result": result}
Json ok_response(const Json& id, Json result);

/// {"id": id, "ok": false, "error": {"code": code, "message": message}}
Json error_response(const Json& id, const std::string& code,
                    const std::string& message);

/// Dimension helpers shared by the mapping converters: canonical short
/// names ("N","K","C","Y'","X'","R","S"; "Yp"/"Xp" accepted on input).
const char* dim_json_name(nn::Dim d);
bool dim_from_json_name(const std::string& name, nn::Dim* out);

}  // namespace naas::serve
