#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/thread_pool.hpp"
#include "cost/cost_model.hpp"
#include "search/accelerator_search.hpp"
#include "serve/json.hpp"
#include "serve/line_handler.hpp"
#include "serve/protocol.hpp"

namespace naas::serve {

/// Configuration of a long-lived evaluator service.
struct ServeOptions {
  /// Inner mapping-search budget. Part of every cache key (the options
  /// fingerprint), so two processes share a store only when their budgets
  /// match; a mismatched store simply never hits.
  search::MappingSearchOptions mapping;
  /// Evaluation threads: 0 => ThreadPool::default_num_threads(), 1 =>
  /// serial. Responses are bit-identical for every value.
  int num_threads = 0;
  /// Persistent result store (empty = fully in-memory). Loaded at boot;
  /// refresh() appends new entries incrementally and adopts other
  /// processes' appends.
  std::string store_path;
  /// Load the store but never write it back.
  bool store_readonly = false;
  /// Cost-kernel backend override (--cost-backend). nullopt keeps the
  /// process default (NAAS_COST_BACKEND env or auto-dispatch). Responses
  /// are byte-identical for every value — the resolved backend is visible
  /// in cache_stats as "cost_backend".
  std::optional<cost::BackendKind> cost_backend;
};

/// Serving-layer counters (distinct from the evaluator's own work meters,
/// which cache_stats also reports).
struct ServiceStats {
  long long queries = 0;           ///< requests handled (incl. errors)
  long long batches = 0;           ///< handle_batch calls (handle() == 1)
  long long errors = 0;            ///< error responses produced
  long long store_appends = 0;     ///< refresh() flushes that wrote a segment
  long long store_entries_appended = 0;
  long long store_reloads = 0;     ///< refresh() adoptions of external writes
  long long store_entries_reloaded = 0;
  long long store_rewrites = 0;    ///< full-save heals of a rejected store
  long long store_refresh_retries = 0;  ///< transient-failure retry attempts
  /// Total milliseconds refresh() slept in retry backoff. The backoff is
  /// jittered (see refresh()), so N workers sharing one store that all hit
  /// the same transient failure spread their retries instead of stampeding
  /// the file together; this meter is what makes that time visible.
  long long store_refresh_backoff_ms = 0;
};

/// Long-lived evaluator service: one warm ArchEvaluator (thread pool +
/// sharded EvalCache, preloaded from the persistent store) answering
/// structured cost queries. This is the ROADMAP's serve-style API: the
/// search library re-packaged as a query server whose marginal cost per
/// repeated query is a cache lookup.
///
/// Batching: handle_batch collapses all (arch, layer) mapping-search work
/// units across the batch — including the unique-layer expansion of
/// evaluate_network requests — into one deduplicated chain set on a
/// task graph (search::EvalPipeline), so concurrent searches interleave
/// at CMA-shard granularity, then assembles responses per request in
/// order. Because mapping search is deterministic per key, batched
/// responses are bit-identical to submitting the same requests one at a
/// time.
///
/// Store refresh: refresh() appends entries computed since the last mark
/// (ResultStore::append — cost proportional to new work, not store size),
/// then compares the file size against what this process last observed and
/// reloads when another process appended in between. Two services sharing
/// one store path converge on each other's results without either ever
/// rewriting the whole file.
///
/// Threading contract: handle/handle_batch/refresh are *not* reentrant —
/// drive the service from one front-end thread (concurrency lives inside
/// the batch fan-out). All responses are pure functions of (request,
/// options) except cache_stats/refresh, which report live counters.
class EvalService : public LineHandler {
 public:
  explicit EvalService(const ServeOptions& options);
  /// Final incremental flush (unless readonly / no store).
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Handles one parsed request; equivalent to a batch of one.
  Json handle(const Json& request);

  /// Handles a batch: dedup + fan-out, then per-request assembly in input
  /// order. Responses match one-at-a-time submission bit for bit.
  std::vector<Json> handle_batch(const std::vector<Json>& requests);

  /// Line front-ends: parse -> handle -> dump. A line that fails to parse
  /// yields a parse_error response in its slot; nothing throws.
  std::string handle_line(const std::string& line);
  std::vector<std::string> handle_lines(
      const std::vector<std::string>& lines) override;

  /// Incremental store refresh (no-op without a store): append-only flush
  /// of entries new since the last refresh, then reload-on-change for
  /// appends made by other processes. A store that was rejected as
  /// damaged (bad magic / version / corrupt) is *healed* instead: the
  /// next refresh rewrites it atomically from the full cache, restoring
  /// warm-start for future processes rather than appending to a dead
  /// file forever. Transient failures (kIoError — a full disk, an
  /// injected write fault) are retried in place with bounded exponential
  /// backoff (metered as store_refresh_retries) before the remaining
  /// entries are left for the next refresh. Returns the first non-kOk
  /// status of the last attempt (the service keeps running
  /// cold-for-the-miss either way).
  search::StoreStatus refresh() override;

  /// Adopts mapping-search results computed by a *peer* process (the
  /// pull half of fleet replication — see fleet::Replicator). Existing
  /// keys win, exactly like a store preload, and adopted entries count as
  /// store_entries_loaded, not as work this process performed. They enter
  /// the cache with fresh sequence numbers, so the next refresh() appends
  /// them to this process's own store: replication is durable, and a
  /// SIGKILLed worker restarts warm even before its first peer pull.
  /// Returns how many entries were actually new. Call from the serving
  /// thread only (same no-reentrancy contract as handle_batch).
  std::size_t adopt_entries(search::StoreEntries entries);

  /// Front-end notification hooks: requests rejected *before* evaluation
  /// (admission-queue shed, expired deadline, protocol-limit reject) never
  /// pass through handle_batch, but cache_stats must still report them.
  /// Thread-safe — the TCP front end sheds on its net thread while the
  /// eval thread serves.
  void note_shed() override { requests_shed_.fetch_add(1); }
  void note_timeout() override { requests_timed_out_.fetch_add(1); }
  void note_protocol_reject() override { protocol_rejects_.fetch_add(1); }
  long long requests_shed() const { return requests_shed_.load(); }
  long long requests_timed_out() const { return requests_timed_out_.load(); }
  long long protocol_rejects() const { return protocol_rejects_.load(); }

  const search::ArchEvaluator& evaluator() const { return evaluator_; }
  const ServiceStats& stats() const { return stats_; }
  const ServeOptions& options() const { return options_; }
  /// Resolved cost-kernel backend in use ("scalar", "avx2", ...).
  const char* cost_backend_name() const { return model_.backend_name(); }

 private:
  /// A request resolved to domain objects (or to an error), ready for the
  /// dedup/fan-out/assemble pipeline.
  struct Plan {
    Json id;
    std::string method;
    std::string error_code;  ///< nonempty => error response
    std::string error;
    arch::ArchConfig arch;
    nn::Workload layer;
    bool has_task = false;  ///< contributes (arch, layer) search tasks
    const nn::Network* network = nullptr;  ///< owned by network_memo_
    mapping::Mapping map;
  };

  Plan plan_request(const Json& request);
  Json finish(const Plan& plan);
  Json cache_stats_json() const;
  /// Memoized model-zoo lookup: a hot query loop must not rebuild ResNet50
  /// per request. Returned pointers stay valid for the service's lifetime
  /// (node-based map).
  const nn::Network* resolve_network(const std::string& name,
                                     std::string* err);
  static long long file_size(const std::string& path);

  ServeOptions options_;
  cost::CostModel model_;
  core::ThreadPool pool_;
  search::ArchEvaluator evaluator_;
  /// Cache-sequence mark of the last flush: snapshot_since(flush_mark_) is
  /// exactly the entries the store has not seen from us yet.
  std::uint64_t flush_mark_ = 0;
  /// Store file size after our last load/append; growth beyond what we
  /// wrote means another process appended -> reload.
  long long known_store_size_ = -1;
  /// Non-kOk while the store file is damaged (rejected at boot or on a
  /// reload): appending to it is pointless, so the next refresh heals by
  /// rewriting (or, readonly, keeps watching for another process's heal).
  search::StoreStatus rejected_status_ = search::StoreStatus::kOk;
  bool store_rejected() const {
    return rejected_status_ != search::StoreStatus::kOk;
  }
  search::StoreStatus heal_store();
  /// One append-then-reload refresh pass (refresh() adds the retry loop).
  search::StoreStatus refresh_once();
  std::unordered_map<std::string, nn::Network> network_memo_;
  /// Deterministic per-service stream for the jittered refresh backoff
  /// (seeded from the store path + mapping seed, so a fleet of workers
  /// sharing one store draws *different* jitter). Timing-only state:
  /// responses never depend on it.
  std::uint64_t backoff_jitter_state_ = 0;
  std::atomic<long long> requests_shed_{0};
  std::atomic<long long> requests_timed_out_{0};
  std::atomic<long long> protocol_rejects_{0};
  /// Serialized search_mapping result payloads by work-unit key. Results
  /// are deterministic and immutable per key (store reloads never change
  /// an answer), so the memo needs no invalidation; it turns a warm query
  /// into an envelope splice instead of a tree rebuild + re-serialization.
  /// Bounded: at kMaxPayloadMemoEntries it is flushed and rebuilt from
  /// the (re-serializable) cache on demand, so an adversarial stream of
  /// unique layer shapes costs recomputed text, not unbounded memory.
  /// Touched only from the serial assembly phase — no lock.
  static constexpr std::size_t kMaxPayloadMemoEntries = 1 << 17;
  std::unordered_map<std::uint64_t, std::string> payload_memo_;
  ServiceStats stats_;
};

}  // namespace naas::serve
