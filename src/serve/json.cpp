#include "serve/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace naas::serve {
namespace {

/// Parse depth cap: protocol objects nest 3-4 levels; 64 leaves headroom
/// while keeping a hostile deeply-nested line from exhausting the stack.
constexpr int kMaxDepth = 64;

const Json& null_sentinel() {
  static const Json v;
  return v;
}

const std::string& empty_string() {
  static const std::string s;
  return s;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0)
      return fail(std::string("invalid literal"));
    pos += len;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool hex4(unsigned& out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("unterminated escape");
      c = text[pos++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!hex4(code)) return false;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos + 2 <= text.size() && text[pos] == '\\' &&
                text[pos + 1] == 'u') {
              pos += 2;
              unsigned low = 0;
              if (!hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF)
                return fail("invalid low surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return fail("unpaired surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  std::size_t take_digits() {
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    return pos - start;
  }

  bool parse_number(Json& out) {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? —
    // leading zeros, bare '-', and dangling '.'/'e' are rejected even
    // though strtod would happily read them.
    const std::size_t start = pos;
    if (consume('-')) {}
    const std::size_t int_start = pos;
    const std::size_t int_digits = take_digits();
    if (int_digits == 0) return fail("invalid number");
    if (int_digits > 1 && text[int_start] == '0')
      return fail("invalid number (leading zero)");
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (take_digits() == 0) return fail("invalid number");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (take_digits() == 0) return fail("invalid number");
    }
    const std::string token = text.substr(start, pos - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        out = Json::integer(v);
        return true;
      }
      // Out of i64 range: fall through to double.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') return fail("invalid number");
    out = Json::number(v);
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null", 4)) return false;
      out = Json::null();
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return false;
      out = Json::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return false;
      out = Json::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Json elem;
        if (!parse_value(elem, depth + 1)) return false;
        out.push(std::move(elem));
        skip_ws();
        if (consume(']')) return true;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Json value;
        if (!parse_value(value, depth + 1)) return false;
        out.set(key, std::move(value));
        skip_ws();
        if (consume('}')) return true;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }
};

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest representation that round-trips the exact bit pattern —
  // deterministic text for deterministic values. 15 digits suffice for
  // values that are short decimals to begin with, 17 always round-trips;
  // probing just 15/16/17 keeps response serialization cheap (this runs
  // ~25 times per cost report).
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

Json Json::null() { return Json(); }

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.num_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::raw(std::string text) {
  Json j;
  j.type_ = Type::kRaw;
  j.str_ = std::move(text);
  return j;
}

bool Json::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double Json::as_double(double fallback) const {
  if (type_ == Type::kDouble) return num_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ == Type::kNull) return std::numeric_limits<double>::quiet_NaN();
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(num_);
  return fallback;
}

const std::string& Json::as_string() const {
  return type_ == Type::kString ? str_ : empty_string();
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return elems_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray || i >= elems_.size()) return null_sentinel();
  return elems_[i];
}

Json& Json::push(Json v) {
  elems_.push_back(std::move(v));
  return elems_.back();
}

const Json* Json::get(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::set(const std::string& key, Json v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      out += std::to_string(int_);
      return;
    case Type::kDouble:
      out += format_double(num_);
      return;
    case Type::kString:
      escape_to(str_, out);
      return;
    case Type::kRaw:
      out += str_;
      return;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (i) out.push_back(',');
        elems_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        escape_to(members_[i].first, out);
        out.push_back(':');
        members_[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out, 0)) {
    if (error) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing characters after value");
    if (error) *error = p.error;
    return Json();
  }
  if (error) error->clear();
  return out;
}

}  // namespace naas::serve
