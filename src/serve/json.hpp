#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace naas::serve {

/// Minimal JSON value for the line-oriented serving protocol. Self-contained
/// on purpose (the container bakes in no JSON library) and tuned for the
/// service's needs rather than generality:
///
///  - *Deterministic text.* Object keys keep insertion order and numbers
///    format as a pure function of their bit pattern (shortest string that
///    round-trips), so two responses built from identical values are
///    byte-identical — the property the cold-vs-warm CI diff rests on.
///  - *Never throws on input.* `parse` reports failures through an error
///    string; a malformed request line becomes a structured error response,
///    not a crash.
///  - *Small objects.* Member lookup is linear; protocol objects have a
///    handful of keys. Do not use this for large documents.
///
/// Non-finite doubles have no JSON spelling; they serialize as `null`
/// (relevant for +inf EDP of illegal mappings), and `as_double` on null
/// returns NaN so the round trip stays lossless in spirit.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject,
                    kRaw };

  Json() = default;  ///< null
  static Json null();
  static Json boolean(bool v);
  static Json number(double v);
  static Json integer(std::int64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();
  /// Pre-serialized JSON spliced into dump() verbatim — the service's
  /// response-payload memo hands back cached result text without
  /// rebuilding the tree. Never produced by parse(); the caller owns the
  /// validity of `text`.
  static Json raw(std::string text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors; wrong-type access returns the neutral value noted.
  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0) const;  ///< null => NaN
  std::int64_t as_int(std::int64_t fallback = 0) const;
  const std::string& as_string() const;  ///< "" when not a string

  /// Array access.
  std::size_t size() const;  ///< elements (array) or members (object)
  const Json& at(std::size_t i) const;  ///< null sentinel when out of range
  Json& push(Json v);  ///< appends (asserts array); returns the element

  /// Object access.
  const Json* get(const std::string& key) const;  ///< nullptr when absent
  Json& set(const std::string& key, Json v);  ///< insert or overwrite
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes on one line, no trailing newline. Deterministic.
  std::string dump() const;

  /// Parses `text` (one complete JSON value, optionally surrounded by
  /// whitespace). On failure returns null and sets `*error` to a
  /// position-annotated message; `*error` is cleared on success.
  static Json parse(const std::string& text, std::string* error);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0;
  std::string str_;
  std::vector<Json> elems_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Shortest decimal string that parses back to exactly `v` (bit pattern).
/// Non-finite values render as "null". Shared by Json::dump and any code
/// that wants deterministic numeric text.
std::string format_double(double v);

}  // namespace naas::serve
