#include "serve/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "core/log.hpp"

namespace naas::serve {
namespace {

bool all_whitespace(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

/// Best-effort id extraction for responses produced without evaluating the
/// request (shed, deadline-expired). A line that does not even parse still
/// gets the structured error, just with a null id.
Json extract_id(const std::string& line) {
  std::string error;
  const Json request = Json::parse(line, &error);
  if (!error.empty() || !request.is_object()) return Json::null();
  const Json* id = request.get("id");
  return id ? *id : Json::null();
}

}  // namespace

Server::Server(LineHandler& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() {
  // Normal shutdown happens inside run(); this path only covers a Server
  // that was started but whose run() never completed a drain.
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    eval_stop_ = true;
  }
  queue_cv_.notify_all();
  if (eval_thread_.joinable()) eval_thread_.join();
}

bool Server::start(std::string* err) {
  if (!listener_.listen(options_.host, options_.port, options_.backlog, err))
    return false;
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    if (err) *err = "pipe2 failed";
    listener_.close();
    return false;
  }
  wake_read_ = net::Fd(pipe_fds[0]);
  wake_write_ = net::Fd(pipe_fds[1]);
  eval_thread_ = std::thread([this] { eval_loop(); });
  started_ = true;
  if (err) err->clear();
  return true;
}

void Server::request_stop() {
  // Async-signal-safe: one atomic store and one write(2).
  stop_requested_.store(true, std::memory_order_relaxed);
  if (wake_write_.valid()) {
    const char b = 's';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &b, 1);
  }
}

void Server::wake_net_thread() {
  if (wake_write_.valid()) {
    const char b = 'c';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &b, 1);
  }
}

// --------------------------------------------------------------- eval side

void Server::eval_loop() {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      queue_cv_.wait(lk, [this] { return eval_stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // eval_stop_ with a drained queue
      const std::size_t take =
          std::min(queue_.size(), std::max<std::size_t>(
                                      1, options_.max_batch_requests));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      eval_busy_ = true;
    }
    dispatch_batch(std::move(batch));
    {
      std::lock_guard<std::mutex> lk(queue_mutex_);
      eval_busy_ = false;
    }
    wake_net_thread();
  }
}

void Server::dispatch_batch(std::vector<PendingRequest> batch) {
  const Clock::time_point now = Clock::now();
  std::vector<Completion> done;
  done.reserve(batch.size());

  // Deadline pass: a request whose deadline expired while it waited is
  // answered without being evaluated — under overload that converts queue
  // time the client already gave up on into shed work instead of letting
  // it displace still-useful requests.
  std::vector<std::string> lines;
  std::vector<std::size_t> slots;  // index into `batch` per line
  for (std::size_t i = 0; i < batch.size(); ++i) {
    long long deadline_ms = options_.default_deadline_ms;
    bool has_deadline = deadline_ms > 0;
    // Quick reject before paying a parse: the field name must at least
    // appear in the bytes.
    if (batch[i].line.find("\"deadline_ms\"") != std::string::npos) {
      std::string error;
      const Json request = Json::parse(batch[i].line, &error);
      if (error.empty() && request.is_object()) {
        if (const Json* d = request.get("deadline_ms"); d && d->is_number()) {
          deadline_ms = d->as_int();
          has_deadline = deadline_ms >= 0;
        }
      }
    }
    if (has_deadline &&
        now - batch[i].arrival > std::chrono::milliseconds(deadline_ms)) {
      ++stats_.requests_timed_out;
      service_.note_timeout();
      done.push_back({batch[i].conn_id, batch[i].slot,
                      error_response(extract_id(batch[i].line),
                                     kErrDeadlineExceeded,
                                     "deadline of " +
                                         std::to_string(deadline_ms) +
                                         " ms expired before evaluation")
                          .dump()});
      continue;
    }
    lines.push_back(batch[i].line);
    slots.push_back(i);
  }

  if (!lines.empty()) {
    // The stdin driver's exact code path — what makes socket responses
    // byte-identical to stdin mode.
    std::vector<std::string> responses = service_.handle_lines(lines);
    for (std::size_t k = 0; k < responses.size(); ++k) {
      const PendingRequest& req = batch[slots[k]];
      done.push_back({req.conn_id, req.slot, std::move(responses[k])});
    }
  }

  {
    std::lock_guard<std::mutex> lk(completion_mutex_);
    for (Completion& c : done) completions_.push_back(std::move(c));
  }

  ++stats_.batches_dispatched;
  if (options_.refresh_every_batches > 0 &&
      stats_.batches_dispatched % options_.refresh_every_batches == 0)
    service_.refresh();
}

// ---------------------------------------------------------------- net side

void Server::handle_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    const net::IoResult r = net::read_some(conn.fd.get(), buf, sizeof(buf));
    if (r.status == net::IoStatus::kOk) {
      conn.inbuf.append(buf, r.bytes);
      conn.last_activity = Clock::now();
    } else if (r.status == net::IoStatus::kWouldBlock) {
      break;
    } else if (r.status == net::IoStatus::kEof) {
      conn.read_closed = true;
      break;
    } else {
      ++stats_.connections_reset;
      close_conn(conn.id);
      return;
    }
  }
  extract_lines(conn);
}

void Server::extract_lines(Conn& conn) {
  std::size_t nl;
  while ((nl = conn.inbuf.find('\n')) != std::string::npos) {
    std::string line = conn.inbuf.substr(0, nl);
    conn.inbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (all_whitespace(line)) continue;  // batch separators mean nothing here
    ++stats_.lines_received;
    if (line.size() > options_.max_line_bytes) {
      // Framing survived (we saw the newline): reject the line, keep the
      // connection.
      ++stats_.protocol_rejects;
      service_.note_protocol_reject();
      conn.ready[conn.next_slot++] =
          line_too_long_response(options_.max_line_bytes).dump();
      continue;
    }
    admit_line(conn, std::move(line));
  }
  if (conn.inbuf.size() > options_.max_line_bytes) {
    // An unframed over-cap line: answering and resynchronizing is
    // impossible without unbounded buffering, so reject and close once
    // pending responses have flushed.
    ++stats_.protocol_rejects;
    service_.note_protocol_reject();
    conn.ready[conn.next_slot++] =
        line_too_long_response(options_.max_line_bytes).dump();
    conn.inbuf.clear();
    conn.read_closed = true;
    conn.close_after_flush = true;
  }
}

void Server::admit_line(Conn& conn, std::string line) {
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (queue_.size() < options_.max_queue_requests) {
      queue_.push_back(
          {conn.id, conn.next_slot, std::move(line), Clock::now()});
      admitted = true;
    }
  }
  if (admitted) {
    ++stats_.requests_admitted;
    ++conn.outstanding;
    ++conn.next_slot;
    queue_cv_.notify_one();
    return;
  }
  // Shed at admission: the structured `overloaded` error is the whole
  // point of the bounded queue — clients get a retryable signal in
  // bounded time and the evaluation pool never sees the overflow.
  ++stats_.requests_shed;
  service_.note_shed();
  conn.ready[conn.next_slot++] =
      error_response(extract_id(line), kErrOverloaded,
                     "admission queue full (" +
                         std::to_string(options_.max_queue_requests) +
                         " requests); retry later")
          .dump();
}

void Server::route_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lk(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    const auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died while evaluating
    it->second.ready[c.slot] = std::move(c.response);
    if (it->second.outstanding > 0) --it->second.outstanding;
  }
}

void Server::flush_ready(Conn& conn) {
  // Responses leave in slot order, so pipelined clients see request order
  // even when an instant error response overtook an evaluated request.
  for (auto it = conn.ready.find(conn.flushed); it != conn.ready.end();
       it = conn.ready.find(conn.flushed)) {
    conn.outbuf += it->second;
    conn.outbuf += '\n';
    conn.ready.erase(it);
    ++conn.flushed;
  }
}

bool Server::write_outbuf(Conn& conn) {
  while (!conn.outbuf.empty()) {
    const net::IoResult r =
        net::write_some(conn.fd.get(), conn.outbuf.data(), conn.outbuf.size());
    if (r.status == net::IoStatus::kOk) {
      conn.outbuf.erase(0, r.bytes);
      conn.last_activity = Clock::now();
    } else if (r.status == net::IoStatus::kWouldBlock) {
      return true;
    } else {
      ++stats_.connections_reset;
      close_conn(conn.id);
      return false;
    }
  }
  return true;
}

void Server::close_conn(std::uint64_t id) {
  dead_conns_.push_back(id);
}

bool Server::drain_complete() {
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (!queue_.empty() || eval_busy_) return false;
  }
  {
    std::lock_guard<std::mutex> lk(completion_mutex_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_)
    if (conn.outstanding > 0 || !conn.ready.empty() || !conn.outbuf.empty())
      return false;
  return true;
}

void Server::run() {
  if (!started_) return;
  Clock::time_point drain_deadline{};

  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      listener_.close();  // stop accepting; in-flight work continues
      drain_deadline = Clock::now() + std::chrono::milliseconds(
                                          options_.drain_flush_timeout_ms);
    }

    if (draining_ && drain_complete()) break;
    if (draining_ && Clock::now() > drain_deadline) {
      core::log_warn("serve: drain flush timeout; closing " +
                     std::to_string(conns_.size()) + " connection(s)");
      break;
    }

    poller_.clear();
    poller_.add(wake_read_.get(), true, false);
    if (listener_.listening() &&
        conns_.size() < static_cast<std::size_t>(options_.max_connections))
      poller_.add(listener_.fd(), true, false);
    for (const auto& [id, conn] : conns_) {
      const bool want_read =
          !draining_ && !conn.read_closed &&
          conn.outbuf.size() < options_.max_output_buffer_bytes;
      const bool want_write = !conn.outbuf.empty();
      if (want_read || want_write)
        poller_.add(conn.fd.get(), want_read, want_write);
    }

    const int timeout_ms =
        draining_ ? 20 : (options_.idle_timeout_ms > 0 ? 100 : 1000);
    poller_.wait(timeout_ms);

    // Drain wake-pipe bytes (level-triggered poll would spin otherwise).
    if (poller_.readable(wake_read_.get())) {
      char buf[64];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }

    // Accept.
    if (listener_.listening() && poller_.readable(listener_.fd())) {
      for (;;) {
        net::Fd fd = listener_.accept_one();
        if (!fd) break;
        if (conns_.size() >=
            static_cast<std::size_t>(options_.max_connections)) {
          ++stats_.connections_rejected;
          continue;  // Fd closes on scope exit: connection-level shedding
        }
        ++stats_.connections_accepted;
        Conn conn;
        conn.id = next_conn_id_++;
        conn.fd = std::move(fd);
        conn.last_activity = Clock::now();
        conns_.emplace(conn.id, std::move(conn));
      }
    }

    // Read + frame + admit.
    for (auto& [id, conn] : conns_)
      if (!conn.read_closed && poller_.readable(conn.fd.get()))
        handle_readable(conn);

    // Collect evaluated responses, then write everything writable.
    route_completions();
    for (auto& [id, conn] : conns_) {
      flush_ready(conn);
      if (!conn.outbuf.empty() &&
          (poller_.writable(conn.fd.get()) || draining_))
        if (!write_outbuf(conn)) continue;
      const bool finished = conn.outbuf.empty() && conn.ready.empty() &&
                            conn.outstanding == 0;
      if (finished && (conn.close_after_flush || conn.read_closed))
        close_conn(id);
      else if (finished && options_.idle_timeout_ms > 0 &&
               Clock::now() - conn.last_activity >
                   std::chrono::milliseconds(options_.idle_timeout_ms)) {
        ++stats_.connections_reaped;
        close_conn(id);
      }
    }

    for (const std::uint64_t id : dead_conns_) conns_.erase(id);
    dead_conns_.clear();
  }

  // Shut the eval thread down (the queue is empty or the drain timed out),
  // then final-flush the store: the contract a SIGTERM'd server keeps.
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    eval_stop_ = true;
  }
  queue_cv_.notify_all();
  if (eval_thread_.joinable()) eval_thread_.join();
  conns_.clear();
  service_.refresh();
}

}  // namespace naas::serve
