#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.hpp"
#include "net/socket.hpp"
#include "serve/line_handler.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace naas::serve {

/// Configuration of the TCP front end. Every bound is defensive: the
/// server must stay correct (and the store uncorrupted) when clients are
/// slow, rude, malformed, or simply too many.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; Server::port() reports the real one
  int backlog = 64;
  int max_connections = 256;
  /// Protocol limits (see serve/protocol.hpp). A complete line over the
  /// cap gets a bad_request and the connection lives on; an *unframed*
  /// over-cap line (no newline in sight) gets a bad_request and a close,
  /// because the only alternative is buffering attacker-controlled bytes
  /// without bound.
  std::size_t max_line_bytes = kDefaultMaxLineBytes;
  std::size_t max_batch_requests = kDefaultMaxBatchRequests;
  /// Admission-queue bound: requests beyond it are shed immediately with a
  /// structured `overloaded` error instead of stalling the evaluation
  /// pool or growing the heap. 0 sheds everything (useful in tests).
  std::size_t max_queue_requests = 4096;
  /// Slow-client write backpressure: while a connection's output buffer
  /// is over this bound the server stops *reading* from it, so a client
  /// that never drains responses throttles itself, not the server.
  std::size_t max_output_buffer_bytes = 4u << 20;
  /// Default per-request deadline (0 = none). A request may override it
  /// with a "deadline_ms" field; one whose deadline has already expired
  /// when its batch is assembled is answered `deadline_exceeded` and never
  /// evaluated ("deadline_ms": 0 therefore expires immediately).
  long long default_deadline_ms = 0;
  /// Reap connections with no traffic and no pending work for this long
  /// (0 = never).
  long long idle_timeout_ms = 0;
  /// Store refresh cadence in dispatched batches (0 = only at drain).
  long long refresh_every_batches = 1;
  /// On drain, wait at most this long for remaining responses to flush to
  /// slow clients before force-closing them.
  long long drain_flush_timeout_ms = 5000;
};

/// Transport-level counters (the service's own meters live in
/// EvalService/cache_stats). Single-writer per field; read after run()
/// returns.
struct ServerStats {
  long long connections_accepted = 0;
  long long connections_rejected = 0;  ///< over max_connections
  long long connections_reset = 0;     ///< read/write error (e.g. RST)
  long long connections_reaped = 0;    ///< idle timeout
  long long lines_received = 0;
  long long requests_admitted = 0;
  long long requests_shed = 0;         ///< overloaded
  long long requests_timed_out = 0;    ///< deadline_exceeded
  long long protocol_rejects = 0;      ///< line/batch-limit bad_requests
  long long batches_dispatched = 0;
};

/// Multi-client TCP front end over the transport-agnostic line-JSON
/// protocol. Serves any LineHandler: a warm EvalService directly, or a
/// fleet::Router that shards lines across N remote workers — the transport
/// neither knows nor cares which.
///
/// Architecture: two threads. The *net thread* (the caller of run()) owns
/// every socket — a poll(2) readiness loop accepts, reads, frames lines,
/// enforces the protocol limits, admits requests to a bounded queue, and
/// writes buffered responses. The *eval thread* drains that queue in
/// batches through EvalService::handle_lines — which is exactly the stdin
/// driver's code path, so responses are byte-identical to stdin mode —
/// and hands completed responses back through a completion queue plus a
/// wake pipe. EvalService's no-reentrancy contract holds because only the
/// eval thread ever touches it while the server runs.
///
/// Request pipelining: clients may send any number of requests without
/// waiting; per-connection responses always come back in request order
/// (a per-connection reorder buffer holds, e.g., an instant `overloaded`
/// error until the slower evaluated requests before it have answered).
///
/// Graceful drain: request_stop() is async-signal-safe (atomic flag + a
/// write to the wake pipe). The loop then stops accepting and reading,
/// finishes every admitted request, flushes responses (bounded by
/// drain_flush_timeout_ms), performs a final store refresh, and run()
/// returns — the SIGTERM story "finish what you took, persist, exit 0".
class Server {
 public:
  Server(LineHandler& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the eval thread. False + `*err` on
  /// failure (nothing runs; run() would return immediately).
  bool start(std::string* err);

  /// Bound port (after start()).
  int port() const { return listener_.port(); }

  /// Event loop; returns after a drain completes. Call from one thread.
  void run();

  /// Initiates drain. Safe from signal handlers and other threads.
  void request_stop();

  /// Transport counters; stable once run() has returned.
  const ServerStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingRequest {
    std::uint64_t conn_id = 0;
    std::uint64_t slot = 0;
    std::string line;
    Clock::time_point arrival;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t slot = 0;
    std::string response;
  };
  struct Conn {
    net::Fd fd;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    std::uint64_t next_slot = 0;   ///< slots assigned to received lines
    std::uint64_t flushed = 0;     ///< next slot to append to outbuf
    /// Out-of-order completed responses awaiting their turn.
    std::map<std::uint64_t, std::string> ready;
    /// Requests admitted to the queue whose completion has not arrived.
    std::size_t outstanding = 0;
    bool read_closed = false;       ///< EOF seen or framing abandoned
    bool close_after_flush = false;
    Clock::time_point last_activity;
  };

  void eval_loop();
  void dispatch_batch(std::vector<PendingRequest> batch);
  void handle_readable(Conn& conn);
  void extract_lines(Conn& conn);
  void admit_line(Conn& conn, std::string line);
  void route_completions();
  void flush_ready(Conn& conn);
  bool write_outbuf(Conn& conn);  ///< false => connection died
  void close_conn(std::uint64_t id);
  void wake_net_thread();
  bool drain_complete();

  LineHandler& service_;
  ServerOptions options_;
  ServerStats stats_;

  net::TcpListener listener_;
  net::Fd wake_read_, wake_write_;
  net::Poller poller_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::vector<std::uint64_t> dead_conns_;  ///< deferred erase within a pass
  std::uint64_t next_conn_id_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool eval_busy_ = false;
  bool eval_stop_ = false;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  std::thread eval_thread_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  bool started_ = false;
};

}  // namespace naas::serve
