#pragma once

#include <string>
#include <vector>

namespace naas::search {
enum class StoreStatus;
}

namespace naas::serve {

/// The transport-facing contract of anything that can answer the line-JSON
/// protocol: the warm evaluator itself (EvalService) and the fleet router
/// (fleet::Router), which shards lines across N remote EvalServices. The
/// TCP front end (serve::Server) and the stdin driver are written against
/// this interface, so every transport works unchanged in front of either —
/// and the byte-identity contract ("a response depends only on the request
/// and the evaluation options, never on which process computed it") is what
/// makes the two implementations interchangeable.
class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Answers one response line per request line, in request order. Must
  /// not throw; malformed input becomes a structured error response.
  /// Driven from one front-end thread at a time (not reentrant).
  virtual std::vector<std::string> handle_lines(
      const std::vector<std::string>& lines) = 0;

  /// Periodic persistence hook (store flush / replication pull). Handlers
  /// with nothing to persist return StoreStatus::kOk.
  virtual search::StoreStatus refresh() = 0;

  /// Front-end notification hooks for requests rejected before they ever
  /// reach handle_lines (admission shed, expired deadline, protocol-limit
  /// reject). Must be thread-safe: the TCP net thread calls them while the
  /// eval thread serves.
  virtual void note_shed() = 0;
  virtual void note_timeout() = 0;
  virtual void note_protocol_reject() = 0;
};

}  // namespace naas::serve
