#include "serve/protocol.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "arch/presets.hpp"
#include "nn/model_zoo.hpp"

namespace naas::serve {
namespace {

/// Reads an integral field. Absent => `fallback`; present but outside
/// [min_value, max_value] (or not an integer) => false with a message
/// naming the field. The default upper bound matches the int-typed
/// destination fields so untrusted requests cannot wrap on narrowing;
/// byte-sized fields pass a wider explicit bound.
bool int_field(const Json& j, const char* key, long long fallback,
               long long* out, std::string* err, long long min_value = 1,
               long long max_value = std::numeric_limits<int>::max()) {
  const Json* v = j.get(key);
  if (!v) {
    *out = fallback;
    return true;
  }
  if (!v->is_int() || v->as_int() < min_value || v->as_int() > max_value) {
    *err = std::string("field '") + key + "' must be an integer in [" +
           std::to_string(min_value) + ", " + std::to_string(max_value) +
           "]";
    return false;
  }
  *out = v->as_int();
  return true;
}

/// On-chip buffer sizes are long long bytes; cap at 1 TiB — far beyond
/// any plausible accelerator, far below overflow territory.
constexpr long long kMaxBufferBytes = 1LL << 40;

bool order_from_json(const Json& j, const char* what,
                     mapping::LoopOrder* out, std::string* err) {
  if (!j.is_array() || j.size() != static_cast<std::size_t>(nn::kNumDims)) {
    *err = std::string(what) + " must be an array of " +
           std::to_string(nn::kNumDims) + " dimension names";
    return false;
  }
  for (int i = 0; i < nn::kNumDims; ++i) {
    if (!dim_from_json_name(j.at(static_cast<std::size_t>(i)).as_string(),
                            &(*out)[static_cast<std::size_t>(i)])) {
      *err = std::string(what) + "[" + std::to_string(i) +
             "] is not a dimension name";
      return false;
    }
  }
  if (!mapping::is_valid_order(*out)) {
    *err = std::string(what) + " must be a permutation of all 7 dimensions";
    return false;
  }
  return true;
}

Json order_to_json(const mapping::LoopOrder& order) {
  Json arr = Json::array();
  for (const nn::Dim d : order) arr.push(Json::string(dim_json_name(d)));
  return arr;
}

bool tiles_from_json(const Json& j, const char* what,
                     mapping::TileSizes* out, std::string* err) {
  if (!j.is_array() || j.size() != static_cast<std::size_t>(nn::kNumDims)) {
    *err = std::string(what) + " must be an array of " +
           std::to_string(nn::kNumDims) + " tile sizes (N,K,C,Y',X',R,S)";
    return false;
  }
  for (int i = 0; i < nn::kNumDims; ++i) {
    const Json& t = j.at(static_cast<std::size_t>(i));
    if (!t.is_int() || t.as_int() < 1 ||
        t.as_int() > std::numeric_limits<int>::max()) {
      *err = std::string(what) + "[" + std::to_string(i) +
             "] must be a positive 32-bit integer";
      return false;
    }
    (*out)[static_cast<std::size_t>(i)] = static_cast<int>(t.as_int());
  }
  return true;
}

Json tiles_to_json(const mapping::TileSizes& tiles) {
  Json arr = Json::array();
  for (const int t : tiles) arr.push(Json::integer(t));
  return arr;
}

bool level_from_json(const Json& j, const char* what,
                     mapping::LevelMapping* out, std::string* err) {
  if (!j.is_object()) {
    *err = std::string(what) + " must be an object with 'order' and 'tile'";
    return false;
  }
  const Json* order = j.get("order");
  const Json* tile = j.get("tile");
  if (!order || !tile) {
    *err = std::string(what) + " requires 'order' and 'tile'";
    return false;
  }
  return order_from_json(*order, what, &out->order, err) &&
         tiles_from_json(*tile, what, &out->tile, err);
}

Json level_to_json(const mapping::LevelMapping& level) {
  Json obj = Json::object();
  obj.set("order", order_to_json(level.order));
  obj.set("tile", tiles_to_json(level.tile));
  return obj;
}

}  // namespace

const char* dim_json_name(nn::Dim d) { return nn::dim_name(d); }

bool dim_from_json_name(const std::string& name, nn::Dim* out) {
  for (const nn::Dim d : nn::all_dims()) {
    if (name == nn::dim_name(d)) {
      *out = d;
      return true;
    }
  }
  // ASCII-friendly aliases for the primed spatial dims.
  if (name == "Yp") { *out = nn::Dim::kYp; return true; }
  if (name == "Xp") { *out = nn::Dim::kXp; return true; }
  return false;
}

Json arch_to_json(const arch::ArchConfig& cfg) {
  Json obj = Json::object();
  obj.set("name", Json::string(cfg.name));
  Json dims = Json::array();
  Json pdims = Json::array();
  for (int axis = 0; axis < cfg.num_array_dims; ++axis) {
    dims.push(Json::integer(cfg.array_dims[static_cast<std::size_t>(axis)]));
    pdims.push(Json::string(
        dim_json_name(cfg.parallel_dims[static_cast<std::size_t>(axis)])));
  }
  obj.set("array_dims", std::move(dims));
  obj.set("parallel_dims", std::move(pdims));
  obj.set("l1_bytes", Json::integer(cfg.l1_bytes));
  obj.set("l2_bytes", Json::integer(cfg.l2_bytes));
  obj.set("noc_bandwidth", Json::integer(cfg.noc_bandwidth));
  obj.set("dram_bandwidth", Json::integer(cfg.dram_bandwidth));
  return obj;
}

bool arch_from_json(const Json& j, arch::ArchConfig* out, std::string* err) {
  if (!j.is_object()) {
    *err = "arch must be an object";
    return false;
  }
  if (const Json* preset = j.get("preset")) {
    const std::string& name = preset->as_string();
    if (name == "edgetpu") *out = arch::edge_tpu_arch();
    else if (name == "nvdla1024") *out = arch::nvdla_1024_arch();
    else if (name == "nvdla256") *out = arch::nvdla_256_arch();
    else if (name == "eyeriss") *out = arch::eyeriss_arch();
    else if (name == "shidiannao") *out = arch::shidiannao_arch();
    else {
      *err = "unknown arch preset '" + name + "'";
      return false;
    }
    return true;
  }

  arch::ArchConfig cfg;
  if (const Json* name = j.get("name")) cfg.name = name->as_string();
  const Json* dims = j.get("array_dims");
  const Json* pdims = j.get("parallel_dims");
  if (!dims || !pdims) {
    *err = "arch requires 'preset' or 'array_dims' + 'parallel_dims'";
    return false;
  }
  if (!dims->is_array() || dims->size() < 1 ||
      dims->size() > static_cast<std::size_t>(arch::kMaxArrayDims) ||
      pdims->size() != dims->size()) {
    *err = "array_dims/parallel_dims must be matching arrays of 1..3 axes";
    return false;
  }
  cfg.num_array_dims = static_cast<int>(dims->size());
  cfg.array_dims = {1, 1, 1};
  for (std::size_t axis = 0; axis < dims->size(); ++axis) {
    const Json& d = dims->at(axis);
    // 2^20 PEs per axis is far past any envelope and guards the
    // num_pes() product from overflow.
    if (!d.is_int() || d.as_int() < 1 || d.as_int() > (1 << 20)) {
      *err = "array_dims entries must be integers in [1, 2^20]";
      return false;
    }
    cfg.array_dims[axis] = static_cast<int>(d.as_int());
    if (!dim_from_json_name(pdims->at(axis).as_string(),
                            &cfg.parallel_dims[axis])) {
      *err = "parallel_dims entries must be dimension names (N,K,C,Y',X',R,S)";
      return false;
    }
  }
  long long v = 0;
  if (!int_field(j, "l1_bytes", cfg.l1_bytes, &v, err, 1, kMaxBufferBytes))
    return false;
  cfg.l1_bytes = v;
  if (!int_field(j, "l2_bytes", cfg.l2_bytes, &v, err, 1, kMaxBufferBytes))
    return false;
  cfg.l2_bytes = v;
  if (!int_field(j, "noc_bandwidth", cfg.noc_bandwidth, &v, err)) return false;
  cfg.noc_bandwidth = static_cast<int>(v);
  if (!int_field(j, "dram_bandwidth", cfg.dram_bandwidth, &v, err))
    return false;
  cfg.dram_bandwidth = static_cast<int>(v);
  if (!cfg.valid()) {
    *err = "arch config is structurally invalid (duplicate parallel dims, "
           "non-positive sizes, ...)";
    return false;
  }
  *out = std::move(cfg);
  return true;
}

Json layer_to_json(const nn::Workload& layer) {
  Json obj = Json::object();
  obj.set("name", Json::string(layer.name));
  obj.set("kind", Json::string(nn::layer_kind_name(layer.kind)));
  obj.set("batch", Json::integer(layer.batch));
  obj.set("out_channels", Json::integer(layer.out_channels));
  obj.set("in_channels", Json::integer(layer.in_channels));
  obj.set("out_h", Json::integer(layer.out_h));
  obj.set("out_w", Json::integer(layer.out_w));
  obj.set("kernel_h", Json::integer(layer.kernel_h));
  obj.set("kernel_w", Json::integer(layer.kernel_w));
  obj.set("stride", Json::integer(layer.stride));
  return obj;
}

bool layer_from_json(const Json& j, nn::Workload* out, std::string* err) {
  // Non-memoizing fallback: build the network, keep the one layer.
  nn::Network scratch;
  const NetworkResolver resolver =
      [&scratch](const std::string& name,
                 std::string* resolve_err) -> const nn::Network* {
    try {
      scratch = nn::make_network(name);
    } catch (const std::invalid_argument& e) {
      *resolve_err = e.what();
      return nullptr;
    }
    return &scratch;
  };
  return layer_from_json(j, out, err, resolver);
}

bool layer_from_json(const Json& j, nn::Workload* out, std::string* err,
                     const NetworkResolver& resolver) {
  if (!j.is_object()) {
    *err = "layer must be an object";
    return false;
  }
  if (const Json* net_name = j.get("network")) {
    const Json* index = j.get("index");
    if (!index || !index->is_int()) {
      *err = "layer by network requires an integer 'index'";
      return false;
    }
    const nn::Network* net = resolver(net_name->as_string(), err);
    if (!net) return false;
    const std::int64_t i = index->as_int();
    if (i < 0 || i >= net->num_layers()) {
      *err = "layer index out of range (0.." +
             std::to_string(net->num_layers() - 1) + " for " +
             net_name->as_string() + ")";
      return false;
    }
    *out = net->layers()[static_cast<std::size_t>(i)];
    return true;
  }

  nn::Workload layer;
  if (const Json* name = j.get("name")) layer.name = name->as_string();
  if (const Json* kind = j.get("kind")) {
    const std::string& k = kind->as_string();
    if (k == "conv") layer.kind = nn::LayerKind::kConv;
    else if (k == "dwconv") layer.kind = nn::LayerKind::kDepthwiseConv;
    else if (k == "fc") layer.kind = nn::LayerKind::kFullyConnected;
    else if (k == "matmul") layer.kind = nn::LayerKind::kMatmul;
    else if (k == "attention") layer.kind = nn::LayerKind::kAttention;
    else {
      *err = "unknown layer kind '" + k +
             "' (supported kinds: conv, dwconv, fc, matmul, attention)";
      return false;
    }
  }
  long long v = 0;
  if (!int_field(j, "batch", layer.batch, &v, err)) return false;
  layer.batch = static_cast<int>(v);
  if (!int_field(j, "out_channels", layer.out_channels, &v, err)) return false;
  layer.out_channels = static_cast<int>(v);
  if (!int_field(j, "in_channels", layer.in_channels, &v, err)) return false;
  layer.in_channels = static_cast<int>(v);
  if (!int_field(j, "out_h", layer.out_h, &v, err)) return false;
  layer.out_h = static_cast<int>(v);
  if (!int_field(j, "out_w", layer.out_w, &v, err)) return false;
  layer.out_w = static_cast<int>(v);
  if (!int_field(j, "kernel_h", layer.kernel_h, &v, err)) return false;
  layer.kernel_h = static_cast<int>(v);
  if (!int_field(j, "kernel_w", layer.kernel_w, &v, err)) return false;
  layer.kernel_w = static_cast<int>(v);
  if (!int_field(j, "stride", layer.stride, &v, err)) return false;
  layer.stride = static_cast<int>(v);
  if (layer.kind == nn::LayerKind::kMatmul ||
      layer.kind == nn::LayerKind::kAttention) {
    // GEMM kinds pin the conv-only dims so every conv formula degenerates
    // exactly; reject shapes that would silently mean something else.
    if (layer.out_w != 1 || layer.kernel_h != 1 || layer.kernel_w != 1 ||
        layer.stride != 1) {
      *err = std::string(nn::layer_kind_name(layer.kind)) +
             " layers require out_w/kernel_h/kernel_w/stride == 1 "
             "(GEMM dims: out_h=rows, in_channels=reduction, "
             "out_channels=output features)";
      return false;
    }
  }
  *out = std::move(layer);
  return true;
}

Json mapping_to_json(const mapping::Mapping& m) {
  Json obj = Json::object();
  obj.set("dram", level_to_json(m.dram));
  obj.set("pe", level_to_json(m.pe));
  obj.set("pe_order", order_to_json(m.pe_order));
  return obj;
}

bool mapping_from_json(const Json& j, mapping::Mapping* out,
                       std::string* err) {
  if (!j.is_object()) {
    *err = "mapping must be an object";
    return false;
  }
  const Json* dram = j.get("dram");
  const Json* pe = j.get("pe");
  const Json* pe_order = j.get("pe_order");
  if (!dram || !pe || !pe_order) {
    *err = "mapping requires 'dram', 'pe', and 'pe_order'";
    return false;
  }
  mapping::Mapping m;
  if (!level_from_json(*dram, "mapping.dram", &m.dram, err)) return false;
  if (!level_from_json(*pe, "mapping.pe", &m.pe, err)) return false;
  if (!order_from_json(*pe_order, "mapping.pe_order", &m.pe_order, err))
    return false;
  *out = std::move(m);
  return true;
}

Json report_to_json(const cost::CostReport& report) {
  Json obj = Json::object();
  obj.set("legal", Json::boolean(report.legal));
  if (!report.legal)
    obj.set("illegal_reason", Json::string(report.illegal_reason));
  obj.set("macs", Json::number(report.macs));
  obj.set("compute_cycles", Json::number(report.compute_cycles));
  obj.set("noc_cycles", Json::number(report.noc_cycles));
  obj.set("dram_cycles", Json::number(report.dram_cycles));
  obj.set("latency_cycles", Json::number(report.latency_cycles));
  Json energy = Json::object();
  energy.set("mac_pj", Json::number(report.energy.mac_pj));
  energy.set("l1_pj", Json::number(report.energy.l1_pj));
  energy.set("l2_pj", Json::number(report.energy.l2_pj));
  energy.set("noc_pj", Json::number(report.energy.noc_pj));
  energy.set("dram_pj", Json::number(report.energy.dram_pj));
  obj.set("energy", std::move(energy));
  obj.set("energy_nj", Json::number(report.energy_nj));
  obj.set("edp", Json::number(report.edp));
  obj.set("pe_utilization", Json::number(report.pe_utilization));
  obj.set("dram_bytes", Json::number(report.dram_bytes));
  obj.set("l2_read_bytes", Json::number(report.l2_read_bytes));
  obj.set("l2_write_bytes", Json::number(report.l2_write_bytes));
  obj.set("l1_access_bytes", Json::number(report.l1_access_bytes));
  obj.set("noc_delivery_bytes", Json::number(report.noc_delivery_bytes));
  obj.set("reduction_hop_bytes", Json::number(report.reduction_hop_bytes));
  return obj;
}

Json network_cost_to_json(const cost::NetworkCost& cost) {
  Json obj = Json::object();
  obj.set("network", Json::string(cost.network_name));
  obj.set("arch", Json::string(cost.arch_name));
  obj.set("legal", Json::boolean(cost.legal));
  obj.set("latency_cycles", Json::number(cost.latency_cycles));
  obj.set("energy_nj", Json::number(cost.energy_nj));
  obj.set("edp", Json::number(cost.edp));
  Json layers = Json::array();
  for (const cost::LayerCost& lc : cost.per_layer) {
    Json row = Json::object();
    row.set("name", Json::string(lc.layer.name));
    row.set("count", Json::integer(lc.count));
    row.set("legal", Json::boolean(lc.report.legal));
    row.set("latency_cycles", Json::number(lc.report.latency_cycles));
    row.set("energy_nj", Json::number(lc.report.energy_nj));
    row.set("edp", Json::number(lc.report.edp));
    layers.push(std::move(row));
  }
  obj.set("layers", std::move(layers));
  return obj;
}

Json mapping_search_result_to_json(const search::MappingSearchResult& r) {
  Json obj = Json::object();
  obj.set("mapping", mapping_to_json(r.best));
  obj.set("report", report_to_json(r.report));
  obj.set("best_edp", Json::number(r.best_edp));
  obj.set("evaluations", Json::integer(r.evaluations));
  return obj;
}

Json ok_response(const Json& id, Json result) {
  Json obj = Json::object();
  obj.set("id", id);
  obj.set("ok", Json::boolean(true));
  obj.set("result", std::move(result));
  return obj;
}

Json error_response(const Json& id, const std::string& code,
                    const std::string& message) {
  Json obj = Json::object();
  obj.set("id", id);
  obj.set("ok", Json::boolean(false));
  Json err = Json::object();
  err.set("code", Json::string(code));
  err.set("message", Json::string(message));
  obj.set("error", std::move(err));
  return obj;
}

Json line_too_long_response(std::size_t max_line_bytes) {
  return error_response(Json::null(), kErrBadRequest,
                        "request line exceeds " +
                            std::to_string(max_line_bytes) + " bytes");
}

Json batch_too_large_response(const Json& id, std::size_t max_batch) {
  return error_response(id, kErrBadRequest,
                        "batch exceeds " + std::to_string(max_batch) +
                            " requests");
}

}  // namespace naas::serve
