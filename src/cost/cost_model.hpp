#pragma once

#include <span>
#include <string>

#include "arch/accelerator.hpp"
#include "cost/backend.hpp"
#include "cost/energy_model.hpp"
#include "cost/layer_context.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::cost {

/// Energy split by component (picojoules).
struct EnergyBreakdown {
  double mac_pj = 0;
  double l1_pj = 0;
  double l2_pj = 0;
  double noc_pj = 0;
  double dram_pj = 0;

  double total_pj() const { return mac_pj + l1_pj + l2_pj + noc_pj + dram_pj; }
};

/// Full evaluation result for one (accelerator, layer, mapping) triple.
struct CostReport {
  bool legal = false;          ///< false => all metrics are +inf/0
  std::string illegal_reason;  ///< populated when !legal

  double macs = 0;             ///< real multiply-accumulates
  double compute_cycles = 0;   ///< MAC-roofline cycles incl. padding waste
  double noc_cycles = 0;       ///< L2<->array port occupancy
  double dram_cycles = 0;      ///< DRAM port occupancy
  double latency_cycles = 0;   ///< max of the above + pipeline fill

  EnergyBreakdown energy;      ///< per-component energies (pJ)
  double energy_nj = 0;        ///< total energy in nanojoules
  double edp = 0;              ///< energy_nj * latency_cycles

  double pe_utilization = 0;   ///< macs / (num_pes * compute_cycles)

  // Traffic accounting (bytes; doubles because products of trip counts can
  // exceed 2^63 on large workloads).
  double dram_bytes = 0;
  double l2_read_bytes = 0;
  double l2_write_bytes = 0;
  double l1_access_bytes = 0;
  double noc_delivery_bytes = 0;
  double reduction_hop_bytes = 0;
};

/// MAESTRO-style analytical cost model (DESIGN.md §2). Deterministic and
/// allocation-free per call once warm; suitable for millions of
/// evaluations inside the evolutionary search loops.
///
/// Two entry points share one implementation:
///  - `evaluate` scores a single mapping (internally a batch of one);
///  - `evaluate_batch` scores a whole generation against a LayerContext of
///    precomputed per-(arch, layer) invariants, laying the candidates out
///    struct-of-arrays so the traffic/latency/energy formulas run as tight
///    vectorizable loops.
/// Both produce bit-identical reports for the same candidate: the batch
/// path performs each candidate's double arithmetic in exactly the scalar
/// evaluation order, so batch size, batch composition, and thread count
/// never change a result.
///
/// The two data-parallel passes of the batch evaluation (the mask-driven
/// reuse scans and the flat arithmetic) run on a pluggable cost::Backend.
/// Every CPU backend is byte-identical to the scalar reference by
/// contract, so the backend choice is a pure throughput knob — reports,
/// cache contents, and stores never depend on it. The default resolves
/// NAAS_COST_BACKEND (env) or kAuto via runtime CPUID dispatch.
class CostModel {
 public:
  CostModel() : CostModel(EnergyModel{}) {}
  explicit CostModel(EnergyModel energy,
                     BackendKind backend = default_backend_kind())
      : energy_(energy) {
    set_backend(backend);
  }

  /// Selects the cost-kernel backend. kAuto (and any unavailable explicit
  /// request) resolves to the best available implementation; query
  /// backend_kind()/backend_name() for what was actually selected. Not
  /// safe to call concurrently with evaluation.
  void set_backend(BackendKind kind) {
    backend_kind_ = resolve_backend(kind);
    backend_ = backend_for(backend_kind_);
  }

  /// The resolved (always-available) backend kind in use.
  BackendKind backend_kind() const { return backend_kind_; }
  /// Stable name of the backend in use ("scalar", "avx2", ...).
  const char* backend_name() const { return backend_->name(); }

  /// Evaluates `mapping` for `layer` on `arch`. Illegal mappings yield
  /// legal=false and edp=+inf; callers that want a best-effort number
  /// should mapping::repair first.
  CostReport evaluate(const arch::ArchConfig& arch, const nn::Workload& layer,
                      const mapping::Mapping& mapping) const;

  /// Precomputes the per-(arch, layer) invariants for `evaluate_batch`
  /// under this model's energy parameters. Build once per generation (or
  /// per mapping search) and reuse across batches.
  LayerContext make_context(const arch::ArchConfig& arch,
                            const nn::Workload& layer) const {
    return LayerContext(arch, layer, energy_);
  }

  /// Evaluates `mappings.size()` candidates against one context, writing
  /// `reports[i]` for `mappings[i]`. Requires equally sized spans. Illegal
  /// candidates short-circuit in the legality pass (with the same reasons
  /// mapping::check reports) and never enter the struct-of-arrays pass.
  /// Thread-safe: concurrent calls on disjoint report spans are the
  /// sharding primitive of search_mapping.
  void evaluate_batch(const LayerContext& ctx,
                      std::span<const mapping::Mapping> mappings,
                      std::span<CostReport> reports) const;

  const EnergyModel& energy_model() const { return energy_; }

 private:
  EnergyModel energy_;
  BackendKind backend_kind_ = BackendKind::kScalar;
  const Backend* backend_ = &scalar_backend();
};

}  // namespace naas::cost
