#include "cost/network_cost.hpp"

#include <limits>

#include "mapping/canonical.hpp"

namespace naas::cost {

NetworkCost evaluate_network_reports(const arch::ArchConfig& arch,
                                     const nn::Network& net,
                                     const ReportProvider& provider) {
  NetworkCost nc;
  nc.network_name = net.name();
  nc.arch_name = arch.name;
  for (const auto& [layer, count] : net.unique_layers()) {
    LayerCost lc;
    lc.layer = layer;
    lc.count = count;
    lc.report = provider(arch, layer);
    if (!lc.report.legal) {
      nc.legal = false;
      nc.edp = std::numeric_limits<double>::infinity();
      nc.latency_cycles = std::numeric_limits<double>::infinity();
      nc.energy_nj = std::numeric_limits<double>::infinity();
      nc.per_layer.push_back(std::move(lc));
      continue;
    }
    nc.latency_cycles += lc.report.latency_cycles * count;
    nc.energy_nj += lc.report.energy_nj * count;
    nc.per_layer.push_back(std::move(lc));
  }
  if (nc.legal) nc.edp = nc.energy_nj * nc.latency_cycles;
  return nc;
}

NetworkCost evaluate_network(const CostModel& model,
                             const arch::ArchConfig& arch,
                             const nn::Network& net,
                             const MappingProvider& provider) {
  return evaluate_network_reports(
      arch, net,
      [&model, &provider](const arch::ArchConfig& a, const nn::Workload& l) {
        return model.evaluate(a, l, provider(a, l));
      });
}

NetworkCost evaluate_network_canonical(const CostModel& model,
                                       const arch::ArchConfig& arch,
                                       const nn::Network& net) {
  return evaluate_network(
      model, arch, net,
      [](const arch::ArchConfig& a, const nn::Workload& l) {
        return mapping::canonical_mapping(a, l);
      });
}

}  // namespace naas::cost
