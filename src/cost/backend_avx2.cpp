// AVX2 cost-kernel backend: 4-wide (4 candidates per vector) versions of
// the stage-2 reuse scans and the stage-3 flat arithmetic.
//
// Bit-identity contract: every lane performs EXACTLY the scalar kernels'
// IEEE double operations in the same order. The vectorization axis is the
// candidate axis — no intra-candidate reassociation is possible — and the
// conditional multiplies of the reuse scans become unconditional multiplies
// by a blended {trip, 1.0} operand (x * 1.0 is an exact identity for the
// finite positive values that flow here). This translation unit is compiled
// with -mavx2 -ffp-contract=off and WITHOUT -mfma, so the compiler cannot
// contract any mul+add into a fused op with different rounding.
//
// The file always compiles; the implementation exists only when __AVX2__ is
// set (CMake adds -mavx2 for this file alone when the compiler supports it,
// or the whole build may be -mavx2) and NAAS_FORCE_SCALAR is not defined.
// avx2_backend_or_null() additionally gates on a runtime CPUID check, so a
// binary built with the backend still dispatches to scalar on an old CPU.

#include "cost/backend.hpp"

#if defined(__AVX2__) && !defined(NAAS_FORCE_SCALAR)

#include <immintrin.h>

#include "cost/backend_kernels.hpp"

namespace naas::cost {
namespace {

using kernels::kD;

constexpr std::size_t kLanes = 4;  // doubles per __m256d

/// 32-bit all-ones lanes where (mask & (1 << d)) != 0 — the tensor
/// relevance test of the masked scans, per candidate lane.
inline __m128i relevance32(__m128i bits, int mask) {
  return _mm_cmpeq_epi32(_mm_and_si128(bits, _mm_set1_epi32(mask)), bits);
}

/// Widens a 4x32-bit 0/-1 mask to a 4x64-bit double blend/logic mask.
inline __m256d mask_pd(__m128i m32) {
  return _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m32));
}

/// reload_factors_masked for lanes [j, j+4): same scan, same multiply
/// sequence; the "seen a relevant loop deeper inside" booleans become
/// per-lane masks updated after each position's multiply, exactly like the
/// scalar flags.
inline void reload_factors_avx2(const int* ord, const double* trips,
                                __m128i base, int in_mask, int w_mask,
                                int out_mask, double* in_f, double* w_f,
                                double* out_f, std::size_t j) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d fi = one, fw = one, fo = one;
  __m256d si = _mm256_setzero_pd(), sw = si, so = si;
  for (int i = static_cast<int>(kD) - 1; i >= 0; --i) {
    const __m128i pos = _mm_add_epi32(base, _mm_set1_epi32(i));
    const __m128i d = _mm_i32gather_epi32(ord, pos, 4);
    const __m256d trip =
        _mm256_i32gather_pd(trips, _mm_add_epi32(base, d), 8);
    const __m256d gt1 = _mm256_cmp_pd(trip, one, _CMP_GT_OQ);
    const __m128i bits = _mm_sllv_epi32(_mm_set1_epi32(1), d);
    const __m256d rin = mask_pd(relevance32(bits, in_mask));
    const __m256d rw = mask_pd(relevance32(bits, w_mask));
    const __m256d rout = mask_pd(relevance32(bits, out_mask));

    // Multiply where the scalar scan would (trip > 1 and the loop is
    // relevant or a relevant loop was already seen deeper inside); blend
    // in 1.0 elsewhere, which leaves the lane's accumulator bit-exact.
    const __m256d ci = _mm256_and_pd(gt1, _mm256_or_pd(rin, si));
    fi = _mm256_mul_pd(fi, _mm256_blendv_pd(one, trip, ci));
    si = _mm256_or_pd(si, _mm256_and_pd(gt1, rin));

    const __m256d cw = _mm256_and_pd(gt1, _mm256_or_pd(rw, sw));
    fw = _mm256_mul_pd(fw, _mm256_blendv_pd(one, trip, cw));
    sw = _mm256_or_pd(sw, _mm256_and_pd(gt1, rw));

    const __m256d co = _mm256_and_pd(gt1, _mm256_or_pd(rout, so));
    fo = _mm256_mul_pd(fo, _mm256_blendv_pd(one, trip, co));
    so = _mm256_or_pd(so, _mm256_and_pd(gt1, rout));
  }
  _mm256_storeu_pd(in_f + j, fi);
  _mm256_storeu_pd(w_f + j, fw);
  _mm256_storeu_pd(out_f + j, fo);
}

/// distinct_tiles_masked for lanes [j, j+4): product over relevant dims in
/// canonical dim order (the mask is uniform across lanes, so the dim loop
/// branches scalar and only the trip loads are gathered).
inline __m256d distinct_tiles_avx2(const double* trips, __m128i base,
                                   int mask) {
  __m256d n = _mm256_set1_pd(1.0);
  for (std::size_t d = 0; d < kD; ++d)
    if ((mask >> d) & 1)
      n = _mm256_mul_pd(
          n, _mm256_i32gather_pd(
                 trips,
                 _mm_add_epi32(base, _mm_set1_epi32(static_cast<int>(d))),
                 8));
  return n;
}

/// register_reuse_masked for lanes [j, j+4): accumulate trips until the
/// first relevant loop per tensor. The scalar early-exit (all three
/// barriers hit) is a pure skip — once a lane's barrier mask is set its
/// accumulator only ever multiplies by 1.0 — so omitting it changes no
/// result.
inline void register_reuse_avx2(const int* ord, const int* t1, __m128i base,
                                int in_mask, int w_mask, int out_mask,
                                double* in_r, double* w_r, double* out_r,
                                std::size_t j) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d ri = one, rw = one, ro = one;
  __m256d di = _mm256_setzero_pd(), dw = di, dout = di;
  for (int i = static_cast<int>(kD) - 1; i >= 0; --i) {
    const __m128i pos = _mm_add_epi32(base, _mm_set1_epi32(i));
    const __m128i d = _mm_i32gather_epi32(ord, pos, 4);
    const __m256d trip = _mm256_cvtepi32_pd(
        _mm_i32gather_epi32(t1, _mm_add_epi32(base, d), 4));
    const __m256d gt1 = _mm256_cmp_pd(trip, one, _CMP_GT_OQ);
    const __m128i bits = _mm_sllv_epi32(_mm_set1_epi32(1), d);
    const __m256d rin = mask_pd(relevance32(bits, in_mask));
    const __m256d rwm = mask_pd(relevance32(bits, w_mask));
    const __m256d rout = mask_pd(relevance32(bits, out_mask));

    // Multiply where trip > 1, the barrier has not been hit, and this loop
    // is not itself relevant; the barrier flips when a relevant loop with
    // trip > 1 appears (both reads use the pre-update barrier, like the
    // scalar code).
    const __m256d ci = _mm256_andnot_pd(di, _mm256_andnot_pd(rin, gt1));
    ri = _mm256_mul_pd(ri, _mm256_blendv_pd(one, trip, ci));
    di = _mm256_or_pd(di, _mm256_and_pd(gt1, rin));

    const __m256d cw = _mm256_andnot_pd(dw, _mm256_andnot_pd(rwm, gt1));
    rw = _mm256_mul_pd(rw, _mm256_blendv_pd(one, trip, cw));
    dw = _mm256_or_pd(dw, _mm256_and_pd(gt1, rwm));

    const __m256d co = _mm256_andnot_pd(dout, _mm256_andnot_pd(rout, gt1));
    ro = _mm256_mul_pd(ro, _mm256_blendv_pd(one, trip, co));
    dout = _mm256_or_pd(dout, _mm256_and_pd(gt1, rout));
  }
  _mm256_storeu_pd(in_r + j, ri);
  _mm256_storeu_pd(w_r + j, rw);
  _mm256_storeu_pd(out_r + j, ro);
}

class Avx2Backend final : public Backend {
 public:
  const char* name() const override { return "avx2"; }

  void reuse_pass(const LayerContext& ctx,
                  const BatchColumns& c) const override {
    const std::size_t m = c.count;
    const std::size_t m4 = m - m % kLanes;
    const int in_mask = ctx.input_mask;
    const int w_mask = ctx.weight_mask;
    const int out_mask = ctx.output_mask;
    for (std::size_t j = 0; j < m4; j += kLanes) {
      // Per-lane base offsets into the candidate-major per-dim columns.
      const int b = static_cast<int>(j * kD);
      const int kdi = static_cast<int>(kD);
      const __m128i base =
          _mm_setr_epi32(b, b + kdi, b + 2 * kdi, b + 3 * kdi);
      reload_factors_avx2(c.ord2, c.n2, base, in_mask, w_mask, out_mask,
                          c.in_f2, c.w_f2, c.out_f2, j);
      _mm256_storeu_pd(c.out_d2 + j, distinct_tiles_avx2(c.n2, base,
                                                         out_mask));
      reload_factors_avx2(c.ord1, c.n1, base, in_mask, w_mask, out_mask,
                          c.in_f1, c.w_f1, c.out_f1, j);
      _mm256_storeu_pd(c.out_d1 + j, distinct_tiles_avx2(c.n1, base,
                                                         out_mask));
      register_reuse_avx2(c.ordr, c.t1, base, in_mask, w_mask, out_mask,
                          c.in_rr, c.w_rr, c.out_rr, j);
    }
    // Remainder lanes run the shared scalar kernels (identical by
    // construction — there is one source of truth for the per-slot math).
    for (std::size_t j = m4; j < m; ++j) kernels::reuse_slot(ctx, c, j);
  }

  void arithmetic_pass(const LayerContext& ctx,
                       const BatchColumns& c) const override {
    const std::size_t m = c.count;
    const std::size_t m4 = m - m % kLanes;
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d two = _mm256_set1_pd(2.0);
    const __m256d thousand = _mm256_set1_pd(1000.0);
    const __m256d macs = _mm256_set1_pd(ctx.macs);
    const __m256d noc_bw = _mm256_set1_pd(ctx.noc_bw);
    const __m256d dram_bw = _mm256_set1_pd(ctx.dram_bw);
    const __m256d array_depth = _mm256_set1_pd(ctx.array_depth);
    const __m256d pes = _mm256_set1_pd(ctx.pes);
    const __m256d l1_pj = _mm256_set1_pd(ctx.l1_access_pj);
    const __m256d l2_pj = _mm256_set1_pd(ctx.l2_access_pj);
    const __m256d noc_pj = _mm256_set1_pd(ctx.noc_hop_pj);
    const __m256d dram_pj = _mm256_set1_pd(ctx.dram_pj_per_byte);
    const __m256d mac_pj = _mm256_set1_pd(ctx.mac_energy_pj);

    for (std::size_t j = 0; j < m4; j += kLanes) {
      const auto ld = [j](const double* p) { return _mm256_loadu_pd(p + j); };
      const auto st = [j](double* p, __m256d v) {
        _mm256_storeu_pd(p + j, v);
      };
      const __m256d phases = ld(c.phases);

      // Level 1: DRAM <-> L2. Additions associate left, as written in
      // arith_slot — the lane sequence is the contract.
      const __m256d in_dram = _mm256_mul_pd(ld(c.in_f2), ld(c.fp2_in));
      const __m256d w_dram = _mm256_mul_pd(ld(c.w_f2), ld(c.fp2_w));
      const __m256d out_writes_dram =
          _mm256_mul_pd(ld(c.out_f2), ld(c.fp2_out));
      const __m256d out_reads_dram = _mm256_mul_pd(
          _mm256_sub_pd(ld(c.out_f2), ld(c.out_d2)), ld(c.fp2_out));
      const __m256d dram_bytes = _mm256_add_pd(
          _mm256_add_pd(_mm256_add_pd(in_dram, w_dram), out_writes_dram),
          out_reads_dram);
      st(c.dram_bytes, dram_bytes);
      const __m256d l2_fill_writes =
          _mm256_add_pd(_mm256_add_pd(in_dram, w_dram), out_reads_dram);
      const __m256d l2_drain_reads = out_writes_dram;

      // Level 2: L2 <-> PE array.
      const __m256d per_pe_in = _mm256_mul_pd(ld(c.in_f1), ld(c.fp1_in));
      const __m256d per_pe_w = _mm256_mul_pd(ld(c.w_f1), ld(c.fp1_w));
      const __m256d per_pe_out_w =
          _mm256_mul_pd(ld(c.out_f1), ld(c.fp1_out));
      const __m256d per_pe_out_r = _mm256_mul_pd(
          _mm256_sub_pd(ld(c.out_f1), ld(c.out_d1)), ld(c.fp1_out));

      const __m256d l2_in_reads = _mm256_mul_pd(
          _mm256_mul_pd(phases, per_pe_in), ld(c.in_mult));
      const __m256d l2_w_reads = _mm256_mul_pd(
          _mm256_mul_pd(phases, per_pe_w), ld(c.w_mult));
      const __m256d l2_out_writes = _mm256_mul_pd(
          _mm256_mul_pd(phases, per_pe_out_w), ld(c.out_mult));
      const __m256d l2_out_reads = _mm256_mul_pd(
          _mm256_mul_pd(phases, per_pe_out_r), ld(c.out_mult));

      const __m256d l2_read = _mm256_add_pd(
          _mm256_add_pd(_mm256_add_pd(l2_in_reads, l2_w_reads),
                        l2_out_reads),
          l2_drain_reads);
      const __m256d l2_write = _mm256_add_pd(l2_out_writes, l2_fill_writes);
      st(c.l2_read, l2_read);
      st(c.l2_write, l2_write);

      const __m256d fanout = ld(c.fanout);
      const __m256d noc_delivery = _mm256_mul_pd(
          _mm256_mul_pd(
              phases,
              _mm256_add_pd(
                  _mm256_add_pd(_mm256_add_pd(per_pe_in, per_pe_w),
                                per_pe_out_r),
                  per_pe_out_w)),
          fanout);
      st(c.noc_delivery, noc_delivery);
      const __m256d red_hops = _mm256_mul_pd(
          l2_out_writes, _mm256_sub_pd(ld(c.red_extent), one));
      st(c.red_hops, red_hops);

      // Level 3: registers inside the PE.
      const __m256d l1_in_reads = _mm256_div_pd(macs, ld(c.in_rr));
      const __m256d l1_w_reads = _mm256_div_pd(macs, ld(c.w_rr));
      const __m256d l1_out_rw =
          _mm256_div_pd(_mm256_mul_pd(two, macs), ld(c.out_rr));
      const __m256d l1_fill = _mm256_mul_pd(
          _mm256_mul_pd(
              phases, _mm256_add_pd(_mm256_add_pd(per_pe_in, per_pe_w),
                                    per_pe_out_r)),
          fanout);
      const __m256d l1_drain =
          _mm256_mul_pd(_mm256_mul_pd(phases, per_pe_out_w), fanout);
      const __m256d l1_access = _mm256_add_pd(
          _mm256_add_pd(
              _mm256_add_pd(_mm256_add_pd(l1_in_reads, l1_w_reads),
                            l1_out_rw),
              l1_fill),
          l1_drain);
      st(c.l1_access, l1_access);

      // Latency and utilization.
      const __m256d compute_cyc =
          _mm256_mul_pd(phases, ld(c.per_pe_iters));
      const __m256d noc_cyc =
          _mm256_div_pd(_mm256_add_pd(l2_read, l2_write), noc_bw);
      const __m256d dram_cyc = _mm256_div_pd(dram_bytes, dram_bw);
      const __m256d fill_cycles = _mm256_add_pd(
          _mm256_div_pd(ld(c.fp2_tot), dram_bw), array_depth);
      // maxpd of non-negative operands matches std::max bit for bit
      // regardless of tie order (no -0.0 can flow here).
      const __m256d latency = _mm256_add_pd(
          _mm256_max_pd(_mm256_max_pd(compute_cyc, noc_cyc), dram_cyc),
          fill_cycles);
      const __m256d util =
          _mm256_div_pd(macs, _mm256_mul_pd(pes, compute_cyc));
      st(c.compute_cyc, compute_cyc);
      st(c.noc_cyc, noc_cyc);
      st(c.dram_cyc, dram_cyc);
      st(c.latency, latency);
      st(c.util, util);

      // Energy.
      const __m256d e_l1 = _mm256_mul_pd(l1_access, l1_pj);
      const __m256d e_l2 =
          _mm256_mul_pd(_mm256_add_pd(l2_read, l2_write), l2_pj);
      const __m256d e_noc =
          _mm256_mul_pd(_mm256_add_pd(noc_delivery, red_hops), noc_pj);
      const __m256d e_dram = _mm256_mul_pd(dram_bytes, dram_pj);
      const __m256d e_total_nj = _mm256_div_pd(
          _mm256_add_pd(
              _mm256_add_pd(
                  _mm256_add_pd(_mm256_add_pd(mac_pj, e_l1), e_l2), e_noc),
              e_dram),
          thousand);
      const __m256d edp = _mm256_mul_pd(e_total_nj, latency);
      st(c.e_l1, e_l1);
      st(c.e_l2, e_l2);
      st(c.e_noc, e_noc);
      st(c.e_dram, e_dram);
      st(c.e_total_nj, e_total_nj);
      st(c.edp, edp);
    }
    for (std::size_t j = m4; j < m; ++j) kernels::arith_slot(ctx, c, j);
  }
};

const Avx2Backend g_avx2;

}  // namespace

const Backend* avx2_backend_or_null() {
  // The implementation is compiled in; still require the running CPU to
  // support AVX2 so a portable binary dispatches safely.
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &g_avx2 : nullptr;
}

}  // namespace naas::cost

#else  // !__AVX2__ || NAAS_FORCE_SCALAR

namespace naas::cost {

const Backend* avx2_backend_or_null() { return nullptr; }

}  // namespace naas::cost

#endif
