#pragma once

#include "cost/reuse.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::cost {

/// Exact fetch/writeback counts for one tensor at one temporal level,
/// produced by functionally executing the loop nest (TraceSimulator).
struct TraceCounts {
  long long fetches = 0;      ///< tile loads from the parent level
  long long writebacks = 0;   ///< output tile stores to the parent level
  long long readbacks = 0;    ///< partial-sum tiles re-read from the parent
};

/// Reference simulator for the reuse analysis: walks the temporal loop
/// nest of one level tile-by-tile (in the mapping's order, with the given
/// per-dimension trip counts) and counts exactly how often each tensor's
/// tile must be (re)loaded from the parent level, under the same buffering
/// contract the analytical model assumes — this level holds one resident
/// tile per tensor, replaced whenever the needed tile id changes.
///
/// For the output tensor, a tile is written back when evicted and read
/// back when it returns after eviction (partial-sum spill). The analytical
/// counterparts are:
///   fetches(input/weight)  == reload_factor(...)
///   writebacks(output)     == reload_factor(output)        (per visit)
///   readbacks(output)      == reload_factor - distinct_tiles
///
/// Intended for validation in tests: cost is O(total trip product), so use
/// small trip counts.
class TraceSimulator {
 public:
  /// Counts fetches for `tensor` under `order`/`trips` for a layer kind.
  /// Total loop iterations must stay below `max_iterations` (guards test
  /// hangs; throws std::invalid_argument beyond it).
  static TraceCounts run(const mapping::LoopOrder& order,
                         const TripCounts& trips, Tensor tensor,
                         nn::LayerKind kind,
                         long long max_iterations = 1 << 22);
};

}  // namespace naas::cost
