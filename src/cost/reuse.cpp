#include "cost/reuse.hpp"

namespace naas::cost {

const char* tensor_name(Tensor t) {
  switch (t) {
    case Tensor::kInput: return "input";
    case Tensor::kWeight: return "weight";
    case Tensor::kOutput: return "output";
  }
  return "?";
}

bool is_relevant(Tensor t, nn::Dim d, nn::LayerKind kind) {
  const bool dw = kind == nn::LayerKind::kDepthwiseConv;
  switch (t) {
    case Tensor::kInput:
      switch (d) {
        case nn::Dim::kN:
        case nn::Dim::kYp:
        case nn::Dim::kXp:
        case nn::Dim::kR:
        case nn::Dim::kS: return true;
        case nn::Dim::kC: return !dw;
        case nn::Dim::kK: return dw;
      }
      return false;
    case Tensor::kWeight:
      switch (d) {
        case nn::Dim::kK:
        case nn::Dim::kR:
        case nn::Dim::kS: return true;
        case nn::Dim::kC: return !dw;
        default: return false;
      }
    case Tensor::kOutput:
      switch (d) {
        case nn::Dim::kN:
        case nn::Dim::kK:
        case nn::Dim::kYp:
        case nn::Dim::kXp: return true;
        default: return false;
      }
  }
  return false;
}

bool is_reduction(nn::Dim d, nn::LayerKind kind) {
  if (d == nn::Dim::kR || d == nn::Dim::kS) return true;
  if (d == nn::Dim::kC) return kind != nn::LayerKind::kDepthwiseConv;
  return false;
}

long long trips_of(const TripCounts& t, nn::Dim d) {
  return t[static_cast<std::size_t>(static_cast<int>(d))];
}

double reload_factor(const mapping::LoopOrder& order, const TripCounts& trips,
                     Tensor t, nn::LayerKind kind) {
  double factor = 1.0;
  bool seen_relevant = false;  // scanning innermost -> outermost
  for (int i = nn::kNumDims - 1; i >= 0; --i) {
    const nn::Dim d = order[static_cast<std::size_t>(i)];
    const double trip = static_cast<double>(trips_of(trips, d));
    if (trip <= 1.0) continue;  // a single-trip loop is no loop at all
    if (is_relevant(t, d, kind)) {
      factor *= trip;
      seen_relevant = true;
    } else if (seen_relevant) {
      factor *= trip;
    }
    // else: innermost irrelevant run -> temporal reuse, no refetch.
  }
  return factor;
}

double distinct_tiles(const TripCounts& trips, Tensor t, nn::LayerKind kind) {
  double n = 1.0;
  for (nn::Dim d : nn::all_dims())
    if (is_relevant(t, d, kind)) n *= static_cast<double>(trips_of(trips, d));
  return n;
}

double register_reuse(const mapping::LoopOrder& order, const TripCounts& trips,
                      Tensor t, nn::LayerKind kind) {
  double reuse = 1.0;
  for (int i = nn::kNumDims - 1; i >= 0; --i) {
    const nn::Dim d = order[static_cast<std::size_t>(i)];
    const double trip = static_cast<double>(trips_of(trips, d));
    if (trip <= 1.0) continue;  // degenerate loop: neither reuse nor barrier
    if (is_relevant(t, d, kind)) break;
    reuse *= trip;
  }
  return reuse;
}

}  // namespace naas::cost
