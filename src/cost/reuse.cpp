#include "cost/reuse.hpp"

namespace naas::cost {

const char* tensor_name(Tensor t) {
  switch (t) {
    case Tensor::kInput: return "input";
    case Tensor::kWeight: return "weight";
    case Tensor::kOutput: return "output";
  }
  return "?";
}

namespace {

using nn::Dim;

constexpr unsigned mask_of() { return 0u; }
template <typename... Dims>
constexpr unsigned mask_of(Dim d, Dims... rest) {
  return dim_bit(d) | mask_of(rest...);
}

constexpr KindSemantics kConvSemantics{
    mask_of(Dim::kN, Dim::kC, Dim::kYp, Dim::kXp, Dim::kR, Dim::kS),
    mask_of(Dim::kK, Dim::kC, Dim::kR, Dim::kS),
    mask_of(Dim::kN, Dim::kK, Dim::kYp, Dim::kXp),
    mask_of(Dim::kC, Dim::kR, Dim::kS),
    /*batched_weight=*/false,
};

constexpr KindSemantics kDepthwiseSemantics{
    mask_of(Dim::kN, Dim::kK, Dim::kYp, Dim::kXp, Dim::kR, Dim::kS),
    mask_of(Dim::kK, Dim::kR, Dim::kS),
    mask_of(Dim::kN, Dim::kK, Dim::kYp, Dim::kXp),
    mask_of(Dim::kR, Dim::kS),
    /*batched_weight=*/false,
};

constexpr KindSemantics kMatmulSemantics{
    mask_of(Dim::kN, Dim::kC, Dim::kYp),
    mask_of(Dim::kK, Dim::kC),
    mask_of(Dim::kN, Dim::kK, Dim::kYp),
    mask_of(Dim::kC),
    /*batched_weight=*/false,
};

constexpr KindSemantics kAttentionSemantics{
    mask_of(Dim::kN, Dim::kC, Dim::kYp),
    mask_of(Dim::kN, Dim::kK, Dim::kC),
    mask_of(Dim::kN, Dim::kK, Dim::kYp),
    mask_of(Dim::kC),
    /*batched_weight=*/true,
};

}  // namespace

const KindSemantics& semantics(nn::LayerKind kind) {
  switch (kind) {
    case nn::LayerKind::kDepthwiseConv: return kDepthwiseSemantics;
    case nn::LayerKind::kMatmul: return kMatmulSemantics;
    case nn::LayerKind::kAttention: return kAttentionSemantics;
    case nn::LayerKind::kConv:
    case nn::LayerKind::kFullyConnected: break;
  }
  return kConvSemantics;
}

bool is_relevant(Tensor t, nn::Dim d, nn::LayerKind kind) {
  const KindSemantics& s = semantics(kind);
  switch (t) {
    case Tensor::kInput: return (s.input_mask & dim_bit(d)) != 0;
    case Tensor::kWeight: return (s.weight_mask & dim_bit(d)) != 0;
    case Tensor::kOutput: return (s.output_mask & dim_bit(d)) != 0;
  }
  return false;
}

bool is_reduction(nn::Dim d, nn::LayerKind kind) {
  return (semantics(kind).reduction_mask & dim_bit(d)) != 0;
}

long long trips_of(const TripCounts& t, nn::Dim d) {
  return t[static_cast<std::size_t>(static_cast<int>(d))];
}

double reload_factor(const mapping::LoopOrder& order, const TripCounts& trips,
                     Tensor t, nn::LayerKind kind) {
  double factor = 1.0;
  bool seen_relevant = false;  // scanning innermost -> outermost
  for (int i = nn::kNumDims - 1; i >= 0; --i) {
    const nn::Dim d = order[static_cast<std::size_t>(i)];
    const double trip = static_cast<double>(trips_of(trips, d));
    if (trip <= 1.0) continue;  // a single-trip loop is no loop at all
    if (is_relevant(t, d, kind)) {
      factor *= trip;
      seen_relevant = true;
    } else if (seen_relevant) {
      factor *= trip;
    }
    // else: innermost irrelevant run -> temporal reuse, no refetch.
  }
  return factor;
}

double distinct_tiles(const TripCounts& trips, Tensor t, nn::LayerKind kind) {
  double n = 1.0;
  for (nn::Dim d : nn::all_dims())
    if (is_relevant(t, d, kind)) n *= static_cast<double>(trips_of(trips, d));
  return n;
}

double register_reuse(const mapping::LoopOrder& order, const TripCounts& trips,
                      Tensor t, nn::LayerKind kind) {
  double reuse = 1.0;
  for (int i = nn::kNumDims - 1; i >= 0; --i) {
    const nn::Dim d = order[static_cast<std::size_t>(i)];
    const double trip = static_cast<double>(trips_of(trips, d));
    if (trip <= 1.0) continue;  // degenerate loop: neither reuse nor barrier
    if (is_relevant(t, d, kind)) break;
    reuse *= trip;
  }
  return reuse;
}

}  // namespace naas::cost
