#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "nn/network.hpp"

namespace naas::cost {

/// Cost of one unique layer shape (with its multiplicity in the network).
struct LayerCost {
  nn::Workload layer;
  int count = 1;
  CostReport report;
};

/// Whole-network inference cost on one accelerator. EDP is
/// total energy x total latency (batch-1 end-to-end inference, layers
/// executed back-to-back), the metric the paper reports.
struct NetworkCost {
  std::string network_name;
  std::string arch_name;
  bool legal = true;              ///< false if any layer was illegal
  double latency_cycles = 0;      ///< sum over layers
  double energy_nj = 0;           ///< sum over layers
  double edp = 0;                 ///< energy_nj * latency_cycles
  std::vector<LayerCost> per_layer;  ///< unique shapes only
};

/// Supplies the mapping to use for each (accelerator, layer) pair — either
/// a canonical baseline mapping or the result of mapping search.
using MappingProvider = std::function<mapping::Mapping(
    const arch::ArchConfig&, const nn::Workload&)>;

/// Supplies the finished cost report for each (accelerator, layer) pair.
/// Callers that already evaluated the layer (mapping search keeps the best
/// candidate's report) plug in their cache here, so assembling a network
/// cost performs zero new cost-model evaluations.
using ReportProvider = std::function<CostReport(const arch::ArchConfig&,
                                                const nn::Workload&)>;

/// Core aggregation: deduplicates `net` down to its unique layer shapes
/// (count-weighted, LayerShapeHash), obtains each unique shape's report
/// from `provider` exactly once, scales by multiplicity, and aggregates.
/// ResNet/MobileNet-style networks with many identical blocks pay for each
/// unique shape once.
NetworkCost evaluate_network_reports(const arch::ArchConfig& arch,
                                     const nn::Network& net,
                                     const ReportProvider& provider);

/// Evaluates every *unique* layer shape of `net` once (through the cost
/// model, with the mapping chosen by `provider`), scales by multiplicity,
/// and aggregates.
NetworkCost evaluate_network(const CostModel& model,
                             const arch::ArchConfig& arch,
                             const nn::Network& net,
                             const MappingProvider& provider);

/// Convenience: evaluates with the accelerator's canonical (native
/// dataflow) mapping for every layer — the fixed-baseline methodology.
NetworkCost evaluate_network_canonical(const CostModel& model,
                                       const arch::ArchConfig& arch,
                                       const nn::Network& net);

}  // namespace naas::cost
