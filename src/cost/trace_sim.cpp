#include "cost/trace_sim.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace naas::cost {

TraceCounts TraceSimulator::run(const mapping::LoopOrder& order,
                                const TripCounts& trips, Tensor tensor,
                                nn::LayerKind kind,
                                long long max_iterations) {
  long long total = 1;
  for (nn::Dim d : nn::all_dims()) total *= trips_of(trips, d);
  if (total > max_iterations)
    throw std::invalid_argument("TraceSimulator: iteration space too large");

  // Odometer over the loop nest, outermost digit first.
  std::vector<long long> counter(nn::kNumDims, 0);
  std::vector<long long> limit(nn::kNumDims);
  std::vector<bool> relevant(nn::kNumDims);
  for (int i = 0; i < nn::kNumDims; ++i) {
    const nn::Dim d = order[static_cast<std::size_t>(i)];
    limit[static_cast<std::size_t>(i)] = trips_of(trips, d);
    relevant[static_cast<std::size_t>(i)] = is_relevant(tensor, d, kind);
  }

  // Tile id = mixed-radix number over the relevant loop indices.
  auto tile_id = [&]() {
    long long id = 0;
    for (int i = 0; i < nn::kNumDims; ++i) {
      if (!relevant[static_cast<std::size_t>(i)]) continue;
      id = id * (limit[static_cast<std::size_t>(i)] + 1) +
           counter[static_cast<std::size_t>(i)];
    }
    return id;
  };

  TraceCounts counts;
  long long resident = -1;                 // tile currently in the buffer
  std::unordered_set<long long> written;   // output tiles already evicted

  for (long long step = 0; step < total; ++step) {
    const long long needed = tile_id();
    if (needed != resident) {
      if (tensor == Tensor::kOutput) {
        if (resident != -1) {
          ++counts.writebacks;
          written.insert(resident);
        }
        if (written.count(needed)) ++counts.readbacks;
      }
      ++counts.fetches;
      resident = needed;
    }
    // Advance the odometer (innermost digit fastest).
    for (int i = nn::kNumDims - 1; i >= 0; --i) {
      auto& c = counter[static_cast<std::size_t>(i)];
      if (++c < limit[static_cast<std::size_t>(i)]) break;
      c = 0;
    }
  }
  if (tensor == Tensor::kOutput && resident != -1) ++counts.writebacks;
  return counts;
}

}  // namespace naas::cost
