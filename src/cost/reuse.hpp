#pragma once

#include <array>

#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::cost {

/// The three operand tensors of a workload.
enum class Tensor { kInput, kWeight, kOutput };

/// Name of a tensor ("input", "weight", "output").
const char* tensor_name(Tensor t);

/// Bit for dimension `d` in a KindSemantics mask.
constexpr unsigned dim_bit(nn::Dim d) {
  return 1u << static_cast<int>(d);
}

/// Per-kind dim-semantics table: which of the seven loop dims index each
/// operand tensor, which dims accumulate partial sums, and whether the
/// weight operand is itself batch-indexed. This single table is what makes
/// the whole cost stack kind-dispatched — reuse scans, LayerContext
/// precompute, footprint formulas, and trace_sim all read it instead of
/// hard-coding conv.
///
///              input              weight        output         reduction
///   conv/fc    N C Y' X' R S      K C R S       N K Y' X'      C R S
///   dwconv     N K Y' X' R S      K R S         N K Y' X'      R S
///   matmul     N C Y'             K C           N K Y'         C
///   attention  N C Y'             N K C         N K Y'         C
///
/// Depthwise has no cross-channel reduction (the K loop walks channels, C
/// is pinned to 1). Matmul/attention pin X'/R/S to 1, so the masks drop
/// them; every conv-era formula degenerates to the exact GEMM form because
/// unit-trip loops contribute nothing to reuse products. Attention is the
/// only kind whose weight mask contains N: its second operand is an
/// activation (K^T or V), one copy per batch x head slice, which is what
/// kills cross-batch weight reuse and makes LLM decode bandwidth-bound.
struct KindSemantics {
  unsigned input_mask;
  unsigned weight_mask;
  unsigned output_mask;
  unsigned reduction_mask;
  bool batched_weight;  ///< weight operand indexed by N (attention only)
};

/// The semantics table entry for a layer kind.
const KindSemantics& semantics(nn::LayerKind kind);

/// True if loop dimension `d` indexes tensor `t` (mask lookup into the
/// per-kind semantics table).
bool is_relevant(Tensor t, nn::Dim d, nn::LayerKind kind);

/// True if `d` is a reduction dimension for the layer kind (irrelevant to
/// the output index but accumulating partial sums): C,R,S for conv/FC,
/// R,S for depthwise, C for matmul/attention.
bool is_reduction(nn::Dim d, nn::LayerKind kind);

/// Per-dimension trip counts of one temporal loop level.
using TripCounts = std::array<long long, nn::kNumDims>;

/// Trip count accessor by dim.
long long trips_of(const TripCounts& t, nn::Dim d);

/// Core reuse primitive. Given the loops of one temporal level (`order`,
/// outermost first, with per-dim `trips`), returns how many times the inner
/// tile of tensor `t` is fetched from the parent memory level:
///
///   factor = product of trips over loops that are relevant to `t`, times
///            trips of irrelevant loops that have at least one relevant
///            loop deeper inside.
///
/// The innermost contiguous run of irrelevant loops is excluded — while
/// those loops iterate, the tensor's tile sits resident in this level's
/// buffer and is reused (temporal reuse). This is the standard analytical
/// dataflow model: placing a tensor's irrelevant loops innermost makes it
/// "stationary" at this level.
///
/// Returned as double because products of trips across seven dims can
/// exceed 2^63 for large workloads.
double reload_factor(const mapping::LoopOrder& order, const TripCounts& trips,
                     Tensor t, nn::LayerKind kind);

/// Product of trips over loops relevant to `t`: the number of distinct
/// tiles of `t` at this level (reload_factor / distinct_tiles = number of
/// revisits of each tile).
double distinct_tiles(const TripCounts& trips, Tensor t, nn::LayerKind kind);

/// Register-level reuse: the product of trips of the innermost contiguous
/// run of loops irrelevant to `t` in `order`. A single-entry register can
/// hold the operand across exactly those iterations, so L1 reads for `t`
/// are total_macs / register_reuse.
double register_reuse(const mapping::LoopOrder& order, const TripCounts& trips,
                      Tensor t, nn::LayerKind kind);

}  // namespace naas::cost
