#pragma once

#include <array>

#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::cost {

/// The three operand tensors of a convolution.
enum class Tensor { kInput, kWeight, kOutput };

/// Name of a tensor ("input", "weight", "output").
const char* tensor_name(Tensor t);

/// True if loop dimension `d` indexes tensor `t`.
///
/// Standard conv / FC:
///   input:  N, C, Y', X', R, S   (K is irrelevant -> broadcast over K)
///   weight: K, C, R, S           (N, Y', X' irrelevant -> stationary)
///   output: N, K, Y', X'         (C, R, S are reduction dims)
/// Depthwise conv: the K loop walks channels, so the input is indexed by K
/// instead of C, and C (== 1) is irrelevant everywhere.
bool is_relevant(Tensor t, nn::Dim d, nn::LayerKind kind);

/// True if `d` is a reduction dimension for the layer kind (irrelevant to
/// the output index but accumulating partial sums): C,R,S for conv/FC,
/// R,S for depthwise.
bool is_reduction(nn::Dim d, nn::LayerKind kind);

/// Per-dimension trip counts of one temporal loop level.
using TripCounts = std::array<long long, nn::kNumDims>;

/// Trip count accessor by dim.
long long trips_of(const TripCounts& t, nn::Dim d);

/// Core reuse primitive. Given the loops of one temporal level (`order`,
/// outermost first, with per-dim `trips`), returns how many times the inner
/// tile of tensor `t` is fetched from the parent memory level:
///
///   factor = product of trips over loops that are relevant to `t`, times
///            trips of irrelevant loops that have at least one relevant
///            loop deeper inside.
///
/// The innermost contiguous run of irrelevant loops is excluded — while
/// those loops iterate, the tensor's tile sits resident in this level's
/// buffer and is reused (temporal reuse). This is the standard analytical
/// dataflow model: placing a tensor's irrelevant loops innermost makes it
/// "stationary" at this level.
///
/// Returned as double because products of trips across seven dims can
/// exceed 2^63 for large workloads.
double reload_factor(const mapping::LoopOrder& order, const TripCounts& trips,
                     Tensor t, nn::LayerKind kind);

/// Product of trips over loops relevant to `t`: the number of distinct
/// tiles of `t` at this level (reload_factor / distinct_tiles = number of
/// revisits of each tile).
double distinct_tiles(const TripCounts& trips, Tensor t, nn::LayerKind kind);

/// Register-level reuse: the product of trips of the innermost contiguous
/// run of loops irrelevant to `t` in `order`. A single-entry register can
/// hold the operand across exactly those iterations, so L1 reads for `t`
/// are total_macs / register_reuse.
double register_reuse(const mapping::LoopOrder& order, const TripCounts& trips,
                      Tensor t, nn::LayerKind kind);

}  // namespace naas::cost
