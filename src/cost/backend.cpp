#include "cost/backend.hpp"

#include <cstdlib>

#include "core/log.hpp"
#include "cost/backend_kernels.hpp"

namespace naas::cost {

// Defined in backend_avx2.cpp / backend_neon.cpp. Each returns its
// singleton when the implementation is compiled in AND the running CPU
// supports it, else nullptr — the whole dispatch decision lives behind
// these two calls.
const Backend* avx2_backend_or_null();
const Backend* neon_backend_or_null();

namespace {

/// Reference implementation: plain loops over the shared per-slot kernels.
/// Every other CPU backend is defined as "byte-identical to this".
class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }

  void reuse_pass(const LayerContext& ctx,
                  const BatchColumns& cols) const override {
    for (std::size_t j = 0; j < cols.count; ++j)
      kernels::reuse_slot(ctx, cols, j);
  }

  void arithmetic_pass(const LayerContext& ctx,
                       const BatchColumns& cols) const override {
    for (std::size_t j = 0; j < cols.count; ++j)
      kernels::arith_slot(ctx, cols, j);
  }
};

const ScalarBackend g_scalar;

}  // namespace

const Backend& scalar_backend() { return g_scalar; }

const Backend* backend_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return &g_scalar;
    case BackendKind::kAvx2:
      return avx2_backend_or_null();
    case BackendKind::kNeon:
      return neon_backend_or_null();
    case BackendKind::kAuto: {
      if (const Backend* b = avx2_backend_or_null()) return b;
      if (const Backend* b = neon_backend_or_null()) return b;
      return &g_scalar;
    }
  }
  return nullptr;
}

bool backend_available(BackendKind kind) {
  return backend_for(kind) != nullptr;
}

BackendKind resolve_backend(BackendKind requested) {
  if (requested == BackendKind::kAuto) {
    if (avx2_backend_or_null()) return BackendKind::kAvx2;
    if (neon_backend_or_null()) return BackendKind::kNeon;
    return BackendKind::kScalar;
  }
  return backend_available(requested) ? requested : BackendKind::kScalar;
}

BackendKind default_backend_kind() {
  const char* env = std::getenv("NAAS_COST_BACKEND");
  if (env == nullptr || *env == '\0') return BackendKind::kAuto;
  if (const auto kind = parse_backend_kind(env)) return *kind;
  core::log_warn("ignoring invalid NAAS_COST_BACKEND='" + std::string(env) +
                 "' (expected scalar|avx2|neon|auto)");
  return BackendKind::kAuto;
}

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar: return "scalar";
    case BackendKind::kAvx2: return "avx2";
    case BackendKind::kNeon: return "neon";
    case BackendKind::kAuto: return "auto";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(const std::string& name) {
  if (name == "scalar") return BackendKind::kScalar;
  if (name == "avx2") return BackendKind::kAvx2;
  if (name == "neon") return BackendKind::kNeon;
  if (name == "auto") return BackendKind::kAuto;
  return std::nullopt;
}

}  // namespace naas::cost
