#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cost/layer_context.hpp"

namespace naas::cost {

/// Which cost-kernel implementation scores the struct-of-arrays batch
/// passes. kAuto resolves at runtime (CPUID) to the fastest available
/// implementation; every CPU backend is byte-identical to kScalar by
/// contract (same double operations, same order — see docs/performance.md),
/// which the cross-backend differential suite enforces.
enum class BackendKind : int {
  kScalar = 0,  ///< the reference implementation (always available)
  kAvx2 = 1,    ///< x86 AVX2 intrinsics (requires CPU + compiler support)
  kNeon = 2,    ///< ARM NEON dispatch seam (kernels currently delegate)
  kAuto = 3,    ///< best available: avx2 > neon > scalar
};

/// The struct-of-arrays view of one evaluate_batch call that the backend
/// kernels operate on: `count` live (legality-surviving) candidate slots,
/// candidate-major per-dimension columns for the order-dependent scans and
/// flat slot-indexed columns for the arithmetic pass. All pointers are
/// owned by the caller's scratch and valid for exactly one pass; per-dim
/// columns hold nn::kNumDims entries per slot.
struct BatchColumns {
  std::size_t count = 0;

  // ---- Reuse-pass inputs (stage 2) -------------------------------------
  // Loop orders staged as dim indices, outermost first (ord*[slot*kD + i]
  // is the dim index at order position i).
  const int* ord2 = nullptr;  ///< DRAM-level loop order
  const int* ord1 = nullptr;  ///< PE-level loop order
  const int* ordr = nullptr;  ///< register (innermost) loop order
  const double* n2 = nullptr;  ///< DRAM-level trip counts per dim
  const double* n1 = nullptr;  ///< PE-level trip counts per dim
  const int* t1 = nullptr;     ///< L1 tile sizes per dim

  // ---- Reuse-pass outputs / arithmetic-pass inputs ---------------------
  double* in_f2 = nullptr;
  double* w_f2 = nullptr;
  double* out_f2 = nullptr;
  double* out_d2 = nullptr;
  double* in_f1 = nullptr;
  double* w_f1 = nullptr;
  double* out_f1 = nullptr;
  double* out_d1 = nullptr;
  double* in_rr = nullptr;
  double* w_rr = nullptr;
  double* out_rr = nullptr;

  // ---- Arithmetic-pass inputs (precomputed by the shared prep) ---------
  const double* phases = nullptr;
  const double* per_pe_iters = nullptr;
  const double* fp2_in = nullptr;
  const double* fp2_w = nullptr;
  const double* fp2_out = nullptr;
  const double* fp2_tot = nullptr;
  const double* fp1_in = nullptr;
  const double* fp1_w = nullptr;
  const double* fp1_out = nullptr;
  const double* in_mult = nullptr;
  const double* w_mult = nullptr;
  const double* out_mult = nullptr;
  const double* red_extent = nullptr;
  const double* fanout = nullptr;

  // ---- Arithmetic-pass outputs -----------------------------------------
  double* dram_bytes = nullptr;
  double* l2_read = nullptr;
  double* l2_write = nullptr;
  double* l1_access = nullptr;
  double* noc_delivery = nullptr;
  double* red_hops = nullptr;
  double* compute_cyc = nullptr;
  double* noc_cyc = nullptr;
  double* dram_cyc = nullptr;
  double* latency = nullptr;
  double* util = nullptr;
  double* e_l1 = nullptr;
  double* e_l2 = nullptr;
  double* e_noc = nullptr;
  double* e_dram = nullptr;
  double* e_total_nj = nullptr;
  double* edp = nullptr;
};

/// Cost-kernel backend ABI: the two data-parallel passes of
/// CostModel::evaluate_batch, pluggable per CostModel instance. The
/// contract every CPU implementation must honor is BIT-IDENTITY to the
/// scalar reference: per candidate, the same IEEE double operations in the
/// same order (lane-width loops are structured so no reassociation or
/// contraction can occur), so serialized CostReports compare byte-equal
/// across backends — the invariant tests/test_backend_differential.cpp
/// fuzzes and CI asserts.
///
/// Implementations are stateless singletons; all methods are const and
/// thread-safe (concurrent calls on disjoint column sets are the search
/// fan-out's sharding primitive).
class Backend {
 public:
  virtual ~Backend() = default;
  /// Stable lowercase identifier ("scalar", "avx2", ...) reported in
  /// stderr summaries, cache_stats, and bench JSON.
  virtual const char* name() const = 0;
  /// Stage 2: order-dependent reuse factors (reload factors, distinct
  /// tiles, register reuse) for every live slot.
  virtual void reuse_pass(const LayerContext& ctx,
                          const BatchColumns& cols) const = 0;
  /// Stage 3: flat traffic/latency/energy arithmetic for every live slot.
  virtual void arithmetic_pass(const LayerContext& ctx,
                               const BatchColumns& cols) const = 0;
};

/// The reference backend (always available).
const Backend& scalar_backend();

/// The backend for `kind`, or nullptr when unavailable on this build/CPU
/// (kAuto always resolves; kScalar is always available).
const Backend* backend_for(BackendKind kind);

/// True when `kind` can actually run here (compiled in + CPU supports it).
bool backend_available(BackendKind kind);

/// Resolves kAuto to the best available kind (avx2 > neon > scalar) and
/// any unavailable explicit request to kScalar. The returned kind is
/// always available.
BackendKind resolve_backend(BackendKind requested);

/// The kind the process would pick with no overrides: NAAS_COST_BACKEND
/// env when set to a valid kind name, else kAuto. Invalid values are
/// ignored with a warning.
BackendKind default_backend_kind();

/// Stable name of a kind ("scalar", "avx2", "neon", "auto").
const char* backend_kind_name(BackendKind kind);

/// Parses a kind name; nullopt on unknown input.
std::optional<BackendKind> parse_backend_kind(const std::string& name);

}  // namespace naas::cost
