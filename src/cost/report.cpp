#include "cost/report.hpp"

#include <sstream>

#include "core/table.hpp"

namespace naas::cost {

std::string format_report(const CostReport& r) {
  std::ostringstream os;
  if (!r.legal) {
    os << "ILLEGAL mapping: " << r.illegal_reason << '\n';
    return os.str();
  }
  using core::Table;
  os << "latency " << Table::fmt_sci(r.latency_cycles, 3) << " cycles"
     << " (compute " << Table::fmt_sci(r.compute_cycles, 2) << ", noc "
     << Table::fmt_sci(r.noc_cycles, 2) << ", dram "
     << Table::fmt_sci(r.dram_cycles, 2) << ")\n";
  os << "energy  " << Table::fmt_sci(r.energy_nj, 3) << " nJ, EDP "
     << Table::fmt_sci(r.edp, 3) << ", PE utilization "
     << Table::fmt(r.pe_utilization * 100.0, 1) << "%\n";

  Table t({"Component", "Energy (pJ)", "Share"});
  const double total = r.energy.total_pj();
  auto row = [&](const char* name, double pj) {
    t.add_row({name, Table::fmt_sci(pj, 2),
               Table::fmt(100.0 * pj / total, 1) + "%"});
  };
  row("MAC", r.energy.mac_pj);
  row("L1 (scratch pads)", r.energy.l1_pj);
  row("L2 (global buffer)", r.energy.l2_pj);
  row("NoC", r.energy.noc_pj);
  row("DRAM", r.energy.dram_pj);
  os << t.to_string();

  Table traffic({"Traffic", "Bytes"});
  traffic.add_row({"DRAM", Table::fmt_sci(r.dram_bytes, 2)});
  traffic.add_row({"L2 reads", Table::fmt_sci(r.l2_read_bytes, 2)});
  traffic.add_row({"L2 writes", Table::fmt_sci(r.l2_write_bytes, 2)});
  traffic.add_row({"L1 accesses", Table::fmt_sci(r.l1_access_bytes, 2)});
  traffic.add_row({"NoC deliveries", Table::fmt_sci(r.noc_delivery_bytes, 2)});
  traffic.add_row(
      {"Reduction hops", Table::fmt_sci(r.reduction_hop_bytes, 2)});
  os << traffic.to_string();
  return os.str();
}

std::string format_network_cost(const NetworkCost& nc) {
  using core::Table;
  std::ostringstream os;
  os << nc.network_name << " on " << nc.arch_name << ":\n";
  Table t({"Layer", "x", "Latency (cyc)", "Energy (nJ)", "Util",
           "Time share"});
  for (const auto& lc : nc.per_layer) {
    // EDP is not separable per layer; report the latency share instead.
    const double time_share =
        nc.latency_cycles > 0
            ? 100.0 * lc.report.latency_cycles * lc.count / nc.latency_cycles
            : 0.0;
    t.add_row({lc.layer.name, std::to_string(lc.count),
               Table::fmt_sci(lc.report.latency_cycles, 2),
               Table::fmt_sci(lc.report.energy_nj, 2),
               Table::fmt(lc.report.pe_utilization, 2),
               Table::fmt(time_share, 1) + "%"});
  }
  os << t.to_string();
  os << "total: latency " << Table::fmt_sci(nc.latency_cycles, 3)
     << " cycles, energy " << Table::fmt_sci(nc.energy_nj, 3) << " nJ, EDP "
     << Table::fmt_sci(nc.edp, 3) << (nc.legal ? "" : " (ILLEGAL)") << '\n';
  return os.str();
}

}  // namespace naas::cost
