// NEON cost-kernel backend stub: the dispatch seam for ARM hosts.
//
// The registration, runtime selection, --cost-backend plumbing, and the
// cross-backend differential harness are all backend-agnostic, so an ARM
// port only needs to fill in vectorized reuse/arithmetic passes here under
// the same bit-identity contract as backend_avx2.cpp (2-wide float64x2_t
// lanes, conditional multiplies as bit-selected {trip, 1.0} operands, no
// FMA contraction). Until then the stub delegates to the shared scalar
// kernels: selecting "neon" on an ARM build is correct, just not yet
// faster.

#include "cost/backend.hpp"

#if defined(__ARM_NEON) && !defined(NAAS_FORCE_SCALAR)

#include "cost/backend_kernels.hpp"

namespace naas::cost {
namespace {

class NeonBackend final : public Backend {
 public:
  const char* name() const override { return "neon"; }

  void reuse_pass(const LayerContext& ctx,
                  const BatchColumns& cols) const override {
    for (std::size_t j = 0; j < cols.count; ++j)
      kernels::reuse_slot(ctx, cols, j);
  }

  void arithmetic_pass(const LayerContext& ctx,
                       const BatchColumns& cols) const override {
    for (std::size_t j = 0; j < cols.count; ++j)
      kernels::arith_slot(ctx, cols, j);
  }
};

const NeonBackend g_neon;

}  // namespace

const Backend* neon_backend_or_null() { return &g_neon; }

}  // namespace naas::cost

#else  // !__ARM_NEON || NAAS_FORCE_SCALAR

namespace naas::cost {

const Backend* neon_backend_or_null() { return nullptr; }

}  // namespace naas::cost

#endif
