#include "cost/energy_model.hpp"

#include <cmath>

namespace naas::cost {

double EnergyModel::l1_access_pj(long long l1_bytes) const {
  return l1_base_pj +
         l1_sqrt_coef_pj * std::sqrt(static_cast<double>(l1_bytes) / 1024.0);
}

double EnergyModel::l2_access_pj(long long l2_bytes) const {
  return l2_base_pj +
         l2_sqrt_coef_pj * std::sqrt(static_cast<double>(l2_bytes) / 1024.0);
}

}  // namespace naas::cost
