#pragma once

namespace naas::cost {

/// Per-access energy parameters (picojoules), int8 datapath.
///
/// The ladder follows the well-known Eyeriss/MAESTRO relative costs at
/// ~45nm: a register-file access costs about one MAC, a ~100KB SRAM about
/// 6x, DRAM about 200x. SRAM energy grows with capacity following a
/// CACTI-like square-root law: E(bytes) = base + coef * sqrt(KB). Absolute
/// values are representative, not calibrated to any single silicon — EDP
/// *ratios* (the paper's reported quantities) are what the model preserves.
struct EnergyModel {
  double mac_pj = 1.0;            ///< one multiply-accumulate
  double noc_hop_pj = 0.8;        ///< one word over one NoC link/hop
  double dram_pj_per_byte = 200.0;

  double l1_base_pj = 0.6;        ///< L1 access = base + coef*sqrt(KB)
  double l1_sqrt_coef_pj = 0.4;
  double l2_base_pj = 1.2;        ///< L2 access = base + coef*sqrt(KB)
  double l2_sqrt_coef_pj = 0.6;

  /// Energy of one L1 (per-PE scratch pad) byte access for a pad of
  /// `l1_bytes` capacity.
  double l1_access_pj(long long l1_bytes) const;

  /// Energy of one L2 (shared buffer) byte access for `l2_bytes` capacity.
  double l2_access_pj(long long l2_bytes) const;
};

}  // namespace naas::cost
