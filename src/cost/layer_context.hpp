#pragma once

#include <cstdint>

#include "arch/accelerator.hpp"
#include "cost/energy_model.hpp"
#include "nn/layer.hpp"

namespace naas::cost {

/// Which closed form the input-tensor spatial multiplier takes for one
/// array axis. The switch in input_axis_multiplier depends only on the
/// axis binding and the layer kind — both fixed per (arch, layer) — so the
/// batched evaluator resolves it once per context instead of once per
/// candidate.
enum class AxisInputKind : std::uint8_t {
  kOne,     ///< broadcast (multiplier 1)
  kUsed,    ///< unicast (multiplier = active PEs on the axis)
  kHaloYp,  ///< sliding-window overlap along output rows
  kHaloXp,  ///< sliding-window overlap along output columns
  kHaloR,   ///< kernel rows split across PEs
  kHaloS,   ///< kernel columns split across PEs
};

/// One active array axis with every per-candidate-invariant property the
/// traffic formulas consult pre-resolved.
struct AxisContext {
  nn::Dim dim = nn::Dim::kK;     ///< dimension this axis parallelizes
  std::size_t dim_index = 0;     ///< static_cast index of `dim`
  int size = 1;                  ///< physical PEs along the axis
  AxisInputKind input_kind = AxisInputKind::kUsed;
  bool weight_relevant = false;  ///< unicast axis for the weight tensor
  bool output_relevant = false;  ///< unicast axis for the output tensor
  bool reduction = false;        ///< axis combines psums in-network
};

/// Precomputed per-(accelerator, layer) invariants of the cost model: the
/// shared "row" of a whole CMA generation's evaluations. Everything a
/// candidate mapping does NOT control is resolved here once — clamped
/// dimension bounds, spatial partitioning extents, tensor relevance masks,
/// axis classifications, energy coefficients (the only transcendental
/// math, two sqrt calls, lives here, keeping the per-candidate loops
/// transcendental-free) — so CostModel::evaluate_batch runs pure
/// arithmetic over the candidates.
///
/// Self-contained: the context copies what it needs and holds no pointers
/// into the arch/layer it was built from.
struct LayerContext {
  /// Binds (arch, layer) under `energy`'s coefficients. Prefer
  /// CostModel::make_context, which passes the model's energy parameters.
  LayerContext(const arch::ArchConfig& arch, const nn::Workload& layer,
               const EnergyModel& energy);

  // ---- Validity gates (checked before any per-candidate work) ----------
  /// arch.valid() — false short-circuits every candidate to the legacy
  /// "invalid accelerator configuration" report.
  bool arch_valid = false;
  /// Structurally valid but numerically unusable: overflowing PE count or
  /// non-positive bandwidth would turn pe_utilization / noc_cycles /
  /// dram_cycles into NaN/inf garbage. Such configs now yield an illegal
  /// report (`degenerate_reason`) instead of leaking NaNs.
  bool degenerate = false;
  const char* degenerate_reason = "";

  // ---- Layer shape ------------------------------------------------------
  nn::LayerKind kind = nn::LayerKind::kConv;
  bool depthwise = false;
  /// Weight operand indexed by N (attention): the weight tile footprint
  /// scales by the batch tile and gets no cross-batch reuse.
  bool batched_weight = false;
  int stride = 1;
  int dim_size[nn::kNumDims] = {1, 1, 1, 1, 1, 1, 1};
  double macs = 0;  ///< layer MACs as double (the model's working type)

  // ---- Spatial partitioning --------------------------------------------
  /// parallel_extent(d) per dimension, widened so a hostile config cannot
  /// overflow int before the degenerate gate rejects it.
  long long par_extent[nn::kNumDims] = {1, 1, 1, 1, 1, 1, 1};
  int num_axes = 0;
  AxisContext axes[arch::kMaxArrayDims];
  double pes = 1;          ///< total PEs (== double(arch.num_pes()))
  double array_depth = 0;  ///< sum of axis sizes (pipeline fill term)

  // ---- Buffers and bandwidths ------------------------------------------
  long long l1_bytes = 1;
  long long l2_bytes = 1;
  double noc_bw = 1;   ///< words/cycle, as the division operand
  double dram_bw = 1;

  // ---- Tensor relevance masks (bit d => dim d relevant to the tensor;
  // reduction is pre-resolved per axis in AxisContext) -------------------
  std::uint8_t input_mask = 0;
  std::uint8_t weight_mask = 0;
  std::uint8_t output_mask = 0;

  // ---- Compulsory DRAM floors (bytes) ----------------------------------
  /// Mask-aware full-tensor byte sizes: what each operand must move across
  /// the DRAM port at least once under ANY legal mapping (reload factors
  /// only ever multiply a tile footprint by at least the relevant trip
  /// counts, and ceil(size/tile) * tile >= size dimension by dimension;
  /// the input floor uses the same halo extent formula as the footprint, so
  /// the bound survives spatial/kernel tiling too). These are exact lower
  /// bounds by construction — the analytical surrogate
  /// (search/surrogate.*) builds its roofline from them, and a bound that
  /// overshot the true cost would let pruning change search results.
  double compulsory_in_bytes = 0;
  double compulsory_w_bytes = 0;
  double compulsory_out_bytes = 0;
  double compulsory_bytes = 0;  ///< sum of the three operand floors

  // ---- Energy coefficients (pJ) ----------------------------------------
  double mac_energy_pj = 0;      ///< macs * mac_pj, fully precomputed
  double l1_access_pj = 0;       ///< per byte, capacity-dependent
  double l2_access_pj = 0;
  double noc_hop_pj = 0;
  double dram_pj_per_byte = 0;
};

}  // namespace naas::cost
