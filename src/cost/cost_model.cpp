#include "cost/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cost/reuse.hpp"
#include "mapping/footprint.hpp"
#include "mapping/legality.hpp"

namespace naas::cost {
namespace {

using mapping::TileSizes;
using mapping::tile_of;

long long ceil_div(long long a, long long b) { return (a + b - 1) / b; }

/// Everything the traffic formulas need about one array axis.
struct AxisInfo {
  nn::Dim dim = nn::Dim::kK;  ///< dimension this axis parallelizes
  int size = 1;               ///< physical PEs along the axis
  int used = 1;               ///< active PEs along the axis for this tile
};

/// Spatial traffic multiplier for the *input* tensor along one axis.
/// Unlike weights/outputs, input slices of neighboring PEs overlap when the
/// axis parallelizes a spatial dimension (sliding-window halo), and real
/// multicast NoCs (Eyeriss's diagonal delivery) exploit that overlap. The
/// multiplier is the ratio of the union extent to the per-PE extent,
/// clamped to [1, used].
double input_axis_multiplier(const nn::ConvLayer& layer, const TileSizes& t2,
                             const TileSizes& share, const AxisInfo& axis) {
  const bool dw = layer.kind == nn::LayerKind::kDepthwiseConv;
  const double used = axis.used;
  // Distinct input rows read for `out` outputs with `kr` kernel rows in the
  // tile (see footprint.cpp: span capped when stride exceeds kernel rows).
  const auto extent = [&layer](int out, int kr) {
    return static_cast<double>((out - 1) * std::min(layer.stride, kr) + kr);
  };
  switch (axis.dim) {
    case nn::Dim::kN: return used;
    case nn::Dim::kK: return dw ? used : 1.0;  // broadcast over K for conv
    case nn::Dim::kC: return dw ? 1.0 : used;
    case nn::Dim::kYp: {
      const double union_rows = extent(tile_of(t2, nn::Dim::kYp),
                                       tile_of(t2, nn::Dim::kR));
      const double pe_rows = extent(tile_of(share, nn::Dim::kYp),
                                    tile_of(t2, nn::Dim::kR));
      return std::clamp(union_rows / pe_rows, 1.0, used);
    }
    case nn::Dim::kXp: {
      const double union_cols = extent(tile_of(t2, nn::Dim::kXp),
                                       tile_of(t2, nn::Dim::kS));
      const double pe_cols = extent(tile_of(share, nn::Dim::kXp),
                                    tile_of(t2, nn::Dim::kS));
      return std::clamp(union_cols / pe_cols, 1.0, used);
    }
    case nn::Dim::kR: {
      const double union_rows = extent(tile_of(t2, nn::Dim::kYp),
                                       tile_of(t2, nn::Dim::kR));
      const double pe_rows = extent(tile_of(t2, nn::Dim::kYp),
                                    tile_of(share, nn::Dim::kR));
      return std::clamp(union_rows / pe_rows, 1.0, used);
    }
    case nn::Dim::kS: {
      const double union_cols = extent(tile_of(t2, nn::Dim::kXp),
                                       tile_of(t2, nn::Dim::kS));
      const double pe_cols = extent(tile_of(t2, nn::Dim::kXp),
                                    tile_of(share, nn::Dim::kS));
      return std::clamp(union_cols / pe_cols, 1.0, used);
    }
  }
  return used;
}

}  // namespace

CostReport CostModel::evaluate(const arch::ArchConfig& arch,
                               const nn::ConvLayer& layer,
                               const mapping::Mapping& m) const {
  CostReport rep;
  const auto legality = mapping::check(m, layer, arch);
  if (!arch.valid()) {
    rep.illegal_reason = "invalid accelerator configuration";
    rep.edp = std::numeric_limits<double>::infinity();
    return rep;
  }
  if (!legality.legal) {
    rep.illegal_reason = legality.reason;
    rep.edp = std::numeric_limits<double>::infinity();
    return rep;
  }
  rep.legal = true;

  const nn::LayerKind kind = layer.kind;

  // ---- Tile geometry -------------------------------------------------
  TileSizes t2 = m.dram.tile;   // L2 tile
  TileSizes t1 = m.pe.tile;     // per-PE (L1) tile
  TileSizes share{};            // per-PE share of the L2 tile
  TripCounts n2{};              // DRAM-level trips: ceil(dim / t2)
  TripCounts n1{};              // per-PE temporal trips: ceil(share / t1)
  for (nn::Dim d : nn::all_dims()) {
    const auto i = static_cast<std::size_t>(static_cast<int>(d));
    t2[i] = std::clamp(t2[i], 1, layer.dim_size(d));
    share[i] = mapping::pe_share(layer, arch, t2, d);
    t1[i] = std::clamp(t1[i], 1, share[i]);
    n2[i] = ceil_div(layer.dim_size(d), t2[i]);
    n1[i] = ceil_div(share[i], t1[i]);
  }

  // Active PEs per axis for a full L2 tile.
  AxisInfo axes[arch::kMaxArrayDims];
  double active_pes = 1.0;
  for (int a = 0; a < arch.num_array_dims; ++a) {
    AxisInfo& ax = axes[a];
    ax.dim = arch.parallel_dims[static_cast<std::size_t>(a)];
    ax.size = arch.array_dims[static_cast<std::size_t>(a)];
    const auto i = static_cast<std::size_t>(static_cast<int>(ax.dim));
    ax.used = static_cast<int>(ceil_div(t2[i], share[i]));
    active_pes *= ax.used;
  }

  const auto fp2 = mapping::tile_footprint(layer, t2);
  const auto fp1 = mapping::tile_footprint(layer, t1);

  // Total L2-tile phases (every DRAM-level iteration is one phase).
  double phases = 1.0;
  for (nn::Dim d : nn::all_dims())
    phases *= static_cast<double>(trips_of(n2, d));

  // ---- Level 1: DRAM <-> L2 ------------------------------------------
  const double in_dram =
      reload_factor(m.dram.order, n2, Tensor::kInput, kind) *
      static_cast<double>(fp2.input);
  const double w_dram =
      reload_factor(m.dram.order, n2, Tensor::kWeight, kind) *
      static_cast<double>(fp2.weight);
  const double out_factor2 =
      reload_factor(m.dram.order, n2, Tensor::kOutput, kind);
  const double out_distinct2 = distinct_tiles(n2, Tensor::kOutput, kind);
  const double out_writes_dram =
      out_factor2 * static_cast<double>(fp2.output);
  const double out_reads_dram =
      (out_factor2 - out_distinct2) * static_cast<double>(fp2.output);

  rep.dram_bytes = in_dram + w_dram + out_writes_dram + out_reads_dram;
  const double l2_fill_writes = in_dram + w_dram + out_reads_dram;
  const double l2_drain_reads = out_writes_dram;

  // ---- Level 2: L2 <-> PE array (per phase, per PE, then scaled) ------
  const double per_pe_in =
      reload_factor(m.pe.order, n1, Tensor::kInput, kind) *
      static_cast<double>(fp1.input);
  const double per_pe_w =
      reload_factor(m.pe.order, n1, Tensor::kWeight, kind) *
      static_cast<double>(fp1.weight);
  const double out_factor1 =
      reload_factor(m.pe.order, n1, Tensor::kOutput, kind);
  const double out_distinct1 = distinct_tiles(n1, Tensor::kOutput, kind);
  const double per_pe_out_w = out_factor1 * static_cast<double>(fp1.output);
  const double per_pe_out_r =
      (out_factor1 - out_distinct1) * static_cast<double>(fp1.output);

  // Spatial multipliers: unicast axes multiply unique L2 reads, broadcast
  // axes do not; inputs get the halo-aware multiplier.
  double in_mult = 1.0, w_mult = 1.0, out_mult = 1.0;
  double fanout = 1.0;        // total active PEs (delivery energy)
  double red_extent = 1.0;    // PEs combined by in-network reduction
  for (int a = 0; a < arch.num_array_dims; ++a) {
    const AxisInfo& ax = axes[a];
    fanout *= ax.used;
    in_mult *= input_axis_multiplier(layer, t2, share, ax);
    w_mult *= is_relevant(Tensor::kWeight, ax.dim, kind)
                  ? static_cast<double>(ax.used)
                  : 1.0;
    if (is_relevant(Tensor::kOutput, ax.dim, kind)) {
      out_mult *= static_cast<double>(ax.used);
    } else if (is_reduction(ax.dim, kind)) {
      red_extent *= static_cast<double>(ax.used);
    }
  }

  const double l2_in_reads = phases * per_pe_in * in_mult;
  const double l2_w_reads = phases * per_pe_w * w_mult;
  const double l2_out_writes = phases * per_pe_out_w * out_mult;
  const double l2_out_reads = phases * per_pe_out_r * out_mult;

  rep.l2_read_bytes = l2_in_reads + l2_w_reads + l2_out_reads + l2_drain_reads;
  rep.l2_write_bytes = l2_out_writes + l2_fill_writes;

  // NoC delivery energy: every active PE receives its operand stream
  // (multicast delivers the same word to many PEs); psum reduction adds
  // (red_extent - 1) hops per reduced output byte.
  rep.noc_delivery_bytes =
      phases * (per_pe_in + per_pe_w + per_pe_out_r + per_pe_out_w) * fanout;
  rep.reduction_hop_bytes = l2_out_writes * (red_extent - 1.0);

  // ---- Level 3: registers inside the PE -------------------------------
  TripCounts reg_trips{};
  for (nn::Dim d : nn::all_dims())
    reg_trips[static_cast<std::size_t>(static_cast<int>(d))] =
        tile_of(t1, d);
  rep.macs = static_cast<double>(layer.macs());
  const double in_rr = register_reuse(m.pe_order, reg_trips, Tensor::kInput, kind);
  const double w_rr =
      register_reuse(m.pe_order, reg_trips, Tensor::kWeight, kind);
  const double out_rr =
      register_reuse(m.pe_order, reg_trips, Tensor::kOutput, kind);
  const double l1_in_reads = rep.macs / in_rr;
  const double l1_w_reads = rep.macs / w_rr;
  const double l1_out_rw = 2.0 * rep.macs / out_rr;
  // Data entering L1 from the NoC and psums drained back out.
  const double l1_fill = phases * (per_pe_in + per_pe_w + per_pe_out_r) * fanout;
  const double l1_drain = phases * per_pe_out_w * fanout;
  rep.l1_access_bytes =
      l1_in_reads + l1_w_reads + l1_out_rw + l1_fill + l1_drain;

  // ---- Latency ---------------------------------------------------------
  // Each PE runs its padded temporal iteration space at 1 MAC/cycle; ceil
  // padding and idle axes are the utilization losses that array-shape
  // search exploits.
  double per_pe_iters = 1.0;
  for (nn::Dim d : nn::all_dims()) {
    const auto i = static_cast<std::size_t>(static_cast<int>(d));
    per_pe_iters *= static_cast<double>(n1[i]) * static_cast<double>(t1[i]);
  }
  rep.compute_cycles = phases * per_pe_iters;
  rep.noc_cycles = (rep.l2_read_bytes + rep.l2_write_bytes) /
                   static_cast<double>(arch.noc_bandwidth);
  rep.dram_cycles = rep.dram_bytes / static_cast<double>(arch.dram_bandwidth);
  // Pipeline fill: first L2 tile load plus systolic array depth.
  double array_depth = 0.0;
  for (int a = 0; a < arch.num_array_dims; ++a)
    array_depth += axes[a].size;
  const double fill_cycles =
      static_cast<double>(fp2.total()) /
          static_cast<double>(arch.dram_bandwidth) +
      array_depth;
  rep.latency_cycles =
      std::max({rep.compute_cycles, rep.noc_cycles, rep.dram_cycles}) +
      fill_cycles;

  rep.pe_utilization =
      rep.macs / (static_cast<double>(arch.num_pes()) * rep.compute_cycles);

  // ---- Energy ----------------------------------------------------------
  const EnergyModel& em = energy_;
  rep.energy.mac_pj = rep.macs * em.mac_pj;
  rep.energy.l1_pj = rep.l1_access_bytes * em.l1_access_pj(arch.l1_bytes);
  rep.energy.l2_pj = (rep.l2_read_bytes + rep.l2_write_bytes) *
                     em.l2_access_pj(arch.l2_bytes);
  rep.energy.noc_pj =
      (rep.noc_delivery_bytes + rep.reduction_hop_bytes) * em.noc_hop_pj;
  rep.energy.dram_pj = rep.dram_bytes * em.dram_pj_per_byte;
  rep.energy_nj = rep.energy.total_pj() / 1000.0;
  rep.edp = rep.energy_nj * rep.latency_cycles;
  return rep;
}

}  // namespace naas::cost
