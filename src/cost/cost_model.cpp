#include "cost/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cost/backend.hpp"
#include "mapping/footprint.hpp"
#include "mapping/legality.hpp"

namespace naas::cost {
namespace {

using mapping::TileSizes;
using mapping::tile_of;

constexpr std::size_t kD = static_cast<std::size_t>(nn::kNumDims);

long long ceil_div(long long a, long long b) { return (a + b - 1) / b; }

/// Workspace for one evaluate_batch call. Per-dimension geometry arrays
/// (tiles, shares, trip counts) are candidate-major — slot j's seven dims
/// share a cache line, matching the per-candidate scans of stage 2 — while
/// every stage-3 operand is one flat slot-indexed column, the
/// struct-of-arrays layout the vector pass streams through. Thread-local
/// so the search
/// fan-out reuses one allocation per worker across every generation; all
/// slots consumed by a call are written by that call first, so reuse never
/// leaks state between batches (determinism is preserved).
struct BatchScratch {
  // Geometry (stage 1): clamped tiles, per-PE shares, trip counts.
  std::vector<int> t2, t1, shr;      // kD * n ints
  std::vector<double> n2, n1;        // kD * n doubles
  // Loop orders staged as dim-index columns (kD * n ints, outermost
  // first) so the backend reuse kernels never touch mapping::Mapping.
  std::vector<int> ord2, ord1, ordr;
  // Tile footprints as the doubles the traffic formulas consume.
  std::vector<double> fp2_in, fp2_w, fp2_out, fp2_tot;
  std::vector<double> fp1_in, fp1_w, fp1_out;
  std::vector<double> used;          // kMaxArrayDims * n active-PE counts
  // Order-dependent factors (stage 2).
  std::vector<double> phases, per_pe_iters;
  std::vector<double> in_f2, w_f2, out_f2, out_d2;
  std::vector<double> in_f1, w_f1, out_f1, out_d1;
  std::vector<double> in_rr, w_rr, out_rr;
  std::vector<double> in_mult, w_mult, out_mult, red_extent, fanout;
  // Flat arithmetic outputs (stage 3).
  std::vector<double> dram_bytes, l2_read, l2_write, l1_access;
  std::vector<double> noc_delivery, red_hops;
  std::vector<double> compute_cyc, noc_cyc, dram_cyc, latency, util;
  std::vector<double> e_l1, e_l2, e_noc, e_dram, e_total_nj, edp;
  std::vector<std::size_t> live;     // slot -> original candidate index

  void reserve(std::size_t n) {
    t2.resize(kD * n);
    t1.resize(kD * n);
    shr.resize(kD * n);
    n2.resize(kD * n);
    n1.resize(kD * n);
    ord2.resize(kD * n);
    ord1.resize(kD * n);
    ordr.resize(kD * n);
    for (auto* v : {&fp2_in, &fp2_w, &fp2_out, &fp2_tot, &fp1_in, &fp1_w,
                    &fp1_out, &phases, &per_pe_iters, &in_f2, &w_f2, &out_f2,
                    &out_d2, &in_f1, &w_f1, &out_f1, &out_d1, &in_rr, &w_rr,
                    &out_rr, &in_mult, &w_mult, &out_mult, &red_extent,
                    &fanout, &dram_bytes, &l2_read, &l2_write, &l1_access,
                    &noc_delivery, &red_hops, &compute_cyc, &noc_cyc,
                    &dram_cyc, &latency, &util, &e_l1, &e_l2, &e_noc, &e_dram,
                    &e_total_nj, &edp})
      v->resize(n);
    used.resize(static_cast<std::size_t>(arch::kMaxArrayDims) * n);
    live.clear();
    live.reserve(n);
  }
};

thread_local BatchScratch tls_scratch;

void fill_illegal(CostReport& rep, std::string reason) {
  rep = CostReport{};
  rep.illegal_reason = std::move(reason);
  rep.edp = std::numeric_limits<double>::infinity();
}

/// is_valid_order (mapping.cpp) as a branch-light bitmask: seven in-range
/// entries OR to exactly 0x7f iff they are a permutation.
bool order_is_permutation(const mapping::LoopOrder& order) {
  unsigned mask = 0;
  for (nn::Dim dim : order) {
    const auto i = static_cast<unsigned>(static_cast<int>(dim));
    if (i >= kD) return false;
    mask |= 1u << i;
  }
  return mask == (1u << kD) - 1u;
}

/// Distinct input rows/cols read for `out` outputs with `kr` kernel rows —
/// the extent lambda of the scalar input_axis_multiplier.
double halo_extent(int stride, int out, int kr) {
  return static_cast<double>((out - 1) * std::min(stride, kr) + kr);
}

/// input_axis_multiplier (scalar path) for the four halo kinds — the
/// caller resolves kOne/kUsed inline and only dispatches here when an
/// axis splits a spatial or kernel dimension.
double input_multiplier(const LayerContext& ctx, const AxisContext& ax,
                        const int* t2_row, const int* shr_row, double used) {
  const auto at = [](const int* row, nn::Dim d) {
    return row[static_cast<std::size_t>(static_cast<int>(d))];
  };
  switch (ax.input_kind) {
    case AxisInputKind::kHaloYp: {
      const double union_rows =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kYp), at(t2_row, nn::Dim::kR));
      const double pe_rows =
          halo_extent(ctx.stride, at(shr_row, nn::Dim::kYp), at(t2_row, nn::Dim::kR));
      return std::clamp(union_rows / pe_rows, 1.0, used);
    }
    case AxisInputKind::kHaloXp: {
      const double union_cols =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kXp), at(t2_row, nn::Dim::kS));
      const double pe_cols =
          halo_extent(ctx.stride, at(shr_row, nn::Dim::kXp), at(t2_row, nn::Dim::kS));
      return std::clamp(union_cols / pe_cols, 1.0, used);
    }
    case AxisInputKind::kHaloR: {
      const double union_rows =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kYp), at(t2_row, nn::Dim::kR));
      const double pe_rows =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kYp), at(shr_row, nn::Dim::kR));
      return std::clamp(union_rows / pe_rows, 1.0, used);
    }
    case AxisInputKind::kHaloS: {
      const double union_cols =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kXp), at(t2_row, nn::Dim::kS));
      const double pe_cols =
          halo_extent(ctx.stride, at(t2_row, nn::Dim::kXp), at(shr_row, nn::Dim::kS));
      return std::clamp(union_cols / pe_cols, 1.0, used);
    }
    default: break;  // kOne/kUsed never reach here (caller fast path)
  }
  return used;
}

/// Legality + geometry for one candidate: the mapping::check sequence with
/// the arch-invariant work (dim bounds, parallel extents, buffer caps)
/// read from the context, fused with the clamp/share/trip-count setup of
/// the scalar evaluator so footprints are computed once, not twice.
/// On success stage-1 columns of slot `j` are filled and true is returned;
/// on failure `rep` carries the same reason string mapping::check builds.
bool stage_geometry(const LayerContext& ctx, const mapping::Mapping& m,
                    std::size_t j, BatchScratch& s, CostReport& rep) {
  if (!order_is_permutation(m.dram.order)) {
    fill_illegal(rep, mapping::kReasonDramOrder);
    return false;
  }
  if (!order_is_permutation(m.pe.order)) {
    fill_illegal(rep, mapping::kReasonPeOrder);
    return false;
  }
  if (!order_is_permutation(m.pe_order)) {
    fill_illegal(rep, mapping::kReasonRegisterOrder);
    return false;
  }
  // Stage the (validated) loop orders as plain dim-index columns so the
  // backend reuse kernels scan flat ints instead of mapping::LoopOrder.
  for (std::size_t i = 0; i < kD; ++i) {
    s.ord2[j * kD + i] = static_cast<int>(m.dram.order[i]);
    s.ord1[j * kD + i] = static_cast<int>(m.pe.order[i]);
    s.ordr[j * kD + i] = static_cast<int>(m.pe_order[i]);
  }
  int t2l[kD], t1l[kD], shrl[kD];
  for (nn::Dim dim : nn::all_dims()) {
    const auto d = static_cast<std::size_t>(static_cast<int>(dim));
    const int size = ctx.dim_size[d];
    // TileSizes is indexed by the dim's enum value (tile_of's contract);
    // direct indexing keeps the 14 hottest loads of the pass call-free.
    const int t2_raw = m.dram.tile[d];
    if (t2_raw < 1 || t2_raw > size) {
      fill_illegal(rep, mapping::reason_dram_tile_range(dim));
      return false;
    }
    const int t1_raw = m.pe.tile[d];
    // pe_share(layer, arch, m.dram.tile, dim) with the clamp a no-op
    // (t2_raw is in range) and the extent a context lookup. The trivial
    // operand cases skip the integer division (the dominant ALU cost of
    // this pass) with exactly the value ceil_div would produce: most dims
    // have extent 1, and grown tiles sit at 1 or at the bound.
    const long long ext = ctx.par_extent[d];
    const long long share =
        ext == 1 ? t2_raw : std::max<long long>(1, ceil_div(t2_raw, ext));
    if (t1_raw < 1 || t1_raw > share) {
      fill_illegal(rep, mapping::reason_pe_tile_share(dim));
      return false;
    }
    // Range-checked raw tiles equal their clamped values, so the scalar
    // evaluator's re-clamp is the identity here.
    t2l[d] = t2_raw;
    shrl[d] = static_cast<int>(share);
    t1l[d] = t1_raw;
    s.n2[j * kD + d] = static_cast<double>(
        t2_raw == size ? 1
        : t2_raw == 1  ? size
                       : ceil_div(size, t2_raw));
    s.n1[j * kD + d] = static_cast<double>(
        t1_raw == share ? 1
        : t1_raw == 1   ? share
                        : ceil_div(share, t1_raw));
  }

  // Tile footprints, once per level (the scalar path derives them twice:
  // in mapping::check and again in the traffic section). In-range tiles
  // make tile_footprint's internal clamp a no-op, so the bytes are
  // identical to both of the scalar computations.
  const auto footprint = [&](const int* tiles, double* in, double* w,
                             double* out_fp) {
    const auto at = [&](nn::Dim d) {
      return static_cast<long long>(
          tiles[static_cast<std::size_t>(static_cast<int>(d))]);
    };
    const long long tn = at(nn::Dim::kN);
    const long long tk = at(nn::Dim::kK);
    const long long tc = at(nn::Dim::kC);
    const long long typ = at(nn::Dim::kYp);
    const long long txp = at(nn::Dim::kXp);
    const long long tr = at(nn::Dim::kR);
    const long long ts = at(nn::Dim::kS);
    const long long in_rows =
        (typ - 1) * std::min<long long>(ctx.stride, tr) + tr;
    const long long in_cols =
        (txp - 1) * std::min<long long>(ctx.stride, ts) + ts;
    const long long in_ch = ctx.depthwise ? tk : tc;
    const long long fi = tn * in_ch * in_rows * in_cols *
                         mapping::kBytesPerElement;
    // Attention's weight operand is batch-indexed (see KindSemantics), so
    // its tile scales with the batch tile; every other kind multiplies by 1
    // and stays integer-identical to the pre-refactor formula.
    const long long fw = (ctx.batched_weight ? tn : 1) * tk * tc * tr * ts *
                         mapping::kBytesPerElement;
    const long long fo = tn * tk * typ * txp * mapping::kBytesPerElement;
    *in = static_cast<double>(fi);
    *w = static_cast<double>(fw);
    *out_fp = static_cast<double>(fo);
    return fi + fw + fo;
  };

  const long long fp1_total =
      footprint(t1l, &s.fp1_in[j], &s.fp1_w[j], &s.fp1_out[j]);
  if (fp1_total > ctx.l1_bytes) {
    fill_illegal(rep, mapping::reason_l1_overflow(fp1_total, ctx.l1_bytes));
    return false;
  }
  const long long fp2_total =
      footprint(t2l, &s.fp2_in[j], &s.fp2_w[j], &s.fp2_out[j]);
  if (fp2_total > ctx.l2_bytes) {
    fill_illegal(rep, mapping::reason_l2_overflow(fp2_total, ctx.l2_bytes));
    return false;
  }
  s.fp2_tot[j] = static_cast<double>(fp2_total);

  for (std::size_t d = 0; d < kD; ++d) {
    s.t2[j * kD + d] = t2l[d];
    s.shr[j * kD + d] = shrl[d];
    s.t1[j * kD + d] = t1l[d];
  }

  // Active PEs per axis for a full L2 tile (share 1 ⇒ every PE slice is
  // one element wide ⇒ used == t2, no division).
  for (int a = 0; a < ctx.num_axes; ++a) {
    const std::size_t d = ctx.axes[a].dim_index;
    s.used[j * static_cast<std::size_t>(arch::kMaxArrayDims) +
           static_cast<std::size_t>(a)] =
        static_cast<double>(shrl[d] == 1 ? t2l[d]
                                         : ceil_div(t2l[d], shrl[d]));
  }
  return true;
}

}  // namespace

void CostModel::evaluate_batch(const LayerContext& ctx,
                               std::span<const mapping::Mapping> mappings,
                               std::span<CostReport> reports) const {
  assert(mappings.size() == reports.size());
  const std::size_t n = mappings.size();
  BatchScratch& s = tls_scratch;
  s.reserve(n);

  // ---- Stage 1: legality + tile geometry (per candidate, short-circuit
  // order identical to mapping::check; survivors are compacted into live
  // slots so the later passes touch contiguous memory) -------------------
  for (std::size_t i = 0; i < n; ++i) {
    CostReport& rep = reports[i];
    if (!ctx.arch_valid) {
      fill_illegal(rep, "invalid accelerator configuration");
      continue;
    }
    if (ctx.degenerate) {
      fill_illegal(rep, ctx.degenerate_reason);
      continue;
    }
    const std::size_t j = s.live.size();
    if (stage_geometry(ctx, mappings[i], j, s, rep)) s.live.push_back(i);
  }
  const std::size_t m = s.live.size();

  // ---- Stage 2 (shared prep): candidate-local products and spatial
  // multipliers that stay in front of the backend seam — they index
  // context axis metadata and tile geometry, not the SoA reuse columns. --
  for (std::size_t j = 0; j < m; ++j) {
    const double* n2_row = &s.n2[j * kD];
    const double* n1_row = &s.n1[j * kD];
    const int* t1_row = &s.t1[j * kD];
    const int* t2_row = &s.t2[j * kD];
    const int* shr_row = &s.shr[j * kD];

    double phases = 1.0;
    double iters = 1.0;
    for (std::size_t d = 0; d < kD; ++d) {
      phases *= n2_row[d];
      iters *= n1_row[d] * static_cast<double>(t1_row[d]);
    }
    s.phases[j] = phases;
    s.per_pe_iters[j] = iters;

    // Spatial multipliers: unicast axes multiply unique L2 reads, broadcast
    // axes do not; inputs get the halo-aware multiplier.
    double in_mult = 1.0, w_mult = 1.0, out_mult = 1.0;
    double fanout = 1.0;      // total active PEs (delivery energy)
    double red_extent = 1.0;  // PEs combined by in-network reduction
    for (int a = 0; a < ctx.num_axes; ++a) {
      const AxisContext& ax = ctx.axes[a];
      const double used =
          s.used[j * static_cast<std::size_t>(arch::kMaxArrayDims) +
                 static_cast<std::size_t>(a)];
      fanout *= used;
      // Broadcast/unicast axes resolve without touching tile data; only
      // the four halo kinds (spatial/kernel axes) need the full formula.
      if (ax.input_kind == AxisInputKind::kUsed) {
        in_mult *= used;
      } else if (ax.input_kind != AxisInputKind::kOne) {
        in_mult *= input_multiplier(ctx, ax, t2_row, shr_row, used);
      }
      w_mult *= ax.weight_relevant ? used : 1.0;
      if (ax.output_relevant) {
        out_mult *= used;
      } else if (ax.reduction) {
        red_extent *= used;
      }
    }
    s.in_mult[j] = in_mult;
    s.w_mult[j] = w_mult;
    s.out_mult[j] = out_mult;
    s.red_extent[j] = red_extent;
    s.fanout[j] = fanout;
  }

  // ---- Stages 2b + 3 on the pluggable backend: mask-driven reuse scans,
  // then the flat traffic/latency/energy arithmetic. Every backend is
  // byte-identical to scalar by contract, so this dispatch never changes a
  // report — only how fast the columns fill. ----------------------------
  BatchColumns cols;
  cols.count = m;
  cols.ord2 = s.ord2.data();
  cols.ord1 = s.ord1.data();
  cols.ordr = s.ordr.data();
  cols.n2 = s.n2.data();
  cols.n1 = s.n1.data();
  cols.t1 = s.t1.data();
  cols.in_f2 = s.in_f2.data();
  cols.w_f2 = s.w_f2.data();
  cols.out_f2 = s.out_f2.data();
  cols.out_d2 = s.out_d2.data();
  cols.in_f1 = s.in_f1.data();
  cols.w_f1 = s.w_f1.data();
  cols.out_f1 = s.out_f1.data();
  cols.out_d1 = s.out_d1.data();
  cols.in_rr = s.in_rr.data();
  cols.w_rr = s.w_rr.data();
  cols.out_rr = s.out_rr.data();
  cols.phases = s.phases.data();
  cols.per_pe_iters = s.per_pe_iters.data();
  cols.fp2_in = s.fp2_in.data();
  cols.fp2_w = s.fp2_w.data();
  cols.fp2_out = s.fp2_out.data();
  cols.fp2_tot = s.fp2_tot.data();
  cols.fp1_in = s.fp1_in.data();
  cols.fp1_w = s.fp1_w.data();
  cols.fp1_out = s.fp1_out.data();
  cols.in_mult = s.in_mult.data();
  cols.w_mult = s.w_mult.data();
  cols.out_mult = s.out_mult.data();
  cols.red_extent = s.red_extent.data();
  cols.fanout = s.fanout.data();
  cols.dram_bytes = s.dram_bytes.data();
  cols.l2_read = s.l2_read.data();
  cols.l2_write = s.l2_write.data();
  cols.l1_access = s.l1_access.data();
  cols.noc_delivery = s.noc_delivery.data();
  cols.red_hops = s.red_hops.data();
  cols.compute_cyc = s.compute_cyc.data();
  cols.noc_cyc = s.noc_cyc.data();
  cols.dram_cyc = s.dram_cyc.data();
  cols.latency = s.latency.data();
  cols.util = s.util.data();
  cols.e_l1 = s.e_l1.data();
  cols.e_l2 = s.e_l2.data();
  cols.e_noc = s.e_noc.data();
  cols.e_dram = s.e_dram.data();
  cols.e_total_nj = s.e_total_nj.data();
  cols.edp = s.edp.data();
  backend_->reuse_pass(ctx, cols);
  backend_->arithmetic_pass(ctx, cols);

  // ---- Stage 4: scatter into the report structs ------------------------
  for (std::size_t j = 0; j < m; ++j) {
    CostReport& rep = reports[s.live[j]];
    // compute_cycles >= 1 by construction (every factor is >= 1); keep the
    // no-NaN invariant guarded locally anyway so a degenerate evaluation
    // surfaces as an illegal reason, never as NaN utilization.
    if (!(s.compute_cyc[j] > 0.0)) {
      fill_illegal(rep, "degenerate evaluation (zero compute cycles)");
      continue;
    }
    rep.legal = true;
    rep.illegal_reason.clear();  // report slots may be reused across batches
    rep.macs = ctx.macs;
    rep.compute_cycles = s.compute_cyc[j];
    rep.noc_cycles = s.noc_cyc[j];
    rep.dram_cycles = s.dram_cyc[j];
    rep.latency_cycles = s.latency[j];
    rep.energy.mac_pj = ctx.mac_energy_pj;
    rep.energy.l1_pj = s.e_l1[j];
    rep.energy.l2_pj = s.e_l2[j];
    rep.energy.noc_pj = s.e_noc[j];
    rep.energy.dram_pj = s.e_dram[j];
    rep.energy_nj = s.e_total_nj[j];
    rep.edp = s.edp[j];
    rep.pe_utilization = s.util[j];
    rep.dram_bytes = s.dram_bytes[j];
    rep.l2_read_bytes = s.l2_read[j];
    rep.l2_write_bytes = s.l2_write[j];
    rep.l1_access_bytes = s.l1_access[j];
    rep.noc_delivery_bytes = s.noc_delivery[j];
    rep.reduction_hop_bytes = s.red_hops[j];
  }
}

CostReport CostModel::evaluate(const arch::ArchConfig& arch,
                               const nn::Workload& layer,
                               const mapping::Mapping& m) const {
  // The scalar path is the batch path at size one: same legality sequence,
  // same arithmetic, same rounding — there is exactly one implementation.
  const LayerContext ctx(arch, layer, energy_);
  CostReport rep;
  evaluate_batch(ctx, {&m, 1}, {&rep, 1});
  return rep;
}

}  // namespace naas::cost
