#pragma once

#include <string>

#include "cost/cost_model.hpp"
#include "cost/network_cost.hpp"

namespace naas::cost {

/// Human-readable multi-section report for one layer evaluation: latency
/// components, energy breakdown with percentages, traffic volumes, and
/// utilization. Used by the CLI and examples.
std::string format_report(const CostReport& report);

/// Per-layer summary table for a whole network evaluation (one row per
/// unique layer shape, scaled totals at the bottom).
std::string format_network_cost(const NetworkCost& cost);

}  // namespace naas::cost
