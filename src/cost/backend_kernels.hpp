#pragma once

// Internal header: the scalar per-slot kernels of the two backend passes.
// This is the single source of truth for the cost model's per-candidate
// arithmetic — the scalar backend loops over these, and every SIMD backend
// uses them for its remainder lanes (and must reproduce them bit-for-bit
// in its vector body). Not part of the public cost API.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "cost/backend.hpp"
#include "cost/layer_context.hpp"
#include "nn/layer.hpp"

namespace naas::cost::kernels {

inline constexpr std::size_t kD = static_cast<std::size_t>(nn::kNumDims);

/// reload_factor (reuse.cpp) for all three tensors of one temporal level
/// in a single scan, with relevance pre-reduced to bit masks. Each tensor
/// keeps its own accumulator and multiplies exactly the trips the scalar
/// routine would, in the same innermost-to-outermost sequence — fusing the
/// scans changes nothing about any tensor's rounding order. `ord` is the
/// staged loop order (dim index per position, outermost first).
inline void reload_factors_masked(const int* ord, const double* trips,
                                  std::uint8_t in_mask, std::uint8_t w_mask,
                                  std::uint8_t out_mask, double* in_f,
                                  double* w_f, double* out_f) {
  double fi = 1.0, fw = 1.0, fo = 1.0;
  bool si = false, sw = false, so = false;  // seen-relevant per tensor
  for (int i = static_cast<int>(kD) - 1; i >= 0; --i) {
    const auto d = static_cast<std::size_t>(ord[i]);
    const double trip = trips[d];
    if (trip <= 1.0) continue;  // a single-trip loop is no loop at all
    const auto bit = static_cast<std::uint8_t>(1u << d);
    // Relevant loops refetch; irrelevant loops refetch only when a
    // relevant loop sits deeper inside (otherwise: temporal reuse).
    if (in_mask & bit) {
      fi *= trip;
      si = true;
    } else if (si) {
      fi *= trip;
    }
    if (w_mask & bit) {
      fw *= trip;
      sw = true;
    } else if (sw) {
      fw *= trip;
    }
    if (out_mask & bit) {
      fo *= trip;
      so = true;
    } else if (so) {
      fo *= trip;
    }
  }
  *in_f = fi;
  *w_f = fw;
  *out_f = fo;
}

/// distinct_tiles (reuse.cpp) over staged trips: product of relevant trips
/// in canonical dim order.
inline double distinct_tiles_masked(const double* trips, std::uint8_t mask) {
  double n = 1.0;
  for (std::size_t d = 0; d < kD; ++d)
    if ((mask >> d) & 1u) n *= trips[d];
  return n;
}

/// register_reuse (reuse.cpp) for all three tensors in one scan over the
/// L1 tile sizes: a tensor accumulates trips until its first relevant
/// loop, then stops — per-tensor multiplication order is untouched.
inline void register_reuse_masked(const int* ord, const int* t1,
                                  std::uint8_t in_mask, std::uint8_t w_mask,
                                  std::uint8_t out_mask, double* in_r,
                                  double* w_r, double* out_r) {
  double ri = 1.0, rw = 1.0, ro = 1.0;
  bool di = false, dw = false, dout = false;  // hit the relevant barrier
  for (int i = static_cast<int>(kD) - 1; i >= 0; --i) {
    const auto d = static_cast<std::size_t>(ord[i]);
    const double trip = static_cast<double>(t1[d]);
    if (trip <= 1.0) continue;  // degenerate loop: neither reuse nor barrier
    const auto bit = static_cast<std::uint8_t>(1u << d);
    if (!di) {
      if (in_mask & bit) di = true; else ri *= trip;
    }
    if (!dw) {
      if (w_mask & bit) dw = true; else rw *= trip;
    }
    if (!dout) {
      if (out_mask & bit) dout = true; else ro *= trip;
    }
    if (di && dw && dout) break;
  }
  *in_r = ri;
  *w_r = rw;
  *out_r = ro;
}

/// Stage-2 reuse scans for one slot.
inline void reuse_slot(const LayerContext& ctx, const BatchColumns& c,
                       std::size_t j) {
  const double* n2_row = &c.n2[j * kD];
  const double* n1_row = &c.n1[j * kD];
  reload_factors_masked(&c.ord2[j * kD], n2_row, ctx.input_mask,
                        ctx.weight_mask, ctx.output_mask, &c.in_f2[j],
                        &c.w_f2[j], &c.out_f2[j]);
  c.out_d2[j] = distinct_tiles_masked(n2_row, ctx.output_mask);
  reload_factors_masked(&c.ord1[j * kD], n1_row, ctx.input_mask,
                        ctx.weight_mask, ctx.output_mask, &c.in_f1[j],
                        &c.w_f1[j], &c.out_f1[j]);
  c.out_d1[j] = distinct_tiles_masked(n1_row, ctx.output_mask);
  register_reuse_masked(&c.ordr[j * kD], &c.t1[j * kD], ctx.input_mask,
                        ctx.weight_mask, ctx.output_mask, &c.in_rr[j],
                        &c.w_rr[j], &c.out_rr[j]);
}

/// Stage-3 traffic/latency/energy arithmetic for one slot. Each line is
/// the scalar evaluator's formula verbatim (left-associated exactly as
/// written), so per-candidate rounding order is the backend contract.
inline void arith_slot(const LayerContext& ctx, const BatchColumns& c,
                       std::size_t j) {
  // Level 1: DRAM <-> L2.
  const double in_dram = c.in_f2[j] * c.fp2_in[j];
  const double w_dram = c.w_f2[j] * c.fp2_w[j];
  const double out_writes_dram = c.out_f2[j] * c.fp2_out[j];
  const double out_reads_dram = (c.out_f2[j] - c.out_d2[j]) * c.fp2_out[j];
  c.dram_bytes[j] = in_dram + w_dram + out_writes_dram + out_reads_dram;
  const double l2_fill_writes = in_dram + w_dram + out_reads_dram;
  const double l2_drain_reads = out_writes_dram;

  // Level 2: L2 <-> PE array (per phase, per PE, then scaled).
  const double per_pe_in = c.in_f1[j] * c.fp1_in[j];
  const double per_pe_w = c.w_f1[j] * c.fp1_w[j];
  const double per_pe_out_w = c.out_f1[j] * c.fp1_out[j];
  const double per_pe_out_r = (c.out_f1[j] - c.out_d1[j]) * c.fp1_out[j];

  const double l2_in_reads = c.phases[j] * per_pe_in * c.in_mult[j];
  const double l2_w_reads = c.phases[j] * per_pe_w * c.w_mult[j];
  const double l2_out_writes = c.phases[j] * per_pe_out_w * c.out_mult[j];
  const double l2_out_reads = c.phases[j] * per_pe_out_r * c.out_mult[j];

  c.l2_read[j] = l2_in_reads + l2_w_reads + l2_out_reads + l2_drain_reads;
  c.l2_write[j] = l2_out_writes + l2_fill_writes;

  // NoC delivery energy: every active PE receives its operand stream;
  // psum reduction adds (red_extent - 1) hops per reduced output byte.
  c.noc_delivery[j] = c.phases[j] *
                      (per_pe_in + per_pe_w + per_pe_out_r + per_pe_out_w) *
                      c.fanout[j];
  c.red_hops[j] = l2_out_writes * (c.red_extent[j] - 1.0);

  // Level 3: registers inside the PE.
  const double l1_in_reads = ctx.macs / c.in_rr[j];
  const double l1_w_reads = ctx.macs / c.w_rr[j];
  const double l1_out_rw = 2.0 * ctx.macs / c.out_rr[j];
  const double l1_fill =
      c.phases[j] * (per_pe_in + per_pe_w + per_pe_out_r) * c.fanout[j];
  const double l1_drain = c.phases[j] * per_pe_out_w * c.fanout[j];
  c.l1_access[j] = l1_in_reads + l1_w_reads + l1_out_rw + l1_fill + l1_drain;

  // Latency: padded per-PE iteration space at 1 MAC/cycle vs the two
  // port occupancies, plus pipeline fill.
  c.compute_cyc[j] = c.phases[j] * c.per_pe_iters[j];
  c.noc_cyc[j] = (c.l2_read[j] + c.l2_write[j]) / ctx.noc_bw;
  c.dram_cyc[j] = c.dram_bytes[j] / ctx.dram_bw;
  const double fill_cycles = c.fp2_tot[j] / ctx.dram_bw + ctx.array_depth;
  c.latency[j] =
      std::max({c.compute_cyc[j], c.noc_cyc[j], c.dram_cyc[j]}) + fill_cycles;
  c.util[j] = ctx.macs / (ctx.pes * c.compute_cyc[j]);

  // Energy (per-byte coefficients precomputed in the context).
  c.e_l1[j] = c.l1_access[j] * ctx.l1_access_pj;
  c.e_l2[j] = (c.l2_read[j] + c.l2_write[j]) * ctx.l2_access_pj;
  c.e_noc[j] = (c.noc_delivery[j] + c.red_hops[j]) * ctx.noc_hop_pj;
  c.e_dram[j] = c.dram_bytes[j] * ctx.dram_pj_per_byte;
  c.e_total_nj[j] =
      (ctx.mac_energy_pj + c.e_l1[j] + c.e_l2[j] + c.e_noc[j] + c.e_dram[j]) /
      1000.0;
  c.edp[j] = c.e_total_nj[j] * c.latency[j];
}

}  // namespace naas::cost::kernels
