#include "cost/layer_context.hpp"

#include <algorithm>
#include <limits>

#include "cost/reuse.hpp"
#include "mapping/footprint.hpp"

namespace naas::cost {
namespace {

/// Resolves the input_axis_multiplier switch for a fixed axis binding,
/// reading the per-kind semantics table: dims outside the kind's input mask
/// broadcast (kOne); spatial/kernel dims inside it use the sliding-window
/// halo forms; everything else unicasts. For matmul/attention the mask
/// drops X'/R/S, so those axes classify as kOne and Y' keeps the halo form,
/// which degenerates to the exact row-partition ratio at kernel=stride=1.
AxisInputKind classify_input_axis(nn::Dim d, nn::LayerKind kind) {
  if (!is_relevant(Tensor::kInput, d, kind)) return AxisInputKind::kOne;
  switch (d) {
    case nn::Dim::kYp: return AxisInputKind::kHaloYp;
    case nn::Dim::kXp: return AxisInputKind::kHaloXp;
    case nn::Dim::kR: return AxisInputKind::kHaloR;
    case nn::Dim::kS: return AxisInputKind::kHaloS;
    default: return AxisInputKind::kUsed;
  }
}

}  // namespace

LayerContext::LayerContext(const arch::ArchConfig& arch,
                           const nn::Workload& layer,
                           const EnergyModel& energy) {
  arch_valid = arch.valid();
  kind = layer.kind;
  depthwise = kind == nn::LayerKind::kDepthwiseConv;
  batched_weight = semantics(kind).batched_weight;
  stride = layer.stride;
  for (nn::Dim d : nn::all_dims())
    dim_size[static_cast<std::size_t>(static_cast<int>(d))] =
        layer.dim_size(d);
  macs = static_cast<double>(layer.macs());

  for (int t = 0; t < 3; ++t) {
    const auto tensor = static_cast<Tensor>(t);
    std::uint8_t mask = 0;
    for (nn::Dim d : nn::all_dims())
      if (is_relevant(tensor, d, kind))
        mask |= static_cast<std::uint8_t>(1u << static_cast<int>(d));
    if (tensor == Tensor::kInput) input_mask = mask;
    if (tensor == Tensor::kWeight) weight_mask = mask;
    if (tensor == Tensor::kOutput) output_mask = mask;
  }

  // Compulsory DRAM floors. Per tensor, a dimension contributes its full
  // extent when the tensor's relevance mask holds it (its trip count then
  // multiplies the reload factor, so tile * trips >= extent) and 1
  // otherwise (the footprint still carries the tile as a factor >= 1, so
  // dropping the dimension only weakens the bound — never breaks it). The
  // input's coupled (output, kernel) spatial pairs use the identical halo
  // extent the tile footprint uses; with both dims masked the per-pair
  // product tile_halo * n_out * n_ker is minimized at full tiles, where it
  // equals the full-tensor halo extent exactly.
  {
    const auto sel = [&](std::uint8_t mask, nn::Dim d) -> double {
      const auto i = static_cast<std::size_t>(static_cast<int>(d));
      return ((mask >> i) & 1u) != 0 ? static_cast<double>(dim_size[i]) : 1.0;
    };
    const auto halo_span = [&](nn::Dim out_d, nn::Dim ker_d) -> double {
      const auto oi = static_cast<std::size_t>(static_cast<int>(out_d));
      const auto ki = static_cast<std::size_t>(static_cast<int>(ker_d));
      const bool has_out = ((input_mask >> oi) & 1u) != 0;
      const bool has_ker = ((input_mask >> ki) & 1u) != 0;
      const double out = static_cast<double>(dim_size[oi]);
      const double ker = static_cast<double>(dim_size[ki]);
      if (has_out && has_ker)
        return (out - 1.0) * std::min<double>(stride, ker) + ker;
      if (has_out) return out;
      if (has_ker) return ker;
      return 1.0;
    };
    const double bytes = static_cast<double>(mapping::kBytesPerElement);
    const double in_ch = depthwise ? sel(input_mask, nn::Dim::kK)
                                   : sel(input_mask, nn::Dim::kC);
    compulsory_in_bytes = sel(input_mask, nn::Dim::kN) * in_ch *
                          halo_span(nn::Dim::kYp, nn::Dim::kR) *
                          halo_span(nn::Dim::kXp, nn::Dim::kS) * bytes;
    // The weight footprint multiplies by the batch tile only for
    // batch-indexed weights, so the floor may count N only in that case.
    compulsory_w_bytes = (batched_weight ? sel(weight_mask, nn::Dim::kN)
                                         : 1.0) *
                         sel(weight_mask, nn::Dim::kK) *
                         sel(weight_mask, nn::Dim::kC) *
                         sel(weight_mask, nn::Dim::kR) *
                         sel(weight_mask, nn::Dim::kS) * bytes;
    compulsory_out_bytes = sel(output_mask, nn::Dim::kN) *
                           sel(output_mask, nn::Dim::kK) *
                           sel(output_mask, nn::Dim::kYp) *
                           sel(output_mask, nn::Dim::kXp) * bytes;
    compulsory_bytes =
        compulsory_in_bytes + compulsory_w_bytes + compulsory_out_bytes;
  }

  num_axes = arch.num_array_dims;
  pes = 1.0;
  array_depth = 0.0;
  if (arch_valid) {
    for (int a = 0; a < num_axes; ++a) {
      AxisContext& ax = axes[a];
      ax.dim = arch.parallel_dims[static_cast<std::size_t>(a)];
      ax.dim_index = static_cast<std::size_t>(static_cast<int>(ax.dim));
      ax.size = arch.array_dims[static_cast<std::size_t>(a)];
      ax.input_kind = classify_input_axis(ax.dim, kind);
      ax.weight_relevant = is_relevant(Tensor::kWeight, ax.dim, kind);
      ax.output_relevant = is_relevant(Tensor::kOutput, ax.dim, kind);
      ax.reduction = !ax.output_relevant && is_reduction(ax.dim, kind);
      pes *= static_cast<double>(ax.size);
      array_depth += static_cast<double>(ax.size);
      // parallel_dims are distinct for a valid arch, so each dimension's
      // extent is a single axis size (never a product that could overflow).
      par_extent[ax.dim_index] = ax.size;
    }
    // A PE count beyond int range would overflow arch.num_pes() and poison
    // pe_utilization; reject the config instead of computing with garbage.
    if (!(pes >= 1.0 &&
          pes <= static_cast<double>(std::numeric_limits<int>::max()))) {
      degenerate = true;
      degenerate_reason =
          "degenerate accelerator configuration (PE count overflows)";
    }
  }

  l1_bytes = arch.l1_bytes;
  l2_bytes = arch.l2_bytes;
  noc_bw = static_cast<double>(arch.noc_bandwidth);
  dram_bw = static_cast<double>(arch.dram_bandwidth);
  // valid() already requires positive bandwidths; this guard keeps the
  // no-NaN invariant local so a future valid() change cannot silently
  // reintroduce division by zero in noc_cycles/dram_cycles.
  if (arch_valid && !degenerate && (noc_bw <= 0.0 || dram_bw <= 0.0)) {
    degenerate = true;
    degenerate_reason =
        "degenerate accelerator configuration (non-positive bandwidth)";
  }

  mac_energy_pj = macs * energy.mac_pj;
  l1_access_pj = energy.l1_access_pj(arch.l1_bytes);
  l2_access_pj = energy.l2_access_pj(arch.l2_bytes);
  noc_hop_pj = energy.noc_hop_pj;
  dram_pj_per_byte = energy.dram_pj_per_byte;
}

}  // namespace naas::cost
