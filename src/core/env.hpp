#pragma once

#include <string>

namespace naas::core {

/// Reads an integer from environment variable `name`; returns `fallback` if
/// unset or unparsable. Used by the bench harness to scale search budgets
/// (e.g. NAAS_BENCH_FULL=1 selects paper-scale budgets).
int env_int(const std::string& name, int fallback);

/// Reads a boolean ("1"/"true"/"yes" => true) with a fallback.
bool env_flag(const std::string& name, bool fallback);

}  // namespace naas::core
