#pragma once

#include <string>
#include <vector>

namespace naas::core {

/// Aligned ASCII table writer used by the benchmark harness to print the
/// paper's tables/figure data, with CSV export for post-processing.
///
/// Usage:
///   Table t({"Network", "Speedup", "Energy Saving"});
///   t.add_row({"VGG16", Table::fmt(2.6, 2), Table::fmt(1.1, 2)});
///   std::cout << t.to_string();
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells are
  /// kept (the table widens to the longest row).
  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed `digits` decimals (locale-independent).
  static std::string fmt(double value, int digits = 2);

  /// Formats a double in scientific notation with `digits` significant
  /// decimals, e.g. 3.0e+14.
  static std::string fmt_sci(double value, int digits = 1);

  /// Formats an integer with thousands separators ("1,234,567").
  static std::string fmt_int(long long value);

  /// Renders the aligned ASCII table (with a header separator line).
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace naas::core
