#pragma once

#include <cstddef>
#include <vector>

namespace naas::core {

/// Small dense row-major matrix of doubles.
///
/// Sized for optimizer internals (CMA-ES covariance matrices of a few dozen
/// dimensions), not for large numerical workloads: all operations are simple
/// O(n^2)/O(n^3) loops with no blocking. Indices are checked in debug builds
/// via assert.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, double fill = 0.0);

  /// Identity matrix of size n x n.
  static Matrix identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c);
  double operator()(int r, int c) const;

  /// Matrix-vector product. Requires v.size() == cols().
  std::vector<double> matvec(const std::vector<double>& v) const;

  /// Adds `scale * u * u^T` to this matrix (rank-one symmetric update).
  /// Requires square matrix with rows() == u.size().
  void add_outer(const std::vector<double>& u, double scale);

  /// Scales every entry by `s`.
  void scale(double s);

  /// Returns the transpose.
  Matrix transposed() const;

  /// Matrix product this * other.
  Matrix multiply(const Matrix& other) const;

  /// Cholesky factorization of a symmetric positive-definite matrix:
  /// returns lower-triangular L with L * L^T == *this. If the matrix is not
  /// positive definite, a small diagonal jitter is added (repeatedly, up to a
  /// cap) until the factorization succeeds; this keeps optimizers running in
  /// the face of numerically degenerate covariance estimates.
  Matrix cholesky() const;

  /// Enforces exact symmetry by averaging with the transpose.
  void symmetrize();

  /// Maximum absolute entry (0 for an empty matrix).
  double max_abs() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace naas::core
