#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace naas::core {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(std::max(x, 1e-300));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

int argmin(const std::vector<double>& xs) {
  if (xs.empty()) return -1;
  return static_cast<int>(
      std::min_element(xs.begin(), xs.end()) - xs.begin());
}

int argmax(const std::vector<double>& xs) {
  if (xs.empty()) return -1;
  return static_cast<int>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::vector<int> ranks_ascending(const std::vector<double>& xs) {
  std::vector<int> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return xs[static_cast<std::size_t>(a)] < xs[static_cast<std::size_t>(b)];
  });
  std::vector<int> rank(xs.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    rank[static_cast<std::size_t>(order[pos])] = static_cast<int>(pos);
  return rank;
}

}  // namespace naas::core
