#include "core/serialize.hpp"

#include <cstring>

namespace naas::core {

void ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

ByteReader::ByteReader(const void* data, std::size_t size)
    : data_(static_cast<const unsigned char*>(data)), size_(size) {}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::size_t at = pos_;
  if (!take(1)) return 0;
  return data_[at];
}

std::uint32_t ByteReader::u32() {
  const std::size_t at = pos_;
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::size_t at = pos_;
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  const std::size_t at = pos_;
  if (!take(n)) return {};
  return std::string(reinterpret_cast<const char*>(data_ + at), n);
}

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

std::string to_hex(const std::string& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

bool from_hex(const std::string& hex, std::string* bytes) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  bytes->clear();
  if (hex.size() % 2 != 0) return false;
  bytes->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

}  // namespace naas::core
