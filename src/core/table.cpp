#include "core/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace naas::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string Table::fmt_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string Table::fmt_int(long long value) {
  const bool neg = value < 0;
  unsigned long long v = neg ? static_cast<unsigned long long>(-(value + 1)) + 1ULL
                             : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::to_string() const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  measure(headers_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < ncols) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += widths[c] + (c + 1 < ncols ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace naas::core
