#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "core/thread_pool.hpp"

namespace naas::core {

/// Dependency-aware task scheduler on top of ThreadPool — the engine of the
/// asynchronous evaluation pipeline. Where ThreadPool::parallel_for is a
/// fork-join (every caller is a barrier), TaskGraph lets independent task
/// chains interleave freely: a task becomes runnable the moment its
/// predecessors finish, regardless of what unrelated chains are doing, so
/// one slow chain no longer idles the pool between "generations".
///
/// Contract, in order of importance:
///  1. *Determinism is the caller's job, scheduling is ours*: tasks must
///     write only to their own result slots (or to state owned by a single
///     continuation chain); the graph guarantees every task runs exactly
///     once with its dependencies complete, never in which global order.
///     With slot-keyed writes and reductions expressed as dependent tasks,
///     outputs are bit-identical for any thread count.
///  2. *Nested submission*: a task body may submit further tasks (the
///     continuation style the search pipeline uses to schedule generation
///     g+1 from generation g's completion) and may fulfill promises.
///  3. *Priorities*: kSpeculative tasks are claimed only when no kNormal
///     task is ready — speculative evaluation soaks up straggler idle time
///     without ever delaying real work.
///  4. *Serial fallback*: with a null/serial pool, run() executes ready
///     tasks inline in deterministic (id, priority) order; combined with
///     rule 1 this is byte-identical to any parallel run.
///  5. *Errors*: the first exception cancels all remaining tasks (their
///     bodies are skipped, unfulfilled promises are force-completed) and is
///     rethrown from run().
class TaskGraph {
 public:
  using TaskId = std::uint64_t;

  enum class Priority {
    kNormal,       ///< real work: always claimed first
    kSpeculative,  ///< idle-time prefetch: claimed only when nothing normal
                   ///< is ready
  };

  /// Work-accounting for the scheduler; see ArchEvaluator's meters and
  /// bench_async_pipeline's idle-fraction measurement.
  struct Stats {
    long long tasks_executed = 0;  ///< bodies actually run
    long long tasks_skipped = 0;   ///< cancelled after an error
    double busy_seconds = 0;       ///< summed task body time
    double wall_seconds = 0;       ///< summed run() wall time
    int workers = 1;               ///< threads claiming tasks during run()
    /// Fraction of worker capacity spent not executing task bodies —
    /// the number the async pipeline exists to shrink.
    double idle_fraction() const {
      const double capacity = workers * wall_seconds;
      if (capacity <= 0) return 0;
      const double idle = capacity - busy_seconds;
      return idle < 0 ? 0 : idle / capacity;
    }
  };

  /// `pool` (not owned, may be null) supplies the workers; null or a
  /// 1-thread pool selects the inline serial mode.
  explicit TaskGraph(ThreadPool* pool = nullptr);

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Registers a task. It becomes ready once every id in `deps` has
  /// completed (ids of already-completed tasks are allowed and count as
  /// satisfied). Never blocks; call from anywhere, including task bodies.
  TaskId submit(std::function<void()> fn, const std::vector<TaskId>& deps = {},
                Priority priority = Priority::kNormal);

  /// Creates a completion placeholder with no body: dependents become ready
  /// only when fulfill() is called. This is how a dynamically-growing chain
  /// (generation g's continuation submits generation g+1) exposes a single
  /// id that outside tasks can depend on before the chain's tail exists.
  TaskId make_promise();

  /// Completes `promise` (exactly once, typically from the chain's final
  /// continuation body).
  void fulfill(TaskId promise);

  /// Raises a live kSpeculative task to kNormal (moving it out of the
  /// idle-priority ready set if it is queued there). No-op for completed
  /// or already-normal tasks. This is how a speculatively submitted chain
  /// is promoted when real work starts depending on it — without this its
  /// remaining tasks would run only at pool idle, making the needed chain
  /// the critical-path straggler.
  void promote(TaskId id);

  /// Drives the graph to quiescence: returns when every submitted task
  /// (including ones submitted by task bodies while running) has completed.
  /// Rethrows the first task exception after cancelling the remainder. May
  /// be called again after more submissions; must not be called from inside
  /// a task body.
  void run();

  /// Threads that claim tasks during run() (>= 1).
  int parallelism() const { return pool_ && !pool_->serial() ? pool_->size() : 1; }

  /// Cumulative work accounting across all run() calls.
  Stats stats() const;

 private:
  struct Task {
    std::function<void()> fn;        ///< empty for promises
    std::vector<TaskId> dependents;  ///< ids waiting on this task
    int unmet = 0;                   ///< outstanding dependencies
    Priority priority = Priority::kNormal;
    bool is_promise = false;
  };

  void worker_loop();
  void run_serial();
  /// Executes one claimed task body outside the lock; returns holding it.
  void execute(TaskId id, std::unique_lock<std::mutex>& lk);
  void push_ready_locked(TaskId id, Priority priority);
  bool ready_empty_locked() const {
    return ready_normal_.empty() && ready_speculative_.empty();
  }
  TaskId pop_ready_locked();
  void complete_locked(TaskId id);
  void cancel_remaining_locked();

  ThreadPool* pool_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<TaskId, Task> tasks_;  ///< live (not yet completed) tasks
  std::set<TaskId> ready_normal_;
  std::set<TaskId> ready_speculative_;
  TaskId next_id_ = 1;
  std::size_t pending_ = 0;  ///< live tasks, including running and promises
  int running_ = 0;          ///< bodies currently executing
  std::exception_ptr error_;
  Stats stats_;
};

}  // namespace naas::core
