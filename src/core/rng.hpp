#pragma once

#include <cstdint>
#include <vector>

namespace naas::core {

/// Deterministic, seedable pseudo-random generator used everywhere in NAAS.
///
/// Implements the PCG-XSH-RR 64/32 generator (O'Neill, 2014): small state,
/// excellent statistical quality, and fully reproducible across platforms —
/// important because every experiment in EXPERIMENTS.md must be re-runnable
/// bit-for-bit. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Creates a generator from a 64-bit seed. Distinct seeds give
  /// statistically independent streams for practical purposes.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from `seed`, discarding history.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal deviate (Box–Muller with caching of the second value).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Vector of `n` standard normal deviates.
  std::vector<double> normal_vector(int n);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly shuffles `v` in place (Fisher–Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      std::swap(v[static_cast<std::size_t>(i)],
                v[static_cast<std::size_t>(uniform_int(0, i))]);
    }
  }

  /// Picks a uniformly random element index of a container of size `n` (> 0).
  int index(int n) { return uniform_int(0, n - 1); }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derives the seed of an independent substream from a base seed and a
/// stream id (SplitMix64 finalization over both). The task-graph pipeline
/// keys every auxiliary generator — e.g. the per-generation speculative
/// resampling streams — off the primary seed this way, so auxiliary draws
/// never advance (and therefore never perturb) the optimizer's own stream.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream);

/// Convenience: an Rng seeded with stream_seed(seed, stream).
inline Rng rng_stream(std::uint64_t seed, std::uint64_t stream) {
  return Rng(stream_seed(seed, stream));
}

}  // namespace naas::core
