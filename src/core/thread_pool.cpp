#include "core/thread_pool.hpp"

#include <algorithm>

#include "core/env.hpp"

namespace naas::core {

/// Shared state of one parallel_for: an index dispenser plus a completion
/// counter. Workers and the owning thread claim indices with fetch_add, so
/// each index runs exactly once regardless of who claims it.
struct ThreadPool::Loop {
  std::size_t n = 0;
  /// Owned by the parallel_for frame; valid until done == n (the owner
  /// blocks until then, and no index is claimable afterwards).
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> has_error{false};  ///< lock-free fast check
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr error;  ///< first exception, guarded by m
};

/// Claims and runs iterations until the dispenser is empty. After an
/// exception, remaining claims are drained without running `fn` so the loop
/// finishes promptly; the owner rethrows the first error.
void ThreadPool::run_loop(Loop& loop) {
  while (true) {
    const std::size_t i = loop.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop.n) return;
    if (!loop.has_error.load(std::memory_order_relaxed)) {
      try {
        (*loop.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(loop.m);
        if (!loop.error) loop.error = std::current_exception();
        loop.has_error.store(true, std::memory_order_relaxed);
      }
    }
    if (loop.done.fetch_add(1, std::memory_order_acq_rel) + 1 == loop.n) {
      std::lock_guard<std::mutex> lk(loop.m);
      loop.cv.notify_all();
    }
  }
}

int ThreadPool::default_num_threads() {
  const int from_env = env_int("NAAS_NUM_THREADS", 0);
  if (from_env > 0) return from_env;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = default_num_threads();
  // The calling thread participates in every loop, so a pool of size N
  // needs N-1 workers.
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  while (true) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] {
        // Prune exhausted loops so the predicate doesn't spin on them.
        pending_.erase(
            std::remove_if(pending_.begin(), pending_.end(),
                           [](const std::shared_ptr<Loop>& l) {
                             return l->next.load(std::memory_order_relaxed) >=
                                    l->n;
                           }),
            pending_.end());
        return stop_ || !pending_.empty();
      });
      if (stop_ && pending_.empty()) return;
      loop = pending_.front();
    }
    run_loop(*loop);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial fallback: inline on the caller, exactly the pre-pool behavior.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->n = n;
  loop->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    pending_.push_back(loop);
  }
  cv_.notify_all();

  run_loop(*loop);  // the owner claims indices like any worker

  {
    std::unique_lock<std::mutex> lk(loop->m);
    loop->cv.wait(lk, [&] {
      return loop->done.load(std::memory_order_acquire) == n;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    pending_.erase(std::remove(pending_.begin(), pending_.end(), loop),
                   pending_.end());
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace naas::core
