#pragma once

#include <vector>

namespace naas::core {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Geometric mean of strictly positive values; returns 0 if the input is
/// empty. Values <= 0 are clamped to a tiny positive epsilon so a single
/// degenerate sample cannot poison a whole reward aggregation.
double geomean(const std::vector<double>& xs);

/// Median (average of the two middle elements for even sizes); 0 if empty.
double median(std::vector<double> xs);

/// Index of the minimum element; -1 if empty. Ties resolve to the first.
int argmin(const std::vector<double>& xs);

/// Index of the maximum element; -1 if empty. Ties resolve to the first.
int argmax(const std::vector<double>& xs);

/// Ranks of each element in ascending order: result[i] is the rank (0-based)
/// of xs[i]. Ties are broken by index for determinism.
std::vector<int> ranks_ascending(const std::vector<double>& xs);

}  // namespace naas::core
