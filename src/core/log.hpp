#pragma once

#include <string>

namespace naas::core {

/// Log severities, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that will be emitted. Default is kWarn so
/// that library code is silent in tests/benches unless asked; the
/// NAAS_LOG_LEVEL environment variable (debug|info|warn|error) overrides
/// this at first use.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Writes one line to stderr if `level` passes the global threshold.
void log(LogLevel level, const std::string& message);

/// Convenience wrappers.
void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace naas::core
