#include "core/task_graph.hpp"

#include <stdexcept>
#include <utility>

#include "core/timer.hpp"

namespace naas::core {

TaskGraph::TaskGraph(ThreadPool* pool) : pool_(pool) {
  stats_.workers = parallelism();
}

TaskGraph::TaskId TaskGraph::submit(std::function<void()> fn,
                                    const std::vector<TaskId>& deps,
                                    Priority priority) {
  bool ready = false;
  TaskId id = 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    id = next_id_++;
    Task task;
    task.fn = std::move(fn);
    task.priority = priority;
    for (const TaskId dep : deps) {
      if (dep == 0 || dep >= id)
        throw std::invalid_argument("TaskGraph::submit: unknown dependency id");
      const auto it = tasks_.find(dep);
      if (it == tasks_.end()) continue;  // already completed: satisfied
      it->second.dependents.push_back(id);
      ++task.unmet;
    }
    ready = task.unmet == 0;
    tasks_.emplace(id, std::move(task));
    ++pending_;
    if (ready) push_ready_locked(id, priority);
  }
  if (ready) cv_.notify_one();
  return id;
}

TaskGraph::TaskId TaskGraph::make_promise() {
  std::lock_guard<std::mutex> lk(mutex_);
  const TaskId id = next_id_++;
  Task task;
  task.is_promise = true;
  // A promise is never "ready": it completes via fulfill(), so it carries a
  // synthetic unmet dependency that nothing ever decrements.
  task.unmet = 1;
  tasks_.emplace(id, std::move(task));
  ++pending_;
  return id;
}

void TaskGraph::fulfill(TaskId promise) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = tasks_.find(promise);
    if (it == tasks_.end() || !it->second.is_promise)
      throw std::logic_error(
          "TaskGraph::fulfill: not a live promise (double fulfill?)");
    complete_locked(promise);
  }
  cv_.notify_all();
}

void TaskGraph::promote(TaskId id) {
  bool became_normal_ready = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = tasks_.find(id);
    if (it == tasks_.end()) return;  // already completed
    if (it->second.priority == Priority::kNormal) return;
    it->second.priority = Priority::kNormal;
    const auto ready = ready_speculative_.find(id);
    if (ready != ready_speculative_.end()) {
      ready_speculative_.erase(ready);
      ready_normal_.insert(id);
      became_normal_ready = true;
    }
  }
  if (became_normal_ready) cv_.notify_one();
}

void TaskGraph::push_ready_locked(TaskId id, Priority priority) {
  (priority == Priority::kNormal ? ready_normal_ : ready_speculative_)
      .insert(id);
}

TaskGraph::TaskId TaskGraph::pop_ready_locked() {
  // Normal work always preempts speculation; within a class, the lowest id
  // (oldest submission) runs first, which makes the serial mode's execution
  // order deterministic and keeps parallel claim order sensible.
  std::set<TaskId>& from =
      !ready_normal_.empty() ? ready_normal_ : ready_speculative_;
  const TaskId id = *from.begin();
  from.erase(from.begin());
  return id;
}

void TaskGraph::complete_locked(TaskId id) {
  auto node = tasks_.extract(id);
  for (const TaskId dep_id : node.mapped().dependents) {
    const auto it = tasks_.find(dep_id);
    if (it == tasks_.end()) continue;  // cancelled
    if (--it->second.unmet == 0)
      push_ready_locked(dep_id, it->second.priority);
  }
  --pending_;
}

void TaskGraph::cancel_remaining_locked() {
  for (const auto& [id, task] : tasks_)
    if (!task.is_promise) ++stats_.tasks_skipped;
  tasks_.clear();
  ready_normal_.clear();
  ready_speculative_.clear();
  pending_ = 0;
}

void TaskGraph::execute(TaskId id, std::unique_lock<std::mutex>& lk) {
  // Move the body out but keep the task entry live: dependents registered
  // while it runs (nested submission) must still find it.
  std::function<void()> fn = std::move(tasks_.at(id).fn);
  const bool skip = error_ != nullptr;
  ++running_;
  lk.unlock();

  double body_seconds = 0;
  std::exception_ptr thrown;
  if (!skip) {
    const Timer timer;
    try {
      fn();
    } catch (...) {
      thrown = std::current_exception();
    }
    body_seconds = timer.seconds();
  }

  lk.lock();
  --running_;
  if (skip) {
    ++stats_.tasks_skipped;
  } else {
    ++stats_.tasks_executed;
    stats_.busy_seconds += body_seconds;
    if (thrown && !error_) error_ = thrown;
  }
  complete_locked(id);
  // Completion may have readied several dependents (or quiesced the graph);
  // wake every waiter rather than guessing how many can now make progress.
  cv_.notify_all();
}

void TaskGraph::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    cv_.wait(lk, [this] {
      return !ready_empty_locked() || pending_ == 0 || running_ == 0;
    });
    if (pending_ == 0) return;
    if (ready_empty_locked()) {
      if (running_ > 0) continue;  // spurious wake while others still run
      // Nothing ready, nothing running, tasks pending: every live task
      // waits on a promise nobody can fulfill. After an error this is the
      // expected drain (the fulfilling body was skipped); otherwise it is
      // a pipeline bug worth failing loudly on instead of hanging.
      if (!error_)
        error_ = std::make_exception_ptr(std::logic_error(
            "TaskGraph stalled: live tasks blocked on an unfulfilled "
            "promise"));
      cancel_remaining_locked();
      cv_.notify_all();
      return;
    }
    const TaskId id = pop_ready_locked();
    execute(id, lk);  // unlocks while the body runs
  }
}

void TaskGraph::run_serial() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (pending_ > 0) {
    if (ready_empty_locked()) {
      if (!error_)
        error_ = std::make_exception_ptr(std::logic_error(
            "TaskGraph stalled: live tasks blocked on an unfulfilled "
            "promise"));
      cancel_remaining_locked();
      break;
    }
    const TaskId id = pop_ready_locked();
    execute(id, lk);
  }
}

void TaskGraph::run() {
  const Timer wall;
  if (parallelism() <= 1) {
    run_serial();
  } else {
    // Every pool thread (plus the caller, via ThreadPool's participating
    // parallel_for) becomes a claim loop until the graph quiesces.
    pool_->parallel_for(static_cast<std::size_t>(pool_->size()),
                        [this](std::size_t) { worker_loop(); });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stats_.wall_seconds += wall.seconds();
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

TaskGraph::Stats TaskGraph::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace naas::core
