#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace naas::core {

/// Deterministic fault-injection harness for the I/O choke points of the
/// serving stack (socket read/write, result-store append/load, store
/// refresh). Production builds pay a single relaxed atomic load per
/// potential fault site while disarmed; armed, every decision is a pure
/// function of (seed, site name, per-site consultation counter), so a
/// failing run replays bit-for-bit from its spec string.
///
/// Spec grammar (comma-separated items, whitespace-free):
///
///   seed=N                     decision-stream seed (default 1)
///   <site>=<prob>              fire with probability prob in [0,1]
///   <site>=<prob>@<maxfires>   ...but at most maxfires times
///   <site>=<prob>+<skip>       ...and never on the first skip consultations
///
/// e.g. NAAS_FAULTS="sock_read_short=0.3,store_append_fail=1@2,seed=7"
///
/// Sites are plain strings owned by the call sites; the injector needs no
/// registry. Sites currently wired in (see docs/serving.md for effects):
///
///   sock_read_short   sock_read_eintr   sock_read_reset
///   sock_write_short  sock_write_eintr  sock_write_reset  sock_write_stall
///   store_append_fail store_append_torn store_save_fail
///   store_load_fail   store_load_corrupt
///   refresh_fail
///   router_forward_fail router_forward_stall router_ping_fail
///   repl_fetch_torn
///
/// Configuration comes from the NAAS_FAULTS environment variable at first
/// use, or programmatically via configure() (tests). Thread-safe.
class FaultInjector {
 public:
  /// The process-wide injector. First call reads NAAS_FAULTS.
  static FaultInjector& instance();

  /// True when any fault rule is armed (single relaxed load; the whole
  /// cost of the harness in production).
  static bool armed() { return armed_flag().load(std::memory_order_relaxed); }

  /// Replaces all rules with `spec`. Empty spec disarms. Returns false and
  /// sets `*err` (optional) on a malformed spec, leaving the injector
  /// disarmed rather than half-configured.
  bool configure(const std::string& spec, std::string* err = nullptr);

  /// Drops every rule and counter.
  void disarm();

  /// Deterministically decides whether the fault at `site` fires on this
  /// consultation. Unknown sites never fire (but are counted, so summary()
  /// shows which choke points a run actually crossed).
  bool should_fire(const std::string& site);

  /// Times `site` fired / was consulted since the last configure/disarm.
  long long fired(const std::string& site) const;
  long long consulted(const std::string& site) const;

  /// "site: fired/consulted" for every consulted site, comma-separated,
  /// sorted by site. Empty string when nothing was consulted.
  std::string summary() const;

 private:
  FaultInjector();
  static std::atomic<bool>& armed_flag();

  struct Impl;
  Impl* impl_;  ///< leaked singleton state; never destroyed
};

/// Hot-path helper: `if (core::fault("sock_read_short")) ...`. Disarmed
/// cost is the armed() load only.
inline bool fault(const char* site) {
  return FaultInjector::armed() && FaultInjector::instance().should_fire(site);
}

/// RAII spec installer for tests: configures on construction, disarms on
/// destruction (restoring the quiet default even when a test fails).
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) {
    FaultInjector::instance().configure(spec);
  }
  ~ScopedFaults() { FaultInjector::instance().disarm(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace naas::core
