#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace naas::core {

/// Fixed-size worker pool for the evaluation fan-out of the search loops.
///
/// Design goals, in order:
///  1. *Determinism*: the pool never decides results, only scheduling.
///     `parallel_for`/`parallel_map` hand out indices from a shared atomic
///     counter and results are written by index, so outputs are identical
///     for any thread count and any interleaving (no work stealing between
///     unrelated loops, no reduction-order dependence).
///  2. *Nesting safety*: the calling thread participates in its own loop
///     (it claims indices like any worker) and never blocks waiting for a
///     queue slot. A pool worker that itself calls `parallel_for` therefore
///     makes progress even when every other worker is busy — the two-level
///     NAAS search (population fan-out containing mapping-search fan-outs)
///     shares one pool without deadlock.
///  3. *Serial fallback*: with `num_threads <= 1` no threads are spawned
///     and every loop runs inline on the caller, byte-for-byte identical to
///     the pre-threading code path.
class ThreadPool {
 public:
  /// `num_threads <= 0` resolves via `default_num_threads()`;
  /// `num_threads == 1` creates a pool with no workers (inline execution).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that can make progress concurrently: the workers
  /// plus the calling thread. Always >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// True when loops run inline on the caller (no worker threads).
  bool serial() const { return workers_.empty(); }

  /// Runs `fn(i)` for every i in [0, n). Blocks until all iterations are
  /// done. The caller executes iterations too. If any iteration throws, the
  /// first exception (by completion order) is rethrown here after the loop
  /// drains; iterations not yet started when the error was recorded are
  /// skipped, so on a throwing loop no output slot can be assumed written.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps `fn` over [0, n), assembling results *by index* so the output is
  /// independent of scheduling order.
  template <typename T>
  std::vector<T> parallel_map(std::size_t n,
                              const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Thread count used for `num_threads <= 0`: the NAAS_NUM_THREADS
  /// environment variable when set, else `hardware_concurrency`.
  static int default_num_threads();

 private:
  struct Loop;  // shared state of one parallel_for

  static void run_loop(Loop& loop);
  void worker_main();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Loop>> pending_;  ///< loops with unclaimed work
  bool stop_ = false;
};

}  // namespace naas::core
