#pragma once

#include <chrono>

namespace naas::core {

/// Simple monotonic wall-clock timer for search-cost accounting.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Resets the start point to now.
  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace naas::core
