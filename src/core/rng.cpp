#include "core/rng.hpp"

#include <cmath>

namespace naas::core {

void Rng::reseed(std::uint64_t seed) {
  // PCG initialization: fixed odd increment derived from the seed so that
  // different seeds select different streams as well as different states.
  inc_ = (seed << 1u) | 1u;
  state_ = 0u;
  (void)(*this)();
  state_ += 0x9e3779b97f4a7c15ULL + seed;
  (void)(*this)();
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53-bit mantissa from two 32-bit draws for full double resolution.
  const std::uint64_t hi = (*this)();
  const std::uint64_t lo = (*this)();
  const std::uint64_t bits53 = ((hi << 21u) ^ lo) & ((1ULL << 53u) - 1u);
  return static_cast<double>(bits53) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1u;
  // Rejection-free Lemire reduction is overkill here; modulo bias for spans
  // this small (< 2^31) against a 64-bit draw is negligible for search use.
  const std::uint64_t draw =
      (static_cast<std::uint64_t>((*this)()) << 32u) | (*this)();
  return lo + static_cast<int>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is bounded away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<double> Rng::normal_vector(int n) {
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto& x : out) x = normal();
  return out;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 finalizer applied twice, folding the stream id in between:
  // adjacent (seed, stream) pairs land in uncorrelated states.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1u);
  z = (z ^ (z >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27u)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31u);
}

}  // namespace naas::core
