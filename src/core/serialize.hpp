#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace naas::core {

/// Minimal little-endian binary serialization, the substrate of the
/// persistent result store (src/search/result_store.*). Fixed-width
/// primitives are written byte-by-byte so the on-disk format is identical
/// across hosts; doubles round-trip via their IEEE-754 bit pattern, which
/// is what makes warm-started searches bit-identical to cold ones.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  ///< exact bit-pattern round trip
  void str(const std::string& s);  ///< u32 length prefix + raw bytes

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte buffer. Any out-of-range read flips
/// ok() to false and yields zero values from then on; callers validate once
/// at the end instead of checking every field.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Byte offset of the next read. Lets framed formats (the segmented
  /// result store) checksum exactly the span they just parsed.
  std::size_t pos() const { return pos_; }

 private:
  bool take(std::size_t n);  ///< advances pos_; false (and !ok_) on overrun

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a 64-bit hash, used as the store's content checksum.
std::uint64_t fnv1a64(const void* data, std::size_t size);
std::uint64_t fnv1a64(const std::string& bytes);

/// Lowercase hex armor for carrying binary payloads (result-store segments)
/// over the line-JSON protocol — the transport of fleet peer replication.
std::string to_hex(const std::string& bytes);
/// Strict inverse (even length, hex digits only); false leaves `*bytes`
/// empty. Rejecting instead of best-effort decoding keeps a mangled
/// replication payload an explicit failure, not a silently-short store.
bool from_hex(const std::string& hex, std::string* bytes);

/// boost-style 64-bit hash combiner. The single definition behind every
/// fingerprint/cache-key/dedup-key mix in the codebase (arch fingerprints,
/// evaluator cache keys, NASAIC memo keys, serve batch dedup): these keys
/// must stay mutually consistent, so there is exactly one mixer to change.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace naas::core
