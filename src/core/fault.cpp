#include "core/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "core/serialize.hpp"

namespace naas::core {
namespace {

/// splitmix64: the decision stream. Statistically fine for fault dice and,
/// unlike rng_stream, needs no sequencing state — decision k at a site is
/// a pure function of (seed, site, k).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

struct Rule {
  double prob = 0;
  long long max_fires = -1;  ///< -1 = unlimited
  long long skip = 0;        ///< consultations before the rule arms
};

struct Counters {
  long long consulted = 0;
  long long fired = 0;
};

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mutex;
  std::uint64_t seed = 1;
  std::map<std::string, Rule> rules;
  std::map<std::string, Counters> counters;
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* spec = std::getenv("NAAS_FAULTS")) configure(spec);
}

std::atomic<bool>& FaultInjector::armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

namespace {
/// Forces the singleton (and with it the NAAS_FAULTS read) into existence
/// at process start. Without this, `core::fault()`'s armed() short-circuit
/// would mean a purely env-configured process never constructs the
/// injector — and never arms.
const bool g_env_spec_loaded = (FaultInjector::instance(), true);
}  // namespace

bool FaultInjector::configure(const std::string& spec, std::string* err) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  // Leaves the injector disarmed rather than half-configured (the lock is
  // already held, so this clears in place instead of calling disarm()).
  const auto fail = [&](const std::string& message) {
    impl_->rules.clear();
    impl_->counters.clear();
    impl_->seed = 1;
    armed_flag().store(false, std::memory_order_relaxed);
    if (err) *err = message;
    return false;
  };
  impl_->rules.clear();
  impl_->counters.clear();
  impl_->seed = 1;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      return fail("fault spec item without '=': '" + item + "'");
    const std::string site = item.substr(0, eq);
    std::string value = item.substr(eq + 1);

    Rule rule;
    // Optional decorations, innermost first: +skip then @maxfires. Both
    // must be real nonnegative integers: a typo like "=1@abc" silently
    // becoming "@0" (never fires) would make a fault run vacuously green.
    const auto parse_count = [](const char* text, long long* out) {
      if (*text == '\0') return false;
      long long v = 0;
      for (const char* p = text; *p; ++p) {
        if (*p < '0' || *p > '9') return false;
        v = v * 10 + (*p - '0');
        if (v < 0) return false;  // overflow
      }
      *out = v;
      return true;
    };
    if (const std::size_t plus = value.find('+'); plus != std::string::npos) {
      if (!parse_count(value.c_str() + plus + 1, &rule.skip))
        return fail("bad '+skip' count in '" + item + "'");
      value.resize(plus);
    }
    if (const std::size_t at = value.find('@'); at != std::string::npos) {
      if (!parse_count(value.c_str() + at + 1, &rule.max_fires))
        return fail("bad '@maxfires' count in '" + item + "'");
      value.resize(at);
    }
    char* parse_end = nullptr;
    const double num = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0')
      return fail("unparsable fault value in '" + item + "'");

    if (site == "seed") {
      impl_->seed = static_cast<std::uint64_t>(num);
    } else {
      if (num < 0 || num > 1)
        return fail("fault probability out of [0,1] in '" + item + "'");
      rule.prob = num;
      impl_->rules[site] = rule;
    }
  }
  armed_flag().store(!impl_->rules.empty(), std::memory_order_relaxed);
  if (err) err->clear();
  return true;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  impl_->rules.clear();
  impl_->counters.clear();
  impl_->seed = 1;
  armed_flag().store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(const std::string& site) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  Counters& c = impl_->counters[site];
  const long long consultation = c.consulted++;
  const auto it = impl_->rules.find(site);
  if (it == impl_->rules.end()) return false;
  const Rule& rule = it->second;
  if (consultation < rule.skip) return false;
  if (rule.max_fires >= 0 && c.fired >= rule.max_fires) return false;
  const std::uint64_t dice =
      mix64(impl_->seed ^ fnv1a64(site.data(), site.size()) ^
            static_cast<std::uint64_t>(consultation));
  const bool fire = unit_double(dice) < rule.prob;
  if (fire) ++c.fired;
  return fire;
}

long long FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  const auto it = impl_->counters.find(site);
  return it == impl_->counters.end() ? 0 : it->second.fired;
}

long long FaultInjector::consulted(const std::string& site) const {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  const auto it = impl_->counters.find(site);
  return it == impl_->counters.end() ? 0 : it->second.consulted;
}

std::string FaultInjector::summary() const {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  std::string out;
  for (const auto& [site, c] : impl_->counters) {
    if (!out.empty()) out += ", ";
    out += site + ": " + std::to_string(c.fired) + "/" +
           std::to_string(c.consulted);
  }
  return out;
}

}  // namespace naas::core
