#include "core/env.hpp"

#include <cstdlib>
#include <cstring>

namespace naas::core {

int env_int(const std::string& name, int fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

bool env_flag(const std::string& name, bool fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "yes") == 0;
}

}  // namespace naas::core
