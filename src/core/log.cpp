#include "core/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace naas::core {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("NAAS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_ref() = level; }

LogLevel log_level() { return level_ref(); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_ref())) return;
  std::fprintf(stderr, "[naas %s] %s\n", tag(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace naas::core
