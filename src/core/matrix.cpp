#include "core/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace naas::core {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            fill) {
  assert(rows >= 0 && cols >= 0);
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(int r, int c) {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double Matrix::operator()(int r, int c) const {
  assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

std::vector<double> Matrix::matvec(const std::vector<double>& v) const {
  assert(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r)] = acc;
  }
  return out;
}

void Matrix::add_outer(const std::vector<double>& u, double scale) {
  assert(rows_ == cols_ && static_cast<int>(u.size()) == rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      (*this)(r, c) += scale * u[static_cast<std::size_t>(r)] *
                       u[static_cast<std::size_t>(c)];
    }
  }
}

void Matrix::scale(double s) {
  for (auto& x : data_) x *= s;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

Matrix Matrix::cholesky() const {
  assert(rows_ == cols_);
  const int n = rows_;
  double jitter = 0.0;
  // Scale-aware jitter base: proportional to the largest diagonal entry.
  double diag_max = 1e-12;
  for (int i = 0; i < n; ++i) diag_max = std::max(diag_max, std::abs((*this)(i, i)));

  for (int attempt = 0; attempt < 16; ++attempt) {
    Matrix l(n, n, 0.0);
    bool ok = true;
    for (int r = 0; r < n && ok; ++r) {
      for (int c = 0; c <= r; ++c) {
        double sum = (*this)(r, c) + (r == c ? jitter : 0.0);
        for (int k = 0; k < c; ++k) sum -= l(r, k) * l(c, k);
        if (r == c) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l(r, r) = std::sqrt(sum);
        } else {
          l(r, c) = sum / l(c, c);
        }
      }
    }
    if (ok) return l;
    jitter = (jitter == 0.0) ? diag_max * 1e-10 : jitter * 10.0;
  }
  throw std::runtime_error("Matrix::cholesky: matrix is too far from PD");
}

void Matrix::symmetrize() {
  assert(rows_ == cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const auto& x : data_) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace naas::core
