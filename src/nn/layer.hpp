#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace naas::nn {

/// The seven loop dimensions of a convolution workload, following the
/// paper's notation (Fig. 2): N batch, K output channels, C input channels,
/// Y'/X' output rows/columns, R/S kernel rows/columns.
enum class Dim : int { kN = 0, kK, kC, kYp, kXp, kR, kS };

/// Number of loop dimensions.
inline constexpr int kNumDims = 7;

/// Short name for a dimension ("N", "K", "C", "Y'", "X'", "R", "S").
const char* dim_name(Dim d);

/// All dimensions in canonical order.
constexpr std::array<Dim, kNumDims> all_dims() {
  return {Dim::kN, Dim::kK, Dim::kC, Dim::kYp, Dim::kXp, Dim::kR, Dim::kS};
}

/// Workload flavors distinguished by the cost model.
/// - kConv: standard convolution (C is a reduction dimension).
/// - kDepthwiseConv: one filter per channel; C is fixed to 1 and the K loop
///   walks channels, so there is no cross-channel reduction.
/// - kFullyConnected: matrix-vector product expressed as a 1x1/1x1 conv.
enum class LayerKind { kConv, kDepthwiseConv, kFullyConnected };

/// Name of a layer kind ("conv", "dwconv", "fc").
const char* layer_kind_name(LayerKind k);

/// A single convolutional workload in the 7D loop-nest form consumed by the
/// cost model. Spatial input size is derived from output size, stride, and
/// kernel ("same"-style padding assumed; only footprints matter, not edges).
struct ConvLayer {
  std::string name;               ///< human-readable layer name
  LayerKind kind = LayerKind::kConv;
  int batch = 1;                  ///< N
  int out_channels = 1;           ///< K
  int in_channels = 1;            ///< C (1 for depthwise)
  int out_h = 1;                  ///< Y'
  int out_w = 1;                  ///< X'
  int kernel_h = 1;               ///< R
  int kernel_w = 1;               ///< S
  int stride = 1;                 ///< spatial stride (both axes)

  /// Size of the iteration space along dimension `d`.
  int dim_size(Dim d) const;

  /// Total multiply-accumulate operations.
  long long macs() const;

  /// Number of input activation elements (N * C_in_effective * Y * X where
  /// Y/X are derived input spatial extents; depthwise uses K channels).
  long long input_elems() const;

  /// Number of weight elements (K * C * R * S; depthwise K * R * S).
  long long weight_elems() const;

  /// Number of output elements (N * K * Y' * X').
  long long output_elems() const;

  /// Derived input spatial height for a tile of `out_rows` output rows:
  /// (out_rows - 1) * min(stride, R) + R — distinct rows actually read, not
  /// the geometric span (when stride > R, skipped rows are never fetched).
  int input_rows_for(int out_rows) const;

  /// Derived input spatial width for a tile of `out_cols` output columns.
  int input_cols_for(int out_cols) const;

  /// One-line description, e.g. "conv3_1: conv 128x256 k3 s1 @56x56".
  std::string to_string() const;

  friend bool operator==(const ConvLayer& a, const ConvLayer& b);
};

/// Hash over the workload shape (name is ignored): layers with identical
/// shapes share cost-model results, which NetworkCost exploits.
struct ConvLayerShapeHash {
  std::size_t operator()(const ConvLayer& l) const;
};

/// Shape-only equality (ignores the name), pairing with ConvLayerShapeHash.
struct ConvLayerShapeEq {
  bool operator()(const ConvLayer& a, const ConvLayer& b) const;
};

/// Convenience builders.
ConvLayer make_conv(std::string name, int in_ch, int out_ch, int kernel,
                    int stride, int out_hw, int batch = 1);
ConvLayer make_dwconv(std::string name, int channels, int kernel, int stride,
                      int out_hw, int batch = 1);
ConvLayer make_fc(std::string name, int in_features, int out_features,
                  int batch = 1);

}  // namespace naas::nn
