#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace naas::nn {

/// The seven loop dimensions of a workload, following the paper's
/// convolution notation (Fig. 2): N batch, K output channels, C input
/// channels, Y'/X' output rows/columns, R/S kernel rows/columns. Non-conv
/// kinds map their own loop nests onto the same seven slots (see the
/// per-kind table below), so every downstream consumer — mapping encodings,
/// legality, reuse analysis, the batched cost model — works on one fixed
/// 7D machine.
enum class Dim : int { kN = 0, kK, kC, kYp, kXp, kR, kS };

/// Number of loop dimensions.
inline constexpr int kNumDims = 7;

/// Short name for a dimension ("N", "K", "C", "Y'", "X'", "R", "S").
const char* dim_name(Dim d);

/// All dimensions in canonical order.
constexpr std::array<Dim, kNumDims> all_dims() {
  return {Dim::kN, Dim::kK, Dim::kC, Dim::kYp, Dim::kXp, Dim::kR, Dim::kS};
}

/// Workload flavors distinguished by the cost model. Each kind fixes how
/// the seven dims index the three operand tensors (the per-kind
/// dim-semantics tables in cost/reuse):
/// - kConv: standard convolution (C is a reduction dimension).
/// - kDepthwiseConv: one filter per channel; C is fixed to 1 and the K loop
///   walks channels, so there is no cross-channel reduction.
/// - kFullyConnected: matrix-vector product expressed as a 1x1/1x1 conv.
/// - kMatmul: general matrix multiply A[M,K_r] x B[K_r,N_o] with shared
///   (batch-invariant) B, e.g. transformer QKV/FFN projections. Dim map:
///   N=batch, Y'=M (rows), K=N_o (output features), C=K_r (reduction);
///   X'/R/S are pinned to 1.
/// - kAttention: batched matrix multiply where BOTH operands vary with the
///   batch (the "weight" is itself an activation): QK^T score matmuls and
///   attention-weighted value matmuls. Same dim map as kMatmul with
///   N = batch x heads; the weight tensor is additionally indexed by N, so
///   it gets no cross-batch reuse — the traffic pattern that makes LLM
///   decode bandwidth-dominated.
enum class LayerKind {
  kConv,
  kDepthwiseConv,
  kFullyConnected,
  kMatmul,
  kAttention,
};

/// Name of a layer kind ("conv", "dwconv", "fc", "matmul", "attention").
const char* layer_kind_name(LayerKind k);

/// A single workload in the 7D loop-nest form consumed by the cost model,
/// dispatched on `kind`. For conv kinds the spatial input size is derived
/// from output size, stride, and kernel ("same"-style padding assumed; only
/// footprints matter, not edges). Matmul/attention kinds reuse the conv
/// fields under the dim map documented on LayerKind and keep
/// kernel_h/kernel_w/stride/out_w pinned at 1, which makes every conv
/// formula (halo, footprint, reuse) degenerate to the exact matmul form.
struct Workload {
  std::string name;               ///< human-readable layer name
  LayerKind kind = LayerKind::kConv;
  int batch = 1;                  ///< N (batch x heads for attention)
  int out_channels = 1;           ///< K (matmul/attention: output features)
  int in_channels = 1;            ///< C (reduction; 1 for depthwise)
  int out_h = 1;                  ///< Y' (matmul/attention: rows M)
  int out_w = 1;                  ///< X' (1 for matmul/attention)
  int kernel_h = 1;               ///< R (1 for matmul/attention)
  int kernel_w = 1;               ///< S (1 for matmul/attention)
  int stride = 1;                 ///< spatial stride (both axes)

  /// Size of the iteration space along dimension `d`.
  int dim_size(Dim d) const;

  /// Total multiply-accumulate operations.
  long long macs() const;

  /// Number of input activation elements (N * C_in_effective * Y * X where
  /// Y/X are derived input spatial extents; depthwise uses K channels;
  /// matmul/attention degenerate to N * M * K_r).
  long long input_elems() const;

  /// Number of weight elements (K * C * R * S; depthwise K * R * S;
  /// attention scales by N — its second operand is per-sample).
  long long weight_elems() const;

  /// Number of output elements (N * K * Y' * X').
  long long output_elems() const;

  /// Derived input spatial height for a tile of `out_rows` output rows:
  /// (out_rows - 1) * min(stride, R) + R — distinct rows actually read, not
  /// the geometric span (when stride > R, skipped rows are never fetched).
  /// Widened to long long: transformer-scale extents (long sequences times
  /// the stride/kernel factor) must not overflow int before the cast.
  long long input_rows_for(long long out_rows) const;

  /// Derived input spatial width for a tile of `out_cols` output columns.
  long long input_cols_for(long long out_cols) const;

  /// One-line description, e.g. "conv3_1: conv 128x256 k3 s1 @56x56".
  std::string to_string() const;

  friend bool operator==(const Workload& a, const Workload& b);
};

/// Hash over the workload shape (name is ignored): layers with identical
/// shapes share cost-model results, which NetworkCost exploits. The kind
/// participates in the hash, so e.g. a matmul and an attention layer with
/// identical extents never alias a cache entry.
struct LayerShapeHash {
  std::size_t operator()(const Workload& l) const;
};

/// Shape-only equality (ignores the name), pairing with LayerShapeHash.
struct LayerShapeEq {
  bool operator()(const Workload& a, const Workload& b) const;
};

/// Convenience builders.
Workload make_conv(std::string name, int in_ch, int out_ch, int kernel,
                   int stride, int out_hw, int batch = 1);
Workload make_dwconv(std::string name, int channels, int kernel, int stride,
                     int out_hw, int batch = 1);
Workload make_fc(std::string name, int in_features, int out_features,
                 int batch = 1);
/// General matmul: `rows` x `in_features` times `in_features` x
/// `out_features`, with the right operand shared across the batch
/// (transformer projection / FFN layers).
Workload make_matmul(std::string name, int rows, int in_features,
                     int out_features, int batch = 1);
/// Attention score matmul Q x K^T: per (batch x head), a seq_q x head_dim
/// by head_dim x seq_kv product whose BOTH operands are activations.
Workload make_attention_scores(std::string name, int seq_q, int seq_kv,
                               int head_dim, int heads, int batch = 1);
/// Attention context matmul scores x V: per (batch x head), a
/// seq_q x seq_kv by seq_kv x head_dim product (reduction over keys).
Workload make_attention_context(std::string name, int seq_q, int seq_kv,
                                int head_dim, int heads, int batch = 1);

}  // namespace naas::nn
