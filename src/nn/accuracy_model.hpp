#pragma once

#include "nn/ofa_space.hpp"

namespace naas::nn {

/// Synthetic ImageNet top-1 accuracy predictor for OFA-ResNet50 subnets.
///
/// SUBSTITUTION (see DESIGN.md §3): the paper queries the trained
/// Once-For-All supernet for subnet accuracies; no ImageNet training is
/// possible offline, so this deterministic surrogate reproduces the
/// *landscape properties* the NAS level relies upon:
///  - monotone non-decreasing in image size, width, depth, and expand ratio;
///  - diminishing returns (square-root/log saturation in each factor);
///  - calibrated anchors: OFA subnets are *supernet-trained* (progressive
///    shrinking + distillation), so they outperform the scratch-trained
///    ResNet-50 at equal capacity, exactly as in the OFA paper. The
///    ResNet-50-shaped subnet (w=1.0, depths 3/4/6/3, expand 0.25, 224)
///    predicts ~78.4%, the full config ~79.2%, the smallest ~72.8%. The
///    scratch-trained fixed ResNet-50 baseline is the separate constant
///    kResNet50Top1 = 76.3 (torchvision top-1) — the source of the paper's
///    "+2.7%" headline;
///  - a small deterministic per-config jitter (±0.15%) from the config
///    fingerprint so that equal-capacity subnets form a realistic scatter
///    rather than a degenerate plateau.
///
/// The predictor is intentionally *not* fit to any particular published
/// table beyond the anchors; conclusions drawn from it are qualitative
/// (Fig. 10's frontier shape), never absolute accuracy claims.
class AccuracyPredictor {
 public:
  /// Predicted ImageNet top-1 (percent) for an OFA-ResNet50 subnet.
  double predict(const OfaConfig& cfg) const;

  /// Reference accuracy of the fixed (non-OFA) ResNet-50 baseline used in
  /// Fig. 10 and the "+2.7%" headline comparison.
  static constexpr double kResNet50Top1 = 76.3;

  /// Accuracy reported by NHAS for its searched quantized ResNet variant
  /// (used to place the NHAS point in Fig. 10).
  static constexpr double kNhasTop1 = 75.2;
};

}  // namespace naas::nn
