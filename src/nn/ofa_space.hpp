#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "nn/network.hpp"

namespace naas::nn {

/// One subnet choice in the Once-For-All ResNet-50 design space used for the
/// paper's NAS integration (Section II-C / III-A-c):
///  - 3 width multipliers {0.65, 0.8, 1.0},
///  - up to 18 residual blocks (per-stage depths within [2..max],
///    stage maxima {4, 5, 6, 3}),
///  - 3 bottleneck reduction ratios {0.2, 0.25, 0.35} per block,
///  - input image size 128..256 at stride 16.
struct OfaConfig {
  int image_size = 224;             ///< one of 128,144,...,256
  int width_idx = 2;                ///< index into kWidthMults
  std::array<int, 4> depths{3, 4, 6, 3};  ///< blocks per stage
  std::array<int, 18> expand_idx{};  ///< per-block index into kExpandRatios
                                     ///< (only the first sum(depths) used)

  /// Deterministic 64-bit fingerprint (for caching and predictor jitter).
  std::uint64_t fingerprint() const;

  /// Short description like "ofa-r50[224,w1.00,d3463,e...]".
  std::string to_string() const;
};

/// The OFA-ResNet50 space: bounds, sampling, mutation, crossover, and
/// materialization of a config into a Network for the cost model.
class OfaSpace {
 public:
  static constexpr std::array<double, 3> kWidthMults{0.65, 0.8, 1.0};
  static constexpr std::array<double, 3> kExpandRatios{0.2, 0.25, 0.35};
  static constexpr std::array<int, 4> kMaxDepths{4, 5, 6, 3};
  static constexpr std::array<int, 4> kMinDepths{2, 2, 2, 2};
  static constexpr int kMinImage = 128;
  static constexpr int kMaxImage = 256;
  static constexpr int kImageStride = 16;

  /// The full-capacity configuration (maximum depth/width/expand at 224).
  static OfaConfig full_config();

  /// A configuration approximating the standard ResNet-50 (depths 3/4/6/3,
  /// expand 0.25, width 1.0, 224x224) for baseline comparisons.
  static OfaConfig resnet50_config();

  /// Uniformly random valid configuration.
  OfaConfig sample(core::Rng& rng) const;

  /// Returns a copy of `cfg` with each gene resampled with probability
  /// `rate` (at least one gene always changes).
  OfaConfig mutate(const OfaConfig& cfg, core::Rng& rng,
                   double rate = 0.15) const;

  /// Uniform crossover of two parents.
  OfaConfig crossover(const OfaConfig& a, const OfaConfig& b,
                      core::Rng& rng) const;

  /// Clamps all genes into their valid ranges.
  OfaConfig repair(OfaConfig cfg) const;

  /// Materializes the subnet as a workload Network (conv1, bottleneck
  /// blocks with projection shortcuts, FC head).
  Network to_network(const OfaConfig& cfg) const;

  /// log10 of the design-space cardinality (the paper quotes ~1e13).
  double log10_space_size() const;
};

}  // namespace naas::nn
