#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace naas::nn {

/// Builders for the six CNN benchmarks used in the paper's evaluation
/// (Section III-A: VGG16, ResNet50, UNet / MobileNetV2, SqueezeNet,
/// MNasNet) plus a CIFAR-scale network for the NASAIC comparison
/// (Table III), and the transformer workload set (BERT-base / ViT-B/16
/// encoders, LLM decode shape family) from the ROADMAP's
/// scenario-diversity item. All models use batch = 1 as in the paper
/// (Fig. 10).
///
/// Shapes follow the original publications; element-wise/pooling layers are
/// omitted (see Network docs). MNasNet-A1 squeeze-excite blocks are omitted
/// (their MACs are <1% of the network); this is documented in DESIGN.md.

/// VGG16 at 224x224: 13 convs + 3 FC.
Network make_vgg16(int batch = 1);

/// ResNet50 at 224x224: conv1 + 16 bottleneck blocks (3/4/6/3) + FC,
/// including the projection (downsample) convolutions.
Network make_resnet50(int batch = 1);

/// UNet encoder-decoder at 256x256, channel ladder 64..1024, transposed
/// convolutions modeled as 2x2 convs at the upsampled resolution.
Network make_unet(int batch = 1);

/// MobileNetV2 at 224x224 (width 1.0): inverted residual blocks with
/// expand/depthwise/project structure.
Network make_mobilenet_v2(int batch = 1);

/// SqueezeNet v1.0 at 224x224: fire modules (squeeze + 1x1/3x3 expands).
Network make_squeezenet(int batch = 1);

/// MNasNet-A1 at 224x224: MBConv blocks with 3x3/5x5 kernels.
Network make_mnasnet(int batch = 1);

/// Small CIFAR-10 ResNet-style CNN standing in for NASAIC's searched cell
/// network in the Table III comparison (substitution documented in
/// DESIGN.md §3).
Network make_cifar_net(int batch = 1);

/// BERT-base encoder stack: 12 identical blocks (hidden 768, 12 heads,
/// head_dim 64, FFN 3072) at sequence length `seq`. Each block contributes
/// Q/K/V/output projections (kMatmul), the two attention matmuls
/// (kAttention: QK^T scores and scores x V context), and the two FFN
/// matmuls. Blocks are shape-identical, so layer-shape dedup evaluates one.
Network make_bert_base_encoder(int seq = 128, int batch = 1);

/// ViT-B/16 encoder at 224x224: the 16x16 patch-embed convolution
/// (stride-16 conv, the bridge layer between the conv and matmul worlds),
/// 12 BERT-base-sized encoder blocks at sequence length 197
/// (196 patches + CLS), and the classification head.
Network make_vit_b16_encoder(int batch = 1);

/// Single-token LLM decode step, LLaMA-7B-class shapes: 32 blocks of
/// hidden 4096, 32 heads, head_dim 128, gated FFN 11008, seq_q = 1 against
/// a KV cache of `context` tokens. The attention matmuls read a fresh
/// K/V slice per head with no cross-batch reuse (kAttention), making this
/// the bandwidth-dominated shape family of the ROADMAP's scenario item.
Network make_llm_decode(int context = 2048, int batch = 1);

/// The large-model benchmark set of the paper (VGG16, ResNet50, UNet).
std::vector<Network> large_benchmarks(int batch = 1);

/// The light-weight benchmark set (MobileNetV2, SqueezeNet, MNasNet).
std::vector<Network> small_benchmarks(int batch = 1);

/// Lookup by case-insensitive name ("vgg16", "resnet50", "unet",
/// "mobilenetv2", "squeezenet", "mnasnet", "cifarnet",
/// "bert_base_encoder", "vit_b16_encoder", "llm_decode",
/// "llm_decode_8k"); throws std::invalid_argument for unknown names.
Network make_network(const std::string& name, int batch = 1);

}  // namespace naas::nn
