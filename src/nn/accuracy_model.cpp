#include "nn/accuracy_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace naas::nn {

double AccuracyPredictor::predict(const OfaConfig& cfg) const {
  const OfaSpace space;
  const OfaConfig c = space.repair(cfg);

  // Normalized capacity factors in [0, 1].
  const double f_img =
      static_cast<double>(c.image_size - OfaSpace::kMinImage) /
      (OfaSpace::kMaxImage - OfaSpace::kMinImage);
  const double width =
      OfaSpace::kWidthMults[static_cast<std::size_t>(c.width_idx)];
  const double f_width = (width - 0.65) / 0.35;
  const int total_depth =
      std::accumulate(c.depths.begin(), c.depths.end(), 0);
  const double f_depth = (total_depth - 8) / 10.0;  // min 8, max 18 blocks
  double expand_sum = 0.0;
  for (int b = 0; b < total_depth; ++b) {
    expand_sum += OfaSpace::kExpandRatios[static_cast<std::size_t>(
        c.expand_idx[static_cast<std::size_t>(std::min(b, 17))])];
  }
  const double f_expand =
      (expand_sum / total_depth - 0.2) / 0.15;  // ratios span [0.2, 0.35]

  // Saturating contributions. Coefficients are chosen so the anchors in the
  // header documentation hold; each factor saturates via sqrt.
  double acc = 72.8;
  acc += 2.6 * std::sqrt(f_img);
  acc += 1.9 * std::sqrt(f_width);
  acc += 1.2 * std::sqrt(std::max(0.0, f_depth));
  acc += 0.7 * std::sqrt(std::max(0.0, f_expand));
  // Wide-but-shallow and deep-but-narrow nets underperform balanced ones.
  acc -= 0.3 * std::abs(f_width - f_depth);

  // Deterministic jitter in [-0.15, 0.15] from the fingerprint.
  const std::uint64_t h = c.fingerprint();
  const double unit =
      static_cast<double>(h % 10007ULL) / 10006.0;  // [0, 1]
  acc += (unit - 0.5) * 0.3;

  return std::clamp(acc, 70.0, 80.5);
}

}  // namespace naas::nn
