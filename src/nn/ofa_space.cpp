#include "nn/ofa_space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace naas::nn {
namespace {

/// Rounds channels to the nearest multiple of 8 (hardware-friendly widths,
/// as in the OFA reference implementation), minimum 8.
int round_channels(double ch) {
  const int rounded = static_cast<int>(std::lround(ch / 8.0)) * 8;
  return std::max(8, rounded);
}

}  // namespace

std::uint64_t OfaConfig::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(image_size));
  mix(static_cast<std::uint64_t>(width_idx));
  for (int d : depths) mix(static_cast<std::uint64_t>(d));
  int total = std::accumulate(depths.begin(), depths.end(), 0);
  for (int i = 0; i < total && i < 18; ++i)
    mix(static_cast<std::uint64_t>(expand_idx[static_cast<std::size_t>(i)]));
  return h;
}

std::string OfaConfig::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "ofa-r50[%d,w%.2f,d%d%d%d%d]", image_size,
                OfaSpace::kWidthMults[static_cast<std::size_t>(width_idx)],
                depths[0], depths[1], depths[2], depths[3]);
  return buf;
}

OfaConfig OfaSpace::full_config() {
  OfaConfig cfg;
  cfg.image_size = 224;
  cfg.width_idx = 2;
  cfg.depths = kMaxDepths;
  cfg.expand_idx.fill(2);
  return cfg;
}

OfaConfig OfaSpace::resnet50_config() {
  OfaConfig cfg;
  cfg.image_size = 224;
  cfg.width_idx = 2;
  cfg.depths = {3, 4, 6, 3};
  cfg.expand_idx.fill(1);  // 0.25, the classic bottleneck ratio
  return cfg;
}

OfaConfig OfaSpace::sample(core::Rng& rng) const {
  OfaConfig cfg;
  const int steps = (kMaxImage - kMinImage) / kImageStride;
  cfg.image_size = kMinImage + kImageStride * rng.uniform_int(0, steps);
  cfg.width_idx = rng.uniform_int(0, 2);
  for (int s = 0; s < 4; ++s) {
    cfg.depths[static_cast<std::size_t>(s)] = rng.uniform_int(
        kMinDepths[static_cast<std::size_t>(s)],
        kMaxDepths[static_cast<std::size_t>(s)]);
  }
  for (auto& e : cfg.expand_idx) e = rng.uniform_int(0, 2);
  return cfg;
}

OfaConfig OfaSpace::mutate(const OfaConfig& cfg, core::Rng& rng,
                           double rate) const {
  OfaConfig out = cfg;
  bool changed = false;
  const int steps = (kMaxImage - kMinImage) / kImageStride;
  if (rng.bernoulli(rate)) {
    out.image_size = kMinImage + kImageStride * rng.uniform_int(0, steps);
    changed = true;
  }
  if (rng.bernoulli(rate)) {
    out.width_idx = rng.uniform_int(0, 2);
    changed = true;
  }
  for (int s = 0; s < 4; ++s) {
    if (rng.bernoulli(rate)) {
      out.depths[static_cast<std::size_t>(s)] = rng.uniform_int(
          kMinDepths[static_cast<std::size_t>(s)],
          kMaxDepths[static_cast<std::size_t>(s)]);
      changed = true;
    }
  }
  for (auto& e : out.expand_idx) {
    if (rng.bernoulli(rate)) {
      e = rng.uniform_int(0, 2);
      changed = true;
    }
  }
  if (!changed) {
    // Guarantee progress: flip one *active* expand ratio (genes beyond
    // sum(depths) do not affect the decoded subnet or its fingerprint).
    const int active =
        std::accumulate(out.depths.begin(), out.depths.end(), 0);
    auto& e = out.expand_idx[static_cast<std::size_t>(
        rng.uniform_int(0, std::min(active, 18) - 1))];
    e = (e + 1 + rng.uniform_int(0, 1)) % 3;
  }
  return out;
}

OfaConfig OfaSpace::crossover(const OfaConfig& a, const OfaConfig& b,
                              core::Rng& rng) const {
  OfaConfig out;
  out.image_size = rng.bernoulli(0.5) ? a.image_size : b.image_size;
  out.width_idx = rng.bernoulli(0.5) ? a.width_idx : b.width_idx;
  for (std::size_t s = 0; s < 4; ++s)
    out.depths[s] = rng.bernoulli(0.5) ? a.depths[s] : b.depths[s];
  for (std::size_t i = 0; i < 18; ++i)
    out.expand_idx[i] = rng.bernoulli(0.5) ? a.expand_idx[i] : b.expand_idx[i];
  return out;
}

OfaConfig OfaSpace::repair(OfaConfig cfg) const {
  cfg.image_size = std::clamp(cfg.image_size, kMinImage, kMaxImage);
  cfg.image_size =
      kMinImage +
      kImageStride * ((cfg.image_size - kMinImage) / kImageStride);
  cfg.width_idx = std::clamp(cfg.width_idx, 0, 2);
  for (std::size_t s = 0; s < 4; ++s) {
    cfg.depths[s] = std::clamp(cfg.depths[s], kMinDepths[s], kMaxDepths[s]);
  }
  for (auto& e : cfg.expand_idx) e = std::clamp(e, 0, 2);
  return cfg;
}

Network OfaSpace::to_network(const OfaConfig& cfg) const {
  const double w = kWidthMults[static_cast<std::size_t>(cfg.width_idx)];
  Network net(cfg.to_string(), {});
  const int stem = round_channels(64 * w);
  const int conv1_hw = cfg.image_size / 2;
  net.add(make_conv("conv1", 3, stem, 7, 2, conv1_hw));

  const std::array<int, 4> base_out{256, 512, 1024, 2048};
  int in_ch = stem;
  int hw = cfg.image_size / 4;  // after the stem max-pool
  int block_index = 0;
  for (int s = 0; s < 4; ++s) {
    const int out_ch = round_channels(base_out[static_cast<std::size_t>(s)] * w);
    for (int b = 0; b < cfg.depths[static_cast<std::size_t>(s)]; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      if (stride == 2) hw /= 2;
      const double ratio = kExpandRatios[static_cast<std::size_t>(
          cfg.expand_idx[static_cast<std::size_t>(
              std::min(block_index, 17))])];
      const int mid = round_channels(out_ch * ratio);
      const std::string base =
          "s" + std::to_string(s + 1) + "b" + std::to_string(b);
      net.add(make_conv(base + "_1x1a", in_ch, mid, 1, 1,
                        stride == 2 ? hw * 2 : hw));
      net.add(make_conv(base + "_3x3", mid, mid, 3, stride, hw));
      net.add(make_conv(base + "_1x1b", mid, out_ch, 1, 1, hw));
      if (b == 0) {
        net.add(make_conv(base + "_proj", in_ch, out_ch, 1, stride, hw));
      }
      in_ch = out_ch;
      ++block_index;
    }
  }
  net.add(make_fc("fc", in_ch, 1000));
  return net;
}

double OfaSpace::log10_space_size() const {
  // images * widths * depth combos * expands^18
  const double images = (kMaxImage - kMinImage) / kImageStride + 1;
  double combos = images * 3.0;
  for (std::size_t s = 0; s < 4; ++s)
    combos *= kMaxDepths[s] - kMinDepths[s] + 1;
  return std::log10(combos) + 18.0 * std::log10(3.0);
}

}  // namespace naas::nn
