#include "nn/layer.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace naas::nn {

const char* dim_name(Dim d) {
  switch (d) {
    case Dim::kN: return "N";
    case Dim::kK: return "K";
    case Dim::kC: return "C";
    case Dim::kYp: return "Y'";
    case Dim::kXp: return "X'";
    case Dim::kR: return "R";
    case Dim::kS: return "S";
  }
  return "?";
}

const char* layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kDepthwiseConv: return "dwconv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kMatmul: return "matmul";
    case LayerKind::kAttention: return "attention";
  }
  return "?";
}

int Workload::dim_size(Dim d) const {
  switch (d) {
    case Dim::kN: return batch;
    case Dim::kK: return out_channels;
    case Dim::kC: return in_channels;
    case Dim::kYp: return out_h;
    case Dim::kXp: return out_w;
    case Dim::kR: return kernel_h;
    case Dim::kS: return kernel_w;
  }
  return 1;
}

long long Workload::macs() const {
  long long m = 1;
  for (Dim d : all_dims()) m *= dim_size(d);
  return m;
}

long long Workload::input_elems() const {
  const long long channels =
      kind == LayerKind::kDepthwiseConv ? out_channels : in_channels;
  return static_cast<long long>(batch) * channels *
         input_rows_for(out_h) * input_cols_for(out_w);
}

long long Workload::weight_elems() const {
  const long long per_filter = static_cast<long long>(in_channels) *
                               kernel_h * kernel_w;
  const long long shared = static_cast<long long>(out_channels) * per_filter;
  // Attention's second operand is an activation: one copy per batch x head
  // slice, never shared across N.
  return kind == LayerKind::kAttention ? shared * batch : shared;
}

long long Workload::output_elems() const {
  return static_cast<long long>(batch) * out_channels * out_h * out_w;
}

long long Workload::input_rows_for(long long out_rows) const {
  return (out_rows - 1) * std::min<long long>(stride, kernel_h) + kernel_h;
}

long long Workload::input_cols_for(long long out_cols) const {
  return (out_cols - 1) * std::min<long long>(stride, kernel_w) + kernel_w;
}

std::string Workload::to_string() const {
  char buf[160];
  if (kind == LayerKind::kMatmul || kind == LayerKind::kAttention) {
    // GEMM view: M x K_r x N_o (dims Y' x C x K), heads folded into batch.
    std::snprintf(buf, sizeof buf, "%s: %s m%d k%d n%d b%d", name.c_str(),
                  layer_kind_name(kind), out_h, in_channels, out_channels,
                  batch);
  } else {
    std::snprintf(buf, sizeof buf, "%s: %s %dx%d k%dx%d s%d @%dx%d n%d",
                  name.c_str(), layer_kind_name(kind), in_channels,
                  out_channels, kernel_h, kernel_w, stride, out_h, out_w,
                  batch);
  }
  return buf;
}

bool operator==(const Workload& a, const Workload& b) {
  return a.name == b.name && LayerShapeEq{}(a, b);
}

std::size_t LayerShapeHash::operator()(const Workload& l) const {
  std::size_t h = static_cast<std::size_t>(l.kind);
  auto mix = [&h](long long v) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  mix(l.batch);
  mix(l.out_channels);
  mix(l.in_channels);
  mix(l.out_h);
  mix(l.out_w);
  mix(l.kernel_h);
  mix(l.kernel_w);
  mix(l.stride);
  return h;
}

bool LayerShapeEq::operator()(const Workload& a, const Workload& b) const {
  return a.kind == b.kind && a.batch == b.batch &&
         a.out_channels == b.out_channels && a.in_channels == b.in_channels &&
         a.out_h == b.out_h && a.out_w == b.out_w &&
         a.kernel_h == b.kernel_h && a.kernel_w == b.kernel_w &&
         a.stride == b.stride;
}

Workload make_conv(std::string name, int in_ch, int out_ch, int kernel,
                   int stride, int out_hw, int batch) {
  Workload l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.batch = batch;
  l.in_channels = in_ch;
  l.out_channels = out_ch;
  l.kernel_h = kernel;
  l.kernel_w = kernel;
  l.stride = stride;
  l.out_h = out_hw;
  l.out_w = out_hw;
  return l;
}

Workload make_dwconv(std::string name, int channels, int kernel, int stride,
                     int out_hw, int batch) {
  Workload l;
  l.name = std::move(name);
  l.kind = LayerKind::kDepthwiseConv;
  l.batch = batch;
  l.in_channels = 1;  // no cross-channel reduction
  l.out_channels = channels;
  l.kernel_h = kernel;
  l.kernel_w = kernel;
  l.stride = stride;
  l.out_h = out_hw;
  l.out_w = out_hw;
  return l;
}

Workload make_fc(std::string name, int in_features, int out_features,
                 int batch) {
  Workload l;
  l.name = std::move(name);
  l.kind = LayerKind::kFullyConnected;
  l.batch = batch;
  l.in_channels = in_features;
  l.out_channels = out_features;
  l.kernel_h = 1;
  l.kernel_w = 1;
  l.stride = 1;
  l.out_h = 1;
  l.out_w = 1;
  return l;
}

Workload make_matmul(std::string name, int rows, int in_features,
                     int out_features, int batch) {
  Workload l;
  l.name = std::move(name);
  l.kind = LayerKind::kMatmul;
  l.batch = batch;
  l.out_h = rows;
  l.in_channels = in_features;
  l.out_channels = out_features;
  l.out_w = 1;
  l.kernel_h = 1;
  l.kernel_w = 1;
  l.stride = 1;
  return l;
}

Workload make_attention_scores(std::string name, int seq_q, int seq_kv,
                               int head_dim, int heads, int batch) {
  // Q[seq_q, head_dim] x K^T[head_dim, seq_kv] per (batch x head):
  // M = seq_q, K_r = head_dim, N_o = seq_kv.
  Workload l = make_matmul(std::move(name), seq_q, head_dim, seq_kv,
                           batch * heads);
  l.kind = LayerKind::kAttention;
  return l;
}

Workload make_attention_context(std::string name, int seq_q, int seq_kv,
                                int head_dim, int heads, int batch) {
  // scores[seq_q, seq_kv] x V[seq_kv, head_dim] per (batch x head):
  // M = seq_q, K_r = seq_kv, N_o = head_dim.
  Workload l = make_matmul(std::move(name), seq_q, seq_kv, head_dim,
                           batch * heads);
  l.kind = LayerKind::kAttention;
  return l;
}

}  // namespace naas::nn
