#include "nn/layer.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace naas::nn {

const char* dim_name(Dim d) {
  switch (d) {
    case Dim::kN: return "N";
    case Dim::kK: return "K";
    case Dim::kC: return "C";
    case Dim::kYp: return "Y'";
    case Dim::kXp: return "X'";
    case Dim::kR: return "R";
    case Dim::kS: return "S";
  }
  return "?";
}

const char* layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kDepthwiseConv: return "dwconv";
    case LayerKind::kFullyConnected: return "fc";
  }
  return "?";
}

int ConvLayer::dim_size(Dim d) const {
  switch (d) {
    case Dim::kN: return batch;
    case Dim::kK: return out_channels;
    case Dim::kC: return in_channels;
    case Dim::kYp: return out_h;
    case Dim::kXp: return out_w;
    case Dim::kR: return kernel_h;
    case Dim::kS: return kernel_w;
  }
  return 1;
}

long long ConvLayer::macs() const {
  long long m = 1;
  for (Dim d : all_dims()) m *= dim_size(d);
  return m;
}

long long ConvLayer::input_elems() const {
  const long long channels =
      kind == LayerKind::kDepthwiseConv ? out_channels : in_channels;
  return static_cast<long long>(batch) * channels *
         input_rows_for(out_h) * input_cols_for(out_w);
}

long long ConvLayer::weight_elems() const {
  const long long per_filter = static_cast<long long>(in_channels) *
                               kernel_h * kernel_w;
  return static_cast<long long>(out_channels) * per_filter;
}

long long ConvLayer::output_elems() const {
  return static_cast<long long>(batch) * out_channels * out_h * out_w;
}

int ConvLayer::input_rows_for(int out_rows) const {
  return (out_rows - 1) * std::min(stride, kernel_h) + kernel_h;
}

int ConvLayer::input_cols_for(int out_cols) const {
  return (out_cols - 1) * std::min(stride, kernel_w) + kernel_w;
}

std::string ConvLayer::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s: %s %dx%d k%dx%d s%d @%dx%d n%d",
                name.c_str(), layer_kind_name(kind), in_channels, out_channels,
                kernel_h, kernel_w, stride, out_h, out_w, batch);
  return buf;
}

bool operator==(const ConvLayer& a, const ConvLayer& b) {
  return a.name == b.name && ConvLayerShapeEq{}(a, b);
}

std::size_t ConvLayerShapeHash::operator()(const ConvLayer& l) const {
  std::size_t h = static_cast<std::size_t>(l.kind);
  auto mix = [&h](long long v) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  mix(l.batch);
  mix(l.out_channels);
  mix(l.in_channels);
  mix(l.out_h);
  mix(l.out_w);
  mix(l.kernel_h);
  mix(l.kernel_w);
  mix(l.stride);
  return h;
}

bool ConvLayerShapeEq::operator()(const ConvLayer& a, const ConvLayer& b) const {
  return a.kind == b.kind && a.batch == b.batch &&
         a.out_channels == b.out_channels && a.in_channels == b.in_channels &&
         a.out_h == b.out_h && a.out_w == b.out_w &&
         a.kernel_h == b.kernel_h && a.kernel_w == b.kernel_w &&
         a.stride == b.stride;
}

ConvLayer make_conv(std::string name, int in_ch, int out_ch, int kernel,
                    int stride, int out_hw, int batch) {
  ConvLayer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.batch = batch;
  l.in_channels = in_ch;
  l.out_channels = out_ch;
  l.kernel_h = kernel;
  l.kernel_w = kernel;
  l.stride = stride;
  l.out_h = out_hw;
  l.out_w = out_hw;
  return l;
}

ConvLayer make_dwconv(std::string name, int channels, int kernel, int stride,
                      int out_hw, int batch) {
  ConvLayer l;
  l.name = std::move(name);
  l.kind = LayerKind::kDepthwiseConv;
  l.batch = batch;
  l.in_channels = 1;  // no cross-channel reduction
  l.out_channels = channels;
  l.kernel_h = kernel;
  l.kernel_w = kernel;
  l.stride = stride;
  l.out_h = out_hw;
  l.out_w = out_hw;
  return l;
}

ConvLayer make_fc(std::string name, int in_features, int out_features,
                  int batch) {
  ConvLayer l;
  l.name = std::move(name);
  l.kind = LayerKind::kFullyConnected;
  l.batch = batch;
  l.in_channels = in_features;
  l.out_channels = out_features;
  l.kernel_h = 1;
  l.kernel_w = 1;
  l.stride = 1;
  l.out_h = 1;
  l.out_w = 1;
  return l;
}

}  // namespace naas::nn
