#include "nn/network.hpp"

#include <sstream>
#include <unordered_map>

namespace naas::nn {

long long Network::total_macs() const {
  long long total = 0;
  for (const auto& l : layers_) total += l.macs();
  return total;
}

long long Network::total_weights() const {
  long long total = 0;
  for (const auto& l : layers_) total += l.weight_elems();
  return total;
}

std::vector<std::pair<Workload, int>> Network::unique_layers() const {
  std::vector<std::pair<Workload, int>> out;
  std::unordered_map<Workload, std::size_t, LayerShapeHash,
                     LayerShapeEq>
      index;
  for (const auto& l : layers_) {
    auto it = index.find(l);
    if (it == index.end()) {
      index.emplace(l, out.size());
      out.emplace_back(l, 1);
    } else {
      ++out[it->second].second;
    }
  }
  return out;
}

std::string Network::to_string() const {
  std::ostringstream os;
  os << name_ << " (" << layers_.size() << " layers, "
     << total_macs() / 1000000 << " MMACs, " << total_weights() / 1000
     << "K weights)\n";
  for (const auto& l : layers_) os << "  " << l.to_string() << '\n';
  return os.str();
}

}  // namespace naas::nn
