#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace naas::nn {

/// An ordered list of workloads (conv, depthwise, fc, matmul, attention)
/// forming one benchmark network. Element-wise ops (ReLU, BN, residual
/// adds, pooling, softmax, layernorm) are not modeled, matching
/// MAESTRO-based evaluation methodology where the dense tensor ops
/// dominate.
class Network {
 public:
  Network() = default;
  Network(std::string name, std::vector<Workload> layers)
      : name_(std::move(name)), layers_(std::move(layers)) {}

  const std::string& name() const { return name_; }
  const std::vector<Workload>& layers() const { return layers_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }

  /// Appends a layer.
  void add(Workload layer) { layers_.push_back(std::move(layer)); }

  /// Total MACs across all layers.
  long long total_macs() const;

  /// Total weight elements across all layers.
  long long total_weights() const;

  /// Unique layer shapes with multiplicities, preserving first-seen order.
  /// Searching/evaluating per unique shape and multiplying by the count is a
  /// large speedup for networks with repeated blocks (ResNet, MobileNet).
  std::vector<std::pair<Workload, int>> unique_layers() const;

  /// Multi-line human-readable summary.
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<Workload> layers_;
};

}  // namespace naas::nn
