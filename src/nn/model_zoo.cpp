#include "nn/model_zoo.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace naas::nn {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Network make_vgg16(int batch) {
  Network net("VGG16", {});
  struct Block {
    int out_ch;
    int convs;
    int hw;
  };
  // Five conv stages; spatial size halves after each stage's max-pool.
  const Block blocks[] = {
      {64, 2, 224}, {128, 2, 112}, {256, 3, 56}, {512, 3, 28}, {512, 3, 14}};
  int in_ch = 3;
  int stage = 1;
  for (const auto& b : blocks) {
    for (int i = 1; i <= b.convs; ++i) {
      net.add(make_conv("conv" + std::to_string(stage) + "_" +
                            std::to_string(i),
                        in_ch, b.out_ch, 3, 1, b.hw, batch));
      in_ch = b.out_ch;
    }
    ++stage;
  }
  net.add(make_fc("fc6", 512 * 7 * 7, 4096, batch));
  net.add(make_fc("fc7", 4096, 4096, batch));
  net.add(make_fc("fc8", 4096, 1000, batch));
  return net;
}

Network make_resnet50(int batch) {
  Network net("ResNet50", {});
  net.add(make_conv("conv1", 3, 64, 7, 2, 112, batch));
  // (mid channels, out channels, blocks, output spatial size)
  struct Stage {
    int mid;
    int out;
    int blocks;
    int hw;
  };
  const Stage stages[] = {
      {64, 256, 3, 56}, {128, 512, 4, 28}, {256, 1024, 6, 14},
      {512, 2048, 3, 7}};
  int in_ch = 64;  // after conv1 + maxpool
  for (int s = 0; s < 4; ++s) {
    const auto& st = stages[s];
    for (int b = 0; b < st.blocks; ++b) {
      const std::string base =
          "res" + std::to_string(s + 2) + static_cast<char>('a' + b);
      // The first block of stages 3..5 downsamples spatially inside its
      // 3x3 conv (ResNet v1.5 convention).
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      const int in_hw = (b == 0 && s > 0) ? st.hw * 2 : st.hw;
      (void)in_hw;
      net.add(make_conv(base + "_1x1a", in_ch, st.mid, 1, 1,
                        stride == 2 ? st.hw * 2 : st.hw, batch));
      net.add(make_conv(base + "_3x3", st.mid, st.mid, 3, stride, st.hw,
                        batch));
      net.add(make_conv(base + "_1x1b", st.mid, st.out, 1, 1, st.hw, batch));
      if (b == 0) {
        // Projection shortcut matching channel count (and stride).
        net.add(make_conv(base + "_proj", in_ch, st.out, 1, stride, st.hw,
                          batch));
      }
      in_ch = st.out;
    }
  }
  net.add(make_fc("fc", 2048, 1000, batch));
  return net;
}

Network make_unet(int batch) {
  Network net("UNet", {});
  const int chans[] = {64, 128, 256, 512, 1024};
  // Encoder: two 3x3 convs per level at 256/128/64/32/16.
  int in_ch = 3;
  for (int lvl = 0; lvl < 5; ++lvl) {
    const int hw = 256 >> lvl;
    const int ch = chans[lvl];
    net.add(make_conv("enc" + std::to_string(lvl + 1) + "_1", in_ch, ch, 3, 1,
                      hw, batch));
    net.add(make_conv("enc" + std::to_string(lvl + 1) + "_2", ch, ch, 3, 1,
                      hw, batch));
    in_ch = ch;
  }
  // Decoder: 2x2 up-convolution then two 3x3 convs on the concatenated
  // (skip + upsampled) feature map.
  for (int lvl = 3; lvl >= 0; --lvl) {
    const int hw = 256 >> lvl;
    const int ch = chans[lvl];
    net.add(make_conv("up" + std::to_string(lvl + 1), ch * 2, ch, 2, 1, hw,
                      batch));
    net.add(make_conv("dec" + std::to_string(lvl + 1) + "_1", ch * 2, ch, 3, 1,
                      hw, batch));
    net.add(make_conv("dec" + std::to_string(lvl + 1) + "_2", ch, ch, 3, 1,
                      hw, batch));
  }
  net.add(make_conv("head", 64, 2, 1, 1, 256, batch));
  return net;
}

Network make_mobilenet_v2(int batch) {
  Network net("MobileNetV2", {});
  net.add(make_conv("conv0", 3, 32, 3, 2, 112, batch));
  struct BlockCfg {
    int expand;  // expansion factor t
    int out_ch;  // c
    int repeat;  // n
    int stride;  // s (applied to the first block of the group)
  };
  const BlockCfg cfgs[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                           {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                           {6, 320, 1, 1}};
  int in_ch = 32;
  int hw = 112;
  int block_id = 0;
  for (const auto& cfg : cfgs) {
    for (int i = 0; i < cfg.repeat; ++i) {
      const int stride = (i == 0) ? cfg.stride : 1;
      const int out_hw = (stride == 2) ? hw / 2 : hw;
      const int mid = in_ch * cfg.expand;
      const std::string base = "b" + std::to_string(block_id);
      if (cfg.expand != 1) {
        net.add(make_conv(base + "_expand", in_ch, mid, 1, 1, hw, batch));
      }
      net.add(make_dwconv(base + "_dw", mid, 3, stride, out_hw, batch));
      net.add(make_conv(base + "_project", mid, cfg.out_ch, 1, 1, out_hw,
                        batch));
      in_ch = cfg.out_ch;
      hw = out_hw;
      ++block_id;
    }
  }
  net.add(make_conv("conv_last", 320, 1280, 1, 1, 7, batch));
  net.add(make_fc("fc", 1280, 1000, batch));
  return net;
}

Network make_squeezenet(int batch) {
  Network net("SqueezeNet", {});
  net.add(make_conv("conv1", 3, 96, 7, 2, 112, batch));
  struct Fire {
    int squeeze;
    int expand;  // per branch; total output is 2 * expand
    int hw;
  };
  // v1.0 fire modules; spatial sizes after the three max-pools.
  const Fire fires[] = {{16, 64, 56},  {16, 64, 56},  {32, 128, 56},
                        {32, 128, 28}, {48, 192, 28}, {48, 192, 28},
                        {64, 256, 28}, {64, 256, 14}};
  int in_ch = 96;
  for (int i = 0; i < 8; ++i) {
    const auto& f = fires[i];
    const std::string base = "fire" + std::to_string(i + 2);
    net.add(make_conv(base + "_squeeze", in_ch, f.squeeze, 1, 1, f.hw, batch));
    net.add(make_conv(base + "_e1x1", f.squeeze, f.expand, 1, 1, f.hw, batch));
    net.add(make_conv(base + "_e3x3", f.squeeze, f.expand, 3, 1, f.hw, batch));
    in_ch = f.expand * 2;
  }
  net.add(make_conv("conv10", 512, 1000, 1, 1, 14, batch));
  return net;
}

Network make_mnasnet(int batch) {
  Network net("MNasNet", {});
  net.add(make_conv("conv0", 3, 32, 3, 2, 112, batch));
  // SepConv: depthwise 3x3 + linear pointwise.
  net.add(make_dwconv("sep_dw", 32, 3, 1, 112, batch));
  net.add(make_conv("sep_pw", 32, 16, 1, 1, 112, batch));
  struct BlockCfg {
    int expand;
    int out_ch;
    int repeat;
    int stride;
    int kernel;
  };
  // MNasNet-A1 backbone (squeeze-excite omitted; <1% of MACs).
  const BlockCfg cfgs[] = {{6, 24, 2, 2, 3},  {3, 40, 3, 2, 5},
                           {6, 80, 4, 2, 3},  {6, 112, 2, 1, 3},
                           {6, 160, 3, 2, 5}, {6, 320, 1, 1, 3}};
  int in_ch = 16;
  int hw = 112;
  int block_id = 0;
  for (const auto& cfg : cfgs) {
    for (int i = 0; i < cfg.repeat; ++i) {
      const int stride = (i == 0) ? cfg.stride : 1;
      const int out_hw = (stride == 2) ? hw / 2 : hw;
      const int mid = in_ch * cfg.expand;
      const std::string base = "mb" + std::to_string(block_id);
      net.add(make_conv(base + "_expand", in_ch, mid, 1, 1, hw, batch));
      net.add(make_dwconv(base + "_dw", mid, cfg.kernel, stride, out_hw,
                          batch));
      net.add(make_conv(base + "_project", mid, cfg.out_ch, 1, 1, out_hw,
                        batch));
      in_ch = cfg.out_ch;
      hw = out_hw;
      ++block_id;
    }
  }
  net.add(make_conv("conv_last", 320, 1280, 1, 1, 7, batch));
  net.add(make_fc("fc", 1280, 1000, batch));
  return net;
}

Network make_cifar_net(int batch) {
  Network net("CifarNet", {});
  net.add(make_conv("conv0", 3, 64, 3, 1, 32, batch));
  struct Stage {
    int ch;
    int hw;
  };
  const Stage stages[] = {{64, 32}, {128, 16}, {256, 8}};
  int in_ch = 64;
  for (int s = 0; s < 3; ++s) {
    const auto& st = stages[s];
    for (int b = 0; b < 2; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      const std::string base =
          "s" + std::to_string(s) + "b" + std::to_string(b);
      net.add(make_conv(base + "_1", in_ch, st.ch, 3, stride, st.hw, batch));
      net.add(make_conv(base + "_2", st.ch, st.ch, 3, 1, st.hw, batch));
      in_ch = st.ch;
    }
  }
  net.add(make_fc("fc", 256, 10, batch));
  return net;
}

namespace {

/// One pre-norm transformer encoder block in the 7D workload form: the
/// four hidden x hidden projections, the two attention matmuls, and the
/// two-matmul FFN. `seq_kv` differs from `seq_q` only for decode.
void add_encoder_block(Network& net, const std::string& base, int seq_q,
                       int seq_kv, int hidden, int heads, int ffn,
                       int batch) {
  const int head_dim = hidden / heads;
  net.add(make_matmul(base + "_q_proj", seq_q, hidden, hidden, batch));
  net.add(make_matmul(base + "_k_proj", seq_q, hidden, hidden, batch));
  net.add(make_matmul(base + "_v_proj", seq_q, hidden, hidden, batch));
  net.add(make_attention_scores(base + "_attn_qk", seq_q, seq_kv, head_dim,
                                heads, batch));
  net.add(make_attention_context(base + "_attn_av", seq_q, seq_kv, head_dim,
                                 heads, batch));
  net.add(make_matmul(base + "_o_proj", seq_q, hidden, hidden, batch));
  net.add(make_matmul(base + "_ffn_up", seq_q, hidden, ffn, batch));
  net.add(make_matmul(base + "_ffn_down", seq_q, ffn, hidden, batch));
}

}  // namespace

Network make_bert_base_encoder(int seq, int batch) {
  Network net("BertBaseEncoder", {});
  for (int b = 0; b < 12; ++b)
    add_encoder_block(net, "blk" + std::to_string(b), seq, seq, 768, 12,
                      3072, batch);
  return net;
}

Network make_vit_b16_encoder(int batch) {
  Network net("ViTB16Encoder", {});
  // Patch embedding: a 16x16/stride-16 conv from RGB to the hidden size —
  // the one conv layer in an otherwise matmul/attention network.
  net.add(make_conv("patch_embed", 3, 768, 16, 16, 14, batch));
  const int seq = 14 * 14 + 1;  // 196 patches + CLS token
  for (int b = 0; b < 12; ++b)
    add_encoder_block(net, "blk" + std::to_string(b), seq, seq, 768, 12,
                      3072, batch);
  net.add(make_fc("head", 768, 1000, batch));
  return net;
}

Network make_llm_decode(int context, int batch) {
  Network net("LlmDecode" + std::to_string(context), {});
  const int hidden = 4096, heads = 32, head_dim = hidden / heads;
  const int ffn = 11008;  // LLaMA-7B gated FFN width
  for (int b = 0; b < 32; ++b) {
    const std::string base = "blk" + std::to_string(b);
    net.add(make_matmul(base + "_q_proj", 1, hidden, hidden, batch));
    net.add(make_matmul(base + "_k_proj", 1, hidden, hidden, batch));
    net.add(make_matmul(base + "_v_proj", 1, hidden, hidden, batch));
    // One fresh query token against the full KV cache.
    net.add(make_attention_scores(base + "_attn_qk", 1, context, head_dim,
                                  heads, batch));
    net.add(make_attention_context(base + "_attn_av", 1, context, head_dim,
                                   heads, batch));
    net.add(make_matmul(base + "_o_proj", 1, hidden, hidden, batch));
    // Gated FFN: gate and up projections share a shape, dedup covers it.
    net.add(make_matmul(base + "_ffn_gate", 1, hidden, ffn, batch));
    net.add(make_matmul(base + "_ffn_up", 1, hidden, ffn, batch));
    net.add(make_matmul(base + "_ffn_down", 1, ffn, hidden, batch));
  }
  net.add(make_matmul("lm_head", 1, hidden, 32000, batch));
  return net;
}

std::vector<Network> large_benchmarks(int batch) {
  return {make_vgg16(batch), make_resnet50(batch), make_unet(batch)};
}

std::vector<Network> small_benchmarks(int batch) {
  return {make_mobilenet_v2(batch), make_squeezenet(batch),
          make_mnasnet(batch)};
}

Network make_network(const std::string& name, int batch) {
  const std::string n = lower(name);
  if (n == "vgg16" || n == "vgg") return make_vgg16(batch);
  if (n == "resnet50" || n == "resnet") return make_resnet50(batch);
  if (n == "unet") return make_unet(batch);
  if (n == "mobilenetv2" || n == "mobilenet") return make_mobilenet_v2(batch);
  if (n == "squeezenet") return make_squeezenet(batch);
  if (n == "mnasnet") return make_mnasnet(batch);
  if (n == "cifarnet" || n == "cifar") return make_cifar_net(batch);
  if (n == "bert_base_encoder" || n == "bert") {
    return make_bert_base_encoder(128, batch);
  }
  if (n == "vit_b16_encoder" || n == "vit") return make_vit_b16_encoder(batch);
  if (n == "llm_decode") return make_llm_decode(2048, batch);
  if (n == "llm_decode_8k") return make_llm_decode(8192, batch);
  throw std::invalid_argument("unknown network: " + name);
}

}  // namespace naas::nn
