#include "nas/nas_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "search/cma_es.hpp"

namespace naas::nas {
namespace {

/// Scored subnet candidate inside the evolution loop.
struct Scored {
  nn::OfaConfig cfg;
  double accuracy = 0;
  double edp = std::numeric_limits<double>::infinity();
  /// Config fingerprint (the edp_cache key), kept as the sort tie-breaker:
  /// selection must order equal-EDP members identically whether a
  /// neighbor carries a measured cost or a surrogate bound, or the two
  /// surrogate modes could breed different children from tied parents.
  std::uint64_t fp = 0;
  /// EDP is the surrogate lower bound, not a measured cost. The member may
  /// occupy a population slot, but before it can breed — rank inside the
  /// parent set — it must be rescued (evaluated for real; see the rescue
  /// fixpoint in evolve_subnet), and it must never be reported as the
  /// evolution's best.
  bool pruned = false;
};

}  // namespace

SubnetResult evolve_subnet(search::ArchEvaluator& evaluator,
                           const arch::ArchConfig& arch,
                           const nn::OfaSpace& space,
                           const nn::AccuracyPredictor& predictor,
                           const SubnetEvolutionOptions& options) {
  core::Rng rng(options.seed);
  // Memoize subnet EDP by config fingerprint: mutation/crossover revisit
  // genotypes frequently.
  std::unordered_map<std::uint64_t, double> edp_cache;

  SubnetResult best;
  best.edp = std::numeric_limits<double>::infinity();

  auto score = [&](const nn::OfaConfig& cfg) {
    Scored s;
    s.cfg = space.repair(cfg);
    if (options.width_and_expand_only) {
      s.cfg.image_size = 224;
      s.cfg.depths = nn::OfaSpace::resnet50_config().depths;
    }
    s.accuracy = predictor.predict(s.cfg);
    if (s.accuracy < options.min_accuracy) return s;  // infeasible: inf EDP
    const std::uint64_t key = s.cfg.fingerprint();
    s.fp = key;
    auto it = edp_cache.find(key);
    if (it == edp_cache.end()) {
      const nn::Network net = space.to_network(s.cfg);
      // Surrogate gate: a subnet whose exact lower bound already exceeds
      // both the caller's best and this evolution's best can score the
      // bound without paying for its mapping searches — it could never
      // have become the returned best either way.
      const double admission =
          std::min(options.surrogate_admission, best.edp);
      if (options.surrogate == search::SurrogateMode::kPrune &&
          std::isfinite(admission)) {
        const double lb =
            search::surrogate_network_edp_bound(evaluator.model(), arch, net);
        const bool prune = lb > admission;
        evaluator.note_surrogate_consult(prune);
        if (prune) {
          s.edp = lb;
          s.pruned = true;
          return s;  // uncached: a lower admission later may re-admit it
        }
      }
      const auto nc = evaluator.evaluate(arch, net);
      it = edp_cache.emplace(key, nc.legal ? nc.edp : s.edp).first;
    }
    s.edp = it->second;
    return s;
  };

  // Accuracy-constrained initial population ("sample a network candidate
  // ... which satisfies the pre-defined accuracy requirement").
  std::vector<Scored> population;
  for (int attempt = 0;
       attempt < options.max_sample_attempts &&
       static_cast<int>(population.size()) < options.population;
       ++attempt) {
    Scored s = score(space.sample(rng));
    if (std::isfinite(s.edp)) population.push_back(std::move(s));
  }
  if (population.empty()) {
    // The constraint may be unreachable by uniform sampling; fall back to
    // the full-capacity config so the caller still gets a feasible answer
    // when one exists at all.
    Scored s = score(nn::OfaSpace::full_config());
    if (std::isfinite(s.edp)) population.push_back(std::move(s));
  }

  auto update_best = [&best](const Scored& s) {
    if (!s.pruned && s.edp < best.edp) {
      best.edp = s.edp;
      best.config = s.cfg;
      best.accuracy = s.accuracy;
    }
  };
  for (const auto& s : population) update_best(s);
  if (population.empty()) return best;  // edp stays +inf

  const auto by_edp = [](const Scored& a, const Scored& b) {
    if (a.edp != b.edp) return a.edp < b.edp;
    return a.fp < b.fp;  // total order; see Scored::fp
  };
  // Rank-fidelity rescue for surrogate pruning: any pruned member ranked
  // inside the parent set by its lower bound is evaluated for real before
  // selection. At the fixpoint every surviving bound is strictly worse
  // than the worst parent, so — the bound being a true lower bound — the
  // parent set and its order are exactly what measured costs would have
  // produced, and the evolution's trajectory matches surrogate-off
  // breeding for breeding. The saved evaluations are precisely the pruned
  // members that provably never breed.
  const auto rescue_parents = [&](std::vector<Scored>& pop,
                                  int parent_count) {
    if (options.surrogate != search::SurrogateMode::kPrune) return;
    for (bool changed = true; changed;) {
      changed = false;
      const std::size_t limit =
          std::min<std::size_t>(static_cast<std::size_t>(parent_count),
                                pop.size());
      for (std::size_t i = 0; i < limit; ++i) {
        if (!pop[i].pruned) continue;
        const auto nc = evaluator.evaluate(arch, space.to_network(pop[i].cfg));
        pop[i].edp =
            nc.legal ? nc.edp : std::numeric_limits<double>::infinity();
        pop[i].pruned = false;
        edp_cache[pop[i].fp] = pop[i].edp;
        update_best(pop[i]);
        changed = true;
      }
      if (changed) std::sort(pop.begin(), pop.end(), by_edp);
    }
  };
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::sort(population.begin(), population.end(), by_edp);
    const int parents =
        std::max(2, static_cast<int>(population.size()) / 2);
    rescue_parents(population, parents);
    std::vector<Scored> next(population.begin(),
                             population.begin() + std::min<std::size_t>(
                                                      parents,
                                                      population.size()));
    while (static_cast<int>(next.size()) < options.population) {
      const Scored& pa =
          population[static_cast<std::size_t>(rng.index(parents))];
      const Scored& pb =
          population[static_cast<std::size_t>(rng.index(parents))];
      nn::OfaConfig child = rng.bernoulli(0.5)
                                ? space.mutate(pa.cfg, rng, options.mutate_rate)
                                : space.crossover(pa.cfg, pb.cfg, rng);
      Scored s = score(child);
      if (std::isfinite(s.edp)) {
        update_best(s);
        next.push_back(std::move(s));
      } else if (rng.bernoulli(0.1)) {
        break;  // avoid spinning when the constraint rejects most children
      }
    }
    population = std::move(next);
  }
  return best;
}

CoSearchResult run_cosearch(const cost::CostModel& model,
                            const CoSearchOptions& options) {
  core::Timer timer;
  CoSearchResult result;
  result.best_edp = std::numeric_limits<double>::infinity();

  const search::HwEncodingSpec hw = search::make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  core::ThreadPool pool(options.num_threads);
  // --cost-backend override on a local model copy, as in run_naas.
  cost::CostModel backend_model = model;
  if (options.cost_backend) backend_model.set_backend(*options.cost_backend);
  result.cost_backend = backend_model.backend_name();
  search::ArchEvaluator evaluator(backend_model, options.mapping, &pool);
  result.store_entries_loaded =
      search::warm_start_from_store(evaluator, options.cache_path);
  const nn::OfaSpace space;
  const nn::AccuracyPredictor predictor;

  search::CmaEsOptions cma_opts;
  cma_opts.dim = hw.genome_size();
  cma_opts.population = options.hw_population;
  cma_opts.seed = options.seed;
  search::CmaEs cma(cma_opts);

  const auto is_valid = [&hw](const std::vector<double>& genome) {
    return hw.valid(genome);
  };

  // Warm start with the envelope's reference design (matches run_naas).
  if (options.seed_baseline) {
    try {
      const arch::ArchConfig seed = arch::baseline_for(options.resources);
      const bool connectivity_ok =
          options.search_connectivity ||
          (seed.num_array_dims == 2 &&
           seed.parallel_dims[0] == hw.fixed_parallel_dims[0] &&
           seed.parallel_dims[1] == hw.fixed_parallel_dims[1]);
      if (connectivity_ok && options.resources.allows(seed)) {
        SubnetEvolutionOptions sub = options.subnet;
        sub.surrogate = options.surrogate;
        sub.surrogate_admission = result.best_edp;
        const SubnetResult sr =
            evolve_subnet(evaluator, seed, space, predictor, sub);
        if (sr.edp < result.best_edp) {
          result.best_edp = sr.edp;
          result.best_arch = seed;
          result.best_net = sr.config;
          result.best_accuracy = sr.accuracy;
        }
      }
    } catch (const std::invalid_argument&) {
      // No published baseline for this envelope.
    }
  }

  for (int iter = 0; iter < options.hw_iterations; ++iter) {
    const auto population = cma.ask(is_valid);
    std::vector<double> fitness;
    fitness.reserve(population.size());
    for (std::size_t k = 0; k < population.size(); ++k) {
      const arch::ArchConfig cfg = hw.decode(population[k]);
      double edp = std::numeric_limits<double>::infinity();
      if (options.resources.allows(cfg)) {
        SubnetEvolutionOptions sub = options.subnet;
        sub.seed = options.subnet.seed + 7919 * (iter + 1) + k;
        sub.surrogate = options.surrogate;
        // The running cross-candidate best admits: a subnet whose bound on
        // this accelerator already loses to it can be skipped outright.
        sub.surrogate_admission = result.best_edp;
        const SubnetResult sr =
            evolve_subnet(evaluator, cfg, space, predictor, sub);
        edp = sr.edp;
        if (edp < result.best_edp) {
          result.best_edp = edp;
          result.best_arch = cfg;
          result.best_net = sr.config;
          result.best_accuracy = sr.accuracy;
        }
      }
      fitness.push_back(edp);
    }
    cma.tell(population, fitness);
  }
  search::flush_to_store(evaluator, options.cache_path,
                         options.cache_readonly);
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.generations_batched = evaluator.generations_batched();
  result.candidates_batch_evaluated = evaluator.candidates_batch_evaluated();
  result.tasks_executed = evaluator.tasks_executed();
  result.speculative_hits = evaluator.speculative_hits();
  result.speculative_wasted = evaluator.speculative_wasted();
  result.surrogate_consults = evaluator.surrogate_consults();
  result.surrogate_pruned = evaluator.surrogate_pruned();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::nas
