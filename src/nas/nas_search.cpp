#include "nas/nas_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "search/cma_es.hpp"

namespace naas::nas {
namespace {

/// Scored subnet candidate inside the evolution loop.
struct Scored {
  nn::OfaConfig cfg;
  double accuracy = 0;
  double edp = std::numeric_limits<double>::infinity();
};

}  // namespace

SubnetResult evolve_subnet(search::ArchEvaluator& evaluator,
                           const arch::ArchConfig& arch,
                           const nn::OfaSpace& space,
                           const nn::AccuracyPredictor& predictor,
                           const SubnetEvolutionOptions& options) {
  core::Rng rng(options.seed);
  // Memoize subnet EDP by config fingerprint: mutation/crossover revisit
  // genotypes frequently.
  std::unordered_map<std::uint64_t, double> edp_cache;

  auto score = [&](const nn::OfaConfig& cfg) {
    Scored s;
    s.cfg = space.repair(cfg);
    if (options.width_and_expand_only) {
      s.cfg.image_size = 224;
      s.cfg.depths = nn::OfaSpace::resnet50_config().depths;
    }
    s.accuracy = predictor.predict(s.cfg);
    if (s.accuracy < options.min_accuracy) return s;  // infeasible: inf EDP
    const std::uint64_t key = s.cfg.fingerprint();
    auto it = edp_cache.find(key);
    if (it == edp_cache.end()) {
      const auto nc = evaluator.evaluate(arch, space.to_network(s.cfg));
      it = edp_cache.emplace(key, nc.legal ? nc.edp : s.edp).first;
    }
    s.edp = it->second;
    return s;
  };

  // Accuracy-constrained initial population ("sample a network candidate
  // ... which satisfies the pre-defined accuracy requirement").
  std::vector<Scored> population;
  for (int attempt = 0;
       attempt < options.max_sample_attempts &&
       static_cast<int>(population.size()) < options.population;
       ++attempt) {
    Scored s = score(space.sample(rng));
    if (std::isfinite(s.edp)) population.push_back(std::move(s));
  }
  if (population.empty()) {
    // The constraint may be unreachable by uniform sampling; fall back to
    // the full-capacity config so the caller still gets a feasible answer
    // when one exists at all.
    Scored s = score(nn::OfaSpace::full_config());
    if (std::isfinite(s.edp)) population.push_back(std::move(s));
  }

  SubnetResult best;
  best.edp = std::numeric_limits<double>::infinity();
  auto update_best = [&best](const Scored& s) {
    if (s.edp < best.edp) {
      best.edp = s.edp;
      best.config = s.cfg;
      best.accuracy = s.accuracy;
    }
  };
  for (const auto& s : population) update_best(s);
  if (population.empty()) return best;  // edp stays +inf

  const auto by_edp = [](const Scored& a, const Scored& b) {
    return a.edp < b.edp;
  };
  for (int iter = 0; iter < options.iterations; ++iter) {
    std::sort(population.begin(), population.end(), by_edp);
    const int parents =
        std::max(2, static_cast<int>(population.size()) / 2);
    std::vector<Scored> next(population.begin(),
                             population.begin() + std::min<std::size_t>(
                                                      parents,
                                                      population.size()));
    while (static_cast<int>(next.size()) < options.population) {
      const Scored& pa =
          population[static_cast<std::size_t>(rng.index(parents))];
      const Scored& pb =
          population[static_cast<std::size_t>(rng.index(parents))];
      nn::OfaConfig child = rng.bernoulli(0.5)
                                ? space.mutate(pa.cfg, rng, options.mutate_rate)
                                : space.crossover(pa.cfg, pb.cfg, rng);
      Scored s = score(child);
      if (std::isfinite(s.edp)) {
        update_best(s);
        next.push_back(std::move(s));
      } else if (rng.bernoulli(0.1)) {
        break;  // avoid spinning when the constraint rejects most children
      }
    }
    population = std::move(next);
  }
  return best;
}

CoSearchResult run_cosearch(const cost::CostModel& model,
                            const CoSearchOptions& options) {
  core::Timer timer;
  CoSearchResult result;
  result.best_edp = std::numeric_limits<double>::infinity();

  const search::HwEncodingSpec hw = search::make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  core::ThreadPool pool(options.num_threads);
  // --cost-backend override on a local model copy, as in run_naas.
  cost::CostModel backend_model = model;
  if (options.cost_backend) backend_model.set_backend(*options.cost_backend);
  result.cost_backend = backend_model.backend_name();
  search::ArchEvaluator evaluator(backend_model, options.mapping, &pool);
  result.store_entries_loaded =
      search::warm_start_from_store(evaluator, options.cache_path);
  const nn::OfaSpace space;
  const nn::AccuracyPredictor predictor;

  search::CmaEsOptions cma_opts;
  cma_opts.dim = hw.genome_size();
  cma_opts.population = options.hw_population;
  cma_opts.seed = options.seed;
  search::CmaEs cma(cma_opts);

  const auto is_valid = [&hw](const std::vector<double>& genome) {
    return hw.valid(genome);
  };

  // Warm start with the envelope's reference design (matches run_naas).
  if (options.seed_baseline) {
    try {
      const arch::ArchConfig seed = arch::baseline_for(options.resources);
      const bool connectivity_ok =
          options.search_connectivity ||
          (seed.num_array_dims == 2 &&
           seed.parallel_dims[0] == hw.fixed_parallel_dims[0] &&
           seed.parallel_dims[1] == hw.fixed_parallel_dims[1]);
      if (connectivity_ok && options.resources.allows(seed)) {
        SubnetEvolutionOptions sub = options.subnet;
        const SubnetResult sr =
            evolve_subnet(evaluator, seed, space, predictor, sub);
        if (sr.edp < result.best_edp) {
          result.best_edp = sr.edp;
          result.best_arch = seed;
          result.best_net = sr.config;
          result.best_accuracy = sr.accuracy;
        }
      }
    } catch (const std::invalid_argument&) {
      // No published baseline for this envelope.
    }
  }

  for (int iter = 0; iter < options.hw_iterations; ++iter) {
    const auto population = cma.ask(is_valid);
    std::vector<double> fitness;
    fitness.reserve(population.size());
    for (std::size_t k = 0; k < population.size(); ++k) {
      const arch::ArchConfig cfg = hw.decode(population[k]);
      double edp = std::numeric_limits<double>::infinity();
      if (options.resources.allows(cfg)) {
        SubnetEvolutionOptions sub = options.subnet;
        sub.seed = options.subnet.seed + 7919 * (iter + 1) + k;
        const SubnetResult sr =
            evolve_subnet(evaluator, cfg, space, predictor, sub);
        edp = sr.edp;
        if (edp < result.best_edp) {
          result.best_edp = edp;
          result.best_arch = cfg;
          result.best_net = sr.config;
          result.best_accuracy = sr.accuracy;
        }
      }
      fitness.push_back(edp);
    }
    cma.tell(population, fitness);
  }
  search::flush_to_store(evaluator, options.cache_path,
                         options.cache_readonly);
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.generations_batched = evaluator.generations_batched();
  result.candidates_batch_evaluated = evaluator.candidates_batch_evaluated();
  result.tasks_executed = evaluator.tasks_executed();
  result.speculative_hits = evaluator.speculative_hits();
  result.speculative_wasted = evaluator.speculative_wasted();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::nas
