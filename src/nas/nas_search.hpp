#pragma once

#include <limits>

#include "arch/resources.hpp"
#include "nn/accuracy_model.hpp"
#include "nn/ofa_space.hpp"
#include "search/accelerator_search.hpp"

namespace naas::nas {

/// Budget for the neural-architecture evolution level (Section II-C): an
/// OFA-style evolutionary loop (accuracy-constrained sampling, then
/// mutation + crossover of the lowest-EDP parents).
struct SubnetEvolutionOptions {
  double min_accuracy = 78.6;  ///< predictor top-1 constraint (percent)
  int population = 8;
  int iterations = 5;
  double mutate_rate = 0.15;
  std::uint64_t seed = 1;
  int max_sample_attempts = 200;  ///< rejection budget for the constraint
  /// Restricts the space to width multiplier + expand ratios at fixed
  /// classic depths (3/4/6/3) and 224x224 input. Models the weaker neural
  /// space of NHAS [12] (per-layer channels + quantization on a fixed
  /// topology) for the Fig. 10 comparison.
  bool width_and_expand_only = false;
  /// Analytical surrogate pruning of subnet EDP evaluations (see
  /// NaasOptions::surrogate): under kPrune, a subnet whose roofline lower
  /// bound on this accelerator already exceeds the admission threshold
  /// (the better of surrogate_admission and the evolution's own running
  /// best) scores the bound instead of paying for its mapping searches.
  /// Before any selection, pruned members ranked inside the parent set by
  /// their bound are rescued (evaluated for real), so the parents — and
  /// with them the whole breeding trajectory and the returned best — match
  /// kOff exactly; only members that provably never breed keep the bound.
  /// kOff (default) consults no bounds and preserves legacy behavior.
  search::SurrogateMode surrogate = search::SurrogateMode::kOff;
  /// External admission threshold for surrogate pruning — the caller's
  /// best-known EDP before this evolution starts (run_cosearch passes its
  /// running cross-candidate best). +inf disables the external bound.
  double surrogate_admission = std::numeric_limits<double>::infinity();
};

/// Best subnet found for one accelerator candidate.
struct SubnetResult {
  nn::OfaConfig config;
  double accuracy = 0;
  double edp = 0;  ///< +inf if no accuracy-feasible subnet was found
};

/// Evolves an OFA-ResNet50 subnet minimizing EDP on a *fixed* accelerator,
/// subject to the accuracy constraint. Exposed separately because both the
/// full co-search (below) and the NHAS baseline reuse it.
SubnetResult evolve_subnet(search::ArchEvaluator& evaluator,
                           const arch::ArchConfig& arch,
                           const nn::OfaSpace& space,
                           const nn::AccuracyPredictor& predictor,
                           const SubnetEvolutionOptions& options);

/// Full three-level co-search configuration (Fig. 1 with the NAS level).
struct CoSearchOptions {
  arch::ResourceConstraint resources;
  int hw_population = 8;
  int hw_iterations = 6;
  std::uint64_t seed = 1;
  search::OrderEncoding hw_encoding = search::OrderEncoding::kImportance;
  /// false restricts the accelerator level to sizing only (used by the
  /// NHAS baseline).
  bool search_connectivity = true;
  /// Warm-start the accelerator level with the envelope's published
  /// baseline preset when one exists (see NaasOptions::seed_baseline).
  bool seed_baseline = true;
  search::MappingSearchOptions mapping;
  SubnetEvolutionOptions subnet;
  /// Evaluation threads for the shared ArchEvaluator (the subnet evolution
  /// itself is inherently sequential — each generation's parents depend on
  /// the previous scores — but every EDP query fans its mapping searches
  /// out across the pool). 0 => hardware default, 1 => serial.
  int num_threads = 0;
  /// Persistent mapping-result store (see NaasOptions::cache_path): loaded
  /// before the co-search, flushed after it unless cache_readonly.
  std::string cache_path;
  bool cache_readonly = false;
  /// Surrogate pruning mode, propagated into every subnet evolution (the
  /// running cross-candidate best EDP becomes the external admission
  /// threshold). See SubnetEvolutionOptions::surrogate.
  search::SurrogateMode surrogate = search::SurrogateMode::kOff;
  /// Cost-kernel backend override (see NaasOptions::cost_backend).
  std::optional<cost::BackendKind> cost_backend;
};

/// Outcome of the accelerator + mapping + neural-architecture co-search.
struct CoSearchResult {
  arch::ArchConfig best_arch;
  nn::OfaConfig best_net;
  double best_accuracy = 0;
  double best_edp = 0;
  long long cost_evaluations = 0;
  long long mapping_searches = 0;
  /// Batched-cost-model meters (see ArchEvaluator::generations_batched).
  long long generations_batched = 0;
  long long candidates_batch_evaluated = 0;
  /// Scheduler work meters (see ArchEvaluator::tasks_executed): task-graph
  /// tasks run by the shared evaluator's pipelines, and speculative-entry
  /// hits/waste (zero unless a warm store carried speculative entries —
  /// the co-search itself evaluates candidate-at-a-time, so its layer
  /// chains interleave within each EDP query rather than across outer
  /// generations).
  long long tasks_executed = 0;
  long long speculative_hits = 0;
  long long speculative_wasted = 0;
  /// Surrogate-pruning meters (see CoSearchOptions::surrogate): bound
  /// consultations across every subnet evolution, and the subnet
  /// evaluations they pruned. Both 0 under kOff.
  long long surrogate_consults = 0;
  long long surrogate_pruned = 0;
  /// Entries warm-started from CoSearchOptions::cache_path.
  long long store_entries_loaded = 0;
  /// Resolved cost-kernel backend (see NaasResult::cost_backend).
  std::string cost_backend;
  double wall_seconds = 0;
};

/// Runs the joint search: the outer CMA-ES proposes accelerator candidates;
/// for each, an accuracy-constrained subnet evolution finds the best
/// network (with per-layer mapping search inside); the subnet's EDP is the
/// accelerator's reward. Returns the best matched (accelerator, network,
/// mapping) tuple.
CoSearchResult run_cosearch(const cost::CostModel& model,
                            const CoSearchOptions& options);

}  // namespace naas::nas
