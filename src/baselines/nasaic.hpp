#pragma once

#include <string>
#include <vector>

#include "cost/network_cost.hpp"
#include "nn/network.hpp"

namespace naas::baselines {

/// NASAIC (Yang et al. [11]) baseline: a *heterogeneous* accelerator built
/// from two fixed-dataflow IPs — a DLA-style weight-stationary core and a
/// ShiDianNao-style output-stationary core — where the search space is only
/// the allocation of #PEs and NoC bandwidth between the IPs (the paper
/// notes ~1e4 hardware candidates versus NAAS's >1e11). Each layer of the
/// workload executes on whichever IP yields lower EDP contribution; IPs run
/// layers sequentially (single-network inference).
struct NasaicOptions {
  int total_pes = 1024;                ///< PE budget across both IPs
  long long total_onchip_bytes = 1024LL * 1024;
  int total_noc_bandwidth = 64;
  int dram_bandwidth = 16;
  int pe_step = 64;                    ///< allocation granularity
  /// Threads for scoring the allocation grid: 0 => hardware default,
  /// 1 => serial. The winner is identical for every value (grid points are
  /// independent; the argmin reduction runs in grid order).
  int num_threads = 0;
  /// Persistent result store (see search::NaasOptions::cache_path): the
  /// per-(IP config, layer) canonical-mapping reports are memoized under a
  /// NASAIC-specific key tag, so repeated grid sweeps (and reruns) skip the
  /// cost model for shapes already evaluated. Loaded before the sweep,
  /// flushed after it unless cache_readonly.
  std::string cache_path;
  bool cache_readonly = false;
};

/// One allocation choice and its cost.
struct NasaicResult {
  int dla_pes = 0;
  int shi_pes = 0;
  int dla_bandwidth = 0;
  int shi_bandwidth = 0;
  double latency_cycles = 0;
  double energy_nj = 0;
  double edp = 0;
  int layers_on_dla = 0;
  int layers_on_shi = 0;
  std::string to_string() const;
};

/// Exhaustively searches the NASAIC allocation grid for `net` and returns
/// the best (lowest-EDP) heterogeneous configuration.
NasaicResult run_nasaic(const cost::CostModel& model, const nn::Network& net,
                        const NasaicOptions& options);

}  // namespace naas::baselines
