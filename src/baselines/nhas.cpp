#include "baselines/nhas.hpp"

#include <stdexcept>

namespace naas::baselines {

nas::CoSearchResult run_nhas(const cost::CostModel& model,
                             nas::CoSearchOptions options) {
  options.search_connectivity = false;
  options.mapping.encoding.search_order = false;
  // NHAS sizes the *given* accelerator design: both its connectivity (see
  // make_hw_spec) and its loop-order family stay native to the envelope's
  // baseline (row-stationary on Eyeriss resources, weight-stationary on
  // NVDLA/EdgeTPU).
  try {
    options.mapping.encoding.fixed_dataflow =
        arch::native_dataflow(arch::baseline_for(options.resources));
  } catch (const std::invalid_argument&) {
    options.mapping.encoding.fixed_dataflow =
        arch::Dataflow::kWeightStationary;
  }
  // Seeding would race all three canonical dataflows, leaking loop-order
  // freedom NHAS does not have; its tiling search runs unseeded.
  options.mapping.seed_canonical = false;
  // NHAS's neural space is per-layer channels + quantization on the fixed
  // ResNet topology — model it as width/expand choices only.
  options.subnet.width_and_expand_only = true;
  return nas::run_cosearch(model, options);
}

}  // namespace naas::baselines
