#pragma once

#include "nas/nas_search.hpp"

namespace naas::baselines {

/// Neural-Hardware Architecture Search (Lin et al., NeurIPS WS'19 [12])
/// re-implemented as a *search-space restriction* of our co-search:
///  - accelerator level searches architectural sizing only (#PEs as a
///    square-ish fixed-connectivity C x K array, buffer sizes, bandwidth);
///  - the compiler level searches tiling only, with the loop order pinned
///    to the canonical weight-stationary dataflow;
///  - the neural level searches the same OFA-ResNet50 space.
/// This reproduces the mechanism behind Fig. 10's NHAS point: NHAS gets
/// NN + sizing gains but none of NAAS's connectivity / loop-order gains.
nas::CoSearchResult run_nhas(const cost::CostModel& model,
                             nas::CoSearchOptions options);

}  // namespace naas::baselines
