#include "baselines/nasaic.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "arch/presets.hpp"
#include "core/serialize.hpp"
#include "core/task_graph.hpp"
#include "core/thread_pool.hpp"
#include "mapping/canonical.hpp"
#include "search/encoding.hpp"
#include "search/eval_cache.hpp"
#include "search/result_store.hpp"

namespace naas::baselines {
namespace {

/// Distinguishes NASAIC's canonical-mapping entries from ArchEvaluator's
/// mapping-search entries when both live in one store file.
constexpr std::uint64_t kNasaicKeyTag = 0x6e61736169632e31ULL;  // "nasaic.1"

std::uint64_t nasaic_key(const arch::ArchConfig& ip,
                         const nn::Workload& layer) {
  std::uint64_t h = kNasaicKeyTag;
  h = core::hash_mix(h, search::arch_fingerprint(ip));
  h = core::hash_mix(h, nn::LayerShapeHash{}(layer));
  return h;
}

/// Builds a DLA-style (C x K weight-stationary) IP with `pes` PEs.
arch::ArchConfig make_dla_ip(int pes, long long onchip, int bandwidth,
                             int dram_bw) {
  arch::ArchConfig cfg;
  cfg.name = "NASAIC-DLA";
  cfg.num_array_dims = 2;
  const int rows = std::max(2, static_cast<int>(std::sqrt(pes)) / 2 * 2);
  cfg.array_dims = {rows, std::max(2, pes / rows / 2 * 2), 1};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 256;
  cfg.l2_bytes = std::max<long long>(16 * 1024,
                                     onchip - cfg.l1_bytes * cfg.num_pes());
  cfg.noc_bandwidth = std::max(8, bandwidth);
  cfg.dram_bandwidth = dram_bw;
  return cfg;
}

/// Builds a ShiDianNao-style (X' x Y' output-stationary) IP.
arch::ArchConfig make_shi_ip(int pes, long long onchip, int bandwidth,
                             int dram_bw) {
  arch::ArchConfig cfg;
  cfg.name = "NASAIC-Shi";
  cfg.num_array_dims = 2;
  const int rows = std::max(2, static_cast<int>(std::sqrt(pes)) / 2 * 2);
  cfg.array_dims = {rows, std::max(2, pes / rows / 2 * 2), 1};
  cfg.parallel_dims = {nn::Dim::kXp, nn::Dim::kYp, nn::Dim::kC};
  cfg.l1_bytes = 256;
  cfg.l2_bytes = std::max<long long>(16 * 1024,
                                     onchip - cfg.l1_bytes * cfg.num_pes());
  cfg.noc_bandwidth = std::max(8, bandwidth);
  cfg.dram_bandwidth = dram_bw;
  return cfg;
}

}  // namespace

std::string NasaicResult::to_string() const {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "DLA %d PEs (bw %d) + Shi %d PEs (bw %d): latency %.3g cyc, "
                "energy %.3g nJ, EDP %.3g (%d/%d layers on DLA/Shi)",
                dla_pes, dla_bandwidth, shi_pes, shi_bandwidth,
                latency_cycles, energy_nj, edp, layers_on_dla, layers_on_shi);
  return buf;
}

NasaicResult run_nasaic(const cost::CostModel& model, const nn::Network& net,
                        const NasaicOptions& options) {
  NasaicResult best;
  best.edp = std::numeric_limits<double>::infinity();

  const auto unique = net.unique_layers();

  // Memoized canonical-mapping evaluation, optionally warm-started from a
  // persistent store. The two IPs recur across the whole allocation grid
  // (PE counts repeat at every bandwidth split), so the cache collapses the
  // grid's cost-model calls to one per unique (IP config, layer shape).
  search::EvalCache cache;
  search::warm_start_cache(cache, options.cache_path);
  const auto cached_eval = [&](const arch::ArchConfig& ip,
                               const nn::Workload& layer)
      -> const cost::CostReport& {
    const std::uint64_t key = nasaic_key(ip, layer);
    if (const auto* hit = cache.find(key)) return hit->report;
    search::MappingSearchResult res;
    res.best = mapping::canonical_mapping(ip, layer);
    res.report = model.evaluate(ip, layer, res.best);
    res.best_edp = res.report.legal
                       ? res.report.edp
                       : std::numeric_limits<double>::infinity();
    res.evaluations = 1;
    return cache.publish(key, std::move(res), nullptr).report;
  };

  // Enumerate the (PE split, bandwidth split) allocation grid up front:
  // every grid point is an independent evaluation, so the grid fans out
  // over the pool and the argmin below reduces in grid order (identical
  // tie-breaking to the original nested loops).
  struct Candidate {
    int dla_pes, shi_pes, dla_bw, shi_bw;
    long long dla_onchip, shi_onchip;
  };
  std::vector<Candidate> grid;
  for (int dla_pes = options.pe_step; dla_pes < options.total_pes;
       dla_pes += options.pe_step) {
    // On-chip SRAM split proportionally to PE share; bandwidth split swept.
    const long long dla_onchip =
        options.total_onchip_bytes * dla_pes / options.total_pes;
    for (int dla_bw_share = 1; dla_bw_share <= 3; ++dla_bw_share) {
      const int dla_bw = options.total_noc_bandwidth * dla_bw_share / 4;
      grid.push_back({dla_pes, options.total_pes - dla_pes, dla_bw,
                      options.total_noc_bandwidth - dla_bw, dla_onchip,
                      options.total_onchip_bytes - dla_onchip});
    }
  }

  std::vector<NasaicResult> scored(grid.size());
  core::ThreadPool pool(options.num_threads);
  core::TaskGraph graph(&pool);
  const auto score_point = [&](std::size_t i) {
    scored[i].edp = std::numeric_limits<double>::infinity();
    const Candidate& c = grid[i];
    const arch::ArchConfig dla =
        make_dla_ip(c.dla_pes, c.dla_onchip, c.dla_bw, options.dram_bandwidth);
    const arch::ArchConfig shi =
        make_shi_ip(c.shi_pes, c.shi_onchip, c.shi_bw, options.dram_bandwidth);

    NasaicResult r;
    double latency = 0, energy = 0;
    int on_dla = 0, on_shi = 0;
    for (const auto& [layer, count] : unique) {
      const auto& rep_dla = cached_eval(dla, layer);
      const auto& rep_shi = cached_eval(shi, layer);
      if (!rep_dla.legal && !rep_shi.legal) return;  // scored[i] stays +inf
      const bool pick_dla =
          rep_dla.legal && (!rep_shi.legal || rep_dla.edp <= rep_shi.edp);
      const auto& rep = pick_dla ? rep_dla : rep_shi;
      (pick_dla ? on_dla : on_shi) += count;
      latency += rep.latency_cycles * count;
      energy += rep.energy_nj * count;
    }
    r.edp = latency * energy;
    r.latency_cycles = latency;
    r.energy_nj = energy;
    r.dla_pes = c.dla_pes;
    r.shi_pes = c.shi_pes;
    r.dla_bandwidth = c.dla_bw;
    r.shi_bandwidth = c.shi_bw;
    r.layers_on_dla = on_dla;
    r.layers_on_shi = on_shi;
    scored[i] = r;
  };
  // Grid points are independent tasks with slot-keyed results; the argmin
  // below reduces in grid order, so the outcome is identical for any
  // scheduling (and to the old parallel_for fan-out this replaces).
  for (std::size_t i = 0; i < grid.size(); ++i)
    graph.submit([&score_point, i] { score_point(i); });
  graph.run();

  for (const NasaicResult& r : scored) {
    if (r.edp < best.edp) best = r;
  }
  search::flush_cache(cache, options.cache_path, options.cache_readonly);
  return best;
}

}  // namespace naas::baselines
