#include "net/poller.hpp"

#include <poll.h>

namespace naas::net {

void Poller::clear() { fds_.clear(); }

void Poller::add(int fd, bool want_read, bool want_write) {
  if (fd < 0 || (!want_read && !want_write)) return;
  pollfd p{};
  p.fd = fd;
  if (want_read) p.events |= POLLIN;
  if (want_write) p.events |= POLLOUT;
  fds_.push_back(p);
}

int Poller::wait(int timeout_ms) {
  if (fds_.empty()) return 0;
  const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
  return n < 0 ? 0 : n;
}

const pollfd* Poller::find(int fd) const {
  for (const pollfd& p : fds_)
    if (p.fd == fd) return &p;
  return nullptr;
}

bool Poller::readable(int fd) const {
  const pollfd* p = find(fd);
  return p && (p->revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

bool Poller::writable(int fd) const {
  const pollfd* p = find(fd);
  return p && (p->revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) != 0;
}

}  // namespace naas::net
