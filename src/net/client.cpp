#include "net/client.hpp"

#include <poll.h>
#include <string.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>

namespace naas::net {

bool LineClient::connect(const std::string& host, int port, int timeout_ms,
                         std::string* err) {
  inbuf_.clear();
  eof_ = false;
  fd_ = tcp_connect(host, port, timeout_ms, err);
  return fd_.valid();
}

bool LineClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const IoResult r =
        write_some(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (r.status == IoStatus::kOk) {
      sent += r.bytes;
    } else if (r.status == IoStatus::kWouldBlock) {
      pollfd p{fd_.get(), POLLOUT, 0};
      if (::poll(&p, 1, 5000) <= 0) return false;
    } else {
      return false;
    }
  }
  return true;
}

bool LineClient::send_line(const std::string& line) {
  return send_raw(line + "\n");
}

bool LineClient::read_line(std::string* line, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  // The deadline covers the *whole* line, and the client-wide cap (when
  // set) tightens it further; each poll below gets only the remaining
  // budget, so a peer dribbling one byte per poll interval cannot extend
  // the wait indefinitely.
  int budget_ms = timeout_ms;
  if (recv_deadline_ms_ >= 0 &&
      (budget_ms < 0 || recv_deadline_ms_ < budget_ms)) {
    budget_ms = recv_deadline_ms_;
  }
  const bool bounded = budget_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? budget_ms : 0);
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      *line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      return true;
    }
    if (eof_ || !fd_.valid()) return false;
    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return false;
      wait_ms = static_cast<int>(std::min<long long>(left, 60'000));
    }
    pollfd p{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&p, 1, wait_ms);
    if (rc < 0) return false;
    if (rc == 0) continue;  // deadline check at loop head decides expiry
    char buf[4096];
    const IoResult r = read_some(fd_.get(), buf, sizeof(buf));
    if (r.status == IoStatus::kOk) {
      inbuf_.append(buf, r.bytes);
    } else if (r.status == IoStatus::kEof) {
      eof_ = true;
    } else if (r.status == IoStatus::kError) {
      return false;
    }
    // kWouldBlock: loop back into poll.
  }
}

void LineClient::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

void LineClient::reset() {
  if (!fd_.valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  fd_.close();
}

void LineClient::close() { fd_.close(); }

}  // namespace naas::net
