#include "net/client.hpp"

#include <poll.h>
#include <string.h>
#include <sys/socket.h>

namespace naas::net {

bool LineClient::connect(const std::string& host, int port, int timeout_ms,
                         std::string* err) {
  inbuf_.clear();
  eof_ = false;
  fd_ = tcp_connect(host, port, timeout_ms, err);
  return fd_.valid();
}

bool LineClient::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const IoResult r =
        write_some(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (r.status == IoStatus::kOk) {
      sent += r.bytes;
    } else if (r.status == IoStatus::kWouldBlock) {
      pollfd p{fd_.get(), POLLOUT, 0};
      if (::poll(&p, 1, 5000) <= 0) return false;
    } else {
      return false;
    }
  }
  return true;
}

bool LineClient::send_line(const std::string& line) {
  return send_raw(line + "\n");
}

bool LineClient::read_line(std::string* line, int timeout_ms) {
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      *line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      return true;
    }
    if (eof_ || !fd_.valid()) return false;
    pollfd p{fd_.get(), POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) return false;
    char buf[4096];
    const IoResult r = read_some(fd_.get(), buf, sizeof(buf));
    if (r.status == IoStatus::kOk) {
      inbuf_.append(buf, r.bytes);
    } else if (r.status == IoStatus::kEof) {
      eof_ = true;
    } else if (r.status == IoStatus::kError) {
      return false;
    }
    // kWouldBlock: loop back into poll.
  }
}

void LineClient::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

void LineClient::reset() {
  if (!fd_.valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  fd_.close();
}

void LineClient::close() { fd_.close(); }

}  // namespace naas::net
