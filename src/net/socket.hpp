#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace naas::net {

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }
  int release() { return std::exchange(fd_, -1); }
  void close();

 private:
  int fd_ = -1;
};

/// Outcome classification for nonblocking socket I/O. EINTR maps to
/// kWouldBlock (the readiness loop simply retries on its next pass), and
/// every hard error — ECONNRESET included — maps to kError: transport
/// errors are a per-connection event, never a server event.
enum class IoStatus { kOk, kWouldBlock, kEof, kError };

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  ///< transferred (kOk only)
};

/// read()/write() wrappers with the deterministic fault seam in front of
/// the syscall (core::fault sites sock_read_{short,eintr,reset} and
/// sock_write_{short,eintr,reset,stall}): a short read/write truncates the
/// requested length to 1 byte, eintr/stall surface as kWouldBlock, reset
/// as kError — precisely the weather a TCP server lives in.
IoResult read_some(int fd, char* buf, std::size_t cap);
IoResult write_some(int fd, const char* buf, std::size_t len);

/// O_NONBLOCK. Returns false with `*err` (optional) on failure.
bool set_nonblocking(int fd, std::string* err = nullptr);

/// Listening TCP socket (IPv4). `port` 0 binds an ephemeral port; port()
/// reports the actual one after listen() succeeds.
class TcpListener {
 public:
  bool listen(const std::string& host, int port, int backlog,
              std::string* err);
  /// Accepts one pending connection, already set nonblocking. Invalid Fd
  /// when none is pending (or on a transient accept error).
  Fd accept_one();
  int port() const { return port_; }
  int fd() const { return fd_.get(); }
  bool listening() const { return fd_.valid(); }
  void close() { fd_.close(); }

 private:
  Fd fd_;
  int port_ = 0;
};

/// Blocking TCP connect to host:port with a bounded wait; used by the
/// line client, tests, and the bench. Returns an invalid Fd + `*err` on
/// failure.
Fd tcp_connect(const std::string& host, int port, int timeout_ms,
               std::string* err);

}  // namespace naas::net
