#pragma once

#include <string>

#include "net/socket.hpp"

namespace naas::net {

/// Blocking newline-framed client for the serve protocol — the test,
/// bench, and soak harness counterpart of serve::Server. Deliberately
/// simple: one connection, bounded waits everywhere, no implicit retries
/// (a fault-injection harness needs failures to surface, not be papered
/// over).
class LineClient {
 public:
  LineClient() = default;

  bool connect(const std::string& host, int port, int timeout_ms,
               std::string* err = nullptr);
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Sends `line` + '\n' (blocking until fully written or failure).
  bool send_line(const std::string& line);
  /// Sends raw bytes verbatim (malformed-input tests).
  bool send_raw(const std::string& bytes);

  /// Reads the next '\n'-terminated line (stripped) within `timeout_ms`.
  /// False on timeout, EOF, or error; eof() distinguishes a clean close.
  /// `timeout_ms` is a *total* deadline for the whole line: a server that
  /// trickles bytes without ever sending the newline cannot keep resetting
  /// the clock, so a hung or byte-dribbling peer fails the call loudly in
  /// bounded time instead of wedging a test or soak run forever.
  bool read_line(std::string* line, int timeout_ms);
  bool eof() const { return eof_; }

  /// Optional client-wide receive deadline: when set (>= 0), every
  /// read_line waits at most min(timeout_ms, this) — a one-line guard a
  /// harness sets once instead of auditing every generous call-site
  /// timeout. Negative (the default) disables the cap.
  void set_recv_deadline_ms(int ms) { recv_deadline_ms_ = ms; }
  int recv_deadline_ms() const { return recv_deadline_ms_; }

  /// Half-close: no more requests, responses still readable.
  void shutdown_write();
  /// Abortive close (SO_LINGER 0 => RST on close) — the rude-client event
  /// the server must shrug off.
  void reset();
  void close();

 private:
  Fd fd_;
  std::string inbuf_;
  bool eof_ = false;
  int recv_deadline_ms_ = -1;
};

}  // namespace naas::net
