#pragma once

#include <string>

#include "net/socket.hpp"

namespace naas::net {

/// Blocking newline-framed client for the serve protocol — the test,
/// bench, and soak harness counterpart of serve::Server. Deliberately
/// simple: one connection, bounded waits everywhere, no implicit retries
/// (a fault-injection harness needs failures to surface, not be papered
/// over).
class LineClient {
 public:
  LineClient() = default;

  bool connect(const std::string& host, int port, int timeout_ms,
               std::string* err = nullptr);
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Sends `line` + '\n' (blocking until fully written or failure).
  bool send_line(const std::string& line);
  /// Sends raw bytes verbatim (malformed-input tests).
  bool send_raw(const std::string& bytes);

  /// Reads the next '\n'-terminated line (stripped) within `timeout_ms`.
  /// False on timeout, EOF, or error; eof() distinguishes a clean close.
  bool read_line(std::string* line, int timeout_ms);
  bool eof() const { return eof_; }

  /// Half-close: no more requests, responses still readable.
  void shutdown_write();
  /// Abortive close (SO_LINGER 0 => RST on close) — the rude-client event
  /// the server must shrug off.
  void reset();
  void close();

 private:
  Fd fd_;
  std::string inbuf_;
  bool eof_ = false;
};

}  // namespace naas::net
