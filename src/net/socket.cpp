#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/fault.hpp"

namespace naas::net {
namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

bool parse_addr(const std::string& host, int port, sockaddr_in* addr,
                std::string* err) {
  ::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  const char* node = host.empty() ? "0.0.0.0" : host.c_str();
  if (::inet_pton(AF_INET, node, &addr->sin_addr) != 1) {
    if (err) *err = "not an IPv4 address: '" + host + "'";
    return false;
  }
  return true;
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult read_some(int fd, char* buf, std::size_t cap) {
  if (core::fault("sock_read_reset")) return {IoStatus::kError, 0};
  if (core::fault("sock_read_eintr")) return {IoStatus::kWouldBlock, 0};
  if (cap > 1 && core::fault("sock_read_short")) cap = 1;
  const ssize_t n = ::read(fd, buf, cap);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n == 0) return {IoStatus::kEof, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return {IoStatus::kWouldBlock, 0};
  return {IoStatus::kError, 0};
}

IoResult write_some(int fd, const char* buf, std::size_t len) {
  if (core::fault("sock_write_reset")) return {IoStatus::kError, 0};
  if (core::fault("sock_write_eintr") || core::fault("sock_write_stall"))
    return {IoStatus::kWouldBlock, 0};
  if (len > 1 && core::fault("sock_write_short")) len = 1;
  // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE, not
  // kill the process with SIGPIPE.
  const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
  if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return {IoStatus::kWouldBlock, 0};
  return {IoStatus::kError, 0};
}

bool set_nonblocking(int fd, std::string* err) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (err) *err = errno_string("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

bool TcpListener::listen(const std::string& host, int port, int backlog,
                         std::string* err) {
  close();
  sockaddr_in addr{};
  if (!parse_addr(host, port, &addr, err)) return false;

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    if (err) *err = errno_string("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (err) *err = errno_string("bind");
    return false;
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (err) *err = errno_string("listen");
    return false;
  }
  if (!set_nonblocking(fd.get(), err)) return false;

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    if (err) *err = errno_string("getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  if (err) err->clear();
  return true;
}

Fd TcpListener::accept_one() {
  if (!fd_.valid()) return Fd();
  Fd conn(::accept(fd_.get(), nullptr, nullptr));
  if (!conn) return Fd();
  if (!set_nonblocking(conn.get())) return Fd();
  const int one = 1;
  ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Fd tcp_connect(const std::string& host, int port, int timeout_ms,
               std::string* err) {
  sockaddr_in addr{};
  if (!parse_addr(host.empty() ? "127.0.0.1" : host, port, &addr, err))
    return Fd();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd) {
    if (err) *err = errno_string("socket");
    return Fd();
  }
  if (!set_nonblocking(fd.get(), err)) return Fd();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      if (err) *err = errno_string("connect");
      return Fd();
    }
    pollfd p{fd.get(), POLLOUT, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) {
      if (err) *err = "connect timed out";
      return Fd();
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      if (err) *err = errno_string("connect");
      return Fd();
    }
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (err) err->clear();
  return fd;
}

}  // namespace naas::net
