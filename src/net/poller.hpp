#pragma once

#include <poll.h>

#include <vector>

namespace naas::net {

/// Thin readiness loop over poll(2). The set is rebuilt every iteration —
/// with tens-to-hundreds of connections the O(n) rebuild is noise next to
/// the JSON work per request, and it keeps registration impossible to
/// desynchronize from connection state (the classic epoll bug class).
class Poller {
 public:
  void clear();
  void add(int fd, bool want_read, bool want_write);

  /// Polls with `timeout_ms` (-1 = forever). Returns the number of ready
  /// descriptors; 0 on timeout AND on EINTR — a signal simply wakes the
  /// loop so it can notice its stop flag.
  int wait(int timeout_ms);

  /// Readiness of `fd` after the last wait(). `readable` includes hangup
  /// and error conditions so the owner always drains/collects the fd.
  bool readable(int fd) const;
  bool writable(int fd) const;

 private:
  const ::pollfd* find(int fd) const;
  std::vector<::pollfd> fds_;
};

}  // namespace naas::net
