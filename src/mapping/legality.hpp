#pragma once

#include <string>

#include "arch/accelerator.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::mapping {

/// Result of a mapping legality check.
struct LegalityReport {
  bool legal = true;
  std::string reason;  ///< empty when legal
};

/// Per-PE temporal share along `d` after spatial partitioning of the L2
/// tile: ceil(dram_tile[d] / parallel_extent(d)), at least 1.
int pe_share(const nn::Workload& layer, const arch::ArchConfig& arch,
             const TileSizes& dram_tile, nn::Dim d);

/// Checks structural validity (orders are permutations, tiles within
/// [1, bound]) and capacity (per-PE tile fits L1, L2 tile fits L2).
LegalityReport check(const Mapping& m, const nn::Workload& layer,
                     const arch::ArchConfig& arch);

/// Reason strings shared by `check` and the batched legality pass inside
/// cost::CostModel::evaluate_batch (which replays the same check sequence
/// against precomputed per-layer bounds). One formatter per failure mode
/// keeps the two implementations byte-identical on reported reasons —
/// tests/test_cost_batch.cpp asserts exactly that.
inline constexpr const char* kReasonDramOrder =
    "dram order not a permutation";
inline constexpr const char* kReasonPeOrder = "pe order not a permutation";
inline constexpr const char* kReasonRegisterOrder =
    "register order not a permutation";
std::string reason_dram_tile_range(nn::Dim d);
std::string reason_pe_tile_share(nn::Dim d);
std::string reason_l1_overflow(long long footprint, long long capacity);
std::string reason_l2_overflow(long long footprint, long long capacity);

/// Order in which dimensions are shrunk when a tile overflows a buffer.
/// Dimensions earlier in the list are halved first; the list must be a
/// permutation of all dims.
using ShrinkPriority = LoopOrder;

/// Default shrink priority: spatial output dims first (cheapest reuse loss),
/// kernel dims last.
ShrinkPriority default_shrink_priority();

/// Repairs `m` into a legal mapping for (layer, arch):
///  1. replaces invalid orders with default_order();
///  2. clamps dram tiles to [1, dim], pe tiles to [1, share];
///  3. while the per-PE tile overflows L1, halves the earliest
///     shrink-priority dim with pe tile > 1;
///  4. while the L2 tile overflows L2, halves the earliest priority dim
///     with dram tile > 1 (re-clamping the pe tile to the new share).
/// Always terminates with a legal mapping (an all-ones tile fits any
/// positive buffer).
Mapping repair(Mapping m, const nn::Workload& layer,
               const arch::ArchConfig& arch,
               const ShrinkPriority& priority = default_shrink_priority());

/// Greedily grows a legal mapping's tiles toward the buffer capacities:
/// dims earlier in `dram_priority` / `pe_priority` are doubled first (capped
/// at their bound) while the L2 / L1 footprints still fit. Larger tiles are
/// never worse in the analytical model (fewer refetch phases, same L1
/// traffic), so decoders call this to map every genome into the productive
/// region of the tiling space; the genes retain control over *which* dims
/// receive the buffer capacity. Requires `m` to be legal.
Mapping grow_to_fit(Mapping m, const nn::Workload& layer,
                    const arch::ArchConfig& arch,
                    const ShrinkPriority& dram_priority,
                    const ShrinkPriority& pe_priority);

}  // namespace naas::mapping
