#include "mapping/mapping.hpp"

#include <algorithm>
#include <sstream>

namespace naas::mapping {

bool is_valid_order(const LoopOrder& order) {
  std::array<bool, nn::kNumDims> seen{};
  for (nn::Dim d : order) {
    const int i = static_cast<int>(d);
    if (i < 0 || i >= nn::kNumDims) return false;
    if (seen[static_cast<std::size_t>(i)]) return false;
    seen[static_cast<std::size_t>(i)] = true;
  }
  return true;
}

LoopOrder default_order() {
  return {nn::Dim::kN,  nn::Dim::kK,  nn::Dim::kC, nn::Dim::kYp,
          nn::Dim::kXp, nn::Dim::kR,  nn::Dim::kS};
}

int tile_of(const TileSizes& t, nn::Dim d) {
  return t[static_cast<std::size_t>(static_cast<int>(d))];
}

void set_tile(TileSizes& t, nn::Dim d, int v) {
  t[static_cast<std::size_t>(static_cast<int>(d))] = v;
}

std::string order_to_string(const LoopOrder& order) {
  std::ostringstream os;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i) os << '>';
    os << nn::dim_name(order[i]);
  }
  return os.str();
}

std::string Mapping::to_string() const {
  std::ostringstream os;
  auto tiles = [](const TileSizes& t) {
    std::ostringstream ts;
    for (nn::Dim d : nn::all_dims())
      ts << nn::dim_name(d) << ':' << tile_of(t, d) << ' ';
    return ts.str();
  };
  os << "dram order " << order_to_string(dram.order) << " tiles "
     << tiles(dram.tile) << '\n';
  os << "pe   order " << order_to_string(pe.order) << " tiles "
     << tiles(pe.tile) << '\n';
  os << "reg  order " << order_to_string(pe_order);
  return os.str();
}

}  // namespace naas::mapping
