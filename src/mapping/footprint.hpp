#pragma once

#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::mapping {

/// Element size in bytes. The model uses int8 inference (1 byte per
/// activation/weight element); partial sums are also counted at 1 byte so
/// that capacities match the paper's byte-denominated buffer sizes.
inline constexpr int kBytesPerElement = 1;

/// Byte footprints of one tile of each operand.
struct TileFootprint {
  long long input = 0;
  long long weight = 0;
  long long output = 0;

  long long total() const { return input + weight + output; }
};

/// Footprint of a tile with extents `tile` of `layer`'s iteration space.
/// Input footprint accounts for the stride/kernel halo
/// ((t_Y'-1)*stride + t_R rows, similarly for columns) and for depthwise
/// layers walks channels with K. Tile extents are clamped to the layer's
/// dimension sizes.
TileFootprint tile_footprint(const nn::Workload& layer, const TileSizes& tile);

}  // namespace naas::mapping
