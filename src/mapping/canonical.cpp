#include "mapping/canonical.hpp"

namespace naas::mapping {

LoopOrder weight_stationary_order() {
  return {nn::Dim::kK,  nn::Dim::kC, nn::Dim::kR, nn::Dim::kS,
          nn::Dim::kN,  nn::Dim::kYp, nn::Dim::kXp};
}

LoopOrder output_stationary_order() {
  return {nn::Dim::kN,  nn::Dim::kK, nn::Dim::kYp, nn::Dim::kXp,
          nn::Dim::kC,  nn::Dim::kR, nn::Dim::kS};
}

LoopOrder row_stationary_order() {
  return {nn::Dim::kK, nn::Dim::kC, nn::Dim::kN, nn::Dim::kYp,
          nn::Dim::kR, nn::Dim::kXp, nn::Dim::kS};
}

LoopOrder canonical_order(arch::Dataflow df) {
  switch (df) {
    case arch::Dataflow::kWeightStationary: return weight_stationary_order();
    case arch::Dataflow::kOutputStationary: return output_stationary_order();
    case arch::Dataflow::kRowStationary: return row_stationary_order();
  }
  return default_order();
}

ShrinkPriority canonical_shrink_priority(arch::Dataflow df) {
  switch (df) {
    case arch::Dataflow::kWeightStationary:
      // Keep weight tiles (K,C,R,S) large; stream spatial dims.
      return {nn::Dim::kYp, nn::Dim::kXp, nn::Dim::kN, nn::Dim::kK,
              nn::Dim::kC,  nn::Dim::kS,  nn::Dim::kR};
    case arch::Dataflow::kOutputStationary:
      // Keep output tiles (K,Y',X') large; shrink reduction dims first.
      return {nn::Dim::kR, nn::Dim::kS, nn::Dim::kC, nn::Dim::kK,
              nn::Dim::kXp, nn::Dim::kYp, nn::Dim::kN};
    case arch::Dataflow::kRowStationary:
      // Keep kernel rows/cols resident; shrink channel dims first.
      return {nn::Dim::kK, nn::Dim::kC, nn::Dim::kYp, nn::Dim::kXp,
              nn::Dim::kN, nn::Dim::kS, nn::Dim::kR};
  }
  return default_shrink_priority();
}

Mapping canonical_mapping(const arch::ArchConfig& arch,
                          const nn::Workload& layer, arch::Dataflow df) {
  Mapping m;
  const LoopOrder order = canonical_order(df);
  m.dram.order = order;
  m.pe.order = order;
  m.pe_order = order;
  // Start from maximal tiles; repair shrinks them (priority-directed) until
  // both buffer levels fit.
  for (nn::Dim d : nn::all_dims()) {
    set_tile(m.dram.tile, d, layer.dim_size(d));
    set_tile(m.pe.tile, d, layer.dim_size(d));  // clamped to share in repair
  }
  return repair(std::move(m), layer, arch, canonical_shrink_priority(df));
}

Mapping canonical_mapping(const arch::ArchConfig& arch,
                          const nn::Workload& layer) {
  return canonical_mapping(arch, layer, arch::native_dataflow(arch));
}

}  // namespace naas::mapping
