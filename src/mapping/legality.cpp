#include "mapping/legality.hpp"

#include <algorithm>

#include "mapping/footprint.hpp"

namespace naas::mapping {
namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// Clamps every tile to [1, bound(d)].
template <typename BoundFn>
void clamp_tiles(TileSizes& tiles, BoundFn bound) {
  for (nn::Dim d : nn::all_dims()) {
    const int b = std::max(1, bound(d));
    set_tile(tiles, d, std::clamp(tile_of(tiles, d), 1, b));
  }
}

}  // namespace

int pe_share(const nn::Workload& layer, const arch::ArchConfig& arch,
             const TileSizes& dram_tile, nn::Dim d) {
  const int t2 = std::clamp(tile_of(dram_tile, d), 1, layer.dim_size(d));
  return std::max(1, ceil_div(t2, arch.parallel_extent(d)));
}

std::string reason_dram_tile_range(nn::Dim d) {
  return std::string("dram tile out of range for ") + nn::dim_name(d);
}

std::string reason_pe_tile_share(nn::Dim d) {
  return std::string("pe tile exceeds share for ") + nn::dim_name(d);
}

std::string reason_l1_overflow(long long footprint, long long capacity) {
  return "per-PE tile overflows L1 (" + std::to_string(footprint) + "B > " +
         std::to_string(capacity) + "B)";
}

std::string reason_l2_overflow(long long footprint, long long capacity) {
  return "L2 tile overflows L2 (" + std::to_string(footprint) + "B > " +
         std::to_string(capacity) + "B)";
}

LegalityReport check(const Mapping& m, const nn::Workload& layer,
                     const arch::ArchConfig& arch) {
  if (!is_valid_order(m.dram.order)) return {false, kReasonDramOrder};
  if (!is_valid_order(m.pe.order)) return {false, kReasonPeOrder};
  if (!is_valid_order(m.pe_order)) return {false, kReasonRegisterOrder};
  for (nn::Dim d : nn::all_dims()) {
    const int t2 = tile_of(m.dram.tile, d);
    if (t2 < 1 || t2 > layer.dim_size(d))
      return {false, reason_dram_tile_range(d)};
    const int t1 = tile_of(m.pe.tile, d);
    const int share = pe_share(layer, arch, m.dram.tile, d);
    if (t1 < 1 || t1 > share) return {false, reason_pe_tile_share(d)};
  }
  const auto l1_fp = tile_footprint(layer, m.pe.tile);
  if (l1_fp.total() > arch.l1_bytes)
    return {false, reason_l1_overflow(l1_fp.total(), arch.l1_bytes)};
  const auto l2_fp = tile_footprint(layer, m.dram.tile);
  if (l2_fp.total() > arch.l2_bytes)
    return {false, reason_l2_overflow(l2_fp.total(), arch.l2_bytes)};
  return {true, ""};
}

ShrinkPriority default_shrink_priority() {
  return {nn::Dim::kXp, nn::Dim::kYp, nn::Dim::kN, nn::Dim::kK,
          nn::Dim::kC,  nn::Dim::kS,  nn::Dim::kR};
}

Mapping repair(Mapping m, const nn::Workload& layer,
               const arch::ArchConfig& arch, const ShrinkPriority& priority) {
  if (!is_valid_order(m.dram.order)) m.dram.order = default_order();
  if (!is_valid_order(m.pe.order)) m.pe.order = default_order();
  if (!is_valid_order(m.pe_order)) m.pe_order = default_order();
  const ShrinkPriority prio =
      is_valid_order(priority) ? priority : default_shrink_priority();

  clamp_tiles(m.dram.tile, [&](nn::Dim d) { return layer.dim_size(d); });
  clamp_tiles(m.pe.tile,
              [&](nn::Dim d) { return pe_share(layer, arch, m.dram.tile, d); });

  // Halves the earliest-priority dim with tile > 1; returns false when all
  // tiles are already 1 (cannot shrink further).
  auto shrink_one = [&prio](TileSizes& tiles) {
    for (nn::Dim d : prio) {
      const int t = tile_of(tiles, d);
      if (t > 1) {
        set_tile(tiles, d, t / 2);
        return true;
      }
    }
    return false;
  };

  while (tile_footprint(layer, m.pe.tile).total() > arch.l1_bytes) {
    if (!shrink_one(m.pe.tile)) break;
  }
  while (tile_footprint(layer, m.dram.tile).total() > arch.l2_bytes) {
    if (!shrink_one(m.dram.tile)) break;
    clamp_tiles(m.pe.tile, [&](nn::Dim d) {
      return pe_share(layer, arch, m.dram.tile, d);
    });
  }
  return m;
}

Mapping grow_to_fit(Mapping m, const nn::Workload& layer,
                    const arch::ArchConfig& arch,
                    const ShrinkPriority& dram_priority,
                    const ShrinkPriority& pe_priority) {
  // Doubles tiles[d] toward bound(d) while footprint stays within cap,
  // trying the full bound first (exact bounds avoid ceil-padding waste).
  auto grow = [&layer](TileSizes& tiles, const ShrinkPriority& prio,
                       auto bound_fn, long long cap) {
    for (nn::Dim d : prio) {
      const int bound = std::max(1, bound_fn(d));
      int cur = tile_of(tiles, d);
      if (cur >= bound) continue;
      set_tile(tiles, d, bound);
      if (tile_footprint(layer, tiles).total() <= cap) continue;
      set_tile(tiles, d, cur);
      while (cur < bound) {
        const int next = std::min(bound, cur * 2);
        set_tile(tiles, d, next);
        if (tile_footprint(layer, tiles).total() > cap) {
          set_tile(tiles, d, cur);
          break;
        }
        cur = next;
      }
    }
  };
  grow(m.dram.tile, dram_priority,
       [&](nn::Dim d) { return layer.dim_size(d); }, arch.l2_bytes);
  // Shares only grow when dram tiles grow, so existing pe tiles stay legal.
  grow(m.pe.tile, pe_priority,
       [&](nn::Dim d) { return pe_share(layer, arch, m.dram.tile, d); },
       arch.l1_bytes);
  return m;
}

}  // namespace naas::mapping
