#include "mapping/footprint.hpp"

#include <algorithm>

namespace naas::mapping {

TileFootprint tile_footprint(const nn::Workload& layer,
                             const TileSizes& tile) {
  auto t = [&](nn::Dim d) {
    return std::max(1, std::min(tile_of(tile, d), layer.dim_size(d)));
  };
  const long long tn = t(nn::Dim::kN);
  const long long tk = t(nn::Dim::kK);
  const long long tc = t(nn::Dim::kC);
  const long long typ = t(nn::Dim::kYp);
  const long long txp = t(nn::Dim::kXp);
  const long long tr = t(nn::Dim::kR);
  const long long ts = t(nn::Dim::kS);

  // Distinct input rows/cols read by the tile: consecutive outputs advance
  // by min(stride, kernel-extent) — when stride exceeds the kernel rows in
  // the tile, skipped input rows are never fetched.
  const long long in_rows =
      (typ - 1) * std::min<long long>(layer.stride, tr) + tr;
  const long long in_cols =
      (txp - 1) * std::min<long long>(layer.stride, ts) + ts;
  // Depthwise layers have C == 1 in the loop nest; their input channels are
  // walked by the K loop instead.
  const long long in_ch =
      layer.kind == nn::LayerKind::kDepthwiseConv ? tk : tc;

  // Attention's second operand (K^T / V) is an activation indexed by the
  // batch x head loop, so its tile scales with tn; all other kinds
  // multiply by 1, keeping the pre-refactor bytes integer-identical.
  const long long w_batch =
      layer.kind == nn::LayerKind::kAttention ? tn : 1;

  TileFootprint fp;
  fp.input = tn * in_ch * in_rows * in_cols * kBytesPerElement;
  fp.weight = w_batch * tk * tc * tr * ts * kBytesPerElement;
  fp.output = tn * tk * typ * txp * kBytesPerElement;
  return fp;
}

}  // namespace naas::mapping
