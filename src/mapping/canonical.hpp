#pragma once

#include "arch/accelerator.hpp"
#include "arch/presets.hpp"
#include "mapping/legality.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::mapping {

/// Canonical loop orders for the three dataflow families.
/// Weight-stationary: weight-relevant dims (K,C,R,S) outermost, so the
/// irrelevant X'/Y'/N stream innermost and weights stay resident.
LoopOrder weight_stationary_order();
/// Output-stationary: reduction dims (C,R,S) innermost, psums accumulate in
/// place.
LoopOrder output_stationary_order();
/// Row-stationary (Eyeriss-like): a filter row is held per PE while output
/// columns stream; S innermost under X'.
LoopOrder row_stationary_order();

/// Canonical order for a dataflow family.
LoopOrder canonical_order(arch::Dataflow df);

/// Dataflow-specific shrink priority used to grow the largest tiles that
/// preserve the family's stationarity (e.g. weight-stationary shrinks
/// spatial dims before channel/kernel dims).
ShrinkPriority canonical_shrink_priority(arch::Dataflow df);

/// The baseline mapping used when evaluating a fixed accelerator without
/// mapping search: canonical orders at every level, maximal greedy tiles
/// repaired to capacity with the dataflow's shrink priority.
Mapping canonical_mapping(const arch::ArchConfig& arch,
                          const nn::Workload& layer, arch::Dataflow df);

/// Same, using the arch's native dataflow (arch::native_dataflow).
Mapping canonical_mapping(const arch::ArchConfig& arch,
                          const nn::Workload& layer);

}  // namespace naas::mapping
