#pragma once

#include <array>
#include <string>

#include "nn/layer.hpp"

namespace naas::mapping {

/// Loop order over the seven workload dimensions, outermost first. Must be
/// a permutation of all_dims().
using LoopOrder = std::array<nn::Dim, nn::kNumDims>;

/// True if `order` contains each dimension exactly once.
bool is_valid_order(const LoopOrder& order);

/// The canonical order N,K,C,Y',X',R,S.
LoopOrder default_order();

/// Tile sizes indexed by static_cast<int>(Dim).
using TileSizes = std::array<int, nn::kNumDims>;

/// Convenience accessors for TileSizes by Dim.
int tile_of(const TileSizes& t, nn::Dim d);
void set_tile(TileSizes& t, nn::Dim d, int v);

/// One temporal tiling level: the order in which tiles are visited and the
/// tile size along each dimension at this level.
struct LevelMapping {
  LoopOrder order = default_order();
  TileSizes tile{1, 1, 1, 1, 1, 1, 1};
};

/// A complete compiler mapping for one layer on one accelerator, mirroring
/// the paper's mapping encoding vector (Fig. 2):
///  - `dram`: DRAM->L2 level. `dram.tile[d]` is the L2 tile size along `d`;
///    `dram.order` is the order L2 tiles stream from DRAM (drives DRAM
///    traffic via the reuse analysis).
///  - `pe`: L2->L1 level. `pe.tile[d]` is the per-PE L1 tile; `pe.order`
///    is the order each PE walks its share of the L2 tile (drives L2/NoC
///    traffic). The spatial partitioning between these two levels is given
///    by the accelerator's parallel dims and is not part of the mapping.
///  - `pe_order`: loop order *inside* the L1 tile (the PE executes one MAC
///    per cycle; only order is searchable here, per Section II-B, since a
///    PE holds a single MAC).
struct Mapping {
  LevelMapping dram;
  LevelMapping pe;
  LoopOrder pe_order = default_order();

  /// Multi-line human-readable description.
  std::string to_string() const;
};

/// Renders an order like "K>C>Y'>X'>R>S>N".
std::string order_to_string(const LoopOrder& order);

}  // namespace naas::mapping
