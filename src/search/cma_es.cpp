#include "search/cma_es.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <string>

#include "core/log.hpp"

namespace naas::search {

CmaEs::CmaEs(const CmaEsOptions& options)
    : opts_(options),
      rng_(options.seed),
      dim_(options.dim),
      mu_(options.parents > 0 ? options.parents
                              : std::max(1, options.population / 2)),
      mean_(static_cast<std::size_t>(options.dim), 0.5),
      sigma_(options.sigma0),
      cov_(core::Matrix::identity(options.dim)),
      chol_(core::Matrix::identity(options.dim)),
      path_sigma_(static_cast<std::size_t>(options.dim), 0.0),
      path_c_(static_cast<std::size_t>(options.dim), 0.0) {
  assert(dim_ >= 1 && opts_.population >= 2);
  // Standard log-rank recombination weights.
  weights_.resize(static_cast<std::size_t>(mu_));
  for (int i = 0; i < mu_; ++i)
    weights_[static_cast<std::size_t>(i)] =
        std::log(mu_ + 0.5) - std::log(i + 1.0);
  const double wsum =
      std::accumulate(weights_.begin(), weights_.end(), 0.0);
  for (auto& w : weights_) w /= wsum;
  double w2 = 0.0;
  for (const auto& w : weights_) w2 += w * w;
  mu_eff_ = 1.0 / w2;

  const double n = dim_;
  c_sigma_ = (mu_eff_ + 2.0) / (n + mu_eff_ + 5.0);
  d_sigma_ = 1.0 + 2.0 * std::max(0.0, std::sqrt((mu_eff_ - 1.0) / (n + 1.0)) -
                                           1.0) +
             c_sigma_;
  c_c_ = (4.0 + mu_eff_ / n) / (n + 4.0 + 2.0 * mu_eff_ / n);
  c_1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff_);
  c_mu_ = std::min(1.0 - c_1_, 2.0 * (mu_eff_ - 2.0 + 1.0 / mu_eff_) /
                                   ((n + 2.0) * (n + 2.0) + mu_eff_));
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
}

std::vector<double> CmaEs::sample_from(core::Rng& rng, double sigma) const {
  const std::vector<double> z = rng.normal_vector(dim_);
  std::vector<double> y = chol_.matvec(z);
  std::vector<double> x(static_cast<std::size_t>(dim_));
  for (int i = 0; i < dim_; ++i) {
    const auto s = static_cast<std::size_t>(i);
    x[s] = std::clamp(mean_[s] + sigma * y[s], 0.0, 1.0);
  }
  return x;
}

std::vector<double> CmaEs::sample_one() { return sample_from(rng_, sigma_); }

double CmaEs::marginal_stddev(int i) const {
  assert(i >= 0 && i < dim_);
  return sigma_ * std::sqrt(std::max(0.0, cov_(i, i)));
}

std::vector<std::vector<double>> CmaEs::ask(
    const std::function<bool(const std::vector<double>&)>& valid) {
  std::vector<std::vector<double>> pop;
  pop.reserve(static_cast<std::size_t>(opts_.population));
  for (int k = 0; k < opts_.population; ++k) {
    std::vector<double> x = sample_one();
    if (valid) {
      for (int attempt = 0; attempt < opts_.max_resample && !valid(x);
           ++attempt) {
        x = sample_one();
      }
      if (!valid(x)) {
        // Every resample landed outside the feasible space. Never hand a
        // known-invalid random point downstream: fall back to the clamped
        // mean, which is always inside [0,1]^dim and is the distribution's
        // best in-space guess.
        x = mean_;
        for (double& v : x) v = std::clamp(v, 0.0, 1.0);
        ++resample_exhausted_;
        core::log_debug("CmaEs::ask: resample budget exhausted, falling "
                        "back to clamped mean (count=" +
                        std::to_string(resample_exhausted_) + ")");
      }
    }
    pop.push_back(std::move(x));
  }
  return pop;
}

const std::vector<std::vector<double>>& CmaEs::begin_generation(
    const std::function<bool(const std::vector<double>&)>& valid) {
  assert(!generation_open());
  pending_population_ = ask(valid);
  pending_fitness_.assign(pending_population_.size(), 0.0);
  pending_reported_.assign(pending_population_.size(), false);
  pending_remaining_ = pending_population_.size();
  return pending_population_;
}

bool CmaEs::tell_partial(std::size_t index, double fitness) {
  assert(generation_open() && index < pending_population_.size() &&
         !pending_reported_[index]);
  pending_fitness_[index] = fitness;
  pending_reported_[index] = true;
  if (--pending_remaining_ > 0) return false;
  // Last slot filled: the assembled fitness vector is in candidate order
  // regardless of the order reports arrived in, so the distribution update
  // is bit-identical to a barrier-style ask()/tell() round trip.
  tell(pending_population_, pending_fitness_);
  return true;
}

void CmaEs::tell(const std::vector<std::vector<double>>& population,
                 const std::vector<double>& fitness) {
  assert(population.size() == fitness.size());
  const int lambda = static_cast<int>(population.size());
  const int mu = std::min(mu_, lambda);

  // Rank candidates by fitness (ascending; lower is better).
  std::vector<int> order(static_cast<std::size_t>(lambda));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return fitness[static_cast<std::size_t>(a)] <
           fitness[static_cast<std::size_t>(b)];
  });

  const std::vector<double> old_mean = mean_;

  // Truncated-parent case (lambda < configured mu): the weight prefix no
  // longer sums to 1, which would shrink the recombined mean toward the
  // origin. Renormalize the prefix and recompute the effective selection
  // mass used by this update's path coefficients.
  const std::vector<double>* weights = &weights_;
  double mu_eff = mu_eff_;
  std::vector<double> trunc_weights;
  if (mu < mu_) {
    trunc_weights.assign(weights_.begin(), weights_.begin() + mu);
    const double wsum =
        std::accumulate(trunc_weights.begin(), trunc_weights.end(), 0.0);
    double w2 = 0.0;
    for (auto& w : trunc_weights) {
      w /= wsum;
      w2 += w * w;
    }
    mu_eff = 1.0 / w2;
    weights = &trunc_weights;
  }

  // Weighted recombination of the mu best.
  std::vector<double> new_mean(static_cast<std::size_t>(dim_), 0.0);
  for (int i = 0; i < mu; ++i) {
    const auto& x = population[static_cast<std::size_t>(
        order[static_cast<std::size_t>(i)])];
    const double w = (*weights)[static_cast<std::size_t>(i)];
    for (int d = 0; d < dim_; ++d)
      new_mean[static_cast<std::size_t>(d)] +=
          w * x[static_cast<std::size_t>(d)];
  }
  mean_ = new_mean;

  // Mean displacement in sigma-normalized coordinates.
  std::vector<double> y_w(static_cast<std::size_t>(dim_));
  for (int d = 0; d < dim_; ++d) {
    const auto s = static_cast<std::size_t>(d);
    y_w[s] = (mean_[s] - old_mean[s]) / sigma_;
  }

  // z_w = L^-1 y_w approximates C^(-1/2) y_w (Cholesky CMA-ES variant).
  std::vector<double> z_w(static_cast<std::size_t>(dim_), 0.0);
  for (int r = 0; r < dim_; ++r) {
    double acc = y_w[static_cast<std::size_t>(r)];
    for (int c = 0; c < r; ++c)
      acc -= chol_(r, c) * z_w[static_cast<std::size_t>(c)];
    z_w[static_cast<std::size_t>(r)] = acc / chol_(r, r);
  }

  // Step-size path and CSA update. The population was sampled with the
  // current sigma; capture it before CSA moves it — the covariance vectors
  // below must be normalized by the sampling sigma, not the updated one.
  const double sampled_sigma = sigma_;
  const double cs_coef = std::sqrt(c_sigma_ * (2.0 - c_sigma_) * mu_eff);
  double ps_norm2 = 0.0;
  for (int d = 0; d < dim_; ++d) {
    const auto s = static_cast<std::size_t>(d);
    path_sigma_[s] = (1.0 - c_sigma_) * path_sigma_[s] + cs_coef * z_w[s];
    ps_norm2 += path_sigma_[s] * path_sigma_[s];
  }
  const double ps_norm = std::sqrt(ps_norm2);
  sigma_ *= std::exp((c_sigma_ / d_sigma_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-8, 1.0);

  // Covariance path (with stall indicator h_sigma).
  const double h_sigma =
      ps_norm / std::sqrt(1.0 - std::pow(1.0 - c_sigma_,
                                         2.0 * (generation_ + 1))) <
              (1.4 + 2.0 / (dim_ + 1.0)) * chi_n_
          ? 1.0
          : 0.0;
  const double cc_coef = std::sqrt(c_c_ * (2.0 - c_c_) * mu_eff);
  for (int d = 0; d < dim_; ++d) {
    const auto s = static_cast<std::size_t>(d);
    path_c_[s] = (1.0 - c_c_) * path_c_[s] + h_sigma * cc_coef * y_w[s];
  }

  // Covariance update: decay + rank-one (path) + rank-mu (parents).
  const double c1a =
      c_1_ * (1.0 - (1.0 - h_sigma * h_sigma) * c_c_ * (2.0 - c_c_));
  cov_.scale(1.0 - c1a - c_mu_);
  cov_.add_outer(path_c_, c_1_);
  for (int i = 0; i < mu; ++i) {
    const auto& x = population[static_cast<std::size_t>(
        order[static_cast<std::size_t>(i)])];
    std::vector<double> y_i(static_cast<std::size_t>(dim_));
    for (int d = 0; d < dim_; ++d) {
      const auto s = static_cast<std::size_t>(d);
      y_i[s] = (x[s] - old_mean[s]) / sampled_sigma;
    }
    cov_.add_outer(y_i, c_mu_ * (*weights)[static_cast<std::size_t>(i)]);
  }
  cov_.symmetrize();
  chol_ = cov_.cholesky();
  ++generation_;
}

}  // namespace naas::search
