#pragma once

#include <functional>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace naas::search {

/// Options for the CMA-ES optimizer.
struct CmaEsOptions {
  int dim = 1;            ///< search-space dimensionality
  int population = 16;    ///< lambda: candidates per generation
  int parents = 0;        ///< mu: selected parents (0 => population/2)
  double sigma0 = 0.25;   ///< initial step size (space is [0,1]^dim)
  std::uint64_t seed = 1;
  int max_resample = 64;  ///< validity-rejection resamples per candidate
};

/// Covariance-Matrix-Adaptation Evolution Strategy (Hansen), the search
/// engine behind both NAAS optimization levels (Section II-A-c): sample a
/// population from a multivariate normal over [0,1]^dim, select the
/// lowest-EDP parents, recenter the distribution on their weighted mean and
/// adapt the covariance (rank-one + rank-mu) and step size (CSA) to
/// increase the likelihood of sampling near the parents.
///
/// Candidates are clipped to [0,1]; an optional validity predicate triggers
/// rejection-resampling ("rule out the invalid accelerator samples and keep
/// sampling", Section II-A-c).
class CmaEs {
 public:
  explicit CmaEs(const CmaEsOptions& options);

  /// Samples one generation of candidates. If `valid` is provided, each
  /// candidate is resampled until the predicate passes (up to
  /// max_resample, after which the clamped mean is returned instead —
  /// see resample_exhausted()).
  std::vector<std::vector<double>> ask(
      const std::function<bool(const std::vector<double>&)>& valid = nullptr);

  /// Reports fitness for the generation returned by the matching ask()
  /// (lower is better) and updates mean, covariance, and step size.
  void tell(const std::vector<std::vector<double>>& population,
            const std::vector<double>& fitness);

  /// --- Non-blocking step API (the task-graph evaluation pipeline) ---
  ///
  /// begin_generation() samples a generation through exactly the same
  /// stream and rejection logic as ask(), but retains it: the pending
  /// population is readable (const, stable storage) while its candidates
  /// evaluate as concurrently-scheduled tasks. Fitness comes back one slot
  /// at a time via tell_partial(); the call that fills the last open slot
  /// applies the full tell() update and returns true, so a generation's
  /// *completion* — not a join — is what schedules the next one.
  const std::vector<std::vector<double>>& begin_generation(
      const std::function<bool(const std::vector<double>&)>& valid = nullptr);

  /// The generation retained by begin_generation(). Valid (and immutable)
  /// until the tell_partial() that completes it returns.
  const std::vector<std::vector<double>>& pending_population() const {
    return pending_population_;
  }

  /// True while a begun generation still has unreported slots.
  bool generation_open() const { return pending_remaining_ > 0; }

  /// Reports fitness for pending candidate `index` (each slot exactly
  /// once). Returns true when this report completed the generation and the
  /// distribution update was applied. Not thread-safe: serialize calls
  /// (the pipeline's continuation tasks do so structurally, the outer
  /// search loop with a mutex).
  bool tell_partial(std::size_t index, double fitness);

  /// Current distribution mean.
  const std::vector<double>& mean() const { return mean_; }

  /// Current global step size.
  double sigma() const { return sigma_; }

  /// Marginal standard deviation of coordinate `i` under the current
  /// sampling distribution: sigma * sqrt(C[i][i]). This is the read-only
  /// window the decoded-space speculation predictor uses to weight decode
  /// cells by their per-dimension Gaussian mass (search/speculation.*);
  /// it touches no generator state, so consulting it never advances the
  /// optimizer's stream.
  double marginal_stddev(int i) const;

  /// Generations processed so far.
  int generation() const { return generation_; }

  /// Configured parent count mu. tell() consumes fitness values ONLY
  /// through the rank order of the best min(mu, lambda) candidates — the
  /// update never reads a fitness numerically — so a candidate whose
  /// reported fitness is strictly worse than the generation's mu-th best
  /// influences the distribution identically no matter what that value is.
  /// The surrogate pruning gate in run_naas rests on this contract.
  int parents() const { return mu_; }

  /// Candidates that exhausted max_resample and fell back to the clamped
  /// mean. ask() therefore never returns a point the caller's decode cannot
  /// handle; a rapidly growing counter means the validity predicate rejects
  /// nearly all of the current distribution's mass.
  long long resample_exhausted() const { return resample_exhausted_; }

 private:
  std::vector<double> sample_one();
  std::vector<double> sample_from(core::Rng& rng, double sigma) const;

  CmaEsOptions opts_;
  core::Rng rng_;
  int dim_;
  int mu_;
  std::vector<double> weights_;  ///< recombination weights (size mu)
  double mu_eff_ = 0;
  double c_sigma_ = 0, d_sigma_ = 0, c_c_ = 0, c_1_ = 0, c_mu_ = 0;
  double chi_n_ = 0;  ///< E||N(0,I)||

  std::vector<double> mean_;
  double sigma_;
  core::Matrix cov_;       ///< covariance C
  core::Matrix chol_;      ///< lower Cholesky factor of C
  std::vector<double> path_sigma_;
  std::vector<double> path_c_;
  int generation_ = 0;
  long long resample_exhausted_ = 0;

  /// Step-API state: the retained generation and its partially-filled
  /// fitness vector (see begin_generation/tell_partial).
  std::vector<std::vector<double>> pending_population_;
  std::vector<double> pending_fitness_;
  std::vector<bool> pending_reported_;
  std::size_t pending_remaining_ = 0;
};

}  // namespace naas::search
