#pragma once

#include <functional>
#include <vector>

#include "core/matrix.hpp"
#include "core/rng.hpp"

namespace naas::search {

/// Options for the CMA-ES optimizer.
struct CmaEsOptions {
  int dim = 1;            ///< search-space dimensionality
  int population = 16;    ///< lambda: candidates per generation
  int parents = 0;        ///< mu: selected parents (0 => population/2)
  double sigma0 = 0.25;   ///< initial step size (space is [0,1]^dim)
  std::uint64_t seed = 1;
  int max_resample = 64;  ///< validity-rejection resamples per candidate
};

/// Covariance-Matrix-Adaptation Evolution Strategy (Hansen), the search
/// engine behind both NAAS optimization levels (Section II-A-c): sample a
/// population from a multivariate normal over [0,1]^dim, select the
/// lowest-EDP parents, recenter the distribution on their weighted mean and
/// adapt the covariance (rank-one + rank-mu) and step size (CSA) to
/// increase the likelihood of sampling near the parents.
///
/// Candidates are clipped to [0,1]; an optional validity predicate triggers
/// rejection-resampling ("rule out the invalid accelerator samples and keep
/// sampling", Section II-A-c).
class CmaEs {
 public:
  explicit CmaEs(const CmaEsOptions& options);

  /// Samples one generation of candidates. If `valid` is provided, each
  /// candidate is resampled until the predicate passes (up to
  /// max_resample, after which the clamped mean is returned instead —
  /// see resample_exhausted()).
  std::vector<std::vector<double>> ask(
      const std::function<bool(const std::vector<double>&)>& valid = nullptr);

  /// Reports fitness for the generation returned by the matching ask()
  /// (lower is better) and updates mean, covariance, and step size.
  void tell(const std::vector<std::vector<double>>& population,
            const std::vector<double>& fitness);

  /// Current distribution mean.
  const std::vector<double>& mean() const { return mean_; }

  /// Current global step size.
  double sigma() const { return sigma_; }

  /// Generations processed so far.
  int generation() const { return generation_; }

  /// Candidates that exhausted max_resample and fell back to the clamped
  /// mean. ask() therefore never returns a point the caller's decode cannot
  /// handle; a rapidly growing counter means the validity predicate rejects
  /// nearly all of the current distribution's mass.
  long long resample_exhausted() const { return resample_exhausted_; }

 private:
  std::vector<double> sample_one();

  CmaEsOptions opts_;
  core::Rng rng_;
  int dim_;
  int mu_;
  std::vector<double> weights_;  ///< recombination weights (size mu)
  double mu_eff_ = 0;
  double c_sigma_ = 0, d_sigma_ = 0, c_c_ = 0, c_1_ = 0, c_mu_ = 0;
  double chi_n_ = 0;  ///< E||N(0,I)||

  std::vector<double> mean_;
  double sigma_;
  core::Matrix cov_;       ///< covariance C
  core::Matrix chol_;      ///< lower Cholesky factor of C
  std::vector<double> path_sigma_;
  std::vector<double> path_c_;
  int generation_ = 0;
  long long resample_exhausted_ = 0;
};

}  // namespace naas::search
