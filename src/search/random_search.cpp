#include "search/random_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"

namespace naas::search {

NaasResult run_random_search(const cost::CostModel& model,
                             const NaasOptions& options,
                             const std::vector<nn::Network>& benchmarks) {
  if (benchmarks.empty())
    throw std::invalid_argument("run_random_search: no benchmark networks");

  core::Timer timer;
  NaasResult result;
  result.best_geomean_edp = std::numeric_limits<double>::infinity();

  const HwEncodingSpec hw = make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  ArchEvaluator evaluator(model, options.mapping);
  core::Rng rng(options.seed);
  const int dim = hw.genome_size();

  auto sample_valid = [&]() {
    std::vector<double> genome(static_cast<std::size_t>(dim));
    for (int attempt = 0; attempt < 64; ++attempt) {
      for (auto& g : genome) g = rng.uniform();
      if (hw.valid(genome)) break;
    }
    return genome;
  };

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<double> finite_edps;
    for (int k = 0; k < options.population; ++k) {
      const auto genome = sample_valid();
      const arch::ArchConfig cfg = hw.decode(genome);
      if (!options.resources.allows(cfg)) continue;
      const double edp = evaluator.geomean_edp(cfg, benchmarks);
      if (!std::isfinite(edp)) continue;
      finite_edps.push_back(edp);
      if (edp < result.best_geomean_edp) {
        result.best_geomean_edp = edp;
        result.best_arch = cfg;
      }
    }
    result.population_mean_edp.push_back(core::mean(finite_edps));
    result.population_best_edp.push_back(
        finite_edps.empty()
            ? std::numeric_limits<double>::infinity()
            : *std::min_element(finite_edps.begin(), finite_edps.end()));
  }

  if (std::isfinite(result.best_geomean_edp)) {
    for (const auto& net : benchmarks)
      result.best_networks.push_back(
          evaluator.evaluate(result.best_arch, net));
  }
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::search
