#include "search/eval_cache.hpp"

#include <algorithm>
#include <utility>

namespace naas::search {

const MappingSearchResult* EvalCache::find(std::uint64_t key) const {
  const Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : &it->second.result;
}

const MappingSearchResult& EvalCache::publish(std::uint64_t key,
                                              MappingSearchResult&& result,
                                              bool* inserted) {
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto [it, fresh] = shard.map.emplace(key, Entry{std::move(result), 0});
  if (fresh) it->second.seq = seq_.fetch_add(1) + 1;
  if (inserted) *inserted = fresh;
  return it->second.result;
}

void EvalCache::mark_speculative(std::uint64_t key) {
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) it->second.speculative = true;
}

bool EvalCache::claim_speculative(std::uint64_t key) {
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(key);
  if (it == shard.map.end() || !it->second.speculative) return false;
  it->second.speculative = false;
  // Re-sequence: an incremental flush may already have passed this entry's
  // original insertion number while it was hidden; the fresh number puts
  // it after every mark handed out so far, so the next cut captures it.
  it->second.seq = seq_.fetch_add(1) + 1;
  return true;
}

std::size_t EvalCache::speculative_resident() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    for (const auto& [key, entry] : shard.map)
      if (entry.speculative) ++total;
  }
  return total;
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    total += shard.map.size();
  }
  return total;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    shard.map.clear();
  }
}

std::vector<std::pair<std::uint64_t, MappingSearchResult>>
EvalCache::snapshot() const {
  return snapshot_since(0);
}

std::vector<std::pair<std::uint64_t, MappingSearchResult>>
EvalCache::snapshot_since(std::uint64_t since, std::uint64_t* high_mark) const {
  // Acquire every shard lock (fixed index order; publish/preload/find take
  // exactly one, so no cycle is possible) before scanning: the scan and
  // the seq_ read then form one consistent cut across all shards. Without
  // the full lock a publish racing the scan could assign a lower insertion
  // number in an already-scanned shard than one captured from a later
  // shard, permanently losing (or duplicating) an entry for incremental
  // callers.
  std::array<std::unique_lock<std::mutex>, kNumShards> locks;
  for (std::size_t i = 0; i < kNumShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].m);
  if (high_mark != nullptr) *high_mark = seq_.load();

  std::vector<std::pair<std::uint64_t, MappingSearchResult>> out;
  for (const Shard& shard : shards_) {
    for (const auto& [key, entry] : shard.map)
      if (entry.seq > since && !entry.speculative)
        out.emplace_back(key, entry.result);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t EvalCache::preload(
    std::vector<std::pair<std::uint64_t, MappingSearchResult>> entries) {
  std::size_t inserted = 0;
  for (auto& [key, result] : entries) {
    Shard& shard = shards_[shard_index(key)];
    std::lock_guard<std::mutex> lk(shard.m);
    const auto [it, fresh] =
        shard.map.emplace(key, Entry{std::move(result), 0});
    if (fresh) {
      it->second.seq = seq_.fetch_add(1) + 1;
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace naas::search
