#include "search/eval_cache.hpp"

#include <algorithm>
#include <utility>

namespace naas::search {

const MappingSearchResult* EvalCache::find(std::uint64_t key) const {
  const Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : &it->second;
}

const MappingSearchResult& EvalCache::publish(std::uint64_t key,
                                              MappingSearchResult&& result,
                                              bool* inserted) {
  Shard& shard = shards_[shard_index(key)];
  std::lock_guard<std::mutex> lk(shard.m);
  const auto [it, fresh] = shard.map.emplace(key, std::move(result));
  if (inserted) *inserted = fresh;
  return it->second;
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    total += shard.map.size();
  }
  return total;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    shard.map.clear();
  }
}

std::vector<std::pair<std::uint64_t, MappingSearchResult>>
EvalCache::snapshot() const {
  std::vector<std::pair<std::uint64_t, MappingSearchResult>> out;
  out.reserve(size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    for (const auto& [key, result] : shard.map) out.emplace_back(key, result);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t EvalCache::preload(
    std::vector<std::pair<std::uint64_t, MappingSearchResult>> entries) {
  std::size_t inserted = 0;
  for (auto& [key, result] : entries) {
    Shard& shard = shards_[shard_index(key)];
    std::lock_guard<std::mutex> lk(shard.m);
    inserted += shard.map.emplace(key, std::move(result)).second ? 1 : 0;
  }
  return inserted;
}

}  // namespace naas::search
