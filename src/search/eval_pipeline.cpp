#include "search/eval_pipeline.hpp"

#include <utility>

#include "search/accelerator_search.hpp"

namespace naas::search {

// Lock hierarchy: mutex_ (chain bookkeeping) may be held while taking the
// evaluator's speculative_mutex_, which in turn may take exactly one
// EvalCache shard lock (the speculative tag travels with the bookkeeping:
// record_speculative_publish / claim_speculative mark and unmark the
// resident entry under speculative_mutex_). Nothing else — never the
// graph mutex. Graph submission and bulk cache access happen unlocked,
// which is safe because request() is driven from one logical thread at a
// time (see the header contract); mutex_ exists to order that bookkeeping
// against concurrently executing publish bodies. No path acquires a shard
// lock and then mutex_ or speculative_mutex_, so the order is acyclic.

EvalPipeline::EvalPipeline(ArchEvaluator& evaluator)
    : evaluator_(evaluator), graph_(evaluator.pool()) {}

std::optional<core::TaskGraph::TaskId> EvalPipeline::request(
    const arch::ArchConfig& arch, const nn::Workload& layer,
    bool speculative) {
  const std::uint64_t key = evaluator_.cache_key(arch, layer);

  // Existing chain: promotion bookkeeping under the lock, meter effects
  // and priority changes (foreign locks) after releasing it.
  {
    bool known = false;
    bool claim = false;
    bool note_hit = false;
    std::function<void()> promote_tasks;
    core::TaskGraph::TaskId promote_publish = 0;
    std::optional<core::TaskGraph::TaskId> existing;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      const auto it = chains_.find(key);
      if (it != chains_.end()) {
        known = true;
        Chain& chain = it->second;
        if (!speculative && chain.speculative) {
          // First real request for a speculatively requested key:
          // speculation predicted needed work. Promote the accounting AND
          // the chain's scheduling class — real work now gates on it, so
          // leaving it at idle priority would make it the generation's
          // straggler. The chain itself is shared either way (never
          // re-run).
          chain.speculative = false;
          promote_tasks = chain.promote;
          promote_publish = chain.published;
          if (chain.publish_done) {
            claim = true;  // meters transfer from the resident entry
          } else {
            note_hit = true;  // pending publish will count the work as real
          }
        }
        if (chain.published != 0) existing = chain.published;
      }
    }
    if (known) {
      if (promote_tasks) promote_tasks();
      if (promote_publish != 0) graph_.promote(promote_publish);
      if (claim) evaluator_.claim_speculative(key);
      if (note_hit) evaluator_.note_speculative_hit();
      return existing;
    }
  }

  if (evaluator_.cache_.find(key) != nullptr) {
    // Resident before this pipeline ever saw the key (warm start, an
    // earlier pipeline, or an earlier speculative run). A real touch of a
    // still-unclaimed speculative entry transfers its meters now.
    if (!speculative) evaluator_.claim_speculative(key);
    Chain chain;
    chain.speculative = speculative;
    chain.publish_done = true;
    std::lock_guard<std::mutex> lk(mutex_);
    chains_.emplace(key, std::move(chain));
    return std::nullopt;
  }

  // New chain. The record goes into chains_ *before* the tasks exist so a
  // publish body racing this bookkeeping (impossible for this key — its
  // tasks are submitted below — but cheap to keep invariant) always finds
  // its record; `published` is filled before request() returns, which the
  // single-driver contract makes safe.
  {
    Chain chain;
    chain.result = std::make_unique<MappingSearchResult>();
    chain.speculative = speculative;
    std::lock_guard<std::mutex> lk(mutex_);
    chains_.emplace(key, std::move(chain));
  }

  const auto priority = speculative ? core::TaskGraph::Priority::kSpeculative
                                    : core::TaskGraph::Priority::kNormal;
  MappingSearchResult* slot;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    slot = chains_.at(key).result.get();
  }
  MappingSearchChain submitted =
      submit_mapping_search(graph_, evaluator_.model_, arch, layer,
                            evaluator_.layer_options(layer), slot, priority);
  const core::TaskGraph::TaskId done = submitted.done;
  const core::TaskGraph::TaskId published = graph_.submit(
      [this, key, slot] {
        bool inserted = false;
        const MappingSearchResult& entry =
            evaluator_.cache_.publish(key, std::move(*slot), &inserted);
        bool count_real = false;
        {
          std::lock_guard<std::mutex> lk(mutex_);
          Chain& c = chains_.at(key);
          c.publish_done = true;
          if (inserted) {
            if (c.speculative) {
              // Registered inside this critical section so a promotion
              // that observes publish_done always finds the key claimable.
              evaluator_.record_speculative_publish(key);
            } else {
              count_real = true;
            }
          }
        }
        if (count_real) evaluator_.record_real_publish(entry);
      },
      {done}, priority);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    Chain& chain = chains_.at(key);
    chain.published = published;
    if (speculative) chain.promote = std::move(submitted.promote);
  }
  return published;
}

void EvalPipeline::request_network(const arch::ArchConfig& arch,
                                   const nn::Network& net, bool speculative,
                                   std::vector<core::TaskGraph::TaskId>* deps) {
  for (const auto& [layer, count] : net.unique_layers()) {
    const auto id = request(arch, layer, speculative);
    if (id && deps != nullptr) deps->push_back(*id);
  }
}

std::vector<core::TaskGraph::TaskId> EvalPipeline::request_benchmarks(
    const arch::ArchConfig& arch, const std::vector<nn::Network>& benchmarks,
    bool speculative) {
  std::vector<core::TaskGraph::TaskId> deps;
  for (const auto& net : benchmarks)
    request_network(arch, net, speculative, &deps);
  return deps;
}

void EvalPipeline::run() {
  graph_.run();
  const core::TaskGraph::Stats now = graph_.stats();
  core::TaskGraph::Stats delta = now;
  delta.tasks_executed -= absorbed_.tasks_executed;
  delta.tasks_skipped -= absorbed_.tasks_skipped;
  delta.busy_seconds -= absorbed_.busy_seconds;
  delta.wall_seconds -= absorbed_.wall_seconds;
  absorbed_ = now;
  evaluator_.absorb_scheduler_stats(delta);
}

}  // namespace naas::search
