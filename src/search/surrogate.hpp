#pragma once

#include <string_view>
#include <vector>

#include "arch/accelerator.hpp"
#include "cost/cost_model.hpp"
#include "nn/network.hpp"

namespace naas::search {

/// Surrogate pruning policy for the outer accelerator search.
enum class SurrogateMode {
  kOff,    ///< never consult the surrogate (bit-identical legacy behavior)
  kPrune,  ///< skip mapping search when the lower bound already loses
};

/// "off" / "prune".
const char* surrogate_mode_name(SurrogateMode mode);

/// Parses "off"/"prune" (exact match). Returns false on anything else.
bool parse_surrogate_mode(std::string_view text, SurrogateMode* out);

/// Roofline lower bound for one (accelerator, layer) pair. Exact by
/// construction: every term is provably <= the corresponding term of the
/// cost model's report for EVERY legal mapping, so a candidate whose bound
/// already exceeds the best known cost can be discarded without running
/// its mapping search — pruning can never discard a would-be winner.
struct SurrogateBound {
  double latency_cycles = 0;  ///< max(compute, NoC, DRAM floor) + fill
  double energy_nj = 0;       ///< MAC energy + compulsory-traffic energy
  double edp = 0;             ///< energy_nj * latency_cycles
};

/// Computes the per-layer roofline bound from the context's invariants:
///  - compute floor: macs / pes (the padded per-PE iteration space is at
///    least the ideal work split at 1 MAC/cycle);
///  - DRAM floor: compulsory_bytes / dram_bw (every operand crosses the
///    DRAM port at least once — see LayerContext::compulsory_bytes);
///  - NoC floor: compulsory_bytes / noc_bw (compulsory DRAM fills are L2
///    writes and compulsory drains are L2 reads, both on the NoC port);
///  - plus the array_depth pipeline-fill term the model always adds.
/// Energy keeps the always-paid terms only: MAC energy plus the compulsory
/// bytes paid once at L2 and once at DRAM. Invalid or degenerate contexts
/// (whose true cost is +inf for every mapping) return +inf bounds.
SurrogateBound surrogate_layer_bound(const cost::LayerContext& ctx);

/// Network-level EDP bound: count-weighted sums of the per-unique-layer
/// latency and energy bounds, multiplied — termwise <= the true
/// NetworkCost sums, so the product bounds the true network EDP. Returns
/// +inf if any layer's context is invalid/degenerate.
double surrogate_network_edp_bound(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::Network& net);

/// Geomean of the per-network EDP bounds over a benchmark set — the
/// surrogate mirror of ArchEvaluator's geomean-EDP reward, and <= it for
/// every candidate (geomean is monotone in each argument). +inf if any
/// network bound is +inf.
double surrogate_geomean_edp_bound(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const std::vector<nn::Network>& benchmarks);

}  // namespace naas::search
