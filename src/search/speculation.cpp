#include "search/speculation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

namespace naas::search {
namespace {

/// Gaussian CDF at `x` for N(mean, sd). sd > 0. Infinite `x` is fine
/// (erfc saturates), which is how the boundary cells absorb the mass the
/// sampler's clamp folds onto 0 and 1.
double normal_cdf(double x, double mean, double sd) {
  return 0.5 * std::erfc((mean - x) / (sd * std::sqrt(2.0)));
}

/// One decode cell of a single gene: a maximal interval over which the
/// decoded architecture fingerprint is constant (all other genes held at
/// the distribution mean), with its Gaussian marginal mass.
struct Cell {
  double rep = 0.5;  ///< representative gene value inside the cell
  double mass = 0.0;
};

/// Locates the decode cells of gene `dim_index` by probing a fine grid
/// (plus the clamped mean itself) and fingerprinting each decode, then
/// weights every cell by the marginal N(mu, sd) mass between its
/// boundaries (midpoints between adjacent differing probes; the first and
/// last cells extend to ±inf so clamped mass lands where the sampler puts
/// it). Returns at most `max_cells` cells, highest mass first.
std::vector<Cell> probe_dim_cells(const HwEncodingSpec& spec,
                                  const std::vector<double>& mean_context,
                                  int dim_index, double mu, double sd,
                                  int grid, int max_cells) {
  const double cmu = std::clamp(mu, 0.0, 1.0);
  std::vector<double> points;
  points.reserve(static_cast<std::size_t>(grid) + 1);
  for (int j = 0; j < grid; ++j)
    points.push_back(static_cast<double>(j) / (grid - 1));
  points.push_back(cmu);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  std::vector<double> genome = mean_context;
  std::vector<std::uint64_t> fps(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    genome[static_cast<std::size_t>(dim_index)] = points[j];
    fps[j] = arch_fingerprint(spec.decode(genome));
  }

  // Maximal runs of equal fingerprint = cells.
  struct Run {
    std::size_t first = 0, last = 0;
  };
  std::vector<Run> runs;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (j == 0 || fps[j] != fps[j - 1]) runs.push_back({j, j});
    runs.back().last = j;
  }

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Cell> cells;
  cells.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const double lo = r == 0 ? -inf
                             : 0.5 * (points[runs[r - 1].last] +
                                      points[runs[r].first]);
    const double hi = r + 1 == runs.size()
                          ? inf
                          : 0.5 * (points[runs[r].last] +
                                   points[runs[r + 1].first]);
    Cell cell;
    const bool holds_mean =
        points[runs[r].first] <= cmu && cmu <= points[runs[r].last];
    // The representative must be a probed point (known to decode into this
    // cell); the mean itself when the cell holds it, else the middle probe.
    cell.rep = holds_mean ? cmu : points[(runs[r].first + runs[r].last) / 2];
    if (sd > 1e-12) {
      cell.mass = normal_cdf(hi, mu, sd) - normal_cdf(lo, mu, sd);
    } else {
      // Degenerate marginal: every sample is the clamped mean.
      cell.mass = holds_mean ? 1.0 : 0.0;
    }
    cells.push_back(cell);
  }
  std::stable_sort(cells.begin(), cells.end(), [](const Cell& a,
                                                  const Cell& b) {
    if (a.mass != b.mass) return a.mass > b.mass;
    return a.rep < b.rep;  // deterministic tie-break
  });
  if (static_cast<int>(cells.size()) > max_cells)
    cells.resize(static_cast<std::size_t>(max_cells));
  return cells;
}

}  // namespace

std::vector<PredictedCandidate> predict_decode_buckets(
    const CmaEs& cma, const HwEncodingSpec& spec,
    const SpeculationPredictorOptions& options) {
  const int dim = spec.genome_size();
  assert(static_cast<int>(cma.mean().size()) == dim);
  const int grid = std::max(3, options.grid);
  const int max_cells = std::max(1, options.max_cells_per_dim);

  std::vector<double> mean_context(cma.mean());
  for (double& v : mean_context) v = std::clamp(v, 0.0, 1.0);

  std::vector<std::vector<Cell>> cells(static_cast<std::size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    cells[static_cast<std::size_t>(i)] =
        probe_dim_cells(spec, mean_context, i, cma.mean()[
                            static_cast<std::size_t>(i)],
                        cma.marginal_stddev(i), grid, max_cells);
  }

  // Best-first top-K over the product lattice of per-gene cells. Each
  // dimension's cells are sorted by descending mass, so incrementing any
  // index never increases a node's mass: expanding the frontier from the
  // all-zeros node enumerates compositions in non-increasing joint mass.
  struct Node {
    double mass = 0.0;
    std::vector<int> idx;
  };
  const auto worse = [](const Node& a, const Node& b) {
    if (a.mass != b.mass) return a.mass < b.mass;
    return a.idx > b.idx;  // deterministic order among equal masses
  };
  std::priority_queue<Node, std::vector<Node>, decltype(worse)> frontier(
      worse);
  std::set<std::vector<int>> queued;

  const auto node_mass = [&cells](const std::vector<int>& idx) {
    double m = 1.0;
    for (std::size_t i = 0; i < idx.size(); ++i)
      m *= cells[i][static_cast<std::size_t>(idx[i])].mass;
    return m;
  };
  {
    Node root;
    root.idx.assign(static_cast<std::size_t>(dim), 0);
    root.mass = node_mass(root.idx);
    queued.insert(root.idx);
    frontier.push(std::move(root));
  }

  std::vector<PredictedCandidate> out;
  std::unordered_set<std::uint64_t> seen_fingerprints;
  // Distinct decodes can be fewer than lattice nodes (inactive genes,
  // interacting dims), so cap the pops independently of top_k.
  int pops_left = 64 + 16 * options.top_k;
  while (!frontier.empty() &&
         static_cast<int>(out.size()) < options.top_k && pops_left-- > 0) {
    const Node node = frontier.top();
    frontier.pop();

    std::vector<double> genome(static_cast<std::size_t>(dim));
    for (int i = 0; i < dim; ++i)
      genome[static_cast<std::size_t>(i)] =
          cells[static_cast<std::size_t>(i)][
              static_cast<std::size_t>(node.idx[static_cast<std::size_t>(i)])]
              .rep;
    arch::ArchConfig cfg = spec.decode(genome);
    if (spec.resources.allows(cfg) &&
        seen_fingerprints.insert(arch_fingerprint(cfg)).second) {
      PredictedCandidate cand;
      cand.config = std::move(cfg);
      cand.genome = genome;
      cand.mass = node.mass;
      out.push_back(std::move(cand));
    }

    for (int i = 0; i < dim; ++i) {
      std::vector<int> next = node.idx;
      const auto s = static_cast<std::size_t>(i);
      if (next[s] + 1 >=
          static_cast<int>(cells[s].size()))
        continue;
      ++next[s];
      if (!queued.insert(next).second) continue;
      Node succ;
      succ.mass = node_mass(next);
      succ.idx = std::move(next);
      frontier.push(std::move(succ));
    }
  }
  return out;
}

}  // namespace naas::search
