#include "search/cost_accounting.hpp"

#include <cstdio>

namespace naas::search {

std::string MeasuredSearchCost::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%lld cost-model evals, %lld mapping searches, %.2fs wall "
                "(%.0f evals/s)",
                cost_model_evaluations, mapping_searches, wall_seconds,
                throughput());
  return buf;
}

}  // namespace naas::search
