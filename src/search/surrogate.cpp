#include "search/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/stats.hpp"

namespace naas::search {

const char* surrogate_mode_name(SurrogateMode mode) {
  switch (mode) {
    case SurrogateMode::kOff: return "off";
    case SurrogateMode::kPrune: return "prune";
  }
  return "off";
}

bool parse_surrogate_mode(std::string_view text, SurrogateMode* out) {
  if (text == "off") {
    *out = SurrogateMode::kOff;
    return true;
  }
  if (text == "prune") {
    *out = SurrogateMode::kPrune;
    return true;
  }
  return false;
}

SurrogateBound surrogate_layer_bound(const cost::LayerContext& ctx) {
  SurrogateBound b;
  if (!ctx.arch_valid || ctx.degenerate) {
    // Every mapping of such a context reports +inf EDP, so +inf is the
    // exact bound (and pruning on it reproduces the true fitness).
    b.latency_cycles = std::numeric_limits<double>::infinity();
    b.energy_nj = std::numeric_limits<double>::infinity();
    b.edp = std::numeric_limits<double>::infinity();
    return b;
  }
  // Latency: the model takes max(compute, noc, dram) + fill, and each
  // occupancy is floored by its compulsory counterpart (compute_cycles >=
  // macs/pes because per-PE iteration spaces are padded shares of the full
  // loop nest; noc/dram cycles >= compulsory bytes over the port width).
  // The fp2/dram_bw fill term is dropped (>= 0); array_depth is invariant.
  const double compute_lb = ctx.macs / ctx.pes;
  const double dram_lb = ctx.compulsory_bytes / ctx.dram_bw;
  const double noc_lb = ctx.compulsory_bytes / ctx.noc_bw;
  b.latency_cycles =
      std::max({compute_lb, dram_lb, noc_lb}) + ctx.array_depth;
  // Energy: MAC energy is mapping-invariant; the compulsory bytes are paid
  // at least once against DRAM (dram_bytes) and once against L2 (fills +
  // drains), at the context's precomputed per-byte coefficients. L1 and
  // NoC-hop energies are dropped (>= 0).
  b.energy_nj = (ctx.mac_energy_pj +
                 ctx.compulsory_bytes *
                     (ctx.l2_access_pj + ctx.dram_pj_per_byte)) /
                1000.0;
  b.edp = b.energy_nj * b.latency_cycles;
  return b;
}

double surrogate_network_edp_bound(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::Network& net) {
  double latency = 0.0;
  double energy = 0.0;
  for (const auto& [layer, count] : net.unique_layers()) {
    const cost::LayerContext ctx = model.make_context(arch, layer);
    const SurrogateBound b = surrogate_layer_bound(ctx);
    if (!std::isfinite(b.edp)) return std::numeric_limits<double>::infinity();
    latency += b.latency_cycles * count;
    energy += b.energy_nj * count;
  }
  return energy * latency;
}

double surrogate_geomean_edp_bound(
    const cost::CostModel& model, const arch::ArchConfig& arch,
    const std::vector<nn::Network>& benchmarks) {
  std::vector<double> bounds;
  bounds.reserve(benchmarks.size());
  for (const auto& net : benchmarks) {
    const double edp = surrogate_network_edp_bound(model, arch, net);
    if (!std::isfinite(edp)) return std::numeric_limits<double>::infinity();
    bounds.push_back(edp);
  }
  return core::geomean(bounds);
}

}  // namespace naas::search
