#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "arch/resources.hpp"
#include "core/task_graph.hpp"
#include "core/thread_pool.hpp"
#include "cost/backend.hpp"
#include "cost/network_cost.hpp"
#include "nn/network.hpp"
#include "search/eval_cache.hpp"
#include "search/mapping_search.hpp"
#include "search/result_store.hpp"
#include "search/surrogate.hpp"

namespace naas::search {

class EvalPipeline;

/// Evaluates accelerator candidates on benchmark networks, running the
/// inner per-layer mapping search and memoizing results by
/// (arch fingerprint, layer shape, mapping-search budget). The cache is
/// what makes the two-level loop affordable: repeated blocks, repeated
/// candidates, and baseline re-evaluations all hit it.
///
/// Evaluation runs on the asynchronous task-graph pipeline (EvalPipeline +
/// core::TaskGraph): every (arch, layer) work unit becomes a chain of
/// continuation-scheduled CMA-generation task batches, deduplicated by
/// cache key, and all chains across all candidates and networks interleave
/// on one graph — no per-candidate, per-layer, or per-generation joins.
/// Results, cache contents, and every meter are bit-identical for any
/// thread count (and to the old barrier engine).
///
/// Thread safety: all evaluation entry points may be called concurrently
/// (the cache is mutex-striped and the statistics are atomic), though the
/// intended shape is one pipeline at a time fanning out internally.
class ArchEvaluator {
 public:
  /// `pool` (optional, not owned) supplies the worker threads; nullptr or a
  /// 1-thread pool reproduces the serial evaluator exactly.
  ArchEvaluator(const cost::CostModel& model, MappingSearchOptions mapping,
                core::ThreadPool* pool = nullptr);

  /// Network cost using the best searched mapping for each unique layer.
  /// Repeated layer shapes are deduplicated (count-weighted) and their
  /// cached mapping-search reports are reused directly, so no new
  /// cost-model evaluations happen for shapes already searched.
  cost::NetworkCost evaluate(const arch::ArchConfig& arch,
                             const nn::Network& net);

  /// Geometric mean of per-network EDP — the NAAS reward when searching
  /// one accelerator for a benchmark *set* ("NAAS tries to provide a
  /// balanced performance on all benchmarks by using geomean EDP as
  /// reward", Section III-B). +inf if any network is unmappable.
  double geomean_edp(const arch::ArchConfig& arch,
                     const std::vector<nn::Network>& benchmarks);

  /// Batched population scoring: geomean EDP for every candidate, returned
  /// by candidate index. One task graph carries every candidate's unique
  /// (arch, layer) chain plus a per-candidate assembly task, so slow
  /// layers of one candidate overlap everything else — results (including
  /// all cache contents and statistics) match evaluating the candidates
  /// one by one.
  std::vector<double> evaluate_population(
      std::span<const arch::ArchConfig> archs,
      const std::vector<nn::Network>& benchmarks);

  /// Best searched mapping for one layer (cached).
  const MappingSearchResult& best_mapping(const arch::ArchConfig& arch,
                                          const nn::Workload& layer);

  /// Pure assembly of a network cost from resident cache entries — zero
  /// new evaluations and no pipeline construction. This is the
  /// assembly-phase API the per-candidate graph tasks use once their
  /// layer chains have published; a missing key (unreachable when the
  /// caller gated on its chains) falls back to a synchronous search.
  cost::NetworkCost assemble_network(const arch::ArchConfig& arch,
                                     const nn::Network& net);

  /// Geomean over `benchmarks` by pure assembly (same residency contract
  /// as assemble_network). Bit-identical to geomean_edp on a warm cache.
  double assembled_geomean(const arch::ArchConfig& arch,
                           const std::vector<nn::Network>& benchmarks);

  long long cost_evaluations() const { return cost_evaluations_.load(); }
  long long mapping_searches() const { return mapping_searches_.load(); }

  /// Batched-cost-model work meters, aggregated over every mapping search
  /// this evaluator ran (warm-started cache entries contribute nothing,
  /// like the other meters): CMA generations scored through
  /// CostModel::evaluate_batch and candidates that flowed through it.
  /// Thread-count independent, like all evaluator statistics.
  long long generations_batched() const { return generations_batched_.load(); }
  long long candidates_batch_evaluated() const {
    return candidates_batch_evaluated_.load();
  }

  /// Scheduler work meters. tasks_executed counts every task-graph task run
  /// under this evaluator (chain setups, generation shards, continuations,
  /// publishes, candidate finalizes — including speculative chains);
  /// deterministic for any thread count, since a chain's task breakdown
  /// depends only on its budget. speculative_hits counts speculatively
  /// evaluated cache keys that real work later needed (their entry meters
  /// transfer to the real counters at that moment, which is what keeps
  /// cost_evaluations/mapping_searches identical to a speculation-free
  /// run); speculative_wasted is the live count of speculative entries no
  /// real request has touched yet.
  long long tasks_executed() const;
  long long speculative_hits() const { return speculative_hits_.load(); }
  long long speculative_wasted() const;

  /// Surrogate-pruning meters: lower-bound consultations the outer search
  /// charged to this evaluator, and how many of them pruned (skipped) a
  /// candidate's full mapping-search evaluation. Zero unless a driver runs
  /// with SurrogateMode::kPrune.
  long long surrogate_consults() const { return surrogate_consults_.load(); }
  long long surrogate_pruned() const { return surrogate_pruned_.load(); }
  /// Meters one surrogate consultation (and whether it pruned).
  void note_surrogate_consult(bool pruned) {
    surrogate_consults_.fetch_add(1);
    if (pruned) surrogate_pruned_.fetch_add(1);
  }

  /// Aggregated TaskGraph accounting across every pipeline this evaluator
  /// ran (busy/wall seconds feed the pool-idle-fraction measurement in
  /// bench_async_pipeline).
  core::TaskGraph::Stats scheduler_stats() const;

  /// Unique (arch, layer, budget) entries memoized so far.
  std::size_t cache_size() const { return cache_.size(); }

  /// Warm-starts the cache from a persistent on-disk store (see
  /// search::ResultStore). Keys carry the mapping-budget fingerprint, so a
  /// store written under different options simply never hits; stale reuse
  /// is impossible. Rejected (corrupt / version-mismatched / unreadable)
  /// stores load nothing and the evaluator proceeds cold — the returned
  /// status says why. Preloaded entries do not count toward
  /// cost_evaluations()/mapping_searches(): those meter only work this
  /// process performed. Not safe to call concurrently with evaluation.
  StoreStatus load_store(const std::string& path);

  /// Flushes the full cache (preloaded + freshly computed entries) to
  /// `path` atomically. Call when evaluation is quiescent.
  StoreStatus save_store(const std::string& path) const;

  /// Bulk-adopts already-computed entries from somewhere other than a
  /// store file — a fleet peer's pull_store payload, a test fixture.
  /// Exactly a preload: existing keys win, nothing is metered as this
  /// process's work, and the count lands in store_entries_loaded().
  /// Returns how many entries were actually new. Not safe to call
  /// concurrently with evaluation.
  std::size_t adopt_entries(StoreEntries entries);

  /// Entries adopted from load_store()/adopt_entries() calls so far.
  std::size_t store_entries_loaded() const { return store_entries_loaded_; }

  /// Monotonic cache-insertion counter (see EvalCache::sequence). Record it
  /// at a quiescent point, and snapshot_since() with that mark later
  /// returns exactly the entries added in between — the incremental-flush
  /// primitive the serving layer appends to its store.
  std::uint64_t cache_sequence() const { return cache_.sequence(); }

  /// Entries added after the `since` mark, sorted by key (ready for
  /// ResultStore::append). A linearizable cut: `*high_mark` (optional)
  /// receives the sequence the scan is consistent with — pass it back as
  /// the next `since` to stream incrementally without duplicates or
  /// holes, even while publishes race (see EvalCache::snapshot_since).
  StoreEntries snapshot_since(std::uint64_t since,
                              std::uint64_t* high_mark = nullptr) const {
    return cache_.snapshot_since(since, high_mark);
  }

  /// The cost model evaluation runs under — surrogate bounds must be
  /// computed against the same model (energy parameters) that scores the
  /// real evaluations, or they would stop being bounds.
  const cost::CostModel& model() const { return model_; }

  core::ThreadPool* pool() const { return pool_; }

 private:
  friend class EvalPipeline;

  std::uint64_t cache_key(const arch::ArchConfig& arch,
                          const nn::Workload& layer) const;

  /// Cached entry for (arch, layer), or nullptr.
  const MappingSearchResult* find_cached(const arch::ArchConfig& arch,
                                         const nn::Workload& layer) const;

  /// The mapping-search options actually used for `layer`: the evaluator's
  /// budget with a layer-dependent seed (decorrelates searches across
  /// layers while staying independent of evaluation order). The single
  /// source of truth for every search path — best_mapping and the
  /// pipeline's chains must seed identically or cache contents would
  /// depend on which path filled an entry.
  MappingSearchOptions layer_options(const nn::Workload& layer) const;

  // --- EvalPipeline accounting hooks -----------------------------------
  /// Counts a freshly published real search into the work meters.
  void record_real_publish(const MappingSearchResult& entry);
  /// Marks `key` as speculatively computed but not yet needed.
  void record_speculative_publish(std::uint64_t key);
  /// Real work touched `key`: if it was an unclaimed speculative entry,
  /// transfer its meters to the real counters and record the hit. Safe to
  /// call for any key (no-op for real/claimed/preloaded entries).
  void claim_speculative(std::uint64_t key);
  /// Records a speculative hit whose meters the pending publish will count
  /// as real directly (promotion before publication).
  void note_speculative_hit() { speculative_hits_.fetch_add(1); }
  /// Folds one pipeline run's scheduler stats into the aggregate.
  void absorb_scheduler_stats(const core::TaskGraph::Stats& delta);

  const cost::CostModel& model_;
  MappingSearchOptions mapping_;
  std::uint64_t options_fingerprint_ = 0;  ///< mixed into every cache key
  core::ThreadPool* pool_ = nullptr;
  EvalCache cache_;
  std::atomic<long long> cost_evaluations_{0};
  std::atomic<long long> mapping_searches_{0};
  std::atomic<long long> generations_batched_{0};
  std::atomic<long long> candidates_batch_evaluated_{0};
  std::atomic<long long> speculative_hits_{0};
  std::atomic<long long> surrogate_consults_{0};
  std::atomic<long long> surrogate_pruned_{0};
  /// Speculatively computed cache keys no real request has claimed yet.
  mutable std::mutex speculative_mutex_;
  std::unordered_set<std::uint64_t> speculative_unclaimed_;
  mutable std::mutex sched_mutex_;
  core::TaskGraph::Stats sched_stats_;
  std::size_t store_entries_loaded_ = 0;
};

/// Configuration of the outer accelerator-architecture search loop.
struct NaasOptions {
  arch::ResourceConstraint resources;
  int population = 16;
  int iterations = 15;
  std::uint64_t seed = 1;
  OrderEncoding hw_encoding = OrderEncoding::kImportance;
  /// false reproduces the sizing-only ablation (Fig. 8).
  bool search_connectivity = true;
  MappingSearchOptions mapping;
  /// Evaluation threads: 0 => ThreadPool::default_num_threads()
  /// (NAAS_NUM_THREADS env or hardware_concurrency); 1 => today's exact
  /// serial behavior. Results are bit-identical for every value.
  int num_threads = 0;
  /// Warm-start designs evaluated before the evolution loop (best-ever
  /// tracking only; they do not enter the CMA population statistics).
  /// Standard DSE practice: the known reference design for the envelope is
  /// always worth one evaluation.
  std::vector<arch::ArchConfig> seed_designs;
  /// Additionally seed the envelope's published baseline preset when one
  /// exists (EdgeTPU / NVDLA / Eyeriss / ShiDianNao). Disable for search-
  /// quality ablations (Fig. 9).
  bool seed_baseline = true;
  /// Persistent on-disk mapping-result store (empty = disabled). Loaded
  /// before the search so repeated layer shapes skip their mapping-search
  /// CMA loop entirely, and flushed after it so the next run (CI job, sweep
  /// shard, rerun) warm-starts from this one. Results are bit-identical to
  /// a cold run; corrupt or version-mismatched stores are rejected with a
  /// warning and the search runs cold.
  std::string cache_path;
  /// Load the store but never write it back (shared/read-only caches).
  bool cache_readonly = false;
  /// Speculative evaluation: while a generation's stragglers drain,
  /// predict the decoded architectures the next generation is most likely
  /// to contain (the decode-bucket predictor of search/speculation.* — it
  /// enumerates the highest-probability quantization cells of the current
  /// CMA distribution and composes the top-K joint decodes; it reads only
  /// the distribution's mean and marginal deviations, so the optimizer's
  /// RNG stream never moves) and pre-run their mapping searches at idle
  /// priority into the EvalCache under the standard keys. Speculation can
  /// only turn future misses into hits: every visible output — results,
  /// reports, and all real work meters — is bit-identical with speculation
  /// on or off, at any thread count. Costs wasted idle-time work when
  /// predictions miss (metered as speculative_wasted).
  bool speculate = true;
  /// Analytical surrogate pruning (search/surrogate.*): under kPrune, each
  /// resource-feasible candidate's roofline lower bound is compared with
  /// the best geomean EDP known at its generation's start. Candidates
  /// whose bound already exceeds it are deferred; once the rest of the
  /// generation has reported, the ones whose bound is also strictly worse
  /// than the generation's mu-th best fitness skip the full mapping-search
  /// evaluation (the bound stands in as their fitness), and the rest are
  /// evaluated after all. Because the bound is exact and CmaEs::tell is
  /// rank-only (see CmaEs::parents), the pruned candidates sit outside the
  /// parent set under bound or true cost alike: the search trajectory, the
  /// returned best, and population_best_edp are all bit-identical to kOff
  /// at every thread count. Only population_mean_edp may differ (it
  /// averages the stand-in bounds), plus the work/meter counts that
  /// pruning exists to reduce. kOff (default) preserves legacy behavior
  /// exactly, consulting no bounds at all.
  SurrogateMode surrogate = SurrogateMode::kOff;
  /// Cost-kernel backend override (--cost-backend). nullopt leaves the
  /// caller's CostModel untouched; a value re-targets evaluation onto a
  /// copy of the model with that backend selected (kAuto picks the best
  /// available). Pure throughput knob: every backend is byte-identical to
  /// scalar, so results never depend on it.
  std::optional<cost::BackendKind> cost_backend;
};

/// Outcome of a NAAS accelerator+mapping co-search.
struct NaasResult {
  arch::ArchConfig best_arch;
  double best_geomean_edp = 0;
  std::vector<cost::NetworkCost> best_networks;  ///< costs on best_arch
  std::vector<double> population_mean_edp;  ///< per iteration (Fig. 4)
  std::vector<double> population_best_edp;  ///< per iteration
  long long cost_evaluations = 0;
  long long mapping_searches = 0;
  /// Batched-cost-model meters (see ArchEvaluator::generations_batched).
  long long generations_batched = 0;
  long long candidates_batch_evaluated = 0;
  /// Scheduler work meters (see ArchEvaluator::tasks_executed /
  /// speculative_hits / speculative_wasted).
  long long tasks_executed = 0;
  long long speculative_hits = 0;
  long long speculative_wasted = 0;
  /// Surrogate-pruning meters (see NaasOptions::surrogate): lower-bound
  /// consultations and the candidates they pruned. Both 0 under kOff.
  long long surrogate_consults = 0;
  long long surrogate_pruned = 0;
  /// Entries warm-started from NaasOptions::cache_path (0 when disabled,
  /// missing, or rejected).
  long long store_entries_loaded = 0;
  /// Resolved cost-kernel backend that scored this search ("scalar",
  /// "avx2", ...) — what NaasOptions::cost_backend (or the model default)
  /// actually dispatched to.
  std::string cost_backend;
  double wall_seconds = 0;
};

/// Warm-starts `evaluator` from the store at `path` (no-op when `path` is
/// empty), logging a warning when an existing file is rejected. Returns the
/// number of entries adopted. Shared by every search entry point that
/// exposes a cache_path option.
long long warm_start_from_store(ArchEvaluator& evaluator,
                                const std::string& path);

/// Flushes `evaluator`'s cache back to `path` unless disabled (`path`
/// empty) or `readonly`; logs a warning when the write fails.
void flush_to_store(const ArchEvaluator& evaluator, const std::string& path,
                    bool readonly);

/// Runs the NAAS outer evolution loop (Fig. 1): sample accelerator
/// candidates within the resource envelope, score each by geomean EDP over
/// `benchmarks` (with the inner mapping search per layer), update the CMA
/// distribution, and return the fittest design.
///
/// The whole evolution runs as ONE task graph: every candidate's layer
/// chains interleave freely, each candidate reports its fitness through
/// CmaEs::tell_partial as it finishes, and the report that completes a
/// generation *schedules* the next one (no join anywhere). While a
/// generation's stragglers drain, likely next-generation candidates are
/// speculatively pre-evaluated into the cache at idle priority (see
/// NaasOptions::speculate). The returned result is bit-identical for any
/// `options.num_threads` and for speculation on/off.
NaasResult run_naas(const cost::CostModel& model, const NaasOptions& options,
                    const std::vector<nn::Network>& benchmarks);

}  // namespace naas::search
