#pragma once

#include <cstdint>
#include <vector>

#include "arch/accelerator.hpp"
#include "search/cma_es.hpp"
#include "search/encoding.hpp"

namespace naas::search {

/// One predicted decoded candidate: a concrete ArchConfig the *next* CMA
/// generation is likely to sample, with the (independence-approximated)
/// probability mass of its decode cell under the current distribution.
struct PredictedCandidate {
  arch::ArchConfig config;
  std::vector<double> genome;  ///< representative genome (cell centers)
  double mass = 0.0;           ///< product of per-gene cell masses
};

/// Tuning knobs of the decode-bucket predictor.
struct SpeculationPredictorOptions {
  /// Decode cells retained per gene: the cell containing the distribution
  /// mean plus its highest-mass neighbors.
  int max_cells_per_dim = 3;
  /// Decoded candidates returned (after fingerprint dedup).
  int top_k = 8;
  /// Probe points per gene when locating cell boundaries. Boundaries are
  /// resolved to half the grid spacing; 33 resolves every quantization
  /// step of the hardware encoding at negligible cost (each probe is one
  /// decode, microseconds).
  int grid = 33;
};

/// Predicts the decoded architectures the next CMA-ES generation is most
/// likely to contain — the decoded-space speculation predictor.
///
/// Raw-vector resampling almost never collides with a real sample: two
/// independent 13-gene draws land in the same *decoded* configuration only
/// if they agree in every gene's quantization cell at once, and a handful
/// of full-sigma draws cover almost none of that product space. This
/// predictor inverts the problem: instead of sampling genomes and hoping
/// their decodes collide, it enumerates the decode cells themselves.
///
/// Per gene, the decode is a step function (round_stride / log_lerp
/// bucketing, importance-order crossings): holding every other gene at the
/// distribution mean, probing a fine grid and fingerprinting each decode
/// locates the cell boundaries. Each cell is weighted by the Gaussian
/// mass the current marginal (mean_i, marginal_stddev(i)) puts on it —
/// clamping mass beyond [0,1] accrues to the boundary cells, matching the
/// sampler's clamp. The top-K *joint* candidates are then composed
/// best-first over the product lattice of per-gene cells (mass = product
/// of the per-gene masses), decoded, deduplicated by arch fingerprint,
/// and filtered to the resource envelope.
///
/// Determinism contract: a pure function of (optimizer distribution,
/// encoding spec, options). It reads only CmaEs::mean()/marginal_stddev()
/// — never a generator — so the optimizer's RNG stream NEVER advances, no
/// matter how often prediction runs; the result is identical for every
/// thread count and independent of scheduling.
std::vector<PredictedCandidate> predict_decode_buckets(
    const CmaEs& cma, const HwEncodingSpec& spec,
    const SpeculationPredictorOptions& options = {});

}  // namespace naas::search
