#pragma once

#include <cstdint>

#include "arch/accelerator.hpp"
#include "core/thread_pool.hpp"
#include "cost/cost_model.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"
#include "search/encoding.hpp"

namespace naas::search {

/// Budget and configuration of the per-layer compiler-mapping search
/// (Section II-B): a CMA-ES loop over the mapping encoding vector.
struct MappingSearchOptions {
  int population = 12;
  int iterations = 10;
  std::uint64_t seed = 1;
  MapEncodingSpec encoding;
  /// Also evaluate the three canonical dataflow mappings up front and keep
  /// whichever candidate (searched or canonical) is best. Models a compiler
  /// that always considers its preset dataflows; disable to measure raw
  /// search quality (Fig. 9's encoding ablation does).
  bool seed_canonical = true;
};

/// Outcome of one per-layer mapping search.
struct MappingSearchResult {
  mapping::Mapping best;
  cost::CostReport report;     ///< cost of `best`
  double best_edp = 0;
  long long evaluations = 0;   ///< cost-model calls consumed
  /// Batched-path work meters (not persisted by ResultStore — like
  /// `evaluations` on preloaded entries, they meter only work this process
  /// performed): CMA generations evaluated through
  /// CostModel::evaluate_batch, and candidates that flowed through it
  /// (including the canonical dataflow seeds).
  long long generations_batched = 0;
  long long candidates_batch_evaluated = 0;
};

/// Searches the mapping space of `layer` on `arch`, returning the best
/// (lowest-EDP) mapping found. Deterministic for a fixed seed.
///
/// Evaluation is batched: one cost::LayerContext is built per search and
/// every CMA-ES generation is scored through CostModel::evaluate_batch.
/// When `pool` is non-null the generation is cut into contiguous shards
/// (one per pool thread); each shard decodes its genomes and batch-
/// evaluates its slice. Candidates are independent, so shard boundaries
/// cannot change results, and the fitness vector and best-so-far reduction
/// are assembled in genome-index order afterwards — bit-identical to the
/// serial run for any thread count.
MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::ConvLayer& layer,
                                   const MappingSearchOptions& options,
                                   core::ThreadPool* pool = nullptr);

}  // namespace naas::search
