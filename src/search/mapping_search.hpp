#pragma once

#include <cstdint>
#include <functional>

#include "arch/accelerator.hpp"
#include "core/task_graph.hpp"
#include "core/thread_pool.hpp"
#include "cost/cost_model.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"
#include "search/encoding.hpp"

namespace naas::search {

/// Budget and configuration of the per-layer compiler-mapping search
/// (Section II-B): a CMA-ES loop over the mapping encoding vector.
struct MappingSearchOptions {
  int population = 12;
  int iterations = 10;
  std::uint64_t seed = 1;
  MapEncodingSpec encoding;
  /// Also evaluate the three canonical dataflow mappings up front and keep
  /// whichever candidate (searched or canonical) is best. Models a compiler
  /// that always considers its preset dataflows; disable to measure raw
  /// search quality (Fig. 9's encoding ablation does).
  bool seed_canonical = true;
};

/// Outcome of one per-layer mapping search.
struct MappingSearchResult {
  mapping::Mapping best;
  cost::CostReport report;     ///< cost of `best`
  double best_edp = 0;
  long long evaluations = 0;   ///< cost-model calls consumed
  /// Batched-path work meters (not persisted by ResultStore — like
  /// `evaluations` on preloaded entries, they meter only work this process
  /// performed): CMA generations evaluated through
  /// CostModel::evaluate_batch, and candidates that flowed through it
  /// (including the canonical dataflow seeds).
  long long generations_batched = 0;
  long long candidates_batch_evaluated = 0;
  /// Scheduler work meter (not persisted either): task-graph tasks this
  /// search's chain executed (setup + per-generation shards and
  /// continuations). Deterministic for any thread count — the chain's task
  /// breakdown depends only on the budget, never on scheduling.
  long long tasks_executed = 0;
};

/// Handle to a submitted mapping-search chain.
struct MappingSearchChain {
  /// Promise that completes (with the caller's result slot filled) when
  /// the chain finishes — the id dependents gate on.
  core::TaskGraph::TaskId done = 0;
  /// Raises the chain's queued and future tasks to normal priority.
  /// Called when a speculatively submitted chain turns out to be needed
  /// by real work: without promotion the chain would keep running only at
  /// pool idle and become the critical path's straggler. Idempotent;
  /// callable from any thread.
  std::function<void()> promote;
};

/// Submits the whole CMA-driven mapping search for (arch, layer) onto
/// `graph` as a chain of dependent tasks: a setup task (layer context +
/// canonical seeds + generation 0 sampling), then per generation a batch of
/// fixed-size shard evaluation tasks whose continuation folds fitness in
/// candidate order, steps the optimizer (CmaEs::tell_partial), and
/// *schedules* the next generation — no task ever joins on another, so any
/// number of chains interleave freely on one graph.
/// `arch`/`layer`/`options` are copied; `out` must stay valid until the
/// graph quiesces. Chains submitted with Priority::kSpeculative run only
/// when nothing normal is ready (speculative cache prefetch) until
/// promoted via the returned handle.
MappingSearchChain submit_mapping_search(
    core::TaskGraph& graph, const cost::CostModel& model,
    const arch::ArchConfig& arch, const nn::Workload& layer,
    const MappingSearchOptions& options, MappingSearchResult* out,
    core::TaskGraph::Priority priority = core::TaskGraph::Priority::kNormal);

/// Searches the mapping space of `layer` on `arch`, returning the best
/// (lowest-EDP) mapping found. Deterministic for a fixed seed and
/// bit-identical for any thread count: this is the one-chain convenience
/// wrapper over submit_mapping_search (one TaskGraph on `pool`, run to
/// quiescence).
MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::Workload& layer,
                                   const MappingSearchOptions& options,
                                   core::ThreadPool* pool = nullptr);

}  // namespace naas::search
