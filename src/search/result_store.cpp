#include "search/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "core/fault.hpp"
#include "core/log.hpp"
#include "core/serialize.hpp"
#include "search/eval_cache.hpp"

namespace naas::search {
namespace {

constexpr char kMagic[8] = {'N', 'A', 'A', 'S', 'M', 'A', 'P', 'S'};
constexpr std::size_t kChecksumBytes = 8;
/// Conservative lower bound on a serialized entry (the real minimum is
/// ~258 bytes); bounds the on-file entry count before any allocation.
constexpr std::size_t kMinEntryBytes = 64;

void write_order(core::ByteWriter& w, const mapping::LoopOrder& order) {
  for (nn::Dim d : order) w.u8(static_cast<std::uint8_t>(d));
}

bool read_order(core::ByteReader& r, mapping::LoopOrder& order) {
  for (auto& d : order) {
    const std::uint8_t v = r.u8();
    if (v >= nn::kNumDims) return false;
    d = static_cast<nn::Dim>(v);
  }
  return r.ok();
}

void write_tiles(core::ByteWriter& w, const mapping::TileSizes& tiles) {
  for (int t : tiles) w.i32(t);
}

bool read_tiles(core::ByteReader& r, mapping::TileSizes& tiles) {
  for (auto& t : tiles) {
    t = r.i32();
    if (t < 1) return false;
  }
  return r.ok();
}

void write_result(core::ByteWriter& w, const MappingSearchResult& res) {
  write_order(w, res.best.dram.order);
  write_tiles(w, res.best.dram.tile);
  write_order(w, res.best.pe.order);
  write_tiles(w, res.best.pe.tile);
  write_order(w, res.best.pe_order);

  const cost::CostReport& rep = res.report;
  w.u8(rep.legal ? 1 : 0);
  w.str(rep.illegal_reason);
  w.f64(rep.macs);
  w.f64(rep.compute_cycles);
  w.f64(rep.noc_cycles);
  w.f64(rep.dram_cycles);
  w.f64(rep.latency_cycles);
  w.f64(rep.energy.mac_pj);
  w.f64(rep.energy.l1_pj);
  w.f64(rep.energy.l2_pj);
  w.f64(rep.energy.noc_pj);
  w.f64(rep.energy.dram_pj);
  w.f64(rep.energy_nj);
  w.f64(rep.edp);
  w.f64(rep.pe_utilization);
  w.f64(rep.dram_bytes);
  w.f64(rep.l2_read_bytes);
  w.f64(rep.l2_write_bytes);
  w.f64(rep.l1_access_bytes);
  w.f64(rep.noc_delivery_bytes);
  w.f64(rep.reduction_hop_bytes);

  w.f64(res.best_edp);
  w.i64(res.evaluations);
}

bool read_result(core::ByteReader& r, MappingSearchResult& res) {
  if (!read_order(r, res.best.dram.order)) return false;
  if (!read_tiles(r, res.best.dram.tile)) return false;
  if (!read_order(r, res.best.pe.order)) return false;
  if (!read_tiles(r, res.best.pe.tile)) return false;
  if (!read_order(r, res.best.pe_order)) return false;

  cost::CostReport& rep = res.report;
  rep.legal = r.u8() != 0;
  rep.illegal_reason = r.str();
  rep.macs = r.f64();
  rep.compute_cycles = r.f64();
  rep.noc_cycles = r.f64();
  rep.dram_cycles = r.f64();
  rep.latency_cycles = r.f64();
  rep.energy.mac_pj = r.f64();
  rep.energy.l1_pj = r.f64();
  rep.energy.l2_pj = r.f64();
  rep.energy.noc_pj = r.f64();
  rep.energy.dram_pj = r.f64();
  rep.energy_nj = r.f64();
  rep.edp = r.f64();
  rep.pe_utilization = r.f64();
  rep.dram_bytes = r.f64();
  rep.l2_read_bytes = r.f64();
  rep.l2_write_bytes = r.f64();
  rep.l1_access_bytes = r.f64();
  rep.noc_delivery_bytes = r.f64();
  rep.reduction_hop_bytes = r.f64();

  res.best_edp = r.f64();
  res.evaluations = r.i64();
  return r.ok();
}

}  // namespace

const char* store_status_name(StoreStatus s) {
  switch (s) {
    case StoreStatus::kOk: return "ok";
    case StoreStatus::kNotFound: return "not-found";
    case StoreStatus::kIoError: return "io-error";
    case StoreStatus::kBadMagic: return "bad-magic";
    case StoreStatus::kBadVersion: return "version-mismatch";
    case StoreStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::string ResultStore::encode(StoreEntries entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  core::ByteWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kFormatVersion);
  w.u32(kAlgorithmEpoch);
  w.u64(entries.size());
  for (const auto& [key, result] : entries) {
    w.u64(key);
    write_result(w, result);
  }

  std::string bytes = w.bytes();
  core::ByteWriter checksum;
  checksum.u64(core::fnv1a64(bytes));
  bytes += checksum.bytes();
  return bytes;
}

StoreLoadResult ResultStore::decode(const void* data, std::size_t size) {
  constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4 + 4 + 8;
  StoreLoadResult out;
  // Damage stops the parse but keeps the validated prefix: entries roll
  // back to the last segment whose checksum passed, so a torn append or a
  // flipped byte in segment N costs segments >= N, never the whole store.
  std::size_t salvage_boundary = 0;
  const auto reject = [&out, &salvage_boundary](StoreStatus status) {
    out.entries.resize(salvage_boundary);
    out.status = status;
    return out;
  };
  if (size < kHeaderBytes + kChecksumBytes) return reject(StoreStatus::kCorrupt);

  const auto* bytes = static_cast<const unsigned char*>(data);
  core::ByteReader r(bytes, size);
  bool first_segment = true;
  while (r.remaining() > 0) {
    const std::size_t segment_start = r.pos();
    if (r.remaining() < kHeaderBytes + kChecksumBytes)
      return reject(StoreStatus::kCorrupt);
    for (char c : kMagic) {
      if (r.u8() != static_cast<std::uint8_t>(c)) {
        // Garbage at offset 0 means "not a store file"; garbage after a
        // valid segment means a damaged/torn append.
        return reject(first_segment ? StoreStatus::kBadMagic
                                    : StoreStatus::kCorrupt);
      }
    }
    // Version and epoch are checked before the checksum so a segment
    // written by an older or newer build reports the actionable status
    // (delete/regenerate), not a generic corruption.
    if (r.u32() != kFormatVersion) return reject(StoreStatus::kBadVersion);
    if (r.u32() != kAlgorithmEpoch) return reject(StoreStatus::kBadVersion);

    const std::uint64_t count = r.u64();
    // A self-consistent segment still cannot claim more entries than its
    // payload could hold; bound before reserving so a crafted count cannot
    // throw instead of reporting corruption.
    if (count > r.remaining() / kMinEntryBytes)
      return reject(StoreStatus::kCorrupt);
    out.entries.reserve(out.entries.size() + static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t key = r.u64();
      MappingSearchResult result;
      if (!read_result(r, result)) return reject(StoreStatus::kCorrupt);
      out.entries.emplace_back(key, std::move(result));
    }
    const std::size_t payload_end = r.pos();
    const std::uint64_t checksum = r.u64();
    if (!r.ok()) return reject(StoreStatus::kCorrupt);
    if (checksum != core::fnv1a64(bytes + segment_start,
                                  payload_end - segment_start))
      return reject(StoreStatus::kCorrupt);
    salvage_boundary = out.entries.size();
    first_segment = false;
  }
  out.status = StoreStatus::kOk;
  return out;
}

StoreStatus ResultStore::save(const std::string& path, StoreEntries entries) {
  if (core::fault("store_save_fail")) return StoreStatus::kIoError;
  const std::string bytes = encode(std::move(entries));
  // Unique temp name per process and call: concurrent writers sharing one
  // cache_path (sweep shards, parallel CI jobs) must never stomp each
  // other's partial bytes — each publishes atomically and the last rename
  // wins.
  static std::atomic<unsigned> save_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_counter.fetch_add(1));
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return StoreStatus::kIoError;
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return StoreStatus::kIoError;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return StoreStatus::kIoError;
  }
  return StoreStatus::kOk;
}

StoreStatus ResultStore::append(const std::string& path, StoreEntries entries,
                                std::size_t* bytes_appended) {
  if (bytes_appended) *bytes_appended = 0;
  if (entries.empty()) return StoreStatus::kOk;
  // Transient append failure (ENOSPC and friends) before any byte lands:
  // the caller's retry/backoff path, file untouched.
  if (core::fault("store_append_fail")) return StoreStatus::kIoError;
  const std::string bytes = encode(std::move(entries));
  FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return StoreStatus::kIoError;
  // A *torn* append — the crash-mid-write case the truncate rollback below
  // cannot see: half a segment lands and stays. Readers must salvage the
  // prior segments and the next refresh must heal by atomic rewrite.
  if (core::fault("store_append_torn")) {
    std::setvbuf(f, nullptr, _IONBF, 0);
    std::fseek(f, 0, SEEK_END);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
    std::fclose(f);
    return StoreStatus::kIoError;
  }
  // One unbuffered write per segment: in "a" mode the kernel places it at
  // the current end of file, which keeps the common single-writer case
  // torn-segment-free even while readers load concurrently.
  std::setvbuf(f, nullptr, _IONBF, 0);
  std::fseek(f, 0, SEEK_END);
  const long old_size = std::ftell(f);
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    // Roll a torn segment back so the store stays loadable; if even that
    // fails, readers reject the corrupt file and run cold (never wrong).
    if (old_size >= 0)
      ::truncate(path.c_str(), static_cast<off_t>(old_size));
    return StoreStatus::kIoError;
  }
  if (bytes_appended) *bytes_appended = bytes.size();
  return StoreStatus::kOk;
}

StoreLoadResult ResultStore::load(const std::string& path) {
  StoreLoadResult out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    out.status = StoreStatus::kNotFound;
    return out;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error || core::fault("store_load_fail")) {
    out.status = StoreStatus::kIoError;
    return out;
  }
  // Checksum damage injected in memory, not on disk: exercises the
  // reject/salvage path without making the fault sticky across reloads.
  if (!bytes.empty() && core::fault("store_load_corrupt"))
    bytes[bytes.size() / 2] ^= 0x5a;
  return decode(bytes.data(), bytes.size());
}

bool warn_store_rejected(const std::string& path, StoreStatus status) {
  if (status == StoreStatus::kOk || status == StoreStatus::kNotFound)
    return false;
  core::log_warn("result store '" + path + "' rejected (" +
                 store_status_name(status) + "); starting cold");
  return true;
}

bool warn_store_write_failed(const std::string& path, StoreStatus status) {
  if (status == StoreStatus::kOk) return false;
  core::log_warn("could not write result store '" + path + "' (" +
                 store_status_name(status) + ")");
  return true;
}

std::size_t warm_start_cache(EvalCache& cache, const std::string& path) {
  if (path.empty()) return 0;
  StoreLoadResult loaded = ResultStore::load(path);
  warn_store_rejected(path, loaded.status);
  // Adopt whatever validated: everything (kOk) or the salvaged prefix of
  // a damaged file — checksummed entries are trustworthy even when the
  // bytes after them are not.
  return cache.preload(std::move(loaded.entries));
}

void flush_cache(const EvalCache& cache, const std::string& path,
                 bool readonly) {
  if (path.empty() || readonly) return;
  warn_store_write_failed(path, ResultStore::save(path, cache.snapshot()));
}

}  // namespace naas::search
