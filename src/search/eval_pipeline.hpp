#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include <vector>

#include "core/task_graph.hpp"
#include "nn/network.hpp"
#include "search/mapping_search.hpp"

namespace naas::search {

class ArchEvaluator;

/// One task-graph run spanning any number of deduplicated mapping-search
/// chains plus caller-defined tasks (per-candidate finalizes, outer-loop
/// generation continuations). This is the asynchronous replacement for the
/// old nested fork-joins: every (arch, layer) work unit across every
/// candidate, network, and generation becomes one chain on one graph, so
/// shards of a slow layer's CMA generations interleave freely with every
/// other search while stragglers drain.
///
/// Dedup: chains are keyed by the evaluator's cache key; the first request
/// submits the chain, later requests just return the id of its publish
/// task (the task that moves the finished result into the EvalCache), so
/// dependents can sequence after residency.
///
/// Speculation: `speculative` requests submit the chain at
/// TaskGraph::Priority::kSpeculative — claimed only when no normal task is
/// ready — and publish into the cache under the *standard* key with
/// deferred accounting. Because mapping search is deterministic per key,
/// a speculative result is byte-identical to the one a real request would
/// have computed: speculation can only turn future misses into hits, never
/// change an answer. When a real request later touches a speculatively
/// computed key, the entry's work meters transfer to the evaluator's real
/// counters (keeping cost_evaluations/mapping_searches identical to the
/// barrier engine for any thread count and speculation setting) and a
/// speculative hit is recorded; entries never touched stay out of the real
/// meters and count as speculative waste.
///
/// Thread safety: request() may be called from graph task bodies (that is
/// how the outer search schedules generation g+1's work from generation
/// g's completion), but from ONE logical driver at a time — the pre-run
/// caller or the single bookkeeping task of the moment. Every pipeline
/// user satisfies this structurally: seed requests happen before run(),
/// and in-flight requests only ever come from the one generation
/// continuation that is active. The internal mutex orders that driver
/// against concurrently executing publish bodies (and is never held
/// across graph or cache calls — see the lock-hierarchy note in the
/// implementation).
class EvalPipeline {
 public:
  explicit EvalPipeline(ArchEvaluator& evaluator);

  /// The underlying graph, for caller-defined tasks (finalizes,
  /// continuations, promises).
  core::TaskGraph& graph() { return graph_; }

  /// Ensures the mapping-search result for (arch, layer) will be resident
  /// in the evaluator's cache once the returned task completes. Returns
  /// nothing when the result is already resident (no task to wait on);
  /// otherwise the id of the chain's cache-publish task. A real request
  /// for a key previously requested speculatively promotes its accounting
  /// (speculative hit), never re-runs the search.
  std::optional<core::TaskGraph::TaskId> request(const arch::ArchConfig& arch,
                                                 const nn::Workload& layer,
                                                 bool speculative);

  /// request() over every unique layer shape of `net`, appending the ids
  /// of chains not yet resident to `deps` (when given). The shared
  /// traversal for all callers, so a candidate's dependency set can never
  /// drift out of sync with the chains actually requested for it.
  void request_network(const arch::ArchConfig& arch, const nn::Network& net,
                       bool speculative,
                       std::vector<core::TaskGraph::TaskId>* deps = nullptr);

  /// request_network over a benchmark set; returns the collected ids (the
  /// dependency set of one candidate's assembly task).
  std::vector<core::TaskGraph::TaskId> request_benchmarks(
      const arch::ArchConfig& arch, const std::vector<nn::Network>& benchmarks,
      bool speculative);

  /// Drives the graph to quiescence (including leftover speculative
  /// chains, which drain at idle priority) and folds the scheduler stats
  /// into the evaluator's work meters. Rethrows the first task error.
  void run();

 private:
  /// One deduplicated (arch, layer) work unit.
  struct Chain {
    /// Result slot the chain fills; stable address for the task bodies.
    std::unique_ptr<MappingSearchResult> result;
    /// Publish-task id; 0 when the result was already resident at request
    /// time (nothing to depend on).
    core::TaskGraph::TaskId published = 0;
    /// Raises the chain's tasks to normal priority (set for chains that
    /// were submitted speculatively).
    std::function<void()> promote;
    /// True while only speculative requests have touched this key.
    bool speculative = false;
    /// True once the publish task has run (result resident).
    bool publish_done = false;
  };

  ArchEvaluator& evaluator_;
  core::TaskGraph graph_;
  std::mutex mutex_;  ///< guards chains_ and the Chain records
  std::unordered_map<std::uint64_t, Chain> chains_;
  core::TaskGraph::Stats absorbed_;  ///< stats already folded into meters
};

}  // namespace naas::search
