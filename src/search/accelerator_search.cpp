#include "search/accelerator_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/serialize.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "search/cma_es.hpp"

namespace naas::search {
namespace {

using core::hash_mix;

/// Fingerprint of everything about MappingSearchOptions that changes what
/// search_mapping returns. Mixed into every cache key so two evaluators
/// with different budgets (or a copied evaluator whose options were edited)
/// can never share stale entries.
std::uint64_t options_fingerprint(const MappingSearchOptions& o) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  h = hash_mix(h, static_cast<std::uint64_t>(o.population));
  h = hash_mix(h, static_cast<std::uint64_t>(o.iterations));
  h = hash_mix(h, o.seed);
  h = hash_mix(h, o.seed_canonical ? 1 : 0);
  h = hash_mix(h, static_cast<std::uint64_t>(o.encoding.order_encoding));
  h = hash_mix(h, o.encoding.search_order ? 1 : 0);
  h = hash_mix(h, static_cast<std::uint64_t>(o.encoding.fixed_dataflow));
  h = hash_mix(h, o.encoding.grow_tiles ? 1 : 0);
  return h;
}

}  // namespace

ArchEvaluator::ArchEvaluator(const cost::CostModel& model,
                             MappingSearchOptions mapping,
                             core::ThreadPool* pool)
    : model_(model),
      mapping_(std::move(mapping)),
      options_fingerprint_(options_fingerprint(mapping_)),
      pool_(pool) {}

StoreStatus ArchEvaluator::load_store(const std::string& path) {
  StoreLoadResult loaded = ResultStore::load(path);
  if (loaded.status == StoreStatus::kOk)
    store_entries_loaded_ += cache_.preload(std::move(loaded.entries));
  return loaded.status;
}

StoreStatus ArchEvaluator::save_store(const std::string& path) const {
  return ResultStore::save(path, cache_.snapshot());
}

std::uint64_t ArchEvaluator::cache_key(const arch::ArchConfig& arch,
                                       const nn::ConvLayer& layer) const {
  const std::uint64_t a = arch_fingerprint(arch);
  const std::uint64_t l = nn::ConvLayerShapeHash{}(layer);
  return hash_mix(hash_mix(options_fingerprint_, a), l);
}

const MappingSearchResult& ArchEvaluator::best_mapping(
    const arch::ArchConfig& arch, const nn::ConvLayer& layer) {
  const std::uint64_t key = cache_key(arch, layer);
  if (const MappingSearchResult* hit = cache_.find(key)) return *hit;

  MappingSearchOptions opts = mapping_;
  // Layer-dependent seed keeps runs deterministic while decorrelating
  // searches across layers. Crucially the seed does NOT depend on
  // evaluation order, so concurrent cache fills are reproducible.
  opts.seed = mapping_.seed ^ nn::ConvLayerShapeHash{}(layer);
  MappingSearchResult res = search_mapping(model_, arch, layer, opts, pool_);

  bool inserted = false;
  const MappingSearchResult& entry = cache_.publish(key, std::move(res),
                                                    &inserted);
  if (inserted) {
    // Count only the published search: if another thread computed the same
    // key concurrently, one duplicate is discarded and the statistics stay
    // identical to the serial run.
    cost_evaluations_.fetch_add(entry.evaluations);
    mapping_searches_.fetch_add(1);
    generations_batched_.fetch_add(entry.generations_batched);
    candidates_batch_evaluated_.fetch_add(entry.candidates_batch_evaluated);
  }
  return entry;
}

cost::NetworkCost ArchEvaluator::evaluate(const arch::ArchConfig& arch,
                                          const nn::Network& net) {
  // Assemble from the memoized mapping-search reports directly: no
  // re-evaluation of the cost model per unique layer (the search already
  // kept the winning candidate's full report).
  return cost::evaluate_network_reports(
      arch, net,
      [this](const arch::ArchConfig& a, const nn::ConvLayer& l) {
        const MappingSearchResult& r = best_mapping(a, l);
        if (!std::isfinite(r.best_edp)) {
          cost::CostReport rep;
          rep.legal = false;
          rep.illegal_reason = "mapping search found no legal mapping";
          return rep;
        }
        return r.report;
      });
}

double ArchEvaluator::geomean_edp(const arch::ArchConfig& arch,
                                  const std::vector<nn::Network>& benchmarks) {
  std::vector<double> edps;
  edps.reserve(benchmarks.size());
  for (const auto& net : benchmarks) {
    const auto nc = evaluate(arch, net);
    if (!nc.legal) return std::numeric_limits<double>::infinity();
    edps.push_back(nc.edp);
  }
  return core::geomean(edps);
}

std::vector<double> ArchEvaluator::evaluate_population(
    std::span<const arch::ArchConfig> archs,
    const std::vector<nn::Network>& benchmarks) {
  std::vector<double> edps(archs.size(),
                           std::numeric_limits<double>::infinity());
  core::ThreadPool::run(pool_, archs.size(), [&](std::size_t i) {
    edps[i] = geomean_edp(archs[i], benchmarks);
  });
  return edps;
}

long long warm_start_from_store(ArchEvaluator& evaluator,
                                const std::string& path) {
  if (path.empty()) return 0;
  const std::size_t before = evaluator.store_entries_loaded();
  warn_store_rejected(path, evaluator.load_store(path));
  return static_cast<long long>(evaluator.store_entries_loaded() - before);
}

void flush_to_store(const ArchEvaluator& evaluator, const std::string& path,
                    bool readonly) {
  if (path.empty() || readonly) return;
  warn_store_write_failed(path, evaluator.save_store(path));
}

NaasResult run_naas(const cost::CostModel& model, const NaasOptions& options,
                    const std::vector<nn::Network>& benchmarks) {
  if (benchmarks.empty())
    throw std::invalid_argument("run_naas: no benchmark networks");

  core::Timer timer;
  NaasResult result;
  result.best_geomean_edp = std::numeric_limits<double>::infinity();

  const HwEncodingSpec hw = make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  core::ThreadPool pool(options.num_threads);
  ArchEvaluator evaluator(model, options.mapping, &pool);
  result.store_entries_loaded =
      warm_start_from_store(evaluator, options.cache_path);

  CmaEsOptions cma_opts;
  cma_opts.dim = hw.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  const auto is_valid = [&hw](const std::vector<double>& genome) {
    return hw.valid(genome);
  };

  // Warm start: evaluate the seed designs (reference baseline + any user
  // seeds) so the returned best is never worse than the known design run
  // with NAAS's mapping search.
  {
    std::vector<arch::ArchConfig> seeds = options.seed_designs;
    if (options.seed_baseline) {
      try {
        seeds.push_back(arch::baseline_for(options.resources));
      } catch (const std::invalid_argument&) {
        // Custom envelope without a published baseline: nothing to seed.
      }
    }
    std::vector<arch::ArchConfig> eligible;
    for (auto& seed : seeds) {
      if (!options.search_connectivity &&
          !(seed.num_array_dims == 2 &&
            seed.parallel_dims[0] == hw.fixed_parallel_dims[0] &&
            seed.parallel_dims[1] == hw.fixed_parallel_dims[1])) {
        continue;  // sizing-only arm may not adopt foreign connectivity
      }
      if (!options.resources.allows(seed)) continue;
      eligible.push_back(std::move(seed));
    }
    const std::vector<double> edps =
        evaluator.evaluate_population(eligible, benchmarks);
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      if (std::isfinite(edps[i]) && edps[i] < result.best_geomean_edp) {
        result.best_geomean_edp = edps[i];
        result.best_arch = eligible[i];
      }
    }
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto population = cma.ask(is_valid);

    // Decode serially (cheap, keeps the CMA stream untouched), fan the
    // expensive scoring out over the pool, then reduce by genome index so
    // best-so-far tie-breaking matches the serial loop exactly. Genomes
    // that decode to the same config (the discrete arch space is small)
    // share one evaluation slot: concurrent duplicates would each pay a
    // full mapping search before the cache could dedup them.
    std::vector<arch::ArchConfig> configs;
    configs.reserve(population.size());
    std::vector<std::size_t> eval_index;  // genome -> slot in `to_eval`
    std::vector<arch::ArchConfig> to_eval;
    std::unordered_map<std::uint64_t, std::size_t> slot_by_fingerprint;
    for (const auto& genome : population) {
      configs.push_back(hw.decode(genome));
      if (options.resources.allows(configs.back())) {
        const std::uint64_t fp = arch_fingerprint(configs.back());
        const auto [it, fresh] =
            slot_by_fingerprint.emplace(fp, to_eval.size());
        if (fresh) to_eval.push_back(configs.back());
        eval_index.push_back(it->second);
      } else {
        eval_index.push_back(static_cast<std::size_t>(-1));
      }
    }
    const std::vector<double> eval_edps =
        evaluator.evaluate_population(to_eval, benchmarks);

    std::vector<double> fitness;
    std::vector<double> finite_edps;
    fitness.reserve(population.size());
    for (std::size_t k = 0; k < population.size(); ++k) {
      const double edp = eval_index[k] == static_cast<std::size_t>(-1)
                             ? std::numeric_limits<double>::infinity()
                             : eval_edps[eval_index[k]];
      fitness.push_back(edp);
      if (std::isfinite(edp)) {
        finite_edps.push_back(edp);
        if (edp < result.best_geomean_edp) {
          result.best_geomean_edp = edp;
          result.best_arch = configs[k];
        }
      }
    }
    cma.tell(population, fitness);
    result.population_mean_edp.push_back(core::mean(finite_edps));
    result.population_best_edp.push_back(
        finite_edps.empty()
            ? std::numeric_limits<double>::infinity()
            : *std::min_element(finite_edps.begin(), finite_edps.end()));
  }

  if (std::isfinite(result.best_geomean_edp)) {
    for (const auto& net : benchmarks)
      result.best_networks.push_back(
          evaluator.evaluate(result.best_arch, net));
  }
  flush_to_store(evaluator, options.cache_path, options.cache_readonly);
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.generations_batched = evaluator.generations_batched();
  result.candidates_batch_evaluated = evaluator.candidates_batch_evaluated();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::search
