#include "search/accelerator_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/stats.hpp"
#include "core/timer.hpp"
#include "search/cma_es.hpp"

namespace naas::search {
namespace {

std::uint64_t cache_key(const arch::ArchConfig& arch,
                        const nn::ConvLayer& layer) {
  const std::uint64_t a = arch_fingerprint(arch);
  const std::uint64_t l = nn::ConvLayerShapeHash{}(layer);
  return a ^ (l * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL);
}

}  // namespace

ArchEvaluator::ArchEvaluator(const cost::CostModel& model,
                             MappingSearchOptions mapping)
    : model_(model), mapping_(std::move(mapping)) {}

const MappingSearchResult& ArchEvaluator::best_mapping(
    const arch::ArchConfig& arch, const nn::ConvLayer& layer) {
  const std::uint64_t key = cache_key(arch, layer);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    MappingSearchOptions opts = mapping_;
    // Layer-dependent seed keeps runs deterministic while decorrelating
    // searches across layers.
    opts.seed = mapping_.seed ^ nn::ConvLayerShapeHash{}(layer);
    MappingSearchResult res = search_mapping(model_, arch, layer, opts);
    cost_evaluations_ += res.evaluations;
    ++mapping_searches_;
    it = cache_.emplace(key, std::move(res)).first;
  }
  return it->second;
}

cost::NetworkCost ArchEvaluator::evaluate(const arch::ArchConfig& arch,
                                          const nn::Network& net) {
  return cost::evaluate_network(
      model_, arch, net,
      [this](const arch::ArchConfig& a, const nn::ConvLayer& l) {
        return best_mapping(a, l).best;
      });
}

double ArchEvaluator::geomean_edp(const arch::ArchConfig& arch,
                                  const std::vector<nn::Network>& benchmarks) {
  std::vector<double> edps;
  edps.reserve(benchmarks.size());
  for (const auto& net : benchmarks) {
    const auto nc = evaluate(arch, net);
    if (!nc.legal) return std::numeric_limits<double>::infinity();
    edps.push_back(nc.edp);
  }
  return core::geomean(edps);
}

NaasResult run_naas(const cost::CostModel& model, const NaasOptions& options,
                    const std::vector<nn::Network>& benchmarks) {
  if (benchmarks.empty())
    throw std::invalid_argument("run_naas: no benchmark networks");

  core::Timer timer;
  NaasResult result;
  result.best_geomean_edp = std::numeric_limits<double>::infinity();

  const HwEncodingSpec hw = make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  ArchEvaluator evaluator(model, options.mapping);

  CmaEsOptions cma_opts;
  cma_opts.dim = hw.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  const auto is_valid = [&hw](const std::vector<double>& genome) {
    return hw.valid(genome);
  };

  // Warm start: evaluate the seed designs (reference baseline + any user
  // seeds) so the returned best is never worse than the known design run
  // with NAAS's mapping search.
  {
    std::vector<arch::ArchConfig> seeds = options.seed_designs;
    if (options.seed_baseline) {
      try {
        seeds.push_back(arch::baseline_for(options.resources));
      } catch (const std::invalid_argument&) {
        // Custom envelope without a published baseline: nothing to seed.
      }
    }
    for (auto seed : seeds) {
      if (!options.search_connectivity &&
          !(seed.num_array_dims == 2 &&
            seed.parallel_dims[0] == hw.fixed_parallel_dims[0] &&
            seed.parallel_dims[1] == hw.fixed_parallel_dims[1])) {
        continue;  // sizing-only arm may not adopt foreign connectivity
      }
      if (!options.resources.allows(seed)) continue;
      const double edp = evaluator.geomean_edp(seed, benchmarks);
      if (std::isfinite(edp) && edp < result.best_geomean_edp) {
        result.best_geomean_edp = edp;
        result.best_arch = seed;
      }
    }
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto population = cma.ask(is_valid);
    std::vector<double> fitness;
    std::vector<double> finite_edps;
    fitness.reserve(population.size());
    for (const auto& genome : population) {
      const arch::ArchConfig cfg = hw.decode(genome);
      double edp = std::numeric_limits<double>::infinity();
      if (options.resources.allows(cfg)) {
        edp = evaluator.geomean_edp(cfg, benchmarks);
      }
      fitness.push_back(edp);
      if (std::isfinite(edp)) {
        finite_edps.push_back(edp);
        if (edp < result.best_geomean_edp) {
          result.best_geomean_edp = edp;
          result.best_arch = cfg;
        }
      }
    }
    cma.tell(population, fitness);
    result.population_mean_edp.push_back(core::mean(finite_edps));
    result.population_best_edp.push_back(
        finite_edps.empty()
            ? std::numeric_limits<double>::infinity()
            : *std::min_element(finite_edps.begin(), finite_edps.end()));
  }

  if (std::isfinite(result.best_geomean_edp)) {
    for (const auto& net : benchmarks)
      result.best_networks.push_back(
          evaluator.evaluate(result.best_arch, net));
  }
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::search
