#include "search/accelerator_search.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/serialize.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "search/cma_es.hpp"
#include "search/eval_pipeline.hpp"
#include "search/speculation.hpp"

namespace naas::search {
namespace {

using core::hash_mix;

/// Fingerprint of everything about MappingSearchOptions that changes what
/// search_mapping returns. Mixed into every cache key so two evaluators
/// with different budgets (or a copied evaluator whose options were edited)
/// can never share stale entries.
std::uint64_t options_fingerprint(const MappingSearchOptions& o) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  h = hash_mix(h, static_cast<std::uint64_t>(o.population));
  h = hash_mix(h, static_cast<std::uint64_t>(o.iterations));
  h = hash_mix(h, o.seed);
  h = hash_mix(h, o.seed_canonical ? 1 : 0);
  h = hash_mix(h, static_cast<std::uint64_t>(o.encoding.order_encoding));
  h = hash_mix(h, o.encoding.search_order ? 1 : 0);
  h = hash_mix(h, static_cast<std::uint64_t>(o.encoding.fixed_dataflow));
  h = hash_mix(h, o.encoding.grow_tiles ? 1 : 0);
  return h;
}

}  // namespace

ArchEvaluator::ArchEvaluator(const cost::CostModel& model,
                             MappingSearchOptions mapping,
                             core::ThreadPool* pool)
    : model_(model),
      mapping_(std::move(mapping)),
      options_fingerprint_(options_fingerprint(mapping_)),
      pool_(pool) {}

StoreStatus ArchEvaluator::load_store(const std::string& path) {
  StoreLoadResult loaded = ResultStore::load(path);
  // A damaged store still yields its checksum-validated prefix; adopting
  // it keeps crash-torn appends cheap (the caller sees the non-kOk status
  // and heals the file separately).
  store_entries_loaded_ += cache_.preload(std::move(loaded.entries));
  return loaded.status;
}

StoreStatus ArchEvaluator::save_store(const std::string& path) const {
  return ResultStore::save(path, cache_.snapshot());
}

std::size_t ArchEvaluator::adopt_entries(StoreEntries entries) {
  const std::size_t inserted = cache_.preload(std::move(entries));
  store_entries_loaded_ += inserted;
  return inserted;
}

std::uint64_t ArchEvaluator::cache_key(const arch::ArchConfig& arch,
                                       const nn::Workload& layer) const {
  const std::uint64_t a = arch_fingerprint(arch);
  const std::uint64_t l = nn::LayerShapeHash{}(layer);
  return hash_mix(hash_mix(options_fingerprint_, a), l);
}

const MappingSearchResult* ArchEvaluator::find_cached(
    const arch::ArchConfig& arch, const nn::Workload& layer) const {
  return cache_.find(cache_key(arch, layer));
}

MappingSearchOptions ArchEvaluator::layer_options(
    const nn::Workload& layer) const {
  MappingSearchOptions opts = mapping_;
  // Layer-dependent seed keeps runs deterministic while decorrelating
  // searches across layers. Crucially the seed does NOT depend on
  // evaluation/request order, so concurrent (and speculative) cache fills
  // are reproducible.
  opts.seed = mapping_.seed ^ nn::LayerShapeHash{}(layer);
  return opts;
}

void ArchEvaluator::record_real_publish(const MappingSearchResult& entry) {
  cost_evaluations_.fetch_add(entry.evaluations);
  mapping_searches_.fetch_add(1);
  generations_batched_.fetch_add(entry.generations_batched);
  candidates_batch_evaluated_.fetch_add(entry.candidates_batch_evaluated);
}

void ArchEvaluator::record_speculative_publish(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(speculative_mutex_);
  speculative_unclaimed_.insert(key);
  // Tag the resident entry so store snapshots skip it until first real
  // touch: dead speculation must never bloat a persistent store. The
  // shard lock nests inside speculative_mutex_ (see the lock-hierarchy
  // note in eval_pipeline.cpp), keeping tag and bookkeeping atomic.
  cache_.mark_speculative(key);
}

void ArchEvaluator::claim_speculative(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lk(speculative_mutex_);
    if (speculative_unclaimed_.erase(key) == 0) return;
    // Untag under the same lock that tagged it; the entry re-enters
    // snapshot visibility with a fresh sequence number so incremental
    // flushes that already passed its original mark still pick it up.
    cache_.claim_speculative(key);
  }
  speculative_hits_.fetch_add(1);
  // Transfer the entry's meters into the real counters: this is the moment
  // the barrier engine would have paid for the search, so the real meters
  // end up identical with speculation on or off.
  if (const MappingSearchResult* entry = cache_.find(key))
    record_real_publish(*entry);
}

void ArchEvaluator::absorb_scheduler_stats(
    const core::TaskGraph::Stats& delta) {
  std::lock_guard<std::mutex> lk(sched_mutex_);
  sched_stats_.tasks_executed += delta.tasks_executed;
  sched_stats_.tasks_skipped += delta.tasks_skipped;
  sched_stats_.busy_seconds += delta.busy_seconds;
  sched_stats_.wall_seconds += delta.wall_seconds;
  sched_stats_.workers = std::max(sched_stats_.workers, delta.workers);
}

long long ArchEvaluator::tasks_executed() const {
  std::lock_guard<std::mutex> lk(sched_mutex_);
  return sched_stats_.tasks_executed;
}

long long ArchEvaluator::speculative_wasted() const {
  std::lock_guard<std::mutex> lk(speculative_mutex_);
  return static_cast<long long>(speculative_unclaimed_.size());
}

core::TaskGraph::Stats ArchEvaluator::scheduler_stats() const {
  std::lock_guard<std::mutex> lk(sched_mutex_);
  return sched_stats_;
}

const MappingSearchResult& ArchEvaluator::best_mapping(
    const arch::ArchConfig& arch, const nn::Workload& layer) {
  const std::uint64_t key = cache_key(arch, layer);
  if (const MappingSearchResult* hit = cache_.find(key)) {
    // A speculatively prefetched entry becomes real work the first time a
    // real caller touches it.
    claim_speculative(key);
    return *hit;
  }

  core::TaskGraph graph(pool_);
  MappingSearchResult res;
  submit_mapping_search(graph, model_, arch, layer, layer_options(layer),
                        &res);
  graph.run();
  absorb_scheduler_stats(graph.stats());

  bool inserted = false;
  const MappingSearchResult& entry = cache_.publish(key, std::move(res),
                                                    &inserted);
  if (inserted) {
    // Count only the published search: if another thread computed the same
    // key concurrently, one duplicate is discarded and the statistics stay
    // identical to the serial run.
    record_real_publish(entry);
  }
  return entry;
}

cost::NetworkCost ArchEvaluator::assemble_network(const arch::ArchConfig& arch,
                                                  const nn::Network& net) {
  // Pure assembly from the memoized mapping-search reports: no
  // re-evaluation of the cost model per unique layer (the search already
  // kept the winning candidate's full report).
  return cost::evaluate_network_reports(
      arch, net,
      [this](const arch::ArchConfig& a, const nn::Workload& l) {
        const MappingSearchResult* r = find_cached(a, l);
        if (r == nullptr) r = &best_mapping(a, l);  // unreachable when piped
        if (!std::isfinite(r->best_edp)) {
          cost::CostReport rep;
          rep.legal = false;
          rep.illegal_reason = "mapping search found no legal mapping";
          return rep;
        }
        return r->report;
      });
}

double ArchEvaluator::assembled_geomean(
    const arch::ArchConfig& arch, const std::vector<nn::Network>& benchmarks) {
  std::vector<double> edps;
  edps.reserve(benchmarks.size());
  for (const auto& net : benchmarks) {
    const auto nc = assemble_network(arch, net);
    if (!nc.legal) return std::numeric_limits<double>::infinity();
    edps.push_back(nc.edp);
  }
  return core::geomean(edps);
}

cost::NetworkCost ArchEvaluator::evaluate(const arch::ArchConfig& arch,
                                          const nn::Network& net) {
  {
    // Fill phase: one chain per unique layer shape not yet resident, all
    // interleaving on one graph. Skipped entirely on a fully warm cache.
    EvalPipeline pipeline(*this);
    std::vector<core::TaskGraph::TaskId> deps;
    pipeline.request_network(arch, net, /*speculative=*/false, &deps);
    if (!deps.empty()) pipeline.run();
  }
  return assemble_network(arch, net);
}

double ArchEvaluator::geomean_edp(const arch::ArchConfig& arch,
                                  const std::vector<nn::Network>& benchmarks) {
  // The one-candidate case of evaluate_population: every benchmark's layer
  // chains fill on one graph (no per-network quiesce barrier).
  return evaluate_population(std::span<const arch::ArchConfig>(&arch, 1),
                             benchmarks)
      .front();
}

std::vector<double> ArchEvaluator::evaluate_population(
    std::span<const arch::ArchConfig> archs,
    const std::vector<nn::Network>& benchmarks) {
  std::vector<double> edps(archs.size(),
                           std::numeric_limits<double>::infinity());
  if (archs.empty()) return edps;
  // One graph: every candidate's unique (arch, layer) chains — deduplicated
  // across the whole population — plus a per-candidate assembly task that
  // becomes ready the moment exactly its own layers are resident. A slow
  // layer of candidate 3 no longer stalls the scoring of candidate 7.
  EvalPipeline pipeline(*this);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    const auto deps =
        pipeline.request_benchmarks(archs[i], benchmarks, /*speculative=*/false);
    pipeline.graph().submit(
        [this, archs, &benchmarks, &edps, i] {
          edps[i] = assembled_geomean(archs[i], benchmarks);
        },
        deps);
  }
  pipeline.run();
  return edps;
}

long long warm_start_from_store(ArchEvaluator& evaluator,
                                const std::string& path) {
  if (path.empty()) return 0;
  const std::size_t before = evaluator.store_entries_loaded();
  warn_store_rejected(path, evaluator.load_store(path));
  return static_cast<long long>(evaluator.store_entries_loaded() - before);
}

void flush_to_store(const ArchEvaluator& evaluator, const std::string& path,
                    bool readonly) {
  if (path.empty() || readonly) return;
  warn_store_write_failed(path, evaluator.save_store(path));
}

NaasResult run_naas(const cost::CostModel& model, const NaasOptions& options,
                    const std::vector<nn::Network>& benchmarks) {
  if (benchmarks.empty())
    throw std::invalid_argument("run_naas: no benchmark networks");

  core::Timer timer;
  NaasResult result;
  result.best_geomean_edp = std::numeric_limits<double>::infinity();

  const HwEncodingSpec hw = make_hw_spec(
      options.resources, options.hw_encoding, options.search_connectivity);

  core::ThreadPool pool(options.num_threads);
  // --cost-backend re-targets evaluation onto a local copy of the model:
  // CostModel is a value type (energy params + backend pointer), and the
  // byte-identity contract makes the swap invisible to every result.
  cost::CostModel backend_model = model;
  if (options.cost_backend) backend_model.set_backend(*options.cost_backend);
  result.cost_backend = backend_model.backend_name();
  ArchEvaluator evaluator(backend_model, options.mapping, &pool);
  result.store_entries_loaded =
      warm_start_from_store(evaluator, options.cache_path);

  CmaEsOptions cma_opts;
  cma_opts.dim = hw.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  const auto is_valid = [&hw](const std::vector<double>& genome) {
    return hw.valid(genome);
  };

  // The whole evolution — seed scoring, every generation, and the
  // speculative prefetch — lives on ONE task graph. Candidates report
  // fitness through CmaEs::tell_partial as they finish; the report that
  // completes a generation schedules the next one from inside its own
  // task, so there is no join anywhere between the start of the search
  // and quiescence.
  EvalPipeline pipeline(evaluator);
  core::TaskGraph& graph = pipeline.graph();
  const core::TaskGraph::TaskId evolution_done = graph.make_promise();

  /// Cross-task state of the outer evolution. `mutex` serializes fitness
  /// reporting (tell_partial) and the generation bookkeeping; per-slot
  /// writes are distinct, so the lock guards the optimizer, not the data.
  struct Outer {
    std::mutex mutex;
    std::vector<arch::ArchConfig> configs;  ///< current generation decodes
    std::vector<double> edps;               ///< per-genome fitness slots
    int iter = 0;
    /// Admitted (fully evaluated) genomes still outstanding this
    /// generation; when the count hits zero the deferred surrogate-prune
    /// decisions resolve against the generation's mu-th-best fitness.
    std::size_t admitted_pending = 0;
    /// Deferred surrogate candidates: (slot, lower bound) for genomes whose
    /// bound exceeded the admission threshold. They report only after the
    /// admitted results are in (see resolve_pruned_locked).
    std::vector<std::pair<std::size_t, double>> pruned;
  } outer;

  // Requests every unique (candidate, layer) chain the candidate needs;
  // the returned ids gate the candidate's assembly task.
  const auto request_layers = [&](const arch::ArchConfig& cfg,
                                  bool speculative) {
    return pipeline.request_benchmarks(cfg, benchmarks, speculative);
  };

  // Speculative prefetch (ROADMAP's async item): while the just-submitted
  // generation drains, pre-evaluate the decoded architectures the *next*
  // generation is most likely to contain. The decode-bucket predictor
  // (search/speculation.*) enumerates the highest-probability quantization
  // cells of the current CMA distribution per gene and composes the top-K
  // joint decodes — it reads only the distribution's mean and marginal
  // deviations, never a generator, so the optimizer's stream is untouched
  // and the predicted set is a pure function of the distribution. Requests
  // go in at idle priority under the standard cache keys: speculation can
  // only produce future hits, never different results.
  //
  // Self-limiting, re-armable: predictions cash only while the sampler
  // keeps landing in the predicted decode cells — which happens when the
  // distribution has concentrated enough that its top joint cells carry
  // real mass, i.e. mid-to-late search, not at the diffuse start. After
  // kSpeculationProbeRounds consecutive rounds with no NEW hit the planner
  // parks; while parked it still probes one round every
  // kSpeculationReprobeRounds planning opportunities, so a search that
  // converges long after the opening rounds still discovers that
  // speculation has started paying. Any hit (including a straggling
  // speculative chain claimed while parked) fully re-arms continuous
  // planning. The gate reads only deterministic meters at structurally
  // fixed points, so the planned request set — and with it every meter —
  // stays identical for every thread count.
  constexpr int kSpeculationProbeRounds = 3;
  constexpr int kSpeculationReprobeRounds = 4;
  int hitless_rounds = 0;
  int parked_rounds = 0;
  long long last_seen_hits = 0;
  const auto plan_speculation = [&] {
    if (!options.speculate) return;
    const long long hits = evaluator.speculative_hits();
    if (hits > last_seen_hits) {
      last_seen_hits = hits;
      hitless_rounds = 0;
      parked_rounds = 0;
    }
    if (hitless_rounds >= kSpeculationProbeRounds) {
      if (++parked_rounds < kSpeculationReprobeRounds) return;
      parked_rounds = 0;  // periodic probe while parked
    } else {
      ++hitless_rounds;
    }
    SpeculationPredictorOptions predictor;
    predictor.top_k = options.population;
    for (const auto& cand : predict_decode_buckets(cma, hw, predictor))
      request_layers(cand.config, /*speculative=*/true);
  };

  std::function<void()> start_generation;  // assigned below; tasks recurse

  // Runs under outer.mutex, from the tell_partial call that filled the
  // generation's last slot: fold the generation into the running best (in
  // genome order, matching the barrier engine's tie-breaking exactly),
  // record the convergence statistics, and schedule the next generation.
  const auto generation_complete = [&] {
    std::vector<double> finite_edps;
    for (std::size_t k = 0; k < outer.edps.size(); ++k) {
      const double edp = outer.edps[k];
      if (std::isfinite(edp)) {
        finite_edps.push_back(edp);
        if (edp < result.best_geomean_edp) {
          result.best_geomean_edp = edp;
          result.best_arch = outer.configs[k];
        }
      }
    }
    result.population_mean_edp.push_back(core::mean(finite_edps));
    result.population_best_edp.push_back(
        finite_edps.empty()
            ? std::numeric_limits<double>::infinity()
            : *std::min_element(finite_edps.begin(), finite_edps.end()));
    ++outer.iter;
    if (outer.iter < options.iterations) {
      start_generation();
    } else {
      graph.fulfill(evolution_done);
    }
  };

  // Fitness report for genome `k`; the completing report runs the
  // generation bookkeeping inline (continuation style, no join).
  const auto report_locked = [&](std::size_t k, double edp) {
    outer.edps[k] = edp;
    if (cma.tell_partial(k, edp)) generation_complete();
  };
  const auto report = [&](std::size_t k, double edp) {
    std::lock_guard<std::mutex> lk(outer.mutex);
    report_locked(k, edp);
  };

  // Resolves this generation's deferred surrogate candidates once every
  // admitted genome has reported. CmaEs::tell is rank-only (see
  // CmaEs::parents), so a pruned candidate may keep its lower bound as
  // fitness exactly when the bound is strictly worse than the generation's
  // mu-th best reported fitness: the candidate then sits outside the parent
  // set under either its bound or its (>= bound) true cost, and the
  // distribution update is bit-identical to surrogate-off. A bound that is
  // not strictly worse could re-rank the parents, so that candidate is
  // rescued — evaluated for real like any admitted genome. Every input here
  // (the reported fitness vector, the bounds, mu) is deterministic, so the
  // kept/rescued split — and with it every meter — is thread-count and
  // schedule independent. Runs under outer.mutex.
  const auto resolve_pruned_locked = [&] {
    if (outer.pruned.empty()) return;
    std::vector<std::pair<std::size_t, double>> pruned;
    pruned.swap(outer.pruned);
    std::vector<char> deferred(outer.edps.size(), 0);
    for (const auto& [k, lb] : pruned) deferred[k] = 1;
    std::vector<double> reported;
    reported.reserve(outer.edps.size());
    for (std::size_t k = 0; k < outer.edps.size(); ++k)
      if (!deferred[k]) reported.push_back(outer.edps[k]);
    const std::size_t mu = std::min<std::size_t>(
        static_cast<std::size_t>(cma.parents()), outer.edps.size());
    double threshold = std::numeric_limits<double>::infinity();
    if (mu > 0 && reported.size() >= mu) {
      std::nth_element(reported.begin(),
                       reported.begin() + static_cast<std::ptrdiff_t>(mu - 1),
                       reported.end());
      threshold = reported[mu - 1];
    }
    for (const auto& [k, lb] : pruned) {
      const bool keep = lb > threshold;
      evaluator.note_surrogate_consult(keep);
      if (keep) {
        // Outside the parent set and above the admission threshold: its
        // mapping searches can change neither the distribution update nor
        // the returned best. The bound stands in as its fitness.
        report_locked(k, lb);
      } else {
        const auto deps = request_layers(outer.configs[k], false);
        graph.submit(
            [&outer, &evaluator, &benchmarks, &report, k] {
              report(k,
                     evaluator.assembled_geomean(outer.configs[k], benchmarks));
            },
            deps);
      }
    }
  };

  // Fitness report from an admitted genome's assembly task; the last one
  // triggers the deferred prune resolution above. Resolution runs BEFORE
  // this slot's tell_partial: the threshold must see this fitness, and the
  // kept/rescued reports must land while this slot still holds the
  // generation open (tell_partial completing the generation recurses into
  // the next one, which would repoint outer.pruned).
  const auto report_admitted = [&](std::size_t k, double edp) {
    std::lock_guard<std::mutex> lk(outer.mutex);
    outer.edps[k] = edp;
    if (--outer.admitted_pending == 0) resolve_pruned_locked();
    if (cma.tell_partial(k, edp)) generation_complete();
  };

  // Samples a generation, submits one assembly task per admitted genome
  // (gated on exactly its layer chains), plans speculation for the
  // generation after, and reports infeasible genomes immediately.
  // Surrogate-deferred genomes resolve when the admitted results are in.
  // Called with outer.mutex held.
  start_generation = [&] {
    const auto& population = cma.begin_generation(is_valid);
    const std::size_t lambda = population.size();
    outer.configs.assign(lambda, arch::ArchConfig{});
    outer.edps.assign(lambda, std::numeric_limits<double>::infinity());
    // Admission threshold of this generation's surrogate gate: the best
    // geomean EDP known when the generation starts. Generation starts are
    // structural (the completing report of the previous generation, or the
    // seed finalize), so the threshold — and the pruned set — is identical
    // for every thread count.
    const double admission = result.best_geomean_edp;
    std::vector<std::size_t> infeasible;
    std::vector<std::size_t> admitted;
    outer.pruned.clear();
    for (std::size_t k = 0; k < lambda; ++k) {
      outer.configs[k] = hw.decode(population[k]);
      if (!options.resources.allows(outer.configs[k])) {
        infeasible.push_back(k);
        continue;
      }
      if (options.surrogate == SurrogateMode::kPrune &&
          std::isfinite(admission)) {
        const double lb = surrogate_geomean_edp_bound(
            backend_model, outer.configs[k], benchmarks);
        if (lb > admission) {
          // The bound is exact, so this candidate's true geomean EDP is at
          // least `lb` > the best already found: paying for its mapping
          // searches cannot change the returned design. Whether it may
          // also skip them without perturbing the distribution update is
          // decided against the generation's parent ranks once the
          // admitted results are in (resolve_pruned_locked); the consult
          // meter is noted there, with the final verdict.
          outer.pruned.emplace_back(k, lb);
          continue;
        }
        evaluator.note_surrogate_consult(false);
      }
      admitted.push_back(k);
    }
    outer.admitted_pending = admitted.size();
    for (const std::size_t k : admitted) {
      const auto deps = request_layers(outer.configs[k], false);
      graph.submit(
          [&outer, &evaluator, &benchmarks, &report_admitted, k] {
            // Pure assembly: this task is gated on exactly its layer
            // chains, so every key is resident — no pipeline needed.
            report_admitted(
                k, evaluator.assembled_geomean(outer.configs[k], benchmarks));
          },
          deps);
    }
    plan_speculation();
    // Infeasible genomes cost nothing to score; reporting them last keeps
    // a generation with no admitted candidate correct (the final report
    // completes the generation and recurses into the next one right here).
    for (const std::size_t k : infeasible)
      report_locked(k, std::numeric_limits<double>::infinity());
    // No admitted genome will fire the resolution trigger: resolve the
    // deferred candidates now (with nothing finite reported, they are all
    // rescued — rank fidelity cannot spare any of them).
    if (admitted.empty()) resolve_pruned_locked();
  };

  // Warm start: evaluate the seed designs (reference baseline + any user
  // seeds) so the returned best is never worse than the known design run
  // with NAAS's mapping search. The seeds score as ordinary tasks on the
  // same graph; their completion starts generation 0, and generation 0's
  // predicted candidates prefetch while the seeds drain.
  std::vector<arch::ArchConfig> eligible;
  {
    std::vector<arch::ArchConfig> seeds = options.seed_designs;
    if (options.seed_baseline) {
      try {
        seeds.push_back(arch::baseline_for(options.resources));
      } catch (const std::invalid_argument&) {
        // Custom envelope without a published baseline: nothing to seed.
      }
    }
    for (auto& seed : seeds) {
      if (!options.search_connectivity &&
          !(seed.num_array_dims == 2 &&
            seed.parallel_dims[0] == hw.fixed_parallel_dims[0] &&
            seed.parallel_dims[1] == hw.fixed_parallel_dims[1])) {
        continue;  // sizing-only arm may not adopt foreign connectivity
      }
      if (!options.resources.allows(seed)) continue;
      eligible.push_back(std::move(seed));
    }
  }
  std::vector<double> seed_edps(eligible.size(),
                                std::numeric_limits<double>::infinity());
  std::vector<core::TaskGraph::TaskId> seed_tasks;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    const auto deps = request_layers(eligible[i], false);
    seed_tasks.push_back(graph.submit(
        [&evaluator, &eligible, &benchmarks, &seed_edps, i] {
          seed_edps[i] = evaluator.assembled_geomean(eligible[i], benchmarks);
        },
        deps));
  }
  graph.submit(
      [&] {
        std::lock_guard<std::mutex> lk(outer.mutex);
        for (std::size_t i = 0; i < eligible.size(); ++i) {
          if (std::isfinite(seed_edps[i]) &&
              seed_edps[i] < result.best_geomean_edp) {
            result.best_geomean_edp = seed_edps[i];
            result.best_arch = eligible[i];
          }
        }
        if (options.iterations > 0) {
          start_generation();
        } else {
          graph.fulfill(evolution_done);
        }
      },
      seed_tasks);
  plan_speculation();

  pipeline.run();  // drives the whole evolution; folds scheduler meters

  if (std::isfinite(result.best_geomean_edp)) {
    for (const auto& net : benchmarks)
      result.best_networks.push_back(
          evaluator.evaluate(result.best_arch, net));
  }
  flush_to_store(evaluator, options.cache_path, options.cache_readonly);
  result.cost_evaluations = evaluator.cost_evaluations();
  result.mapping_searches = evaluator.mapping_searches();
  result.generations_batched = evaluator.generations_batched();
  result.candidates_batch_evaluated = evaluator.candidates_batch_evaluated();
  result.tasks_executed = evaluator.tasks_executed();
  result.speculative_hits = evaluator.speculative_hits();
  result.speculative_wasted = evaluator.speculative_wasted();
  result.surrogate_consults = evaluator.surrogate_consults();
  result.surrogate_pruned = evaluator.surrogate_pruned();
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace naas::search
