#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/accelerator.hpp"
#include "arch/presets.hpp"
#include "arch/resources.hpp"
#include "mapping/mapping.hpp"
#include "nn/layer.hpp"

namespace naas::search {

/// How non-numerical choices (loop orders, parallel dims) are encoded in
/// the optimization vector (Section II-A-b / Fig. 9 ablation):
///  - kImportance: one continuous importance value per dimension; decoding
///    sorts by importance (descending) — order/choice changes smoothly with
///    the underlying values, which CMA-ES can exploit.
///  - kIndex: a single continuous gene mapped to the index of the
///    enumerated permutation/arrangement — neighboring genome values can
///    decode to unrelated orders, which is exactly why the paper's ablation
///    shows it optimizes poorly.
enum class OrderEncoding { kImportance, kIndex };

/// The six searchable dimensions (K, C, Y', X', R, S) in canonical order.
/// N (batch) is pinned outermost: all benchmarks run batch = 1.
constexpr std::array<nn::Dim, 6> searchable_dims() {
  return {nn::Dim::kK, nn::Dim::kC, nn::Dim::kYp,
          nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS};
}

/// Decodes six importance values into a full 7-dim loop order: dims sorted
/// by importance descending (highest importance = outermost loop, as in
/// Fig. 3 right), ties broken by canonical dim order, N prepended.
mapping::LoopOrder order_from_importance(const std::array<double, 6>& imp);

/// Decodes a single gene in [0,1] into one of the 720 permutations of the
/// six searchable dims (Lehmer code), N prepended.
mapping::LoopOrder order_from_index(double gene);

/// Decodes six importance values into the top-`k` parallel dims (Fig. 3
/// left): the k dims with the largest importance, in importance order.
std::vector<nn::Dim> parallel_from_importance(const std::array<double, 6>& imp,
                                              int k);

/// Decodes a single gene into one of the P(6,k) ordered arrangements of
/// parallel dims (mixed-radix index).
std::vector<nn::Dim> parallel_from_index(double gene, int k);

/// Stable fingerprint of an accelerator config (used as a cache key for
/// per-(arch, layer) mapping-search memoization).
std::uint64_t arch_fingerprint(const arch::ArchConfig& cfg);

/// Hardware encoding vector spec (Fig. 2 top): architectural sizing genes
/// plus connectivity genes, decoded against a resource envelope.
struct HwEncodingSpec {
  arch::ResourceConstraint resources;
  OrderEncoding parallel_encoding = OrderEncoding::kImportance;
  /// When false, reproduces the "architectural sizing only" baselines of
  /// Fig. 8 / NHAS [12]: the connectivity is pinned to
  /// `fixed_parallel_dims` (the given accelerator's design — NHAS sizes an
  /// existing design, it does not re-wire it) and the genome holds only
  /// sizing genes (#PEs, aspect ratio, buffers, bandwidth).
  bool search_connectivity = true;
  /// Connectivity used by the sizing-only mode (default NVDLA-style C x K).
  std::array<nn::Dim, 2> fixed_parallel_dims{nn::Dim::kC, nn::Dim::kK};

  /// Number of genes.
  int genome_size() const;

  /// Decodes a genome (values in [0,1]) into an accelerator config. The
  /// result is structurally valid but may exceed the resource envelope;
  /// pair with `valid()` for CMA-ES rejection sampling.
  arch::ArchConfig decode(const std::vector<double>& genome) const;

  /// True if decode(genome) fits the resource envelope.
  bool valid(const std::vector<double>& genome) const;
};

/// Builds the hardware encoding spec for an envelope. When
/// `search_connectivity` is false, the fixed connectivity is taken from the
/// envelope's published baseline when one exists (NHAS sizes the *given*
/// design — Eyeriss resources mean an R x Y' array), else NVDLA-style C x K.
HwEncodingSpec make_hw_spec(const arch::ResourceConstraint& resources,
                            OrderEncoding parallel_encoding,
                            bool search_connectivity);

/// Mapping encoding vector spec (Fig. 2 bottom): per temporal level a loop
/// order and per-dim tiling ratios, plus the PE-internal (register) order.
struct MapEncodingSpec {
  OrderEncoding order_encoding = OrderEncoding::kImportance;
  /// When false, loop orders are pinned to the canonical order of
  /// `fixed_dataflow` and only tiling ratios are searched (the mapping
  /// freedom prior sizing-only frameworks had).
  bool search_order = true;
  arch::Dataflow fixed_dataflow = arch::Dataflow::kWeightStationary;
  /// Grow decoded tiles to the buffer capacities (gene-prioritized
  /// grow_to_fit). Disable only for the design-choice ablation bench —
  /// raw tile ratios leave most of the genome in the undersized-tile
  /// region and search quality collapses measurably.
  bool grow_tiles = true;

  /// Number of genes.
  int genome_size() const;

  /// Decodes a genome into a legal mapping for (arch, layer): tiling genes
  /// are log-scale ratios of the dimension bounds ("scaling ratio rather
  /// than the absolute tiling value", Section II-B), and the result is
  /// capacity-repaired so every decoded mapping is evaluable.
  mapping::Mapping decode(const std::vector<double>& genome,
                          const arch::ArchConfig& arch,
                          const nn::Workload& layer) const;
};

}  // namespace naas::search
