#include "search/mapping_search.hpp"

#include <limits>

#include "mapping/canonical.hpp"
#include "search/cma_es.hpp"

namespace naas::search {

MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::ConvLayer& layer,
                                   const MappingSearchOptions& options) {
  MappingSearchResult result;
  result.best_edp = std::numeric_limits<double>::infinity();

  auto consider = [&](const mapping::Mapping& m) {
    const cost::CostReport rep = model.evaluate(arch, layer, m);
    ++result.evaluations;
    if (rep.legal && rep.edp < result.best_edp) {
      result.best_edp = rep.edp;
      result.best = m;
      result.report = rep;
    }
    return rep.legal ? rep.edp : std::numeric_limits<double>::infinity();
  };

  if (options.seed_canonical) {
    for (arch::Dataflow df : {arch::Dataflow::kWeightStationary,
                              arch::Dataflow::kOutputStationary,
                              arch::Dataflow::kRowStationary}) {
      consider(mapping::canonical_mapping(arch, layer, df));
    }
  }

  CmaEsOptions cma_opts;
  cma_opts.dim = options.encoding.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto population = cma.ask();
    std::vector<double> fitness;
    fitness.reserve(population.size());
    for (const auto& genome : population) {
      fitness.push_back(
          consider(options.encoding.decode(genome, arch, layer)));
    }
    cma.tell(population, fitness);
  }
  return result;
}

}  // namespace naas::search
