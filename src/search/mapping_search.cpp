#include "search/mapping_search.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "mapping/canonical.hpp"
#include "search/cma_es.hpp"

namespace naas::search {
namespace {

/// Candidates per shard task. Fixed (instead of derived from the pool
/// size) so a chain's task breakdown — and therefore its tasks_executed
/// meter — is identical for every thread count; shard boundaries cannot
/// change results anyway (evaluate_batch is bit-identical at any batch
/// size, property-tested in test_cost_batch).
constexpr std::size_t kShardCandidates = 4;

/// Everything one mapping-search chain carries between its tasks. Owned by
/// a shared_ptr captured into every task body; only one task of a chain
/// runs at a time except the shard batch, and shards write disjoint slices.
struct ChainState {
  ChainState(core::TaskGraph& g, const cost::CostModel& m,
             const arch::ArchConfig& a, const nn::Workload& l,
             const MappingSearchOptions& o, MappingSearchResult* res,
             core::TaskGraph::Priority p)
      : graph(g), model(m), arch(a), layer(l), options(o), out(res),
        priority(p) {}

  core::TaskGraph& graph;
  const cost::CostModel& model;
  arch::ArchConfig arch;
  nn::Workload layer;
  MappingSearchOptions options;
  MappingSearchResult* out;
  core::TaskGraph::TaskId done = 0;  ///< promise fulfilled by the finale

  /// Priority of new submissions plus the chain's currently live task
  /// ids, guarded by `admin` so promote() — which may run on another
  /// thread — flips the class and re-queues the live tasks atomically
  /// with respect to the continuation that submits the next generation.
  std::mutex admin;
  core::TaskGraph::Priority priority;
  std::vector<core::TaskGraph::TaskId> live_tasks;

  /// Raises queued and future tasks to normal priority. Idempotent.
  void promote() {
    std::lock_guard<std::mutex> lk(admin);
    if (priority == core::TaskGraph::Priority::kNormal) return;
    priority = core::TaskGraph::Priority::kNormal;
    for (const core::TaskGraph::TaskId id : live_tasks) graph.promote(id);
  }

  std::optional<cost::LayerContext> ctx;
  std::optional<CmaEs> cma;
  MappingSearchResult result;
  int iter = 0;
  /// Per-generation decode/evaluate slots (candidate-indexed).
  std::vector<mapping::Mapping> mappings;
  std::vector<cost::CostReport> reports;
};

/// Folds one evaluated candidate into the running best. Always called in
/// candidate order (canonical seeds first, then genome index within each
/// generation), which fixes the tie-breaking independently of how the
/// evaluations themselves were scheduled.
double reduce(MappingSearchResult& result, const mapping::Mapping& m,
              const cost::CostReport& rep) {
  ++result.evaluations;
  if (rep.legal && rep.edp < result.best_edp) {
    result.best_edp = rep.edp;
    result.best = m;
    result.report = rep;
  }
  return rep.legal ? rep.edp : std::numeric_limits<double>::infinity();
}

void submit_generation(const std::shared_ptr<ChainState>& st);

/// Chain finale: hand the result to the caller and complete the promise so
/// dependents (cache publishes, candidate finalizes) become ready.
void finish_chain(const std::shared_ptr<ChainState>& st) {
  *st->out = std::move(st->result);
  st->graph.fulfill(st->done);
}

/// Samples the next generation and submits its shard tasks plus the
/// continuation that reduces, steps the optimizer, and schedules the
/// generation after — the loop of the old barrier engine unrolled into
/// continuation-passing form.
void submit_generation(const std::shared_ptr<ChainState>& st) {
  if (st->iter >= st->options.iterations) {
    finish_chain(st);
    return;
  }
  const auto& population = st->cma->begin_generation();
  const std::size_t n = population.size();
  st->mappings.assign(n, mapping::Mapping{});
  st->reports.assign(n, cost::CostReport{});

  // Submit the generation under the chain's admin lock: the priority read
  // and the live-task recording must be atomic against a concurrent
  // promote(), or a promotion could land between them and miss tasks.
  std::lock_guard<std::mutex> lk(st->admin);
  st->live_tasks.clear();

  std::vector<core::TaskGraph::TaskId> shard_ids;
  for (std::size_t lo = 0; lo < n; lo += kShardCandidates) {
    const std::size_t hi = std::min(n, lo + kShardCandidates);
    shard_ids.push_back(st->graph.submit(
        [st, lo, hi] {
          // (tasks_executed for the shards is credited by the continuation:
          // shards run concurrently and must only write their own slices.)
          const auto& pop = st->cma->pending_population();
          for (std::size_t i = lo; i < hi; ++i)
            st->mappings[i] =
                st->options.encoding.decode(pop[i], st->arch, st->layer);
          st->model.evaluate_batch(
              *st->ctx,
              std::span<const mapping::Mapping>(st->mappings)
                  .subspan(lo, hi - lo),
              std::span<cost::CostReport>(st->reports).subspan(lo, hi - lo));
        },
        {}, st->priority));
    st->live_tasks.push_back(shard_ids.back());
  }

  const auto num_shards = static_cast<long long>(shard_ids.size());
  st->live_tasks.push_back(st->graph.submit(
      [st, n, num_shards] {
        st->result.tasks_executed += 1 + num_shards;
        ++st->result.generations_batched;
        st->result.candidates_batch_evaluated += static_cast<long long>(n);
        bool complete = false;
        for (std::size_t i = 0; i < n; ++i)
          complete = st->cma->tell_partial(
              i, reduce(st->result, st->mappings[i], st->reports[i]));
        (void)complete;  // always true here: the continuation reports all n
        ++st->iter;
        submit_generation(st);
      },
      shard_ids, st->priority));
}

}  // namespace

MappingSearchChain submit_mapping_search(
    core::TaskGraph& graph, const cost::CostModel& model,
    const arch::ArchConfig& arch, const nn::Workload& layer,
    const MappingSearchOptions& options, MappingSearchResult* out,
    core::TaskGraph::Priority priority) {
  auto st = std::make_shared<ChainState>(graph, model, arch, layer, options,
                                         out, priority);
  st->done = graph.make_promise();
  std::lock_guard<std::mutex> lk(st->admin);  // pairs with promote()
  st->live_tasks.push_back(graph.submit(
      [st] {
        ++st->result.tasks_executed;
        st->result.best_edp = std::numeric_limits<double>::infinity();
        // One context carries every per-(arch, layer) invariant for the
        // whole chain; all candidate scoring goes through the batched
        // evaluator.
        st->ctx.emplace(st->model.make_context(st->arch, st->layer));

        if (st->options.seed_canonical) {
          std::array<mapping::Mapping, 3> seeds;
          std::array<cost::CostReport, 3> seed_reports;
          std::size_t k = 0;
          for (arch::Dataflow df : {arch::Dataflow::kWeightStationary,
                                    arch::Dataflow::kOutputStationary,
                                    arch::Dataflow::kRowStationary})
            seeds[k++] = mapping::canonical_mapping(st->arch, st->layer, df);
          st->model.evaluate_batch(*st->ctx, seeds, seed_reports);
          st->result.candidates_batch_evaluated +=
              static_cast<long long>(seeds.size());
          for (std::size_t i = 0; i < seeds.size(); ++i)
            reduce(st->result, seeds[i], seed_reports[i]);
        }

        CmaEsOptions cma_opts;
        cma_opts.dim = st->options.encoding.genome_size();
        cma_opts.population = st->options.population;
        cma_opts.seed = st->options.seed;
        st->cma.emplace(cma_opts);
        submit_generation(st);
      },
      {}, priority));
  MappingSearchChain chain;
  chain.done = st->done;
  chain.promote = [st] { st->promote(); };
  return chain;
}

MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::Workload& layer,
                                   const MappingSearchOptions& options,
                                   core::ThreadPool* pool) {
  core::TaskGraph graph(pool);
  MappingSearchResult result;
  submit_mapping_search(graph, model, arch, layer, options, &result);
  graph.run();
  return result;
}

}  // namespace naas::search
