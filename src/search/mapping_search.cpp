#include "search/mapping_search.hpp"

#include <limits>
#include <utility>

#include "mapping/canonical.hpp"
#include "search/cma_es.hpp"

namespace naas::search {

MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::ConvLayer& layer,
                                   const MappingSearchOptions& options,
                                   core::ThreadPool* pool) {
  MappingSearchResult result;
  result.best_edp = std::numeric_limits<double>::infinity();

  // Folds one evaluated candidate into the running best. Always called in
  // candidate order (canonical seeds first, then genome index within each
  // generation), which fixes the tie-breaking independently of how the
  // evaluations themselves were scheduled.
  auto reduce = [&](const mapping::Mapping& m, const cost::CostReport& rep) {
    ++result.evaluations;
    if (rep.legal && rep.edp < result.best_edp) {
      result.best_edp = rep.edp;
      result.best = m;
      result.report = rep;
    }
    return rep.legal ? rep.edp : std::numeric_limits<double>::infinity();
  };

  if (options.seed_canonical) {
    for (arch::Dataflow df : {arch::Dataflow::kWeightStationary,
                              arch::Dataflow::kOutputStationary,
                              arch::Dataflow::kRowStationary}) {
      const mapping::Mapping m = mapping::canonical_mapping(arch, layer, df);
      reduce(m, model.evaluate(arch, layer, m));
    }
  }

  CmaEsOptions cma_opts;
  cma_opts.dim = options.encoding.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto population = cma.ask();
    const std::size_t n = population.size();
    // Decode + evaluate fan out onto the pool (both are pure functions of
    // the genome); the reduction below runs serially by index.
    std::vector<mapping::Mapping> mappings(n);
    std::vector<cost::CostReport> reports(n);
    core::ThreadPool::run(pool, n, [&](std::size_t i) {
      mappings[i] = options.encoding.decode(population[i], arch, layer);
      reports[i] = model.evaluate(arch, layer, mappings[i]);
    });

    std::vector<double> fitness;
    fitness.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      fitness.push_back(reduce(mappings[i], reports[i]));
    }
    cma.tell(population, fitness);
  }
  return result;
}

}  // namespace naas::search
