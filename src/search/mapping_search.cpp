#include "search/mapping_search.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "mapping/canonical.hpp"
#include "search/cma_es.hpp"

namespace naas::search {

MappingSearchResult search_mapping(const cost::CostModel& model,
                                   const arch::ArchConfig& arch,
                                   const nn::ConvLayer& layer,
                                   const MappingSearchOptions& options,
                                   core::ThreadPool* pool) {
  MappingSearchResult result;
  result.best_edp = std::numeric_limits<double>::infinity();

  // Folds one evaluated candidate into the running best. Always called in
  // candidate order (canonical seeds first, then genome index within each
  // generation), which fixes the tie-breaking independently of how the
  // evaluations themselves were scheduled.
  auto reduce = [&](const mapping::Mapping& m, const cost::CostReport& rep) {
    ++result.evaluations;
    if (rep.legal && rep.edp < result.best_edp) {
      result.best_edp = rep.edp;
      result.best = m;
      result.report = rep;
    }
    return rep.legal ? rep.edp : std::numeric_limits<double>::infinity();
  };

  // One context carries every per-(arch, layer) invariant for the whole
  // search; all candidate scoring below goes through the batched evaluator.
  const cost::LayerContext ctx = model.make_context(arch, layer);

  if (options.seed_canonical) {
    std::array<mapping::Mapping, 3> seeds;
    std::array<cost::CostReport, 3> seed_reports;
    std::size_t k = 0;
    for (arch::Dataflow df : {arch::Dataflow::kWeightStationary,
                              arch::Dataflow::kOutputStationary,
                              arch::Dataflow::kRowStationary})
      seeds[k++] = mapping::canonical_mapping(arch, layer, df);
    model.evaluate_batch(ctx, seeds, seed_reports);
    result.candidates_batch_evaluated += static_cast<long long>(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i)
      reduce(seeds[i], seed_reports[i]);
  }

  CmaEsOptions cma_opts;
  cma_opts.dim = options.encoding.genome_size();
  cma_opts.population = options.population;
  cma_opts.seed = options.seed;
  CmaEs cma(cma_opts);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto population = cma.ask();
    const std::size_t n = population.size();
    // Decode + batch-evaluate the generation. With a pool the batch is cut
    // into contiguous shards, one per thread; each shard decodes its
    // genomes and calls evaluate_batch on its slice. Candidates are
    // independent, so the shard cut cannot change any report; the
    // reduction below runs serially by index.
    std::vector<mapping::Mapping> mappings(n);
    std::vector<cost::CostReport> reports(n);
    const auto decode_slice = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        mappings[i] = options.encoding.decode(population[i], arch, layer);
      model.evaluate_batch(
          ctx, std::span<const mapping::Mapping>(mappings).subspan(lo, hi - lo),
          std::span<cost::CostReport>(reports).subspan(lo, hi - lo));
    };
    if (pool == nullptr || pool->serial() || n <= 1) {
      decode_slice(0, n);
    } else {
      const std::size_t threads =
          std::min<std::size_t>(n, static_cast<std::size_t>(pool->size()));
      const std::size_t chunk = (n + threads - 1) / threads;
      // Shard count follows from the rounded-up chunk so the last shard
      // always starts in range (ceil-rounding chunk alone can leave
      // threads * chunk >= n + chunk when threads does not divide n).
      const std::size_t shards = (n + chunk - 1) / chunk;
      pool->parallel_for(shards, [&](std::size_t shard) {
        const std::size_t lo = shard * chunk;
        decode_slice(lo, std::min(n, lo + chunk));
      });
    }
    ++result.generations_batched;
    result.candidates_batch_evaluated += static_cast<long long>(n);

    std::vector<double> fitness;
    fitness.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      fitness.push_back(reduce(mappings[i], reports[i]));
    }
    cma.tell(population, fitness);
  }
  return result;
}

}  // namespace naas::search
