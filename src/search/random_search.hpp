#pragma once

#include "search/accelerator_search.hpp"

namespace naas::search {

/// Random-search baseline for Fig. 4: identical evaluation pipeline to
/// run_naas (same encoding, validity filter, inner mapping search, reward),
/// but candidates are drawn uniformly from [0,1]^dim each iteration with no
/// distribution update. The population-mean EDP therefore stays flat while
/// NAAS's decreases.
NaasResult run_random_search(const cost::CostModel& model,
                             const NaasOptions& options,
                             const std::vector<nn::Network>& benchmarks);

}  // namespace naas::search
