#pragma once

#include <string>

namespace naas::search {

/// Search-cost accounting for the Table IV comparison. The paper's
/// constants: AWS on-demand P3.16xlarge ~ $75 per GPU-day, CO2 ~ 7.5 lbs
/// per GPU-day (Strubell et al.); NASAIC trains 500 candidate networks from
/// scratch (12 GPU-days each) per scenario; NHAS amortizes supernet
/// training (12 Gd) but retrains each deployment (16 Gd) and searches 4 Gd;
/// NAAS piggybacks on a one-time OFA supernet (50 Gd) and its own search is
/// CPU-scale.
struct SearchCostModel {
  static constexpr double kAwsDollarsPerGpuDay = 75.0;
  static constexpr double kCo2LbsPerGpuDay = 7.5;
  static constexpr double kOfaSupernetGpuDays = 50.0;  // one-time, shared

  /// NASAIC total GPU-days for N deployment scenarios.
  static double nasaic_gpu_days(int n) { return 6000.0 * n + 16.0 * n; }

  /// NHAS total GPU-days for N deployment scenarios.
  static double nhas_gpu_days(int n) { return 12.0 + 20.0 * n; }

  /// NAAS co-search GPU-days for N scenarios given one measured scenario's
  /// wall-clock seconds (our search runs on CPU; one wall-day of this
  /// process is conservatively billed as one GPU-day).
  static double naas_gpu_days(int n, double measured_seconds_per_scenario) {
    return kOfaSupernetGpuDays +
           n * measured_seconds_per_scenario / 86400.0;
  }

  static double aws_cost(double gpu_days) {
    return gpu_days * kAwsDollarsPerGpuDay;
  }
  static double co2_lbs(double gpu_days) {
    return gpu_days * kCo2LbsPerGpuDay;
  }
};

/// Counters accumulated while running searches (reported in Table IV and
/// EXPERIMENTS.md alongside the projections).
struct MeasuredSearchCost {
  long long cost_model_evaluations = 0;
  long long mapping_searches = 0;
  double wall_seconds = 0;

  /// Evaluations per second (0 if no time elapsed).
  double throughput() const {
    return wall_seconds > 0 ? cost_model_evaluations / wall_seconds : 0;
  }

  std::string to_string() const;
};

}  // namespace naas::search
