#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/mapping_search.hpp"

namespace naas::search {

/// Sharded, mutex-striped memoization table for per-(arch, layer)
/// mapping-search results — the concurrent replacement for ArchEvaluator's
/// single unordered_map.
///
/// Concurrency contract:
///  - Lookups and publishes on different shards never contend; the shard
///    index is a mix of the (already well-distributed) 64-bit key.
///  - Entry references are stable for the cache's lifetime (unordered_map
///    never relocates nodes on rehash), so `best_mapping` can keep handing
///    out `const MappingSearchResult&`.
///  - Two threads may race to compute the same key; `publish` keeps the
///    first result and tells the loser its duplicate was discarded. Because
///    mapping search is deterministic per key (the seed derives from the
///    layer shape, not evaluation order), both results are identical and
///    dropping one is free — and counting only successful publishes keeps
///    the evaluator's statistics independent of thread count.
class EvalCache {
 public:
  /// Cached result for `key`, or nullptr on miss.
  const MappingSearchResult* find(std::uint64_t key) const;

  /// Publishes `result` under `key` unless an entry already exists (another
  /// thread won the race). Returns the resident entry; `inserted` reports
  /// whether it was ours.
  const MappingSearchResult& publish(std::uint64_t key,
                                     MappingSearchResult&& result,
                                     bool* inserted);

  /// Tags a resident entry as speculative: computed ahead of need and not
  /// yet touched by any real request. Tagged entries are invisible to
  /// snapshot/snapshot_since — dead speculation must never bloat a
  /// persistent store — until claim_speculative clears the tag.
  void mark_speculative(std::uint64_t key);

  /// Clears the speculative tag (first real touch). The entry re-enters
  /// snapshot visibility with a *fresh* insertion number: a claim that
  /// happens after an incremental flush mark would otherwise sit behind
  /// `since` forever and never persist. Returns whether the entry was
  /// resident and tagged.
  bool claim_speculative(std::uint64_t key);

  /// Resident entries currently tagged speculative (linearizable only when
  /// quiescent; a test/meter helper, not a synchronization primitive).
  std::size_t speculative_resident() const;

  /// Total entries across all shards (linearizable only when quiescent).
  std::size_t size() const;

  void clear();

  /// Copy of every entry, sorted by key (deterministic bytes when handed to
  /// ResultStore::encode). Linearizable: taken under every shard lock, so
  /// it is a consistent cut even while publishes race on other threads.
  std::vector<std::pair<std::uint64_t, MappingSearchResult>> snapshot() const;

  /// Monotonic insertion counter: incremented once per entry that actually
  /// enters the cache (publish wins and preload adoptions alike). A caller
  /// that records `sequence()` at a quiescent point and later asks
  /// `snapshot_since` with it gets exactly the entries added in between —
  /// the incremental-flush primitive of the serving layer. While publishes
  /// are in flight, prefer the `high_mark` returned by snapshot_since: a
  /// bare sequence() read is not ordered against concurrent insertions on
  /// other shards.
  std::uint64_t sequence() const { return seq_.load(); }

  /// Entries whose insertion number is greater than `since`, sorted by key.
  /// `snapshot_since(0)` equals `snapshot()`. Entries still tagged
  /// speculative (published ahead of need, never touched by a real
  /// request) are excluded: flushing them would persist work no caller
  /// asked for, and claim_speculative re-sequences an entry on first real
  /// touch so it is picked up by the next incremental cut instead.
  ///
  /// Linearizable cut: the scan holds every shard lock at once, so the
  /// result is exactly the entries with `since < seq <= *high_mark` — no
  /// entry torn across the scan. (A per-shard scan raced with concurrent
  /// inserts: an entry with a low insertion number could land in an
  /// already-scanned shard while a higher-numbered entry in a later shard
  /// was captured, so resuming from any mark either lost the low entry
  /// forever or returned the high one twice. The hammer test in
  /// test_result_store.cpp exercises exactly that interleaving.) Chain
  /// calls by passing `*high_mark` back as the next `since` to stream the
  /// cache incrementally without duplicates or holes, even under
  /// concurrent insertion.
  std::vector<std::pair<std::uint64_t, MappingSearchResult>> snapshot_since(
      std::uint64_t since, std::uint64_t* high_mark = nullptr) const;

  /// Bulk-inserts persisted entries (e.g. ResultStore::load). Existing keys
  /// win — a live entry is never overwritten by a stale store. Returns how
  /// many entries were actually inserted. Unlike publish, preloading does
  /// not count toward any statistics: warm-started entries were paid for by
  /// an earlier run.
  std::size_t preload(
      std::vector<std::pair<std::uint64_t, MappingSearchResult>> entries);

 private:
  static constexpr std::size_t kNumShards = 64;

  /// A resident result plus its insertion number (for snapshot_since).
  struct Entry {
    MappingSearchResult result;
    std::uint64_t seq = 0;
    /// True while the entry is unclaimed speculative work (see
    /// mark_speculative); such entries are skipped by snapshots.
    bool speculative = false;
  };

  struct Shard {
    mutable std::mutex m;
    std::unordered_map<std::uint64_t, Entry> map;
  };

  static std::size_t shard_index(std::uint64_t key) {
    // Fibonacci mix so shard choice uses high-entropy bits even if the key
    // hash is weak in its low bits.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 58);
  }

  std::array<Shard, kNumShards> shards_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace naas::search
