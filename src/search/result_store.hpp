#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "search/mapping_search.hpp"

namespace naas::search {

class EvalCache;

/// Outcome of touching a persistent result store on disk.
enum class StoreStatus {
  kOk,           ///< loaded/saved successfully
  kNotFound,     ///< no file at the path (normal on a first cold run)
  kIoError,      ///< open/read/write/rename failed
  kBadMagic,     ///< not a result-store file
  kBadVersion,   ///< written by an incompatible format version
  kCorrupt,      ///< truncated, checksum mismatch, or invalid field values
};

/// Short name for logs ("ok", "not-found", ...).
const char* store_status_name(StoreStatus s);

/// (cache key, memoized mapping-search result) pairs as persisted.
using StoreEntries = std::vector<std::pair<std::uint64_t, MappingSearchResult>>;

/// Result of ResultStore::load / decode. On damage, `entries` carries the
/// *salvageable prefix*: every segment before the first damaged one, each
/// individually magic/version/checksum-validated. A crash-torn append
/// therefore costs only the torn segment, never the store (the serving
/// layer then heals the file by atomic rewrite). `entries` is empty when
/// nothing is trustworthy — bad magic (not a store file) or a version
/// mismatch at the first segment (every byte written by incompatible
/// code).
struct StoreLoadResult {
  StoreStatus status = StoreStatus::kNotFound;
  StoreEntries entries;  ///< all entries (kOk) or the salvageable prefix
};

/// Persistent, versioned, checksummed on-disk form of the mapping-result
/// cache (search::EvalCache): what lets a new process — a CI run, a sweep
/// shard, a benchmark rerun, a serving instance — warm-start from every
/// mapping search any earlier run already paid for.
///
/// A store file is a sequence of one or more self-contained *segments*.
/// Each segment (all little-endian, doubles as IEEE-754 bit patterns):
///
///   magic   8 bytes  "NAASMAPS"
///   u32     format version (kFormatVersion)
///   u32     algorithm epoch (kAlgorithmEpoch)
///   u64     entry count
///   entries u64 key, then the full MappingSearchResult (mapping orders as
///           u8 dims, tiles as i32, every CostReport metric as f64)
///   u64     FNV-1a checksum of everything above in this segment
///
/// `save` rewrites the file as a single segment; `append` adds one more
/// segment without touching the existing bytes, which is what lets a
/// long-lived serving process flush only its *new* entries (see
/// serve::EvalService) instead of rewriting a growing store on every
/// refresh. `load` parses all segments; duplicate keys across segments are
/// harmless (results are deterministic per key, and EvalCache::preload
/// keeps the first copy).
///
/// Damage is contained at segment granularity: a stale or damaged segment
/// is never decoded (checksums gate every byte), but the intact segments
/// *before* it are salvaged (StoreLoadResult::entries), so a crash-torn
/// append loses the tear, not the store. The caller logs the non-kOk
/// status, adopts the salvage, and — in the serving layer — heals the file
/// by atomic rewrite on the next refresh. Saves are atomic (tmp file +
/// rename) and sort entries by key so identical caches produce identical
/// bytes; appends are best-effort single-write and truncate back on
/// failure, so an in-process torn append degrades to a salvageable store,
/// not a wrong one.
class ResultStore {
 public:
  /// Bump when the serialized *layout* changes.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Bump when *evaluation semantics* change — CostModel arithmetic or
  /// energy constants, search_mapping, canonical_mapping, encoding decode.
  /// The cache key fingerprints the search options, not the algorithm;
  /// this constant covers the algorithm, so stores computed by older code
  /// are rejected as version-mismatched instead of silently served to a
  /// binary that would compute different numbers.
  static constexpr std::uint32_t kAlgorithmEpoch = 1;

  /// Serializes `entries` as one segment (order-insensitive; sorted
  /// internally).
  static std::string encode(StoreEntries entries);

  /// Parses one or more concatenated segments produced by encode(),
  /// validating magic, version, per-segment checksum, and field ranges.
  /// A damaged segment stops the parse; the returned entries are the
  /// checksum-validated segments before it (see StoreLoadResult).
  static StoreLoadResult decode(const void* data, std::size_t size);

  /// Rewrites the store atomically as a single segment (also the way to
  /// compact a many-segment append log). Returns kOk or kIoError.
  static StoreStatus save(const std::string& path, StoreEntries entries);

  /// Appends `entries` as one new segment without rewriting the existing
  /// file (creates it when missing; no-op kOk when `entries` is empty).
  /// The incremental-flush half of the serving story: cost is proportional
  /// to the *new* entries, not the store size. On a failed or short write
  /// the file is truncated back to its prior length so a torn segment
  /// cannot linger. `bytes_appended` (optional) reports how many bytes the
  /// file grew, which lets callers distinguish their own append from a
  /// concurrent writer's when deciding whether to reload.
  static StoreStatus append(const std::string& path, StoreEntries entries,
                            std::size_t* bytes_appended = nullptr);

  /// Reads and validates the store at `path`.
  static StoreLoadResult load(const std::string& path);
};

/// Logs the canonical warning for a rejected store load (silent for kOk
/// and kNotFound — a missing file is a normal cold start). Returns true
/// when a warning was emitted. Every load site routes its diagnostics
/// through here so the policy and wording exist once.
bool warn_store_rejected(const std::string& path, StoreStatus status);

/// Logs the canonical warning for a failed store write; true when emitted.
bool warn_store_write_failed(const std::string& path, StoreStatus status);

/// The shared warm-start policy: loads the store at `path` into `cache`
/// (no-op when `path` is empty, silent when the file does not exist yet)
/// and logs a warning when an existing file is rejected — the caller
/// proceeds cold. Returns the number of entries adopted.
std::size_t warm_start_cache(EvalCache& cache, const std::string& path);

/// The shared flush policy: saves `cache` to `path` unless disabled
/// (`path` empty) or `readonly`, logging a warning when the write fails.
void flush_cache(const EvalCache& cache, const std::string& path,
                 bool readonly);

}  // namespace naas::search
