#include "search/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace naas::search {
namespace {

/// Rounds `v` down to the nearest positive multiple of `stride`.
long long round_stride(double v, int stride) {
  const auto scaled = static_cast<long long>(v / stride);
  return std::max<long long>(1, scaled) * stride;
}

/// Log-scale interpolation: gene 0 -> lo, gene 1 -> hi.
double log_lerp(double gene, double lo, double hi) {
  gene = std::clamp(gene, 0.0, 1.0);
  return std::exp(std::log(lo) + gene * (std::log(hi) - std::log(lo)));
}

/// Builds a full loop order from an ordered list of the six searchable
/// dims, prepending N.
mapping::LoopOrder with_batch_outer(const std::array<nn::Dim, 6>& inner) {
  mapping::LoopOrder order;
  order[0] = nn::Dim::kN;
  for (std::size_t i = 0; i < 6; ++i) order[i + 1] = inner[i];
  return order;
}

}  // namespace

mapping::LoopOrder order_from_importance(const std::array<double, 6>& imp) {
  std::array<int, 6> idx{0, 1, 2, 3, 4, 5};
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return imp[static_cast<std::size_t>(a)] > imp[static_cast<std::size_t>(b)];
  });
  std::array<nn::Dim, 6> sorted{};
  for (std::size_t i = 0; i < 6; ++i)
    sorted[i] = searchable_dims()[static_cast<std::size_t>(idx[i])];
  return with_batch_outer(sorted);
}

mapping::LoopOrder order_from_index(double gene) {
  gene = std::clamp(gene, 0.0, 1.0 - 1e-12);
  long long index = static_cast<long long>(gene * 720.0);  // 6! permutations
  const auto dims = searchable_dims();
  std::vector<nn::Dim> pool(dims.begin(), dims.end());
  std::array<nn::Dim, 6> sorted{};
  long long radix = 120;  // 5!
  for (std::size_t pos = 0; pos < 6; ++pos) {
    const auto pick = static_cast<std::size_t>(index / radix);
    index %= radix;
    sorted[pos] = pool[std::min(pick, pool.size() - 1)];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(pick, pool.size() - 1)));
    if (pos + 1 < 6) radix /= static_cast<long long>(5 - pos);
  }
  return with_batch_outer(sorted);
}

std::vector<nn::Dim> parallel_from_importance(const std::array<double, 6>& imp,
                                              int k) {
  std::array<int, 6> idx{0, 1, 2, 3, 4, 5};
  std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
    return imp[static_cast<std::size_t>(a)] > imp[static_cast<std::size_t>(b)];
  });
  std::vector<nn::Dim> out;
  for (int i = 0; i < std::clamp(k, 1, 6); ++i)
    out.push_back(searchable_dims()[static_cast<std::size_t>(
        idx[static_cast<std::size_t>(i)])]);
  return out;
}

std::vector<nn::Dim> parallel_from_index(double gene, int k) {
  k = std::clamp(k, 1, 6);
  long long count = 1;  // P(6, k)
  for (int i = 0; i < k; ++i) count *= 6 - i;
  gene = std::clamp(gene, 0.0, 1.0 - 1e-12);
  long long index = static_cast<long long>(gene * static_cast<double>(count));
  const auto dims = searchable_dims();
  std::vector<nn::Dim> pool(dims.begin(), dims.end());
  std::vector<nn::Dim> out;
  long long radix = count / 6;
  for (int pos = 0; pos < k; ++pos) {
    const auto pick = static_cast<std::size_t>(index / radix);
    index %= radix;
    const std::size_t safe = std::min(pick, pool.size() - 1);
    out.push_back(pool[safe]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(safe));
    if (pos + 1 < k) radix /= static_cast<long long>(pool.size());
  }
  return out;
}

std::uint64_t arch_fingerprint(const arch::ArchConfig& cfg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(cfg.num_array_dims));
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    mix(static_cast<std::uint64_t>(cfg.array_dims[static_cast<std::size_t>(a)]));
    mix(static_cast<std::uint64_t>(
        static_cast<int>(cfg.parallel_dims[static_cast<std::size_t>(a)])));
  }
  mix(static_cast<std::uint64_t>(cfg.l1_bytes));
  mix(static_cast<std::uint64_t>(cfg.l2_bytes));
  mix(static_cast<std::uint64_t>(cfg.noc_bandwidth));
  mix(static_cast<std::uint64_t>(cfg.dram_bandwidth));
  return h;
}

// ---------------------------------------------------------------------------
// HwEncodingSpec
// ---------------------------------------------------------------------------

int HwEncodingSpec::genome_size() const {
  if (!search_connectivity) return 5;  // l1, l2, bw, #PE, aspect
  // l1, l2, bw, #dims, #PE + 2 split genes, parallel choice genes
  return 7 + (parallel_encoding == OrderEncoding::kImportance ? 6 : 1);
}

arch::ArchConfig HwEncodingSpec::decode(
    const std::vector<double>& genome) const {
  arch::ArchConfig cfg;
  cfg.name = "naas";
  cfg.dram_bandwidth = resources.dram_bandwidth;
  cfg.noc_bandwidth = static_cast<int>(round_stride(
      genome[2] * resources.max_noc_bandwidth, 8));
  cfg.noc_bandwidth =
      std::clamp(cfg.noc_bandwidth, 8, resources.max_noc_bandwidth);

  // Buffer sizing happens after the array shape is known so the L1/L2
  // genes can split the *remaining* on-chip budget — this way nearly every
  // decoded sample is envelope-valid and the optimizer spends its budget
  // on quality rather than on dodging the constraint boundary.
  auto size_buffers = [this, &genome](arch::ArchConfig& c) {
    const double pes = c.num_pes();
    const double l1_cap = std::min(
        2048.0,
        std::max(64.0, static_cast<double>(resources.max_onchip_bytes) /
                           (2.0 * pes)));
    c.l1_bytes =
        round_stride(log_lerp(genome[0], 64.0, l1_cap), arch::kBufferStride);
    const double l2_cap = std::max(
        16.0 * 1024.0, static_cast<double>(resources.max_onchip_bytes) -
                           static_cast<double>(c.l1_bytes) * pes);
    c.l2_bytes = round_stride(log_lerp(genome[1], 16.0 * 1024.0, l2_cap),
                              arch::kBufferStride);
  };

  if (!search_connectivity) {
    // Sizing-only baseline: #PEs and aspect-ratio genes on the *given*
    // connectivity (the design being resized keeps its dataflow wiring).
    const int pes = static_cast<int>(round_stride(
        log_lerp(genome[3], 16.0, static_cast<double>(resources.max_pes)),
        arch::kPeStride));
    const double ratio = log_lerp(genome[4], 1.0 / 8.0, 8.0);  // rows/cols
    int rows = static_cast<int>(round_stride(
        std::sqrt(static_cast<double>(pes) * ratio), arch::kArrayDimStride));
    rows = std::max(2, rows);
    int cols = std::max(2, pes / rows);
    cols -= cols % 2;
    cols = std::max(2, cols);
    cfg.num_array_dims = 2;
    cfg.array_dims = {rows, cols, 1};
    cfg.parallel_dims = {fixed_parallel_dims[0], fixed_parallel_dims[1],
                         nn::Dim::kXp};
    // Keep the inactive third slot distinct from the active pair.
    for (nn::Dim d : searchable_dims()) {
      if (d != fixed_parallel_dims[0] && d != fixed_parallel_dims[1]) {
        cfg.parallel_dims[2] = d;
        break;
      }
    }
    size_buffers(cfg);
    return cfg;
  }

  cfg.num_array_dims = std::clamp(
      1 + static_cast<int>(genome[3] * 3.0), 1, 3);
  // Gene 4 sets the total PE count (log scale up to the envelope), genes
  // 5..6 split it across the active axes. Parameterizing the *product*
  // directly keeps the optimizer's mass near the PE budget — independent
  // per-axis sizes under a product cap would concentrate valid samples on
  // tiny arrays.
  {
    const int k = cfg.num_array_dims;
    const double total = log_lerp(
        genome[4], 8.0, static_cast<double>(resources.max_pes));
    double weights[arch::kMaxArrayDims] = {1.0, 0.0, 0.0};
    double weight_sum = 1.0;
    for (int a = 1; a < k; ++a) {
      weights[a] = 0.25 + 1.5 * genome[static_cast<std::size_t>(4 + a)];
      weight_sum += weights[a];
    }
    int product = 1;
    for (int a = 0; a < arch::kMaxArrayDims; ++a) {
      if (a >= k) {
        cfg.array_dims[static_cast<std::size_t>(a)] = 1;
        continue;
      }
      const double frac = weights[a] / weight_sum;
      const int dim = static_cast<int>(round_stride(
          std::pow(total, frac), arch::kArrayDimStride));
      cfg.array_dims[static_cast<std::size_t>(a)] = std::max(2, dim);
      product *= cfg.array_dims[static_cast<std::size_t>(a)];
    }
    // Rounding can overshoot the budget; shrink the largest axis until the
    // product fits so nearly every decode is envelope-valid.
    while (product > resources.max_pes) {
      int largest = 0;
      for (int a = 1; a < k; ++a)
        if (cfg.array_dims[static_cast<std::size_t>(a)] >
            cfg.array_dims[static_cast<std::size_t>(largest)])
          largest = a;
      int& d = cfg.array_dims[static_cast<std::size_t>(largest)];
      if (d <= 2) break;
      product /= d;
      d -= arch::kArrayDimStride;
      product *= d;
    }
  }

  std::vector<nn::Dim> par;
  if (parallel_encoding == OrderEncoding::kImportance) {
    std::array<double, 6> imp{};
    for (std::size_t i = 0; i < 6; ++i) imp[i] = genome[7 + i];
    par = parallel_from_importance(imp, cfg.num_array_dims);
  } else {
    par = parallel_from_index(genome[7], cfg.num_array_dims);
  }
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    cfg.parallel_dims[static_cast<std::size_t>(a)] =
        a < static_cast<int>(par.size())
            ? par[static_cast<std::size_t>(a)]
            : searchable_dims()[static_cast<std::size_t>(a)];
  }
  // Ensure inactive axes hold distinct dims (structural validity).
  for (int a = cfg.num_array_dims; a < arch::kMaxArrayDims; ++a) {
    for (nn::Dim d : searchable_dims()) {
      bool taken = false;
      for (int b = 0; b < a; ++b)
        taken |= cfg.parallel_dims[static_cast<std::size_t>(b)] == d;
      if (!taken) {
        cfg.parallel_dims[static_cast<std::size_t>(a)] = d;
        break;
      }
    }
  }
  size_buffers(cfg);
  return cfg;
}

bool HwEncodingSpec::valid(const std::vector<double>& genome) const {
  return resources.allows(decode(genome));
}

HwEncodingSpec make_hw_spec(const arch::ResourceConstraint& resources,
                            OrderEncoding parallel_encoding,
                            bool search_connectivity) {
  HwEncodingSpec spec;
  spec.resources = resources;
  spec.parallel_encoding = parallel_encoding;
  spec.search_connectivity = search_connectivity;
  if (!search_connectivity) {
    try {
      const arch::ArchConfig baseline = arch::baseline_for(resources);
      spec.fixed_parallel_dims = {baseline.parallel_dims[0],
                                  baseline.parallel_dims[1]};
    } catch (const std::invalid_argument&) {
      // Custom envelope: keep the NVDLA-style C x K default.
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// MapEncodingSpec
// ---------------------------------------------------------------------------

int MapEncodingSpec::genome_size() const {
  const int tiles = 12;  // 6 dram + 6 pe tile ratios
  if (!search_order) return tiles;
  const int order_genes =
      order_encoding == OrderEncoding::kImportance ? 6 : 1;
  return tiles + 3 * order_genes;  // dram order, pe order, register order
}

mapping::Mapping MapEncodingSpec::decode(const std::vector<double>& genome,
                                         const arch::ArchConfig& arch,
                                         const nn::Workload& layer) const {
  mapping::Mapping m;
  std::size_t g = 0;

  auto read_order = [&]() -> mapping::LoopOrder {
    if (order_encoding == OrderEncoding::kImportance) {
      std::array<double, 6> imp{};
      for (std::size_t i = 0; i < 6; ++i) imp[i] = genome[g + i];
      g += 6;
      return order_from_importance(imp);
    }
    return order_from_index(genome[g++]);
  };
  // Tile genes play two roles: the initial scaling ratio of each dim and
  // the priority order in which grow_to_fit hands out remaining buffer
  // capacity (higher gene => grown first). This keeps every genome in the
  // productive "buffers full" region while the genes still decide which
  // dims own the capacity.
  std::array<double, 6> dram_tile_genes{};
  std::array<double, 6> pe_tile_genes{};
  auto read_tiles = [&](auto bound_fn, std::array<double, 6>& kept_genes) {
    mapping::TileSizes tiles{1, 1, 1, 1, 1, 1, 1};
    std::size_t i = 0;
    for (nn::Dim d : searchable_dims()) {
      kept_genes[i++] = genome[g];
      const int bound = std::max(1, bound_fn(d));
      const double t = log_lerp(genome[g++], 1.0, static_cast<double>(bound));
      mapping::set_tile(tiles, d,
                        std::clamp(static_cast<int>(std::lround(t)), 1, bound));
    }
    mapping::set_tile(tiles, nn::Dim::kN, layer.dim_size(nn::Dim::kN));
    return tiles;
  };
  // Growth priority: dims sorted by their tile gene, N last.
  auto growth_priority = [](const std::array<double, 6>& genes) {
    mapping::LoopOrder order = order_from_importance(genes);
    std::rotate(order.begin(), order.begin() + 1, order.end());  // N to back
    return order;
  };

  if (search_order) {
    m.dram.order = read_order();
  } else {
    m.dram.order = mapping::canonical_order(fixed_dataflow);
  }
  m.dram.tile = read_tiles([&](nn::Dim d) { return layer.dim_size(d); },
                           dram_tile_genes);

  if (search_order) {
    m.pe.order = read_order();
  } else {
    m.pe.order = mapping::canonical_order(fixed_dataflow);
  }
  m.pe.tile = read_tiles(
      [&](nn::Dim d) { return mapping::pe_share(layer, arch, m.dram.tile, d); },
      pe_tile_genes);

  m.pe_order = search_order ? read_order()
                            : mapping::canonical_order(fixed_dataflow);

  m = mapping::repair(std::move(m), layer, arch);
  if (!grow_tiles) return m;
  return mapping::grow_to_fit(std::move(m), layer, arch,
                              growth_priority(dram_tile_genes),
                              growth_priority(pe_tile_genes));
}

}  // namespace naas::search
