#include "fleet/router.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "arch/accelerator.hpp"
#include "core/fault.hpp"
#include "core/serialize.hpp"
#include "nn/layer.hpp"
#include "nn/model_zoo.hpp"
#include "search/encoding.hpp"
#include "search/result_store.hpp"
#include "serve/protocol.hpp"

namespace naas::fleet {

namespace {

constexpr const char* kPingLine = "{\"id\":null,\"method\":\"ping\"}";
constexpr const char* kRefreshLine = "{\"id\":null,\"method\":\"refresh\"}";

bool parse_port(const std::string& text, int* port) {
  if (text.empty() || text.size() > 5) return false;
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < 1 || value > 65535) return false;
  *port = value;
  return true;
}

}  // namespace

bool parse_worker_list(const std::string& spec, std::vector<WorkerAddr>* out,
                       std::string* err) {
  out->clear();
  if (spec.empty()) {
    if (err) *err = "empty worker list";
    return false;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    WorkerAddr addr;
    const std::size_t colon = item.rfind(':');
    const std::string host =
        colon == std::string::npos ? "" : item.substr(0, colon);
    const std::string port_text =
        colon == std::string::npos ? item : item.substr(colon + 1);
    if (!host.empty()) addr.host = host;
    if (!parse_port(port_text, &addr.port)) {
      if (err) *err = "bad worker address '" + item + "' (want host:port)";
      out->clear();
      return false;
    }
    out->push_back(std::move(addr));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.workers.size(), options_.vnodes) {
  workers_.reserve(options_.workers.size());
  for (const WorkerAddr& addr : options_.workers) {
    auto w = std::make_unique<Worker>();
    w->addr = addr;
    workers_.push_back(std::move(w));
  }
  if (options_.ping_interval_ms > 0) {
    health_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lk(health_mutex_);
      while (!health_stop_) {
        health_cv_.wait_for(
            lk, std::chrono::milliseconds(options_.ping_interval_ms));
        if (health_stop_) break;
        lk.unlock();
        probe_now();
        lk.lock();
      }
    });
  }
}

Router::~Router() {
  if (health_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(health_mutex_);
      health_stop_ = true;
    }
    health_cv_.notify_all();
    health_thread_.join();
  }
}

search::StoreStatus Router::refresh() { return search::StoreStatus::kOk; }

const nn::Network* Router::resolve_network(const std::string& name,
                                           std::string* err) {
  const auto it = network_memo_.find(name);
  if (it != network_memo_.end()) return &it->second;
  try {
    return &network_memo_.emplace(name, nn::make_network(name)).first->second;
  } catch (const std::invalid_argument& e) {
    *err = e.what();
    return nullptr;
  }
}

std::uint64_t Router::route_key(const std::string& line, Slot* slot) {
  // Fallback key for anything the router cannot interpret: those lines
  // get responses that are pure functions of their bytes (parse_error,
  // bad_request, unknown_method — identical from every worker), so
  // placement only needs determinism, not affinity.
  const std::uint64_t fallback = core::fnv1a64(line);
  std::string perr;
  const serve::Json req = serve::Json::parse(line, &perr);
  if (!perr.empty() || !req.is_object()) return fallback;
  if (const serve::Json* id = req.get("id")) slot->id = *id;
  const serve::Json* method = req.get("method");
  if (!method || !method->is_string()) return fallback;
  const std::string& m = method->as_string();
  if (m == "ping" || m == "cache_stats" || m == "refresh" ||
      m == "pull_store") {
    slot->local = true;
    slot->method = m;
    return 0;
  }
  std::string err;
  const serve::NetworkResolver resolver =
      [this](const std::string& name, std::string* resolve_err) {
        return resolve_network(name, resolve_err);
      };
  if (m == "search_mapping" || m == "evaluate_mapping") {
    const serve::Json* arch = req.get("arch");
    const serve::Json* layer = req.get("layer");
    arch::ArchConfig cfg;
    nn::Workload wl;
    if (arch && layer && serve::arch_from_json(*arch, &cfg, &err) &&
        serve::layer_from_json(*layer, &wl, &err, resolver)) {
      slot->keyed = true;
      return core::hash_mix(search::arch_fingerprint(cfg),
                            nn::LayerShapeHash{}(wl));
    }
    return fallback;
  }
  if (m == "evaluate_network") {
    const serve::Json* arch = req.get("arch");
    const serve::Json* network = req.get("network");
    arch::ArchConfig cfg;
    if (arch && network && network->is_string() &&
        serve::arch_from_json(*arch, &cfg, &err)) {
      slot->keyed = true;
      return core::hash_mix(search::arch_fingerprint(cfg),
                            core::fnv1a64(network->as_string()));
    }
    return fallback;
  }
  return fallback;
}

serve::Json Router::local_response(const serve::Json& id,
                                   const std::string& method) {
  if (method == "ping") {
    serve::Json result = serve::Json::object();
    result.set("pong", serve::Json::boolean(true));
    return serve::ok_response(id, std::move(result));
  }
  if (method == "cache_stats")
    return serve::ok_response(id, router_stats_json());
  if (method == "refresh") return serve::ok_response(id, broadcast_refresh());
  // pull_store reports a *worker's* live store snapshot; the router has
  // none, and silently proxying an arbitrary worker's would mislabel
  // whose entries they are. Replicators pull from workers directly.
  return serve::error_response(
      id, serve::kErrBadRequest,
      "'pull_store' is worker-local; pull from a worker address directly");
}

serve::Json Router::router_stats_json() {
  RouterStats s = stats();
  serve::Json obj = serve::Json::object();
  obj.set("router", serve::Json::boolean(true));
  obj.set("workers", serve::Json::integer(
                         static_cast<std::int64_t>(workers_.size())));
  obj.set("workers_up",
          serve::Json::integer(static_cast<std::int64_t>(workers_up())));
  obj.set("batches", serve::Json::integer(s.batches));
  obj.set("lines", serve::Json::integer(s.lines));
  obj.set("groups_forwarded", serve::Json::integer(s.groups_forwarded));
  obj.set("forward_attempts", serve::Json::integer(s.forward_attempts));
  obj.set("forward_failures", serve::Json::integer(s.forward_failures));
  obj.set("failovers", serve::Json::integer(s.failovers));
  obj.set("degraded_lines", serve::Json::integer(s.degraded_lines));
  obj.set("local_lines", serve::Json::integer(s.local_lines));
  obj.set("unroutable_lines", serve::Json::integer(s.unroutable_lines));
  obj.set("pings_ok", serve::Json::integer(s.pings_ok));
  obj.set("ping_failures", serve::Json::integer(s.ping_failures));
  obj.set("reconnects", serve::Json::integer(s.reconnects));
  obj.set("workers_marked_down",
          serve::Json::integer(s.workers_marked_down));
  obj.set("requests_shed", serve::Json::integer(requests_shed_.load()));
  obj.set("requests_timed_out",
          serve::Json::integer(requests_timed_out_.load()));
  obj.set("protocol_rejects",
          serve::Json::integer(protocol_rejects_.load()));
  return obj;
}

serve::Json Router::broadcast_refresh() {
  long long refreshed = 0;
  for (auto& wp : workers_) {
    Worker& w = *wp;
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!ensure_connected_locked(w)) continue;
    std::string resp;
    if (w.client.send_line(kRefreshLine) &&
        w.client.read_line(&resp, options_.forward_timeout_ms)) {
      ++refreshed;
    } else {
      mark_down_locked(w);
    }
  }
  serve::Json result = serve::Json::object();
  result.set("workers", serve::Json::integer(
                            static_cast<std::int64_t>(workers_.size())));
  result.set("refreshed", serve::Json::integer(refreshed));
  return result;
}

bool Router::ensure_connected_locked(Worker& w) {
  if (w.up && w.client.connected()) return true;
  if (Clock::now() < w.next_reconnect) return false;
  std::string err;
  if (!w.client.connect(w.addr.host, w.addr.port, options_.connect_timeout_ms,
                        &err)) {
    w.up = false;
    w.backoff_ms = w.backoff_ms == 0
                       ? options_.reconnect_backoff_ms
                       : std::min(w.backoff_ms * 2,
                                  options_.reconnect_backoff_cap_ms);
    w.next_reconnect =
        Clock::now() + std::chrono::milliseconds(w.backoff_ms);
    return false;
  }
  // Client-wide receive cap: even a generous caller timeout can never
  // outwait the per-forward deadline on this connection.
  w.client.set_recv_deadline_ms(options_.forward_timeout_ms);
  w.up = true;
  w.backoff_ms = 0;
  w.next_reconnect = Clock::time_point{};
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ++stats_.reconnects;
  }
  return true;
}

void Router::mark_down_locked(Worker& w) {
  if (w.up) {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ++stats_.workers_marked_down;
  }
  w.up = false;
  w.client.close();
  w.backoff_ms = w.backoff_ms == 0
                     ? options_.reconnect_backoff_ms
                     : std::min(w.backoff_ms * 2,
                                options_.reconnect_backoff_cap_ms);
  w.next_reconnect = Clock::now() + std::chrono::milliseconds(w.backoff_ms);
}

bool Router::forward_group_locked(Worker& w,
                                  const std::vector<std::size_t>& members,
                                  const std::vector<std::string>& lines,
                                  std::vector<Slot>& slots) {
  if (core::fault("router_forward_fail")) {
    mark_down_locked(w);
    return false;
  }
  // A stalled forward sends nothing: the read below then eats the whole
  // per-forward deadline — the deterministic stand-in for a worker that
  // accepted the bytes and hung.
  const bool stall = core::fault("router_forward_stall");
  if (!stall) {
    for (const std::size_t idx : members) {
      if (!w.client.send_line(lines[idx])) {
        mark_down_locked(w);
        return false;
      }
    }
  }
  // Responses come back in request order on this connection (the server's
  // pipelining contract), so the k-th line answers the k-th member.
  // Collect into a staging buffer and commit only when the whole group
  // answered: a mid-group failure retries the *entire* group elsewhere,
  // and a half-committed group must not leave stale bytes behind.
  std::vector<std::string> staged(members.size());
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.forward_timeout_ms);
  for (std::size_t k = 0; k < members.size(); ++k) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0 || !w.client.read_line(&staged[k], static_cast<int>(left))) {
      mark_down_locked(w);
      return false;
    }
  }
  for (std::size_t k = 0; k < members.size(); ++k) {
    Slot& s = slots[members[k]];
    s.response = std::move(staged[k]);
    s.done = true;
  }
  return true;
}

std::vector<std::string> Router::handle_lines(
    const std::vector<std::string>& lines) {
  std::vector<Slot> slots(lines.size());
  long long local_count = 0;
  long long unroutable = 0;
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Slot& s = slots[i];
    s.key = route_key(lines[i], &s);
    if (s.local) {
      s.response = local_response(s.id, s.method).dump();
      s.done = true;
      ++local_count;
      continue;
    }
    if (!s.keyed) ++unroutable;
    s.prefs = ring_.preference(s.key);
    pending.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ++stats_.batches;
    stats_.lines += static_cast<long long>(lines.size());
    stats_.local_lines += local_count;
    stats_.unroutable_lines += unroutable;
  }

  const std::size_t max_attempts = std::min<std::size_t>(
      workers_.size(),
      options_.max_forward_attempts < 1
          ? 1
          : static_cast<std::size_t>(options_.max_forward_attempts));

  while (!pending.empty()) {
    // Group the round's lines by their current failover candidate; lines
    // out of attempts get their degraded answer now.
    std::map<std::size_t, std::vector<std::size_t>> groups;
    for (const std::size_t idx : pending) {
      Slot& s = slots[idx];
      if (s.attempt >= max_attempts) {
        s.response =
            serve::error_response(
                s.id, serve::kErrDegraded,
                "no live worker for this request's shard after " +
                    std::to_string(s.attempt) +
                    " attempts; the request was not evaluated and is safe "
                    "to resubmit")
                .dump();
        s.done = true;
        std::lock_guard<std::mutex> lk(stats_mutex_);
        ++stats_.degraded_lines;
        continue;
      }
      groups[s.prefs[s.attempt]].push_back(idx);
    }
    if (groups.empty()) break;

    // Send pass: lock every candidate worker (ascending index — only this
    // thread ever holds several; the health thread try_locks) and push the
    // group's lines, so all workers evaluate concurrently...
    struct Attempt {
      std::size_t worker;
      const std::vector<std::size_t>* members;
      std::unique_lock<std::mutex> lock;
      bool ok = false;
    };
    std::vector<Attempt> attempts;
    attempts.reserve(groups.size());
    for (auto& [widx, members] : groups) {
      Attempt a{widx, &members,
                std::unique_lock<std::mutex>(workers_[widx]->mutex)};
      {
        std::lock_guard<std::mutex> lk(stats_mutex_);
        ++stats_.forward_attempts;
      }
      Worker& w = *workers_[widx];
      a.ok = ensure_connected_locked(w);
      attempts.push_back(std::move(a));
    }
    // ...then the read pass drains each group in turn. forward_group
    // resends nothing: a group whose connect failed is charged one
    // attempt and retried next round on its lines' next ring workers.
    for (Attempt& a : attempts) {
      Worker& w = *workers_[a.worker];
      const bool forwarded =
          a.ok && forward_group_locked(w, *a.members, lines, slots);
      std::lock_guard<std::mutex> lk(stats_mutex_);
      if (forwarded) {
        ++stats_.groups_forwarded;
        for (const std::size_t idx : *a.members) {
          if (slots[idx].attempt > 0) ++stats_.failovers;
        }
      } else {
        ++stats_.forward_failures;
        for (const std::size_t idx : *a.members) ++slots[idx].attempt;
      }
    }

    std::vector<std::size_t> next;
    for (const std::size_t idx : pending) {
      if (!slots[idx].done) next.push_back(idx);
    }
    pending = std::move(next);
  }

  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (Slot& s : slots) responses.push_back(std::move(s.response));
  return responses;
}

void Router::probe_now() {
  for (auto& wp : workers_) {
    Worker& w = *wp;
    std::unique_lock<std::mutex> lock(w.mutex, std::try_to_lock);
    // A busy worker is mid-forward; that path surfaces its own failures.
    if (!lock.owns_lock()) continue;
    if (!w.up) {
      ensure_connected_locked(w);
      continue;
    }
    bool ok = !core::fault("router_ping_fail");
    std::string resp;
    if (ok) ok = w.client.send_line(kPingLine);
    if (ok) ok = w.client.read_line(&resp, options_.ping_timeout_ms);
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      if (ok) {
        ++stats_.pings_ok;
      } else {
        ++stats_.ping_failures;
      }
    }
    if (!ok) mark_down_locked(w);
  }
}

bool Router::worker_up(std::size_t i) const {
  Worker& w = *workers_[i];
  std::lock_guard<std::mutex> lock(w.mutex);
  return w.up;
}

std::size_t Router::workers_up() const {
  std::size_t up = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (worker_up(i)) ++up;
  }
  return up;
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

}  // namespace naas::fleet
