#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/router.hpp"
#include "serve/line_handler.hpp"
#include "serve/service.hpp"

namespace naas::fleet {

struct ReplicatorOptions {
  /// Peer workers to pull from (typically the rest of the fleet).
  std::vector<WorkerAddr> peers;
  int connect_timeout_ms = 2000;
  int fetch_timeout_ms = 15000;
};

struct ReplicatorStats {
  long long pulls = 0;            ///< pull_once calls
  long long peer_fetches = 0;     ///< per-peer fetch attempts
  long long fetch_failures = 0;   ///< connect/send/recv/protocol failures
  long long torn_fetches = 0;     ///< payloads decode rejected or salvaged
  long long entries_adopted = 0;  ///< entries actually new to the cache
  long long bytes_fetched = 0;    ///< decoded store bytes received
};

/// Pull-based peer segment replication — how a SIGKILLed-and-restarted
/// worker re-warms without redoing a single mapping search. Each pull
/// asks every peer for its live result-store snapshot (the `pull_store`
/// protocol method: ResultStore::encode hex-armored into a line), decodes
/// it through the same magic/version/checksum gauntlet as an on-disk
/// store — so a torn or corrupted transfer is salvaged or rejected, never
/// adopted wrong — and feeds the entries to EvalService::adopt_entries,
/// where existing keys win and newcomers get fresh sequence numbers (the
/// next refresh persists them to this worker's own store; replication is
/// durable, not session-only).
///
/// Pulling is the deliberately boring direction: peers need no membership
/// view, no push retry queues, and no failure handling for a dead
/// recipient — a puller that dies simply stops asking. Fault site
/// `repl_fetch_torn` truncates a fetched payload mid-segment to prove the
/// decode gauntlet holds.
class Replicator {
 public:
  explicit Replicator(ReplicatorOptions options);

  /// One pull pass over all peers; returns entries adopted. Unreachable
  /// peers are counted and skipped — replication is opportunistic, the
  /// worker serves (cold for the misses) either way.
  std::size_t pull_once(serve::EvalService& service);

  const ReplicatorStats& stats() const { return stats_; }

 private:
  std::size_t pull_peer(const WorkerAddr& peer, serve::EvalService& service);

  ReplicatorOptions options_;
  ReplicatorStats stats_;
};

/// LineHandler wrapper that gives an EvalService periodic peer pulls: one
/// at every `pull_every_refreshes`-th refresh() (the transport's refresh
/// cadence — no extra thread, and the pull runs on the eval thread, which
/// is exactly the thread adopt_entries requires). Boot-time warm-up is
/// the caller's pull_now() call before serving starts.
class ReplicatedService : public serve::LineHandler {
 public:
  ReplicatedService(serve::EvalService& service, ReplicatorOptions options,
                    long long pull_every_refreshes);

  std::vector<std::string> handle_lines(
      const std::vector<std::string>& lines) override {
    return service_.handle_lines(lines);
  }

  search::StoreStatus refresh() override;

  void note_shed() override { service_.note_shed(); }
  void note_timeout() override { service_.note_timeout(); }
  void note_protocol_reject() override { service_.note_protocol_reject(); }

  /// Immediate pull pass; returns entries adopted.
  std::size_t pull_now() { return replicator_.pull_once(service_); }

  const Replicator& replicator() const { return replicator_; }

 private:
  serve::EvalService& service_;
  Replicator replicator_;
  long long pull_every_;
  long long refreshes_since_pull_ = 0;
};

}  // namespace naas::fleet
