#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/hash_ring.hpp"
#include "net/client.hpp"
#include "nn/network.hpp"
#include "serve/json.hpp"
#include "serve/line_handler.hpp"

namespace naas::fleet {

/// One evaluator worker's address (a naas_serve --listen process).
struct WorkerAddr {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parses "host:port,host:port,..." (host optional: ":9000" and "9000"
/// mean 127.0.0.1). False + `*err` on malformed input.
bool parse_worker_list(const std::string& spec, std::vector<WorkerAddr>* out,
                       std::string* err);

struct RouterOptions {
  std::vector<WorkerAddr> workers;  ///< at least one
  /// Ring points per worker (~64 keeps shard imbalance under a few %).
  std::size_t vnodes = 64;
  int connect_timeout_ms = 2000;
  /// Total per-forward deadline: one group of lines must be fully sent
  /// *and* answered within this budget or the attempt fails over.
  int forward_timeout_ms = 15000;
  /// Distinct workers tried per line (primary + failovers) before the
  /// router gives up and answers `degraded`.
  int max_forward_attempts = 3;
  /// Health-check cadence (0 = no background thread; probes still happen
  /// inline on the forward path and via probe_now()).
  long long ping_interval_ms = 0;
  int ping_timeout_ms = 1000;
  /// Reconnect backoff after a worker is marked down: base doubles per
  /// consecutive failure up to the cap; while the backoff clock runs the
  /// worker is skipped instantly instead of re-paying connect timeouts.
  long long reconnect_backoff_ms = 50;
  long long reconnect_backoff_cap_ms = 2000;
};

/// Router-level counters (the workers' own meters live in their
/// cache_stats). Guarded by an internal mutex; read via cache_stats or
/// after serving stops.
struct RouterStats {
  long long batches = 0;
  long long lines = 0;
  long long groups_forwarded = 0;   ///< group attempts that succeeded
  long long forward_attempts = 0;   ///< group attempts, incl. failures
  long long forward_failures = 0;
  long long failovers = 0;          ///< lines answered by a non-primary
  long long degraded_lines = 0;     ///< lines answered `degraded`
  long long local_lines = 0;        ///< ping/cache_stats/refresh, answered here
  long long unroutable_lines = 0;   ///< fell back to raw-line hash keys
  long long pings_ok = 0;
  long long ping_failures = 0;
  long long reconnects = 0;
  long long workers_marked_down = 0;
};

/// Consistent-hash sharding front end for a fleet of evaluator workers —
/// the serving layer's scale-out story. Implements serve::LineHandler, so
/// the stock serve::Server (or the stdin driver) can front it unchanged:
/// clients speak the exact single-service line protocol to the router and
/// cannot tell N workers from one, byte for byte.
///
/// Routing: each request line's *work-unit key* — hash of (arch
/// fingerprint, layer shape) for search_mapping / evaluate_mapping, (arch
/// fingerprint, network name) for evaluate_network — pins it to a worker
/// via the HashRing, so repeats of a work unit land on the same warm
/// cache. Lines the router cannot key (parse errors, bad requests,
/// unknown methods) hash their raw bytes instead: their responses are
/// pure functions of the line, identical from every worker, so placement
/// is free. ping / cache_stats / refresh are answered by the router
/// itself (ping => liveness of the *router*; cache_stats => RouterStats;
/// refresh => broadcast to every live worker).
///
/// Robustness: a batch is split per owning worker and forwarded over
/// pooled connections — one send pass across all groups, then one read
/// pass, so workers evaluate concurrently. Any failure (connect refused,
/// send/recv error, per-forward deadline, injected fault) marks the
/// worker down, arms exponential-backoff reconnect, and *fails the whole
/// group over* to each line's next distinct ring worker — safe because
/// evaluation responses are pure and idempotent, so a retried line can
/// never double-apply. Only when every permitted attempt is exhausted
/// does a line get a structured `degraded` error (serve::kErrDegraded):
/// requests are never silently lost and never answered wrongly.
///
/// Fault sites (core::FaultInjector): router_forward_fail (attempt dies
/// pre-send), router_forward_stall (nothing is sent; the read pass eats
/// the forward deadline), router_ping_fail (health probe fails).
///
/// Threading: handle_lines and probe_now may race only through the
/// per-worker mutexes (the health thread try_locks and skips busy
/// workers). Drive handle_lines from one thread, exactly like
/// EvalService.
class Router : public serve::LineHandler {
 public:
  explicit Router(RouterOptions options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::vector<std::string> handle_lines(
      const std::vector<std::string>& lines) override;

  /// LineHandler refresh hook: a no-op — workers own their stores and
  /// their refresh cadence. (A client-sent {"method":"refresh"} line *is*
  /// broadcast to live workers; this is the transport-driven hook.)
  search::StoreStatus refresh() override;

  void note_shed() override { requests_shed_.fetch_add(1); }
  void note_timeout() override { requests_timed_out_.fetch_add(1); }
  void note_protocol_reject() override { protocol_rejects_.fetch_add(1); }

  /// One synchronous health pass over all workers: live ones are pinged
  /// (down on failure), down ones attempt reconnect once their backoff
  /// expires. The health thread calls this on its cadence; tests call it
  /// directly.
  void probe_now();

  bool worker_up(std::size_t i) const;
  std::size_t workers_up() const;
  std::size_t num_workers() const { return workers_.size(); }
  const HashRing& ring() const { return ring_; }
  RouterStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Worker {
    WorkerAddr addr;
    std::mutex mutex;  ///< guards everything below
    net::LineClient client;
    bool up = false;
    long long backoff_ms = 0;
    Clock::time_point next_reconnect{};  ///< epoch => due immediately
  };

  /// One request line in flight through the routing pipeline.
  struct Slot {
    serve::Json id;              ///< parsed id (null if unparseable)
    std::string method;          ///< set for locally answered methods
    std::uint64_t key = 0;
    bool local = false;          ///< answered by the router itself
    bool keyed = false;          ///< true work-unit key (vs raw-line hash)
    bool done = false;
    std::string response;
    std::vector<std::size_t> prefs;  ///< failover order (ring preference)
    std::size_t attempt = 0;         ///< index into prefs
  };

  std::uint64_t route_key(const std::string& line, Slot* slot);
  const nn::Network* resolve_network(const std::string& name,
                                     std::string* err);
  serve::Json local_response(const serve::Json& id, const std::string& method);
  serve::Json router_stats_json();
  serve::Json broadcast_refresh();

  /// With w.mutex held: true when the worker is connected (reconnecting
  /// if due). False marks/leaves it down.
  bool ensure_connected_locked(Worker& w);
  void mark_down_locked(Worker& w);
  /// With w.mutex held: sends every line, then reads one response per
  /// line within the forward deadline. False => worker marked down.
  bool forward_group_locked(Worker& w,
                            const std::vector<std::size_t>& members,
                            const std::vector<std::string>& lines,
                            std::vector<Slot>& slots);

  RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex stats_mutex_;
  RouterStats stats_;

  std::unordered_map<std::string, nn::Network> network_memo_;

  std::atomic<long long> requests_shed_{0};
  std::atomic<long long> requests_timed_out_{0};
  std::atomic<long long> protocol_rejects_{0};

  std::thread health_thread_;
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;
};

}  // namespace naas::fleet
