#include "fleet/replicator.hpp"

#include <utility>

#include "core/fault.hpp"
#include "core/serialize.hpp"
#include "net/client.hpp"
#include "search/result_store.hpp"
#include "serve/json.hpp"

namespace naas::fleet {

Replicator::Replicator(ReplicatorOptions options)
    : options_(std::move(options)) {}

std::size_t Replicator::pull_once(serve::EvalService& service) {
  ++stats_.pulls;
  std::size_t adopted = 0;
  for (const WorkerAddr& peer : options_.peers) {
    adopted += pull_peer(peer, service);
  }
  return adopted;
}

std::size_t Replicator::pull_peer(const WorkerAddr& peer,
                                  serve::EvalService& service) {
  ++stats_.peer_fetches;
  net::LineClient client;
  std::string err;
  if (!client.connect(peer.host, peer.port, options_.connect_timeout_ms,
                      &err)) {
    ++stats_.fetch_failures;
    return 0;
  }
  client.set_recv_deadline_ms(options_.fetch_timeout_ms);
  std::string resp_line;
  if (!client.send_line("{\"id\":null,\"method\":\"pull_store\"}") ||
      !client.read_line(&resp_line, options_.fetch_timeout_ms)) {
    ++stats_.fetch_failures;
    return 0;
  }
  std::string perr;
  const serve::Json resp = serve::Json::parse(resp_line, &perr);
  const serve::Json* ok = resp.get("ok");
  const serve::Json* result = resp.get("result");
  if (!perr.empty() || !ok || !ok->as_bool() || !result) {
    ++stats_.fetch_failures;
    return 0;
  }
  const serve::Json* format = result->get("format");
  const serve::Json* data = result->get("data");
  if (!format || format->as_string() != "naasmaps-hex" || !data ||
      !data->is_string()) {
    ++stats_.fetch_failures;
    return 0;
  }
  std::string bytes;
  if (!core::from_hex(data->as_string(), &bytes)) {
    ++stats_.fetch_failures;
    return 0;
  }
  // Deterministic torn transfer: drop the tail mid-segment and let the
  // decode gauntlet prove it salvages or rejects, never adopts garbage.
  if (core::fault("repl_fetch_torn")) bytes.resize(bytes.size() / 2);
  search::StoreLoadResult load =
      search::ResultStore::decode(bytes.data(), bytes.size());
  if (load.status != search::StoreStatus::kOk) ++stats_.torn_fetches;
  stats_.bytes_fetched += static_cast<long long>(bytes.size());
  const std::size_t adopted = service.adopt_entries(std::move(load.entries));
  stats_.entries_adopted += static_cast<long long>(adopted);
  return adopted;
}

ReplicatedService::ReplicatedService(serve::EvalService& service,
                                     ReplicatorOptions options,
                                     long long pull_every_refreshes)
    : service_(service),
      replicator_(std::move(options)),
      pull_every_(pull_every_refreshes) {}

search::StoreStatus ReplicatedService::refresh() {
  const search::StoreStatus status = service_.refresh();
  if (pull_every_ > 0 && ++refreshes_since_pull_ >= pull_every_) {
    refreshes_since_pull_ = 0;
    pull_now();
  }
  return status;
}

}  // namespace naas::fleet
