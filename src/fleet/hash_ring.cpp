#include "fleet/hash_ring.hpp"

#include <algorithm>

namespace naas::fleet {

namespace {

/// Ring-point and key hashes draw from distinct tagged streams so a key
/// can never collide with "its own" point by construction quirk.
constexpr std::uint64_t kPointTag = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kKeyTag = 0xc2b2ae3d27d4eb4full;

/// splitmix64 finalizer. The ring needs full avalanche — worker/vnode
/// indices and cache keys are small or structured integers, and the
/// codebase's boost-style core::hash_mix (fine for *distinguishing* keys)
/// clusters such inputs into one arc of the ring, which would hand the
/// whole keyspace to one worker.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t num_workers, std::size_t vnodes)
    : num_workers_(num_workers) {
  if (vnodes == 0) vnodes = 1;
  points_.reserve(num_workers * vnodes);
  for (std::size_t w = 0; w < num_workers; ++w) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::uint64_t h =
          mix64(kPointTag ^ (static_cast<std::uint64_t>(w) << 32) ^ v);
      points_.push_back({h, static_cast<std::uint32_t>(w)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.worker < b.worker;
            });
}

std::size_t HashRing::home_index(std::uint64_t key) const {
  const std::uint64_t h = mix64(kKeyTag ^ key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  return it == points_.end() ? 0 : static_cast<std::size_t>(
                                       it - points_.begin());
}

std::size_t HashRing::owner(std::uint64_t key) const {
  return points_[home_index(key)].worker;
}

std::vector<std::size_t> HashRing::preference(std::uint64_t key) const {
  std::vector<std::size_t> order;
  order.reserve(num_workers_);
  std::vector<bool> seen(num_workers_, false);
  const std::size_t start = home_index(key);
  for (std::size_t i = 0; i < points_.size() && order.size() < num_workers_;
       ++i) {
    const std::uint32_t w = points_[(start + i) % points_.size()].worker;
    if (!seen[w]) {
      seen[w] = true;
      order.push_back(w);
    }
  }
  return order;
}

}  // namespace naas::fleet
