#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace naas::fleet {

/// Consistent-hash ring over `num_workers` evaluator shards. Each worker
/// owns `vnodes` pseudo-random points on a 64-bit ring; a work-unit key
/// belongs to the first point clockwise from its hash. Virtual nodes keep
/// the keyspace split near-uniform (stddev shrinks with sqrt(vnodes)) and
/// — the property the fleet actually buys this structure for — make
/// membership changes *local*: when a worker dies, only the keys it owned
/// move, each to the next surviving point, instead of the modulo-hash
/// behavior of reshuffling almost every key (and thereby going cold on
/// almost every warm cache in the fleet).
///
/// The ring is immutable after construction and encodes the *configured*
/// fleet, not liveness: the router consults `preference()` — every
/// distinct worker in ring order from the key's home — and skips the dead
/// ones, so failover order is a pure function of (key, fleet shape) and a
/// restarted worker reclaims exactly its old keys.
class HashRing {
 public:
  /// `vnodes` points per worker (>= 1; callers pass ~64 for <2% imbalance).
  HashRing(std::size_t num_workers, std::size_t vnodes);

  std::size_t num_workers() const { return num_workers_; }

  /// The worker owning `key`: first ring point at or clockwise from
  /// hash(key).
  std::size_t owner(std::uint64_t key) const;

  /// All `num_workers()` distinct workers in ring order starting at
  /// owner(key) — the failover sequence for `key`.
  std::vector<std::size_t> preference(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t worker;
  };
  /// Index into points_ of the first point at or after hash(key).
  std::size_t home_index(std::uint64_t key) const;

  std::size_t num_workers_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace naas::fleet
