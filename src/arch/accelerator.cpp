#include "arch/accelerator.hpp"

#include <sstream>

namespace naas::arch {

int ArchConfig::num_pes() const {
  int pes = 1;
  for (int axis = 0; axis < num_array_dims; ++axis)
    pes *= array_dims[static_cast<std::size_t>(axis)];
  return pes;
}

long long ArchConfig::onchip_bytes() const {
  return l2_bytes + l1_bytes * num_pes();
}

bool ArchConfig::is_parallel(nn::Dim d) const {
  for (int axis = 0; axis < num_array_dims; ++axis)
    if (parallel_dims[static_cast<std::size_t>(axis)] == d) return true;
  return false;
}

int ArchConfig::parallel_extent(nn::Dim d) const {
  int extent = 1;
  for (int axis = 0; axis < num_array_dims; ++axis)
    if (parallel_dims[static_cast<std::size_t>(axis)] == d)
      extent *= array_dims[static_cast<std::size_t>(axis)];
  return extent;
}

bool ArchConfig::valid() const {
  if (num_array_dims < 1 || num_array_dims > kMaxArrayDims) return false;
  for (int axis = 0; axis < num_array_dims; ++axis)
    if (array_dims[static_cast<std::size_t>(axis)] < 1) return false;
  // Active parallel dims must be distinct (the importance-based decoder
  // picks the top-k distinct dims; duplicated bindings are malformed).
  for (int a = 0; a < num_array_dims; ++a)
    for (int b = a + 1; b < num_array_dims; ++b)
      if (parallel_dims[static_cast<std::size_t>(a)] ==
          parallel_dims[static_cast<std::size_t>(b)])
        return false;
  return l1_bytes > 0 && l2_bytes > 0 && noc_bandwidth > 0 &&
         dram_bandwidth > 0;
}

std::string ArchConfig::to_string() const {
  std::ostringstream os;
  os << name << ": ";
  for (int axis = 0; axis < num_array_dims; ++axis) {
    if (axis) os << 'x';
    os << array_dims[static_cast<std::size_t>(axis)];
  }
  os << ' ';
  for (int axis = 0; axis < num_array_dims; ++axis) {
    if (axis) os << '-';
    os << nn::dim_name(parallel_dims[static_cast<std::size_t>(axis)]);
  }
  os << " parallel | L1 " << l1_bytes << "B L2 " << l2_bytes / 1024
     << "KB noc " << noc_bandwidth << " dram " << dram_bandwidth << " ("
     << num_pes() << " PEs)";
  return os.str();
}

}  // namespace naas::arch
