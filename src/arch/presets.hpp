#pragma once

#include <vector>

#include "arch/accelerator.hpp"
#include "arch/resources.hpp"

namespace naas::arch {

/// Canonical dataflow families used for baseline accelerators and for
/// fixed-order ablations (Fig. 8's "architectural sizing only").
enum class Dataflow {
  kWeightStationary,   ///< NVDLA/EdgeTPU style: C x K parallel, X'/Y' stream
  kOutputStationary,   ///< ShiDianNao style: X' x Y' parallel, C/R/S inner
  kRowStationary,      ///< Eyeriss style: R x Y' parallel
};

/// Name of a dataflow family ("weight-stationary", ...).
const char* dataflow_name(Dataflow df);

/// Native dataflow of a baseline accelerator preset.
Dataflow native_dataflow(const ArchConfig& cfg);

/// Baseline accelerator design points (the silicon the paper compares
/// against), expressed in our ArchConfig form with their native parallel
/// dimension bindings:
///   EdgeTPU   64x64 systolic, C x K (weight stationary), 8 MiB on-chip
///   NVDLA     32x32 (1024 MACs) or 16x16 (256), C x K, weight stationary
///   Eyeriss   12x14, R x Y' (row stationary)
///   ShiDianNao 8x8, X' x Y' (output stationary)
ArchConfig edge_tpu_arch();
ArchConfig nvdla_1024_arch();
ArchConfig nvdla_256_arch();
ArchConfig eyeriss_arch();
ArchConfig shidiannao_arch();

/// Baseline arch for an envelope name; throws std::invalid_argument if the
/// name is not one of the five presets.
ArchConfig baseline_for(const ResourceConstraint& rc);

}  // namespace naas::arch
