#pragma once

#include <array>
#include <string>

#include "nn/layer.hpp"

namespace naas::arch {

/// Maximum number of spatial array dimensions (the paper searches 1D, 2D,
/// and 3D compute arrays).
inline constexpr int kMaxArrayDims = 3;

/// A complete accelerator design point: the paper's hardware encoding
/// vector (Fig. 2) decoded into a concrete configuration.
///
/// Architectural sizing: #PEs (implied by the array shape), L1/L2 scratch
/// pad sizes, NoC bandwidth. Connectivity parameters: number of array
/// dimensions, per-dimension sizes, and the tensor dimension each array
/// axis parallelizes (which fixes the PE inter-connection pattern: a
/// reduction dimension implies psum forwarding/adder links, a non-reduction
/// dimension implies broadcast/unicast links — Section II-A).
struct ArchConfig {
  std::string name = "custom";
  int num_array_dims = 2;                       ///< 1, 2, or 3
  std::array<int, kMaxArrayDims> array_dims{16, 16, 1};  ///< axis sizes
  std::array<nn::Dim, kMaxArrayDims> parallel_dims{
      nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};  ///< dim bound per axis
  long long l1_bytes = 512;                     ///< per-PE scratch pad
  long long l2_bytes = 128 * 1024;              ///< shared global buffer
  int noc_bandwidth = 32;   ///< words/cycle between L2 and the PE array
  int dram_bandwidth = 16;  ///< words/cycle between DRAM and L2

  /// Total processing elements (product of active array dimensions).
  int num_pes() const;

  /// Total on-chip SRAM in bytes: L2 plus L1 across all PEs.
  long long onchip_bytes() const;

  /// True if the array axis `axis` is active (axis < num_array_dims).
  bool axis_active(int axis) const { return axis < num_array_dims; }

  /// True if dimension `d` is spatially parallelized by any active axis.
  bool is_parallel(nn::Dim d) const;

  /// Array size assigned to dimension `d` (1 if not parallelized).
  int parallel_extent(nn::Dim d) const;

  /// Structural validity: positive sizes, 1..3 dims, even array sizes
  /// permitted, distinct parallel dims among active axes, positive buffers
  /// and bandwidths.
  bool valid() const;

  /// One-line summary, e.g. "NVDLA-256: 16x16 C-K | L1 512B L2 512KB bw 64".
  std::string to_string() const;
};

}  // namespace naas::arch
