#include "arch/presets.hpp"

#include <stdexcept>

namespace naas::arch {

const char* dataflow_name(Dataflow df) {
  switch (df) {
    case Dataflow::kWeightStationary: return "weight-stationary";
    case Dataflow::kOutputStationary: return "output-stationary";
    case Dataflow::kRowStationary: return "row-stationary";
  }
  return "?";
}

Dataflow native_dataflow(const ArchConfig& cfg) {
  const bool has_r = cfg.is_parallel(nn::Dim::kR);
  const bool has_c = cfg.is_parallel(nn::Dim::kC);
  const bool has_k = cfg.is_parallel(nn::Dim::kK);
  if (has_r) return Dataflow::kRowStationary;
  if (has_c && has_k) return Dataflow::kWeightStationary;
  return Dataflow::kOutputStationary;
}

ArchConfig edge_tpu_arch() {
  ArchConfig cfg;
  cfg.name = "EdgeTPU";
  cfg.num_array_dims = 2;
  cfg.array_dims = {64, 64, 1};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 512;
  cfg.l2_bytes = 6LL * 1024 * 1024;  // + 4096 x 512B L1 = 8 MiB total
  cfg.noc_bandwidth = 256;
  cfg.dram_bandwidth = 64;
  return cfg;
}

ArchConfig nvdla_1024_arch() {
  ArchConfig cfg;
  cfg.name = "NVDLA-1024";
  cfg.num_array_dims = 2;
  cfg.array_dims = {32, 32, 1};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 256;
  cfg.l2_bytes = 768LL * 1024;  // + 1024 x 256B = 1 MiB total
  cfg.noc_bandwidth = 128;
  cfg.dram_bandwidth = 32;
  return cfg;
}

ArchConfig nvdla_256_arch() {
  ArchConfig cfg;
  cfg.name = "NVDLA-256";
  cfg.num_array_dims = 2;
  cfg.array_dims = {16, 16, 1};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 256;
  cfg.l2_bytes = 448LL * 1024;  // + 256 x 256B = 512 KiB total
  cfg.noc_bandwidth = 64;
  cfg.dram_bandwidth = 16;
  return cfg;
}

ArchConfig eyeriss_arch() {
  ArchConfig cfg;
  cfg.name = "Eyeriss";
  cfg.num_array_dims = 2;
  cfg.array_dims = {12, 14, 1};
  cfg.parallel_dims = {nn::Dim::kR, nn::Dim::kYp, nn::Dim::kXp};
  cfg.l1_bytes = 512;                // 0.5 KB RF per PE
  cfg.l2_bytes = 108LL * 1024;       // 108 KB global buffer
  cfg.noc_bandwidth = 32;
  cfg.dram_bandwidth = 16;
  return cfg;
}

ArchConfig shidiannao_arch() {
  ArchConfig cfg;
  cfg.name = "ShiDianNao";
  cfg.num_array_dims = 2;
  cfg.array_dims = {8, 8, 1};
  cfg.parallel_dims = {nn::Dim::kXp, nn::Dim::kYp, nn::Dim::kC};
  cfg.l1_bytes = 256;
  cfg.l2_bytes = 272LL * 1024;  // + 64 x 256B = 288 KiB total
  cfg.noc_bandwidth = 32;
  cfg.dram_bandwidth = 16;
  return cfg;
}

ArchConfig baseline_for(const ResourceConstraint& rc) {
  if (rc.name == "EdgeTPU") return edge_tpu_arch();
  if (rc.name == "NVDLA-1024") return nvdla_1024_arch();
  if (rc.name == "NVDLA-256") return nvdla_256_arch();
  if (rc.name == "Eyeriss") return eyeriss_arch();
  if (rc.name == "ShiDianNao") return shidiannao_arch();
  throw std::invalid_argument("no baseline preset for envelope: " + rc.name);
}

}  // namespace naas::arch
