#include "arch/resources.hpp"

#include <sstream>

namespace naas::arch {

bool ResourceConstraint::allows(const ArchConfig& cfg) const {
  return cfg.valid() && cfg.num_pes() <= max_pes &&
         cfg.onchip_bytes() <= max_onchip_bytes &&
         cfg.noc_bandwidth <= max_noc_bandwidth;
}

std::string ResourceConstraint::to_string() const {
  std::ostringstream os;
  os << name << ": <=" << max_pes << " PEs, <="
     << max_onchip_bytes / 1024 << "KB on-chip, noc<=" << max_noc_bandwidth
     << ", dram " << dram_bandwidth;
  return os.str();
}

ResourceConstraint edge_tpu_resources() {
  return {"EdgeTPU", 4096, 8LL * 1024 * 1024, 256, 64};
}

ResourceConstraint nvdla_1024_resources() {
  return {"NVDLA-1024", 1024, 1024LL * 1024, 128, 32};
}

ResourceConstraint nvdla_256_resources() {
  return {"NVDLA-256", 256, 512LL * 1024, 64, 16};
}

ResourceConstraint eyeriss_resources() {
  // 108 KB global buffer + 168 x 0.5 KB register files.
  return {"Eyeriss", 168, 192LL * 1024, 32, 16};
}

ResourceConstraint shidiannao_resources() {
  // 288 KB total SRAM (NBin/NBout/SB). max_pes is 144 rather than the native
  // 64 to admit the 4x6x6 3D array the paper reports in Fig. 7c.
  return {"ShiDianNao", 144, 288LL * 1024, 32, 16};
}

std::vector<ResourceConstraint> all_resource_envelopes() {
  return {edge_tpu_resources(), nvdla_1024_resources(), nvdla_256_resources(),
          eyeriss_resources(), shidiannao_resources()};
}

}  // namespace naas::arch
