#pragma once

#include <string>
#include <vector>

#include "arch/accelerator.hpp"

namespace naas::arch {

/// A deployment scenario's resource envelope (Section III-A-a): NAAS is
/// constrained to at most this many PEs, this much total on-chip SRAM, and
/// this much NoC bandwidth; DRAM bandwidth is a property of the scenario.
struct ResourceConstraint {
  std::string name;
  int max_pes = 256;
  long long max_onchip_bytes = 512 * 1024;
  int max_noc_bandwidth = 64;
  int dram_bandwidth = 16;

  /// True if `cfg` fits the envelope (and is structurally valid).
  bool allows(const ArchConfig& cfg) const;

  /// One-line summary.
  std::string to_string() const;
};

/// Search granularity from the paper: "#PEs at stride of 8, buffer sizes at
/// stride of 16B, array sizes at stride of 2".
inline constexpr int kPeStride = 8;
inline constexpr int kBufferStride = 16;
inline constexpr int kArrayDimStride = 2;

/// The five deployment envelopes used in the evaluation. Values follow the
/// published configurations (DESIGN.md §5 documents each choice and the
/// deliberate ShiDianNao deviation admitting Fig. 7c's 144-PE 3D array).
ResourceConstraint edge_tpu_resources();
ResourceConstraint nvdla_1024_resources();
ResourceConstraint nvdla_256_resources();
ResourceConstraint eyeriss_resources();
ResourceConstraint shidiannao_resources();

/// All five envelopes in the paper's order.
std::vector<ResourceConstraint> all_resource_envelopes();

}  // namespace naas::arch
