#include "cost/report.hpp"

#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "mapping/canonical.hpp"
#include "nn/model_zoo.hpp"

namespace naas::cost {
namespace {

TEST(Report, LayerReportContainsAllSections) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 64, 64, 3, 1, 28);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  const std::string s = format_report(rep);
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("PE utilization"), std::string::npos);
  EXPECT_NE(s.find("DRAM"), std::string::npos);
  EXPECT_NE(s.find("MAC"), std::string::npos);
  EXPECT_NE(s.find("Reduction hops"), std::string::npos);
}

TEST(Report, SharesSumToRoughlyHundredPercent) {
  const CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 96, 96, 3, 1, 14);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  // The five component energies must reconstruct the total.
  EXPECT_NEAR(rep.energy.mac_pj + rep.energy.l1_pj + rep.energy.l2_pj +
                  rep.energy.noc_pj + rep.energy.dram_pj,
              rep.energy.total_pj(), 1e-6 * rep.energy.total_pj());
}

TEST(Report, IllegalReportSaysWhy) {
  CostReport rep;
  rep.legal = false;
  rep.illegal_reason = "pe tile exceeds share for K";
  const std::string s = format_report(rep);
  EXPECT_NE(s.find("ILLEGAL"), std::string::npos);
  EXPECT_NE(s.find("exceeds share"), std::string::npos);
}

TEST(Report, NetworkReportListsUniqueLayersAndTotals) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const auto nc =
      evaluate_network_canonical(model, arch, nn::make_cifar_net());
  const std::string s = format_network_cost(nc);
  EXPECT_NE(s.find("CifarNet on NVDLA-256"), std::string::npos);
  EXPECT_NE(s.find("total:"), std::string::npos);
  EXPECT_NE(s.find("Time share"), std::string::npos);
  EXPECT_NE(s.find("conv0"), std::string::npos);
}

}  // namespace
}  // namespace naas::cost
