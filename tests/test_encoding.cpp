#include "search/encoding.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace naas::search {
namespace {

TEST(Encoding, ImportanceOrderSortsDescending) {
  // Fig. 3 right: importances (K,C,Y',X',R,S) = (3,5,2,4,5,1) with C tied R
  // at 5 -> C first by stable tie-break, then R, K... N always outermost.
  const auto order =
      order_from_importance({3.0, 5.0, 2.0, 4.0, 5.0, 1.0});
  EXPECT_EQ(order[0], nn::Dim::kN);
  EXPECT_EQ(order[1], nn::Dim::kC);
  EXPECT_EQ(order[2], nn::Dim::kR);
  EXPECT_EQ(order[3], nn::Dim::kXp);
  EXPECT_EQ(order[4], nn::Dim::kK);
  EXPECT_EQ(order[5], nn::Dim::kYp);
  EXPECT_EQ(order[6], nn::Dim::kS);
  EXPECT_TRUE(mapping::is_valid_order(order));
}

TEST(Encoding, ImportanceOrderAlwaysPermutation) {
  core::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::array<double, 6> imp{};
    for (auto& v : imp) v = rng.uniform();
    EXPECT_TRUE(mapping::is_valid_order(order_from_importance(imp)));
  }
}

TEST(Encoding, ImportanceOrderIsLocallySmooth) {
  // A tiny perturbation that does not cross another value keeps the order:
  // the property that makes importance encoding optimizable.
  const std::array<double, 6> imp{0.9, 0.7, 0.5, 0.3, 0.2, 0.1};
  auto nudged = imp;
  nudged[2] += 0.01;
  EXPECT_EQ(order_from_importance(imp), order_from_importance(nudged));
}

TEST(Encoding, IndexOrderCoversManyPermutations) {
  std::set<std::string> seen;
  for (int i = 0; i < 720; ++i) {
    const auto order = order_from_index((i + 0.5) / 720.0);
    EXPECT_TRUE(mapping::is_valid_order(order));
    seen.insert(mapping::order_to_string(order));
  }
  EXPECT_EQ(seen.size(), 720u);  // bijective decode
}

TEST(Encoding, IndexOrderBoundaryGenes) {
  EXPECT_TRUE(mapping::is_valid_order(order_from_index(0.0)));
  EXPECT_TRUE(mapping::is_valid_order(order_from_index(1.0)));
  EXPECT_TRUE(mapping::is_valid_order(order_from_index(-0.5)));
}

TEST(Encoding, ParallelImportancePicksTopK) {
  // Fig. 3 left: importances (4,6,2,2,3,1) -> C (6) then K (4).
  const auto dims = parallel_from_importance({4, 6, 2, 2, 3, 1}, 2);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], nn::Dim::kC);
  EXPECT_EQ(dims[1], nn::Dim::kK);
}

TEST(Encoding, ParallelImportanceDistinct) {
  core::Rng rng(7);
  for (int k = 1; k <= 3; ++k) {
    for (int i = 0; i < 100; ++i) {
      std::array<double, 6> imp{};
      for (auto& v : imp) v = rng.uniform();
      const auto dims = parallel_from_importance(imp, k);
      ASSERT_EQ(static_cast<int>(dims.size()), k);
      std::set<nn::Dim> uniq(dims.begin(), dims.end());
      EXPECT_EQ(static_cast<int>(uniq.size()), k);
    }
  }
}

TEST(Encoding, ParallelIndexCoversArrangements) {
  std::set<std::string> seen;
  const int count = 6 * 5;  // P(6,2)
  for (int i = 0; i < count; ++i) {
    const auto dims = parallel_from_index((i + 0.5) / count, 2);
    ASSERT_EQ(dims.size(), 2u);
    EXPECT_NE(dims[0], dims[1]);
    seen.insert(std::string(nn::dim_name(dims[0])) + ">" +
                nn::dim_name(dims[1]));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(count));
}

TEST(Encoding, HwGenomeSizes) {
  HwEncodingSpec spec;
  spec.resources = arch::nvdla_256_resources();
  EXPECT_EQ(spec.genome_size(), 13);
  spec.parallel_encoding = OrderEncoding::kIndex;
  EXPECT_EQ(spec.genome_size(), 8);
  spec.search_connectivity = false;
  EXPECT_EQ(spec.genome_size(), 5);
}

TEST(Encoding, HwDecodeStructurallyValidEverywhere) {
  HwEncodingSpec spec;
  spec.resources = arch::eyeriss_resources();
  core::Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> g(static_cast<std::size_t>(spec.genome_size()));
    for (auto& v : g) v = rng.uniform();
    const arch::ArchConfig cfg = spec.decode(g);
    EXPECT_TRUE(cfg.valid()) << cfg.to_string();
    EXPECT_EQ(cfg.dram_bandwidth, spec.resources.dram_bandwidth);
    EXPECT_EQ(cfg.l1_bytes % arch::kBufferStride, 0);
    EXPECT_EQ(cfg.l2_bytes % arch::kBufferStride, 0);
    EXPECT_LE(cfg.noc_bandwidth, spec.resources.max_noc_bandwidth);
  }
}

TEST(Encoding, HwValidMatchesEnvelope) {
  HwEncodingSpec spec;
  spec.resources = arch::shidiannao_resources();
  core::Rng rng(17);
  int valid_count = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> g(static_cast<std::size_t>(spec.genome_size()));
    for (auto& v : g) v = rng.uniform();
    const bool v = spec.valid(g);
    EXPECT_EQ(v, spec.resources.allows(spec.decode(g)));
    valid_count += v;
  }
  // The decoder deliberately folds the envelope into the gene ranges
  // (PE-product gene, remaining-budget buffer genes) so the optimizer is
  // not fighting the constraint boundary: the vast majority of uniform
  // samples must decode valid.
  EXPECT_GT(valid_count, 270);
}

TEST(Encoding, SizingOnlyDecodeUsesFixedConnectivity) {
  HwEncodingSpec spec;
  spec.resources = arch::nvdla_1024_resources();
  spec.search_connectivity = false;
  core::Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> g(5);
    for (auto& v : g) v = rng.uniform();
    const arch::ArchConfig cfg = spec.decode(g);
    EXPECT_EQ(cfg.num_array_dims, 2);
    EXPECT_EQ(cfg.parallel_dims[0], nn::Dim::kC);
    EXPECT_EQ(cfg.parallel_dims[1], nn::Dim::kK);
    EXPECT_TRUE(cfg.valid());
  }
}

TEST(Encoding, MapGenomeSizes) {
  MapEncodingSpec spec;
  EXPECT_EQ(spec.genome_size(), 30);
  spec.order_encoding = OrderEncoding::kIndex;
  EXPECT_EQ(spec.genome_size(), 15);
  spec.search_order = false;
  EXPECT_EQ(spec.genome_size(), 12);
}

TEST(Encoding, MapDecodeAlwaysLegal) {
  const arch::ArchConfig archs[] = {arch::nvdla_256_arch(),
                                    arch::eyeriss_arch()};
  const nn::Workload layers[] = {
      nn::make_conv("c", 64, 128, 3, 1, 28),
      nn::make_dwconv("dw", 96, 3, 2, 56),
      nn::make_fc("fc", 512, 1000),
  };
  for (OrderEncoding enc :
       {OrderEncoding::kImportance, OrderEncoding::kIndex}) {
    MapEncodingSpec spec;
    spec.order_encoding = enc;
    core::Rng rng(29);
    for (const auto& arch : archs) {
      for (const auto& layer : layers) {
        for (int i = 0; i < 50; ++i) {
          std::vector<double> g(static_cast<std::size_t>(spec.genome_size()));
          for (auto& v : g) v = rng.uniform();
          const auto m = spec.decode(g, arch, layer);
          const auto rep = mapping::check(m, layer, arch);
          EXPECT_TRUE(rep.legal) << rep.reason;
        }
      }
    }
  }
}

TEST(Encoding, MapDecodeFixedOrderUsesDataflow) {
  MapEncodingSpec spec;
  spec.search_order = false;
  spec.fixed_dataflow = arch::Dataflow::kOutputStationary;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 32, 32, 3, 1, 14);
  std::vector<double> g(static_cast<std::size_t>(spec.genome_size()), 0.5);
  const auto m = spec.decode(g, arch, layer);
  EXPECT_EQ(m.dram.order, mapping::output_stationary_order());
  EXPECT_EQ(m.pe.order, mapping::output_stationary_order());
}

TEST(Encoding, ArchFingerprintDiscriminates) {
  const auto a = arch::nvdla_256_arch();
  auto b = a;
  EXPECT_EQ(arch_fingerprint(a), arch_fingerprint(b));
  b.l2_bytes += 16;
  EXPECT_NE(arch_fingerprint(a), arch_fingerprint(b));
  auto c = a;
  c.parallel_dims[0] = nn::Dim::kYp;
  EXPECT_NE(arch_fingerprint(a), arch_fingerprint(c));
}

}  // namespace
}  // namespace naas::search
