#include "arch/accelerator.hpp"

#include <gtest/gtest.h>

#include "arch/presets.hpp"

namespace naas::arch {
namespace {

TEST(ArchConfig, NumPesIsProductOfActiveDims) {
  ArchConfig cfg;
  cfg.num_array_dims = 2;
  cfg.array_dims = {16, 16, 99};  // third axis inactive
  EXPECT_EQ(cfg.num_pes(), 256);
  cfg.num_array_dims = 3;
  cfg.array_dims = {4, 6, 6};
  EXPECT_EQ(cfg.num_pes(), 144);
  cfg.num_array_dims = 1;
  cfg.array_dims = {64, 7, 7};
  EXPECT_EQ(cfg.num_pes(), 64);
}

TEST(ArchConfig, OnchipIncludesPerPeL1) {
  ArchConfig cfg;
  cfg.num_array_dims = 2;
  cfg.array_dims = {8, 8, 1};
  cfg.l1_bytes = 512;
  cfg.l2_bytes = 1024;
  EXPECT_EQ(cfg.onchip_bytes(), 1024 + 512 * 64);
}

TEST(ArchConfig, ParallelQueries) {
  ArchConfig cfg;
  cfg.num_array_dims = 2;
  cfg.array_dims = {12, 14, 1};
  cfg.parallel_dims = {nn::Dim::kR, nn::Dim::kYp, nn::Dim::kXp};
  EXPECT_TRUE(cfg.is_parallel(nn::Dim::kR));
  EXPECT_TRUE(cfg.is_parallel(nn::Dim::kYp));
  EXPECT_FALSE(cfg.is_parallel(nn::Dim::kXp));  // third axis inactive
  EXPECT_EQ(cfg.parallel_extent(nn::Dim::kR), 12);
  EXPECT_EQ(cfg.parallel_extent(nn::Dim::kYp), 14);
  EXPECT_EQ(cfg.parallel_extent(nn::Dim::kK), 1);
}

TEST(ArchConfig, ValidRejectsDuplicateParallelDims) {
  ArchConfig cfg;
  cfg.num_array_dims = 2;
  cfg.parallel_dims = {nn::Dim::kK, nn::Dim::kK, nn::Dim::kC};
  EXPECT_FALSE(cfg.valid());
  cfg.parallel_dims = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kK};  // dup inactive
  EXPECT_TRUE(cfg.valid());
}

TEST(ArchConfig, ValidRejectsBadSizes) {
  ArchConfig cfg;
  cfg.num_array_dims = 0;
  EXPECT_FALSE(cfg.valid());
  cfg.num_array_dims = 4;
  EXPECT_FALSE(cfg.valid());
  cfg.num_array_dims = 2;
  cfg.array_dims = {0, 16, 1};
  EXPECT_FALSE(cfg.valid());
  cfg.array_dims = {16, 16, 1};
  cfg.l2_bytes = 0;
  EXPECT_FALSE(cfg.valid());
}

TEST(ArchConfig, ToStringDescribesDesign) {
  const std::string s = nvdla_256_arch().to_string();
  EXPECT_NE(s.find("NVDLA-256"), std::string::npos);
  EXPECT_NE(s.find("16x16"), std::string::npos);
  EXPECT_NE(s.find("C-K"), std::string::npos);
  EXPECT_NE(s.find("256 PEs"), std::string::npos);
}

TEST(Presets, AllBaselinesAreValid) {
  for (const auto& cfg : {edge_tpu_arch(), nvdla_1024_arch(),
                          nvdla_256_arch(), eyeriss_arch(),
                          shidiannao_arch()}) {
    EXPECT_TRUE(cfg.valid()) << cfg.name;
  }
}

TEST(Presets, PeCountsMatchPublished) {
  EXPECT_EQ(edge_tpu_arch().num_pes(), 4096);
  EXPECT_EQ(nvdla_1024_arch().num_pes(), 1024);
  EXPECT_EQ(nvdla_256_arch().num_pes(), 256);
  EXPECT_EQ(eyeriss_arch().num_pes(), 168);
  EXPECT_EQ(shidiannao_arch().num_pes(), 64);
}

TEST(Presets, NativeDataflows) {
  EXPECT_EQ(native_dataflow(nvdla_256_arch()), Dataflow::kWeightStationary);
  EXPECT_EQ(native_dataflow(edge_tpu_arch()), Dataflow::kWeightStationary);
  EXPECT_EQ(native_dataflow(eyeriss_arch()), Dataflow::kRowStationary);
  EXPECT_EQ(native_dataflow(shidiannao_arch()), Dataflow::kOutputStationary);
}

}  // namespace
}  // namespace naas::arch
