#include "nn/layer.hpp"

#include <gtest/gtest.h>

namespace naas::nn {
namespace {

TEST(Layer, DimSizeRoundTrip) {
  const Workload l = make_conv("c", 16, 32, 3, 1, 56);
  EXPECT_EQ(l.dim_size(Dim::kN), 1);
  EXPECT_EQ(l.dim_size(Dim::kK), 32);
  EXPECT_EQ(l.dim_size(Dim::kC), 16);
  EXPECT_EQ(l.dim_size(Dim::kYp), 56);
  EXPECT_EQ(l.dim_size(Dim::kXp), 56);
  EXPECT_EQ(l.dim_size(Dim::kR), 3);
  EXPECT_EQ(l.dim_size(Dim::kS), 3);
}

TEST(Layer, MacsMatchesClosedForm) {
  const Workload l = make_conv("c", 16, 32, 3, 1, 56);
  EXPECT_EQ(l.macs(), 1LL * 32 * 16 * 56 * 56 * 3 * 3);
}

TEST(Layer, ElementCounts) {
  const Workload l = make_conv("c", 4, 8, 3, 1, 6);
  // input spatial derived from output: (6-1)*1 + 3 = 8
  EXPECT_EQ(l.input_elems(), 1LL * 4 * 8 * 8);
  EXPECT_EQ(l.weight_elems(), 8LL * 4 * 3 * 3);
  EXPECT_EQ(l.output_elems(), 8LL * 6 * 6);
}

TEST(Layer, StridedInputExtent) {
  const Workload l = make_conv("c", 3, 8, 3, 2, 10);
  EXPECT_EQ(l.input_rows_for(10), (10 - 1) * 2 + 3);
  EXPECT_EQ(l.input_cols_for(1), 3);
}

TEST(Layer, DepthwiseHasUnitCAndKChannels) {
  const Workload l = make_dwconv("dw", 32, 3, 1, 14);
  EXPECT_EQ(l.kind, LayerKind::kDepthwiseConv);
  EXPECT_EQ(l.in_channels, 1);
  EXPECT_EQ(l.out_channels, 32);
  EXPECT_EQ(l.macs(), 1LL * 32 * 14 * 14 * 3 * 3);
  // depthwise input walks channels via K
  EXPECT_EQ(l.input_elems(), 1LL * 32 * 16 * 16);
  EXPECT_EQ(l.weight_elems(), 32LL * 3 * 3);
}

TEST(Layer, FullyConnectedAsPointwise) {
  const Workload l = make_fc("fc", 512, 1000);
  EXPECT_EQ(l.kind, LayerKind::kFullyConnected);
  EXPECT_EQ(l.macs(), 512LL * 1000);
  EXPECT_EQ(l.output_elems(), 1000);
  EXPECT_EQ(l.input_elems(), 512);
}

TEST(Layer, BatchScalesCounts) {
  const Workload l = make_conv("c", 4, 4, 1, 1, 8, /*batch=*/3);
  EXPECT_EQ(l.macs(), 3LL * 4 * 4 * 8 * 8);
  EXPECT_EQ(l.output_elems(), 3LL * 4 * 8 * 8);
}

TEST(Layer, ShapeHashIgnoresName) {
  Workload a = make_conv("a", 4, 8, 3, 1, 6);
  Workload b = make_conv("b", 4, 8, 3, 1, 6);
  EXPECT_TRUE(LayerShapeEq{}(a, b));
  EXPECT_EQ(LayerShapeHash{}(a), LayerShapeHash{}(b));
  EXPECT_FALSE(a == b);  // full equality includes the name
}

TEST(Layer, ShapeHashDiscriminatesShapes) {
  const Workload a = make_conv("x", 4, 8, 3, 1, 6);
  Workload b = a;
  b.stride = 2;
  EXPECT_FALSE(LayerShapeEq{}(a, b));
  EXPECT_NE(LayerShapeHash{}(a), LayerShapeHash{}(b));
}

TEST(Layer, DimNamesMatchPaperNotation) {
  EXPECT_STREQ(dim_name(Dim::kYp), "Y'");
  EXPECT_STREQ(dim_name(Dim::kS), "S");
  EXPECT_STREQ(layer_kind_name(LayerKind::kDepthwiseConv), "dwconv");
}

TEST(Layer, ToStringContainsEssentials) {
  const Workload l = make_conv("conv1", 3, 64, 7, 2, 112);
  const std::string s = l.to_string();
  EXPECT_NE(s.find("conv1"), std::string::npos);
  EXPECT_NE(s.find("3x64"), std::string::npos);
  EXPECT_NE(s.find("k7x7"), std::string::npos);
  EXPECT_NE(s.find("s2"), std::string::npos);
}

}  // namespace
}  // namespace naas::nn
