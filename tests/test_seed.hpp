#pragma once

// NAAS_TEST_SEED: the CTest seed-sweep hook. Randomized suites derive
// their RNG seeds through sweep_seed(base) so one binary covers many
// independent sample sets: unset (a plain `ctest` run) reproduces the
// historical fixed seeds exactly, while the generated *_seed<k> CTest
// instances export NAAS_TEST_SEED=<k> to re-run the same properties on
// fresh random workloads. Failures stay reproducible — rerun with the
// same NAAS_TEST_SEED value.

#include <cstdint>
#include <cstdlib>

namespace naas::test {

/// Mixes the NAAS_TEST_SEED sweep index (when set) into `base`. The
/// splitmix64-style finalizer decorrelates adjacent sweep indices and
/// keeps every (base, sweep) pair distinct, so two suites sharing a sweep
/// index still see unrelated streams.
inline std::uint64_t sweep_seed(std::uint64_t base) {
  const char* env = std::getenv("NAAS_TEST_SEED");
  if (env == nullptr || *env == '\0') return base;
  const std::uint64_t sweep = std::strtoull(env, nullptr, 10);
  std::uint64_t z = base + (sweep + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace naas::test
