#include "nn/ofa_space.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace naas::nn {
namespace {

TEST(OfaSpace, FullConfigIsMaximal) {
  const OfaConfig cfg = OfaSpace::full_config();
  EXPECT_EQ(cfg.depths, OfaSpace::kMaxDepths);
  EXPECT_EQ(cfg.width_idx, 2);
  const int total =
      std::accumulate(cfg.depths.begin(), cfg.depths.end(), 0);
  EXPECT_EQ(total, 18);  // "18 residual blocks at maximum"
}

TEST(OfaSpace, ResNet50ConfigMatchesClassicDepths) {
  const OfaConfig cfg = OfaSpace::resnet50_config();
  EXPECT_EQ(cfg.depths, (std::array<int, 4>{3, 4, 6, 3}));
  EXPECT_EQ(cfg.image_size, 224);
  const OfaSpace space;
  EXPECT_EQ(space.repair(cfg).depths, cfg.depths);  // valid as-is
}

TEST(OfaSpace, SampleIsAlwaysValid) {
  const OfaSpace space;
  core::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const OfaConfig cfg = space.sample(rng);
    EXPECT_GE(cfg.image_size, OfaSpace::kMinImage);
    EXPECT_LE(cfg.image_size, OfaSpace::kMaxImage);
    EXPECT_EQ((cfg.image_size - OfaSpace::kMinImage) % OfaSpace::kImageStride,
              0);
    EXPECT_GE(cfg.width_idx, 0);
    EXPECT_LE(cfg.width_idx, 2);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_GE(cfg.depths[s], OfaSpace::kMinDepths[s]);
      EXPECT_LE(cfg.depths[s], OfaSpace::kMaxDepths[s]);
    }
  }
}

TEST(OfaSpace, MutateAlwaysChangesSomething) {
  const OfaSpace space;
  core::Rng rng(7);
  const OfaConfig base = OfaSpace::resnet50_config();
  for (int i = 0; i < 100; ++i) {
    const OfaConfig m = space.mutate(base, rng, 0.0);  // rate 0 => forced flip
    EXPECT_NE(m.fingerprint(), base.fingerprint());
  }
}

TEST(OfaSpace, CrossoverGenesComeFromParents) {
  const OfaSpace space;
  core::Rng rng(11);
  OfaConfig a = OfaSpace::full_config();
  OfaConfig b = space.repair([] {
    OfaConfig c;
    c.image_size = 128;
    c.width_idx = 0;
    c.depths = {2, 2, 2, 2};
    c.expand_idx.fill(0);
    return c;
  }());
  for (int i = 0; i < 50; ++i) {
    const OfaConfig child = space.crossover(a, b, rng);
    EXPECT_TRUE(child.image_size == a.image_size ||
                child.image_size == b.image_size);
    EXPECT_TRUE(child.width_idx == a.width_idx ||
                child.width_idx == b.width_idx);
    for (std::size_t s = 0; s < 4; ++s)
      EXPECT_TRUE(child.depths[s] == a.depths[s] ||
                  child.depths[s] == b.depths[s]);
  }
}

TEST(OfaSpace, RepairClampsOutOfRange) {
  const OfaSpace space;
  OfaConfig bad;
  bad.image_size = 999;
  bad.width_idx = 7;
  bad.depths = {0, 99, 1, -3};
  bad.expand_idx.fill(9);
  const OfaConfig fixed = space.repair(bad);
  EXPECT_EQ(fixed.image_size, 256);
  EXPECT_EQ(fixed.width_idx, 2);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GE(fixed.depths[s], OfaSpace::kMinDepths[s]);
    EXPECT_LE(fixed.depths[s], OfaSpace::kMaxDepths[s]);
  }
  for (int e : fixed.expand_idx) EXPECT_LE(e, 2);
}

TEST(OfaSpace, RepairSnapsImageToStride) {
  const OfaSpace space;
  OfaConfig cfg = OfaSpace::resnet50_config();
  cfg.image_size = 150;  // not a multiple of 16 above 128
  EXPECT_EQ(space.repair(cfg).image_size, 144);
}

TEST(OfaSpace, ToNetworkStructure) {
  const OfaSpace space;
  const Network net = space.to_network(OfaSpace::resnet50_config());
  // stem + 16 blocks x 3 + 4 projections + fc = 54, same as ResNet50.
  EXPECT_EQ(net.num_layers(), 54);
  EXPECT_EQ(net.layers().front().kernel_h, 7);
  EXPECT_EQ(net.layers().back().out_channels, 1000);
  // Classic expand 0.25 widths: stage1 mid = 64.
  EXPECT_EQ(net.layers()[1].out_channels, 64);
}

TEST(OfaSpace, WidthMultiplierScalesChannels) {
  const OfaSpace space;
  OfaConfig narrow = OfaSpace::resnet50_config();
  narrow.width_idx = 0;  // 0.65
  const Network net = space.to_network(narrow);
  // stem: round(64 * 0.65 / 8) * 8 = 40
  EXPECT_EQ(net.layers().front().out_channels, 40);
}

TEST(OfaSpace, ImageSizeScalesSpatialDims) {
  const OfaSpace space;
  OfaConfig small = OfaSpace::resnet50_config();
  small.image_size = 128;
  const Network net = space.to_network(small);
  EXPECT_EQ(net.layers().front().out_h, 64);   // stem stride 2
  EXPECT_EQ(net.layers()[1].out_h, 32);        // after maxpool
}

TEST(OfaSpace, DepthChangesBlockCount) {
  const OfaSpace space;
  OfaConfig shallow = OfaSpace::resnet50_config();
  shallow.depths = {2, 2, 2, 2};
  const Network net = space.to_network(space.repair(shallow));
  // stem + 8 blocks x 3 + 4 projections + fc
  EXPECT_EQ(net.num_layers(), 1 + 8 * 3 + 4 + 1);
}

TEST(OfaSpace, SpaceSizeMatchesPaperOrder) {
  // The paper quotes ~1e13 neural architectures.
  const double log10 = OfaSpace().log10_space_size();
  EXPECT_GT(log10, 11.0);
  EXPECT_LT(log10, 15.0);
}

TEST(OfaSpace, FingerprintIgnoresInactiveExpandGenes) {
  OfaConfig a = OfaSpace::resnet50_config();
  OfaConfig b = a;
  // Gene beyond sum(depths)=16 is inactive; changing it must not alter the
  // fingerprint (the decoded subnet is identical).
  b.expand_idx[17] = (b.expand_idx[17] + 1) % 3;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace naas::nn
