#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "arch/presets.hpp"
#include "arch/resources.hpp"
#include "search/accelerator_search.hpp"
#include "search/eval_cache.hpp"
#include "search/mapping_search.hpp"

namespace naas {
namespace {

// ---------------------------------------------------------------- pool core

TEST(ThreadPool, ResultsAssembledByIndex) {
  core::ThreadPool pool(4);
  const std::size_t n = 100;
  // Later indices get less work, so completion order runs counter to index
  // order under any real scheduling; the output must be index-ordered
  // regardless.
  const auto out = pool.parallel_map<int>(n, [&](std::size_t i) {
    if (i < 10) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  core::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  core::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 17)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing loop and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  core::ThreadPool pool(1);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.parallel_for(16, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPool, NestedLoopsDoNotDeadlock) {
  core::ThreadPool pool(4);
  std::atomic<long long> total{0};
  pool.parallel_for(8, [&](std::size_t i) {
    pool.parallel_for(8, [&](std::size_t j) {
      total.fetch_add(static_cast<long long>(i * 8 + j));
    });
  });
  EXPECT_EQ(total.load(), 64 * 63 / 2);
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  core::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

// ---------------------------------------------------------------- eval cache

TEST(EvalCache, PublishKeepsFirstEntryAndReportsWinner) {
  search::EvalCache cache;
  EXPECT_EQ(cache.find(42), nullptr);

  search::MappingSearchResult a;
  a.best_edp = 1.0;
  bool inserted = false;
  const auto& ea = cache.publish(42, std::move(a), &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_DOUBLE_EQ(ea.best_edp, 1.0);

  search::MappingSearchResult b;
  b.best_edp = 2.0;
  const auto& eb = cache.publish(42, std::move(b), &inserted);
  EXPECT_FALSE(inserted);  // the race loser's duplicate is discarded
  EXPECT_DOUBLE_EQ(eb.best_edp, 1.0);
  EXPECT_EQ(&ea, &eb);  // entry references are stable
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------------- determinism

nn::Network small_test_network() {
  nn::Network net("tiny", {});
  net.add(nn::make_conv("stem", 3, 16, 3, 2, 28));
  net.add(nn::make_conv("block", 16, 16, 3, 1, 28));
  net.add(nn::make_conv("head", 16, 32, 1, 1, 14));
  return net;
}

search::NaasOptions small_naas_options(int num_threads) {
  search::NaasOptions opts;
  opts.resources = arch::nvdla_256_resources();
  opts.population = 6;
  opts.iterations = 3;
  opts.seed = 11;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.mapping.seed = 11;
  opts.num_threads = num_threads;
  return opts;
}

TEST(ParallelDeterminism, SearchMappingMatchesSerial) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  search::MappingSearchOptions opts;
  opts.population = 8;
  opts.iterations = 5;
  opts.seed = 3;

  const auto serial = search::search_mapping(model, arch, layer, opts);
  core::ThreadPool pool(4);
  const auto parallel =
      search::search_mapping(model, arch, layer, opts, &pool);

  EXPECT_EQ(serial.best_edp, parallel.best_edp);  // bit-identical
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.report.latency_cycles, parallel.report.latency_cycles);
  EXPECT_EQ(serial.report.energy_nj, parallel.report.energy_nj);
}

TEST(ParallelDeterminism, RunNaasMatchesSerial) {
  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{small_test_network()};

  const auto serial = search::run_naas(model, small_naas_options(1),
                                       benchmarks);
  const auto parallel = search::run_naas(model, small_naas_options(4),
                                         benchmarks);

  EXPECT_EQ(serial.best_geomean_edp, parallel.best_geomean_edp);
  EXPECT_EQ(serial.cost_evaluations, parallel.cost_evaluations);
  EXPECT_EQ(serial.mapping_searches, parallel.mapping_searches);
  ASSERT_EQ(serial.population_best_edp.size(),
            parallel.population_best_edp.size());
  for (std::size_t i = 0; i < serial.population_best_edp.size(); ++i) {
    EXPECT_EQ(serial.population_best_edp[i], parallel.population_best_edp[i]);
    EXPECT_EQ(serial.population_mean_edp[i], parallel.population_mean_edp[i]);
  }
  ASSERT_FALSE(parallel.best_networks.empty());
  EXPECT_EQ(serial.best_networks.front().edp,
            parallel.best_networks.front().edp);
}

// ------------------------------------------------------------ layer dedup

TEST(LayerDedup, RepeatedBlocksCostOneSearch) {
  const cost::CostModel model;
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 3;

  nn::Network once("one-block", {});
  once.add(nn::make_conv("b", 32, 32, 3, 1, 14));

  nn::Network repeated("eight-blocks", {});
  for (int i = 0; i < 8; ++i)
    repeated.add(nn::make_conv("b" + std::to_string(i), 32, 32, 3, 1, 14));

  const auto arch = arch::nvdla_256_arch();

  search::ArchEvaluator eval_once(model, mopts);
  eval_once.evaluate(arch, once);
  search::ArchEvaluator eval_repeated(model, mopts);
  const auto nc = eval_repeated.evaluate(arch, repeated);

  // All eight identical blocks share one mapping search: the duplicated
  // network consumes exactly as many cost evaluations as the single block.
  EXPECT_EQ(eval_repeated.mapping_searches(), 1);
  EXPECT_EQ(eval_repeated.cost_evaluations(), eval_once.cost_evaluations());
  ASSERT_EQ(nc.per_layer.size(), 1u);
  EXPECT_EQ(nc.per_layer.front().count, 8);

  // Re-evaluating the same network is pure cache assembly: zero new cost
  // evaluations (the seed code re-ran the cost model per unique layer).
  const long long before = eval_repeated.cost_evaluations();
  eval_repeated.evaluate(arch, repeated);
  EXPECT_EQ(eval_repeated.cost_evaluations(), before);
}

TEST(LayerDedup, EvaluatePopulationMatchesSequentialCalls) {
  const cost::CostModel model;
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;
  const std::vector<nn::Network> benchmarks{small_test_network()};

  const std::vector<arch::ArchConfig> archs{
      arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch()};

  core::ThreadPool pool(4);
  search::ArchEvaluator batched(model, mopts, &pool);
  const auto edps = batched.evaluate_population(archs, benchmarks);

  search::ArchEvaluator sequential(model, mopts);
  ASSERT_EQ(edps.size(), archs.size());
  for (std::size_t i = 0; i < archs.size(); ++i) {
    EXPECT_EQ(edps[i], sequential.geomean_edp(archs[i], benchmarks));
  }
  EXPECT_EQ(batched.cost_evaluations(), sequential.cost_evaluations());
  EXPECT_EQ(batched.mapping_searches(), sequential.mapping_searches());
}

}  // namespace
}  // namespace naas
