#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "net/client.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace naas {
namespace {

using core::ScopedFaults;
using net::LineClient;
using serve::EvalService;
using serve::Json;
using serve::ServeOptions;
using serve::Server;
using serve::ServerOptions;

/// Tiny budget keeps searches fast; tests only need determinism.
ServeOptions tiny_options() {
  ServeOptions opts;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.num_threads = 1;
  return opts;
}

ServerOptions loopback_options() {
  ServerOptions opts;
  opts.host = "127.0.0.1";
  opts.port = 0;  // ephemeral
  return opts;
}

std::string search_line(int id, int index = 0) {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"search_mapping\",\"arch\":{\"preset\":\"nvdla256\"},"
         "\"layer\":{\"network\":\"squeezenet\",\"index\":" +
         std::to_string(index) + "}}";
}

Json parse_response(const std::string& line) {
  std::string error;
  Json j = Json::parse(line, &error);
  EXPECT_TRUE(error.empty()) << error << ": " << line;
  EXPECT_TRUE(j.is_object()) << line;
  return j;
}

std::string error_code_of(const Json& response) {
  const Json* error = response.get("error");
  if (!error || !error->is_object()) return "";
  const Json* code = error->get("code");
  return code ? code->as_string() : "";
}

/// EvalService + started Server + its run() thread, torn down in order.
struct TestServer {
  EvalService service;
  Server server;
  std::thread runner;

  explicit TestServer(ServerOptions opts = loopback_options(),
                      ServeOptions serve_opts = tiny_options())
      : service(serve_opts), server(service, std::move(opts)) {}

  ~TestServer() { stop(); }

  bool start() {
    std::string err;
    if (!server.start(&err)) {
      ADD_FAILURE() << err;
      return false;
    }
    runner = std::thread([this] { server.run(); });
    return true;
  }

  void stop() {
    server.request_stop();
    if (runner.joinable()) runner.join();
  }

  LineClient connect() {
    LineClient client;
    std::string err;
    EXPECT_TRUE(client.connect("127.0.0.1", server.port(), 5000, &err)) << err;
    return client;
  }
};

constexpr int kReadTimeoutMs = 30000;

TEST(Server, ResponsesIdenticalToStdinMode) {
  const std::vector<std::string> lines = {search_line(1, 0), search_line(2, 1)};
  // The reference: the exact stdin-mode code path on a fresh service with
  // the same options.
  EvalService reference(tiny_options());
  const std::vector<std::string> expected = reference.handle_lines(lines);

  TestServer ts;
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  for (const std::string& line : lines) ASSERT_TRUE(client.send_line(line));
  for (const std::string& want : expected) {
    std::string got;
    ASSERT_TRUE(client.read_line(&got, kReadTimeoutMs));
    EXPECT_EQ(got, want);  // byte-identical, not merely equivalent
  }
  client.close();
  ts.stop();
  EXPECT_EQ(ts.server.stats().requests_admitted, 2);
  EXPECT_EQ(ts.server.stats().connections_accepted, 1);
}

TEST(Server, UnknownLayerKindReturnsStructuredBadRequestOverTcp) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  ASSERT_TRUE(client.send_line(
      "{\"id\":1,\"method\":\"search_mapping\",\"arch\":{\"preset\":"
      "\"nvdla256\"},\"layer\":{\"kind\":\"softmax\",\"out_h\":8}}"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  const Json response = parse_response(line);
  EXPECT_FALSE(response.get("ok")->as_bool());
  EXPECT_EQ(error_code_of(response), "bad_request");
  const std::string msg =
      response.get("error")->get("message")->as_string();
  // The error names the offending kind and every supported one.
  EXPECT_NE(msg.find("softmax"), std::string::npos) << msg;
  for (const char* kind : {"conv", "dwconv", "fc", "matmul", "attention"})
    EXPECT_NE(msg.find(kind), std::string::npos) << msg;
  // The connection survives and keeps serving.
  ASSERT_TRUE(client.send_line(search_line(2)));
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  EXPECT_TRUE(parse_response(line).get("ok")->as_bool());
  client.close();
  ts.stop();
}

TEST(Server, PipelinedResponsesKeepRequestOrder) {
  // Request 2 dies instantly ("deadline_ms":0 expires on arrival) while
  // request 1 takes real evaluation time; the reorder buffer must still
  // deliver 1 before 2.
  TestServer ts;
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  ASSERT_TRUE(client.send_raw(
      search_line(1) + "\n" +
      "{\"id\":2,\"method\":\"cache_stats\",\"deadline_ms\":0}\n"));

  std::string first, second;
  ASSERT_TRUE(client.read_line(&first, kReadTimeoutMs));
  ASSERT_TRUE(client.read_line(&second, kReadTimeoutMs));
  const Json r1 = parse_response(first);
  const Json r2 = parse_response(second);
  EXPECT_EQ(r1.get("id")->as_int(), 1);
  EXPECT_TRUE(r1.get("ok")->as_bool());
  EXPECT_EQ(r2.get("id")->as_int(), 2);
  EXPECT_EQ(error_code_of(r2), "deadline_exceeded");
  ts.stop();
  EXPECT_GE(ts.server.stats().requests_timed_out, 1);
  EXPECT_GE(ts.service.requests_timed_out(), 1);
}

TEST(Server, DefaultDeadlineAppliesWithoutRequestField) {
  ServerOptions opts = loopback_options();
  opts.default_deadline_ms = 1;
  // One request per dispatched batch: the second request must wait in the
  // queue for the full first evaluation (far over 1 ms), so its default
  // deadline deterministically expires before dispatch.
  opts.max_batch_requests = 1;
  TestServer ts(opts);
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  // A whole-network evaluation (one search per unique layer) holds the
  // eval thread well past 1 ms; a single tiny search would not.
  ASSERT_TRUE(client.send_raw(
      "{\"id\":1,\"method\":\"evaluate_network\",\"arch\":{\"preset\":"
      "\"nvdla256\"},\"network\":\"resnet50\"}\n"
      "{\"id\":2,\"method\":\"cache_stats\"}\n"));

  std::string first, second;
  ASSERT_TRUE(client.read_line(&first, kReadTimeoutMs));
  ASSERT_TRUE(client.read_line(&second, kReadTimeoutMs));
  EXPECT_TRUE(parse_response(first).get("ok")->as_bool());
  EXPECT_EQ(error_code_of(parse_response(second)), "deadline_exceeded");
}

TEST(Server, ZeroQueueShedsWithStructuredOverloaded) {
  ServerOptions opts = loopback_options();
  opts.max_queue_requests = 0;
  TestServer ts(opts);
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  ASSERT_TRUE(client.send_line("{\"id\":7,\"method\":\"cache_stats\"}"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  const Json response = parse_response(line);
  EXPECT_EQ(response.get("id")->as_int(), 7);  // id echoed without evaluation
  EXPECT_EQ(error_code_of(response), "overloaded");
  ts.stop();
  EXPECT_EQ(ts.server.stats().requests_shed, 1);
  EXPECT_EQ(ts.service.requests_shed(), 1);
  EXPECT_EQ(ts.server.stats().requests_admitted, 0);
}

TEST(Server, OversizedFramedLineRejectedConnectionSurvives) {
  ServerOptions opts = loopback_options();
  opts.max_line_bytes = 64;
  TestServer ts(opts);
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  ASSERT_TRUE(client.send_line(std::string(100, 'x')));
  ASSERT_TRUE(client.send_line("{\"id\":2,\"method\":\"cache_stats\"}"));

  std::string first, second;
  ASSERT_TRUE(client.read_line(&first, kReadTimeoutMs));
  ASSERT_TRUE(client.read_line(&second, kReadTimeoutMs));
  const Json r1 = parse_response(first);
  EXPECT_EQ(error_code_of(r1), "bad_request");
  EXPECT_TRUE(r1.get("id")->is_null());  // the over-cap line is never parsed
  EXPECT_TRUE(parse_response(second).get("ok")->as_bool());
  ts.stop();
  EXPECT_EQ(ts.server.stats().protocol_rejects, 1);
}

TEST(Server, UnframedOversizedLineRejectsAndCloses) {
  ServerOptions opts = loopback_options();
  opts.max_line_bytes = 64;
  TestServer ts(opts);
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  // 100 bytes, no newline: the server cannot resynchronize, so it answers
  // bad_request and closes.
  ASSERT_TRUE(client.send_raw(std::string(100, 'y')));
  std::string line;
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  EXPECT_EQ(error_code_of(parse_response(line)), "bad_request");
  EXPECT_FALSE(client.read_line(&line, kReadTimeoutMs));
  EXPECT_TRUE(client.eof());
}

TEST(Server, AbortiveClientResetDoesNotKillServer) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  {
    LineClient rude = ts.connect();
    ASSERT_TRUE(rude.send_line(search_line(1)));
    rude.reset();  // SO_LINGER 0: RST with a request in flight
  }
  // The server must shrug it off and keep serving everyone else.
  LineClient polite = ts.connect();
  ASSERT_TRUE(polite.send_line("{\"id\":2,\"method\":\"cache_stats\"}"));
  std::string line;
  ASSERT_TRUE(polite.read_line(&line, kReadTimeoutMs));
  EXPECT_TRUE(parse_response(line).get("ok")->as_bool());
  ts.stop();
  EXPECT_EQ(ts.server.stats().connections_accepted, 2);
}

TEST(Server, IdleConnectionsAreReaped) {
  ServerOptions opts = loopback_options();
  opts.idle_timeout_ms = 50;
  TestServer ts(opts);
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  ASSERT_TRUE(client.send_line("{\"id\":1,\"method\":\"cache_stats\"}"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  // No further traffic: the server closes the connection from its side.
  EXPECT_FALSE(client.read_line(&line, 5000));
  EXPECT_TRUE(client.eof());
  ts.stop();
  EXPECT_GE(ts.server.stats().connections_reaped, 1);
}

TEST(Server, DrainFinishesAdmittedWorkBeforeExit) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  // Both requests arrive in one segment, so they are admitted in the same
  // framing pass; once the first response is back, the second is
  // *admitted* work by construction.
  ASSERT_TRUE(client.send_raw("{\"id\":1,\"method\":\"cache_stats\"}\n" +
                              search_line(2) + "\n"));
  std::string line;
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  EXPECT_EQ(parse_response(line).get("id")->as_int(), 1);
  // Stop now: the admitted search must still be answered before run()
  // returns (a drain finishes what it took; it only stops taking more).
  ts.server.request_stop();
  ASSERT_TRUE(client.read_line(&line, kReadTimeoutMs));
  const Json r2 = parse_response(line);
  EXPECT_EQ(r2.get("id")->as_int(), 2);
  EXPECT_TRUE(r2.get("ok")->as_bool());
  ts.stop();
  EXPECT_EQ(ts.server.stats().requests_admitted, 2);
}

TEST(Server, SurvivesInjectedSocketWeather) {
  // Short reads, EINTRs, short writes, and occasional stalls on *every*
  // socket in the process (the client suffers them too). The protocol must
  // come through byte-identical anyway.
  const std::vector<std::string> lines = {search_line(1, 0), search_line(2, 1),
                                          search_line(3, 2)};
  EvalService reference(tiny_options());
  const std::vector<std::string> expected = reference.handle_lines(lines);

  ScopedFaults faults(
      "seed=11,sock_read_short=0.3,sock_read_eintr=0.2,"
      "sock_write_short=0.3,sock_write_stall=0.2@25");
  TestServer ts;
  ASSERT_TRUE(ts.start());
  LineClient client = ts.connect();
  for (const std::string& line : lines) ASSERT_TRUE(client.send_line(line));
  for (const std::string& want : expected) {
    std::string got;
    ASSERT_TRUE(client.read_line(&got, kReadTimeoutMs));
    EXPECT_EQ(got, want);
  }
}

TEST(Server, ManyClientsInterleavedGetTheirOwnAnswers) {
  TestServer ts;
  ASSERT_TRUE(ts.start());
  constexpr int kClients = 4;
  std::vector<LineClient> clients(kClients);
  for (int c = 0; c < kClients; ++c) {
    std::string err;
    ASSERT_TRUE(clients[c].connect("127.0.0.1", ts.server.port(), 5000, &err))
        << err;
  }
  // Interleave submissions across connections; ids encode the owner.
  for (int c = 0; c < kClients; ++c)
    ASSERT_TRUE(clients[c].send_line(search_line(100 + c, c % 3)));
  for (int c = 0; c < kClients; ++c) {
    std::string line;
    ASSERT_TRUE(clients[c].read_line(&line, kReadTimeoutMs));
    const Json response = parse_response(line);
    EXPECT_EQ(response.get("id")->as_int(), 100 + c);
    EXPECT_TRUE(response.get("ok")->as_bool());
  }
  ts.stop();
  EXPECT_EQ(ts.server.stats().connections_accepted, kClients);
  EXPECT_EQ(ts.server.stats().requests_admitted, kClients);
}

}  // namespace
}  // namespace naas
