#include "fleet/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace naas {
namespace {

using fleet::HashRing;

TEST(HashRing, OwnerIsDeterministicAndInRange) {
  const HashRing ring(4, 64);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::size_t w = ring.owner(key);
    EXPECT_LT(w, 4u);
    EXPECT_EQ(w, ring.owner(key));  // pure function of (key, fleet shape)
  }
  // An independently constructed identical ring routes identically — the
  // property that lets a restarted router resume the same placement.
  const HashRing twin(4, 64);
  for (std::uint64_t key = 0; key < 1000; ++key)
    EXPECT_EQ(ring.owner(key), twin.owner(key));
}

TEST(HashRing, VirtualNodesKeepShardsRoughlyBalanced) {
  const std::size_t kWorkers = 4;
  const HashRing ring(kWorkers, 64);
  std::map<std::size_t, int> counts;
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i)
    counts[ring.owner(0x9e3779b97f4a7c15ull * (i + 1))]++;
  ASSERT_EQ(counts.size(), kWorkers);  // nobody starved
  for (const auto& [w, n] : counts) {
    // With 64 vnodes the per-worker share stays within a loose 2x band of
    // fair (kKeys / kWorkers = 5000); gross imbalance means a broken ring.
    EXPECT_GT(n, kKeys / (2 * static_cast<int>(kWorkers))) << "worker " << w;
    EXPECT_LT(n, kKeys / static_cast<int>(kWorkers) * 2) << "worker " << w;
  }
}

TEST(HashRing, PreferenceListsEveryWorkerOnceStartingAtOwner) {
  const HashRing ring(5, 32);
  for (std::uint64_t key = 1; key < 500; ++key) {
    const std::vector<std::size_t> prefs = ring.preference(key);
    ASSERT_EQ(prefs.size(), 5u);
    EXPECT_EQ(prefs[0], ring.owner(key));
    std::vector<bool> seen(5, false);
    for (const std::size_t w : prefs) {
      ASSERT_LT(w, 5u);
      EXPECT_FALSE(seen[w]) << "duplicate worker in preference order";
      seen[w] = true;
    }
  }
}

TEST(HashRing, FailoverMovesOnlyTheDeadWorkersKeys) {
  // The consistent-hashing contract: skipping a dead worker (taking the
  // next preference) moves only that worker's keys; everyone else's
  // placement is untouched. A modulo hash would reshuffle nearly all.
  const HashRing ring(4, 64);
  const std::size_t dead = 2;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const std::vector<std::size_t> prefs = ring.preference(key);
    const std::size_t with_dead =
        prefs[0] == dead ? prefs[1] : prefs[0];  // router's skip rule
    if (prefs[0] != dead) {
      EXPECT_EQ(with_dead, prefs[0]) << "live key moved on unrelated death";
    } else {
      EXPECT_NE(with_dead, dead);
    }
  }
}

TEST(HashRing, SingleWorkerOwnsEverything) {
  const HashRing ring(1, 8);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.owner(key), 0u);
    EXPECT_EQ(ring.preference(key).size(), 1u);
  }
}

TEST(HashRing, ZeroVnodesClampsToOne) {
  const HashRing ring(3, 0);
  for (std::uint64_t key = 0; key < 100; ++key) EXPECT_LT(ring.owner(key), 3u);
}

}  // namespace
}  // namespace naas
