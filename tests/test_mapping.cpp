#include "mapping/mapping.hpp"

#include <gtest/gtest.h>

namespace naas::mapping {
namespace {

TEST(Mapping, DefaultOrderIsValidPermutation) {
  EXPECT_TRUE(is_valid_order(default_order()));
  EXPECT_EQ(default_order()[0], nn::Dim::kN);
}

TEST(Mapping, DetectsDuplicateDims) {
  LoopOrder order = default_order();
  order[1] = order[2];
  EXPECT_FALSE(is_valid_order(order));
}

TEST(Mapping, TileAccessors) {
  TileSizes t{1, 1, 1, 1, 1, 1, 1};
  set_tile(t, nn::Dim::kYp, 7);
  EXPECT_EQ(tile_of(t, nn::Dim::kYp), 7);
  EXPECT_EQ(tile_of(t, nn::Dim::kK), 1);
}

TEST(Mapping, OrderToStringFormat) {
  EXPECT_EQ(order_to_string(default_order()), "N>K>C>Y'>X'>R>S");
}

TEST(Mapping, ToStringShowsAllLevels) {
  Mapping m;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("dram order"), std::string::npos);
  EXPECT_NE(s.find("pe   order"), std::string::npos);
  EXPECT_NE(s.find("reg  order"), std::string::npos);
}

}  // namespace
}  // namespace naas::mapping
