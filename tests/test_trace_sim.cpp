#include "cost/trace_sim.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "cost/reuse.hpp"

namespace naas::cost {
namespace {

using nn::Dim;
using nn::LayerKind;

TripCounts trips(long long n, long long k, long long c, long long yp,
                 long long xp, long long r, long long s) {
  TripCounts t{};
  t[static_cast<int>(Dim::kN)] = n;
  t[static_cast<int>(Dim::kK)] = k;
  t[static_cast<int>(Dim::kC)] = c;
  t[static_cast<int>(Dim::kYp)] = yp;
  t[static_cast<int>(Dim::kXp)] = xp;
  t[static_cast<int>(Dim::kR)] = r;
  t[static_cast<int>(Dim::kS)] = s;
  return t;
}

TEST(TraceSim, WeightStationaryCompulsory) {
  const mapping::LoopOrder order{Dim::kK, Dim::kC, Dim::kR, Dim::kS,
                                 Dim::kN, Dim::kYp, Dim::kXp};
  const TripCounts t = trips(1, 3, 4, 5, 6, 1, 1);
  const auto counts =
      TraceSimulator::run(order, t, Tensor::kWeight, LayerKind::kConv);
  EXPECT_EQ(counts.fetches, 12);  // one fetch per distinct (K,C) tile
}

TEST(TraceSim, OutputRevisitsCountReadbacks) {
  // C outside the output loops: every C trip revisits all output tiles.
  const mapping::LoopOrder order{Dim::kC, Dim::kN, Dim::kK, Dim::kYp,
                                 Dim::kXp, Dim::kR, Dim::kS};
  const TripCounts t = trips(1, 2, 3, 2, 1, 1, 1);
  const auto counts =
      TraceSimulator::run(order, t, Tensor::kOutput, LayerKind::kConv);
  EXPECT_EQ(counts.fetches, 12);     // 3 sweeps of 4 tiles
  EXPECT_EQ(counts.writebacks, 12);  // every eviction spills partials
  EXPECT_EQ(counts.readbacks, 8);    // sweeps 2 and 3 re-read
}

TEST(TraceSim, SingleTripRelevantLoopDoesNotBlockReuse) {
  // Y' is relevant but iterates once: the tile stays resident across the
  // outer irrelevant C loop (the case that motivated the trip-1 rule in
  // reload_factor).
  const mapping::LoopOrder order{Dim::kC, Dim::kYp, Dim::kN, Dim::kK,
                                 Dim::kXp, Dim::kR, Dim::kS};
  const TripCounts t = trips(1, 1, 4, 1, 1, 1, 1);
  const auto counts =
      TraceSimulator::run(order, t, Tensor::kOutput, LayerKind::kConv);
  EXPECT_EQ(counts.fetches, 1);
  EXPECT_EQ(
      reload_factor(order, t, Tensor::kOutput, LayerKind::kConv), 1.0);
}

TEST(TraceSim, RejectsHugeIterationSpaces) {
  const TripCounts t = trips(100, 100, 100, 100, 100, 2, 2);
  EXPECT_THROW(TraceSimulator::run(mapping::default_order(), t,
                                   Tensor::kInput, LayerKind::kConv),
               std::invalid_argument);
}

/// The load-bearing validation: for randomized loop orders and trip
/// counts, the analytical reload_factor must equal the exact trace count
/// for every tensor, and output writeback/readback identities must hold.
class TraceVsAnalytical : public ::testing::TestWithParam<int> {};

TEST_P(TraceVsAnalytical, ReloadFactorMatchesExactTrace) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    // Random order.
    mapping::LoopOrder order = mapping::default_order();
    std::vector<nn::Dim> dims(order.begin(), order.end());
    rng.shuffle(dims);
    for (int i = 0; i < nn::kNumDims; ++i)
      order[static_cast<std::size_t>(i)] = dims[static_cast<std::size_t>(i)];
    // Random trips in [1, 4] (iteration space <= 4^7 = 16384).
    TripCounts t{};
    for (auto& v : t) v = rng.uniform_int(1, 4);

    static constexpr LayerKind kKinds[] = {
        LayerKind::kConv, LayerKind::kDepthwiseConv,
        LayerKind::kFullyConnected, LayerKind::kMatmul,
        LayerKind::kAttention};
    const LayerKind kind = kKinds[GetParam() % 5];
    if (kind == LayerKind::kDepthwiseConv)
      t[static_cast<int>(Dim::kC)] = 1;  // depthwise has no C extent
    if (kind == LayerKind::kMatmul || kind == LayerKind::kAttention) {
      // GEMM kinds pin the conv-only dims to a single trip.
      t[static_cast<int>(Dim::kXp)] = 1;
      t[static_cast<int>(Dim::kR)] = 1;
      t[static_cast<int>(Dim::kS)] = 1;
    }

    for (Tensor tensor :
         {Tensor::kInput, Tensor::kWeight, Tensor::kOutput}) {
      const auto counts = TraceSimulator::run(order, t, tensor, kind);
      const double analytical = reload_factor(order, t, tensor, kind);
      EXPECT_DOUBLE_EQ(analytical,
                       static_cast<double>(counts.fetches))
          << tensor_name(tensor) << " order "
          << mapping::order_to_string(order);
      if (tensor == Tensor::kOutput) {
        EXPECT_EQ(counts.writebacks, counts.fetches);
        const double distinct = distinct_tiles(t, tensor, kind);
        EXPECT_DOUBLE_EQ(static_cast<double>(counts.readbacks),
                         static_cast<double>(counts.fetches) - distinct);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedSweeps, TraceVsAnalytical,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace naas::cost
