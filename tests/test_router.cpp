#include "fleet/router.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "fleet/replicator.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace naas {
namespace {

using core::ScopedFaults;

serve::ServeOptions tiny_options() {
  serve::ServeOptions opts;
  opts.mapping.population = 4;
  opts.mapping.iterations = 2;
  opts.mapping.seed = 1;
  opts.num_threads = 1;
  return opts;
}

/// In-process worker: EvalService + TCP front end + net thread.
struct TestWorker {
  serve::EvalService service;
  serve::Server server;
  std::thread net_thread;
  bool ok = false;

  explicit TestWorker(const serve::ServeOptions& opts = tiny_options())
      : service(opts), server(service, ephemeral()) {
    std::string err;
    ok = server.start(&err);
    if (!ok) {
      ADD_FAILURE() << "worker start failed: " << err;
      return;
    }
    net_thread = std::thread([this] { server.run(); });
  }

  ~TestWorker() { stop(); }

  void stop() {
    if (net_thread.joinable()) {
      server.request_stop();
      net_thread.join();
    }
  }

  int port() const { return server.port(); }

  static serve::ServerOptions ephemeral() {
    serve::ServerOptions o;
    o.port = 0;
    return o;
  }
};

fleet::RouterOptions router_options(const std::vector<int>& ports) {
  fleet::RouterOptions opts;
  for (const int port : ports) opts.workers.push_back({"127.0.0.1", port});
  opts.connect_timeout_ms = 2000;
  opts.forward_timeout_ms = 30000;  // evaluation, not I/O, dominates
  opts.reconnect_backoff_ms = 10;
  opts.reconnect_backoff_cap_ms = 100;
  return opts;
}

std::string search_line(int id, const char* preset, const char* net,
                        int index) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%d,\"method\":\"search_mapping\",\"arch\":"
                "{\"preset\":\"%s\"},\"layer\":{\"network\":\"%s\","
                "\"index\":%d}}",
                id, preset, net, index);
  return buf;
}

std::vector<std::string> mixed_session() {
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i)
    lines.push_back(search_line(static_cast<int>(lines.size()), "nvdla256",
                                "squeezenet", i));
  for (int i = 0; i < 3; ++i)
    lines.push_back(search_line(static_cast<int>(lines.size()), "edgetpu",
                                "mobilenetv2", i));
  lines.push_back(
      "{\"id\":100,\"method\":\"evaluate_network\",\"arch\":{\"preset\":"
      "\"nvdla256\"},\"network\":\"squeezenet\"}");
  lines.push_back("{\"id\":101,\"method\":\"nonsense\"}");
  lines.push_back("{\"id\":102,\"method\":\"search_mapping\"}");  // bad_request
  lines.push_back("this is not json");
  return lines;
}

/// Line-wise reference: responses are pure per line, so the single
/// service is authoritative regardless of how the router batched.
std::vector<std::string> reference_responses(
    const std::vector<std::string>& lines) {
  serve::EvalService reference(tiny_options());
  return reference.handle_lines(lines);
}

TEST(Router, MatchesSingleServiceByteForByte) {
  TestWorker w0, w1, w2;
  ASSERT_TRUE(w0.ok && w1.ok && w2.ok);
  fleet::Router router(
      router_options({w0.port(), w1.port(), w2.port()}));

  const std::vector<std::string> lines = mixed_session();
  const std::vector<std::string> expected = reference_responses(lines);
  const std::vector<std::string> got = router.handle_lines(lines);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "line " << i << ": " << lines[i];

  const fleet::RouterStats stats = router.stats();
  EXPECT_EQ(stats.lines, static_cast<long long>(lines.size()));
  EXPECT_EQ(stats.degraded_lines, 0);
  EXPECT_EQ(stats.failovers, 0);
  // The three unkeyable lines (unknown method, bad request, non-JSON)
  // rode raw-line hashes.
  EXPECT_EQ(stats.unroutable_lines, 3);
}

TEST(Router, FailsOverWhenAWorkerDiesMidSession) {
  auto w0 = std::make_unique<TestWorker>();
  auto w1 = std::make_unique<TestWorker>();
  ASSERT_TRUE(w0->ok && w1->ok);
  fleet::Router router(router_options({w0->port(), w1->port()}));

  const std::vector<std::string> lines = mixed_session();
  const std::vector<std::string> expected = reference_responses(lines);

  // Warm pass with both workers up: pools connections to both.
  EXPECT_EQ(router.handle_lines(lines), expected);

  // Kill worker 0 (graceful here; the SIGKILL flavor is the soak's job).
  // Its pooled connection goes EOF, every group it owned fails over to
  // worker 1, and the client-visible bytes must not change at all.
  w0->stop();
  w0.reset();
  const std::vector<std::string> got = router.handle_lines(lines);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "line " << i;

  const fleet::RouterStats stats = router.stats();
  EXPECT_EQ(stats.degraded_lines, 0);
  EXPECT_GT(stats.forward_failures, 0);
  EXPECT_GT(stats.failovers, 0);
}

TEST(Router, DegradedResponsesWhenEveryWorkerIsDown) {
  // Bind-then-close: ports guaranteed to refuse connections.
  net::TcpListener l0, l1;
  std::string err;
  ASSERT_TRUE(l0.listen("127.0.0.1", 0, 4, &err));
  ASSERT_TRUE(l1.listen("127.0.0.1", 0, 4, &err));
  const int p0 = l0.port(), p1 = l1.port();
  l0.close();
  l1.close();

  fleet::RouterOptions opts = router_options({p0, p1});
  opts.connect_timeout_ms = 200;
  fleet::Router router(opts);

  const std::vector<std::string> lines = {
      search_line(1, "nvdla256", "squeezenet", 0),
      search_line(2, "edgetpu", "squeezenet", 1)};
  const std::vector<std::string> got = router.handle_lines(lines);
  ASSERT_EQ(got.size(), 2u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NE(got[i].find("\"ok\":false"), std::string::npos) << got[i];
    EXPECT_NE(got[i].find("\"degraded\""), std::string::npos) << got[i];
    EXPECT_NE(got[i].find("safe to resubmit"), std::string::npos) << got[i];
  }
  // ids echo through so the client can retry the right requests.
  EXPECT_NE(got[0].find("\"id\":1"), std::string::npos) << got[0];
  EXPECT_NE(got[1].find("\"id\":2"), std::string::npos) << got[1];
  EXPECT_EQ(router.stats().degraded_lines, 2);
  EXPECT_EQ(router.workers_up(), 0u);
}

TEST(Router, InjectedForwardFaultFailsOverNotDegrades) {
  TestWorker w0, w1;
  ASSERT_TRUE(w0.ok && w1.ok);
  fleet::Router router(router_options({w0.port(), w1.port()}));

  const std::vector<std::string> lines = {
      search_line(1, "nvdla256", "squeezenet", 0),
      search_line(2, "nvdla256", "squeezenet", 1),
      search_line(3, "edgetpu", "squeezenet", 0)};
  const std::vector<std::string> expected = reference_responses(lines);

  ScopedFaults faults("seed=5,router_forward_fail=1@1");
  const std::vector<std::string> got = router.handle_lines(lines);
  EXPECT_EQ(got, expected);
  const fleet::RouterStats stats = router.stats();
  EXPECT_GE(stats.forward_failures, 1);
  EXPECT_EQ(stats.degraded_lines, 0);
}

TEST(Router, InjectedStallEatsDeadlineThenFailsOver) {
  TestWorker w0, w1;
  ASSERT_TRUE(w0.ok && w1.ok);
  fleet::RouterOptions opts = router_options({w0.port(), w1.port()});
  opts.forward_timeout_ms = 300;  // the stalled attempt must die fast
  fleet::Router router(opts);

  const std::vector<std::string> lines = {
      "{\"id\":1,\"method\":\"nonsense\"}"};  // cheap, pure response
  const std::vector<std::string> expected = reference_responses(lines);

  ScopedFaults faults("seed=2,router_forward_stall=1@1");
  const std::vector<std::string> got = router.handle_lines(lines);
  EXPECT_EQ(got, expected);
  EXPECT_GE(router.stats().forward_failures, 1);
}

TEST(Router, ProbeNowTracksLivenessAndRecovers) {
  auto worker = std::make_unique<TestWorker>();
  ASSERT_TRUE(worker->ok);
  fleet::Router router(router_options({worker->port()}));

  EXPECT_EQ(router.workers_up(), 0u);  // nothing connected yet
  router.probe_now();                  // down worker: reconnect attempt
  EXPECT_EQ(router.workers_up(), 1u);
  router.probe_now();                  // up worker: real ping round trip
  EXPECT_GE(router.stats().pings_ok, 1);

  ScopedFaults faults("router_ping_fail=1@1");
  router.probe_now();  // injected ping failure marks it down
  EXPECT_EQ(router.workers_up(), 0u);
  EXPECT_GE(router.stats().ping_failures, 1);
}

TEST(Router, AnswersControlMethodsLocally) {
  TestWorker worker;
  ASSERT_TRUE(worker.ok);
  fleet::Router router(router_options({worker.port()}));

  const std::vector<std::string> got = router.handle_lines(
      {"{\"id\":1,\"method\":\"ping\"}",
       "{\"id\":2,\"method\":\"cache_stats\"}",
       "{\"id\":3,\"method\":\"refresh\"}",
       "{\"id\":4,\"method\":\"pull_store\"}"});
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_NE(got[1].find("\"router\":true"), std::string::npos) << got[1];
  EXPECT_NE(got[1].find("\"workers\":1"), std::string::npos) << got[1];
  EXPECT_NE(got[2].find("\"refreshed\":1"), std::string::npos) << got[2];
  EXPECT_NE(got[3].find("worker-local"), std::string::npos) << got[3];
  EXPECT_EQ(router.stats().local_lines, 4);
}

TEST(Router, ParseWorkerListAcceptsAndRejects) {
  std::vector<fleet::WorkerAddr> out;
  std::string err;
  ASSERT_TRUE(fleet::parse_worker_list("9001,localhost:9002,:9003", &out,
                                       &err));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].host, "127.0.0.1");
  EXPECT_EQ(out[0].port, 9001);
  EXPECT_EQ(out[1].host, "localhost");
  EXPECT_EQ(out[1].port, 9002);
  EXPECT_EQ(out[2].host, "127.0.0.1");
  EXPECT_EQ(out[2].port, 9003);

  for (const char* bad : {"", "host:", "host:0", "host:99999", "a:1,,b:2",
                          "host:12x4"}) {
    EXPECT_FALSE(fleet::parse_worker_list(bad, &out, &err)) << bad;
    EXPECT_TRUE(out.empty()) << bad;
  }
}

TEST(Replicator, RestartedWorkerRewarmsFromPeerWithZeroSearches) {
  // Worker A pays for some searches.
  TestWorker peer;
  ASSERT_TRUE(peer.ok);
  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i)
    lines.push_back(search_line(i, "nvdla256", "squeezenet", i));
  const std::vector<std::string> expected = peer.service.handle_lines(lines);
  ASSERT_GT(peer.service.evaluator().mapping_searches(), 0);

  // "Restarted" worker B: empty cache, pulls from A before serving.
  serve::EvalService fresh(tiny_options());
  fleet::ReplicatorOptions opts;
  opts.peers.push_back({"127.0.0.1", peer.port()});
  fleet::Replicator replicator(opts);
  const std::size_t adopted = replicator.pull_once(fresh);
  EXPECT_GT(adopted, 0u);
  EXPECT_EQ(replicator.stats().fetch_failures, 0);

  // The replayed session must be answered entirely from adopted entries —
  // zero mapping searches — and byte-identically (determinism + purity).
  EXPECT_EQ(fresh.handle_lines(lines), expected);
  EXPECT_EQ(fresh.evaluator().mapping_searches(), 0);
}

TEST(Replicator, TornFetchIsSalvagedOrRejectedNeverWrong) {
  TestWorker peer;
  ASSERT_TRUE(peer.ok);
  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i)
    lines.push_back(search_line(i, "nvdla256", "squeezenet", i));
  const std::vector<std::string> expected = peer.service.handle_lines(lines);

  serve::EvalService fresh(tiny_options());
  fleet::ReplicatorOptions opts;
  opts.peers.push_back({"127.0.0.1", peer.port()});
  fleet::Replicator replicator(opts);
  {
    ScopedFaults faults("repl_fetch_torn=1");
    replicator.pull_once(fresh);
  }
  EXPECT_GE(replicator.stats().torn_fetches, 1);
  // Whatever survived the checksum gauntlet, serving stays *correct*:
  // adopted prefixes answer warm, the torn tail is recomputed.
  EXPECT_EQ(fresh.handle_lines(lines), expected);
}

TEST(Replicator, UnreachablePeerIsCountedAndSkipped) {
  net::TcpListener l;
  std::string err;
  ASSERT_TRUE(l.listen("127.0.0.1", 0, 4, &err));
  const int dead_port = l.port();
  l.close();

  serve::EvalService fresh(tiny_options());
  fleet::ReplicatorOptions opts;
  opts.peers.push_back({"127.0.0.1", dead_port});
  opts.connect_timeout_ms = 200;
  fleet::Replicator replicator(opts);
  EXPECT_EQ(replicator.pull_once(fresh), 0u);
  EXPECT_EQ(replicator.stats().fetch_failures, 1);
}

}  // namespace
}  // namespace naas
