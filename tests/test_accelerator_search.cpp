#include "search/accelerator_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"
#include "nn/model_zoo.hpp"
#include "search/random_search.hpp"

namespace naas::search {
namespace {

/// A small single-network benchmark keeps the two-level search fast enough
/// for unit testing.
std::vector<nn::Network> tiny_benchmark() {
  return {nn::make_cifar_net()};
}

NaasOptions small_options(const arch::ResourceConstraint& rc,
                          std::uint64_t seed = 1) {
  NaasOptions opts;
  opts.resources = rc;
  opts.population = 8;
  opts.iterations = 5;
  opts.seed = seed;
  opts.mapping.population = 8;
  opts.mapping.iterations = 4;
  return opts;
}

TEST(ArchEvaluatorTest, CachesMappingSearches) {
  const cost::CostModel model;
  MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 3;
  ArchEvaluator ev(model, mopts);
  const auto arch = arch::nvdla_256_arch();
  const nn::Network net = nn::make_cifar_net();

  ev.evaluate(arch, net);
  const long long first = ev.cost_evaluations();
  ev.evaluate(arch, net);  // identical -> fully cached
  EXPECT_EQ(ev.cost_evaluations(), first);
  EXPECT_EQ(ev.mapping_searches(),
            static_cast<long long>(net.unique_layers().size()));
}

TEST(ArchEvaluatorTest, GeomeanAggregatesNetworks) {
  const cost::CostModel model;
  MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 3;
  ArchEvaluator ev(model, mopts);
  const auto arch = arch::nvdla_256_arch();
  const auto nets = std::vector<nn::Network>{nn::make_cifar_net(),
                                             nn::make_squeezenet()};
  const double a = ev.evaluate(arch, nets[0]).edp;
  const double b = ev.evaluate(arch, nets[1]).edp;
  EXPECT_NEAR(ev.geomean_edp(arch, nets), std::sqrt(a * b),
              1e-6 * std::sqrt(a * b));
}

TEST(NaasSearch, FindsDesignWithinEnvelope) {
  const cost::CostModel model;
  const auto rc = arch::nvdla_256_resources();
  const auto res = run_naas(model, small_options(rc), tiny_benchmark());
  ASSERT_TRUE(std::isfinite(res.best_geomean_edp));
  EXPECT_TRUE(rc.allows(res.best_arch));
  EXPECT_EQ(res.best_networks.size(), 1u);
  EXPECT_GT(res.cost_evaluations, 0);
  EXPECT_EQ(static_cast<int>(res.population_mean_edp.size()), 5);
}

TEST(NaasSearch, BeatsBaselinePresetOnItsOwnResources) {
  // The searched design space contains the baseline, so with canonical
  // seeding the searched result must be at least as good as the baseline
  // evaluated with searched mappings — and in practice strictly better
  // than the baseline with canonical mappings.
  const cost::CostModel model;
  const auto rc = arch::eyeriss_resources();
  NaasOptions opts = small_options(rc, 3);
  opts.iterations = 8;
  const auto res = run_naas(model, opts, tiny_benchmark());
  ASSERT_TRUE(std::isfinite(res.best_geomean_edp));

  const auto baseline = cost::evaluate_network_canonical(
      model, arch::eyeriss_arch(), tiny_benchmark()[0]);
  ASSERT_TRUE(baseline.legal);
  EXPECT_LT(res.best_geomean_edp, baseline.edp);
}

TEST(NaasSearch, ConvergesOnAverage) {
  // Fig. 4 property: late-phase population mean EDP below the first
  // iteration's mean.
  const cost::CostModel model;
  NaasOptions opts = small_options(arch::shidiannao_resources(), 11);
  opts.iterations = 8;
  const auto res = run_naas(model, opts, tiny_benchmark());
  ASSERT_GE(res.population_mean_edp.size(), 8u);
  const double first = res.population_mean_edp.front();
  const double last = res.population_mean_edp.back();
  EXPECT_LT(last, first);
}

TEST(NaasSearch, DeterministicForSeed) {
  const cost::CostModel model;
  const auto opts = small_options(arch::nvdla_256_resources(), 17);
  const auto a = run_naas(model, opts, tiny_benchmark());
  const auto b = run_naas(model, opts, tiny_benchmark());
  EXPECT_DOUBLE_EQ(a.best_geomean_edp, b.best_geomean_edp);
  EXPECT_EQ(arch_fingerprint(a.best_arch), arch_fingerprint(b.best_arch));
}

TEST(NaasSearch, SizingOnlyModeRestrictsConnectivity) {
  const cost::CostModel model;
  NaasOptions opts = small_options(arch::nvdla_256_resources(), 5);
  opts.search_connectivity = false;
  const auto res = run_naas(model, opts, tiny_benchmark());
  ASSERT_TRUE(std::isfinite(res.best_geomean_edp));
  EXPECT_EQ(res.best_arch.num_array_dims, 2);
  EXPECT_EQ(res.best_arch.parallel_dims[0], nn::Dim::kC);
  EXPECT_EQ(res.best_arch.parallel_dims[1], nn::Dim::kK);
}

TEST(NaasSearch, ThrowsOnEmptyBenchmarks) {
  const cost::CostModel model;
  EXPECT_THROW(
      run_naas(model, small_options(arch::nvdla_256_resources()), {}),
      std::invalid_argument);
}

TEST(RandomSearchTest, ProducesValidDesignButNoAdaptation) {
  const cost::CostModel model;
  const auto rc = arch::nvdla_256_resources();
  const auto res =
      run_random_search(model, small_options(rc, 23), tiny_benchmark());
  ASSERT_TRUE(std::isfinite(res.best_geomean_edp));
  EXPECT_TRUE(rc.allows(res.best_arch));
  EXPECT_EQ(res.population_mean_edp.size(), 5u);
}

TEST(RandomSearchTest, NaasMeanBeatsRandomMeanLate) {
  // Fig. 4's qualitative claim, on a tiny budget: once adapted, the NAAS
  // population mean sits below random search's stationary mean. Tail
  // averages keep the comparison robust to per-iteration sampling noise.
  const cost::CostModel model;
  NaasOptions opts = small_options(arch::eyeriss_resources(), 31);
  opts.iterations = 10;
  const auto naas = run_naas(model, opts, tiny_benchmark());
  const auto rand = run_random_search(model, opts, tiny_benchmark());
  ASSERT_GE(naas.population_mean_edp.size(), 3u);
  ASSERT_FALSE(rand.population_mean_edp.empty());
  auto tail_mean = [](const std::vector<double>& xs, std::size_t n) {
    double acc = 0;
    for (std::size_t i = xs.size() - n; i < xs.size(); ++i) acc += xs[i];
    return acc / static_cast<double>(n);
  };
  const double naas_late = tail_mean(naas.population_mean_edp, 3);
  double rand_all = 0;
  for (double x : rand.population_mean_edp) rand_all += x;
  rand_all /= static_cast<double>(rand.population_mean_edp.size());
  EXPECT_LT(naas_late, rand_all);
}

}  // namespace
}  // namespace naas::search
