#include "nn/accuracy_model.hpp"

#include <gtest/gtest.h>

namespace naas::nn {
namespace {

TEST(AccuracyModel, AnchorsInDocumentedRanges) {
  const AccuracyPredictor p;
  const double full = p.predict(OfaSpace::full_config());
  const double classic = p.predict(OfaSpace::resnet50_config());
  EXPECT_NEAR(full, 78.9, 0.5);
  EXPECT_NEAR(classic, 78.4, 0.5);
  // OFA-trained subnets beat the scratch-trained ResNet-50 baseline.
  EXPECT_GT(classic, AccuracyPredictor::kResNet50Top1);
}

TEST(AccuracyModel, SmallestConfigNearFloor) {
  OfaConfig tiny;
  tiny.image_size = 128;
  tiny.width_idx = 0;
  tiny.depths = {2, 2, 2, 2};
  tiny.expand_idx.fill(0);
  const double acc = AccuracyPredictor{}.predict(tiny);
  EXPECT_NEAR(acc, 72.8, 0.6);
}

TEST(AccuracyModel, MonotoneInImageSize) {
  const AccuracyPredictor p;
  OfaConfig lo = OfaSpace::resnet50_config();
  lo.image_size = 128;
  OfaConfig hi = lo;
  hi.image_size = 256;
  // Jitter is bounded by +-0.15, so a full-range sweep must dominate it.
  EXPECT_GT(p.predict(hi), p.predict(lo) + 0.5);
}

TEST(AccuracyModel, MonotoneInWidth) {
  const AccuracyPredictor p;
  OfaConfig lo = OfaSpace::resnet50_config();
  lo.width_idx = 0;
  OfaConfig hi = lo;
  hi.width_idx = 2;
  EXPECT_GT(p.predict(hi), p.predict(lo) + 0.5);
}

TEST(AccuracyModel, MonotoneInDepth) {
  const AccuracyPredictor p;
  OfaConfig lo = OfaSpace::resnet50_config();
  lo.depths = {2, 2, 2, 2};
  OfaConfig hi = lo;
  hi.depths = OfaSpace::kMaxDepths;
  EXPECT_GT(p.predict(hi), p.predict(lo) + 0.3);
}

TEST(AccuracyModel, DeterministicPerConfig) {
  const AccuracyPredictor p;
  const OfaConfig cfg = OfaSpace::resnet50_config();
  EXPECT_DOUBLE_EQ(p.predict(cfg), p.predict(cfg));
}

TEST(AccuracyModel, JitterCreatesScatterAcrossConfigs) {
  const AccuracyPredictor p;
  // Two same-capacity configs that differ only in which stage lost a block
  // should differ slightly (the realistic-scatter property).
  OfaConfig a = OfaSpace::full_config();
  a.depths = {3, 5, 6, 3};
  OfaConfig b = OfaSpace::full_config();
  b.depths = {4, 4, 6, 3};
  EXPECT_NE(p.predict(a), p.predict(b));
  EXPECT_NEAR(p.predict(a), p.predict(b), 0.5);
}

TEST(AccuracyModel, AlwaysWithinGlobalBounds) {
  const AccuracyPredictor p;
  const OfaSpace space;
  core::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double acc = p.predict(space.sample(rng));
    EXPECT_GE(acc, 70.0);
    EXPECT_LE(acc, 80.5);
  }
}

}  // namespace
}  // namespace naas::nn
