// Cross-backend differential harness: every SIMD cost backend must be
// BYTE-IDENTICAL to the scalar reference on serialized CostReports — the
// contract that makes --cost-backend a pure throughput knob (goldens,
// stores, and search results can never depend on it). The suite fuzzes
// random (arch, layer, mapping-batch) tuples across all five layer kinds
// and asserts equality at batch sizes 1, 7, and 64, over 16 independent
// seeds per run (the CTest seed sweep multiplies that via NAAS_TEST_SEED).
//
// On hosts without a SIMD backend (no AVX2/NEON, or a -DNAAS_FORCE_SCALAR
// build) the differential tests skip; the dispatch-contract tests below
// run everywhere.

#include "cost/backend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "cost/cost_model.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"
#include "nn/layer.hpp"
#include "test_seed.hpp"

namespace naas::cost {
namespace {

/// Exact byte image of a report (same encoding as test_cost_batch.cpp):
/// every double as its IEEE bit pattern, plus legality flag and reason.
std::string serialize_report(const CostReport& r) {
  core::ByteWriter w;
  w.u8(r.legal ? 1 : 0);
  w.str(r.illegal_reason);
  for (double v : {r.macs, r.compute_cycles, r.noc_cycles, r.dram_cycles,
                   r.latency_cycles, r.energy.mac_pj, r.energy.l1_pj,
                   r.energy.l2_pj, r.energy.noc_pj, r.energy.dram_pj,
                   r.energy_nj, r.edp, r.pe_utilization, r.dram_bytes,
                   r.l2_read_bytes, r.l2_write_bytes, r.l1_access_bytes,
                   r.noc_delivery_bytes, r.reduction_hop_bytes})
    w.f64(v);
  return w.bytes();
}

/// The SIMD backend kinds this build + CPU can actually run.
std::vector<BackendKind> simd_backends() {
  std::vector<BackendKind> kinds;
  for (BackendKind k : {BackendKind::kAvx2, BackendKind::kNeon})
    if (backend_available(k)) kinds.push_back(k);
  return kinds;
}

/// One random layer spanning all five kinds: conv, depthwise conv, FC,
/// matmul, and attention (both score and context shapes).
nn::Workload random_layer_any_kind(core::Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: {
      const int kernel = 1 + 2 * rng.uniform_int(0, 2);
      return nn::make_conv("cv", rng.uniform_int(1, 64),
                           rng.uniform_int(1, 64), kernel,
                           rng.uniform_int(1, 2), rng.uniform_int(1, 28),
                           rng.uniform_int(1, 2));
    }
    case 1: {
      const int kernel = 1 + 2 * rng.uniform_int(0, 2);
      return nn::make_dwconv("dw", rng.uniform_int(1, 96), kernel,
                             rng.uniform_int(1, 2), rng.uniform_int(1, 28),
                             rng.uniform_int(1, 2));
    }
    case 2:
      return nn::make_fc("fc", rng.uniform_int(1, 512),
                         rng.uniform_int(1, 512), rng.uniform_int(1, 4));
    case 3:
      return nn::make_matmul("mm", rng.uniform_int(1, 256),
                             rng.uniform_int(1, 512),
                             rng.uniform_int(1, 512), rng.uniform_int(1, 4));
    case 4:
      return nn::make_attention_scores("qk", rng.uniform_int(1, 128),
                                       rng.uniform_int(1, 128),
                                       rng.uniform_int(1, 96),
                                       rng.uniform_int(1, 8),
                                       rng.uniform_int(1, 2));
    default:
      return nn::make_attention_context("av", rng.uniform_int(1, 128),
                                        rng.uniform_int(1, 128),
                                        rng.uniform_int(1, 96),
                                        rng.uniform_int(1, 8),
                                        rng.uniform_int(1, 2));
  }
}

arch::ArchConfig random_arch(core::Rng& rng) {
  if (rng.bernoulli(0.25)) {
    const arch::ArchConfig presets[] = {
        arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch()};
    return presets[rng.uniform_int(0, 2)];
  }
  arch::ArchConfig cfg;
  cfg.name = "rand";
  cfg.num_array_dims = rng.uniform_int(1, 3);
  const nn::Dim dims[] = {nn::Dim::kK,  nn::Dim::kC, nn::Dim::kYp,
                          nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS,
                          nn::Dim::kN};
  std::vector<nn::Dim> pool(dims, dims + 7);
  rng.shuffle(pool);
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    cfg.array_dims[static_cast<std::size_t>(a)] = rng.uniform_int(1, 16);
    cfg.parallel_dims[static_cast<std::size_t>(a)] =
        pool[static_cast<std::size_t>(a)];
  }
  cfg.l1_bytes = 1LL << rng.uniform_int(6, 11);
  cfg.l2_bytes = 1LL << rng.uniform_int(12, 18);
  cfg.noc_bandwidth = 1 << rng.uniform_int(2, 6);
  cfg.dram_bandwidth = 1 << rng.uniform_int(2, 6);
  return cfg;
}

mapping::LoopOrder random_order(core::Rng& rng, bool allow_invalid) {
  std::vector<nn::Dim> dims;
  for (nn::Dim d : nn::all_dims()) dims.push_back(d);
  rng.shuffle(dims);
  mapping::LoopOrder order;
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = dims[i];
  if (allow_invalid && rng.bernoulli(0.1)) order[0] = order[1];  // duplicate
  return order;
}

/// Candidate generator mixing repaired-legal, perturbed, out-of-range, and
/// malformed-order mappings, so the differential batches exercise the
/// legality short-circuits and live-slot compaction alongside the SIMD
/// lanes (the compaction is what makes lane grouping non-trivial).
mapping::Mapping random_candidate(core::Rng& rng, const arch::ArchConfig& arch,
                                  const nn::Workload& layer) {
  mapping::Mapping m;
  m.dram.order = random_order(rng, true);
  m.pe.order = random_order(rng, true);
  m.pe_order = random_order(rng, true);
  for (nn::Dim d : nn::all_dims()) {
    const int bound = layer.dim_size(d);
    mapping::set_tile(m.dram.tile, d, rng.uniform_int(0, 2 * bound));
    mapping::set_tile(m.pe.tile, d, rng.uniform_int(0, bound + 1));
  }
  if (rng.bernoulli(0.5)) m = mapping::repair(m, layer, arch);
  return m;
}

/// Asserts scalar-vs-`kind` byte equality for one (arch, layer, batch)
/// tuple at every required batch size.
void expect_backends_identical(BackendKind kind, const arch::ArchConfig& arch,
                               const nn::Workload& layer,
                               const std::vector<mapping::Mapping>& cands,
                               const char* tag) {
  const CostModel scalar_model(EnergyModel{}, BackendKind::kScalar);
  const CostModel simd_model(EnergyModel{}, kind);
  ASSERT_STREQ("scalar", scalar_model.backend_name());
  ASSERT_EQ(kind, simd_model.backend_kind());

  const LayerContext scalar_ctx = scalar_model.make_context(arch, layer);
  const LayerContext simd_ctx = simd_model.make_context(arch, layer);
  for (std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}}) {
    std::vector<CostReport> ref(cands.size()), got(cands.size());
    for (std::size_t lo = 0; lo < cands.size(); lo += batch_size) {
      const std::size_t len = std::min(batch_size, cands.size() - lo);
      const auto maps =
          std::span<const mapping::Mapping>(cands).subspan(lo, len);
      scalar_model.evaluate_batch(scalar_ctx, maps,
                                  std::span<CostReport>(ref).subspan(lo, len));
      simd_model.evaluate_batch(simd_ctx, maps,
                                std::span<CostReport>(got).subspan(lo, len));
    }
    for (std::size_t i = 0; i < cands.size(); ++i)
      ASSERT_EQ(serialize_report(ref[i]), serialize_report(got[i]))
          << tag << ": layer " << layer.to_string() << " candidate " << i
          << " diverged on backend '" << backend_kind_name(kind)
          << "' at batch size " << batch_size
          << " (scalar legal=" << ref[i].legal << ", simd legal="
          << got[i].legal << ", reason='" << got[i].illegal_reason << "')";
  }
}

// ---------------------------------------------------- differential fuzz

TEST(BackendDifferential, RandomTuplesAllKindsAllBatchSizes) {
  const auto kinds = simd_backends();
  if (kinds.empty())
    GTEST_SKIP() << "no SIMD cost backend available on this build/CPU";
  // 16 base seeds per run; each drives several random (arch, layer, batch)
  // tuples. NAAS_TEST_SEED shifts all 16 to fresh streams.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    core::Rng rng(test::sweep_seed(0xD1FFu * 1000 + seed));
    for (int round = 0; round < 6; ++round) {
      const nn::Workload layer = random_layer_any_kind(rng);
      const arch::ArchConfig arch = random_arch(rng);
      std::vector<mapping::Mapping> cands;
      for (int i = 0; i < 64; ++i)
        cands.push_back(random_candidate(rng, arch, layer));
      for (BackendKind kind : kinds)
        expect_backends_identical(kind, arch, layer, cands, "fuzz");
    }
  }
}

TEST(BackendDifferential, EveryLayerKindCoveredExplicitly) {
  // The fuzz loop samples kinds randomly; this pins one deterministic
  // workload per kind so a regression names the kind in its test line.
  const auto kinds = simd_backends();
  if (kinds.empty())
    GTEST_SKIP() << "no SIMD cost backend available on this build/CPU";
  const nn::Workload layers[] = {
      nn::make_conv("cv", 64, 64, 3, 1, 28, 2),
      nn::make_dwconv("dw", 96, 3, 1, 14, 2),
      nn::make_fc("fc", 512, 1000, 4),
      nn::make_matmul("mm", 128, 768, 3072, 4),
      nn::make_attention_scores("qk", 128, 128, 64, 12, 2),
      nn::make_attention_context("av", 128, 128, 64, 12, 2),
  };
  core::Rng rng(test::sweep_seed(0xBEEF));
  for (const nn::Workload& layer : layers) {
    const arch::ArchConfig arch = arch::nvdla_256_arch();
    std::vector<mapping::Mapping> cands;
    cands.push_back(mapping::canonical_mapping(arch, layer));
    for (int i = 0; i < 63; ++i)
      cands.push_back(random_candidate(rng, arch, layer));
    for (BackendKind kind : kinds)
      expect_backends_identical(kind, arch, layer, cands, "kind-pinned");
  }
}

// ------------------------------------------- degenerate archs under SIMD

TEST(BackendDifferential, DegenerateArchsAgreeWithScalar) {
  const auto kinds = simd_backends();
  if (kinds.empty())
    GTEST_SKIP() << "no SIMD cost backend available on this build/CPU";
  core::Rng rng(test::sweep_seed(0xDE6E));

  // PE-count overflow: a plausibly-sized request whose product overflows
  // the int PE budget must fail identically through every backend.
  arch::ArchConfig overflow = arch::nvdla_256_arch();
  overflow.array_dims[0] = 65536;
  overflow.array_dims[1] = 65536;

  // Non-positive DRAM bandwidth: the divide-by-bandwidth stages must be
  // gated out before any lane arithmetic could produce an inf/NaN.
  arch::ArchConfig zero_bw = arch::nvdla_256_arch();
  zero_bw.dram_bandwidth = 0;

  const nn::Workload conv = nn::make_conv("cv", 32, 32, 3, 1, 14);
  for (const arch::ArchConfig& arch : {overflow, zero_bw}) {
    std::vector<mapping::Mapping> cands;
    for (int i = 0; i < 64; ++i)
      cands.push_back(random_candidate(rng, arch, conv));
    for (BackendKind kind : kinds)
      expect_backends_identical(kind, arch, conv, cands, "degenerate-arch");
  }
}

TEST(BackendDifferential, PinnedGemmDimsRejectIdentically) {
  // Matmul/attention pin Xp/R/S to extent 1; tiles > 1 on a pinned dim
  // must take the illegal path with the same reason on every backend, and
  // the surviving lanes must still compact identically around them.
  const auto kinds = simd_backends();
  if (kinds.empty())
    GTEST_SKIP() << "no SIMD cost backend available on this build/CPU";
  const nn::Workload mm = nn::make_matmul("mm", 64, 128, 256, 2);
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  core::Rng rng(test::sweep_seed(0x6E44));

  std::vector<mapping::Mapping> cands;
  for (int i = 0; i < 64; ++i) {
    mapping::Mapping m = random_candidate(rng, arch, mm);
    if (i % 2 == 0) {
      // Force a pinned-dim violation on half the batch.
      const nn::Dim pinned[] = {nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS};
      mapping::set_tile(m.dram.tile, pinned[i % 3], 2 + (i % 5));
    }
    cands.push_back(m);
  }
  for (BackendKind kind : kinds)
    expect_backends_identical(kind, arch, mm, cands, "pinned-gemm");
}

// ---------------------------------------------------- dispatch contract

TEST(BackendDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(backend_available(BackendKind::kScalar));
  EXPECT_TRUE(backend_available(BackendKind::kAuto));
  EXPECT_EQ(&scalar_backend(), backend_for(BackendKind::kScalar));
  EXPECT_STREQ("scalar", scalar_backend().name());
}

TEST(BackendDispatch, AutoResolvesToAnAvailableBackend) {
  const BackendKind resolved = resolve_backend(BackendKind::kAuto);
  EXPECT_NE(BackendKind::kAuto, resolved);
  EXPECT_TRUE(backend_available(resolved));
  // auto prefers SIMD whenever any SIMD backend exists.
  if (!simd_backends().empty())
    EXPECT_NE(BackendKind::kScalar, resolved);
  else
    EXPECT_EQ(BackendKind::kScalar, resolved);
}

TEST(BackendDispatch, UnavailableExplicitRequestFallsBackToScalar) {
  for (BackendKind k : {BackendKind::kAvx2, BackendKind::kNeon})
    if (!backend_available(k))
      EXPECT_EQ(BackendKind::kScalar, resolve_backend(k));
}

TEST(BackendDispatch, KindNamesRoundTrip) {
  for (BackendKind k : {BackendKind::kScalar, BackendKind::kAvx2,
                        BackendKind::kNeon, BackendKind::kAuto}) {
    const auto parsed = parse_backend_kind(backend_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(k, *parsed);
  }
  EXPECT_FALSE(parse_backend_kind("").has_value());
  EXPECT_FALSE(parse_backend_kind("avx512").has_value());
  EXPECT_FALSE(parse_backend_kind("Scalar").has_value());
}

TEST(BackendDispatch, ModelReportsItsResolvedBackend) {
  const CostModel scalar_model(EnergyModel{}, BackendKind::kScalar);
  EXPECT_EQ(BackendKind::kScalar, scalar_model.backend_kind());
  EXPECT_STREQ("scalar", scalar_model.backend_name());

  CostModel auto_model(EnergyModel{}, BackendKind::kAuto);
  EXPECT_NE(BackendKind::kAuto, auto_model.backend_kind());
  EXPECT_TRUE(backend_available(auto_model.backend_kind()));

  auto_model.set_backend(BackendKind::kScalar);
  EXPECT_STREQ("scalar", auto_model.backend_name());
}

}  // namespace
}  // namespace naas::cost
