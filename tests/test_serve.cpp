#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "core/serialize.hpp"
#include "nn/model_zoo.hpp"
#include "search/result_store.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace naas {
namespace {

using serve::EvalService;
using serve::Json;
using serve::ServeOptions;

std::string temp_store_path(const std::string& name) {
  return ::testing::TempDir() + "naas_serve_" + name + ".bin";
}

/// Tiny budget keeps searches fast; tests only need determinism.
ServeOptions tiny_options(const std::string& store_path = "") {
  ServeOptions opts;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.store_path = store_path;
  return opts;
}

std::string search_line(const char* net, int index, int id = 1) {
  Json req = Json::object();
  req.set("id", Json::integer(id));
  req.set("method", Json::string("search_mapping"));
  Json arch = Json::object();
  arch.set("preset", Json::string("nvdla256"));
  req.set("arch", std::move(arch));
  Json layer = Json::object();
  layer.set("network", Json::string(net));
  layer.set("index", Json::integer(index));
  req.set("layer", std::move(layer));
  return req.dump();
}

Json parse_response(const std::string& line) {
  std::string error;
  Json j = Json::parse(line, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(j.is_object()) << line;
  return j;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ArchPresetAndExplicitRoundTrip) {
  arch::ArchConfig preset;
  std::string err;
  Json spec = Json::object();
  spec.set("preset", Json::string("eyeriss"));
  ASSERT_TRUE(serve::arch_from_json(spec, &preset, &err)) << err;
  EXPECT_EQ(preset.name, arch::eyeriss_arch().name);

  // to_json -> from_json reproduces the same configuration.
  arch::ArchConfig round;
  ASSERT_TRUE(serve::arch_from_json(serve::arch_to_json(preset), &round,
                                    &err))
      << err;
  EXPECT_EQ(round.num_array_dims, preset.num_array_dims);
  EXPECT_EQ(round.array_dims, preset.array_dims);
  EXPECT_EQ(round.parallel_dims, preset.parallel_dims);
  EXPECT_EQ(round.l1_bytes, preset.l1_bytes);
  EXPECT_EQ(round.l2_bytes, preset.l2_bytes);
}

TEST(ServeProtocol, ArchValidationRejectsBadSpecs) {
  arch::ArchConfig out;
  std::string err;
  Json unknown = Json::object();
  unknown.set("preset", Json::string("tpu9000"));
  EXPECT_FALSE(serve::arch_from_json(unknown, &out, &err));
  EXPECT_NE(err.find("tpu9000"), std::string::npos);

  // Duplicate parallel dims are structurally invalid.
  std::string parse_error;
  const Json dup = Json::parse(
      R"({"array_dims":[8,8],"parallel_dims":["K","K"]})", &parse_error);
  ASSERT_TRUE(parse_error.empty());
  EXPECT_FALSE(serve::arch_from_json(dup, &out, &err));

  const Json empty = Json::object();
  EXPECT_FALSE(serve::arch_from_json(empty, &out, &err));
}

TEST(ServeProtocol, LayerByNetworkAndExplicitRoundTrip) {
  std::string parse_error, err;
  const Json by_net = Json::parse(
      R"({"network":"squeezenet","index":2})", &parse_error);
  ASSERT_TRUE(parse_error.empty());
  nn::Workload layer;
  ASSERT_TRUE(serve::layer_from_json(by_net, &layer, &err)) << err;
  EXPECT_EQ(layer.name, nn::make_squeezenet().layers()[2].name);

  nn::Workload round;
  ASSERT_TRUE(
      serve::layer_from_json(serve::layer_to_json(layer), &round, &err))
      << err;
  EXPECT_TRUE(nn::LayerShapeEq{}(layer, round));

  const Json oob = Json::parse(
      R"({"network":"squeezenet","index":999})", &parse_error);
  EXPECT_FALSE(serve::layer_from_json(oob, &layer, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);

  const Json bad_net = Json::parse(
      R"({"network":"nonexistent","index":0})", &parse_error);
  EXPECT_FALSE(serve::layer_from_json(bad_net, &layer, &err));
}

TEST(ServeProtocol, MappingRoundTripsThroughJson) {
  // A searched mapping survives to_json -> from_json with an identical
  // cost report (the JSON form is faithful, not lossy).
  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("t", 32, 64, 3, 1, 28);
  search::MappingSearchOptions opts;
  opts.population = 6;
  opts.iterations = 3;
  const auto searched = search::search_mapping(model, arch, layer, opts);

  std::string err;
  mapping::Mapping round;
  ASSERT_TRUE(serve::mapping_from_json(serve::mapping_to_json(searched.best),
                                       &round, &err))
      << err;
  const auto a = model.evaluate(arch, layer, searched.best);
  const auto b = model.evaluate(arch, layer, round);
  EXPECT_EQ(a.edp, b.edp);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.energy_nj, b.energy_nj);
}

// ---------------------------------------------------------------- service

TEST(EvalServiceTest, AnswersSearchMappingQuery) {
  EvalService service(tiny_options());
  const Json response =
      parse_response(service.handle_line(search_line("cifarnet", 0)));
  EXPECT_TRUE(response.get("ok")->as_bool());
  EXPECT_EQ(response.get("id")->as_int(), 1);
  const Json* result = response.get("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->get("report"), nullptr);
  EXPECT_TRUE(result->get("report")->get("legal")->as_bool());
  EXPECT_GT(result->get("report")->get("edp")->as_double(), 0);
  ASSERT_NE(result->get("mapping"), nullptr);
  EXPECT_GT(result->get("evaluations")->as_int(), 0);
}

TEST(EvalServiceTest, EvaluateMappingEchoesSearchedMapping) {
  // Feed the mapping from a search_mapping response back through
  // evaluate_mapping: the reported EDP must match exactly.
  EvalService service(tiny_options());
  const Json search =
      parse_response(service.handle_line(search_line("cifarnet", 0)));
  const Json* result = search.get("result");
  ASSERT_NE(result, nullptr);

  Json req = Json::object();
  req.set("id", Json::integer(2));
  req.set("method", Json::string("evaluate_mapping"));
  Json arch = Json::object();
  arch.set("preset", Json::string("nvdla256"));
  req.set("arch", std::move(arch));
  Json layer = Json::object();
  layer.set("network", Json::string("cifarnet"));
  layer.set("index", Json::integer(0));
  req.set("layer", std::move(layer));
  // Round-trip the mapping through its serialized text.
  std::string error;
  req.set("mapping", Json::parse(result->get("mapping")->dump(), &error));
  ASSERT_TRUE(error.empty());

  const Json echoed = parse_response(service.handle_line(req.dump()));
  ASSERT_TRUE(echoed.get("ok")->as_bool()) << echoed.dump();
  EXPECT_EQ(echoed.get("result")->get("edp")->as_double(),
            result->get("report")->get("edp")->as_double());
}

TEST(EvalServiceTest, EvaluateNetworkMatchesDirectEvaluator) {
  EvalService service(tiny_options());
  Json req = Json::object();
  req.set("method", Json::string("evaluate_network"));
  Json arch = Json::object();
  arch.set("preset", Json::string("nvdla256"));
  req.set("arch", std::move(arch));
  req.set("network", Json::string("cifarnet"));
  const Json response = parse_response(service.handle_line(req.dump()));
  ASSERT_TRUE(response.get("ok")->as_bool()) << response.dump();

  const cost::CostModel model;
  search::ArchEvaluator evaluator(model, tiny_options().mapping);
  const cost::NetworkCost direct =
      evaluator.evaluate(arch::nvdla_256_arch(), nn::make_cifar_net());
  EXPECT_EQ(response.get("result")->get("edp")->as_double(), direct.edp);
  EXPECT_EQ(response.get("result")->get("layers")->size(),
            direct.per_layer.size());
}

TEST(EvalServiceTest, MalformedRequestsGetStructuredErrors) {
  EvalService service(tiny_options());
  const auto expect_error = [&](const std::string& line,
                                const std::string& code) {
    const Json response = parse_response(service.handle_line(line));
    EXPECT_FALSE(response.get("ok")->as_bool()) << line;
    ASSERT_NE(response.get("error"), nullptr);
    EXPECT_EQ(response.get("error")->get("code")->as_string(), code) << line;
  };
  expect_error("this is not json", serve::kErrParse);
  expect_error("{\"method\": 42}", serve::kErrBadRequest);
  expect_error("[1,2,3]", serve::kErrBadRequest);
  expect_error("{\"method\": \"transmogrify\"}", serve::kErrUnknownMethod);
  expect_error("{\"method\": \"search_mapping\"}", serve::kErrBadRequest);
  expect_error(
      R"({"method":"search_mapping","arch":{"preset":"nope"},)"
      R"("layer":{"network":"cifarnet","index":0}})",
      serve::kErrBadRequest);
  expect_error(
      R"({"method":"evaluate_network","arch":{"preset":"nvdla256"},)"
      R"("network":"nonexistent"})",
      serve::kErrBadRequest);
  expect_error(
      R"({"method":"evaluate_mapping","arch":{"preset":"nvdla256"},)"
      R"("layer":{"network":"cifarnet","index":0}})",
      serve::kErrBadRequest);
  EXPECT_EQ(service.stats().errors, 8);
  // The service keeps serving after errors.
  const Json ok = parse_response(service.handle_line(search_line(
      "cifarnet", 0)));
  EXPECT_TRUE(ok.get("ok")->as_bool());
}

TEST(EvalServiceTest, UnknownLayerKindReturnsStructuredBadRequest) {
  EvalService service(tiny_options());
  const Json response = parse_response(service.handle_line(
      R"({"id":9,"method":"search_mapping","arch":{"preset":"nvdla256"},)"
      R"("layer":{"kind":"pooling","out_h":8}})"));
  EXPECT_FALSE(response.get("ok")->as_bool());
  ASSERT_NE(response.get("error"), nullptr);
  EXPECT_EQ(response.get("error")->get("code")->as_string(),
            serve::kErrBadRequest);
  const std::string msg =
      response.get("error")->get("message")->as_string();
  EXPECT_NE(msg.find("pooling"), std::string::npos) << msg;
  for (const char* kind : {"conv", "dwconv", "fc", "matmul", "attention"})
    EXPECT_NE(msg.find(kind), std::string::npos) << msg;
}

TEST(EvalServiceTest, GemmKindsRejectNonUnitConvDims) {
  EvalService service(tiny_options());
  const Json response = parse_response(service.handle_line(
      R"({"id":10,"method":"search_mapping","arch":{"preset":"nvdla256"},)"
      R"("layer":{"kind":"attention","out_h":8,"in_channels":16,)"
      R"("out_channels":16,"kernel_h":3}})"));
  EXPECT_FALSE(response.get("ok")->as_bool());
  EXPECT_EQ(response.get("error")->get("code")->as_string(),
            serve::kErrBadRequest);
  EXPECT_NE(response.get("error")->get("message")->as_string().find(
                "attention"),
            std::string::npos);
}

TEST(EvalServiceTest, ErrorResponsesEchoRequestId) {
  EvalService service(tiny_options());
  const Json response = parse_response(
      service.handle_line(R"({"id":"q-7","method":"transmogrify"})"));
  EXPECT_EQ(response.get("id")->as_string(), "q-7");
}

TEST(EvalServiceTest, BatchedResponsesBitIdenticalToSequential) {
  // The same mixed session (valid queries, duplicates, an error in the
  // middle) submitted as one batch and one-at-a-time must produce
  // byte-identical response lines.
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i)
    lines.push_back(search_line("cifarnet", i, i + 1));
  lines.push_back("garbage{");
  lines.push_back(search_line("cifarnet", 1, 99));  // duplicate shape
  Json net_req = Json::object();
  net_req.set("id", Json::integer(100));
  net_req.set("method", Json::string("evaluate_network"));
  Json arch = Json::object();
  arch.set("preset", Json::string("nvdla256"));
  net_req.set("arch", std::move(arch));
  net_req.set("network", Json::string("cifarnet"));
  lines.push_back(net_req.dump());

  EvalService batched(tiny_options());
  const std::vector<std::string> batch_out = batched.handle_lines(lines);

  EvalService sequential(tiny_options());
  std::vector<std::string> seq_out;
  for (const std::string& line : lines)
    seq_out.push_back(sequential.handle_line(line));

  EXPECT_EQ(batch_out, seq_out);
  // The batch deduplicated: searches ran once per unique (arch, layer).
  EXPECT_EQ(batched.evaluator().mapping_searches(),
            sequential.evaluator().mapping_searches());
}

TEST(EvalServiceTest, WarmBootFromStoreAnswersWithZeroSearches) {
  const std::string store = temp_store_path("warm_boot");
  std::remove(store.c_str());
  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i)
    lines.push_back(search_line("cifarnet", i, i + 1));

  std::vector<std::string> cold_out;
  {
    EvalService cold(tiny_options(store));
    cold_out = cold.handle_lines(lines);
    EXPECT_GT(cold.evaluator().mapping_searches(), 0);
  }  // destructor flushes

  EvalService warm(tiny_options(store));
  EXPECT_GT(warm.evaluator().store_entries_loaded(), 0u);
  const std::vector<std::string> warm_out = warm.handle_lines(lines);
  EXPECT_EQ(warm.evaluator().mapping_searches(), 0);
  EXPECT_EQ(warm_out, cold_out);
  std::remove(store.c_str());
}

TEST(EvalServiceTest, StoreRespectsReadonly) {
  const std::string store = temp_store_path("readonly");
  std::remove(store.c_str());
  ServeOptions opts = tiny_options(store);
  opts.store_readonly = true;
  {
    EvalService service(opts);
    service.handle_line(search_line("cifarnet", 0));
  }
  FILE* f = std::fopen(store.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "readonly service must not create the store";
  if (f) std::fclose(f);
}

TEST(EvalServiceTest, IncrementalRefreshSharesWorkAcrossInstances) {
  const std::string store = temp_store_path("incremental");
  std::remove(store.c_str());
  EvalService a(tiny_options(store));
  EvalService b(tiny_options(store));

  // A computes a result and appends it incrementally.
  const std::string a_response = a.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(a.refresh(), search::StoreStatus::kOk);
  EXPECT_EQ(a.stats().store_appends, 1);
  EXPECT_GT(a.stats().store_entries_appended, 0);

  // B refreshes, adopts A's append, and answers identically with zero
  // searches of its own.
  EXPECT_EQ(b.refresh(), search::StoreStatus::kOk);
  EXPECT_EQ(b.stats().store_reloads, 1);
  EXPECT_GT(b.stats().store_entries_reloaded, 0);
  const std::string b_response = b.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(b.evaluator().mapping_searches(), 0);
  EXPECT_EQ(b_response, a_response);

  // Now B computes something new; A adopts it the same way.
  b.handle_line(search_line("cifarnet", 1));
  EXPECT_EQ(b.refresh(), search::StoreStatus::kOk);
  // B's refresh appended only its new entry (A's entry was not rewritten).
  EXPECT_EQ(b.stats().store_entries_appended, 1);
  EXPECT_EQ(a.refresh(), search::StoreStatus::kOk);
  const long long a_searches_before = a.evaluator().mapping_searches();
  a.handle_line(search_line("cifarnet", 1));
  EXPECT_EQ(a.evaluator().mapping_searches(), a_searches_before);
  std::remove(store.c_str());
}

TEST(EvalServiceTest, RefreshIsANoOpWithoutChanges) {
  const std::string store = temp_store_path("noop_refresh");
  std::remove(store.c_str());
  EvalService service(tiny_options(store));
  service.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(service.refresh(), search::StoreStatus::kOk);
  const long long appends = service.stats().store_appends;
  // Nothing new: no append, no reload.
  EXPECT_EQ(service.refresh(), search::StoreStatus::kOk);
  EXPECT_EQ(service.stats().store_appends, appends);
  EXPECT_EQ(service.stats().store_reloads, 0);
  std::remove(store.c_str());
}

TEST(EvalServiceTest, OverflowingIntegerFieldsAreRejectedNotWrapped) {
  // 2^32 + 1 would wrap to out_channels == 1 under a silent narrowing;
  // the service must reject it instead of answering for a different
  // layer. Likewise 2^31 would wrap negative.
  EvalService service(tiny_options());
  for (const char* big : {"4294967297", "2147483648"}) {
    const std::string line =
        std::string(R"({"method":"search_mapping",)"
                    R"("arch":{"preset":"nvdla256"},)"
                    R"("layer":{"kind":"conv","out_channels":)") +
        big + R"(,"in_channels":32,"out_h":28,"out_w":28}})";
    const Json response = parse_response(service.handle_line(line));
    EXPECT_FALSE(response.get("ok")->as_bool()) << big;
    EXPECT_EQ(response.get("error")->get("code")->as_string(),
              serve::kErrBadRequest);
  }
  // Same guard on arch axis sizes and mapping tiles.
  arch::ArchConfig out;
  std::string parse_error, err;
  const Json huge_axis = Json::parse(
      R"({"array_dims":[4294967297,8],"parallel_dims":["K","C"]})",
      &parse_error);
  ASSERT_TRUE(parse_error.empty());
  EXPECT_FALSE(serve::arch_from_json(huge_axis, &out, &err));
}

TEST(EvalServiceTest, FailedAppendRetriesInsteadOfDroppingEntries) {
  // A store path whose directory does not exist makes every append fail.
  // The entries must stay flagged for flush (refresh keeps reporting the
  // failure) rather than being silently dropped after the first attempt.
  const std::string store =
      ::testing::TempDir() + "naas_no_such_dir/store.bin";
  EvalService service(tiny_options(store));
  service.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(service.refresh(), search::StoreStatus::kIoError);
  EXPECT_EQ(service.refresh(), search::StoreStatus::kIoError);
  EXPECT_EQ(service.stats().store_appends, 0);
}

TEST(EvalServiceTest, DamagedStoreIsHealedByRewriteNotAppendedTo) {
  const std::string store = temp_store_path("heal");
  {
    FILE* f = std::fopen(store.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a result store", f);
    std::fclose(f);
  }
  {
    EvalService service(tiny_options(store));  // boots cold with a warning
    EXPECT_EQ(service.evaluator().store_entries_loaded(), 0u);
    service.handle_line(search_line("cifarnet", 0));
    EXPECT_EQ(service.refresh(), search::StoreStatus::kOk);
    EXPECT_EQ(service.stats().store_rewrites, 1);
    EXPECT_EQ(service.stats().store_appends, 0);
  }
  // The healed store is valid again and warm-starts the next service.
  EvalService warm(tiny_options(store));
  EXPECT_GT(warm.evaluator().store_entries_loaded(), 0u);
  const std::string response = warm.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(warm.evaluator().mapping_searches(), 0);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  std::remove(store.c_str());
}

TEST(EvalServiceTest, ReadonlyServiceAdoptsAnotherProcessesHeal) {
  const std::string store = temp_store_path("readonly_heal");
  {
    FILE* f = std::fopen(store.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage, not a store", f);
    std::fclose(f);
  }
  ServeOptions ro = tiny_options(store);
  ro.store_readonly = true;
  EvalService reader(ro);
  // The damaged store is a standing problem the reader cannot fix...
  EXPECT_EQ(reader.refresh(), search::StoreStatus::kCorrupt);
  EXPECT_EQ(reader.stats().store_rewrites, 0);

  // ...until a writer heals it.
  {
    EvalService writer(tiny_options(store));
    writer.handle_line(search_line("cifarnet", 0));
    EXPECT_EQ(writer.refresh(), search::StoreStatus::kOk);
    EXPECT_EQ(writer.stats().store_rewrites, 1);
  }
  EXPECT_EQ(reader.refresh(), search::StoreStatus::kOk);
  EXPECT_EQ(reader.stats().store_reloads, 1);
  reader.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(reader.evaluator().mapping_searches(), 0);
  std::remove(store.c_str());
}

TEST(EvalServiceTest, RefreshRetryBackoffIsMetered) {
  // Every failed-append retry sleeps a jittered backoff; the meter makes
  // that invisible time visible (and provable) through cache_stats.
  const std::string store =
      ::testing::TempDir() + "naas_no_such_dir/backoff.bin";
  EvalService service(tiny_options(store));
  service.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(service.refresh(), search::StoreStatus::kIoError);
  EXPECT_GT(service.stats().store_refresh_retries, 0);
  // Jitter never rounds to zero: each retry contributes >= 1ms.
  EXPECT_GE(service.stats().store_refresh_backoff_ms,
            service.stats().store_refresh_retries);

  const Json stats = parse_response(
      service.handle_line(R"({"id":9,"method":"cache_stats"})"));
  EXPECT_EQ(stats.get("result")->get("store_refresh_backoff_ms")->as_int(),
            service.stats().store_refresh_backoff_ms);
}

TEST(EvalServiceTest, PingAnswersLocallyAndCheaply) {
  EvalService service(tiny_options());
  EXPECT_EQ(service.handle_line(R"({"id":7,"method":"ping"})"),
            "{\"id\":7,\"ok\":true,\"result\":{\"pong\":true}}");
  // Liveness must not cost evaluation work.
  EXPECT_EQ(service.evaluator().mapping_searches(), 0);
}

TEST(EvalServiceTest, PullStoreRoundTripsThroughHexArmor) {
  // The peer-replication wire format: pull_store hands back the full
  // cache as hex-armored ResultStore segments; an adopting service
  // answers the same queries warm, with zero searches of its own.
  EvalService source(tiny_options());
  source.handle_line(search_line("cifarnet", 0));
  source.handle_line(search_line("cifarnet", 1, 2));
  ASSERT_GT(source.evaluator().mapping_searches(), 0);

  const Json pulled = parse_response(
      source.handle_line(R"({"id":3,"method":"pull_store"})"));
  ASSERT_TRUE(pulled.get("ok")->as_bool());
  const Json* result = pulled.get("result");
  EXPECT_EQ(result->get("format")->as_string(), "naasmaps-hex");
  EXPECT_GE(result->get("entries")->as_int(), 2);

  std::string bytes;
  ASSERT_TRUE(core::from_hex(result->get("data")->as_string(), &bytes));
  search::StoreLoadResult load =
      search::ResultStore::decode(bytes.data(), bytes.size());
  ASSERT_EQ(load.status, search::StoreStatus::kOk);

  EvalService adopter(tiny_options());
  EXPECT_EQ(adopter.adopt_entries(std::move(load.entries)),
            static_cast<std::size_t>(result->get("entries")->as_int()));
  const std::string warm = adopter.handle_line(search_line("cifarnet", 0));
  EXPECT_EQ(warm, source.handle_line(search_line("cifarnet", 0)));
  EXPECT_EQ(adopter.evaluator().mapping_searches(), 0);
}

TEST(EvalServiceTest, CacheStatsAndRefreshMethods) {
  const std::string store = temp_store_path("stats_method");
  std::remove(store.c_str());
  EvalService service(tiny_options(store));
  service.handle_line(search_line("cifarnet", 0));

  const Json refresh = parse_response(
      service.handle_line(R"({"id":1,"method":"refresh"})"));
  ASSERT_TRUE(refresh.get("ok")->as_bool());
  EXPECT_EQ(refresh.get("result")->get("status")->as_string(), "ok");
  EXPECT_GE(refresh.get("result")->get("entries_appended_total")->as_int(),
            1);

  const Json stats = parse_response(
      service.handle_line(R"({"id":2,"method":"cache_stats"})"));
  ASSERT_TRUE(stats.get("ok")->as_bool());
  const Json* result = stats.get("result");
  EXPECT_GE(result->get("cache_entries")->as_int(), 1);
  EXPECT_GE(result->get("mapping_searches")->as_int(), 1);
  EXPECT_GE(result->get("queries")->as_int(), 3);
  EXPECT_GE(result->get("pool_threads")->as_int(), 1);
  std::remove(store.c_str());
}

}  // namespace
}  // namespace naas
