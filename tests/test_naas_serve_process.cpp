// Process-level tests of the naas_serve binary: signal-driven graceful
// drain in stdin mode (a SIGTERM'd warm server loses no completed
// results), warm-restart byte-identity, the stdin protocol limits, and the
// TCP listen mode end to end. Skipped when the binary is not next to the
// test (ctest runs with the build directory as cwd, where it always is).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "search/result_store.hpp"
#include "serve/json.hpp"

namespace naas {
namespace {

constexpr char kBinary[] = "./naas_serve";

std::string temp_store_path(const std::string& name) {
  return ::testing::TempDir() + "naas_proc_" + name + ".bin";
}

/// A spawned naas_serve with pipes on stdin/stdout/stderr.
struct Child {
  pid_t pid = -1;
  int in = -1;   ///< write end of the child's stdin
  int out = -1;  ///< read end of the child's stdout
  int err = -1;  ///< read end of the child's stderr
  std::string out_buf, err_buf;

  ~Child() {
    close_in();
    if (out >= 0) ::close(out);
    if (err >= 0) ::close(err);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  void close_in() {
    if (in >= 0) {
      ::close(in);
      in = -1;
    }
  }

  bool spawn(std::vector<std::string> args) {
    int in_pipe[2], out_pipe[2], err_pipe[2];
    if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0 ||
        ::pipe(err_pipe) != 0)
      return false;
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(in_pipe[0], STDIN_FILENO);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::dup2(err_pipe[1], STDERR_FILENO);
      for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1],
                           err_pipe[0], err_pipe[1]})
        ::close(fd);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(kBinary));
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(kBinary, argv.data());
      ::_exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[1]);
    in = in_pipe[1];
    out = out_pipe[0];
    err = err_pipe[0];
    ::fcntl(out, F_SETFL, O_NONBLOCK);
    ::fcntl(err, F_SETFL, O_NONBLOCK);
    return true;
  }

  bool send(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(in, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads the next '\n'-terminated line from `fd`/`buf` within timeout.
  bool read_line_from(int fd, std::string* buf, std::string* line,
                      int timeout_ms) {
    for (int waited = 0; waited <= timeout_ms;) {
      const std::size_t nl = buf->find('\n');
      if (nl != std::string::npos) {
        *line = buf->substr(0, nl);
        buf->erase(0, nl + 1);
        return true;
      }
      ::pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 50) > 0) {
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0)
          buf->append(chunk, static_cast<std::size_t>(n));
        else if (n == 0)
          return false;  // child closed the stream: drain whatever is left
      } else {
        waited += 50;
      }
    }
    return false;
  }

  bool read_stdout_line(std::string* line, int timeout_ms = 60000) {
    return read_line_from(out, &out_buf, line, timeout_ms);
  }

  bool read_stderr_line(std::string* line, int timeout_ms = 60000) {
    return read_line_from(err, &err_buf, line, timeout_ms);
  }

  /// Waits for exit (bounded) and returns the exit code, -1 on timeout or
  /// abnormal termination.
  int wait_exit(int timeout_ms = 60000) {
    for (int waited = 0; waited <= timeout_ms; waited += 50) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      ::usleep(50 * 1000);
    }
    return -1;
  }
};

bool binary_present() { return ::access(kBinary, X_OK) == 0; }

const std::string kSearchRequest =
    "{\"id\":1,\"method\":\"search_mapping\",\"arch\":{\"preset\":"
    "\"nvdla256\"},\"layer\":{\"network\":\"squeezenet\",\"index\":0}}";

TEST(NaasServeProcess, SigtermDrainFlushesStoreAndExitsZero) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  const std::string store = temp_store_path("sigterm_flush");
  std::remove(store.c_str());

  Child child;
  // --refresh-every 0: nothing is flushed per batch, so whatever the store
  // holds after SIGTERM got there through the drain path alone.
  ASSERT_TRUE(child.spawn({"--cache-path", store, "--refresh-every", "0"}));
  ASSERT_TRUE(child.send(kSearchRequest + "\n\n"));
  std::string response;
  ASSERT_TRUE(child.read_stdout_line(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  // The server is warm and idle (blocked reading stdin). Kill it politely.
  ASSERT_EQ(::kill(child.pid, SIGTERM), 0);
  EXPECT_EQ(child.wait_exit(), 0);

  // The completed result survived the kill.
  const search::StoreLoadResult loaded = search::ResultStore::load(store);
  EXPECT_EQ(loaded.status, search::StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 1u);
  std::remove(store.c_str());
}

TEST(NaasServeProcess, WarmRestartServesByteIdenticalResponse) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  const std::string store = temp_store_path("warm_restart");
  std::remove(store.c_str());

  std::string cold, warm;
  {
    Child child;
    ASSERT_TRUE(child.spawn({"--cache-path", store}));
    ASSERT_TRUE(child.send(kSearchRequest + "\n\n"));
    ASSERT_TRUE(child.read_stdout_line(&cold));
    child.close_in();  // EOF: normal exit path
    EXPECT_EQ(child.wait_exit(), 0);
  }
  {
    Child child;
    ASSERT_TRUE(child.spawn({"--cache-path", store}));
    ASSERT_TRUE(child.send(kSearchRequest + "\n\n"));
    ASSERT_TRUE(child.read_stdout_line(&warm));
    child.close_in();
    EXPECT_EQ(child.wait_exit(), 0);
    // The warm run served from the store without searching.
    std::string line;
    bool saw_zero_searches = false;
    while (child.read_stderr_line(&line, 2000))
      if (line.find("mapping searches run: 0") != std::string::npos)
        saw_zero_searches = true;
    EXPECT_TRUE(saw_zero_searches);
  }
  EXPECT_EQ(cold, warm);
  std::remove(store.c_str());
}

TEST(NaasServeProcess, StdinModeEnforcesProtocolLimits) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  Child child;
  ASSERT_TRUE(child.spawn({"--max-line-bytes", "64", "--max-batch", "1"}));
  // Three lines, one batch: an oversized line, a valid request, and a
  // request past the batch cap. Responses must come back in order.
  const std::string oversized(100, 'x');
  ASSERT_TRUE(child.send(oversized + "\n" +
                         "{\"id\":2,\"method\":\"cache_stats\"}\n" +
                         "{\"id\":3,\"method\":\"cache_stats\"}\n" + "\n"));
  std::string r1, r2, r3;
  ASSERT_TRUE(child.read_stdout_line(&r1));
  ASSERT_TRUE(child.read_stdout_line(&r2));
  ASSERT_TRUE(child.read_stdout_line(&r3));
  EXPECT_NE(r1.find("bad_request"), std::string::npos) << r1;
  EXPECT_NE(r1.find("\"id\":null"), std::string::npos) << r1;
  EXPECT_NE(r2.find("\"ok\":true"), std::string::npos) << r2;
  EXPECT_NE(r3.find("bad_request"), std::string::npos) << r3;
  EXPECT_NE(r3.find("\"id\":3"), std::string::npos) << r3;
  // The oversized line did not use up the single batch slot (the cap
  // bounds evaluated work); the meters saw both rejects.
  child.close_in();
  std::string line;
  bool saw_rejects = false;
  while (child.read_stderr_line(&line, 10000))
    if (line.find("2 protocol rejects") != std::string::npos)
      saw_rejects = true;
  EXPECT_TRUE(saw_rejects);
  EXPECT_EQ(child.wait_exit(), 0);
}

TEST(NaasServeProcess, SigintDrainsStdinModeLikeSigterm) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  const std::string store = temp_store_path("sigint_flush");
  std::remove(store.c_str());

  Child child;
  ASSERT_TRUE(child.spawn({"--cache-path", store, "--refresh-every", "0"}));
  ASSERT_TRUE(child.send(kSearchRequest + "\n\n"));
  std::string response;
  ASSERT_TRUE(child.read_stdout_line(&response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  // Ctrl-C must behave exactly like SIGTERM: finish what was taken,
  // flush the store, print the summary, exit 0 — not die mid-write.
  ASSERT_EQ(::kill(child.pid, SIGINT), 0);
  EXPECT_EQ(child.wait_exit(), 0);

  std::string line;
  bool saw_summary = false;
  while (child.read_stderr_line(&line, 2000))
    if (line.find("queries in") != std::string::npos) saw_summary = true;
  EXPECT_TRUE(saw_summary) << "no exit summary after SIGINT";

  const search::StoreLoadResult loaded = search::ResultStore::load(store);
  EXPECT_EQ(loaded.status, search::StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 1u);
  std::remove(store.c_str());
}

TEST(NaasServeProcess, MalformedFaultsSpecExitsLoudly) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  // A typo'd fault spec must refuse to start (exit 2, the usage code) —
  // a server quietly running with no faults armed would make a fault
  // soak green for the wrong reason.
  for (const char* bad : {"sock_read_short=2", "sock_read_short=1@abc",
                          "sock_read_short"}) {
    Child child;
    ASSERT_TRUE(child.spawn({"--faults", bad}));
    child.close_in();
    EXPECT_EQ(child.wait_exit(), 2) << bad;
    std::string line;
    bool saw_reason = false;
    while (child.read_stderr_line(&line, 2000))
      if (line.find("bad --faults spec") != std::string::npos)
        saw_reason = true;
    EXPECT_TRUE(saw_reason) << bad;
  }
}

TEST(NaasServeProcess, ListenModeServesAndDrainsOnSigterm) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  Child child;
  ASSERT_TRUE(child.spawn({"--listen", "127.0.0.1:0"}));
  // The bound port is announced on stderr.
  int port = 0;
  std::string line;
  while (port == 0 && child.read_stderr_line(&line, 30000)) {
    const std::size_t at = line.find("listening on 127.0.0.1:");
    if (at != std::string::npos)
      port = std::atoi(line.c_str() + at + std::strlen("listening on 127.0.0.1:"));
  }
  ASSERT_GT(port, 0);

  net::LineClient client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1", port, 5000, &err)) << err;
  ASSERT_TRUE(client.send_line(kSearchRequest));
  std::string response;
  ASSERT_TRUE(client.read_line(&response, 60000));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  client.close();

  ASSERT_EQ(::kill(child.pid, SIGTERM), 0);
  EXPECT_EQ(child.wait_exit(), 0);
}

TEST(NaasServeProcess, ListenModeDrainsOnSigint) {
  if (!binary_present()) GTEST_SKIP() << "naas_serve not in cwd";
  Child child;
  ASSERT_TRUE(child.spawn({"--listen", "127.0.0.1:0"}));
  int port = 0;
  std::string line;
  while (port == 0 && child.read_stderr_line(&line, 30000)) {
    const std::size_t at = line.find("listening on 127.0.0.1:");
    if (at != std::string::npos)
      port = std::atoi(line.c_str() + at +
                       std::strlen("listening on 127.0.0.1:"));
  }
  ASSERT_GT(port, 0);

  // Serve one request, then Ctrl-C: the listen loop must drain and exit 0
  // exactly as it does for SIGTERM.
  net::LineClient client;
  std::string err;
  ASSERT_TRUE(client.connect("127.0.0.1", port, 5000, &err)) << err;
  ASSERT_TRUE(client.send_line(kSearchRequest));
  std::string response;
  ASSERT_TRUE(client.read_line(&response, 60000));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  client.close();
  ASSERT_EQ(::kill(child.pid, SIGINT), 0);
  EXPECT_EQ(child.wait_exit(), 0);
}

}  // namespace
}  // namespace naas
