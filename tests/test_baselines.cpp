#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "arch/presets.hpp"
#include "baselines/nasaic.hpp"
#include "baselines/nhas.hpp"
#include "nn/model_zoo.hpp"
#include "search/result_store.hpp"

namespace naas::baselines {
namespace {

TEST(Nasaic, FindsAllocationForCifarNet) {
  const cost::CostModel model;
  NasaicOptions opts;
  opts.total_pes = 512;
  opts.pe_step = 128;
  const NasaicResult res = run_nasaic(model, nn::make_cifar_net(), opts);
  ASSERT_TRUE(std::isfinite(res.edp));
  EXPECT_GT(res.dla_pes, 0);
  EXPECT_GT(res.shi_pes, 0);
  EXPECT_EQ(res.dla_pes + res.shi_pes, 512);
  EXPECT_EQ(res.layers_on_dla + res.layers_on_shi,
            nn::make_cifar_net().num_layers());
  EXPECT_DOUBLE_EQ(res.edp, res.latency_cycles * res.energy_nj);
}

TEST(Nasaic, UsesBothIpsWhenWorkloadIsMixed) {
  // A network mixing conv (DLA-friendly) and depthwise (Shi-friendly)
  // layers should offload to both IPs.
  const cost::CostModel model;
  NasaicOptions opts;
  opts.total_pes = 512;
  opts.pe_step = 128;
  const NasaicResult res = run_nasaic(model, nn::make_mobilenet_v2(), opts);
  ASSERT_TRUE(std::isfinite(res.edp));
  EXPECT_GT(res.layers_on_dla, 0);
  EXPECT_GT(res.layers_on_shi, 0);
}

TEST(Nasaic, LargerBudgetNeverWorse) {
  const cost::CostModel model;
  NasaicOptions small;
  small.total_pes = 256;
  small.pe_step = 64;
  NasaicOptions big = small;
  big.total_pes = 1024;
  big.total_onchip_bytes = 2LL * 1024 * 1024;
  const auto net = nn::make_cifar_net();
  const auto rs = run_nasaic(model, net, small);
  const auto rb = run_nasaic(model, net, big);
  EXPECT_LE(rb.latency_cycles, rs.latency_cycles * 1.001);
}

TEST(Nasaic, WarmStartFromStoreIsBitIdentical) {
  const std::string path =
      ::testing::TempDir() + "naas_store_nasaic_test.bin";
  std::remove(path.c_str());

  const cost::CostModel model;
  NasaicOptions opts;
  opts.total_pes = 256;
  opts.pe_step = 64;
  opts.num_threads = 1;
  opts.cache_path = path;
  const auto net = nn::make_cifar_net();
  const auto cold = run_nasaic(model, net, opts);
  ASSERT_EQ(search::ResultStore::load(path).status,
            search::StoreStatus::kOk);
  const auto warm = run_nasaic(model, net, opts);
  EXPECT_EQ(warm.edp, cold.edp);
  EXPECT_EQ(warm.latency_cycles, cold.latency_cycles);
  EXPECT_EQ(warm.energy_nj, cold.energy_nj);
  EXPECT_EQ(warm.dla_pes, cold.dla_pes);
  EXPECT_EQ(warm.shi_pes, cold.shi_pes);
  std::remove(path.c_str());
}

TEST(Nasaic, ToStringDescribesAllocation) {
  const cost::CostModel model;
  NasaicOptions opts;
  opts.total_pes = 256;
  opts.pe_step = 64;
  const auto res = run_nasaic(model, nn::make_cifar_net(), opts);
  const std::string s = res.to_string();
  EXPECT_NE(s.find("DLA"), std::string::npos);
  EXPECT_NE(s.find("EDP"), std::string::npos);
}

TEST(Nhas, SearchesSizingOnlyDesign) {
  const cost::CostModel model;
  nas::CoSearchOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.hw_population = 5;
  opts.hw_iterations = 3;
  opts.seed = 13;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.subnet.min_accuracy = 76.5;
  opts.subnet.population = 5;
  opts.subnet.iterations = 2;
  const auto res = run_nhas(model, opts);
  ASSERT_TRUE(std::isfinite(res.best_edp));
  // NHAS never changes connectivity: on Eyeriss resources it resizes the
  // given row-stationary R x Y' design.
  EXPECT_EQ(res.best_arch.num_array_dims, 2);
  EXPECT_EQ(res.best_arch.parallel_dims[0], nn::Dim::kR);
  EXPECT_EQ(res.best_arch.parallel_dims[1], nn::Dim::kYp);
  EXPECT_TRUE(opts.resources.allows(res.best_arch));
}

TEST(Nhas, FullNaasBeatsNhasOnEdp) {
  // Fig. 10's mechanism: with the same budgets, adding connectivity +
  // loop-order freedom must reach an EDP at least as good as NHAS. NAAS's
  // genome is three times larger, so it needs a non-trivial (but still
  // test-sized) outer budget before the superset space pays off.
  const cost::CostModel model;
  nas::CoSearchOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.hw_population = 8;
  opts.hw_iterations = 8;
  opts.seed = 29;
  opts.mapping.population = 8;
  opts.mapping.iterations = 4;
  opts.subnet.min_accuracy = 76.5;
  opts.subnet.population = 5;
  opts.subnet.iterations = 2;

  const auto nhas = run_nhas(model, opts);
  const auto naas = nas::run_cosearch(model, opts);
  ASSERT_TRUE(std::isfinite(nhas.best_edp));
  ASSERT_TRUE(std::isfinite(naas.best_edp));
  EXPECT_LE(naas.best_edp, nhas.best_edp * 1.05);
}

}  // namespace
}  // namespace naas::baselines
