#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace naas::core {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanClampsNonPositive) {
  // A zero must not collapse the aggregate to zero exactly, but it should
  // drag it far down.
  const double g = geomean({0.0, 1e10});
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 1.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, ArgminArgmax) {
  EXPECT_EQ(argmin({}), -1);
  EXPECT_EQ(argmax({}), -1);
  EXPECT_EQ(argmin({3.0, 1.0, 2.0, 1.0}), 1);  // first of the ties
  EXPECT_EQ(argmax({3.0, 5.0, 5.0}), 1);
}

TEST(Stats, RanksAscending) {
  const auto r = ranks_ascending({10.0, 5.0, 20.0});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
  EXPECT_EQ(r[2], 2);
}

TEST(Stats, RanksTiesStableByIndex) {
  const auto r = ranks_ascending({1.0, 1.0, 0.5});
  EXPECT_EQ(r[2], 0);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 2);
}

}  // namespace
}  // namespace naas::core
