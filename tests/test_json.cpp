#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace naas::serve {
namespace {

Json parse_ok(const std::string& text) {
  std::string error;
  Json j = Json::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error << " for: " << text;
  return j;
}

std::string parse_err(const std::string& text) {
  std::string error;
  Json::parse(text, &error);
  EXPECT_FALSE(error.empty()) << "expected failure for: " << text;
  return error;
}

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(parse_ok("null").dump(), "null");
  EXPECT_EQ(parse_ok("true").dump(), "true");
  EXPECT_EQ(parse_ok("false").dump(), "false");
  EXPECT_EQ(parse_ok("42").dump(), "42");
  EXPECT_EQ(parse_ok("-7").dump(), "-7");
  EXPECT_EQ(parse_ok("0.5").dump(), "0.5");
  EXPECT_EQ(parse_ok("\"hi\"").dump(), "\"hi\"");
  EXPECT_EQ(parse_ok("  42  ").dump(), "42");
}

TEST(Json, IntegersStayExact) {
  const Json j = parse_ok("9007199254740993");  // 2^53 + 1
  EXPECT_TRUE(j.is_int());
  EXPECT_EQ(j.as_int(), 9007199254740993LL);
  EXPECT_EQ(j.dump(), "9007199254740993");
}

TEST(Json, HugeIntegerFallsBackToDouble) {
  const Json j = parse_ok("123456789012345678901234567890");
  EXPECT_TRUE(j.is_number());
  EXPECT_FALSE(j.is_int());
}

TEST(Json, DoubleRoundTripsBitExact) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -1e-300,
                         3463492068843.639, 0.30000000000000004}) {
    const std::string text = format_double(v);
    std::string error;
    const Json j = Json::parse(text, &error);
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(j.as_double(), v) << text;
  }
}

TEST(Json, NonFiniteDumpsAsNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
  // And null reads back as NaN, keeping +inf EDP representable in spirit.
  EXPECT_TRUE(std::isnan(parse_ok("null").as_double()));
}

TEST(Json, StringEscapes) {
  const Json j = parse_ok("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(j.as_string(), "a\"b\\c\n\tA\xc3\xa9");
  // Control characters re-escape on dump.
  EXPECT_EQ(Json::string("x\ny").dump(), "\"x\\ny\"");
  EXPECT_EQ(Json::string(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, SurrogatePairs) {
  const Json j = parse_ok("\"\\ud83d\\ude00\"");  // 😀 U+1F600
  EXPECT_EQ(j.as_string(), "\xf0\x9f\x98\x80");
  parse_err("\"\\ud83d\"");        // unpaired high surrogate
  parse_err("\"\\ude00\"");        // lone low surrogate
}

TEST(Json, NestedStructures) {
  const Json j = parse_ok(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "f"})");
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.size(), 3u);
  const Json* a = j.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(0).as_int(), 1);
  EXPECT_TRUE(a->at(2).get("b")->as_bool());
  EXPECT_TRUE(j.get("c")->get("d")->is_null());
  EXPECT_EQ(j.get("missing"), nullptr);
  // Out-of-range array access returns the null sentinel, not UB.
  EXPECT_TRUE(a->at(99).is_null());
}

TEST(Json, DumpPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json::integer(1));
  obj.set("a", Json::integer(2));
  obj.set("m", Json::integer(3));
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  obj.set("a", Json::integer(9));  // overwrite keeps position
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, ParseDumpFixpoint) {
  const std::string text =
      "{\"id\":1,\"ok\":true,\"result\":{\"edp\":0.1875,"
      "\"order\":[\"K\",\"C\"],\"n\":null}}";
  EXPECT_EQ(parse_ok(text).dump(), text);
}

TEST(Json, RawSplicesVerbatim) {
  Json obj = Json::object();
  obj.set("result", Json::raw("{\"cached\":true}"));
  EXPECT_EQ(obj.dump(), "{\"result\":{\"cached\":true}}");
}

TEST(Json, MalformedInputsReportErrors) {
  parse_err("");
  parse_err("{");
  parse_err("[1,");
  parse_err("{\"a\":}");
  parse_err("{\"a\" 1}");
  parse_err("\"unterminated");
  parse_err("tru");
  parse_err("01x");
  parse_err("1 2");            // trailing characters
  parse_err("{\"a\":1,}");     // trailing comma
  parse_err("nul");
  parse_err("\"bad\\escape\"");
  parse_err("-");
  // RFC 8259 number grammar: no leading zeros, digits required around
  // '.' and after 'e' (strtod would accept several of these).
  parse_err("01");
  parse_err("-01");
  parse_err("1.");
  parse_err(".5");
  parse_err("-.5");
  parse_err("1e");
  parse_err("1e+");
  parse_ok("0");
  parse_ok("-0.25");
  parse_ok("2e10");
  // Error messages carry a position.
  EXPECT_NE(parse_err("[1, x]").find("offset"), std::string::npos);
}

TEST(Json, DepthLimitRejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  parse_err(deep);
  // At sane depth the same shape parses.
  parse_ok("[[[[[[[[1]]]]]]]]");
}

TEST(Json, WrongTypeAccessorsAreNeutral) {
  const Json j = parse_ok("\"text\"");
  EXPECT_EQ(j.as_int(7), 7);
  EXPECT_FALSE(j.as_bool());
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(Json::integer(5).as_string(), "");
}

}  // namespace
}  // namespace naas::serve
