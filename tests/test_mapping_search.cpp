#include "search/mapping_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace naas::search {
namespace {

MappingSearchOptions small_budget(std::uint64_t seed = 1) {
  MappingSearchOptions opts;
  opts.population = 10;
  opts.iterations = 6;
  opts.seed = seed;
  return opts;
}

TEST(MappingSearch, ReturnsLegalMapping) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  const auto res = search_mapping(model, arch, layer, small_budget());
  EXPECT_TRUE(std::isfinite(res.best_edp));
  EXPECT_TRUE(mapping::check(res.best, layer, arch).legal);
  EXPECT_GT(res.evaluations, 0);
}

TEST(MappingSearch, BeatsOrMatchesCanonicalWhenSeeded) {
  const cost::CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 96, 96, 3, 1, 28);
  const auto res = search_mapping(model, arch, layer, small_budget());
  double best_canonical = std::numeric_limits<double>::infinity();
  for (auto df : {arch::Dataflow::kWeightStationary,
                  arch::Dataflow::kOutputStationary,
                  arch::Dataflow::kRowStationary}) {
    const auto rep =
        model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer, df));
    if (rep.legal) best_canonical = std::min(best_canonical, rep.edp);
  }
  EXPECT_LE(res.best_edp, best_canonical);
}

TEST(MappingSearch, SearchImprovesOverCanonicalOnSomeLayer) {
  // The searched mapping should strictly beat every canonical preset on at
  // least one realistic layer (otherwise the mapping space search would be
  // pointless).
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layers[] = {
      nn::make_conv("a", 64, 128, 3, 1, 28),
      nn::make_conv("b", 256, 256, 3, 1, 14),
      nn::make_dwconv("c", 96, 3, 1, 56),
      nn::make_conv("d", 3, 64, 7, 2, 112),
  };
  bool strict_improvement = false;
  for (const auto& layer : layers) {
    MappingSearchOptions opts = small_budget(7);
    opts.iterations = 12;
    const auto res = search_mapping(model, arch, layer, opts);
    double best_canonical = std::numeric_limits<double>::infinity();
    for (auto df : {arch::Dataflow::kWeightStationary,
                    arch::Dataflow::kOutputStationary,
                    arch::Dataflow::kRowStationary}) {
      const auto rep = model.evaluate(
          arch, layer, mapping::canonical_mapping(arch, layer, df));
      if (rep.legal) best_canonical = std::min(best_canonical, rep.edp);
    }
    if (res.best_edp < best_canonical * 0.999) strict_improvement = true;
  }
  EXPECT_TRUE(strict_improvement);
}

TEST(MappingSearch, DeterministicForSeed) {
  const cost::CostModel model;
  const auto arch = arch::shidiannao_arch();
  const nn::Workload layer = nn::make_conv("c", 32, 64, 3, 1, 28);
  const auto a = search_mapping(model, arch, layer, small_budget(5));
  const auto b = search_mapping(model, arch, layer, small_budget(5));
  EXPECT_DOUBLE_EQ(a.best_edp, b.best_edp);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(MappingSearch, ShardedBatchesMatchSerialForAwkwardThreadCounts) {
  // Regression: generation sharding must stay in range and bit-identical
  // for pool sizes that do not divide the population (12 candidates over
  // 8 threads once rounded a shard past the end of the batch).
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 32, 64, 3, 1, 28);
  MappingSearchOptions opts = small_budget(3);
  opts.population = 12;
  const auto serial = search_mapping(model, arch, layer, opts);
  for (int threads : {2, 5, 8, 13}) {
    core::ThreadPool pool(threads);
    const auto sharded = search_mapping(model, arch, layer, opts, &pool);
    EXPECT_DOUBLE_EQ(sharded.best_edp, serial.best_edp) << threads;
    EXPECT_EQ(sharded.evaluations, serial.evaluations) << threads;
    EXPECT_EQ(sharded.report.edp, serial.report.edp) << threads;
    EXPECT_EQ(sharded.candidates_batch_evaluated,
              serial.candidates_batch_evaluated)
        << threads;
  }
}

TEST(MappingSearch, UnseededStillFindsLegalMapping) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_fc("fc", 4096, 1000);
  MappingSearchOptions opts = small_budget(3);
  opts.seed_canonical = false;
  const auto res = search_mapping(model, arch, layer, opts);
  EXPECT_TRUE(std::isfinite(res.best_edp));
  EXPECT_TRUE(mapping::check(res.best, layer, arch).legal);
}

TEST(MappingSearch, ReportMatchesBestMapping) {
  const cost::CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 48, 48, 3, 1, 14);
  const auto res = search_mapping(model, arch, layer, small_budget(9));
  const auto rep = model.evaluate(arch, layer, res.best);
  EXPECT_DOUBLE_EQ(rep.edp, res.best_edp);
  EXPECT_DOUBLE_EQ(rep.edp, res.report.edp);
}

TEST(MappingSearch, MoreBudgetNeverWorse) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_1024_arch();
  const nn::Workload layer = nn::make_conv("c", 128, 256, 3, 1, 14);
  MappingSearchOptions tiny = small_budget(21);
  tiny.population = 6;
  tiny.iterations = 2;
  MappingSearchOptions big = small_budget(21);
  big.population = 12;
  big.iterations = 12;
  const auto small_res = search_mapping(model, arch, layer, tiny);
  const auto big_res = search_mapping(model, arch, layer, big);
  // Not guaranteed in general for stochastic search, but with canonical
  // seeding both include the same floor; the larger budget explores a
  // superset of generations from the same optimizer trajectory.
  EXPECT_LE(big_res.best_edp, small_res.best_edp * 1.001);
}

}  // namespace
}  // namespace naas::search
