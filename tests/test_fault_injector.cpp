#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace naas {
namespace {

using core::FaultInjector;
using core::ScopedFaults;

TEST(FaultInjector, DisarmedByDefaultAndZeroConsultCost) {
  FaultInjector::instance().disarm();
  EXPECT_FALSE(FaultInjector::armed());
  // The free helper short-circuits on armed(): no counters move while
  // disarmed, which is the "zero-cost when disabled" contract.
  EXPECT_FALSE(core::fault("sock_read_short"));
  EXPECT_EQ(FaultInjector::instance().consulted("sock_read_short"), 0);
}

TEST(FaultInjector, ProbabilityOneAlwaysFires) {
  ScopedFaults faults("store_append_fail=1");
  EXPECT_TRUE(FaultInjector::armed());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(core::fault("store_append_fail"));
  EXPECT_EQ(FaultInjector::instance().fired("store_append_fail"), 8);
  EXPECT_EQ(FaultInjector::instance().consulted("store_append_fail"), 8);
}

TEST(FaultInjector, ProbabilityZeroNeverFires) {
  ScopedFaults faults("sock_read_reset=0");
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(core::fault("sock_read_reset"));
  EXPECT_EQ(FaultInjector::instance().fired("sock_read_reset"), 0);
  EXPECT_EQ(FaultInjector::instance().consulted("sock_read_reset"), 8);
}

TEST(FaultInjector, MaxFiresBoundsTheDamage) {
  ScopedFaults faults("refresh_fail=1@2");
  EXPECT_TRUE(core::fault("refresh_fail"));
  EXPECT_TRUE(core::fault("refresh_fail"));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(core::fault("refresh_fail"));
  EXPECT_EQ(FaultInjector::instance().fired("refresh_fail"), 2);
}

TEST(FaultInjector, SkipDelaysTheFirstFire) {
  ScopedFaults faults("sock_write_stall=1+3");
  EXPECT_FALSE(core::fault("sock_write_stall"));
  EXPECT_FALSE(core::fault("sock_write_stall"));
  EXPECT_FALSE(core::fault("sock_write_stall"));
  EXPECT_TRUE(core::fault("sock_write_stall"));
}

TEST(FaultInjector, DecisionStreamIsDeterministicPerSeed) {
  const auto sample = [](const std::string& spec) {
    ScopedFaults faults(spec);
    std::vector<bool> decisions;
    for (int i = 0; i < 64; ++i)
      decisions.push_back(core::fault("sock_read_short"));
    return decisions;
  };
  const auto a = sample("seed=7,sock_read_short=0.5");
  const auto b = sample("seed=7,sock_read_short=0.5");
  const auto c = sample("seed=8,sock_read_short=0.5");
  EXPECT_EQ(a, b);  // same spec replays bit-for-bit
  EXPECT_NE(a, c);  // a different seed is a different run
  // Probability 0.5 over 64 draws fires somewhere strictly between the
  // extremes for any reasonable mixer.
  int fires = 0;
  for (const bool d : a) fires += d ? 1 : 0;
  EXPECT_GT(fires, 8);
  EXPECT_LT(fires, 56);
}

TEST(FaultInjector, SitesDrawIndependentStreams) {
  ScopedFaults faults("seed=7,sock_read_short=0.5,sock_write_short=0.5");
  std::vector<bool> reads, writes;
  for (int i = 0; i < 64; ++i) {
    reads.push_back(core::fault("sock_read_short"));
    writes.push_back(core::fault("sock_write_short"));
  }
  EXPECT_NE(reads, writes);
}

TEST(FaultInjector, MalformedSpecRejectsAndDisarms) {
  std::string err;
  EXPECT_FALSE(FaultInjector::instance().configure("sock_read_short", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(
      FaultInjector::instance().configure("sock_read_short=notanumber", &err));
  EXPECT_FALSE(FaultInjector::instance().configure("=0.5", &err));
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(FaultInjector, OutOfRangeAndGarbageValuesRejectLoudly) {
  // Every malformed spec must reject-and-disarm, never be quietly
  // reinterpreted: a vacuously-armed injector makes fault runs green for
  // the wrong reason.
  std::string err;
  for (const char* bad :
       {"sock_read_short=1.5",       // probability > 1
        "sock_read_short=-0.25",     // negative probability
        "sock_read_short=0.5junk",   // trailing garbage after the number
        "sock_read_short=0.5,extra", // item without '='
        "sock_read_short=1@abc",     // non-numeric @maxfires
        "sock_read_short=1@-3",      // negative @maxfires
        "sock_read_short=1@",        // empty @maxfires
        "sock_read_short=1+x",       // non-numeric +skip
        "sock_read_short=1+"}) {     // empty +skip
    err.clear();
    EXPECT_FALSE(FaultInjector::instance().configure(bad, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
    EXPECT_FALSE(FaultInjector::armed()) << bad;
    EXPECT_FALSE(core::fault("sock_read_short")) << bad;
  }
}

TEST(FaultInjector, EmptySpecDisarms) {
  FaultInjector::instance().configure("store_save_fail=1");
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_TRUE(FaultInjector::instance().configure(""));
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(FaultInjector, SummaryListsConsultedSites) {
  ScopedFaults faults("store_append_fail=1@1");
  (void)core::fault("store_append_fail");
  (void)core::fault("store_append_fail");
  const std::string summary = FaultInjector::instance().summary();
  EXPECT_NE(summary.find("store_append_fail: 1/2"), std::string::npos)
      << summary;
}

TEST(FaultInjector, UnknownSitesNeverFireButAreCounted) {
  ScopedFaults faults("store_append_fail=1");
  EXPECT_FALSE(core::fault("no_such_site"));
  EXPECT_EQ(FaultInjector::instance().consulted("no_such_site"), 1);
  EXPECT_EQ(FaultInjector::instance().fired("no_such_site"), 0);
}

}  // namespace
}  // namespace naas
