// Property tests for the batched cost model: CostModel::evaluate_batch
// must be byte-for-byte identical (on serialized reports) to per-candidate
// CostModel::evaluate for any batch size and any mix of legal, illegal,
// and degenerate candidates — the system-wide determinism invariant the
// search, store, and serving layers all rest on.

#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"
#include "test_seed.hpp"

namespace naas::cost {
namespace {

/// Exact byte image of a report: every double as its IEEE bit pattern,
/// the legality flag, and the reason string. Two reports serialize
/// identically iff they are bit-identical.
std::string serialize_report(const CostReport& r) {
  core::ByteWriter w;
  w.u8(r.legal ? 1 : 0);
  w.str(r.illegal_reason);
  for (double v : {r.macs, r.compute_cycles, r.noc_cycles, r.dram_cycles,
                   r.latency_cycles, r.energy.mac_pj, r.energy.l1_pj,
                   r.energy.l2_pj, r.energy.noc_pj, r.energy.dram_pj,
                   r.energy_nj, r.edp, r.pe_utilization, r.dram_bytes,
                   r.l2_read_bytes, r.l2_write_bytes, r.l1_access_bytes,
                   r.noc_delivery_bytes, r.reduction_hop_bytes})
    w.f64(v);
  return w.bytes();
}

nn::Workload random_layer(core::Rng& rng) {
  const int kernel = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3, 5
  const int stride = rng.uniform_int(1, 2);
  const int out_hw = rng.uniform_int(1, 28);
  if (rng.bernoulli(0.35))
    return nn::make_dwconv("dw", rng.uniform_int(1, 96), kernel, stride,
                           out_hw, rng.uniform_int(1, 2));
  return nn::make_conv("cv", rng.uniform_int(1, 64), rng.uniform_int(1, 64),
                       kernel, stride, out_hw, rng.uniform_int(1, 2));
}

arch::ArchConfig random_arch(core::Rng& rng) {
  if (rng.bernoulli(0.25)) {
    const arch::ArchConfig presets[] = {
        arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch()};
    return presets[rng.uniform_int(0, 2)];
  }
  arch::ArchConfig cfg;
  cfg.name = "rand";
  cfg.num_array_dims = rng.uniform_int(1, 3);
  const nn::Dim dims[] = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kYp,
                          nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS,
                          nn::Dim::kN};
  std::vector<nn::Dim> pool(dims, dims + 7);
  rng.shuffle(pool);
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    cfg.array_dims[static_cast<std::size_t>(a)] = rng.uniform_int(1, 16);
    cfg.parallel_dims[static_cast<std::size_t>(a)] =
        pool[static_cast<std::size_t>(a)];
  }
  cfg.l1_bytes = 1LL << rng.uniform_int(6, 11);
  cfg.l2_bytes = 1LL << rng.uniform_int(12, 18);
  cfg.noc_bandwidth = 1 << rng.uniform_int(2, 6);
  cfg.dram_bandwidth = 1 << rng.uniform_int(2, 6);
  return cfg;
}

mapping::LoopOrder random_order(core::Rng& rng, bool allow_invalid) {
  std::vector<nn::Dim> dims;
  for (nn::Dim d : nn::all_dims()) dims.push_back(d);
  rng.shuffle(dims);
  mapping::LoopOrder order;
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = dims[i];
  if (allow_invalid && rng.bernoulli(0.1)) order[0] = order[1];  // duplicate
  return order;
}

/// Candidate generator mixing repaired-legal, perturbed, out-of-range, and
/// malformed-order mappings so every legality branch is exercised.
mapping::Mapping random_candidate(core::Rng& rng, const arch::ArchConfig& arch,
                                  const nn::Workload& layer) {
  mapping::Mapping m;
  m.dram.order = random_order(rng, true);
  m.pe.order = random_order(rng, true);
  m.pe_order = random_order(rng, true);
  for (nn::Dim d : nn::all_dims()) {
    const int bound = layer.dim_size(d);
    // 0 and 2*bound are deliberately reachable: out-of-range tiles must
    // take the illegal path, not be clamped away.
    mapping::set_tile(m.dram.tile, d, rng.uniform_int(0, 2 * bound));
    mapping::set_tile(m.pe.tile, d, rng.uniform_int(0, bound + 1));
  }
  if (rng.bernoulli(0.5)) m = mapping::repair(m, layer, arch);
  return m;
}

/// The core property: evaluating `candidates` through evaluate_batch in
/// chunks of `batch_size` must reproduce the per-candidate scalar reports
/// byte for byte.
void expect_batch_matches_scalar(const CostModel& model,
                                 const arch::ArchConfig& arch,
                                 const nn::Workload& layer,
                                 const std::vector<mapping::Mapping>& cands,
                                 std::size_t batch_size) {
  std::vector<std::string> scalar;
  scalar.reserve(cands.size());
  for (const auto& m : cands)
    scalar.push_back(serialize_report(model.evaluate(arch, layer, m)));

  const LayerContext ctx = model.make_context(arch, layer);
  std::vector<CostReport> reports(cands.size());
  for (std::size_t lo = 0; lo < cands.size(); lo += batch_size) {
    const std::size_t len = std::min(batch_size, cands.size() - lo);
    model.evaluate_batch(
        ctx, std::span<const mapping::Mapping>(cands).subspan(lo, len),
        std::span<CostReport>(reports).subspan(lo, len));
  }
  for (std::size_t i = 0; i < cands.size(); ++i)
    EXPECT_EQ(scalar[i], serialize_report(reports[i]))
        << "candidate " << i << " diverged at batch size " << batch_size
        << " (legal=" << reports[i].legal << ", reason='"
        << reports[i].illegal_reason << "')";
}

TEST(CostBatch, MatchesScalarForAnyBatchSizeOnRandomWorkloads) {
  const CostModel model;
  core::Rng rng(test::sweep_seed(20260726));
  for (int round = 0; round < 40; ++round) {
    const nn::Workload layer = random_layer(rng);
    const arch::ArchConfig arch = random_arch(rng);
    std::vector<mapping::Mapping> cands;
    for (int i = 0; i < 24; ++i)
      cands.push_back(random_candidate(rng, arch, layer));
    // 1 (the scalar fallback), a population-sized batch, and a prime odd
    // size that never divides the candidate count evenly.
    for (std::size_t batch_size : {std::size_t{1}, std::size_t{12},
                                   std::size_t{7}})
      expect_batch_matches_scalar(model, arch, layer, cands, batch_size);
  }
}

TEST(CostBatch, LegalityReasonsMatchMappingCheck) {
  // The batched legality pass reimplements mapping::check against the
  // context; the two must never drift — same verdicts, same reasons.
  const CostModel model;
  core::Rng rng(test::sweep_seed(4242));
  int illegal_seen = 0;
  for (int round = 0; round < 200; ++round) {
    const nn::Workload layer = random_layer(rng);
    const arch::ArchConfig arch = random_arch(rng);
    if (!arch.valid()) continue;
    const mapping::Mapping m = random_candidate(rng, arch, layer);
    const auto legality = mapping::check(m, layer, arch);
    const CostReport rep = model.evaluate(arch, layer, m);
    EXPECT_EQ(rep.legal, legality.legal);
    EXPECT_EQ(rep.illegal_reason, legality.reason);
    if (!legality.legal) ++illegal_seen;
  }
  EXPECT_GT(illegal_seen, 20) << "generator stopped producing illegal cases";
}

TEST(CostBatch, ScalarEntryPointIsBatchOfOne) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const auto layer = nn::make_conv("c", 64, 64, 3, 1, 28);
  const auto m = mapping::canonical_mapping(arch, layer);
  const LayerContext ctx = model.make_context(arch, layer);
  CostReport batch_rep;
  model.evaluate_batch(ctx, {&m, 1}, {&batch_rep, 1});
  EXPECT_EQ(serialize_report(model.evaluate(arch, layer, m)),
            serialize_report(batch_rep));
}

TEST(CostBatch, ReusedReportSlotsAreFullyOverwritten) {
  // Callers recycle report buffers across generations; stale illegal
  // reasons or metrics must never survive into a later batch's results.
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const auto layer = nn::make_conv("c", 32, 32, 3, 1, 14);
  const auto m = mapping::canonical_mapping(arch, layer);
  const LayerContext ctx = model.make_context(arch, layer);
  CostReport stale;
  stale.illegal_reason = "stale reason from a previous batch";
  stale.edp = 123.0;
  model.evaluate_batch(ctx, {&m, 1}, {&stale, 1});
  ASSERT_TRUE(stale.legal);
  EXPECT_TRUE(stale.illegal_reason.empty());
  EXPECT_EQ(serialize_report(stale),
            serialize_report(model.evaluate(arch, layer, m)));
}

TEST(CostBatch, OverflowingPeCountIsIllegalNotNaN) {
  // 65536 x 65536 passes ArchConfig::valid() but its PE count overflows
  // int; the old scalar path fed that into pe_utilization. The context
  // gate must reject it with a reason and leave no NaN/inf leak beyond
  // the legacy illegal edp=+inf convention.
  arch::ArchConfig huge;
  huge.num_array_dims = 2;
  huge.array_dims = {65536, 65536, 1};
  huge.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  ASSERT_TRUE(huge.valid());
  const auto layer = nn::make_conv("c", 8, 8, 1, 1, 8);
  const CostModel model;
  const CostReport rep =
      model.evaluate(huge, layer, mapping::canonical_mapping(huge, layer));
  EXPECT_FALSE(rep.legal);
  EXPECT_NE(rep.illegal_reason.find("degenerate"), std::string::npos)
      << rep.illegal_reason;
  EXPECT_FALSE(std::isnan(rep.pe_utilization));
  EXPECT_FALSE(std::isnan(rep.noc_cycles));
  EXPECT_FALSE(std::isnan(rep.dram_cycles));
}

TEST(CostBatch, ZeroBandwidthIsIllegalNotInf) {
  arch::ArchConfig bad = arch::nvdla_256_arch();
  bad.dram_bandwidth = 0;
  const auto layer = nn::make_conv("c", 8, 8, 1, 1, 8);
  const CostModel model;
  const CostReport rep = model.evaluate(
      bad, layer, mapping::canonical_mapping(arch::nvdla_256_arch(), layer));
  EXPECT_FALSE(rep.legal);
  EXPECT_FALSE(rep.illegal_reason.empty());
  EXPECT_FALSE(std::isinf(rep.dram_cycles));
  EXPECT_FALSE(std::isnan(rep.dram_cycles));
}

}  // namespace
}  // namespace naas::cost
