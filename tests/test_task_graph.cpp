#include "core/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "arch/presets.hpp"
#include "nn/model_zoo.hpp"
#include "search/accelerator_search.hpp"
#include "search/cma_es.hpp"
#include "search/eval_pipeline.hpp"
#include "search/speculation.hpp"

namespace naas {
namespace {

// ------------------------------------------------------------ scheduling

TEST(TaskGraph, RunsEveryTaskOnce) {
  for (int threads : {1, 4}) {
    core::ThreadPool pool(threads);
    core::TaskGraph graph(&pool);
    std::vector<std::atomic<int>> runs(64);
    for (std::size_t i = 0; i < runs.size(); ++i)
      graph.submit([&runs, i] { runs[i].fetch_add(1); });
    graph.run();
    for (const auto& r : runs) EXPECT_EQ(r.load(), 1) << threads;
    EXPECT_EQ(graph.stats().tasks_executed, 64) << threads;
  }
}

TEST(TaskGraph, DependenciesOrderExecution) {
  for (int threads : {1, 4}) {
    core::ThreadPool pool(threads);
    core::TaskGraph graph(&pool);
    std::mutex m;
    std::vector<int> order;
    const auto log = [&](int id) {
      std::lock_guard<std::mutex> lk(m);
      order.push_back(id);
    };
    // Diamond: 0 -> {1, 2} -> 3.
    const auto a = graph.submit([&] { log(0); });
    const auto b = graph.submit([&] { log(1); }, {a});
    const auto c = graph.submit([&] { log(2); }, {a});
    graph.submit([&] { log(3); }, {b, c});
    graph.run();
    ASSERT_EQ(order.size(), 4u) << threads;
    EXPECT_EQ(order.front(), 0) << threads;
    EXPECT_EQ(order.back(), 3) << threads;
  }
}

TEST(TaskGraph, DependencyOnCompletedTaskIsSatisfied) {
  core::TaskGraph graph(nullptr);  // serial inline mode
  int x = 0;
  const auto a = graph.submit([&] { x = 1; });
  graph.run();
  // `a` already completed; a dependent submitted afterwards runs normally.
  graph.submit([&] { x = 2; }, {a});
  graph.run();
  EXPECT_EQ(x, 2);
}

TEST(TaskGraph, NestedSubmissionFromTaskBody) {
  for (int threads : {1, 4}) {
    core::ThreadPool pool(threads);
    core::TaskGraph graph(&pool);
    std::atomic<int> leaves{0};
    graph.submit([&] {
      for (int i = 0; i < 8; ++i) {
        graph.submit([&] {
          // Two levels of nesting: tasks submitted by a nested task.
          graph.submit([&] { leaves.fetch_add(1); });
        });
      }
    });
    graph.run();
    EXPECT_EQ(leaves.load(), 8) << threads;
  }
}

TEST(TaskGraph, PromiseGatesDependentsUntilFulfilled) {
  for (int threads : {1, 4}) {
    core::ThreadPool pool(threads);
    core::TaskGraph graph(&pool);
    std::atomic<bool> chain_done{false};
    std::atomic<bool> dependent_saw_done{false};
    const auto done = graph.make_promise();
    // The chain grows dynamically: the first task submits the second, the
    // second fulfills the promise — exactly how a mapping-search chain
    // exposes one id before its tail exists.
    graph.submit([&] {
      graph.submit([&] {
        chain_done.store(true);
        graph.fulfill(done);
      });
    });
    graph.submit([&] { dependent_saw_done.store(chain_done.load()); },
                 {done});
    graph.run();
    EXPECT_TRUE(dependent_saw_done.load()) << threads;
  }
}

TEST(TaskGraph, SpeculativeTasksRunAfterNormalInSerialMode) {
  core::TaskGraph graph(nullptr);
  std::vector<int> order;
  graph.submit([&] { order.push_back(2); }, {},
               core::TaskGraph::Priority::kSpeculative);
  graph.submit([&] { order.push_back(0); });
  graph.submit([&] { order.push_back(1); });
  graph.run();
  // Normal work preempts speculation even though the speculative task was
  // submitted first; all tasks still run before quiescence.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(TaskGraph, PromoteMovesSpeculativeTaskToNormalClass) {
  core::TaskGraph graph(nullptr);
  std::vector<int> order;
  const auto spec = graph.submit([&] { order.push_back(0); }, {},
                                 core::TaskGraph::Priority::kSpeculative);
  graph.submit([&] { order.push_back(1); });
  graph.promote(spec);
  graph.run();
  // Promoted before running: competes in the normal class and wins by id
  // order (un-promoted it would run last; see the test above).
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  // Promoting a completed task is a harmless no-op.
  graph.promote(spec);
}

// ---------------------------------------------------------------- errors

TEST(TaskGraph, ExceptionPropagatesAndCancelsRemainder) {
  for (int threads : {1, 4}) {
    core::ThreadPool pool(threads);
    core::TaskGraph graph(&pool);
    const auto boom = graph.submit(
        [] { throw std::runtime_error("task failed"); });
    std::atomic<bool> dependent_ran{false};
    graph.submit([&] { dependent_ran.store(true); }, {boom});
    EXPECT_THROW(graph.run(), std::runtime_error) << threads;
    // run() rethrew after quiescing; the dependent's body was skipped, not
    // run, and every task is accounted for as executed or skipped.
    EXPECT_FALSE(dependent_ran.load()) << threads;
    EXPECT_EQ(graph.stats().tasks_executed + graph.stats().tasks_skipped, 2)
        << threads;
  }
}

TEST(TaskGraph, ErrorWithUnfulfilledPromiseStillTerminates) {
  core::TaskGraph graph(nullptr);
  const auto done = graph.make_promise();
  std::atomic<bool> dependent_ran{false};
  graph.submit([&] { dependent_ran.store(true); }, {done});
  // The task that would have fulfilled the promise throws first.
  graph.submit([] { throw std::runtime_error("fulfiller died"); });
  EXPECT_THROW(graph.run(), std::runtime_error);
  EXPECT_FALSE(dependent_ran.load());
}

TEST(TaskGraph, StalledPromiseFailsLoudlyInsteadOfHanging) {
  core::TaskGraph graph(nullptr);
  const auto never = graph.make_promise();
  graph.submit([] {}, {never});
  EXPECT_THROW(graph.run(), std::logic_error);
}

TEST(TaskGraph, UnknownDependencyIsRejected) {
  core::TaskGraph graph(nullptr);
  EXPECT_THROW(graph.submit([] {}, {12345}), std::invalid_argument);
}

// --------------------------------------------------- serial bit-identity

TEST(TaskGraph, SerialFallbackBitIdenticalToPooledRun) {
  // A miniature pipeline with slot-keyed writes and an ordered reduction —
  // the determinism shape the search stack relies on. The serial (1-thread)
  // inline mode and a 4-thread pooled run must produce identical bytes.
  const auto run_pipeline = [](core::ThreadPool* pool) {
    core::TaskGraph graph(pool);
    std::vector<double> slots(32);
    std::vector<core::TaskGraph::TaskId> deps;
    for (std::size_t i = 0; i < slots.size(); ++i)
      deps.push_back(graph.submit([&slots, i] {
        double v = 1.0;
        for (std::size_t k = 0; k <= i; ++k) v = v * 1.0000001 + k * 1e-9;
        slots[i] = v;
      }));
    double reduced = 0;
    graph.submit(
        [&] {
          for (const double v : slots) reduced += v;  // fixed fold order
        },
        deps);
    graph.run();
    return std::make_pair(slots, reduced);
  };

  const auto serial = run_pipeline(nullptr);
  core::ThreadPool pool(4);
  const auto pooled = run_pipeline(&pool);
  EXPECT_EQ(serial.first, pooled.first);
  EXPECT_EQ(serial.second, pooled.second);  // bit-identical fold
}

// --------------------------------------------------- CmaEs step API

TEST(CmaEsStepApi, TellPartialMatchesBarrierAskTell) {
  search::CmaEsOptions opts;
  opts.dim = 4;
  opts.population = 8;
  opts.seed = 11;
  search::CmaEs barrier(opts);
  search::CmaEs stepped(opts);

  const auto fitness_of = [](const std::vector<double>& x) {
    double f = 0;
    for (const double v : x) f += (v - 0.3) * (v - 0.3);
    return f;
  };

  for (int gen = 0; gen < 5; ++gen) {
    const auto pop_a = barrier.ask();
    std::vector<double> fit(pop_a.size());
    for (std::size_t i = 0; i < pop_a.size(); ++i)
      fit[i] = fitness_of(pop_a[i]);
    barrier.tell(pop_a, fit);

    const auto& pop_b = stepped.begin_generation();
    ASSERT_EQ(pop_b, pop_a) << gen;  // identical stream
    EXPECT_TRUE(stepped.generation_open());
    // Report slots out of order: completion triggers on the last one.
    bool completed = false;
    for (std::size_t i = pop_b.size(); i-- > 0;) {
      EXPECT_FALSE(completed);
      completed = stepped.tell_partial(i, fitness_of(pop_b[i]));
    }
    EXPECT_TRUE(completed);
    EXPECT_FALSE(stepped.generation_open());
    ASSERT_EQ(stepped.mean(), barrier.mean()) << gen;  // identical update
    EXPECT_EQ(stepped.sigma(), barrier.sigma()) << gen;
  }
}

TEST(CmaEsStepApi, SpeculationPredictorLeavesOptimizerStreamUntouched) {
  const search::HwEncodingSpec hw = search::make_hw_spec(
      arch::eyeriss_resources(), search::OrderEncoding::kImportance, true);
  search::CmaEsOptions opts;
  opts.dim = hw.genome_size();
  opts.population = 6;
  opts.seed = 7;
  search::CmaEs a(opts);
  search::CmaEs b(opts);

  // Predict from `a` only — repeatedly. The predictor reads the
  // distribution, never a generator, so `a`'s primary stream must stay in
  // lockstep with the untouched twin.
  const auto first = search::predict_decode_buckets(a, hw);
  ASSERT_FALSE(first.empty());
  for (int i = 0; i < 5; ++i) {
    const auto again = search::predict_decode_buckets(a, hw);
    ASSERT_EQ(again.size(), first.size()) << i;  // pure function
    for (std::size_t k = 0; k < first.size(); ++k) {
      EXPECT_EQ(search::arch_fingerprint(again[k].config),
                search::arch_fingerprint(first[k].config));
      EXPECT_EQ(again[k].mass, first[k].mass);
    }
  }
  // Candidates come out in non-increasing joint-mass order, inside the
  // resource envelope, and fingerprint-distinct.
  for (std::size_t k = 0; k < first.size(); ++k) {
    EXPECT_GT(first[k].mass, 0.0);
    EXPECT_LE(first[k].mass, 1.0);
    if (k > 0) EXPECT_GE(first[k - 1].mass, first[k].mass);
    EXPECT_TRUE(hw.resources.allows(first[k].config));
    for (std::size_t j = 0; j < k; ++j)
      EXPECT_NE(search::arch_fingerprint(first[j].config),
                search::arch_fingerprint(first[k].config));
  }

  EXPECT_EQ(a.ask(), b.ask());
}

// --------------------------------------------- speculation regression

search::NaasOptions tiny_naas(int threads, bool speculate) {
  search::NaasOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.population = 6;
  opts.iterations = 3;
  opts.seed = 5;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.num_threads = threads;
  opts.speculate = speculate;
  return opts;
}

TEST(Speculation, MissesNeverMutateVisibleResults) {
  // The regression the hit-only design guarantees: speculative evaluation
  // (which, on this encoding, predicts mostly configs the real search
  // never visits) must not change ANY visible result or real work meter —
  // at 1 thread and at 4.
  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{nn::make_network("cifarnet")};

  const auto off = search::run_naas(model, tiny_naas(1, false), benchmarks);
  for (int threads : {1, 4}) {
    const auto on =
        search::run_naas(model, tiny_naas(threads, true), benchmarks);
    EXPECT_EQ(on.best_geomean_edp, off.best_geomean_edp) << threads;
    EXPECT_EQ(search::arch_fingerprint(on.best_arch),
              search::arch_fingerprint(off.best_arch))
        << threads;
    EXPECT_EQ(on.cost_evaluations, off.cost_evaluations) << threads;
    EXPECT_EQ(on.mapping_searches, off.mapping_searches) << threads;
    EXPECT_EQ(on.generations_batched, off.generations_batched) << threads;
    ASSERT_EQ(on.population_best_edp.size(), off.population_best_edp.size());
    for (std::size_t i = 0; i < on.population_best_edp.size(); ++i) {
      EXPECT_EQ(on.population_best_edp[i], off.population_best_edp[i]);
      EXPECT_EQ(on.population_mean_edp[i], off.population_mean_edp[i]);
    }
    ASSERT_EQ(on.best_networks.size(), off.best_networks.size());
    for (std::size_t i = 0; i < on.best_networks.size(); ++i) {
      EXPECT_EQ(on.best_networks[i].edp, off.best_networks[i].edp);
      EXPECT_EQ(on.best_networks[i].latency_cycles,
                off.best_networks[i].latency_cycles);
      EXPECT_EQ(on.best_networks[i].energy_nj,
                off.best_networks[i].energy_nj);
    }
    // Speculation itself ran (or was gated off after the probe rounds) —
    // either way the off-run has no speculative activity at all.
    EXPECT_EQ(off.speculative_hits + off.speculative_wasted, 0);
  }
}

TEST(Speculation, PipelinePromotionAndClaimAccounting) {
  // Speculative chain claimed by a later real touch: meters transfer once,
  // hit counted once, and the entry is byte-identical to a real search.
  const cost::CostModel model;
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 32, 64, 3, 1, 28);

  search::ArchEvaluator spec_ev(model, mopts);
  {
    search::EvalPipeline pipeline(spec_ev);
    EXPECT_TRUE(pipeline.request(arch, layer, /*speculative=*/true)
                    .has_value());
    pipeline.run();
  }
  EXPECT_EQ(spec_ev.mapping_searches(), 0);  // unclaimed: not real work yet
  EXPECT_EQ(spec_ev.speculative_wasted(), 1);
  EXPECT_EQ(spec_ev.speculative_hits(), 0);

  const auto& claimed = spec_ev.best_mapping(arch, layer);  // real touch
  EXPECT_EQ(spec_ev.mapping_searches(), 1);
  EXPECT_EQ(spec_ev.speculative_wasted(), 0);
  EXPECT_EQ(spec_ev.speculative_hits(), 1);

  search::ArchEvaluator real_ev(model, mopts);
  const auto& real = real_ev.best_mapping(arch, layer);
  EXPECT_EQ(claimed.best_edp, real.best_edp);
  EXPECT_EQ(claimed.evaluations, real.evaluations);
  EXPECT_EQ(claimed.report.edp, real.report.edp);
  EXPECT_EQ(spec_ev.cost_evaluations(), real_ev.cost_evaluations());
}

}  // namespace
}  // namespace naas
