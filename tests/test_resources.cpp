#include "arch/resources.hpp"

#include <gtest/gtest.h>

#include "arch/presets.hpp"

namespace naas::arch {
namespace {

TEST(Resources, BaselinesFitTheirOwnEnvelopes) {
  EXPECT_TRUE(edge_tpu_resources().allows(edge_tpu_arch()));
  EXPECT_TRUE(nvdla_1024_resources().allows(nvdla_1024_arch()));
  EXPECT_TRUE(nvdla_256_resources().allows(nvdla_256_arch()));
  EXPECT_TRUE(eyeriss_resources().allows(eyeriss_arch()));
  EXPECT_TRUE(shidiannao_resources().allows(shidiannao_arch()));
}

TEST(Resources, RejectsTooManyPes) {
  ArchConfig cfg = nvdla_256_arch();
  cfg.array_dims = {32, 32, 1};  // 1024 > 256
  EXPECT_FALSE(nvdla_256_resources().allows(cfg));
}

TEST(Resources, RejectsTooMuchSram) {
  ArchConfig cfg = eyeriss_arch();
  cfg.l2_bytes = 10LL * 1024 * 1024;
  EXPECT_FALSE(eyeriss_resources().allows(cfg));
}

TEST(Resources, RejectsExcessBandwidth) {
  ArchConfig cfg = shidiannao_arch();
  cfg.noc_bandwidth = 1024;
  EXPECT_FALSE(shidiannao_resources().allows(cfg));
}

TEST(Resources, RejectsStructurallyInvalid) {
  ArchConfig cfg = nvdla_256_arch();
  cfg.parallel_dims = {nn::Dim::kK, nn::Dim::kK, nn::Dim::kC};
  EXPECT_FALSE(nvdla_256_resources().allows(cfg));
}

TEST(Resources, EnvelopeOrderingMatchesDeploymentScale) {
  // EdgeTPU > NVDLA-1024 > NVDLA-256 > Eyeriss-ish > ShiDianNao in compute.
  const auto all = all_resource_envelopes();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_GT(all[0].max_pes, all[1].max_pes);
  EXPECT_GT(all[1].max_pes, all[2].max_pes);
  EXPECT_GT(all[2].max_pes, all[3].max_pes);
}

TEST(Resources, ShidiannaoAdmitsFig7c3dArray) {
  // DESIGN.md documents max_pes=144 so the 4x6x6 3D array of Fig. 7c is
  // admissible.
  ArchConfig cfg;
  cfg.name = "fig7c";
  cfg.num_array_dims = 3;
  cfg.array_dims = {4, 6, 6};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 272;
  cfg.l2_bytes = 200LL * 1024;
  cfg.noc_bandwidth = 32;
  cfg.dram_bandwidth = 16;
  EXPECT_TRUE(shidiannao_resources().allows(cfg));
}

TEST(Resources, BaselineForLookup) {
  for (const auto& rc : all_resource_envelopes()) {
    EXPECT_EQ(baseline_for(rc).name, rc.name);
  }
  ResourceConstraint unknown;
  unknown.name = "TPUv9";
  EXPECT_THROW(baseline_for(unknown), std::invalid_argument);
}

TEST(Resources, ToStringMentionsLimits) {
  const std::string s = eyeriss_resources().to_string();
  EXPECT_NE(s.find("Eyeriss"), std::string::npos);
  EXPECT_NE(s.find("168"), std::string::npos);
}

}  // namespace
}  // namespace naas::arch
