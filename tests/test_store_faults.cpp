// Crash-recovery matrix for the persistent result store plus the
// fault-injected refresh paths of the serving layer: torn appends at every
// byte boundary must leave the prior segments loadable, and a damaged or
// transiently-failing store must heal through EvalService::refresh without
// losing completed results.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/fault.hpp"
#include "search/eval_cache.hpp"
#include "search/result_store.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace naas {
namespace {

using core::ScopedFaults;
using search::ResultStore;
using search::StoreEntries;
using search::StoreStatus;
using serve::EvalService;
using serve::ServeOptions;

std::string temp_store_path(const std::string& name) {
  return ::testing::TempDir() + "naas_faults_" + name + ".bin";
}

search::MappingSearchResult sample_result(int salt) {
  search::MappingSearchResult res;
  res.best.dram.order = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kN, nn::Dim::kYp,
                         nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS};
  res.best.dram.tile = {1, 32, 16, 7, 7, 3, 3};
  res.best.pe.tile = {1, 4, 8, 2, 2, 3, 1};
  res.report.legal = true;
  res.report.macs = 1000.0 + salt;
  res.best_edp = 1e9 + salt;
  res.evaluations = salt;
  return res;
}

StoreEntries one_entry(std::uint64_t key) {
  StoreEntries entries;
  entries.emplace_back(key, sample_result(static_cast<int>(key)));
  return entries;
}

void write_file(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

ServeOptions tiny_options(const std::string& store_path) {
  ServeOptions opts;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.num_threads = 1;
  opts.store_path = store_path;
  return opts;
}

std::string search_line(int id, int index) {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"search_mapping\",\"arch\":{\"preset\":\"nvdla256\"},"
         "\"layer\":{\"network\":\"squeezenet\",\"index\":" +
         std::to_string(index) + "}}";
}

// ------------------------------------------------- torn-append byte matrix

TEST(StoreFaults, TruncationAtEveryByteBoundaryKeepsPriorSegments) {
  // A store of one saved segment plus one appended segment, then the file
  // cut at *every* possible length: however far the torn append got, the
  // first segment must stay loadable (and a cut inside the first segment
  // must salvage nothing rather than something wrong).
  const std::string seg1 = ResultStore::encode(one_entry(11));
  const std::string seg2 = ResultStore::encode(one_entry(22));
  const std::string full = seg1 + seg2;
  const std::string path = temp_store_path("truncation_matrix");

  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    write_file(path, full.substr(0, cut));
    const search::StoreLoadResult loaded = ResultStore::load(path);
    if (cut < seg1.size()) {
      EXPECT_EQ(loaded.status, StoreStatus::kCorrupt) << "cut=" << cut;
      EXPECT_TRUE(loaded.entries.empty()) << "cut=" << cut;
    } else if (cut == seg1.size()) {
      // The tear happened before the append wrote its first byte: this is
      // simply the prior store, fully valid.
      EXPECT_EQ(loaded.status, StoreStatus::kOk) << "cut=" << cut;
      ASSERT_EQ(loaded.entries.size(), 1u) << "cut=" << cut;
      EXPECT_EQ(loaded.entries[0].first, 11u);
    } else {
      EXPECT_EQ(loaded.status, StoreStatus::kCorrupt) << "cut=" << cut;
      ASSERT_EQ(loaded.entries.size(), 1u) << "cut=" << cut;
      EXPECT_EQ(loaded.entries[0].first, 11u) << "cut=" << cut;
    }
  }
  std::remove(path.c_str());
}

TEST(StoreFaults, GarbageTailSalvagesEverySegmentBeforeIt) {
  const std::string seg1 = ResultStore::encode(one_entry(1));
  const std::string seg2 = ResultStore::encode(one_entry(2));
  const std::string path = temp_store_path("garbage_tail");
  write_file(path, seg1 + seg2 + "not a segment at all");
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kCorrupt);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].first, 1u);
  EXPECT_EQ(loaded.entries[1].first, 2u);
  std::remove(path.c_str());
}

TEST(StoreFaults, WarmStartAdoptsSalvagedPrefix) {
  const std::string seg1 = ResultStore::encode(one_entry(7));
  const std::string path = temp_store_path("warm_salvage");
  write_file(path, seg1 + std::string(64, '\xee'));
  search::EvalCache cache;
  EXPECT_EQ(search::warm_start_cache(cache, path), 1u);
  EXPECT_NE(cache.find(7), nullptr);
  std::remove(path.c_str());
}

// ------------------------------------------------ injected append failures

TEST(StoreFaults, TornAppendFaultLeavesStoreSalvageable) {
  const std::string path = temp_store_path("torn_site");
  std::remove(path.c_str());
  ASSERT_EQ(ResultStore::save(path, one_entry(1)), StoreStatus::kOk);
  {
    ScopedFaults faults("store_append_torn=1@1");
    EXPECT_EQ(ResultStore::append(path, one_entry(2)), StoreStatus::kIoError);
  }
  // Half a segment landed and stayed (the crash case the rollback cannot
  // reach). Loading salvages the first segment.
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kCorrupt);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].first, 1u);
  std::remove(path.c_str());
}

TEST(StoreFaults, AppendFailFaultLeavesFileUntouched) {
  const std::string path = temp_store_path("append_fail_site");
  std::remove(path.c_str());
  ASSERT_EQ(ResultStore::save(path, one_entry(1)), StoreStatus::kOk);
  {
    ScopedFaults faults("store_append_fail=1@1");
    EXPECT_EQ(ResultStore::append(path, one_entry(2)), StoreStatus::kIoError);
    // The fault fires before any byte: the next attempt succeeds cleanly.
    EXPECT_EQ(ResultStore::append(path, one_entry(2)), StoreStatus::kOk);
  }
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 2u);
  std::remove(path.c_str());
}

TEST(StoreFaults, LoadCorruptFaultDamagesMemoryNotDisk) {
  const std::string path = temp_store_path("load_corrupt_site");
  std::remove(path.c_str());
  ASSERT_EQ(ResultStore::save(path, one_entry(1)), StoreStatus::kOk);
  {
    ScopedFaults faults("store_load_corrupt=1@1");
    EXPECT_EQ(ResultStore::load(path).status, StoreStatus::kCorrupt);
  }
  // The flip happened in the read buffer; the file itself is intact.
  EXPECT_EQ(ResultStore::load(path).status, StoreStatus::kOk);
  std::remove(path.c_str());
}

// ------------------------------------------- service-level heal and retry

TEST(StoreFaults, ServiceRetriesTransientAppendAndSucceeds) {
  const std::string path = temp_store_path("service_retry");
  std::remove(path.c_str());
  EvalService service(tiny_options(path));
  service.handle_line(search_line(1, 0));
  search::StoreStatus status;
  {
    // First refresh attempt hits the transient failure; the in-place
    // retry (after backoff) flushes successfully within the same call.
    ScopedFaults faults("store_append_fail=1@1");
    status = service.refresh();
  }
  EXPECT_EQ(status, StoreStatus::kOk);
  EXPECT_GE(service.stats().store_refresh_retries, 1);
  EXPECT_EQ(service.stats().store_appends, 1);
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 1u);
  std::remove(path.c_str());
}

TEST(StoreFaults, ServiceHealsTornAppendByAtomicRewrite) {
  const std::string path = temp_store_path("service_torn_heal");
  std::remove(path.c_str());
  EvalService service(tiny_options(path));
  service.handle_line(search_line(1, 0));
  ASSERT_EQ(service.refresh(), StoreStatus::kOk);  // one clean segment
  service.handle_line(search_line(2, 1));
  search::StoreStatus status;
  {
    // The append tears mid-segment; the retry pass notices the damaged
    // file (reload-on-change -> kCorrupt) and heals it by atomic rewrite
    // from the full cache — both results survive.
    ScopedFaults faults("store_append_torn=1@1");
    status = service.refresh();
  }
  EXPECT_EQ(status, StoreStatus::kOk);
  EXPECT_EQ(service.stats().store_rewrites, 1);
  EXPECT_GE(service.stats().store_refresh_retries, 1);
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 2u);
  std::remove(path.c_str());
}

TEST(StoreFaults, BootFromTornFileSalvagesThenHeals) {
  const std::string path = temp_store_path("boot_torn");
  std::remove(path.c_str());
  // A prior process crashed mid-append: one good segment, half a second.
  const std::string seg1 = ResultStore::encode(one_entry(33));
  const std::string seg2 = ResultStore::encode(one_entry(44));
  write_file(path, seg1 + seg2.substr(0, seg2.size() / 2));

  EvalService service(tiny_options(path));
  // Boot salvaged the good segment into the cache...
  EXPECT_EQ(service.evaluator().store_entries_loaded(), 1u);
  // ...and the first refresh heals the file by atomic rewrite.
  EXPECT_EQ(service.refresh(), StoreStatus::kOk);
  EXPECT_EQ(service.stats().store_rewrites, 1);
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kOk);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].first, 33u);
  std::remove(path.c_str());
}

TEST(StoreFaults, RefreshFailFaultIsRetriedAndMetered) {
  const std::string path = temp_store_path("refresh_fail");
  std::remove(path.c_str());
  EvalService service(tiny_options(path));
  service.handle_line(search_line(1, 0));
  search::StoreStatus status;
  {
    ScopedFaults faults("refresh_fail=1@2");
    status = service.refresh();  // attempts 1+2 fail, attempt 3 flushes
  }
  EXPECT_EQ(status, StoreStatus::kOk);
  EXPECT_EQ(service.stats().store_refresh_retries, 2);
  EXPECT_EQ(ResultStore::load(path).status, StoreStatus::kOk);
  std::remove(path.c_str());
}

TEST(StoreFaults, RefreshReportsFailureWhenRetriesExhaust) {
  const std::string path = temp_store_path("refresh_exhaust");
  std::remove(path.c_str());
  EvalService service(tiny_options(path));
  service.handle_line(search_line(1, 0));
  {
    ScopedFaults faults("refresh_fail=1");
    EXPECT_EQ(service.refresh(), StoreStatus::kIoError);
    EXPECT_EQ(service.stats().store_refresh_retries, 2);
  }
  // Nothing was lost: the next (healthy) refresh flushes the held-back
  // entries.
  EXPECT_EQ(service.refresh(), StoreStatus::kOk);
  const search::StoreLoadResult loaded = ResultStore::load(path);
  EXPECT_EQ(loaded.status, StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naas
