#include "mapping/footprint.hpp"

#include <gtest/gtest.h>

namespace naas::mapping {
namespace {

nn::Workload conv() { return nn::make_conv("c", 16, 32, 3, 1, 28); }

TileSizes tiles(int n, int k, int c, int yp, int xp, int r, int s) {
  TileSizes t{};
  set_tile(t, nn::Dim::kN, n);
  set_tile(t, nn::Dim::kK, k);
  set_tile(t, nn::Dim::kC, c);
  set_tile(t, nn::Dim::kYp, yp);
  set_tile(t, nn::Dim::kXp, xp);
  set_tile(t, nn::Dim::kR, r);
  set_tile(t, nn::Dim::kS, s);
  return t;
}

TEST(Footprint, UnitTileIsThreeBytes) {
  const auto fp = tile_footprint(conv(), tiles(1, 1, 1, 1, 1, 1, 1));
  EXPECT_EQ(fp.input, 1);
  EXPECT_EQ(fp.weight, 1);
  EXPECT_EQ(fp.output, 1);
  EXPECT_EQ(fp.total(), 3);
}

TEST(Footprint, HaloAccountsKernelAndStride) {
  // 4 output rows/cols with 3x3 kernel, stride 1 -> 6x6 input patch.
  const auto fp = tile_footprint(conv(), tiles(1, 1, 2, 4, 4, 3, 3));
  EXPECT_EQ(fp.input, 2 * 6 * 6);
  EXPECT_EQ(fp.weight, 1 * 2 * 3 * 3);
  EXPECT_EQ(fp.output, 1 * 4 * 4);
}

TEST(Footprint, StrideTwoDoublesHaloSpacing) {
  const nn::Workload l = nn::make_conv("s2", 8, 8, 3, 2, 14);
  const auto fp = tile_footprint(l, tiles(1, 1, 1, 4, 1, 3, 3));
  // (4-1)*2 + 3 = 9 input rows; (1-1)*2 + 3 = 3 input cols.
  EXPECT_EQ(fp.input, 9 * 3);
}

TEST(Footprint, FullTileMatchesLayerTotals) {
  const nn::Workload l = conv();
  const auto fp = tile_footprint(
      l, tiles(1, 32, 16, 28, 28, 3, 3));
  EXPECT_EQ(fp.input, l.input_elems());
  EXPECT_EQ(fp.weight, l.weight_elems());
  EXPECT_EQ(fp.output, l.output_elems());
}

TEST(Footprint, ClampsOversizedTiles) {
  const auto fp_over = tile_footprint(conv(), tiles(9, 999, 999, 999, 999, 9, 9));
  const auto fp_full = tile_footprint(conv(), tiles(1, 32, 16, 28, 28, 3, 3));
  EXPECT_EQ(fp_over.total(), fp_full.total());
}

TEST(Footprint, DepthwiseWalksChannelsViaK) {
  const nn::Workload dw = nn::make_dwconv("dw", 32, 3, 1, 14);
  const auto fp = tile_footprint(dw, tiles(1, 8, 1, 2, 2, 3, 3));
  // 8 channels (from K), 4x4 halo patch.
  EXPECT_EQ(fp.input, 8 * 4 * 4);
  EXPECT_EQ(fp.weight, 8 * 1 * 3 * 3);
  EXPECT_EQ(fp.output, 8 * 2 * 2);
}

}  // namespace
}  // namespace naas::mapping
