#include "search/cost_accounting.hpp"

#include <gtest/gtest.h>

namespace naas::search {
namespace {

TEST(SearchCost, PaperFormulas) {
  // Table IV: NASAIC 6000N + 16N, NHAS 12 + 20N.
  EXPECT_DOUBLE_EQ(SearchCostModel::nasaic_gpu_days(1), 6016.0);
  EXPECT_DOUBLE_EQ(SearchCostModel::nasaic_gpu_days(3), 3.0 * 6016.0);
  EXPECT_DOUBLE_EQ(SearchCostModel::nhas_gpu_days(1), 32.0);
  EXPECT_DOUBLE_EQ(SearchCostModel::nhas_gpu_days(5), 112.0);
}

TEST(SearchCost, NaasCostDominatedByOneTimeSupernet) {
  // A measured scenario of a few minutes adds negligible GPU-days.
  const double one = SearchCostModel::naas_gpu_days(1, 300.0);
  EXPECT_NEAR(one, 50.0, 0.1);
  const double many = SearchCostModel::naas_gpu_days(100, 300.0);
  EXPECT_LT(many, 51.0);
  // The paper's headline: >120x cheaper than NASAIC per scenario.
  EXPECT_GT(SearchCostModel::nasaic_gpu_days(1) / one, 120.0);
}

TEST(SearchCost, DollarAndCarbonScales) {
  EXPECT_DOUBLE_EQ(SearchCostModel::aws_cost(10.0), 750.0);
  EXPECT_DOUBLE_EQ(SearchCostModel::co2_lbs(10.0), 75.0);
}

TEST(SearchCost, MeasuredCountersReport) {
  MeasuredSearchCost c;
  c.cost_model_evaluations = 1000;
  c.mapping_searches = 10;
  c.wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(c.throughput(), 500.0);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("mapping searches"), std::string::npos);
}

TEST(SearchCost, ZeroTimeThroughputIsZero) {
  MeasuredSearchCost c;
  c.cost_model_evaluations = 5;
  EXPECT_DOUBLE_EQ(c.throughput(), 0.0);
}

}  // namespace
}  // namespace naas::search
