#include "core/table.hpp"

#include <gtest/gtest.h>

namespace naas::core {
namespace {

TEST(Table, FormatFixed) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(Table, FormatScientific) {
  EXPECT_EQ(Table::fmt_sci(3.0e14, 1), "3.0e+14");
  EXPECT_EQ(Table::fmt_sci(0.002, 0), "2e-03");
}

TEST(Table, FormatIntThousands) {
  EXPECT_EQ(Table::fmt_int(0), "0");
  EXPECT_EQ(Table::fmt_int(999), "999");
  EXPECT_EQ(Table::fmt_int(1000), "1,000");
  EXPECT_EQ(Table::fmt_int(1234567), "1,234,567");
  EXPECT_EQ(Table::fmt_int(-12345), "-12,345");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"A", "Metric"});
  t.add_row({"x", "1.0"});
  t.add_row({"longer", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("A       Metric"), std::string::npos);
  EXPECT_NE(s.find("longer  2.5"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t({"A", "B"});
  t.add_row({"only"});
  t.add_row({"x", "y", "extra"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("extra"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.add_row({"a,b", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t({"h1", "h2"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "h1,h2\n1,2\n");
}

}  // namespace
}  // namespace naas::core
