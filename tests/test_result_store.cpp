#include "search/result_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hpp"
#include "arch/resources.hpp"
#include "core/serialize.hpp"
#include "nn/network.hpp"
#include "search/accelerator_search.hpp"

namespace naas {
namespace {

std::string temp_store_path(const std::string& name) {
  return ::testing::TempDir() + "naas_store_" + name + ".bin";
}

search::MappingSearchResult sample_result() {
  search::MappingSearchResult res;
  res.best.dram.order = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kN, nn::Dim::kYp,
                         nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS};
  res.best.dram.tile = {1, 32, 16, 7, 7, 3, 3};
  res.best.pe.tile = {1, 4, 8, 2, 2, 3, 1};
  res.best.pe_order = {nn::Dim::kS, nn::Dim::kR, nn::Dim::kXp, nn::Dim::kYp,
                       nn::Dim::kC, nn::Dim::kK, nn::Dim::kN};
  res.report.legal = true;
  res.report.macs = 118013952.0;
  res.report.latency_cycles = 1.25e6;
  res.report.energy.mac_pj = 0.1 + 0.2;  // deliberately non-representable
  res.report.energy.dram_pj = 1e300;
  res.report.energy_nj = 3.14159265358979;
  res.report.edp = 7.25e12;
  res.report.pe_utilization = 0.87;
  res.best_edp = 7.25e12;
  res.evaluations = 481;
  return res;
}

search::MappingSearchResult illegal_result() {
  search::MappingSearchResult res;
  res.report.legal = false;
  res.report.illegal_reason = "tile exceeds L1 capacity";
  res.best_edp = std::numeric_limits<double>::infinity();
  res.evaluations = 3;
  return res;
}

void expect_results_equal(const search::MappingSearchResult& a,
                          const search::MappingSearchResult& b) {
  EXPECT_EQ(a.best.dram.order, b.best.dram.order);
  EXPECT_EQ(a.best.dram.tile, b.best.dram.tile);
  EXPECT_EQ(a.best.pe.order, b.best.pe.order);
  EXPECT_EQ(a.best.pe.tile, b.best.pe.tile);
  EXPECT_EQ(a.best.pe_order, b.best.pe_order);
  EXPECT_EQ(a.report.legal, b.report.legal);
  EXPECT_EQ(a.report.illegal_reason, b.report.illegal_reason);
  // EXPECT_EQ on doubles: the store must round-trip exact bit patterns,
  // not approximations — warm-start bit-identity depends on it.
  EXPECT_EQ(a.report.macs, b.report.macs);
  EXPECT_EQ(a.report.latency_cycles, b.report.latency_cycles);
  EXPECT_EQ(a.report.energy.mac_pj, b.report.energy.mac_pj);
  EXPECT_EQ(a.report.energy.dram_pj, b.report.energy.dram_pj);
  EXPECT_EQ(a.report.energy_nj, b.report.energy_nj);
  EXPECT_EQ(a.report.edp, b.report.edp);
  EXPECT_EQ(a.report.pe_utilization, b.report.pe_utilization);
  EXPECT_EQ(a.best_edp, b.best_edp);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// ----------------------------------------------------------- serialization

TEST(Serialize, PrimitivesRoundTrip) {
  core::ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(-0.1);
  w.str("hello \0 world");  // embedded NUL truncated by literal, still fine
  const std::string& bytes = w.bytes();

  core::ByteReader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, ReaderRejectsOverrun) {
  core::ByteWriter w;
  w.u32(7);
  core::ByteReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------- round trip

TEST(ResultStore, RoundTripPreservesEveryField) {
  search::StoreEntries entries;
  entries.emplace_back(0xfeedULL, sample_result());
  entries.emplace_back(0x1ULL, illegal_result());

  const std::string path = temp_store_path("roundtrip");
  ASSERT_EQ(search::ResultStore::save(path, entries),
            search::StoreStatus::kOk);

  const auto loaded = search::ResultStore::load(path);
  ASSERT_EQ(loaded.status, search::StoreStatus::kOk);
  ASSERT_EQ(loaded.entries.size(), 2u);
  // encode() sorts by key.
  EXPECT_EQ(loaded.entries[0].first, 0x1ULL);
  EXPECT_EQ(loaded.entries[1].first, 0xfeedULL);
  expect_results_equal(loaded.entries[0].second, illegal_result());
  expect_results_equal(loaded.entries[1].second, sample_result());
  std::remove(path.c_str());
}

TEST(ResultStore, EncodeIsDeterministicAcrossEntryOrder) {
  search::StoreEntries forward;
  forward.emplace_back(1, sample_result());
  forward.emplace_back(2, illegal_result());
  search::StoreEntries reversed;
  reversed.emplace_back(2, illegal_result());
  reversed.emplace_back(1, sample_result());
  EXPECT_EQ(search::ResultStore::encode(forward),
            search::ResultStore::encode(reversed));
}

TEST(ResultStore, MissingFileReportsNotFound) {
  const auto loaded =
      search::ResultStore::load(temp_store_path("does_not_exist"));
  EXPECT_EQ(loaded.status, search::StoreStatus::kNotFound);
  EXPECT_TRUE(loaded.entries.empty());
}

// --------------------------------------------------------------- rejection

std::string encode_single_entry_store() {
  search::StoreEntries entries;
  entries.emplace_back(42, sample_result());
  return search::ResultStore::encode(entries);
}

TEST(ResultStore, RejectsBadMagic) {
  std::string bytes = encode_single_entry_store();
  bytes[0] = 'X';
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kBadMagic);
}

TEST(ResultStore, RejectsVersionMismatch) {
  std::string bytes = encode_single_entry_store();
  // The u32 version sits right after the 8-byte magic. A bumped version
  // must be reported as such (not as corruption), *before* the checksum is
  // consulted — an old-format file has a valid checksum of its own.
  bytes[8] = static_cast<char>(search::ResultStore::kFormatVersion + 1);
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kBadVersion);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST(ResultStore, RejectsAlgorithmEpochMismatch) {
  std::string bytes = encode_single_entry_store();
  // The u32 algorithm epoch sits after magic (8) + format version (4). A
  // store computed under different evaluation semantics must be rejected,
  // not served.
  bytes[12] = static_cast<char>(search::ResultStore::kAlgorithmEpoch + 1);
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kBadVersion);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST(ResultStore, RejectsFlippedPayloadByte) {
  std::string bytes = encode_single_entry_store();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt mid-payload
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST(ResultStore, RejectsTruncation) {
  const std::string bytes = encode_single_entry_store();
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                                 std::size_t{3}, std::size_t{0}}) {
    const auto loaded = search::ResultStore::decode(bytes.data(), keep);
    EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt)
        << "truncated to " << keep << " bytes";
  }
}

TEST(ResultStore, RejectsAbsurdEntryCountWithoutAllocating) {
  // A checksum-consistent header claiming 2^60 entries must be rejected as
  // corrupt (the payload cannot hold them), not attempt the allocation.
  std::string bytes = search::ResultStore::encode({});
  // Entry count sits after magic (8) + version (4) + reserved (4).
  for (int i = 0; i < 8; ++i)
    bytes[16 + i] = static_cast<char>(i == 7 ? 0x10 : 0x00);
  const std::uint64_t sum = core::fnv1a64(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
}

TEST(ResultStore, RejectsTrailingGarbage) {
  std::string bytes = encode_single_entry_store();
  bytes += "extra";
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
}

// ------------------------------------------------------ incremental append

TEST(ResultStore, AppendCreatesFileWhenMissing) {
  const std::string path = temp_store_path("append_create");
  std::remove(path.c_str());
  search::StoreEntries entries;
  entries.emplace_back(7, sample_result());
  std::size_t bytes_appended = 0;
  ASSERT_EQ(search::ResultStore::append(path, entries, &bytes_appended),
            search::StoreStatus::kOk);
  EXPECT_GT(bytes_appended, 0u);
  const auto loaded = search::ResultStore::load(path);
  ASSERT_EQ(loaded.status, search::StoreStatus::kOk);
  ASSERT_EQ(loaded.entries.size(), 1u);
  expect_results_equal(loaded.entries[0].second, sample_result());
  std::remove(path.c_str());
}

TEST(ResultStore, AppendedSegmentsAllLoad) {
  const std::string path = temp_store_path("append_segments");
  std::remove(path.c_str());
  search::StoreEntries first;
  first.emplace_back(1, sample_result());
  first.emplace_back(2, illegal_result());
  ASSERT_EQ(search::ResultStore::save(path, first),
            search::StoreStatus::kOk);

  search::StoreEntries second;
  second.emplace_back(3, sample_result());
  ASSERT_EQ(search::ResultStore::append(path, second),
            search::StoreStatus::kOk);
  search::StoreEntries third;
  third.emplace_back(4, illegal_result());
  ASSERT_EQ(search::ResultStore::append(path, third),
            search::StoreStatus::kOk);

  const auto loaded = search::ResultStore::load(path);
  ASSERT_EQ(loaded.status, search::StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 4u);

  // Loading into a cache adopts every segment's entries.
  search::EvalCache cache;
  EXPECT_EQ(cache.preload(loaded.entries), 4u);
  std::remove(path.c_str());
}

TEST(ResultStore, AppendEmptyIsANoOp) {
  const std::string path = temp_store_path("append_empty");
  std::remove(path.c_str());
  std::size_t bytes_appended = 99;
  EXPECT_EQ(search::ResultStore::append(path, {}, &bytes_appended),
            search::StoreStatus::kOk);
  EXPECT_EQ(bytes_appended, 0u);
  // No file materializes for an empty append.
  EXPECT_EQ(search::ResultStore::load(path).status,
            search::StoreStatus::kNotFound);
}

TEST(ResultStore, DuplicateKeysAcrossSegmentsKeepFirstCopy) {
  // Two processes may race to compute and append the same key; results are
  // deterministic per key, so the cache keeps the first and the answer is
  // unchanged either way.
  const std::string path = temp_store_path("append_dup");
  std::remove(path.c_str());
  search::StoreEntries first;
  first.emplace_back(5, sample_result());
  ASSERT_EQ(search::ResultStore::save(path, first),
            search::StoreStatus::kOk);
  search::StoreEntries dup;
  dup.emplace_back(5, sample_result());
  ASSERT_EQ(search::ResultStore::append(path, dup),
            search::StoreStatus::kOk);

  const auto loaded = search::ResultStore::load(path);
  ASSERT_EQ(loaded.status, search::StoreStatus::kOk);
  EXPECT_EQ(loaded.entries.size(), 2u);
  search::EvalCache cache;
  EXPECT_EQ(cache.preload(loaded.entries), 1u);
  EXPECT_EQ(cache.size(), 1u);
  std::remove(path.c_str());
}

TEST(ResultStore, SalvagesPrefixBeforeCorruptLaterSegment) {
  // A flipped byte in an appended segment rejects the file (kCorrupt) but
  // salvages the checksum-validated segments before it: a torn or damaged
  // append costs the tear, never the store.
  std::string bytes = encode_single_entry_store();
  const std::size_t second_start = bytes.size();
  bytes += encode_single_entry_store();
  bytes[second_start + 30] ^= 0x40;
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
  ASSERT_EQ(loaded.entries.size(), 1u);
}

TEST(ResultStore, SalvagesNothingFromCorruptFirstSegment) {
  // Damage in the *first* segment leaves no validated prefix to adopt.
  std::string bytes = encode_single_entry_store();
  bytes[30] ^= 0x40;
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
  EXPECT_TRUE(loaded.entries.empty());
}

TEST(ResultStore, RejectsVersionMismatchInLaterSegment) {
  std::string bytes = encode_single_entry_store();
  const std::size_t second_start = bytes.size();
  bytes += encode_single_entry_store();
  // Byte 8 of a segment is the low byte of its format version.
  bytes[second_start + 8] ^= 0xff;
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kBadVersion);
}

TEST(ResultStore, RejectsTruncatedLaterSegment) {
  std::string bytes = encode_single_entry_store();
  bytes += encode_single_entry_store().substr(0, 40);
  const auto loaded = search::ResultStore::decode(bytes.data(), bytes.size());
  EXPECT_EQ(loaded.status, search::StoreStatus::kCorrupt);
}

// ------------------------------------------------------ cache snapshots

TEST(EvalCacheSince, SnapshotSinceReturnsOnlyNewEntries) {
  search::EvalCache cache;
  EXPECT_EQ(cache.sequence(), 0u);
  bool inserted = false;
  cache.publish(10, sample_result(), &inserted);
  ASSERT_TRUE(inserted);
  cache.publish(20, illegal_result(), &inserted);
  const std::uint64_t mark = cache.sequence();
  EXPECT_EQ(mark, 2u);
  EXPECT_TRUE(cache.snapshot_since(mark).empty());

  cache.publish(30, sample_result(), &inserted);
  cache.publish(5, illegal_result(), &inserted);
  const auto fresh = cache.snapshot_since(mark);
  ASSERT_EQ(fresh.size(), 2u);
  // Sorted by key, independent of insertion order.
  EXPECT_EQ(fresh[0].first, 5u);
  EXPECT_EQ(fresh[1].first, 30u);
  // snapshot_since(0) equals the full snapshot.
  EXPECT_EQ(cache.snapshot_since(0).size(), cache.snapshot().size());
}

TEST(EvalCacheSince, LosingRacesAndPreloadSkipsConsumeNoSequence) {
  search::EvalCache cache;
  bool inserted = false;
  cache.publish(1, sample_result(), &inserted);
  const std::uint64_t mark = cache.sequence();
  // Duplicate publish loses and must not advance the sequence.
  cache.publish(1, illegal_result(), &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(cache.sequence(), mark);
  // Preload of an existing key is skipped; a new key advances once.
  search::StoreEntries entries;
  entries.emplace_back(1, sample_result());
  entries.emplace_back(2, sample_result());
  EXPECT_EQ(cache.preload(entries), 1u);
  EXPECT_EQ(cache.sequence(), mark + 1);
  const auto fresh = cache.snapshot_since(mark);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].first, 2u);
}

TEST(EvalCacheSince, IncrementalSnapshotsUnderConcurrentInsertionLoseNothing) {
  // Hammer the incremental-flush contract: a reader streaming the cache
  // through chained snapshot_since(mark, &mark) calls while writers
  // publish concurrently must see every entry exactly once. The old
  // per-shard scan could capture a high-sequence entry from a late shard
  // while missing a lower-sequence entry racing into an already-scanned
  // shard; resuming from the returned mark then lost the low entry forever
  // (or returned the high one twice).
  constexpr int kWriters = 4;
  constexpr std::uint64_t kKeysPerWriter = 400;
  search::EvalCache cache;

  std::atomic<int> writers_active{kWriters};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cache, &writers_active, w] {
      for (std::uint64_t i = 0; i < kKeysPerWriter; ++i) {
        // Spread keys across shards (the shard index mixes the key bits).
        const std::uint64_t key =
            (i * static_cast<std::uint64_t>(kWriters) + w) * 0x100 + 1;
        cache.publish(key, sample_result(), nullptr);
      }
      writers_active.fetch_sub(1);
    });
  }

  std::set<std::uint64_t> seen;
  bool duplicate = false;
  std::uint64_t mark = 0;
  const auto drain = [&] {
    const auto batch = cache.snapshot_since(mark, &mark);
    for (const auto& [key, result] : batch)
      duplicate |= !seen.insert(key).second;
  };
  while (writers_active.load() > 0) drain();

  for (auto& t : writers) t.join();
  drain();  // final quiescent sweep picks up the tail

  EXPECT_FALSE(duplicate);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kWriters) * kKeysPerWriter);
  EXPECT_EQ(cache.size(), seen.size());
}

TEST(EvalCacheSince, SpeculativeEntriesStayOutOfSnapshotsUntilClaimed) {
  // Dead speculation must never reach a persistent store: a speculatively
  // published entry is invisible to snapshot/snapshot_since until its
  // first real touch claims it, at which point it re-enters with a fresh
  // sequence number so an incremental flush that already passed its
  // original insertion number still picks it up.
  search::EvalCache cache;
  bool inserted = false;
  cache.publish(100, sample_result(), &inserted);
  cache.publish(200, sample_result(), &inserted);
  cache.mark_speculative(200);
  EXPECT_EQ(cache.speculative_resident(), 1u);

  // Full and incremental snapshots both skip the tagged entry.
  auto snap = cache.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, 100u);
  std::uint64_t mark = 0;
  EXPECT_EQ(cache.snapshot_since(0, &mark).size(), 1u);

  // Claim after the flush mark: the entry must surface in the NEXT
  // incremental cut (fresh sequence number), not be lost behind `mark`.
  EXPECT_TRUE(cache.claim_speculative(200));
  EXPECT_FALSE(cache.claim_speculative(200));  // second touch is a no-op
  EXPECT_EQ(cache.speculative_resident(), 0u);
  const auto fresh = cache.snapshot_since(mark);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].first, 200u);
  EXPECT_EQ(cache.snapshot().size(), 2u);

  // Claiming an untagged or absent key does nothing.
  EXPECT_FALSE(cache.claim_speculative(100));
  EXPECT_FALSE(cache.claim_speculative(999));
}

// ------------------------------------------------------------- warm start

nn::Network small_network() {
  nn::Network net("tiny", {});
  net.add(nn::make_conv("stem", 3, 16, 3, 2, 28));
  net.add(nn::make_conv("block", 16, 16, 3, 1, 28));
  net.add(nn::make_conv("head", 16, 32, 1, 1, 14));
  return net;
}

search::NaasOptions small_options(const std::string& cache_path) {
  search::NaasOptions opts;
  opts.resources = arch::nvdla_256_resources();
  opts.population = 6;
  opts.iterations = 3;
  opts.seed = 11;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.mapping.seed = 11;
  opts.num_threads = 1;
  opts.cache_path = cache_path;
  return opts;
}

void expect_naas_results_identical(const search::NaasResult& a,
                                   const search::NaasResult& b) {
  EXPECT_EQ(a.best_geomean_edp, b.best_geomean_edp);
  ASSERT_EQ(a.population_best_edp.size(), b.population_best_edp.size());
  for (std::size_t i = 0; i < a.population_best_edp.size(); ++i) {
    EXPECT_EQ(a.population_best_edp[i], b.population_best_edp[i]);
    EXPECT_EQ(a.population_mean_edp[i], b.population_mean_edp[i]);
  }
  ASSERT_EQ(a.best_networks.size(), b.best_networks.size());
  for (std::size_t i = 0; i < a.best_networks.size(); ++i) {
    EXPECT_EQ(a.best_networks[i].edp, b.best_networks[i].edp);
    EXPECT_EQ(a.best_networks[i].latency_cycles,
              b.best_networks[i].latency_cycles);
    EXPECT_EQ(a.best_networks[i].energy_nj, b.best_networks[i].energy_nj);
  }
}

TEST(WarmStart, SecondRunSkipsAllMappingSearchesBitIdentically) {
  const std::string path = temp_store_path("warm");
  std::remove(path.c_str());

  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{small_network()};

  const auto cold = search::run_naas(model, small_options(path), benchmarks);
  EXPECT_EQ(cold.store_entries_loaded, 0);
  EXPECT_GT(cold.mapping_searches, 0);

  const auto warm = search::run_naas(model, small_options(path), benchmarks);
  // Every layer shape the warm run needs is already in the store: zero
  // mapping-search CMA generations, zero cost-model calls.
  EXPECT_GT(warm.store_entries_loaded, 0);
  EXPECT_EQ(warm.mapping_searches, 0);
  EXPECT_EQ(warm.cost_evaluations, 0);
  expect_naas_results_identical(cold, warm);
  std::remove(path.c_str());
}

TEST(WarmStart, CorruptStoreFallsBackToColdSearch) {
  const std::string path = temp_store_path("corrupt_fallback");
  std::remove(path.c_str());

  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{small_network()};
  const auto cold = search::run_naas(model, small_options(path), benchmarks);

  // Vandalize the store; the next run must reject it, search cold, and
  // produce the same result as if no store existed.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    const int original = std::fgetc(f);
    ASSERT_NE(original, EOF);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(original ^ 0x5a, f);  // guaranteed different byte
    std::fclose(f);
  }
  const auto recovered =
      search::run_naas(model, small_options(path), benchmarks);
  EXPECT_EQ(recovered.store_entries_loaded, 0);
  EXPECT_EQ(recovered.mapping_searches, cold.mapping_searches);
  expect_naas_results_identical(cold, recovered);

  // The recovery run flushed a fresh, valid store over the damaged one.
  EXPECT_EQ(search::ResultStore::load(path).status, search::StoreStatus::kOk);
  std::remove(path.c_str());
}

TEST(WarmStart, ReadonlyNeverWritesTheStore) {
  const std::string path = temp_store_path("readonly");
  std::remove(path.c_str());

  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{small_network()};
  auto opts = small_options(path);
  opts.cache_readonly = true;
  search::run_naas(model, opts, benchmarks);
  EXPECT_EQ(search::ResultStore::load(path).status,
            search::StoreStatus::kNotFound);
}

TEST(WarmStart, EvaluatorPreloadDoesNotCountAsWork) {
  const cost::CostModel model;
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;

  const auto arch = arch::nvdla_256_arch();
  const auto net = small_network();

  const std::string path = temp_store_path("evaluator");
  std::remove(path.c_str());
  {
    search::ArchEvaluator evaluator(model, mopts);
    evaluator.evaluate(arch, net);
    ASSERT_EQ(evaluator.save_store(path), search::StoreStatus::kOk);
  }
  search::ArchEvaluator warm(model, mopts);
  ASSERT_EQ(warm.load_store(path), search::StoreStatus::kOk);
  EXPECT_GT(warm.store_entries_loaded(), 0u);
  EXPECT_EQ(warm.cost_evaluations(), 0);
  warm.evaluate(arch, net);
  // All shapes came from the store: still zero searches performed here.
  EXPECT_EQ(warm.mapping_searches(), 0);
  EXPECT_EQ(warm.cost_evaluations(), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naas
