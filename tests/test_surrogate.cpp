// Property tests for the analytical surrogate (search/surrogate.*): its
// roofline bound must hold — bound <= true cost — for every legal mapping
// of every (accelerator, layer) pair, across all five layer kinds. The
// whole pruning design rests on this inequality: a bound that overshot
// even once could discard a would-be winning candidate.

#include "search/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "arch/presets.hpp"
#include "core/rng.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"
#include "nn/model_zoo.hpp"
#include "search/accelerator_search.hpp"
#include "test_seed.hpp"

namespace naas::search {
namespace {

/// Random workload spanning all five kinds the cost model distinguishes.
nn::Workload random_layer(core::Rng& rng) {
  const int kernel = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3, 5
  const int stride = rng.uniform_int(1, 2);
  const int out_hw = rng.uniform_int(1, 28);
  const int batch = rng.uniform_int(1, 2);
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return nn::make_conv("cv", rng.uniform_int(1, 64),
                           rng.uniform_int(1, 64), kernel, stride, out_hw,
                           batch);
    case 1:
      return nn::make_dwconv("dw", rng.uniform_int(1, 96), kernel, stride,
                             out_hw, batch);
    case 2:
      return nn::make_fc("fc", rng.uniform_int(1, 512),
                         rng.uniform_int(1, 512), batch);
    case 3:
      return nn::make_matmul("mm", rng.uniform_int(1, 64),
                             rng.uniform_int(1, 128), rng.uniform_int(1, 128),
                             batch);
    default:
      return nn::make_attention_scores("attn", rng.uniform_int(1, 64),
                                       rng.uniform_int(1, 64),
                                       rng.uniform_int(1, 32),
                                       rng.uniform_int(1, 4), batch);
  }
}

arch::ArchConfig random_arch(core::Rng& rng) {
  if (rng.bernoulli(0.25)) {
    const arch::ArchConfig presets[] = {
        arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch()};
    return presets[rng.uniform_int(0, 2)];
  }
  arch::ArchConfig cfg;
  cfg.name = "rand";
  cfg.num_array_dims = rng.uniform_int(1, 3);
  const nn::Dim dims[] = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kYp,
                          nn::Dim::kXp, nn::Dim::kR, nn::Dim::kS,
                          nn::Dim::kN};
  std::vector<nn::Dim> pool(dims, dims + 7);
  rng.shuffle(pool);
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    cfg.array_dims[static_cast<std::size_t>(a)] = rng.uniform_int(1, 16);
    cfg.parallel_dims[static_cast<std::size_t>(a)] =
        pool[static_cast<std::size_t>(a)];
  }
  cfg.l1_bytes = 1LL << rng.uniform_int(6, 11);
  cfg.l2_bytes = 1LL << rng.uniform_int(12, 18);
  cfg.noc_bandwidth = 1 << rng.uniform_int(2, 6);
  cfg.dram_bandwidth = 1 << rng.uniform_int(2, 6);
  return cfg;
}

/// Mostly-legal random mapping: random tiles/orders pulled toward legality
/// by repair (canonical is mixed in so every round has a legal candidate).
mapping::Mapping random_mapping(core::Rng& rng, const arch::ArchConfig& arch,
                                const nn::Workload& layer) {
  if (rng.bernoulli(0.25)) return mapping::canonical_mapping(arch, layer);
  mapping::Mapping m = mapping::canonical_mapping(arch, layer);
  for (nn::Dim d : nn::all_dims()) {
    const int bound = layer.dim_size(d);
    mapping::set_tile(m.dram.tile, d, rng.uniform_int(1, bound));
    mapping::set_tile(m.pe.tile, d, rng.uniform_int(1, bound));
  }
  std::vector<nn::Dim> dims;
  for (nn::Dim d : nn::all_dims()) dims.push_back(d);
  rng.shuffle(dims);
  for (std::size_t i = 0; i < m.dram.order.size(); ++i) m.dram.order[i] = dims[i];
  rng.shuffle(dims);
  for (std::size_t i = 0; i < m.pe.order.size(); ++i) m.pe.order[i] = dims[i];
  rng.shuffle(dims);
  for (std::size_t i = 0; i < m.pe_order.size(); ++i) m.pe_order[i] = dims[i];
  return mapping::repair(m, layer, arch);
}

TEST(Surrogate, BoundNeverExceedsTrueCostOnRandomTriples) {
  const cost::CostModel model;
  core::Rng rng(test::sweep_seed(20260808));
  int legal_by_kind[5] = {0, 0, 0, 0, 0};
  for (int round = 0; round < 200; ++round) {
    const nn::Workload layer = random_layer(rng);
    const arch::ArchConfig arch = random_arch(rng);
    const cost::LayerContext ctx = model.make_context(arch, layer);
    const SurrogateBound bound = surrogate_layer_bound(ctx);
    if (!ctx.arch_valid || ctx.degenerate) {
      EXPECT_TRUE(std::isinf(bound.edp));
      continue;
    }
    for (int i = 0; i < 8; ++i) {
      const mapping::Mapping m = random_mapping(rng, arch, layer);
      const cost::CostReport rep = model.evaluate(arch, layer, m);
      if (!rep.legal) continue;
      ++legal_by_kind[static_cast<int>(layer.kind)];
      EXPECT_LE(bound.latency_cycles, rep.latency_cycles)
          << layer.to_string() << " @ " << arch.name;
      EXPECT_LE(bound.energy_nj, rep.energy_nj)
          << layer.to_string() << " @ " << arch.name;
      EXPECT_LE(bound.edp, rep.edp) << layer.to_string() << " @ " << arch.name;
    }
  }
  for (int k = 0; k < 5; ++k)
    EXPECT_GT(legal_by_kind[k], 0) << "kind " << k << " never exercised";
}

TEST(Surrogate, NetworkBoundBelowSearchedCost) {
  // The bound must also hold against the OPTIMAL mapping the search finds
  // (it holds for every legal mapping, so in particular for the best one),
  // composed network-wide and across the benchmark geomean.
  const cost::CostModel model;
  MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 3;
  ArchEvaluator evaluator(model, mopts);
  const std::vector<nn::Network> benchmarks{nn::make_network("cifarnet")};
  for (const arch::ArchConfig& arch :
       {arch::nvdla_256_arch(), arch::eyeriss_arch()}) {
    const cost::NetworkCost nc = evaluator.evaluate(arch, benchmarks[0]);
    ASSERT_TRUE(nc.legal);
    EXPECT_LE(surrogate_network_edp_bound(model, arch, benchmarks[0]), nc.edp);
    EXPECT_LE(surrogate_geomean_edp_bound(model, arch, benchmarks),
              evaluator.geomean_edp(arch, benchmarks));
  }
}

TEST(Surrogate, ModeParses) {
  SurrogateMode mode = SurrogateMode::kPrune;
  EXPECT_TRUE(parse_surrogate_mode("off", &mode));
  EXPECT_EQ(mode, SurrogateMode::kOff);
  EXPECT_TRUE(parse_surrogate_mode("prune", &mode));
  EXPECT_EQ(mode, SurrogateMode::kPrune);
  EXPECT_FALSE(parse_surrogate_mode("maybe", &mode));
  EXPECT_EQ(mode, SurrogateMode::kPrune);  // unchanged on failure
  EXPECT_STREQ(surrogate_mode_name(SurrogateMode::kOff), "off");
  EXPECT_STREQ(surrogate_mode_name(SurrogateMode::kPrune), "prune");
}

TEST(Surrogate, PruneModePreservesSearchResultAndMeters) {
  // Quality parity on a small end-to-end search: pruning skips work
  // (mapping searches can only go down) but must return the same best
  // design, and the meters must reflect the consultations.
  const cost::CostModel model;
  const std::vector<nn::Network> benchmarks{nn::make_network("cifarnet")};
  NaasOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.population = 6;
  opts.iterations = 3;
  opts.seed = 5;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.num_threads = 1;

  const NaasResult off = run_naas(model, opts, benchmarks);
  EXPECT_EQ(off.surrogate_consults, 0);
  EXPECT_EQ(off.surrogate_pruned, 0);

  opts.surrogate = SurrogateMode::kPrune;
  for (int threads : {1, 4}) {
    opts.num_threads = threads;
    const NaasResult prune = run_naas(model, opts, benchmarks);
    EXPECT_EQ(prune.best_geomean_edp, off.best_geomean_edp) << threads;
    EXPECT_EQ(arch_fingerprint(prune.best_arch),
              arch_fingerprint(off.best_arch))
        << threads;
    // The seed baseline makes the admission threshold finite from
    // generation 0, so every feasible candidate consults the bound.
    EXPECT_GT(prune.surrogate_consults, 0) << threads;
    EXPECT_GE(prune.surrogate_consults, prune.surrogate_pruned) << threads;
    EXPECT_LE(prune.mapping_searches, off.mapping_searches) << threads;
  }
}

}  // namespace
}  // namespace naas::search
