#include "nn/model_zoo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace naas::nn {
namespace {

TEST(ModelZoo, Vgg16ShapeAndMacs) {
  const Network n = make_vgg16();
  EXPECT_EQ(n.num_layers(), 16);  // 13 convs + 3 FC
  // Published VGG16 compute is ~15.5 GMACs at 224x224.
  EXPECT_NEAR(static_cast<double>(n.total_macs()), 15.5e9, 0.5e9);
  // ~138M parameters dominated by FC6.
  EXPECT_NEAR(static_cast<double>(n.total_weights()), 138.3e6, 2e6);
}

TEST(ModelZoo, Resnet50ShapeAndMacs) {
  const Network n = make_resnet50();
  // 1 stem + 16 blocks x 3 convs + 4 projections + 1 FC = 54
  EXPECT_EQ(n.num_layers(), 54);
  // Published ResNet50 is ~4.1 GMACs.
  EXPECT_NEAR(static_cast<double>(n.total_macs()), 4.1e9, 0.4e9);
  EXPECT_NEAR(static_cast<double>(n.total_weights()), 25.5e6, 2e6);
}

TEST(ModelZoo, UnetIsLargest) {
  const Network n = make_unet();
  EXPECT_GT(n.total_macs(), make_vgg16().total_macs());
  EXPECT_EQ(n.layers().front().in_channels, 3);
  EXPECT_EQ(n.layers().back().out_channels, 2);
}

TEST(ModelZoo, MobileNetV2HasDepthwiseLayers) {
  const Network n = make_mobilenet_v2();
  int dw = 0;
  for (const auto& l : n.layers()) dw += l.kind == LayerKind::kDepthwiseConv;
  EXPECT_EQ(dw, 17);  // one per inverted-residual block
  // Published MobileNetV2 is ~0.3 GMACs.
  EXPECT_NEAR(static_cast<double>(n.total_macs()), 0.32e9, 0.08e9);
}

TEST(ModelZoo, SqueezeNetFireStructure) {
  const Network n = make_squeezenet();
  // conv1 + 8 fires x 3 + conv10 = 26
  EXPECT_EQ(n.num_layers(), 26);
  EXPECT_NEAR(static_cast<double>(n.total_macs()), 0.85e9, 0.35e9);
  EXPECT_LT(n.total_weights(), 1.5e6);  // SqueezeNet's selling point
}

TEST(ModelZoo, MnasnetStructure) {
  const Network n = make_mnasnet();
  int dw = 0, k5 = 0;
  for (const auto& l : n.layers()) {
    dw += l.kind == LayerKind::kDepthwiseConv;
    k5 += l.kernel_h == 5;
  }
  EXPECT_EQ(dw, 16);  // sepconv + 15 MBConv blocks
  EXPECT_GT(k5, 0);   // MNasNet's mixed 3x3/5x5 kernels
  EXPECT_NEAR(static_cast<double>(n.total_macs()), 0.33e9, 0.1e9);
}

TEST(ModelZoo, CifarNetIsSmall) {
  const Network n = make_cifar_net();
  EXPECT_LT(n.total_macs(), 1e9);
  EXPECT_EQ(n.layers().front().out_h, 32);
}

TEST(ModelZoo, BenchmarkSetsMatchPaper) {
  const auto large = large_benchmarks();
  ASSERT_EQ(large.size(), 3u);
  EXPECT_EQ(large[0].name(), "VGG16");
  EXPECT_EQ(large[1].name(), "ResNet50");
  EXPECT_EQ(large[2].name(), "UNet");
  const auto small = small_benchmarks();
  ASSERT_EQ(small.size(), 3u);
  EXPECT_EQ(small[0].name(), "MobileNetV2");
  EXPECT_EQ(small[1].name(), "SqueezeNet");
  EXPECT_EQ(small[2].name(), "MNasNet");
}

TEST(ModelZoo, LookupByNameCaseInsensitive) {
  EXPECT_EQ(make_network("VGG16").name(), "VGG16");
  EXPECT_EQ(make_network("mobilenetv2").name(), "MobileNetV2");
  EXPECT_THROW(make_network("alexnet"), std::invalid_argument);
}

TEST(ModelZoo, BatchPropagatesToAllLayers) {
  const Network n = make_resnet50(/*batch=*/2);
  for (const auto& l : n.layers()) EXPECT_EQ(l.batch, 2);
}

TEST(ModelZoo, BertBaseEncoderStructure) {
  const Network n = make_bert_base_encoder();
  EXPECT_EQ(n.num_layers(), 12 * 8);  // 12 blocks x 8 dense ops
  int matmuls = 0, attentions = 0;
  for (const auto& l : n.layers()) {
    if (l.kind == LayerKind::kMatmul) ++matmuls;
    if (l.kind == LayerKind::kAttention) ++attentions;
  }
  EXPECT_EQ(matmuls, 12 * 6);
  EXPECT_EQ(attentions, 12 * 2);
  // BERT-base at seq 128: 12 x (4 x 128*768*768 + 2 x 128*768*3072
  // + 12 heads x 2 x 128*128*64) MACs.
  const long long per_block = 4LL * 128 * 768 * 768 +
                              2LL * 128 * 768 * 3072 +
                              2LL * 12 * 128 * 128 * 64;
  EXPECT_EQ(n.total_macs(), 12 * per_block);
}

TEST(ModelZoo, VitB16BridgesConvAndMatmulWorlds) {
  const Network n = make_vit_b16_encoder();
  EXPECT_EQ(n.layers().front().kind, LayerKind::kConv);  // patch embed
  EXPECT_EQ(n.layers().front().kernel_h, 16);
  EXPECT_EQ(n.layers().front().stride, 16);
  EXPECT_EQ(n.layers().back().kind, LayerKind::kFullyConnected);
  // All encoder matmuls run at seq 197 (196 patches + CLS).
  EXPECT_EQ(n.layers()[1].out_h, 197);
}

TEST(ModelZoo, LlmDecodeIsSingleTokenAgainstKvCache) {
  const Network n = make_llm_decode(2048);
  for (const auto& l : n.layers()) {
    EXPECT_EQ(l.out_h, 1) << l.name;  // decode: one query token
    EXPECT_NE(l.kind, LayerKind::kConv) << l.name;
  }
  // The attention scores read the full KV cache per head.
  const auto& qk = n.layers()[3];
  EXPECT_EQ(qk.kind, LayerKind::kAttention);
  EXPECT_EQ(qk.out_channels, 2048);  // seq_kv
  EXPECT_EQ(qk.batch, 32);           // heads
  // The 8k variant resolves by name and scales the KV dimension.
  const Network big = make_network("llm_decode_8k");
  EXPECT_EQ(big.layers()[3].out_channels, 8192);
}

TEST(ModelZoo, TransformerLookupByName) {
  EXPECT_EQ(make_network("bert_base_encoder").name(), "BertBaseEncoder");
  EXPECT_EQ(make_network("vit_b16_encoder").name(), "ViTB16Encoder");
  EXPECT_EQ(make_network("llm_decode").name(), "LlmDecode2048");
}

TEST(ModelZoo, ChannelChainingIsConsistent) {
  // Every conv's input channels must match some producer's output channels;
  // spot-check the sequential stages of VGG.
  const Network n = make_vgg16();
  const auto& layers = n.layers();
  for (std::size_t i = 1; i < 13; ++i) {
    EXPECT_EQ(layers[i].in_channels, layers[i - 1].out_channels)
        << "layer " << i;
  }
}

}  // namespace
}  // namespace naas::nn
