// Coverage for non-2D compute arrays: the paper's connectivity search
// spans 1D, 2D, and 3D arrays (Fig. 7c shows a searched 4x6x6 3D design),
// but the baseline presets are all 2D — these tests exercise the cost
// model, legality, and search plumbing on 1D and 3D configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "arch/resources.hpp"
#include "cost/cost_model.hpp"
#include "mapping/canonical.hpp"
#include "search/mapping_search.hpp"

namespace naas {
namespace {

arch::ArchConfig one_d(int size, nn::Dim par) {
  arch::ArchConfig cfg;
  cfg.name = "1d";
  cfg.num_array_dims = 1;
  cfg.array_dims = {size, 1, 1};
  cfg.parallel_dims = {par, nn::Dim::kC, nn::Dim::kXp};
  if (par == nn::Dim::kC) cfg.parallel_dims[1] = nn::Dim::kK;
  cfg.l1_bytes = 512;
  cfg.l2_bytes = 256 * 1024;
  cfg.noc_bandwidth = 32;
  cfg.dram_bandwidth = 16;
  return cfg;
}

arch::ArchConfig fig7c_3d() {
  arch::ArchConfig cfg;
  cfg.name = "fig7c";
  cfg.num_array_dims = 3;
  cfg.array_dims = {4, 6, 6};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 272;
  cfg.l2_bytes = 248 * 1024;  // + 144 x 272B L1 stays within 288 KiB
  cfg.noc_bandwidth = 32;
  cfg.dram_bandwidth = 16;
  return cfg;
}

TEST(Arrays, OneDimensionalKParallelFullUtilization) {
  const cost::CostModel model;
  const auto arch = one_d(64, nn::Dim::kK);
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  ASSERT_TRUE(rep.legal);
  // K = 128 over 64 PEs divides evenly: no spatial waste.
  EXPECT_NEAR(rep.pe_utilization, 1.0, 1e-9);
}

TEST(Arrays, OneDimensionalOddSplitWastes) {
  const cost::CostModel model;
  const auto arch = one_d(64, nn::Dim::kK);
  const nn::Workload layer = nn::make_conv("c", 64, 96, 3, 1, 28);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  ASSERT_TRUE(rep.legal);
  // 96 channels over 64 PEs: shares of 2 on 48 PEs -> 75% utilization.
  EXPECT_NEAR(rep.pe_utilization, 0.75, 1e-9);
}

TEST(Arrays, Fig7c3dArrayIsValidAndEvaluates) {
  const auto arch = fig7c_3d();
  EXPECT_TRUE(arch.valid());
  EXPECT_EQ(arch.num_pes(), 144);
  EXPECT_TRUE(arch::shidiannao_resources().allows(arch));

  const cost::CostModel model;
  const nn::Workload layer = nn::make_conv("vgg", 64, 64, 3, 1, 112);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  ASSERT_TRUE(rep.legal) << rep.illegal_reason;
  EXPECT_TRUE(std::isfinite(rep.edp));
  EXPECT_GT(rep.pe_utilization, 0.0);
  EXPECT_LE(rep.pe_utilization, 1.0 + 1e-9);
}

TEST(Arrays, ThreeDCombinesReductionAndBroadcast) {
  // C x K x X' parallel: C axis reduces, K and X' scatter outputs.
  const cost::CostModel model;
  const auto arch = fig7c_3d();
  const nn::Workload layer = nn::make_conv("c", 16, 24, 3, 1, 24);
  const auto rep =
      model.evaluate(arch, layer, mapping::canonical_mapping(arch, layer));
  ASSERT_TRUE(rep.legal);
  EXPECT_GT(rep.reduction_hop_bytes, 0.0);  // C axis reduction network
}

TEST(Arrays, MappingSearchWorksOn3d) {
  const cost::CostModel model;
  const auto arch = fig7c_3d();
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  search::MappingSearchOptions opts;
  opts.population = 8;
  opts.iterations = 4;
  const auto res = search::search_mapping(model, arch, layer, opts);
  EXPECT_TRUE(std::isfinite(res.best_edp));
  EXPECT_TRUE(mapping::check(res.best, layer, arch).legal);
}

TEST(Arrays, DepthwiseOn3dIdlesReductionAxis) {
  const cost::CostModel model;
  const auto arch = fig7c_3d();  // C axis of 4 idles on depthwise
  const nn::Workload dw = nn::make_dwconv("dw", 96, 3, 1, 56);
  const auto rep =
      model.evaluate(arch, dw, mapping::canonical_mapping(arch, dw));
  ASSERT_TRUE(rep.legal);
  EXPECT_LE(rep.pe_utilization, 0.25 + 1e-9);
}

TEST(Arrays, MoreParallelAxesNeverIncreaseComputeCycles) {
  // Adding a third axis (more PEs) cannot slow the compute roofline.
  const cost::CostModel model;
  const nn::Workload layer = nn::make_conv("c", 64, 64, 3, 1, 56);
  arch::ArchConfig two_d = fig7c_3d();
  two_d.num_array_dims = 2;  // 4x6 = 24 PEs
  const auto r2 =
      model.evaluate(two_d, layer, mapping::canonical_mapping(two_d, layer));
  const auto r3 = model.evaluate(fig7c_3d(), layer,
                                 mapping::canonical_mapping(fig7c_3d(), layer));
  ASSERT_TRUE(r2.legal && r3.legal);
  EXPECT_LE(r3.compute_cycles, r2.compute_cycles);
}

}  // namespace
}  // namespace naas
