// Property and regression tests for the matmul/attention workload kinds:
// the per-kind dim-semantics tables, the GEMM builders' dim map, the
// batched-weight attention footprint, transformer-scale overflow bounds,
// batch==scalar byte-identity on randomized GEMM workloads (the same
// invariant tests/test_cost_batch.cpp pins for conv), legality-reason sync
// vs mapping::check, and warm-start bit-identity on a transformer zoo
// model through the serving stack.

#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "cost/reuse.hpp"
#include "mapping/canonical.hpp"
#include "mapping/footprint.hpp"
#include "mapping/legality.hpp"
#include "nn/model_zoo.hpp"
#include "serve/service.hpp"
#include "test_seed.hpp"

namespace naas::cost {
namespace {

using nn::Dim;
using nn::LayerKind;
using nn::Workload;

// ---------------------------------------------------- semantics tables

TEST(KindSemantics, AttentionWeightIsBatchIndexed) {
  EXPECT_FALSE(is_relevant(Tensor::kWeight, Dim::kN, LayerKind::kMatmul));
  EXPECT_TRUE(is_relevant(Tensor::kWeight, Dim::kN, LayerKind::kAttention));
  EXPECT_FALSE(semantics(LayerKind::kConv).batched_weight);
  EXPECT_FALSE(semantics(LayerKind::kDepthwiseConv).batched_weight);
  EXPECT_FALSE(semantics(LayerKind::kFullyConnected).batched_weight);
  EXPECT_FALSE(semantics(LayerKind::kMatmul).batched_weight);
  EXPECT_TRUE(semantics(LayerKind::kAttention).batched_weight);
}

TEST(KindSemantics, GemmKindsReduceOverCOnly) {
  for (LayerKind k : {LayerKind::kMatmul, LayerKind::kAttention}) {
    EXPECT_TRUE(is_reduction(Dim::kC, k));
    EXPECT_FALSE(is_reduction(Dim::kR, k));
    EXPECT_FALSE(is_reduction(Dim::kS, k));
    EXPECT_FALSE(is_reduction(Dim::kN, k));
    EXPECT_FALSE(is_reduction(Dim::kK, k));
    // Pinned conv-only dims index no operand.
    for (Tensor t : {Tensor::kInput, Tensor::kWeight, Tensor::kOutput}) {
      EXPECT_FALSE(is_relevant(t, Dim::kXp, k));
      EXPECT_FALSE(is_relevant(t, Dim::kR, k));
      EXPECT_FALSE(is_relevant(t, Dim::kS, k));
    }
  }
}

TEST(KindSemantics, ConvTablesMatchLegacyRules) {
  // Spot checks that the table refactor preserved the old switch logic.
  EXPECT_TRUE(is_relevant(Tensor::kInput, Dim::kC, LayerKind::kConv));
  EXPECT_FALSE(is_relevant(Tensor::kInput, Dim::kK, LayerKind::kConv));
  EXPECT_TRUE(
      is_relevant(Tensor::kInput, Dim::kK, LayerKind::kDepthwiseConv));
  EXPECT_FALSE(
      is_relevant(Tensor::kInput, Dim::kC, LayerKind::kDepthwiseConv));
  EXPECT_TRUE(is_relevant(Tensor::kWeight, Dim::kR, LayerKind::kConv));
  EXPECT_FALSE(is_relevant(Tensor::kWeight, Dim::kN, LayerKind::kConv));
  EXPECT_TRUE(is_reduction(Dim::kC, LayerKind::kFullyConnected));
  EXPECT_FALSE(is_reduction(Dim::kC, LayerKind::kDepthwiseConv));
}

// ---------------------------------------------------- builders / dim map

TEST(TransformerLayer, MatmulDimMap) {
  const Workload l = nn::make_matmul("m", 128, 768, 3072, 4);
  EXPECT_EQ(l.kind, LayerKind::kMatmul);
  EXPECT_EQ(l.dim_size(Dim::kN), 4);
  EXPECT_EQ(l.dim_size(Dim::kYp), 128);   // M rows
  EXPECT_EQ(l.dim_size(Dim::kC), 768);    // reduction depth
  EXPECT_EQ(l.dim_size(Dim::kK), 3072);   // output features
  EXPECT_EQ(l.dim_size(Dim::kXp), 1);
  EXPECT_EQ(l.dim_size(Dim::kR), 1);
  EXPECT_EQ(l.dim_size(Dim::kS), 1);
  EXPECT_EQ(l.macs(), 4LL * 128 * 768 * 3072);
  EXPECT_EQ(l.input_elems(), 4LL * 128 * 768);
  EXPECT_EQ(l.weight_elems(), 768LL * 3072);  // shared across the batch
  EXPECT_EQ(l.output_elems(), 4LL * 128 * 3072);
}

TEST(TransformerLayer, AttentionScoresAndContextAreTransposes) {
  // QK^T: [seq_q x head_dim] x [head_dim x seq_kv] per (batch x head).
  const Workload qk = nn::make_attention_scores("qk", 128, 96, 64, 12, 2);
  EXPECT_EQ(qk.kind, LayerKind::kAttention);
  EXPECT_EQ(qk.batch, 24);                 // batch x heads
  EXPECT_EQ(qk.dim_size(Dim::kYp), 128);   // seq_q
  EXPECT_EQ(qk.dim_size(Dim::kC), 64);     // head_dim (reduction)
  EXPECT_EQ(qk.dim_size(Dim::kK), 96);     // seq_kv
  // The "weight" (K^T) is per batch x head: scaled by N.
  EXPECT_EQ(qk.weight_elems(), 96LL * 64 * 24);

  // scores x V: [seq_q x seq_kv] x [seq_kv x head_dim].
  const Workload av = nn::make_attention_context("av", 128, 96, 64, 12, 2);
  EXPECT_EQ(av.dim_size(Dim::kC), 96);     // seq_kv (reduction)
  EXPECT_EQ(av.dim_size(Dim::kK), 64);     // head_dim
  EXPECT_EQ(av.macs(), qk.macs());         // same MAC volume, swapped dims
}

TEST(TransformerLayer, ToStringUsesGemmView) {
  const std::string s = nn::make_matmul("ffn_up", 128, 768, 3072).to_string();
  EXPECT_NE(s.find("matmul"), std::string::npos);
  EXPECT_NE(s.find("m128"), std::string::npos);
  EXPECT_NE(s.find("k768"), std::string::npos);
  EXPECT_NE(s.find("n3072"), std::string::npos);
}

TEST(TransformerLayer, ShapeHashDiscriminatesKinds) {
  // A matmul and an attention layer with identical extents must never
  // alias a cache/store entry: kind participates in hash and equality.
  Workload mm = nn::make_matmul("x", 64, 128, 128, 8);
  Workload at = mm;
  at.kind = LayerKind::kAttention;
  EXPECT_FALSE(nn::LayerShapeEq{}(mm, at));
  EXPECT_NE(nn::LayerShapeHash{}(mm), nn::LayerShapeHash{}(at));
}

// ---------------------------------------------------- overflow audit

TEST(TransformerLayer, InputExtentMathSurvivesIntBoundary) {
  // (out_rows - 1) * min(stride, kernel) + kernel at out_rows past
  // INT_MAX/2 overflowed when the intermediates were int; the widened
  // signature must produce the exact value.
  const Workload l = nn::make_conv("c", 3, 8, 3, 2, 10);
  EXPECT_EQ(l.input_rows_for(1'200'000'000LL), 2'400'000'001LL);
  EXPECT_EQ(l.input_cols_for(1'200'000'000LL), 2'400'000'001LL);
}

TEST(TransformerLayer, WeightElemsSurviveIntBoundary) {
  // 65536 x 65536 weight = 2^32 elements: overflows int, exact in the
  // widened math.
  const Workload l = nn::make_matmul("big", 1, 65536, 65536);
  EXPECT_EQ(l.weight_elems(), 1LL << 32);
  EXPECT_EQ(l.macs(), 1LL << 32);
}

TEST(TransformerLayer, LlmDecodeScaleCountsAreExact) {
  // LLaMA-7B-class decode against an 8k KV cache: per-head K^T slices are
  // seq_kv x head_dim x (batch x heads) with no sharing.
  const Workload qk = nn::make_attention_scores("qk", 1, 8192, 128, 32, 1);
  EXPECT_EQ(qk.weight_elems(), 8192LL * 128 * 32);
  EXPECT_EQ(qk.macs(), 32LL * 8192 * 128);
  EXPECT_EQ(qk.input_elems(), 32LL * 1 * 128);
}

// ---------------------------------------------------- footprints

TEST(TransformerFootprint, AttentionWeightTileScalesWithBatchTile) {
  const Workload mm = nn::make_matmul("m", 64, 128, 256, 8);
  Workload at = mm;
  at.kind = LayerKind::kAttention;
  mapping::TileSizes tile{};
  for (Dim d : nn::all_dims()) mapping::set_tile(tile, d, 1);
  mapping::set_tile(tile, Dim::kN, 4);
  mapping::set_tile(tile, Dim::kK, 16);
  mapping::set_tile(tile, Dim::kC, 32);
  mapping::set_tile(tile, Dim::kYp, 8);

  const auto fp_mm = mapping::tile_footprint(mm, tile);
  const auto fp_at = mapping::tile_footprint(at, tile);
  EXPECT_EQ(fp_mm.weight, 16LL * 32 * mapping::kBytesPerElement);
  EXPECT_EQ(fp_at.weight, 4LL * 16 * 32 * mapping::kBytesPerElement);
  // Input and output bytes are kind-independent between the two.
  EXPECT_EQ(fp_mm.input, fp_at.input);
  EXPECT_EQ(fp_mm.output, fp_at.output);
  // Unit kernel/stride degenerate the halo formula to exact rows.
  EXPECT_EQ(fp_mm.input, 4LL * 32 * 8 * mapping::kBytesPerElement);
}

// ---------------------------------------------------- batch == scalar

std::string serialize_report(const CostReport& r) {
  core::ByteWriter w;
  w.u8(r.legal ? 1 : 0);
  w.str(r.illegal_reason);
  for (double v : {r.macs, r.compute_cycles, r.noc_cycles, r.dram_cycles,
                   r.latency_cycles, r.energy.mac_pj, r.energy.l1_pj,
                   r.energy.l2_pj, r.energy.noc_pj, r.energy.dram_pj,
                   r.energy_nj, r.edp, r.pe_utilization, r.dram_bytes,
                   r.l2_read_bytes, r.l2_write_bytes, r.l1_access_bytes,
                   r.noc_delivery_bytes, r.reduction_hop_bytes})
    w.f64(v);
  return w.bytes();
}

/// Random transformer-shaped GEMM workload: projection/FFN matmuls and
/// decode/prefill attention slices, batch x heads folded into N.
Workload random_gemm_layer(core::Rng& rng) {
  const int rows = rng.bernoulli(0.3) ? 1 : rng.uniform_int(1, 64);  // decode
  if (rng.bernoulli(0.5)) {
    return nn::make_matmul("mm", rows, rng.uniform_int(1, 96),
                           rng.uniform_int(1, 96), rng.uniform_int(1, 8));
  }
  return rng.bernoulli(0.5)
             ? nn::make_attention_scores("qk", rows, rng.uniform_int(1, 64),
                                         rng.uniform_int(1, 32),
                                         rng.uniform_int(1, 4),
                                         rng.uniform_int(1, 2))
             : nn::make_attention_context("av", rows, rng.uniform_int(1, 64),
                                          rng.uniform_int(1, 32),
                                          rng.uniform_int(1, 4),
                                          rng.uniform_int(1, 2));
}

arch::ArchConfig random_arch(core::Rng& rng) {
  if (rng.bernoulli(0.25)) {
    const arch::ArchConfig presets[] = {
        arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch()};
    return presets[rng.uniform_int(0, 2)];
  }
  arch::ArchConfig cfg;
  cfg.name = "rand";
  cfg.num_array_dims = rng.uniform_int(1, 3);
  const Dim dims[] = {Dim::kK, Dim::kC,  Dim::kYp, Dim::kXp,
                      Dim::kR, Dim::kS, Dim::kN};
  std::vector<Dim> pool(dims, dims + 7);
  rng.shuffle(pool);
  for (int a = 0; a < arch::kMaxArrayDims; ++a) {
    cfg.array_dims[static_cast<std::size_t>(a)] = rng.uniform_int(1, 16);
    cfg.parallel_dims[static_cast<std::size_t>(a)] =
        pool[static_cast<std::size_t>(a)];
  }
  cfg.l1_bytes = 1LL << rng.uniform_int(6, 11);
  cfg.l2_bytes = 1LL << rng.uniform_int(12, 18);
  cfg.noc_bandwidth = 1 << rng.uniform_int(2, 6);
  cfg.dram_bandwidth = 1 << rng.uniform_int(2, 6);
  return cfg;
}

mapping::LoopOrder random_order(core::Rng& rng, bool allow_invalid) {
  std::vector<Dim> dims;
  for (Dim d : nn::all_dims()) dims.push_back(d);
  rng.shuffle(dims);
  mapping::LoopOrder order;
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = dims[i];
  if (allow_invalid && rng.bernoulli(0.1)) order[0] = order[1];  // duplicate
  return order;
}

mapping::Mapping random_candidate(core::Rng& rng, const arch::ArchConfig& arch,
                                  const Workload& layer) {
  mapping::Mapping m;
  m.dram.order = random_order(rng, true);
  m.pe.order = random_order(rng, true);
  m.pe_order = random_order(rng, true);
  for (Dim d : nn::all_dims()) {
    const int bound = layer.dim_size(d);
    mapping::set_tile(m.dram.tile, d, rng.uniform_int(0, 2 * bound));
    mapping::set_tile(m.pe.tile, d, rng.uniform_int(0, bound + 1));
  }
  if (rng.bernoulli(0.5)) m = mapping::repair(m, layer, arch);
  return m;
}

TEST(TransformerCostBatch, MatchesScalarByteForByteOnRandomGemms) {
  const CostModel model;
  core::Rng rng(test::sweep_seed(20260808));
  for (int round = 0; round < 40; ++round) {
    const Workload layer = random_gemm_layer(rng);
    const arch::ArchConfig arch = random_arch(rng);
    std::vector<mapping::Mapping> cands;
    for (int i = 0; i < 24; ++i)
      cands.push_back(random_candidate(rng, arch, layer));

    std::vector<std::string> scalar;
    for (const auto& m : cands)
      scalar.push_back(serialize_report(model.evaluate(arch, layer, m)));

    const LayerContext ctx = model.make_context(arch, layer);
    for (std::size_t batch_size : {std::size_t{1}, std::size_t{12},
                                   std::size_t{7}}) {
      std::vector<CostReport> reports(cands.size());
      for (std::size_t lo = 0; lo < cands.size(); lo += batch_size) {
        const std::size_t len = std::min(batch_size, cands.size() - lo);
        model.evaluate_batch(
            ctx, std::span<const mapping::Mapping>(cands).subspan(lo, len),
            std::span<CostReport>(reports).subspan(lo, len));
      }
      for (std::size_t i = 0; i < cands.size(); ++i)
        EXPECT_EQ(scalar[i], serialize_report(reports[i]))
            << layer.to_string() << " candidate " << i << " at batch size "
            << batch_size << " (reason='" << reports[i].illegal_reason
            << "')";
    }
  }
}

TEST(TransformerCostBatch, LegalityReasonsMatchMappingCheck) {
  const CostModel model;
  core::Rng rng(test::sweep_seed(808));
  int illegal_seen = 0;
  for (int round = 0; round < 200; ++round) {
    const Workload layer = random_gemm_layer(rng);
    const arch::ArchConfig arch = random_arch(rng);
    if (!arch.valid()) continue;
    const mapping::Mapping m = random_candidate(rng, arch, layer);
    const auto legality = mapping::check(m, layer, arch);
    const CostReport rep = model.evaluate(arch, layer, m);
    EXPECT_EQ(rep.legal, legality.legal) << layer.to_string();
    EXPECT_EQ(rep.illegal_reason, legality.reason) << layer.to_string();
    if (!legality.legal) ++illegal_seen;
  }
  EXPECT_GT(illegal_seen, 20) << "generator stopped producing illegal cases";
}

// ---------------------------------------------------- warm-start identity

TEST(TransformerWarmStart, BertEncoderAnswersBitIdenticalWithZeroSearches) {
  const std::string store =
      ::testing::TempDir() + "naas_transformer_warm.bin";
  std::remove(store.c_str());
  serve::ServeOptions opts;
  opts.mapping.population = 6;
  opts.mapping.iterations = 3;
  opts.store_path = store;

  serve::Json req = serve::Json::object();
  req.set("id", serve::Json::integer(1));
  req.set("method", serve::Json::string("evaluate_network"));
  serve::Json arch = serve::Json::object();
  arch.set("preset", serve::Json::string("nvdla256"));
  req.set("arch", std::move(arch));
  req.set("network", serve::Json::string("bert_base_encoder"));
  const std::string line = req.dump();

  std::string cold;
  {
    serve::EvalService service(opts);
    cold = service.handle_line(line);
    EXPECT_GT(service.evaluator().mapping_searches(), 0);
  }  // destructor flushes the store
  serve::EvalService warm(opts);
  const std::string warm_response = warm.handle_line(line);
  EXPECT_EQ(cold, warm_response);
  EXPECT_EQ(warm.evaluator().mapping_searches(), 0)
      << "warm transformer run re-ran mapping searches";
  std::remove(store.c_str());
}

}  // namespace
}  // namespace naas::cost
