#include "cost/network_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"
#include "mapping/canonical.hpp"
#include "nn/model_zoo.hpp"

namespace naas::cost {
namespace {

TEST(NetworkCost, AggregatesAreSumsOverLayers) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Network net = nn::make_cifar_net();
  const NetworkCost nc = evaluate_network_canonical(model, arch, net);
  ASSERT_TRUE(nc.legal);

  double latency = 0, energy = 0;
  int layers = 0;
  for (const auto& lc : nc.per_layer) {
    latency += lc.report.latency_cycles * lc.count;
    energy += lc.report.energy_nj * lc.count;
    layers += lc.count;
  }
  EXPECT_DOUBLE_EQ(nc.latency_cycles, latency);
  EXPECT_DOUBLE_EQ(nc.energy_nj, energy);
  EXPECT_DOUBLE_EQ(nc.edp, latency * energy);
  EXPECT_EQ(layers, net.num_layers());
}

TEST(NetworkCost, UniqueLayerCountsCoverNetwork) {
  const CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Network net = nn::make_resnet50();
  const NetworkCost nc = evaluate_network_canonical(model, arch, net);
  ASSERT_TRUE(nc.legal);
  EXPECT_LT(nc.per_layer.size(), static_cast<std::size_t>(net.num_layers()));
  int total = 0;
  for (const auto& lc : nc.per_layer) total += lc.count;
  EXPECT_EQ(total, net.num_layers());
}

TEST(NetworkCost, CustomProviderIsUsed) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Network net = nn::make_cifar_net();
  int calls = 0;
  const NetworkCost nc = evaluate_network(
      model, arch, net,
      [&calls](const arch::ArchConfig& a, const nn::Workload& l) {
        ++calls;
        return mapping::canonical_mapping(a, l);
      });
  EXPECT_TRUE(nc.legal);
  EXPECT_EQ(calls, static_cast<int>(nc.per_layer.size()));
}

TEST(NetworkCost, IllegalLayerPoisonsNetwork) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Network net = nn::make_cifar_net();
  const NetworkCost nc = evaluate_network(
      model, arch, net,
      [](const arch::ArchConfig& a, const nn::Workload& l) {
        mapping::Mapping m = mapping::canonical_mapping(a, l);
        mapping::set_tile(m.pe.tile, nn::Dim::kYp, 10000);  // illegal
        return m;
      });
  EXPECT_FALSE(nc.legal);
  EXPECT_TRUE(std::isinf(nc.edp));
}

TEST(NetworkCost, NamesPropagate) {
  const CostModel model;
  const auto arch = arch::shidiannao_arch();
  const NetworkCost nc =
      evaluate_network_canonical(model, arch, nn::make_squeezenet());
  EXPECT_EQ(nc.network_name, "SqueezeNet");
  EXPECT_EQ(nc.arch_name, "ShiDianNao");
}

TEST(NetworkCost, AllBenchmarksFiniteOnAllPresets) {
  const CostModel model;
  for (const auto& arch :
       {arch::edge_tpu_arch(), arch::nvdla_1024_arch(), arch::nvdla_256_arch(),
        arch::eyeriss_arch(), arch::shidiannao_arch()}) {
    for (const auto& net : {nn::make_vgg16(), nn::make_resnet50(),
                            nn::make_unet(), nn::make_mobilenet_v2(),
                            nn::make_squeezenet(), nn::make_mnasnet()}) {
      const NetworkCost nc = evaluate_network_canonical(model, arch, net);
      EXPECT_TRUE(nc.legal) << arch.name << "/" << net.name();
      EXPECT_TRUE(std::isfinite(nc.edp));
      EXPECT_GT(nc.edp, 0.0);
    }
  }
}

}  // namespace
}  // namespace naas::cost
