#include "nas/nas_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"

namespace naas::nas {
namespace {

search::MappingSearchOptions tiny_mapping() {
  search::MappingSearchOptions opts;
  opts.population = 6;
  opts.iterations = 3;
  return opts;
}

TEST(SubnetEvolution, RespectsAccuracyConstraint) {
  const cost::CostModel model;
  search::ArchEvaluator ev(model, tiny_mapping());
  const nn::OfaSpace space;
  const nn::AccuracyPredictor predictor;

  SubnetEvolutionOptions opts;
  opts.min_accuracy = 77.5;
  opts.population = 6;
  opts.iterations = 3;
  opts.seed = 5;
  const SubnetResult res =
      evolve_subnet(ev, arch::eyeriss_arch(), space, predictor, opts);
  ASSERT_TRUE(std::isfinite(res.edp));
  EXPECT_GE(res.accuracy, opts.min_accuracy);
  EXPECT_DOUBLE_EQ(predictor.predict(res.config), res.accuracy);
}

TEST(SubnetEvolution, LooserConstraintNeverWorseEdp) {
  const cost::CostModel model;
  search::ArchEvaluator ev(model, tiny_mapping());
  const nn::OfaSpace space;
  const nn::AccuracyPredictor predictor;

  SubnetEvolutionOptions strict;
  strict.min_accuracy = 78.8;
  strict.population = 6;
  strict.iterations = 4;
  strict.seed = 7;
  SubnetEvolutionOptions loose = strict;
  loose.min_accuracy = 74.0;

  const auto arch = arch::nvdla_256_arch();
  const auto rs = evolve_subnet(ev, arch, space, predictor, strict);
  const auto rl = evolve_subnet(ev, arch, space, predictor, loose);
  ASSERT_TRUE(std::isfinite(rs.edp));
  ASSERT_TRUE(std::isfinite(rl.edp));
  // The loose constraint admits every strict-feasible subnet (same seed =>
  // superset of candidates is not guaranteed, but smaller nets dominate
  // EDP so the loose optimum must be at least as good within tolerance).
  EXPECT_LE(rl.edp, rs.edp * 1.05);
}

TEST(SubnetEvolution, InfeasibleConstraintReportsInfinity) {
  const cost::CostModel model;
  search::ArchEvaluator ev(model, tiny_mapping());
  SubnetEvolutionOptions opts;
  opts.min_accuracy = 99.0;  // unreachable
  opts.population = 4;
  opts.iterations = 2;
  const SubnetResult res =
      evolve_subnet(ev, arch::eyeriss_arch(), nn::OfaSpace{},
                    nn::AccuracyPredictor{}, opts);
  EXPECT_TRUE(std::isinf(res.edp));
}

TEST(CoSearch, ReturnsMatchedTuple) {
  const cost::CostModel model;
  CoSearchOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.hw_population = 6;
  opts.hw_iterations = 3;
  opts.seed = 3;
  opts.mapping = tiny_mapping();
  opts.subnet.min_accuracy = 77.0;
  opts.subnet.population = 5;
  opts.subnet.iterations = 2;

  const CoSearchResult res = run_cosearch(model, opts);
  ASSERT_TRUE(std::isfinite(res.best_edp));
  EXPECT_TRUE(opts.resources.allows(res.best_arch));
  EXPECT_GE(res.best_accuracy, opts.subnet.min_accuracy);
  EXPECT_GT(res.cost_evaluations, 0);
  EXPECT_GT(res.wall_seconds, 0.0);
}

TEST(CoSearch, JointBeatsFixedNetOnEdp) {
  // The co-search may shrink the network (within the accuracy constraint),
  // so its EDP should be no worse than forcing the full ResNet50-shaped
  // subnet on the same searched accelerator budget.
  const cost::CostModel model;
  CoSearchOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.hw_population = 6;
  opts.hw_iterations = 4;
  opts.seed = 9;
  opts.mapping = tiny_mapping();
  opts.subnet.min_accuracy = 76.5;
  opts.subnet.population = 6;
  opts.subnet.iterations = 3;
  const CoSearchResult joint = run_cosearch(model, opts);
  ASSERT_TRUE(std::isfinite(joint.best_edp));

  search::ArchEvaluator ev(model, tiny_mapping());
  const auto fixed_net =
      nn::OfaSpace{}.to_network(nn::OfaSpace::resnet50_config());
  const auto fixed_cost = ev.evaluate(joint.best_arch, fixed_net);
  ASSERT_TRUE(fixed_cost.legal);
  EXPECT_LE(joint.best_edp, fixed_cost.edp * 1.02);
}

}  // namespace
}  // namespace naas::nas
