#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace naas::cost {
namespace {

using mapping::set_tile;

/// 2x2 C x K array with ample buffers; all tile geometry is hand-sized so
/// every traffic number below is derived by hand in the comments.
arch::ArchConfig tiny_arch() {
  arch::ArchConfig cfg;
  cfg.name = "tiny2x2";
  cfg.num_array_dims = 2;
  cfg.array_dims = {2, 2, 1};
  cfg.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  cfg.l1_bytes = 128;
  cfg.l2_bytes = 4096;
  cfg.noc_bandwidth = 8;
  cfg.dram_bandwidth = 4;
  return cfg;
}

/// 1x1x1 conv, K=C=Y'=X'=4: macs = 256, input 64, weights 16, outputs 64.
nn::Workload tiny_layer() { return nn::make_conv("t", 4, 4, 1, 1, 4); }

/// Single L2 tile (= whole layer), per-PE tile = full share.
mapping::Mapping tiny_mapping(const arch::ArchConfig& arch,
                              const nn::Workload& l) {
  mapping::Mapping m;
  for (nn::Dim d : nn::all_dims()) {
    set_tile(m.dram.tile, d, l.dim_size(d));
    set_tile(m.pe.tile, d, mapping::pe_share(l, arch, m.dram.tile, d));
  }
  return m;
}

TEST(CostModel, HandComputedTraffic) {
  const CostModel model;
  const auto arch = tiny_arch();
  const auto layer = tiny_layer();
  const auto rep = model.evaluate(arch, layer, tiny_mapping(arch, layer));
  ASSERT_TRUE(rep.legal) << rep.illegal_reason;

  // Single L2 tile: DRAM traffic is compulsory. 64 + 16 + 64.
  EXPECT_DOUBLE_EQ(rep.dram_bytes, 144.0);
  // L2 reads: input 32B/PE unicast over C (x2) = 64, weights 4B/PE unicast
  // over both axes (x4) = 16, plus 64B psum drain to DRAM.
  EXPECT_DOUBLE_EQ(rep.l2_read_bytes, 144.0);
  // L2 writes: 64B reduced outputs + 80B DRAM fills (input+weights).
  EXPECT_DOUBLE_EQ(rep.l2_write_bytes, 144.0);
  // NoC deliveries: (32+4+32) per PE x 4 PEs = 272; reduction over the C
  // axis adds (2-1) hops per reduced output byte = 64.
  EXPECT_DOUBLE_EQ(rep.noc_delivery_bytes, 272.0);
  EXPECT_DOUBLE_EQ(rep.reduction_hop_bytes, 64.0);
  // L1: 256 input reads + 16 weight reads (the 1x1 weight is register-
  // resident across the 4x4 spatial sweep: reuse 16) + 512 psum r/w +
  // 144 fills + 128 drains.
  EXPECT_DOUBLE_EQ(rep.l1_access_bytes, 1056.0);
}

TEST(CostModel, HandComputedLatencyAndUtilization) {
  const CostModel model;
  const auto arch = tiny_arch();
  const auto layer = tiny_layer();
  const auto rep = model.evaluate(arch, layer, tiny_mapping(arch, layer));

  // Per-PE work: 2(K) x 2(C) x 4(Y') x 4(X') = 64 cycles; 4 PEs x 64 = 256
  // MACs => full utilization.
  EXPECT_DOUBLE_EQ(rep.compute_cycles, 64.0);
  EXPECT_DOUBLE_EQ(rep.pe_utilization, 1.0);
  EXPECT_DOUBLE_EQ(rep.noc_cycles, 288.0 / 8.0);
  EXPECT_DOUBLE_EQ(rep.dram_cycles, 144.0 / 4.0);
  // compute-bound + fill (first tile 144/4 + array depth 4).
  EXPECT_DOUBLE_EQ(rep.latency_cycles, 64.0 + 144.0 / 4.0 + 4.0);
}

TEST(CostModel, HandComputedEnergyComposition) {
  const CostModel model;
  const auto arch = tiny_arch();
  const auto layer = tiny_layer();
  const auto rep = model.evaluate(arch, layer, tiny_mapping(arch, layer));

  const EnergyModel& em = model.energy_model();
  EXPECT_DOUBLE_EQ(rep.energy.mac_pj, 256.0 * em.mac_pj);
  EXPECT_DOUBLE_EQ(rep.energy.l1_pj, 1056.0 * em.l1_access_pj(128));
  EXPECT_DOUBLE_EQ(rep.energy.l2_pj, 288.0 * em.l2_access_pj(4096));
  EXPECT_DOUBLE_EQ(rep.energy.noc_pj, (272.0 + 64.0) * em.noc_hop_pj);
  EXPECT_DOUBLE_EQ(rep.energy.dram_pj, 144.0 * 200.0);
  EXPECT_DOUBLE_EQ(rep.energy_nj, rep.energy.total_pj() / 1000.0);
  EXPECT_DOUBLE_EQ(rep.edp, rep.energy_nj * rep.latency_cycles);
}

TEST(CostModel, IllegalMappingYieldsInfiniteEdp) {
  const CostModel model;
  const auto arch = tiny_arch();
  const auto layer = tiny_layer();
  auto m = tiny_mapping(arch, layer);
  set_tile(m.pe.tile, nn::Dim::kYp, 99);  // beyond share
  const auto rep = model.evaluate(arch, layer, m);
  EXPECT_FALSE(rep.legal);
  EXPECT_TRUE(std::isinf(rep.edp));
  EXPECT_FALSE(rep.illegal_reason.empty());
}

TEST(CostModel, LoopOrderControlsDramTraffic) {
  // Single-PE machine with a small L2 forcing 4x4x2x2 tile trips. The
  // weight-stationary order must reach compulsory weight traffic; the
  // output-stationary order must reach compulsory output traffic; each is
  // strictly worse on the other operand.
  arch::ArchConfig arch;
  arch.name = "single-pe";
  arch.num_array_dims = 1;
  arch.array_dims = {1, 1, 1};
  arch.parallel_dims = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kXp};
  arch.l1_bytes = 1024;
  arch.l2_bytes = 128;
  arch.noc_bandwidth = 8;
  arch.dram_bandwidth = 4;
  const nn::Workload layer = nn::make_conv("m", 8, 8, 1, 1, 8);

  auto tiled = [&](const mapping::LoopOrder& order) {
    mapping::Mapping m;
    m.dram.order = order;
    m.pe.order = order;
    m.pe_order = order;
    set_tile(m.dram.tile, nn::Dim::kN, 1);
    set_tile(m.dram.tile, nn::Dim::kK, 2);
    set_tile(m.dram.tile, nn::Dim::kC, 2);
    set_tile(m.dram.tile, nn::Dim::kYp, 4);
    set_tile(m.dram.tile, nn::Dim::kXp, 4);
    set_tile(m.dram.tile, nn::Dim::kR, 1);
    set_tile(m.dram.tile, nn::Dim::kS, 1);
    for (nn::Dim d : nn::all_dims())
      set_tile(m.pe.tile, d, mapping::tile_of(m.dram.tile, d));
    return m;
  };

  const CostModel model;
  const auto ws =
      model.evaluate(arch, layer, tiled(mapping::weight_stationary_order()));
  const auto os =
      model.evaluate(arch, layer, tiled(mapping::output_stationary_order()));
  ASSERT_TRUE(ws.legal && os.legal);

  // Hand-derived DRAM byte counts (trips K4 C4 Y'2 X'2; tile footprints:
  // input 32, weight 4, output 32):
  //  WS: weights compulsory 64; input refetched per K trip: 4x16x32 = 2048;
  //      outputs revisited per C trip: writes 2048, reads 1536.
  //  OS: outputs compulsory 512 writes, 0 reads; weights 64x4 = 256;
  //      input refetched per K trip as well: 2048.
  EXPECT_DOUBLE_EQ(ws.dram_bytes, 64.0 + 2048.0 + 2048.0 + 1536.0);
  EXPECT_DOUBLE_EQ(os.dram_bytes, 512.0 + 256.0 + 2048.0);
  EXPECT_LT(os.dram_bytes, ws.dram_bytes);
}

TEST(CostModel, DepthwiseStarvesCParallelArrays) {
  // NVDLA parallelizes C x K; a depthwise layer has C = 1, idling 15 of 16
  // rows. This is the utilization cliff NAAS exploits on MobileNet.
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload dw = nn::make_dwconv("dw", 96, 3, 1, 56);
  const auto rep =
      model.evaluate(arch, dw, mapping::canonical_mapping(arch, dw));
  ASSERT_TRUE(rep.legal);
  EXPECT_LE(rep.pe_utilization, 1.0 / 16.0 + 1e-9);
}

TEST(CostModel, SmallKernelStarvesEyerissRows) {
  // Eyeriss binds R to its 12 rows; R=3 uses at most 3/12 of the array.
  const CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload conv = nn::make_conv("c", 64, 64, 3, 1, 28);
  const auto rep =
      model.evaluate(arch, conv, mapping::canonical_mapping(arch, conv));
  ASSERT_TRUE(rep.legal);
  EXPECT_LE(rep.pe_utilization, 3.0 / 12.0 + 1e-9);
}

TEST(CostModel, CeilPaddingLowersUtilization) {
  // K=5 split over a 2-wide K axis: shares of 3 cover 5 => 5/6 utilization.
  arch::ArchConfig arch = tiny_arch();
  arch.num_array_dims = 1;
  arch.array_dims = {2, 1, 1};
  arch.parallel_dims = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kXp};
  const nn::Workload layer = nn::make_conv("odd", 1, 5, 1, 1, 1);
  const auto m = tiny_mapping(arch, layer);
  const auto rep = CostModel{}.evaluate(arch, layer, m);
  ASSERT_TRUE(rep.legal);
  EXPECT_DOUBLE_EQ(rep.compute_cycles, 3.0);
  EXPECT_NEAR(rep.pe_utilization, 5.0 / 6.0, 1e-12);
}

TEST(CostModel, BandwidthBottleneckDominatesLatency) {
  arch::ArchConfig arch = tiny_arch();
  arch.dram_bandwidth = 1;  // starve DRAM
  const auto layer = tiny_layer();
  const auto rep = CostModel{}.evaluate(arch, layer, tiny_mapping(arch, layer));
  ASSERT_TRUE(rep.legal);
  EXPECT_DOUBLE_EQ(rep.dram_cycles, 144.0);
  EXPECT_GE(rep.latency_cycles, rep.dram_cycles);
  EXPECT_GT(rep.latency_cycles, rep.compute_cycles);
}

TEST(CostModel, ReductionParallelismCostsHopsNotL2Writes) {
  // Parallelizing a reduction dim (C) reduces psums in-network: the L2
  // still receives each output once, but forwarding hops appear. A pure
  // output-parallel axis (K) needs no reduction network.
  const auto layer = tiny_layer();
  arch::ArchConfig c_par = tiny_arch();
  c_par.num_array_dims = 1;
  c_par.array_dims = {4, 1, 1};
  c_par.parallel_dims = {nn::Dim::kC, nn::Dim::kK, nn::Dim::kXp};
  arch::ArchConfig k_par = c_par;
  k_par.parallel_dims = {nn::Dim::kK, nn::Dim::kC, nn::Dim::kXp};

  const CostModel model;
  const auto rc = model.evaluate(c_par, layer, tiny_mapping(c_par, layer));
  const auto rk = model.evaluate(k_par, layer, tiny_mapping(k_par, layer));
  ASSERT_TRUE(rc.legal && rk.legal);
  // 4-wide C reduction: 3 hops per reduced output byte (64B of outputs).
  EXPECT_DOUBLE_EQ(rc.reduction_hop_bytes, 3.0 * 64.0);
  EXPECT_DOUBLE_EQ(rk.reduction_hop_bytes, 0.0);
  // Both write each output to L2 exactly once (plus identical fills).
  EXPECT_DOUBLE_EQ(rc.l2_write_bytes, rk.l2_write_bytes);
}

TEST(CostModel, SinglePhaseTrafficIsCompulsoryForAnyParallelism) {
  // With the whole layer as one L2 tile, DRAM traffic equals the compulsory
  // footprint no matter which dims are parallelized — slices of one phase
  // tile the tensors exactly (halo-aware multicast for the input).
  const nn::Workload layer = nn::make_conv("c", 4, 4, 3, 1, 8);
  const double compulsory =
      static_cast<double>(layer.input_elems() + layer.weight_elems() +
                          layer.output_elems());
  for (nn::Dim par : {nn::Dim::kK, nn::Dim::kC, nn::Dim::kXp, nn::Dim::kR}) {
    arch::ArchConfig arch = tiny_arch();
    arch.l1_bytes = 4096;
    arch.l2_bytes = 1 << 20;
    arch.num_array_dims = 1;
    arch.array_dims = {2, 1, 1};
    arch.parallel_dims = {par, nn::Dim::kYp, nn::Dim::kS};
    if (par == nn::Dim::kYp) arch.parallel_dims[1] = nn::Dim::kK;
    const auto rep =
        CostModel{}.evaluate(arch, layer, tiny_mapping(arch, layer));
    ASSERT_TRUE(rep.legal) << nn::dim_name(par);
    EXPECT_DOUBLE_EQ(rep.dram_bytes, compulsory) << nn::dim_name(par);
  }
}

TEST(CostModel, EnergyAtLeastMacFloor) {
  const CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload conv = nn::make_conv("c", 64, 64, 3, 1, 28);
  const auto rep =
      model.evaluate(arch, conv, mapping::canonical_mapping(arch, conv));
  ASSERT_TRUE(rep.legal);
  EXPECT_GE(rep.energy_nj * 1000.0,
            rep.macs * model.energy_model().mac_pj);
}

TEST(CostModel, InvalidArchRejected) {
  arch::ArchConfig bad = tiny_arch();
  bad.parallel_dims = {nn::Dim::kC, nn::Dim::kC, nn::Dim::kK};
  const auto layer = tiny_layer();
  const auto rep =
      CostModel{}.evaluate(bad, layer, tiny_mapping(tiny_arch(), layer));
  EXPECT_FALSE(rep.legal);
}

}  // namespace
}  // namespace naas::cost
