#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace naas::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 5000 / 5 / 2);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(23);
  const int n = 30000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NormalVectorHasRequestedSize) {
  Rng rng(2);
  EXPECT_EQ(rng.normal_vector(17).size(), 17u);
  EXPECT_TRUE(rng.normal_vector(0).empty());
}

TEST(Rng, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/50!
}

}  // namespace
}  // namespace naas::core
