#include "search/cma_es.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace naas::search {
namespace {

double sphere(const std::vector<double>& x, double target = 0.3) {
  double acc = 0;
  for (double v : x) acc += (v - target) * (v - target);
  return acc;
}

double rosenbrock01(const std::vector<double>& x) {
  // Rosenbrock mapped into [0,1]^n (optimum at ~0.75 per coordinate after
  // the affine map x' = 4x - 2).
  double acc = 0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = 4.0 * x[i] - 2.0;
    const double b = 4.0 * x[i + 1] - 2.0;
    acc += 100.0 * (b - a * a) * (b - a * a) + (1.0 - a) * (1.0 - a);
  }
  return acc;
}

TEST(CmaEs, PopulationShapesAndBounds) {
  CmaEsOptions opts;
  opts.dim = 5;
  opts.population = 12;
  CmaEs cma(opts);
  const auto pop = cma.ask();
  ASSERT_EQ(pop.size(), 12u);
  for (const auto& x : pop) {
    ASSERT_EQ(x.size(), 5u);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(CmaEs, ConvergesOnSphere) {
  CmaEsOptions opts;
  opts.dim = 8;
  opts.population = 16;
  opts.seed = 3;
  CmaEs cma(opts);
  double best = 1e9;
  for (int iter = 0; iter < 60; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(sphere(x));
      best = std::min(best, fit.back());
    }
    cma.tell(pop, fit);
  }
  EXPECT_LT(best, 1e-4);
  for (double m : cma.mean()) EXPECT_NEAR(m, 0.3, 0.05);
}

TEST(CmaEs, ImprovesRosenbrock) {
  CmaEsOptions opts;
  opts.dim = 4;
  opts.population = 16;
  opts.seed = 11;
  CmaEs cma(opts);
  double first_gen_best = 0, best = 1e18;
  for (int iter = 0; iter < 80; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(rosenbrock01(x));
      best = std::min(best, fit.back());
    }
    if (iter == 0)
      first_gen_best = *std::min_element(fit.begin(), fit.end());
    cma.tell(pop, fit);
  }
  EXPECT_LT(best, first_gen_best / 50.0);
}

TEST(CmaEs, DeterministicForSeed) {
  CmaEsOptions opts;
  opts.dim = 3;
  opts.population = 8;
  opts.seed = 42;
  CmaEs a(opts), b(opts);
  const auto pa = a.ask();
  const auto pb = b.ask();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(CmaEs, ValidityPredicateRespected) {
  CmaEsOptions opts;
  opts.dim = 2;
  opts.population = 20;
  opts.seed = 5;
  CmaEs cma(opts);
  // Accept only the lower-left quadrant (plenty of mass remains).
  const auto pop = cma.ask(
      [](const std::vector<double>& x) { return x[0] < 0.5 && x[1] < 0.5; });
  int ok = 0;
  for (const auto& x : pop) ok += x[0] < 0.5 && x[1] < 0.5;
  EXPECT_GE(ok, 18);  // nearly all should satisfy after resampling
}

TEST(CmaEs, SigmaStaysPositiveAndBounded) {
  CmaEsOptions opts;
  opts.dim = 6;
  opts.population = 12;
  CmaEs cma(opts);
  for (int iter = 0; iter < 30; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) fit.push_back(sphere(x, 0.7));
    cma.tell(pop, fit);
    EXPECT_GT(cma.sigma(), 0.0);
    EXPECT_LE(cma.sigma(), 1.0);
  }
  EXPECT_EQ(cma.generation(), 30);
}

TEST(CmaEs, HandlesInfiniteFitness) {
  // Invalid candidates are scored +inf; the optimizer must keep working.
  CmaEsOptions opts;
  opts.dim = 3;
  opts.population = 10;
  opts.seed = 9;
  CmaEs cma(opts);
  for (int iter = 0; iter < 20; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(x[0] > 0.8 ? std::numeric_limits<double>::infinity()
                               : sphere(x));
    }
    cma.tell(pop, fit);
  }
  EXPECT_LT(cma.mean()[0], 0.8);
  EXPECT_TRUE(std::isfinite(cma.mean()[1]));
}

}  // namespace
}  // namespace naas::search
