#include "search/cma_es.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace naas::search {
namespace {

double sphere(const std::vector<double>& x, double target = 0.3) {
  double acc = 0;
  for (double v : x) acc += (v - target) * (v - target);
  return acc;
}

double rosenbrock01(const std::vector<double>& x) {
  // Rosenbrock mapped into [0,1]^n (optimum at ~0.75 per coordinate after
  // the affine map x' = 4x - 2).
  double acc = 0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = 4.0 * x[i] - 2.0;
    const double b = 4.0 * x[i + 1] - 2.0;
    acc += 100.0 * (b - a * a) * (b - a * a) + (1.0 - a) * (1.0 - a);
  }
  return acc;
}

TEST(CmaEs, PopulationShapesAndBounds) {
  CmaEsOptions opts;
  opts.dim = 5;
  opts.population = 12;
  CmaEs cma(opts);
  const auto pop = cma.ask();
  ASSERT_EQ(pop.size(), 12u);
  for (const auto& x : pop) {
    ASSERT_EQ(x.size(), 5u);
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(CmaEs, ConvergesOnSphere) {
  CmaEsOptions opts;
  opts.dim = 8;
  opts.population = 16;
  opts.seed = 3;
  CmaEs cma(opts);
  double best = 1e9;
  for (int iter = 0; iter < 60; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(sphere(x));
      best = std::min(best, fit.back());
    }
    cma.tell(pop, fit);
  }
  EXPECT_LT(best, 1e-4);
  for (double m : cma.mean()) EXPECT_NEAR(m, 0.3, 0.05);
}

TEST(CmaEs, ImprovesRosenbrock) {
  CmaEsOptions opts;
  opts.dim = 4;
  opts.population = 16;
  opts.seed = 11;
  CmaEs cma(opts);
  double first_gen_best = 0, best = 1e18;
  for (int iter = 0; iter < 80; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(rosenbrock01(x));
      best = std::min(best, fit.back());
    }
    if (iter == 0)
      first_gen_best = *std::min_element(fit.begin(), fit.end());
    cma.tell(pop, fit);
  }
  EXPECT_LT(best, first_gen_best / 50.0);
}

TEST(CmaEs, DeterministicForSeed) {
  CmaEsOptions opts;
  opts.dim = 3;
  opts.population = 8;
  opts.seed = 42;
  CmaEs a(opts), b(opts);
  const auto pa = a.ask();
  const auto pb = b.ask();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(CmaEs, ValidityPredicateRespected) {
  CmaEsOptions opts;
  opts.dim = 2;
  opts.population = 20;
  opts.seed = 5;
  CmaEs cma(opts);
  // Accept only the lower-left quadrant (plenty of mass remains).
  const auto pop = cma.ask(
      [](const std::vector<double>& x) { return x[0] < 0.5 && x[1] < 0.5; });
  int ok = 0;
  for (const auto& x : pop) ok += x[0] < 0.5 && x[1] < 0.5;
  EXPECT_GE(ok, 18);  // nearly all should satisfy after resampling
}

TEST(CmaEs, SigmaStaysPositiveAndBounded) {
  CmaEsOptions opts;
  opts.dim = 6;
  opts.population = 12;
  CmaEs cma(opts);
  for (int iter = 0; iter < 30; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) fit.push_back(sphere(x, 0.7));
    cma.tell(pop, fit);
    EXPECT_GT(cma.sigma(), 0.0);
    EXPECT_LE(cma.sigma(), 1.0);
  }
  EXPECT_EQ(cma.generation(), 30);
}

TEST(CmaEs, ConvergesOnIllConditionedQuadratic) {
  // Regression for the sigma-ordering bug: the rank-mu covariance vectors
  // were normalized by the *post*-CSA sigma instead of the sigma the
  // population was sampled with, mis-scaling every covariance update by the
  // CSA factor. On an ill-conditioned quadratic the covariance must learn
  // the axis scaling to converge this far this fast.
  CmaEsOptions opts;
  opts.dim = 6;
  opts.population = 14;
  opts.seed = 17;
  CmaEs cma(opts);
  double best = 1e18;
  for (int iter = 0; iter < 150; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      // Axis-aligned ellipsoid, condition number 10^4, optimum at 0.4.
      double acc = 0;
      for (std::size_t d = 0; d < x.size(); ++d) {
        const double scale = std::pow(
            10.0, 4.0 * static_cast<double>(d) /
                      static_cast<double>(x.size() - 1));
        acc += scale * (x[d] - 0.4) * (x[d] - 0.4);
      }
      fit.push_back(acc);
      best = std::min(best, acc);
    }
    cma.tell(pop, fit);
  }
  EXPECT_LT(best, 1e-8);
  for (double m : cma.mean()) EXPECT_NEAR(m, 0.4, 1e-3);
}

TEST(CmaEs, RankMuNormalizedBySamplingSigma) {
  // White-box regression for the sigma-ordering bug: the rank-mu vectors
  // y_i must be normalized by the sigma the population was *sampled* with,
  // not the sigma CSA just produced. We engineer one generation where CSA
  // grows sigma substantially and compare the post-update sampling spread
  // against the standard CMA-ES formulas (computable in closed form for
  // dim = 1); the buggy normalization lands ~26% low, far outside
  // sampling noise.
  CmaEsOptions opts;
  opts.dim = 1;
  opts.population = 400;
  opts.seed = 5;
  CmaEs cma(opts);

  // Spec constants for n = 1, lambda = 400, mu = 200 (Hansen's tutorial
  // formulas, the ones the constructor implements).
  const int mu = 200;
  std::vector<double> w(static_cast<std::size_t>(mu));
  for (int i = 0; i < mu; ++i)
    w[static_cast<std::size_t>(i)] = std::log(mu + 0.5) - std::log(i + 1.0);
  double wsum = 0;
  for (double v : w) wsum += v;
  double w2 = 0;
  for (double& v : w) {
    v /= wsum;
    w2 += v * v;
  }
  const double mu_eff = 1.0 / w2;
  const double n = 1.0;
  const double cs = (mu_eff + 2.0) / (n + mu_eff + 5.0);
  const double ds =
      1.0 +
      2.0 * std::max(0.0, std::sqrt((mu_eff - 1.0) / (n + 1.0)) - 1.0) + cs;
  const double cc = (4.0 + mu_eff / n) / (n + 4.0 + 2.0 * mu_eff / n);
  const double c1 = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff);
  const double cmu =
      std::min(1.0 - c1, 2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) /
                             ((n + 2.0) * (n + 2.0) + mu_eff));
  const double chi =
      std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));

  // One generation with every candidate at 0.6: the mean moves 0.5 -> 0.6
  // and the step-size path jumps, so CSA grows sigma well clear of its old
  // value.
  const double old_sigma = cma.sigma();
  const std::vector<std::vector<double>> pop(400, std::vector<double>{0.6});
  std::vector<double> fit(400);
  std::iota(fit.begin(), fit.end(), 0.0);
  cma.tell(pop, fit);

  const double y = (0.6 - 0.5) / old_sigma;
  const double ps = std::sqrt(cs * (2.0 - cs) * mu_eff) * y;
  const double sigma_new = std::clamp(
      old_sigma * std::exp((cs / ds) * (std::abs(ps) / chi - 1.0)), 1e-8,
      1.0);
  ASSERT_NEAR(cma.sigma(), sigma_new, 1e-12);  // constants really match
  ASSERT_GT(sigma_new / old_sigma, 1.2);  // the scenario does move sigma
  const double h =
      std::abs(ps) / std::sqrt(1.0 - std::pow(1.0 - cs, 2.0)) <
              (1.4 + 2.0 / (n + 1.0)) * chi
          ? 1.0
          : 0.0;
  const double pc = h * std::sqrt(cc * (2.0 - cc) * mu_eff) * y;
  const double c1a = c1 * (1.0 - (1.0 - h * h) * cc * (2.0 - cc));
  // All parents share y_i = y and the weights sum to 1.
  const double cov = (1.0 - c1a - cmu) + c1 * pc * pc + cmu * y * y;
  const double expected_std = sigma_new * std::sqrt(cov);

  double sum = 0, sq = 0;
  int count = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& x : cma.ask()) {
      sum += x[0];
      sq += x[0] * x[0];
      ++count;
    }
  }
  const double mean = sum / count;
  const double stdev = std::sqrt(sq / count - mean * mean);
  // 8000 draws put sampling noise ~1%; the bug shifts the spread ~26%.
  EXPECT_NEAR(stdev, expected_std, 0.06 * expected_std);
}

TEST(CmaEs, TruncatedTellRenormalizesWeights) {
  // Regression for the truncated-weight bug: reporting fewer candidates
  // than the configured parent count left the weight prefix summing to
  // less than 1, shrinking the recombined mean toward the origin. With all
  // candidates at the same point, the new mean must be exactly that point.
  CmaEsOptions opts;
  opts.dim = 4;
  opts.population = 16;
  opts.parents = 8;
  opts.seed = 7;
  CmaEs cma(opts);
  (void)cma.ask();

  const std::vector<std::vector<double>> pop(3, std::vector<double>(4, 0.7));
  cma.tell(pop, {1.0, 2.0, 3.0});
  for (double m : cma.mean()) EXPECT_NEAR(m, 0.7, 1e-12);
}

TEST(CmaEs, TruncatedTellMatchesUntruncatedMeanSemantics) {
  // Same property on asymmetric points: the recombined mean must be a
  // convex combination of the reported candidates (weights sum to 1), so
  // it lies inside their coordinate-wise hull.
  CmaEsOptions opts;
  opts.dim = 2;
  opts.population = 12;
  opts.parents = 6;
  opts.seed = 21;
  CmaEs cma(opts);
  (void)cma.ask();

  const std::vector<std::vector<double>> pop{{0.6, 0.8}, {0.7, 0.9}};
  cma.tell(pop, {1.0, 2.0});
  EXPECT_GE(cma.mean()[0], 0.6);
  EXPECT_LE(cma.mean()[0], 0.7);
  EXPECT_GE(cma.mean()[1], 0.8);
  EXPECT_LE(cma.mean()[1], 0.9);
}

TEST(CmaEs, AskFallsBackToClampedMeanWhenResampleExhausted) {
  // Regression for the ask() invariant: an unsatisfiable predicate used to
  // leak the last invalid random sample downstream. Now every candidate is
  // either predicate-valid or the clamped mean.
  CmaEsOptions opts;
  opts.dim = 3;
  opts.population = 10;
  opts.max_resample = 5;
  opts.seed = 13;
  CmaEs cma(opts);

  const auto pop =
      cma.ask([](const std::vector<double>&) { return false; });
  ASSERT_EQ(pop.size(), 10u);
  for (const auto& x : pop) {
    ASSERT_EQ(x.size(), cma.mean().size());
    for (std::size_t d = 0; d < x.size(); ++d)
      EXPECT_EQ(x[d], std::clamp(cma.mean()[d], 0.0, 1.0));
  }
  EXPECT_EQ(cma.resample_exhausted(), 10);
}

TEST(CmaEs, AskNeverReturnsInvalidNonMeanPoints) {
  // Tight-but-satisfiable predicate with a tiny resample budget: every
  // returned candidate is either valid or the documented mean fallback.
  CmaEsOptions opts;
  opts.dim = 2;
  opts.population = 30;
  opts.max_resample = 2;
  opts.seed = 29;
  CmaEs cma(opts);
  const auto valid = [](const std::vector<double>& x) {
    return x[0] < 0.35 && x[1] < 0.35;
  };
  const auto pop = cma.ask(valid);
  const auto& mean = cma.mean();
  for (const auto& x : pop) {
    EXPECT_TRUE(valid(x) || x == mean)
        << "invalid non-mean candidate leaked from ask()";
  }
}

TEST(CmaEs, HandlesInfiniteFitness) {
  // Invalid candidates are scored +inf; the optimizer must keep working.
  CmaEsOptions opts;
  opts.dim = 3;
  opts.population = 10;
  opts.seed = 9;
  CmaEs cma(opts);
  for (int iter = 0; iter < 20; ++iter) {
    const auto pop = cma.ask();
    std::vector<double> fit;
    for (const auto& x : pop) {
      fit.push_back(x[0] > 0.8 ? std::numeric_limits<double>::infinity()
                               : sphere(x));
    }
    cma.tell(pop, fit);
  }
  EXPECT_LT(cma.mean()[0], 0.8);
  EXPECT_TRUE(std::isfinite(cma.mean()[1]));
}

}  // namespace
}  // namespace naas::search
