#include "mapping/legality.hpp"

#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "mapping/footprint.hpp"

namespace naas::mapping {
namespace {

nn::Workload conv() { return nn::make_conv("c", 64, 128, 3, 1, 28); }

Mapping full_tiles(const nn::Workload& l) {
  Mapping m;
  for (nn::Dim d : nn::all_dims()) {
    set_tile(m.dram.tile, d, l.dim_size(d));
    set_tile(m.pe.tile, d, l.dim_size(d));
  }
  return m;
}

TEST(Legality, PeShareDividesByParallelExtent) {
  const auto arch = arch::nvdla_256_arch();  // 16x16 C x K
  const nn::Workload l = conv();
  TileSizes t2{};
  for (nn::Dim d : nn::all_dims()) set_tile(t2, d, l.dim_size(d));
  EXPECT_EQ(pe_share(l, arch, t2, nn::Dim::kC), 4);   // 64/16
  EXPECT_EQ(pe_share(l, arch, t2, nn::Dim::kK), 8);   // 128/16
  EXPECT_EQ(pe_share(l, arch, t2, nn::Dim::kYp), 28); // not parallel
}

TEST(Legality, PeShareCeils) {
  const auto arch = arch::eyeriss_arch();  // 12 x 14, R x Y'
  const nn::Workload l = conv();          // R=3, Yp=28
  TileSizes t2{};
  for (nn::Dim d : nn::all_dims()) set_tile(t2, d, l.dim_size(d));
  EXPECT_EQ(pe_share(l, arch, t2, nn::Dim::kR), 1);   // ceil(3/12)
  EXPECT_EQ(pe_share(l, arch, t2, nn::Dim::kYp), 2);  // ceil(28/14)
}

TEST(Legality, CheckRejectsBadOrder) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = conv();
  Mapping m = repair(full_tiles(l), l, arch);
  m.dram.order[0] = m.dram.order[1];
  const auto rep = check(m, l, arch);
  EXPECT_FALSE(rep.legal);
  EXPECT_NE(rep.reason.find("permutation"), std::string::npos);
}

TEST(Legality, CheckRejectsOversizedDramTile) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = conv();
  Mapping m = repair(full_tiles(l), l, arch);
  set_tile(m.dram.tile, nn::Dim::kK, l.out_channels + 1);
  EXPECT_FALSE(check(m, l, arch).legal);
}

TEST(Legality, CheckRejectsPeTileBeyondShare) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = conv();
  Mapping m = repair(full_tiles(l), l, arch);
  set_tile(m.pe.tile, nn::Dim::kK,
           pe_share(l, arch, m.dram.tile, nn::Dim::kK) + 1);
  EXPECT_FALSE(check(m, l, arch).legal);
}

TEST(Legality, CheckRejectsL1Overflow) {
  auto arch = arch::nvdla_256_arch();
  arch.l1_bytes = 4;  // nothing fits
  const nn::Workload l = conv();
  Mapping m = full_tiles(l);
  set_tile(m.pe.tile, nn::Dim::kYp, 4);
  const auto rep = check(m, l, arch);
  EXPECT_FALSE(rep.legal);
}

TEST(Legality, RepairProducesLegalMappingFromGarbage) {
  const auto arch = arch::eyeriss_arch();
  const nn::Workload l = conv();
  Mapping garbage;
  garbage.dram.order[0] = garbage.dram.order[3];  // invalid order
  for (nn::Dim d : nn::all_dims()) {
    set_tile(garbage.dram.tile, d, 100000);
    set_tile(garbage.pe.tile, d, -5);
  }
  const Mapping fixed = repair(garbage, l, arch);
  const auto rep = check(fixed, l, arch);
  EXPECT_TRUE(rep.legal) << rep.reason;
}

TEST(Legality, RepairKeepsAlreadyLegalMappingIntact) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = conv();
  Mapping m;
  for (nn::Dim d : nn::all_dims()) {
    set_tile(m.dram.tile, d, 1);
    set_tile(m.pe.tile, d, 1);
  }
  set_tile(m.dram.tile, nn::Dim::kK, 16);
  const Mapping fixed = repair(m, l, arch);
  EXPECT_EQ(tile_of(fixed.dram.tile, nn::Dim::kK), 16);
}

TEST(Legality, RepairRespectsShrinkPriority) {
  auto arch = arch::nvdla_256_arch();
  arch.l1_bytes = 64;
  const nn::Workload l = conv();
  Mapping m = full_tiles(l);
  // Priority shrinks X' first: after repair X' should be the most reduced.
  ShrinkPriority prio{nn::Dim::kXp, nn::Dim::kYp, nn::Dim::kN, nn::Dim::kK,
                      nn::Dim::kC,  nn::Dim::kS,  nn::Dim::kR};
  const Mapping fixed = repair(m, l, arch, prio);
  EXPECT_TRUE(check(fixed, l, arch).legal);
  EXPECT_LE(tile_of(fixed.pe.tile, nn::Dim::kXp),
            tile_of(fixed.pe.tile, nn::Dim::kR) * 3);
}

TEST(Legality, RepairHandlesTinyBuffers) {
  auto arch = arch::nvdla_256_arch();
  arch.l1_bytes = 3;   // exactly one element of each operand
  arch.l2_bytes = 16;
  const nn::Workload l = conv();
  const Mapping fixed = repair(full_tiles(l), l, arch);
  EXPECT_TRUE(check(fixed, l, arch).legal);
}

TEST(Legality, RepairReclampsPeTileAfterL2Shrink) {
  auto arch = arch::nvdla_256_arch();
  arch.l2_bytes = 2048;  // force heavy L2 shrinking
  const nn::Workload l = conv();
  const Mapping fixed = repair(full_tiles(l), l, arch);
  const auto rep = check(fixed, l, arch);
  EXPECT_TRUE(rep.legal) << rep.reason;
  for (nn::Dim d : nn::all_dims()) {
    EXPECT_LE(tile_of(fixed.pe.tile, d),
              pe_share(l, arch, fixed.dram.tile, d));
  }
}

TEST(GrowToFit, FillsBuffersWithoutOverflow) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = conv();
  Mapping m;  // all-ones tiles: trivially legal, massively undersized
  const Mapping grown = grow_to_fit(m, l, arch, default_shrink_priority(),
                                    default_shrink_priority());
  EXPECT_TRUE(check(grown, l, arch).legal);
  // The grown L2 tile should use most of the buffer (> half).
  EXPECT_GT(tile_footprint(l, grown.dram.tile).total(), arch.l2_bytes / 2);
  EXPECT_GT(tile_footprint(l, grown.pe.tile).total(), arch.l1_bytes / 4);
}

TEST(GrowToFit, RespectsPriorityOrder) {
  auto arch = arch::nvdla_256_arch();
  arch.l2_bytes = 8 * 1024;  // tight: only the first-priority dims grow
  const nn::Workload l = conv();
  Mapping m;
  ShrinkPriority k_first{nn::Dim::kK, nn::Dim::kC, nn::Dim::kYp,
                         nn::Dim::kXp, nn::Dim::kN, nn::Dim::kR, nn::Dim::kS};
  ShrinkPriority y_first{nn::Dim::kYp, nn::Dim::kXp, nn::Dim::kK,
                         nn::Dim::kC, nn::Dim::kN, nn::Dim::kR, nn::Dim::kS};
  const Mapping mk = grow_to_fit(m, l, arch, k_first, k_first);
  const Mapping my = grow_to_fit(m, l, arch, y_first, y_first);
  EXPECT_GE(tile_of(mk.dram.tile, nn::Dim::kK),
            tile_of(my.dram.tile, nn::Dim::kK));
  EXPECT_GE(tile_of(my.dram.tile, nn::Dim::kYp),
            tile_of(mk.dram.tile, nn::Dim::kYp));
}

TEST(GrowToFit, NeverShrinksTiles) {
  const auto arch = arch::eyeriss_arch();
  const nn::Workload l = conv();
  Mapping m = repair(full_tiles(l), l, arch);
  const Mapping grown = grow_to_fit(m, l, arch, default_shrink_priority(),
                                    default_shrink_priority());
  for (nn::Dim d : nn::all_dims()) {
    EXPECT_GE(tile_of(grown.dram.tile, d), tile_of(m.dram.tile, d));
    EXPECT_GE(tile_of(grown.pe.tile, d), tile_of(m.pe.tile, d));
  }
  EXPECT_TRUE(check(grown, l, arch).legal);
}

TEST(GrowToFit, PeTilesStayWithinShares) {
  const auto arch = arch::shidiannao_arch();
  const nn::Workload l = nn::make_conv("big", 256, 512, 3, 1, 56);
  Mapping m;
  const Mapping grown = grow_to_fit(m, l, arch, default_shrink_priority(),
                                    default_shrink_priority());
  for (nn::Dim d : nn::all_dims()) {
    EXPECT_LE(tile_of(grown.pe.tile, d),
              pe_share(l, arch, grown.dram.tile, d));
  }
}

}  // namespace
}  // namespace naas::mapping
