#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "arch/presets.hpp"
#include "cost/cost_model.hpp"
#include "mapping/canonical.hpp"
#include "nn/model_zoo.hpp"

namespace naas {
namespace {

arch::ArchConfig preset_by_name(const std::string& name) {
  if (name == "EdgeTPU") return arch::edge_tpu_arch();
  if (name == "NVDLA-1024") return arch::nvdla_1024_arch();
  if (name == "NVDLA-256") return arch::nvdla_256_arch();
  if (name == "Eyeriss") return arch::eyeriss_arch();
  return arch::shidiannao_arch();
}

/// Property sweep: every unique layer of every benchmark network, run with
/// its canonical mapping on every baseline accelerator, must satisfy the
/// cost model's physical invariants.
class CostInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(CostInvariants, PhysicalInvariantsHold) {
  const auto& [net_name, arch_name] = GetParam();
  const nn::Network net = nn::make_network(net_name);
  const arch::ArchConfig arch = preset_by_name(arch_name);
  const cost::CostModel model;

  for (const auto& [layer, count] : net.unique_layers()) {
    SCOPED_TRACE(layer.to_string());
    const auto m = mapping::canonical_mapping(arch, layer);
    const auto rep = model.evaluate(arch, layer, m);
    ASSERT_TRUE(rep.legal) << rep.illegal_reason;

    // Utilization is a fraction of the peak.
    EXPECT_GT(rep.pe_utilization, 0.0);
    EXPECT_LE(rep.pe_utilization, 1.0 + 1e-9);

    // Latency is bounded below by each component roofline.
    EXPECT_GE(rep.latency_cycles, rep.compute_cycles);
    EXPECT_GE(rep.latency_cycles, rep.noc_cycles);
    EXPECT_GE(rep.latency_cycles, rep.dram_cycles);

    // Compute roofline: at least macs / #PEs cycles.
    EXPECT_GE(rep.compute_cycles * arch.num_pes(), rep.macs - 1e-6);

    // DRAM traffic at least the compulsory working set.
    const double compulsory = static_cast<double>(
        layer.input_elems() + layer.weight_elems() + layer.output_elems());
    EXPECT_GE(rep.dram_bytes, compulsory - 1e-6);

    // L1 must see at least one operand read per MAC plus the fills.
    EXPECT_GE(rep.l1_access_bytes, rep.macs);

    // Energy floor: the MACs themselves.
    EXPECT_GE(rep.energy_nj * 1000.0, rep.macs * model.energy_model().mac_pj);

    // EDP consistency.
    EXPECT_DOUBLE_EQ(rep.edp, rep.energy_nj * rep.latency_cycles);
    EXPECT_TRUE(std::isfinite(rep.edp));
    EXPECT_GT(rep.edp, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesPresets, CostInvariants,
    ::testing::Combine(
        ::testing::Values("vgg16", "resnet50", "unet", "mobilenetv2",
                          "squeezenet", "mnasnet", "cifarnet"),
        ::testing::Values("EdgeTPU", "NVDLA-1024", "NVDLA-256", "Eyeriss",
                          "ShiDianNao")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

/// Doubling compute resources at fixed mapping policy should never slow a
/// network down under the canonical-mapping policy.
TEST(CostScaling, MorePesNeverSlowerOnConv) {
  const cost::CostModel model;
  const nn::Workload layer = nn::make_conv("c", 128, 256, 3, 1, 28);
  arch::ArchConfig small = arch::nvdla_256_arch();   // 16x16
  arch::ArchConfig big = arch::nvdla_1024_arch();    // 32x32, bigger buffers
  const auto rs =
      model.evaluate(small, layer, mapping::canonical_mapping(small, layer));
  const auto rb =
      model.evaluate(big, layer, mapping::canonical_mapping(big, layer));
  ASSERT_TRUE(rs.legal && rb.legal);
  EXPECT_LE(rb.compute_cycles, rs.compute_cycles);
}

/// Batch-2 inference must cost at least as much as batch-1 in both time and
/// energy under the same arch/mapping policy.
TEST(CostScaling, BatchMonotone) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload b1 = nn::make_conv("c", 64, 64, 3, 1, 28, 1);
  const nn::Workload b2 = nn::make_conv("c", 64, 64, 3, 1, 28, 2);
  const auto r1 = model.evaluate(arch, b1, mapping::canonical_mapping(arch, b1));
  const auto r2 = model.evaluate(arch, b2, mapping::canonical_mapping(arch, b2));
  ASSERT_TRUE(r1.legal && r2.legal);
  EXPECT_GE(r2.latency_cycles, r1.latency_cycles);
  EXPECT_GE(r2.energy_nj, r1.energy_nj);
}

/// Determinism: evaluating the same triple twice gives identical reports.
TEST(CostScaling, EvaluationIsDeterministic) {
  const cost::CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 96, 96, 3, 1, 28);
  const auto m = mapping::canonical_mapping(arch, layer);
  const auto a = model.evaluate(arch, layer, m);
  const auto b = model.evaluate(arch, layer, m);
  EXPECT_DOUBLE_EQ(a.edp, b.edp);
  EXPECT_DOUBLE_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_DOUBLE_EQ(a.energy_nj, b.energy_nj);
}

}  // namespace
}  // namespace naas
