#include "nn/network.hpp"

#include <gtest/gtest.h>

namespace naas::nn {
namespace {

Network two_block_net() {
  Network n("tiny", {});
  n.add(make_conv("a", 3, 8, 3, 1, 8));
  n.add(make_conv("b", 8, 8, 3, 1, 8));
  n.add(make_conv("c", 8, 8, 3, 1, 8));  // same shape as b
  n.add(make_fc("fc", 8, 10));
  return n;
}

TEST(Network, TotalsAreSums) {
  const Network n = two_block_net();
  long long macs = 0, weights = 0;
  for (const auto& l : n.layers()) {
    macs += l.macs();
    weights += l.weight_elems();
  }
  EXPECT_EQ(n.total_macs(), macs);
  EXPECT_EQ(n.total_weights(), weights);
  EXPECT_EQ(n.num_layers(), 4);
}

TEST(Network, UniqueLayersCollapseRepeats) {
  const auto unique = two_block_net().unique_layers();
  ASSERT_EQ(unique.size(), 3u);  // a, b(=c), fc
  int total = 0;
  for (const auto& [layer, count] : unique) total += count;
  EXPECT_EQ(total, 4);
  EXPECT_EQ(unique[1].second, 2);  // the repeated 8->8 conv
}

TEST(Network, UniqueLayersPreserveFirstSeenOrder) {
  const auto unique = two_block_net().unique_layers();
  EXPECT_EQ(unique[0].first.name, "a");
  EXPECT_EQ(unique[1].first.name, "b");
  EXPECT_EQ(unique[2].first.name, "fc");
}

TEST(Network, EmptyNetwork) {
  const Network n("empty", {});
  EXPECT_EQ(n.total_macs(), 0);
  EXPECT_TRUE(n.unique_layers().empty());
}

TEST(Network, ToStringMentionsNameAndLayers) {
  const std::string s = two_block_net().to_string();
  EXPECT_NE(s.find("tiny"), std::string::npos);
  EXPECT_NE(s.find("4 layers"), std::string::npos);
}

}  // namespace
}  // namespace naas::nn
