#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace naas::core {
namespace {

TEST(Matrix, IdentityShapeAndValues) {
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(id.rows(), 3);
  EXPECT_EQ(id.cols(), 3);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, FillConstructor) {
  const Matrix m(2, 4, 3.5);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 3.5);
}

TEST(Matrix, MatvecComputesProduct) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const auto y = m.matvec({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, AddOuterRankOneUpdate) {
  Matrix m = Matrix::identity(2);
  m.add_outer({1.0, 2.0}, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
}

TEST(Matrix, ScaleMultipliesEveryEntry) {
  Matrix m(2, 2, 2.0);
  m.scale(0.25);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.5);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m(2, 3, 0.0);
  m(0, 2) = 7.0;
  m(1, 0) = -1.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -1.0);
}

TEST(Matrix, MultiplyAgainstHandResult) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, CholeskyOfIdentityIsIdentity) {
  const Matrix l = Matrix::identity(4).cholesky();
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_NEAR(l(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Matrix, CholeskyReconstructsSpdMatrix) {
  Matrix m(3, 3, 0.0);
  // SPD matrix built as A^T A + I.
  m(0, 0) = 4; m(0, 1) = 2; m(0, 2) = 0.5;
  m(1, 0) = 2; m(1, 1) = 5; m(1, 2) = 1;
  m(2, 0) = 0.5; m(2, 1) = 1; m(2, 2) = 3;
  const Matrix l = m.cholesky();
  const Matrix back = l.multiply(l.transposed());
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(back(r, c), m(r, c), 1e-9);
}

TEST(Matrix, CholeskyLowerTriangular) {
  Matrix m = Matrix::identity(3);
  m(0, 1) = m(1, 0) = 0.5;
  const Matrix l = m.cholesky();
  EXPECT_NEAR(l(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(l(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(l(1, 2), 0.0, 1e-12);
}

TEST(Matrix, CholeskyJittersNearSingular) {
  // Rank-deficient covariance: jitter must make it factorizable.
  Matrix m(2, 2, 0.0);
  m.add_outer({1.0, 1.0}, 1.0);  // rank one
  const Matrix l = m.cholesky();
  EXPECT_GT(l(0, 0), 0.0);
  EXPECT_GT(l(1, 1), 0.0);
}

TEST(Matrix, SymmetrizeAveragesOffDiagonal) {
  Matrix m(2, 2, 0.0);
  m(0, 1) = 1.0;
  m(1, 0) = 3.0;
  m.symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m(2, 2, 0.0);
  m(1, 0) = -5.0;
  m(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix().max_abs(), 0.0);
}

}  // namespace
}  // namespace naas::core
