#include "mapping/canonical.hpp"

#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "mapping/legality.hpp"

namespace naas::mapping {
namespace {

TEST(Canonical, OrdersAreValidPermutations) {
  EXPECT_TRUE(is_valid_order(weight_stationary_order()));
  EXPECT_TRUE(is_valid_order(output_stationary_order()));
  EXPECT_TRUE(is_valid_order(row_stationary_order()));
}

TEST(Canonical, WeightStationaryStreamsSpatialInnermost) {
  const LoopOrder o = weight_stationary_order();
  // The last two loops must be weight-irrelevant (N/Y'/X') so weights stay.
  EXPECT_EQ(o[6], nn::Dim::kXp);
  EXPECT_EQ(o[5], nn::Dim::kYp);
}

TEST(Canonical, OutputStationaryReducesInnermost) {
  const LoopOrder o = output_stationary_order();
  EXPECT_EQ(o[4], nn::Dim::kC);
  EXPECT_EQ(o[5], nn::Dim::kR);
  EXPECT_EQ(o[6], nn::Dim::kS);
}

TEST(Canonical, MappingIsLegalOnAllPresets) {
  const nn::Workload layers[] = {
      nn::make_conv("big", 256, 512, 3, 1, 28),
      nn::make_conv("stem", 3, 64, 7, 2, 112),
      nn::make_dwconv("dw", 96, 3, 2, 56),
      nn::make_fc("fc", 2048, 1000),
  };
  for (const auto& arch :
       {arch::edge_tpu_arch(), arch::nvdla_1024_arch(), arch::nvdla_256_arch(),
        arch::eyeriss_arch(), arch::shidiannao_arch()}) {
    for (const auto& l : layers) {
      const Mapping m = canonical_mapping(arch, l);
      const auto rep = check(m, l, arch);
      EXPECT_TRUE(rep.legal) << arch.name << " / " << l.name << ": "
                             << rep.reason;
    }
  }
}

TEST(Canonical, DataflowSelectsMatchingOrder) {
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload l = nn::make_conv("c", 64, 64, 3, 1, 14);
  const Mapping ws =
      canonical_mapping(arch, l, arch::Dataflow::kWeightStationary);
  EXPECT_EQ(ws.pe.order, weight_stationary_order());
  const Mapping os =
      canonical_mapping(arch, l, arch::Dataflow::kOutputStationary);
  EXPECT_EQ(os.pe.order, output_stationary_order());
}

TEST(Canonical, TilesAreMaximalWithinCapacity) {
  // On a huge L2, the canonical mapping should keep the whole layer as one
  // L2 tile (no DRAM refetch).
  auto arch = arch::edge_tpu_arch();
  const nn::Workload l = nn::make_conv("c", 64, 64, 3, 1, 28);
  const Mapping m = canonical_mapping(arch, l);
  for (nn::Dim d : nn::all_dims())
    EXPECT_EQ(tile_of(m.dram.tile, d), l.dim_size(d)) << nn::dim_name(d);
}

}  // namespace
}  // namespace naas::mapping
