#include "net/socket.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/fault.hpp"
#include "net/client.hpp"
#include "net/poller.hpp"

namespace naas {
namespace {

using core::ScopedFaults;
using net::Fd;
using net::IoStatus;
using net::LineClient;
using net::TcpListener;

/// Listener + one accepted connection, the fixture for every socket test.
struct Pair {
  TcpListener listener;
  Fd server_side;
  LineClient client;

  bool open() {
    std::string err;
    if (!listener.listen("127.0.0.1", 0, 4, &err)) {
      ADD_FAILURE() << err;
      return false;
    }
    if (!client.connect("127.0.0.1", listener.port(), 2000, &err)) {
      ADD_FAILURE() << err;
      return false;
    }
    // The connect has completed, so the accept is already pending; poll
    // bounds the wait instead of spinning.
    for (int i = 0; i < 200 && !server_side.valid(); ++i) {
      ::pollfd p{listener.fd(), POLLIN, 0};
      ::poll(&p, 1, 10);
      server_side = listener.accept_one();
    }
    if (!server_side.valid()) ADD_FAILURE() << "accept timed out";
    return server_side.valid();
  }
};

std::string read_all(int fd, std::size_t expect) {
  std::string out;
  char buf[256];
  for (int spins = 0; out.size() < expect && spins < 2000; ++spins) {
    const net::IoResult r = net::read_some(fd, buf, sizeof(buf));
    if (r.status == IoStatus::kOk) {
      out.append(buf, r.bytes);
    } else if (r.status == IoStatus::kWouldBlock) {
      ::pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 10);
    } else {
      break;
    }
  }
  return out;
}

TEST(Net, FdMoveSemantics) {
  int raw[2];
  ASSERT_EQ(::pipe(raw), 0);
  Fd a(raw[0]);
  Fd b(raw[1]);
  EXPECT_TRUE(a.valid());
  Fd moved = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_TRUE(moved.valid());
  const int released = b.release();
  EXPECT_FALSE(b.valid());
  ::close(released);
}

TEST(Net, ListenerReportsEphemeralPort) {
  TcpListener listener;
  std::string err;
  ASSERT_TRUE(listener.listen("127.0.0.1", 0, 4, &err)) << err;
  EXPECT_GT(listener.port(), 0);
  EXPECT_TRUE(listener.listening());
  listener.close();
  EXPECT_FALSE(listener.listening());
}

TEST(Net, ConnectToClosedPortFails) {
  // Bind-then-close guarantees a port that refuses connections.
  TcpListener listener;
  std::string err;
  ASSERT_TRUE(listener.listen("127.0.0.1", 0, 4, &err)) << err;
  const int port = listener.port();
  listener.close();
  LineClient client;
  EXPECT_FALSE(client.connect("127.0.0.1", port, 500, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Net, RoundTripThroughAcceptedSocket) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  ASSERT_TRUE(pair.client.send_line("hello"));
  EXPECT_EQ(read_all(pair.server_side.get(), 6), "hello\n");

  const std::string reply = "world\n";
  std::size_t sent = 0;
  while (sent < reply.size()) {
    const net::IoResult r = net::write_some(
        pair.server_side.get(), reply.data() + sent, reply.size() - sent);
    ASSERT_NE(r.status, IoStatus::kError);
    if (r.status == IoStatus::kOk) sent += r.bytes;
  }
  std::string line;
  ASSERT_TRUE(pair.client.read_line(&line, 2000));
  EXPECT_EQ(line, "world");
}

TEST(Net, ReadSeesEofAfterClientClose) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  pair.client.close();
  char buf[16];
  net::IoResult r{IoStatus::kWouldBlock, 0};
  for (int i = 0; i < 200 && r.status == IoStatus::kWouldBlock; ++i) {
    r = net::read_some(pair.server_side.get(), buf, sizeof(buf));
    if (r.status == IoStatus::kWouldBlock) {
      ::pollfd p{pair.server_side.get(), POLLIN, 0};
      ::poll(&p, 1, 10);
    }
  }
  EXPECT_EQ(r.status, IoStatus::kEof);
}

TEST(Net, InjectedShortReadsStillDeliverEveryByte) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  ScopedFaults faults("seed=3,sock_read_short=1");
  ASSERT_TRUE(pair.client.send_line("abcdefgh"));
  // Every read is truncated to one byte; the loop above must still
  // assemble the full payload — the server's framing code path under a
  // pathologically dribbling kernel.
  EXPECT_EQ(read_all(pair.server_side.get(), 9), "abcdefgh\n");
}

TEST(Net, InjectedEintrSurfacesAsWouldBlock) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  ScopedFaults faults("sock_read_eintr=1@1");
  ASSERT_TRUE(pair.client.send_line("x"));
  char buf[16];
  // First consultation fires: kWouldBlock without consuming anything.
  EXPECT_EQ(net::read_some(pair.server_side.get(), buf, sizeof(buf)).status,
            IoStatus::kWouldBlock);
  EXPECT_EQ(read_all(pair.server_side.get(), 2), "x\n");
}

TEST(Net, InjectedResetSurfacesAsError) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  ScopedFaults faults("sock_read_reset=1@1");
  char buf[16];
  EXPECT_EQ(net::read_some(pair.server_side.get(), buf, sizeof(buf)).status,
            IoStatus::kError);
}

TEST(Net, InjectedWriteStallSurfacesAsWouldBlock) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  ScopedFaults faults("sock_write_stall=1@1");
  const char byte = 'y';
  EXPECT_EQ(net::write_some(pair.server_side.get(), &byte, 1).status,
            IoStatus::kWouldBlock);
  EXPECT_EQ(net::write_some(pair.server_side.get(), &byte, 1).status,
            IoStatus::kOk);
}

TEST(Net, PollerReportsReadinessPerFd) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  net::Poller poller;
  poller.clear();
  poller.add(pair.server_side.get(), /*want_read=*/true, /*want_write=*/true);
  ASSERT_GT(poller.wait(1000), 0);
  EXPECT_TRUE(poller.writable(pair.server_side.get()));  // empty send buffer
  EXPECT_FALSE(poller.readable(pair.server_side.get()));

  ASSERT_TRUE(pair.client.send_line("ping"));
  for (int i = 0; i < 200; ++i) {
    poller.clear();
    poller.add(pair.server_side.get(), true, false);
    if (poller.wait(10) > 0) break;
  }
  EXPECT_TRUE(poller.readable(pair.server_side.get()));
  // An fd the poller never registered is reported unready, not poked.
  EXPECT_FALSE(poller.readable(12345));
}

TEST(Net, ReadLineDeadlineIsTotalNotPerByte) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  // A server dribbling bytes without ever sending the newline must not
  // keep resetting the clock: the deadline covers the whole line. Feed a
  // byte every ~20ms from a helper thread and ask for a line within
  // 150ms — the old per-poll semantics would have waited forever.
  std::atomic<bool> stop{false};
  std::thread dribble([&] {
    const char byte = 'z';
    while (!stop.load()) {
      (void)net::write_some(pair.server_side.get(), &byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(pair.client.read_line(&line, 150));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 2000);  // failed at the deadline, not much later
  stop.store(true);
  dribble.join();
}

TEST(Net, RecvDeadlineCapsEveryReadLine) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  // The client-wide cap tightens even a generous per-call timeout, so one
  // set_recv_deadline_ms call bounds a whole harness without auditing
  // every read_line(…, 60000) call site.
  pair.client.set_recv_deadline_ms(100);
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(pair.client.read_line(&line, 60'000));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 5000);
  // The cap is an upper bound, not a replacement: a tighter caller
  // timeout still wins, and data that arrives in time still reads fine.
  const std::string payload = "ok\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const net::IoResult r = net::write_some(
        pair.server_side.get(), payload.data() + sent, payload.size() - sent);
    ASSERT_NE(r.status, IoStatus::kError);
    if (r.status == IoStatus::kOk) sent += r.bytes;
  }
  ASSERT_TRUE(pair.client.read_line(&line, 60'000));
  EXPECT_EQ(line, "ok");
}

TEST(Net, ClientReadLineSplitsPipelinedResponses) {
  Pair pair;
  ASSERT_TRUE(pair.open());
  const std::string two = "first\nsecond\n";
  std::size_t sent = 0;
  while (sent < two.size()) {
    const net::IoResult r = net::write_some(pair.server_side.get(),
                                            two.data() + sent,
                                            two.size() - sent);
    ASSERT_NE(r.status, IoStatus::kError);
    if (r.status == IoStatus::kOk) sent += r.bytes;
  }
  std::string line;
  ASSERT_TRUE(pair.client.read_line(&line, 2000));
  EXPECT_EQ(line, "first");
  ASSERT_TRUE(pair.client.read_line(&line, 2000));
  EXPECT_EQ(line, "second");
  EXPECT_FALSE(pair.client.read_line(&line, 50));  // nothing more: timeout
  EXPECT_FALSE(pair.client.eof());
}

}  // namespace
}  // namespace naas
