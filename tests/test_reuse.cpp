#include "cost/reuse.hpp"

#include <gtest/gtest.h>

namespace naas::cost {
namespace {

using nn::Dim;
using nn::LayerKind;

TripCounts trips(long long n, long long k, long long c, long long yp,
                 long long xp, long long r, long long s) {
  TripCounts t{};
  t[static_cast<int>(Dim::kN)] = n;
  t[static_cast<int>(Dim::kK)] = k;
  t[static_cast<int>(Dim::kC)] = c;
  t[static_cast<int>(Dim::kYp)] = yp;
  t[static_cast<int>(Dim::kXp)] = xp;
  t[static_cast<int>(Dim::kR)] = r;
  t[static_cast<int>(Dim::kS)] = s;
  return t;
}

TEST(Reuse, RelevanceStandardConv) {
  EXPECT_TRUE(is_relevant(Tensor::kInput, Dim::kC, LayerKind::kConv));
  EXPECT_FALSE(is_relevant(Tensor::kInput, Dim::kK, LayerKind::kConv));
  EXPECT_TRUE(is_relevant(Tensor::kWeight, Dim::kK, LayerKind::kConv));
  EXPECT_FALSE(is_relevant(Tensor::kWeight, Dim::kYp, LayerKind::kConv));
  EXPECT_TRUE(is_relevant(Tensor::kOutput, Dim::kXp, LayerKind::kConv));
  EXPECT_FALSE(is_relevant(Tensor::kOutput, Dim::kR, LayerKind::kConv));
}

TEST(Reuse, RelevanceDepthwiseSwapsChannelRole) {
  EXPECT_TRUE(
      is_relevant(Tensor::kInput, Dim::kK, LayerKind::kDepthwiseConv));
  EXPECT_FALSE(
      is_relevant(Tensor::kInput, Dim::kC, LayerKind::kDepthwiseConv));
  EXPECT_FALSE(
      is_relevant(Tensor::kWeight, Dim::kC, LayerKind::kDepthwiseConv));
}

TEST(Reuse, ReductionDims) {
  EXPECT_TRUE(is_reduction(Dim::kC, LayerKind::kConv));
  EXPECT_TRUE(is_reduction(Dim::kR, LayerKind::kConv));
  EXPECT_FALSE(is_reduction(Dim::kK, LayerKind::kConv));
  EXPECT_FALSE(is_reduction(Dim::kC, LayerKind::kDepthwiseConv));
  EXPECT_TRUE(is_reduction(Dim::kS, LayerKind::kDepthwiseConv));
}

TEST(Reuse, WeightStationaryOrderGivesCompulsoryWeightTraffic) {
  // Order K,C,R,S,N,Y',X' : all weight-irrelevant loops (N,Y',X') are the
  // innermost run => weight reload = product of relevant trips only.
  const mapping::LoopOrder order{Dim::kK, Dim::kC, Dim::kR, Dim::kS,
                                 Dim::kN, Dim::kYp, Dim::kXp};
  const TripCounts t = trips(1, 4, 8, 14, 14, 1, 1);
  EXPECT_DOUBLE_EQ(reload_factor(order, t, Tensor::kWeight, LayerKind::kConv),
                   4.0 * 8.0);
  EXPECT_DOUBLE_EQ(distinct_tiles(t, Tensor::kWeight, LayerKind::kConv),
                   4.0 * 8.0);
}

TEST(Reuse, OutputIrrelevantLoopOutsideForcesRevisits) {
  // C outermost with output loops inside => every C trip revisits outputs.
  const mapping::LoopOrder order{Dim::kC, Dim::kN, Dim::kK, Dim::kYp,
                                 Dim::kXp, Dim::kR, Dim::kS};
  const TripCounts t = trips(1, 4, 8, 2, 2, 1, 1);
  const double f = reload_factor(order, t, Tensor::kOutput, LayerKind::kConv);
  EXPECT_DOUBLE_EQ(f, 8.0 * 4.0 * 2.0 * 2.0);  // 8 revisits of 16 tiles
  EXPECT_DOUBLE_EQ(distinct_tiles(t, Tensor::kOutput, LayerKind::kConv),
                   16.0);
}

TEST(Reuse, OutputStationaryOrderAvoidsRevisits) {
  const mapping::LoopOrder order{Dim::kN, Dim::kK, Dim::kYp, Dim::kXp,
                                 Dim::kC, Dim::kR, Dim::kS};
  const TripCounts t = trips(1, 4, 8, 2, 2, 3, 3);
  EXPECT_DOUBLE_EQ(reload_factor(order, t, Tensor::kOutput, LayerKind::kConv),
                   distinct_tiles(t, Tensor::kOutput, LayerKind::kConv));
}

TEST(Reuse, IrrelevantLoopBetweenRelevantCounts) {
  // Weight: relevant K,C,R,S. Order K,Y',C,...: Y' sits between relevant
  // loops, so it multiplies the weight reload factor.
  const mapping::LoopOrder order{Dim::kK, Dim::kYp, Dim::kC, Dim::kR,
                                 Dim::kS, Dim::kN, Dim::kXp};
  const TripCounts t = trips(1, 4, 8, 14, 7, 1, 1);
  EXPECT_DOUBLE_EQ(reload_factor(order, t, Tensor::kWeight, LayerKind::kConv),
                   4.0 * 14.0 * 8.0);
}

TEST(Reuse, UnitTripsNeverChangeFactor) {
  const TripCounts t = trips(1, 1, 1, 1, 1, 1, 1);
  for (Tensor tensor :
       {Tensor::kInput, Tensor::kWeight, Tensor::kOutput}) {
    EXPECT_DOUBLE_EQ(
        reload_factor(mapping::default_order(), t, tensor, LayerKind::kConv),
        1.0);
  }
}

TEST(Reuse, ReloadAtLeastDistinct) {
  // Property: reload factor >= number of distinct tiles (compulsory misses).
  const TripCounts t = trips(2, 3, 4, 5, 6, 2, 2);
  const mapping::LoopOrder orders[] = {
      mapping::default_order(),
      {Dim::kS, Dim::kR, Dim::kXp, Dim::kYp, Dim::kC, Dim::kK, Dim::kN},
      {Dim::kC, Dim::kK, Dim::kS, Dim::kYp, Dim::kN, Dim::kXp, Dim::kR},
  };
  for (const auto& order : orders) {
    for (Tensor tensor :
         {Tensor::kInput, Tensor::kWeight, Tensor::kOutput}) {
      EXPECT_GE(reload_factor(order, t, tensor, LayerKind::kConv),
                distinct_tiles(t, tensor, LayerKind::kConv));
    }
  }
}

TEST(Reuse, RegisterReuseCountsInnermostIrrelevantRun) {
  // Weight with X' innermost (trip 7): register holds the weight 7 cycles.
  const mapping::LoopOrder order{Dim::kN, Dim::kK, Dim::kC, Dim::kR,
                                 Dim::kS, Dim::kYp, Dim::kXp};
  const TripCounts t = trips(1, 4, 8, 5, 7, 3, 3);
  EXPECT_DOUBLE_EQ(register_reuse(order, t, Tensor::kWeight, LayerKind::kConv),
                   7.0 * 5.0);  // X' and Y' both irrelevant to weights
  EXPECT_DOUBLE_EQ(register_reuse(order, t, Tensor::kInput, LayerKind::kConv),
                   1.0);  // X' is input-relevant
  EXPECT_DOUBLE_EQ(register_reuse(order, t, Tensor::kOutput, LayerKind::kConv),
                   1.0);
}

TEST(Reuse, AccumulatorReuseWithReductionInnermost) {
  const mapping::LoopOrder order{Dim::kN, Dim::kK, Dim::kYp, Dim::kXp,
                                 Dim::kC, Dim::kR, Dim::kS};
  const TripCounts t = trips(1, 4, 8, 5, 7, 3, 3);
  EXPECT_DOUBLE_EQ(register_reuse(order, t, Tensor::kOutput, LayerKind::kConv),
                   8.0 * 3.0 * 3.0);
}

}  // namespace
}  // namespace naas::cost
