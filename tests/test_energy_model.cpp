#include "cost/energy_model.hpp"

#include <gtest/gtest.h>

namespace naas::cost {
namespace {

TEST(EnergyModel, LadderOrdering) {
  const EnergyModel em;
  // RF < small SRAM < big SRAM << DRAM, with MAC comparable to RF.
  const double rf = em.l1_access_pj(512);
  const double sram = em.l2_access_pj(108 * 1024);
  const double big = em.l2_access_pj(8 * 1024 * 1024);
  EXPECT_LT(rf, sram);
  EXPECT_LT(sram, big);
  EXPECT_LT(big, em.dram_pj_per_byte);
  EXPECT_NEAR(rf, em.mac_pj, 0.5);
}

TEST(EnergyModel, EyerissLikeRatios) {
  const EnergyModel em;
  // The classic Eyeriss ladder: ~100KB SRAM about 6x a MAC, DRAM ~200x.
  EXPECT_NEAR(em.l2_access_pj(108 * 1024) / em.mac_pj, 7.3, 1.5);
  EXPECT_NEAR(em.dram_pj_per_byte / em.mac_pj, 200.0, 1.0);
}

TEST(EnergyModel, SqrtCapacityGrowth) {
  const EnergyModel em;
  const double e1 = em.l2_access_pj(64 * 1024);
  const double e4 = em.l2_access_pj(256 * 1024);
  // Quadrupling capacity should roughly double the sqrt term.
  EXPECT_NEAR((e4 - em.l2_base_pj) / (e1 - em.l2_base_pj), 2.0, 0.01);
}

TEST(EnergyModel, CustomParametersRespected) {
  EnergyModel em;
  em.l1_base_pj = 2.0;
  em.l1_sqrt_coef_pj = 0.0;
  EXPECT_DOUBLE_EQ(em.l1_access_pj(123456), 2.0);
}

}  // namespace
}  // namespace naas::cost
