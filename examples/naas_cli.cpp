// naas_cli — command-line driver over the full public API.
//
//   naas_cli info                          list networks & envelopes
//   naas_cli eval <net> <envelope>         baseline cost report
//   naas_cli layer <net> <envelope> <i>    detailed report for layer i
//   naas_cli search <net> <envelope> [iters [seed]]
//                                          accelerator+mapping co-search
//   naas_cli cosearch <envelope> <acc%> [iters [seed]]
//                                          full 3-level co-search
//
// Global flags (anywhere on the command line):
//   --cache-path <file>   persistent mapping-result store: warm-start from
//                         it and flush back to it (search/cosearch)
//   --cache-readonly      load the store but never write it back
//   --cost-backend <scalar|avx2|neon|auto>
//                         cost-kernel backend (default auto: CPUID picks
//                         the fastest; results are identical regardless)
//   --surrogate <off|prune>
//                         analytical lower-bound pruning of candidates that
//                         provably cannot win (search/cosearch; identical
//                         returned design, fewer mapping searches)
//
// Envelope names: edgetpu, nvdla1024, nvdla256, eyeriss, shidiannao.
//
// For a long-lived query service over the same store (batched JSON
// requests on stdin, warm cache, incremental store refresh), see the
// naas_serve binary and docs/serving.md.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "cost/backend.hpp"
#include "cost/report.hpp"
#include "mapping/canonical.hpp"
#include "nas/nas_search.hpp"
#include "nn/model_zoo.hpp"
#include "search/accelerator_search.hpp"

namespace {

using namespace naas;

arch::ResourceConstraint envelope_by_name(const std::string& name) {
  if (name == "edgetpu") return arch::edge_tpu_resources();
  if (name == "nvdla1024") return arch::nvdla_1024_resources();
  if (name == "nvdla256") return arch::nvdla_256_resources();
  if (name == "eyeriss") return arch::eyeriss_resources();
  if (name == "shidiannao") return arch::shidiannao_resources();
  throw std::invalid_argument("unknown envelope: " + name);
}

int cmd_info() {
  std::printf("networks:\n");
  for (const char* n : {"vgg16", "resnet50", "unet", "mobilenetv2",
                        "squeezenet", "mnasnet", "cifarnet"}) {
    const auto net = nn::make_network(n);
    std::printf("  %-12s %3d layers  %6lld MMACs  %6lld K weights\n", n,
                net.num_layers(), net.total_macs() / 1000000,
                net.total_weights() / 1000);
  }
  std::printf("\nenvelopes:\n");
  for (const auto& rc : arch::all_resource_envelopes())
    std::printf("  %s\n", rc.to_string().c_str());
  return 0;
}

int cmd_eval(const std::string& net_name, const std::string& env_name) {
  const auto net = nn::make_network(net_name);
  const auto rc = envelope_by_name(env_name);
  const auto baseline = arch::baseline_for(rc);
  const cost::CostModel model;
  const auto nc = cost::evaluate_network_canonical(model, baseline, net);
  std::printf("%s\n\n%s", baseline.to_string().c_str(),
              cost::format_network_cost(nc).c_str());
  return nc.legal ? 0 : 1;
}

int cmd_layer(const std::string& net_name, const std::string& env_name,
              int index) {
  const auto net = nn::make_network(net_name);
  if (index < 0 || index >= net.num_layers()) {
    std::fprintf(stderr, "layer index out of range (0..%d)\n",
                 net.num_layers() - 1);
    return 1;
  }
  const auto rc = envelope_by_name(env_name);
  const auto baseline = arch::baseline_for(rc);
  const auto& layer = net.layers()[static_cast<std::size_t>(index)];
  const cost::CostModel model;
  const auto m = mapping::canonical_mapping(baseline, layer);
  std::printf("%s\n%s\n\nmapping:\n%s\n\n%s", baseline.to_string().c_str(),
              layer.to_string().c_str(), m.to_string().c_str(),
              cost::format_report(model.evaluate(baseline, layer, m)).c_str());
  return 0;
}

/// Persistent-store flags shared by the search commands.
struct StoreFlags {
  std::string cache_path;
  bool cache_readonly = false;
  /// --cost-backend override; nullopt = process default (NAAS_COST_BACKEND
  /// env or auto CPUID dispatch). Throughput-only: results are identical.
  std::optional<cost::BackendKind> cost_backend;
  /// --surrogate safety valve (default off): prune provably-losing
  /// candidates via the analytical lower bound before their mapping
  /// searches. The returned design is identical either way (see
  /// NaasOptions::surrogate); prune only skips work.
  search::SurrogateMode surrogate = search::SurrogateMode::kOff;
};

/// Store diagnostics go to stderr so stdout stays a deterministic report
/// (CI diffs cold vs warm stdout).
void report_store(const StoreFlags& store, long long entries_loaded,
                  long long mapping_searches) {
  if (store.cache_path.empty()) return;
  std::fprintf(stderr,
               "store: loaded %lld entries from %s; mapping searches run: "
               "%lld%s\n",
               entries_loaded, store.cache_path.c_str(), mapping_searches,
               store.cache_readonly ? " (readonly)" : "");
}

/// Batched-cost-model work summary (stderr, like the store diagnostics).
/// `backend` is the resolved cost-kernel backend that scored the run.
void report_batch(long long generations, long long candidates,
                  const std::string& backend) {
  std::fprintf(stderr,
               "batch: %lld CMA generations batch-evaluated (%lld "
               "candidates) on %s cost backend\n",
               generations, candidates, backend.c_str());
}

/// Async-pipeline work summary (stderr): scheduler tasks plus the
/// speculative-prefetch outcome. Hits moved real work off the critical
/// path; wasted entries burned idle time only (they never change results).
void report_pipeline(long long tasks, long long spec_hits,
                     long long spec_wasted) {
  std::fprintf(stderr,
               "pipeline: %lld graph tasks; speculation: %lld hits, %lld "
               "wasted\n",
               tasks, spec_hits, spec_wasted);
}

/// Surrogate-pruning summary (stderr): bound consultations and the
/// mapping-search evaluations they provably made unnecessary.
void report_surrogate(search::SurrogateMode mode, long long consults,
                      long long pruned) {
  std::fprintf(stderr, "surrogate: %s; %lld consults, %lld pruned\n",
               search::surrogate_mode_name(mode), consults, pruned);
}

int cmd_search(const std::string& net_name, const std::string& env_name,
               int iterations, std::uint64_t seed, const StoreFlags& store) {
  const auto net = nn::make_network(net_name);
  const auto rc = envelope_by_name(env_name);
  const cost::CostModel model;

  search::NaasOptions opts;
  opts.resources = rc;
  opts.population = 12;
  opts.iterations = iterations;
  opts.seed = seed;
  opts.mapping.population = 10;
  opts.mapping.iterations = 6;
  opts.cache_path = store.cache_path;
  opts.cache_readonly = store.cache_readonly;
  opts.cost_backend = store.cost_backend;
  opts.surrogate = store.surrogate;
  const auto res = search::run_naas(model, opts, {net});
  report_store(store, res.store_entries_loaded, res.mapping_searches);
  report_batch(res.generations_batched, res.candidates_batch_evaluated,
               res.cost_backend);
  report_pipeline(res.tasks_executed, res.speculative_hits,
                  res.speculative_wasted);
  report_surrogate(opts.surrogate, res.surrogate_consults,
                   res.surrogate_pruned);
  if (!std::isfinite(res.best_geomean_edp)) {
    std::fprintf(stderr, "search failed to find a valid design\n");
    return 1;
  }
  const auto baseline = cost::evaluate_network_canonical(
      model, arch::baseline_for(rc), net);
  std::printf("searched: %s\n\n%s\n", res.best_arch.to_string().c_str(),
              cost::format_network_cost(res.best_networks[0]).c_str());
  std::printf("vs stock %s: %.2fx speedup, %.2fx energy, %.2fx EDP\n",
              rc.name.c_str(),
              baseline.latency_cycles / res.best_networks[0].latency_cycles,
              baseline.energy_nj / res.best_networks[0].energy_nj,
              baseline.edp / res.best_networks[0].edp);
  std::printf("search: %lld evals, %.1fs\n", res.cost_evaluations,
              res.wall_seconds);
  return 0;
}

int cmd_cosearch(const std::string& env_name, double min_accuracy,
                 int iterations, std::uint64_t seed, const StoreFlags& store) {
  const cost::CostModel model;
  nas::CoSearchOptions opts;
  opts.resources = envelope_by_name(env_name);
  opts.hw_population = 8;
  opts.hw_iterations = iterations;
  opts.seed = seed;
  opts.mapping.population = 8;
  opts.mapping.iterations = 5;
  opts.subnet.min_accuracy = min_accuracy;
  opts.subnet.population = 8;
  opts.subnet.iterations = 4;
  opts.cache_path = store.cache_path;
  opts.cache_readonly = store.cache_readonly;
  opts.cost_backend = store.cost_backend;
  opts.surrogate = store.surrogate;
  const auto res = nas::run_cosearch(model, opts);
  report_store(store, res.store_entries_loaded, res.mapping_searches);
  report_batch(res.generations_batched, res.candidates_batch_evaluated,
               res.cost_backend);
  report_pipeline(res.tasks_executed, res.speculative_hits,
                  res.speculative_wasted);
  report_surrogate(opts.surrogate, res.surrogate_consults,
                   res.surrogate_pruned);
  if (!std::isfinite(res.best_edp)) {
    std::fprintf(stderr,
                 "no accuracy-feasible subnet found; lower the floor\n");
    return 1;
  }
  std::printf("accelerator: %s\n", res.best_arch.to_string().c_str());
  std::printf("network    : %s\n", res.best_net.to_string().c_str());
  std::printf("top-1      : %.1f%%   EDP %.3g\n", res.best_accuracy,
              res.best_edp);
  std::printf("search     : %lld evals, %.1fs\n", res.cost_evaluations,
              res.wall_seconds);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: naas_cli info\n"
               "       naas_cli eval <net> <envelope>\n"
               "       naas_cli layer <net> <envelope> <index>\n"
               "       naas_cli search <net> <envelope> [iters [seed]]\n"
               "       naas_cli cosearch <envelope> <acc%%> [iters [seed]]\n"
               "flags: --cache-path <file>  persistent mapping-result store\n"
               "       --cache-readonly     never write the store back\n"
               "       --cost-backend <scalar|avx2|neon|auto>\n"
               "                            cost-kernel backend (default: "
               "auto CPUID dispatch)\n"
               "       --surrogate <off|prune>\n"
               "                            analytical lower-bound pruning "
               "of provably-losing\n"
               "                            candidates (default off; same "
               "result, less work)\n"
               "for a long-lived batched query service over the same store,\n"
               "run naas_serve (see docs/serving.md)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  StoreFlags store;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--cache-path") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cache-path requires a file argument\n");
        return usage();
      }
      store.cache_path = argv[++i];
    } else if (a == "--cache-readonly") {
      store.cache_readonly = true;
    } else if (a == "--cost-backend") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--cost-backend requires a backend name\n");
        return usage();
      }
      const std::string name = argv[++i];
      const auto kind = cost::parse_backend_kind(name);
      if (!kind) {
        std::fprintf(stderr,
                     "unknown cost backend '%s' (scalar|avx2|neon|auto)\n",
                     name.c_str());
        return usage();
      }
      // An explicit request for a backend this build/CPU cannot run is an
      // error, not a silent fallback; auto always resolves.
      if (!cost::backend_available(*kind)) {
        std::fprintf(stderr, "cost backend '%s' unavailable on this host\n",
                     name.c_str());
        return 1;
      }
      store.cost_backend = *kind;
    } else if (a == "--surrogate") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--surrogate requires a mode (off|prune)\n");
        return usage();
      }
      const std::string name = argv[++i];
      if (!search::parse_surrogate_mode(name, &store.surrogate)) {
        std::fprintf(stderr, "unknown surrogate mode '%s' (off|prune)\n",
                     name.c_str());
        return usage();
      }
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) return usage();
  const std::string& cmd = args[0];
  const auto n = args.size();
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "eval" && n >= 3) return cmd_eval(args[1], args[2]);
    if (cmd == "layer" && n >= 4)
      return cmd_layer(args[1], args[2], std::atoi(args[3].c_str()));
    if (cmd == "search" && n >= 3)
      return cmd_search(args[1], args[2],
                        n > 3 ? std::atoi(args[3].c_str()) : 10,
                        n > 4 ? std::strtoull(args[4].c_str(), nullptr, 10)
                              : 1,
                        store);
    if (cmd == "cosearch" && n >= 3)
      return cmd_cosearch(args[1], std::atof(args[2].c_str()),
                          n > 3 ? std::atoi(args[3].c_str()) : 5,
                          n > 4 ? std::strtoull(args[4].c_str(), nullptr, 10)
                                : 1,
                          store);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
