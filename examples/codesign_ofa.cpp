// Accelerator + mapping + neural-architecture co-design (Section II-C):
// run the three-level search under the Eyeriss envelope, then show the
// matched tuple and how it compares against running the fixed ResNet-50 on
// the Eyeriss baseline.
//
//   ./build/examples/codesign_ofa [accuracy_floor] [hw_iterations]
//     defaults: 78.0, 5

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "arch/presets.hpp"
#include "baselines/nhas.hpp"
#include "cost/network_cost.hpp"
#include "nas/nas_search.hpp"
#include "nn/accuracy_model.hpp"

int main(int argc, char** argv) {
  using namespace naas;

  const double accuracy_floor = argc > 1 ? std::atof(argv[1]) : 78.0;
  const int hw_iterations = argc > 2 ? std::atoi(argv[2]) : 5;

  const cost::CostModel model;

  // Baseline: fixed ResNet-50 on the Eyeriss preset, canonical mapping.
  const auto eyeriss = arch::eyeriss_arch();
  const auto resnet =
      nn::OfaSpace{}.to_network(nn::OfaSpace::resnet50_config());
  const auto baseline =
      cost::evaluate_network_canonical(model, eyeriss, resnet);
  std::printf("baseline : ResNet50 @ %s\n", eyeriss.name.c_str());
  std::printf("           top-1 %.1f%%  EDP %.3g\n\n",
              nn::AccuracyPredictor::kResNet50Top1, baseline.edp);

  // Joint co-search with an accuracy constraint.
  nas::CoSearchOptions opts;
  opts.resources = arch::eyeriss_resources();
  opts.hw_population = 8;
  opts.hw_iterations = hw_iterations;
  opts.seed = 1;
  opts.mapping.population = 8;
  opts.mapping.iterations = 5;
  opts.subnet.min_accuracy = accuracy_floor;
  opts.subnet.population = 8;
  opts.subnet.iterations = 4;

  std::printf("co-search: accuracy floor %.1f%%, %d outer iterations...\n",
              accuracy_floor, hw_iterations);
  const nas::CoSearchResult res = nas::run_cosearch(model, opts);
  if (!std::isfinite(res.best_edp)) {
    std::printf("no accuracy-feasible subnet found — lower the floor.\n");
    return 1;
  }

  std::printf("\nmatched tuple:\n");
  std::printf("  accelerator: %s\n", res.best_arch.to_string().c_str());
  std::printf("  network    : %s\n", res.best_net.to_string().c_str());
  std::printf("  top-1      : %.1f%% (predictor)\n", res.best_accuracy);
  std::printf("  EDP        : %.3g (%.2fx lower than baseline)\n",
              res.best_edp, baseline.edp / res.best_edp);
  std::printf("  accuracy up: +%.1f%% over scratch-trained ResNet50\n",
              res.best_accuracy - nn::AccuracyPredictor::kResNet50Top1);
  std::printf("\nsearch cost: %lld cost-model evals, %lld mapping searches, "
              "%.1fs wall\n",
              res.cost_evaluations, res.mapping_searches, res.wall_seconds);
  return 0;
}
